(* Mail filtering: the paper's motivating host-extension scenario
   (section 2: "an e-mail client can ship a mail-filtering function to a
   server to reduce server bandwidth requirements").

     dune exec examples/mail_filter.exe

   The mail server (the host, written in OCaml) loads an untrusted
   filtering module (written in MiniC by some user) and calls it once per
   message. The module talks back through the host-service call: it asks
   for message bytes and returns a verdict. The host restricts the module's
   authority to exactly that service -- no printing, no clock -- and SFI
   guarantees the module cannot touch the server's memory. *)

module Api = Omniware.Api
module Host = Omni_runtime.Host

(* the user's filter, compiled to a mobile module: scores a message by
   counting suspicious words and long runs of capitals *)
let filter_source =
  {|
/* host services (op codes for host_service):
   1 = message length, 2 = byte at index */
int msg_len(void) { return host_service(1, 0, 0, 0); }
int msg_byte(int i) { return host_service(2, i, 0, 0); }

int lower(int c) { if (c >= 'A' && c <= 'Z') return c + 32; return c; }

int match_at(int pos, char *word, int n) {
  int j;
  for (j = 0; j < n; j++) {
    if (lower(msg_byte(pos + j)) != (int)word[j]) return 0;
  }
  return 1;
}

int main(void) {
  int n; int i; int score; int caps_run; int caps_max;
  n = msg_len();
  score = 0;
  caps_run = 0; caps_max = 0;
  for (i = 0; i < n; i++) {
    int c;
    c = msg_byte(i);
    if (c >= 'A' && c <= 'Z') { caps_run++; if (caps_run > caps_max) caps_max = caps_run; }
    else caps_run = 0;
    if (i + 4 <= n && match_at(i, "free", 4)) score += 3;
    if (i + 5 <= n && match_at(i, "money", 5)) score += 5;
    if (i + 6 <= n && match_at(i, "winner", 6)) score += 7;
  }
  if (caps_max >= 8) score += caps_max;
  return score;   /* the exit code is the spam score */
}
|}

let messages =
  [ "Hello team, the design review moved to Thursday afternoon.";
    "FREE MONEY!!! You are a WINNER, claim your free money NOW!!!";
    "Quarterly numbers attached; winner of the hackathon announced Friday.";
    "URGENT!!! FREE CRUISE FOR THE LUCKIEST WINNER EVER!!!!" ]

let () =
  let wire = Api.compile ~name:"filter" filter_source in
  Printf.printf "mail server: received %d-byte filter module from user\n\n"
    (String.length wire);
  let exe = Omnivm.Wire.decode wire in
  List.iteri
    (fun idx msg ->
      (* one fresh, isolated instance per message; the module may call ONLY
         exit (to return its verdict) and the host service *)
      let img =
        Api.load
          ~allow:Omnivm.Hostcall.[ Exit; Host_service ]
          exe
      in
      Host.set_service img.Omni_runtime.Loader.host (fun op a _ _ ->
          match op with
          | 1 -> String.length msg
          | 2 -> if a >= 0 && a < String.length msg then Char.code msg.[a] else -1
          | _ -> -1);
      let tr = Api.translate Omni_targets.Arch.Mips exe in
      let r = Api.run_translated ~fuel:50_000_000 tr img in
      let verdict =
        match r.Api.outcome with
        | Omni_targets.Machine.Exited score ->
            if score >= 8 then Printf.sprintf "SPAM (score %d)" score
            else Printf.sprintf "ok (score %d)" score
        | Omni_targets.Machine.Faulted f ->
            "filter faulted: " ^ Omnivm.Fault.to_string f
        | Omni_targets.Machine.Out_of_fuel -> "filter ran too long; killed"
      in
      Printf.printf "message %d: %-14s | %s\n" (idx + 1) verdict
        (if String.length msg > 40 then String.sub msg 0 40 ^ "..." else msg))
    messages;
  (* a filter that tries to print (not in its grant) is stopped cold *)
  print_newline ();
  let nosy =
    Api.compile ~name:"nosy"
      {| int main(void) { print_str("exfiltrating!"); return 0; } |}
  in
  let exe = Omnivm.Wire.decode nosy in
  let img = Api.load ~allow:Omnivm.Hostcall.[ Exit; Host_service ] exe in
  let tr = Api.translate Omni_targets.Arch.Mips exe in
  let r = Api.run_translated ~fuel:1_000_000 tr img in
  (match r.Api.outcome with
  | Omni_targets.Machine.Faulted (Omnivm.Fault.Unauthorized_host_call _) ->
      print_endline
        "nosy filter tried to call print_str: unauthorized host call, module killed"
  | _ -> print_endline "unexpected: nosy filter was not stopped")
