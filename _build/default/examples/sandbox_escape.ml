(* A hostile module versus software fault isolation.

     dune exec examples/sandbox_escape.exe

   We play the attacker: hand-written OmniVM assembly trying to corrupt the
   host's memory and hijack control flow. Each attack runs twice on the
   simulated Mips host -- once translated WITHOUT protection (the paper's
   point: on raw hardware these attacks work) and once with SFI sandboxing.
   The host plants a canary in its own memory region and checks it after
   each run. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine
module L = Omnivm.Layout

let attacks =
  [ ( "wild store into host memory",
      Printf.sprintf
        {|
        .text
        .globl main
main:   li r2, %d
        li r3, 0xDEAD
        sw r3, 0(r2)
        li r1, 0
        hcall 0
|}
        L.host_base );
    ( "store through a computed address",
      Printf.sprintf
        {|
        .text
        .globl main
main:   li r2, %d
        slli r2, r2, 4       ; host_base = value << 4
        li r3, 0xDEAD
        sw r3, 8(r2)
        li r1, 0
        hcall 0
|}
        (L.host_base / 16) );
    ( "redirect the stack pointer at the host",
      Printf.sprintf
        {|
        .text
        .globl main
main:   li r14, %d
        li r3, 0xDEAD
        sw r3, 0(r14)
        li r1, 0
        hcall 0
|}
        (L.host_base + 16) );
    ( "indirect jump out of the code segment",
      Printf.sprintf
        {|
        .text
        .globl main
main:   li r2, %d
        jr r2
        li r1, 0
        hcall 0
|}
        (L.host_base + 4) ) ]

let run_attack src ~sfi =
  let exe = Omni_asm.Link.link [ Omni_asm.Parse.assemble ~name:"evil" src ] in
  let img = Api.load ~map_host_region:true exe in
  let canary =
    match img.Omni_runtime.Loader.host_region with
    | Some r ->
        Bytes.fill r.Omnivm.Memory.bytes 0 64 '\xAB';
        r
    | None -> assert false
  in
  let mode =
    if sfi then Machine.Mobile (Omni_sfi.Policy.make ())
    else Machine.Mobile Omni_sfi.Policy.off
  in
  let tr =
    Api.translate ~mode ~opts:(Api.mobile_opts Omni_targets.Arch.Mips)
      Omni_targets.Arch.Mips exe
  in
  let r = Api.run_translated ~fuel:1_000_000 tr img in
  let intact =
    Bytes.for_all (fun c -> c = '\xAB') (Bytes.sub canary.Omnivm.Memory.bytes 0 64)
  in
  let outcome =
    match r.Api.outcome with
    | Machine.Exited _ -> "module ran to completion"
    | Machine.Faulted f -> "module killed: " ^ Omnivm.Fault.to_string f
    | Machine.Out_of_fuel -> "module looped; killed by fuel limit"
  in
  (intact, outcome)

let () =
  print_endline "attacker-supplied module vs. the host (simulated Mips)\n";
  List.iter
    (fun (name, src) ->
      Printf.printf "== %s ==\n" name;
      let intact, outcome = run_attack src ~sfi:false in
      Printf.printf "  unprotected: %-55s host memory %s\n" outcome
        (if intact then "INTACT" else "CORRUPTED");
      let intact, outcome = run_attack src ~sfi:true in
      Printf.printf "  with SFI:    %-55s host memory %s\n\n" outcome
        (if intact then "INTACT" else "CORRUPTED");
      assert intact)
    attacks;
  print_endline
    "every attack that corrupted the unprotected host was contained by SFI."
