(* Function shipping for a file server (paper section 2: "a file system
   server can ship a decompression function to a client to offload its
   processing").

     dune exec examples/file_server.exe

   The server compresses documents with run-length encoding and ships each
   client BOTH the compressed bytes and a mobile decompressor module. The
   client (this host) grants the module exactly two capabilities: reading
   the compressed stream (host service) and emitting bytes (putchar). The
   client never needs decompression code of its own -- and if tomorrow the
   server switches codecs, it just ships a different module. *)

module Api = Omniware.Api
module Host = Omni_runtime.Host

(* the decompressor the server ships, as a mobile module *)
let decompressor =
  {|
/* host services: 1 = compressed length, 2 = byte at index.
   RLE format: (count, byte) pairs; count 0 terminates early. */
int clen(void) { return host_service(1, 0, 0, 0); }
int cbyte(int i) { return host_service(2, i, 0, 0); }

int main(void) {
  int i; int n; int count; int b; int k;
  int total;
  n = clen();
  total = 0;
  for (i = 0; i + 1 < n; i += 2) {
    count = cbyte(i);
    b = cbyte(i + 1);
    if (count == 0) break;
    for (k = 0; k < count; k++) putchar(b);
    total += count;
  }
  return total;   /* decompressed size, reported to the host */
}
|}

(* server side, in OCaml: the matching compressor *)
let rle_compress (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let run = ref 0 in
    while !i < n && s.[!i] = c && !run < 255 do
      incr i;
      incr run
    done;
    Buffer.add_char buf (Char.chr !run);
    Buffer.add_char buf c
  done;
  Buffer.contents buf

let document =
  "........the quick brown fox........\n\
   ====================================\n\
   mobile code means the client never\n\
   needs to know the codec aaaaaahhhhh\n\
   ====================================\n"

let () =
  let compressed = rle_compress document in
  let wire = Api.compile ~name:"rle" decompressor in
  Printf.printf
    "server: document %d bytes -> %d compressed + %d-byte decompressor module\n\n"
    (String.length document) (String.length compressed) (String.length wire);
  (* client side *)
  let exe = Omnivm.Wire.decode wire in
  let img =
    Api.load ~allow:Omnivm.Hostcall.[ Exit; Put_char; Host_service ] exe
  in
  Host.set_service img.Omni_runtime.Loader.host (fun op a _ _ ->
      match op with
      | 1 -> String.length compressed
      | 2 ->
          if a >= 0 && a < String.length compressed then
            Char.code compressed.[a]
          else -1
      | _ -> -1);
  let tr = Api.translate Omni_targets.Arch.Ppc exe in
  let r = Api.run_translated ~fuel:10_000_000 tr img in
  (match r.Api.outcome with
  | Omni_targets.Machine.Exited size ->
      Printf.printf "client: module reported %d decompressed bytes\n\n" size;
      print_string r.Api.output;
      if r.Api.output = document then
        print_endline "\n[round trip exact: client reproduced the document]"
      else print_endline "\n[BUG: document mismatch]"
  | Omni_targets.Machine.Faulted f ->
      Printf.printf "module faulted: %s\n" (Omnivm.Fault.to_string f)
  | Omni_targets.Machine.Out_of_fuel -> print_endline "module ran too long")
