examples/sandbox_escape.ml: Bytes List Omni_asm Omni_runtime Omni_sfi Omni_targets Omnivm Omniware Printf
