examples/mail_filter.mli:
