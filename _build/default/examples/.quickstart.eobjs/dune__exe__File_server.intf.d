examples/file_server.mli:
