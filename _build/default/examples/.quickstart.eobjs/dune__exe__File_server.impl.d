examples/file_server.ml: Buffer Char Omni_runtime Omni_targets Omnivm Omniware Printf String
