examples/web_applet.mli:
