examples/mail_filter.ml: Char List Omni_runtime Omni_targets Omnivm Omniware Printf String
