examples/quickstart.mli:
