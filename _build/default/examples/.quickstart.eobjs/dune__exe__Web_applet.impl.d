examples/web_applet.ml: List Omni_targets Omnivm Omniware Printf String Unix
