examples/sandbox_escape.mli:
