examples/quickstart.ml: Omni_targets Omniware Printf String
