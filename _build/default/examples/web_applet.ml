(* Executable document content: one mobile module, four processors.

     dune exec examples/web_applet.exe

   The headline scenario of the paper (and Figure 2): a web page carries an
   applet as OmniVM bytes; whichever machine downloads it translates the
   same bytes for its own processor at load time and runs them safely. This
   example "downloads" a Mandelbrot-rendering applet onto simulated Mips,
   Sparc, PowerPC, and Pentium hosts, shows identical output everywhere,
   and reports the per-host translation and execution statistics. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch

let applet =
  {|
/* fixed-point mandelbrot, 20 rows of ascii art */
int mand(int cr, int ci) {
  int zr; int zi; int i;
  zr = 0; zi = 0;
  for (i = 0; i < 32; i++) {
    int zr2; int zi2;
    zr2 = (zr * zr) >> 12;
    zi2 = (zi * zi) >> 12;
    if (zr2 + zi2 > (4 << 12)) return i;
    zi = ((zr * zi) >> 11) + ci;
    zr = zr2 - zi2 + cr;
  }
  return 32;
}

int main(void) {
  int y; int x;
  for (y = 0; y < 20; y++) {
    for (x = 0; x < 64; x++) {
      int cr; int ci; int n;
      cr = (x - 44) * 140;
      ci = (y - 10) * 380;
      n = mand(cr, ci);
      if (n >= 32) putchar('@');
      else if (n > 8) putchar('+');
      else if (n > 4) putchar('.');
      else putchar(' ');
    }
    putchar('\n');
  }
  return 0;
}
|}

let () =
  let wire = Api.compile ~name:"applet" applet in
  Printf.printf "document applet: %d bytes, shipped unchanged to 4 hosts\n\n"
    (String.length wire);
  let outputs =
    List.map
      (fun arch ->
        let t0 = Unix.gettimeofday () in
        let exe = Omnivm.Wire.decode wire in
        let img = Api.load exe in
        let tr = Api.translate arch exe in
        let loaded = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let r = Api.run_translated ~fuel:200_000_000 tr img in
        Printf.printf
          "%-6s load+translate %5.1f ms | %8d native instrs | %8d cycles\n"
          (Arch.name arch) loaded r.Api.instructions r.Api.cycles;
        r.Api.output)
      Arch.all
  in
  (match outputs with
  | first :: rest ->
      if List.for_all (String.equal first) rest then begin
        Printf.printf
          "\nidentical output on every architecture; here it is:\n\n";
        print_string first
      end
      else print_endline "BUG: architectures disagree!"
  | [] -> ())
