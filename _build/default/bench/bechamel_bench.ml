(* Bechamel wall-clock benchmarks for the load-time operations the paper
   argues must be fast (section 3: "translation of OmniVM must be fast"):
   per-architecture translation (with SFI), wire decoding, and whole-module
   compilation. One Test.make per measured operation. *)

open Bechamel
module Api = Omniware.Api
module Machine = Omni_targets.Machine
module W = Omni_workloads.Workloads

let make_tests ~size =
  let w = W.compress ~size in
  let exe = Minic.Driver.compile_exe ~name:w.W.name w.W.source in
  let wire = Omnivm.Wire.encode exe in
  let mode = Machine.Mobile (Omni_sfi.Policy.make ()) in
  let translate_test arch =
    Test.make
      ~name:(Printf.sprintf "translate-%s" (Omni_targets.Arch.name arch))
      (Staged.stage (fun () ->
           ignore (Api.translate ~mode ~opts:(Api.mobile_opts arch) arch exe)))
  in
  [ translate_test Omni_targets.Arch.Mips;
    translate_test Omni_targets.Arch.Sparc;
    translate_test Omni_targets.Arch.Ppc;
    translate_test Omni_targets.Arch.X86;
    Test.make ~name:"wire-decode"
      (Staged.stage (fun () -> ignore (Omnivm.Wire.decode wire)));
    Test.make ~name:"compile-minic"
      (Staged.stage (fun () ->
           ignore (Minic.Driver.compile_exe ~name:w.W.name w.W.source)))
  ]

let benchmark tests =
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw =
    List.map
      (fun test ->
        List.map
          (fun t -> (Test.Elt.name t, Benchmark.run cfg instances t))
          (Test.elements test))
      tests
    |> List.concat
  in
  List.iter
    (fun (name, m) ->
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let result = Analyze.one ols Toolkit.Instance.monotonic_clock m in
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          Printf.printf "  %-20s %12.0f ns/run  (%.2f ms)\n" name est
            (est /. 1e6)
      | _ -> Printf.printf "  %-20s (no estimate)\n" name)
    raw

let run ~size =
  print_endline "Bechamel wall-clock: load-time operations";
  benchmark (make_tests ~size)
