bench/bechamel_bench.ml: Analyze Bechamel Benchmark List Measure Minic Omni_sfi Omni_targets Omni_workloads Omnivm Omniware Printf Staged Test Time Toolkit
