bench/main.ml: Arg Bechamel_bench List Omni_harness Omni_workloads Printf Unix
