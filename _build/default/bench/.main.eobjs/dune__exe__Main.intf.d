bench/main.mli:
