(* omnicc: compile MiniC to a mobile OmniVM module (wire format).

     omnicc input.mc -o module.omni [-O0|-O1|-O2] [--regs N] [--dump-asm]

   The output is the shippable mobile-code artifact; run it with omnirun. *)

let () =
  let input = ref None in
  let output = ref "a.omni" in
  let level = ref Minic.Opt.O2 in
  let regs = ref 16 in
  let dump_asm = ref false in
  let dump_ir = ref false in
  let spec =
    [ ("-o", Arg.Set_string output, "FILE output module (default a.omni)");
      ("-O0", Arg.Unit (fun () -> level := Minic.Opt.O0), " no optimization");
      ("-O1", Arg.Unit (fun () -> level := Minic.Opt.O1), " local optimization");
      ("-O2", Arg.Unit (fun () -> level := Minic.Opt.O2), " full optimization");
      ("--regs", Arg.Set_int regs, "N OmniVM register file size (8..16)");
      ("--dump-asm", Arg.Set dump_asm, " print linked OmniVM assembly");
      ("--dump-ir", Arg.Set dump_ir, " print optimized IR") ]
  in
  Arg.parse spec (fun f -> input := Some f) "omnicc <input.mc> [-o out.omni]";
  match !input with
  | None ->
      prerr_endline "omnicc: no input file";
      exit 2
  | Some path ->
      let source = In_channel.with_open_text path In_channel.input_all in
      let options =
        { Minic.Driver.opt_level = !level; regfile_size = !regs }
      in
      (try
         if !dump_ir then begin
           let tast = Minic.Driver.typed_program source in
           let ir = Minic.Lower.lower_program tast in
           let ir = Minic.Opt.optimize !level ir in
           List.iter
             (fun f -> print_string (Minic.Ir.func_to_string f))
             ir.Minic.Ir.pr_funcs
         end;
         let exe = Minic.Driver.compile_exe ~options ~name:path source in
         if !dump_asm then Format.printf "%a" Omnivm.Exe.pp exe;
         Out_channel.with_open_bin !output (fun oc ->
             Out_channel.output_string oc (Omnivm.Wire.encode exe))
       with
      | Minic.Lexer.Error { line; message }
      | Minic.Parser.Error { line; message }
      | Minic.Typecheck.Error { line; message } ->
          Printf.eprintf "%s:%d: error: %s\n" path line message;
          exit 1
      | Minic.Lower.Error m | Minic.Codegen.Error m ->
          Printf.eprintf "%s: internal error: %s\n" path m;
          exit 1
      | Omni_asm.Link.Link_error m ->
          Printf.eprintf "%s: link error: %s\n" path m;
          exit 1)
