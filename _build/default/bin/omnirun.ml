(* omnirun: host application that loads and executes a mobile OmniVM module.

     omnirun module.omni [--engine interp|mips|sparc|ppc|x86] [--no-sfi]
                         [--stats]

   The default engine is the OmniVM reference interpreter; the target
   engines translate the module to simulated native code at load time
   (with software fault isolation unless --no-sfi) and report simulated
   cycle counts with --stats. *)

let () =
  let input = ref None in
  let engine = ref "interp" in
  let sfi = ref true in
  let stats = ref false in
  let spec =
    [ ("--engine", Arg.Set_string engine,
       "ENGINE interp|mips|sparc|ppc|x86 (default interp)");
      ("--no-sfi", Arg.Clear sfi, " translate without software fault isolation");
      ("--stats", Arg.Set stats, " print execution statistics") ]
  in
  Arg.parse spec (fun f -> input := Some f) "omnirun <module.omni>";
  match !input with
  | None ->
      prerr_endline "omnirun: no module";
      exit 2
  | Some path ->
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      let result =
        Omniware.Api.run_wire ~engine:!engine ~sfi:!sfi bytes
      in
      print_string result.Omniware.Api.output;
      if !stats then begin
        Printf.eprintf "engine:        %s\n" !engine;
        Printf.eprintf "instructions:  %d\n" result.Omniware.Api.instructions;
        Printf.eprintf "cycles:        %d\n" result.Omniware.Api.cycles
      end;
      exit result.Omniware.Api.exit_code
