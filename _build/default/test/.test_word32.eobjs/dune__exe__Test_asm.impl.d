test/test_asm.ml: Alcotest Array Bytes List Omni_asm Omni_runtime Omnivm Printf String
