test/test_minic_opt.mli:
