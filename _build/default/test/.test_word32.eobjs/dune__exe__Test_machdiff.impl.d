test/test_machdiff.ml: Alcotest Array Buffer List Omni_asm Omni_targets Omniware Printf QCheck QCheck_alcotest Random
