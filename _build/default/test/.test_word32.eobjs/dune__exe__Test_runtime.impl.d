test/test_runtime.ml: Alcotest Char List Omni_asm Omni_runtime Omni_util Omnivm Option String
