test/test_minic_exec.mli:
