test/test_word32.mli:
