test/test_word32.ml: Alcotest Int64 Omni_util QCheck QCheck_alcotest
