test/test_harness.ml: Alcotest List Omni_harness Omni_targets Omni_workloads Printf String
