test/test_minic_front.mli:
