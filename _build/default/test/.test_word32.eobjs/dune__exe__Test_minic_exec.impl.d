test/test_minic_exec.ml: Alcotest Buffer List Minic Omni_targets Omnivm Omniware Option Printf QCheck QCheck_alcotest Random
