test/test_workloads.ml: Alcotest Array List Minic Omni_sfi Omni_targets Omni_workloads Omnivm Omniware Option Printf String
