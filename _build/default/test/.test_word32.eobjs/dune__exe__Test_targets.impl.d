test/test_targets.ml: Alcotest Array List Minic Omni_asm Omni_runtime Omni_sfi Omni_targets Omni_workloads Omnivm Omniware Printf QCheck QCheck_alcotest
