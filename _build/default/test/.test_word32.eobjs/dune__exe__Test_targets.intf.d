test/test_targets.mli:
