test/test_omnivm.mli:
