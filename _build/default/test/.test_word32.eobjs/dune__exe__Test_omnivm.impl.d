test/test_omnivm.ml: Alcotest Array Bytes Char Format Omni_asm Omni_runtime Omni_util Omnivm Printf QCheck QCheck_alcotest String
