test/test_sfi.ml: Alcotest Bytes Char List Minic Omni_asm Omni_runtime Omni_sfi Omni_targets Omni_util Omni_workloads Omnivm Omniware Printf QCheck QCheck_alcotest
