test/test_minic_opt.ml: Alcotest Array Driver Ir List Lower Minic Omni_runtime Omnivm Opt Printf Regalloc
