test/test_machdiff.mli:
