test/test_minic_front.ml: Alcotest Array Driver Lexer List Minic Parser Tast Typecheck
