test/test_sfi.mli:
