(* OmniVM tests: instruction semantics via the reference interpreter, the
   segmented memory model, the wire format, and the virtual exception
   model. *)

module VI = Omnivm.Instr
module W = Omni_util.Word32

(* --- helpers: assemble, link, run under the interpreter --- *)

let run_asm ?(fuel = 1_000_000) src =
  let obj = Omni_asm.Parse.assemble ~name:"t" src in
  let exe = Omni_asm.Link.link [ obj ] in
  let img = Omni_runtime.Loader.load exe in
  let outcome, st = Omni_runtime.Loader.run_interp ~fuel img in
  (outcome, Omni_runtime.Host.output img.Omni_runtime.Loader.host, st)

let expect_output ?fuel src expected =
  let outcome, out, _ = run_asm ?fuel src in
  (match outcome with
  | Omnivm.Interp.Exited 0 -> ()
  | Omnivm.Interp.Exited n -> Alcotest.failf "exit %d" n
  | Omnivm.Interp.Faulted f -> Alcotest.failf "fault: %s" (Omnivm.Fault.to_string f)
  | Omnivm.Interp.Out_of_fuel -> Alcotest.fail "out of fuel");
  Alcotest.(check string) "output" expected out

let expect_fault src pred =
  let outcome, _, _ = run_asm src in
  match outcome with
  | Omnivm.Interp.Faulted f ->
      if not (pred f) then
        Alcotest.failf "unexpected fault %s" (Omnivm.Fault.to_string f)
  | Omnivm.Interp.Exited n -> Alcotest.failf "exited %d, expected fault" n
  | Omnivm.Interp.Out_of_fuel -> Alcotest.fail "out of fuel"

(* a main that prints r1 after running [body] *)
let wrap body =
  Printf.sprintf
    {|
        .text
        .globl main
main:
%s
        hcall 2
        li r1, 10
        hcall 1
        li r1, 0
        hcall 0
|}
    body

let smoke () =
  expect_output
    (wrap {|
        li r1, 6
        li r2, 7
        mul r1, r1, r2 |})
    "42\n"

let arith () =
  expect_output (wrap "li r1, 10\nli r2, 3\ndiv r1, r1, r2") "3\n";
  expect_output (wrap "li r1, -10\nli r2, 3\ndiv r1, r1, r2") "-3\n";
  expect_output (wrap "li r1, -10\nli r2, 3\nrem r1, r1, r2") "-1\n";
  expect_output (wrap "li r1, -1\nli r2, 2\ndivu r1, r1, r2") "2147483647\n";
  expect_output (wrap "li r1, 0x7fffffff\naddi r1, r1, 1") "-2147483648\n";
  expect_output (wrap "li r1, 1\nslli r1, r1, 31") "-2147483648\n";
  expect_output (wrap "li r1, -8\nsrai r1, r1, 1") "-4\n";
  expect_output (wrap "li r1, -8\nsrli r1, r1, 28") "15\n";
  expect_output (wrap "li r1, 12\nli r2, 10\nslt r1, r1, r2") "0\n";
  expect_output (wrap "li r1, -1\nli r2, 1\nsltu r1, r1, r2") "0\n";
  expect_output (wrap "li r1, -1\nli r2, 1\nslt r1, r1, r2") "1\n"

let memory_ops () =
  expect_output
    (wrap
       {|
        li r2, buf
        li r3, 0x12345678
        sw r3, 0(r2)
        lbu r1, 0(r2)      ; little-endian low byte |}
     ^ "\n        .data\nbuf: .space 8\n")
    "120\n";
  expect_output
    (wrap
       {|
        li r2, buf
        li r3, -2
        sh r3, 2(r2)
        lh r1, 2(r2) |}
     ^ "\n        .data\nbuf: .space 8\n")
    "-2\n";
  expect_output
    (wrap
       {|
        li r2, buf
        li r3, 200
        sb r3, 1(r2)
        lb r1, 1(r2)       ; sign-extended byte load |}
     ^ "\n        .data\nbuf: .space 8\n")
    "-56\n"

let float_ops () =
  expect_output
    (wrap {|
        fli.d f1, 1.5
        fli.d f2, 2.25
        fadd.d f3, f1, f2
        cvt.w.d r1, f3 |})
    "3\n";
  expect_output
    (wrap {|
        fli.d f1, 7.0
        fli.d f2, 2.0
        fdiv.d f3, f1, f2
        cvt.w.d r1, f3 |})
    "3\n";
  expect_output
    (wrap {|
        li r2, -3
        cvt.d.w f1, r2
        fabs.d f2, f1
        cvt.w.d r1, f2 |})
    "3\n";
  expect_output
    (wrap {|
        fli.d f1, 1.5
        fli.d f2, 1.5
        feq.d r1, f1, f2 |})
    "1\n"

let ext_ins () =
  expect_output
    (wrap {|
        li r2, 0x12345678
        ext r1, r2, 1, 2   ; bytes 1..2 -> 0x3456 |})
    (Printf.sprintf "%d\n" 0x3456);
  expect_output
    (wrap {|
        li r1, 0x11223344
        li r2, 0xAB
        ins r1, r2, 3, 1   ; byte 3 := 0xAB |})
    (Printf.sprintf "%d\n" (W.of_int 0xAB223344))

let branches () =
  expect_output
    (wrap {|
        li r1, 0
        li r2, 5
loop:   addi r1, r1, 1
        bne r1, r2, loop |})
    "5\n";
  expect_output
    (wrap {|
        li r1, -5
        bgti r1, -10, yes
        li r1, 0
        j done1
yes:    li r1, 1
done1:  nop |})
    "1\n";
  expect_output
    (wrap {|
        li r1, -5
        li r2, 3
        bgtu r1, r2, yes   ; -5 unsigned is huge
        li r1, 0
        j done1
yes:    li r1, 1
done1:  nop |})
    "1\n"

let calls () =
  expect_output
    {|
        .text
        .globl main
double: add r1, r1, r1
        jr r15
main:   addi r14, r14, -16
        sw r15, 0(r14)
        li r1, 21
        jal double
        hcall 2
        li r1, 10
        hcall 1
        lw r15, 0(r14)
        addi r14, r14, 16
        li r1, 0
        hcall 0
|}
    "42\n";
  (* indirect call through a function pointer in data *)
  expect_output
    {|
        .data
fptr:   .word triple
        .text
        .globl main
triple: li r9, 3
        mul r1, r1, r9
        jr r15
main:   addi r14, r14, -16
        sw r15, 0(r14)
        li r1, 14
        lw r5, fptr(r0)
        jalr r15, r5
        hcall 2
        li r1, 10
        hcall 1
        lw r15, 0(r14)
        addi r14, r14, 16
        li r1, 0
        hcall 0
|}
    "42\n"

(* --- faults and the virtual exception model --- *)

let fault_unmapped () =
  expect_fault
    (wrap {|
        li r2, 0x00000040
        lw r1, 0(r2) |})
    (function
      | Omnivm.Fault.Access_violation { access = Omnivm.Fault.Read; _ } -> true
      | _ -> false)

let fault_write_code () =
  expect_fault
    (wrap {|
        li r2, 0x10000000
        li r3, 1
        sw r3, 0(r2) |})
    (function
      | Omnivm.Fault.Access_violation { access = Omnivm.Fault.Write; _ } -> true
      | _ -> false)

let fault_div0 () =
  expect_fault
    (wrap {|
        li r1, 1
        li r2, 0
        div r1, r1, r2 |})
    (function Omnivm.Fault.Division_by_zero -> true | _ -> false)

let fault_bad_jump () =
  expect_fault
    (wrap {|
        li r2, 0x20000000
        jr r2 |})
    (function
      | Omnivm.Fault.Access_violation { access = Omnivm.Fault.Execute; _ } ->
          true
      | _ -> false)

(* The module registers a handler; a division by zero is delivered to it
   instead of aborting (paper: the SDCA exception model). *)
let handler_delivery () =
  expect_output
    {|
        .text
        .globl main
handler:
        ; r1 = fault code (3 = division by zero)
        hcall 2
        li r1, 10
        hcall 1
        li r1, 0
        hcall 0
main:
        li r1, handler
        hcall 7            ; set_handler
        li r2, 0
        li r3, 4
        div r3, r3, r2     ; faults; delivered to handler
        li r1, 99          ; unreachable
        hcall 2
        li r1, 1
        hcall 0
|}
    "3\n"

let unauthorized_hcall () =
  let obj =
    Omni_asm.Parse.assemble ~name:"t"
      {|
        .text
        .globl main
main:   li r1, 65
        hcall 1
        li r1, 0
        hcall 0
|}
  in
  let exe = Omni_asm.Link.link [ obj ] in
  (* host only allows exit: the putchar must fault *)
  let img = Omni_runtime.Loader.load ~allow:[ Omnivm.Hostcall.Exit ] exe in
  match Omni_runtime.Loader.run_interp img with
  | Omnivm.Interp.Faulted (Omnivm.Fault.Unauthorized_host_call { index = 1 }), _ -> ()
  | o, _ ->
      Alcotest.failf "expected unauthorized host call, got %s"
        (match o with
        | Omnivm.Interp.Exited n -> Printf.sprintf "exit %d" n
        | Omnivm.Interp.Faulted f -> Omnivm.Fault.to_string f
        | Omnivm.Interp.Out_of_fuel -> "fuel")

let sbrk_heap () =
  expect_output
    (wrap {|
        li r1, 64
        hcall 5            ; sbrk
        addi r2, r1, 0
        li r3, 77
        sw r3, 0(r2)
        lw r1, 0(r2) |})
    "77\n"

(* --- memory unit tests --- *)

let memory_unit () =
  let mem = Omnivm.Memory.create () in
  ignore
    (Omnivm.Memory.map mem ~name:"a" ~base:0x1000 ~size:0x1000
       ~perm:Omnivm.Memory.perm_rw);
  Omnivm.Memory.store32 mem 0x1000 0x11223344;
  Alcotest.(check int) "load32" 0x11223344 (Omnivm.Memory.load32 mem 0x1000);
  Alcotest.(check int) "load8 le" 0x44 (Omnivm.Memory.load8 mem 0x1000);
  Alcotest.(check int) "load16" 0x3344 (Omnivm.Memory.load16 mem 0x1000);
  Omnivm.Memory.store_float mem 0x1008 3.25;
  Alcotest.(check (float 0.0)) "float" 3.25 (Omnivm.Memory.load_float mem 0x1008);
  Alcotest.check_raises "unmapped"
    (Omnivm.Fault.Vm_fault
       (Omnivm.Fault.Access_violation { addr = 0x0; access = Omnivm.Fault.Read }))
    (fun () -> ignore (Omnivm.Memory.load8 mem 0x0));
  (* permission change *)
  Omnivm.Memory.set_perm mem "a" Omnivm.Memory.perm_r;
  Alcotest.check_raises "read-only"
    (Omnivm.Fault.Vm_fault
       (Omnivm.Fault.Access_violation
          { addr = 0x1000; access = Omnivm.Fault.Write }))
    (fun () -> Omnivm.Memory.store8 mem 0x1000 1);
  (* straddling the region end *)
  Alcotest.check_raises "straddle"
    (Omnivm.Fault.Vm_fault
       (Omnivm.Fault.Access_violation
          { addr = 0x2001; access = Omnivm.Fault.Read }))
    (fun () -> ignore (Omnivm.Memory.load32 mem 0x1FFE))

let overlap_rejected () =
  let mem = Omnivm.Memory.create () in
  ignore
    (Omnivm.Memory.map mem ~name:"a" ~base:0x1000 ~size:0x2000
       ~perm:Omnivm.Memory.perm_rw);
  Alcotest.check_raises "overlap"
    (Invalid_argument "Memory.map: overlapping regions") (fun () ->
      ignore
        (Omnivm.Memory.map mem ~name:"b" ~base:0x2000 ~size:0x1000
           ~perm:Omnivm.Memory.perm_rw))

(* --- wire format round-trip --- *)

let gen_reg = QCheck.Gen.int_bound 15

let gen_instr : int VI.t QCheck.Gen.t =
  let open QCheck.Gen in
  let imm = oneof [ int_bound 100; map W.of_int int; return 0 ] in
  let lab = map (fun i -> Omnivm.Layout.code_base + (4 * i)) (int_bound 1000) in
  let binop =
    oneofl
      [ VI.Add; Sub; Mul; Div; Divu; Rem; Remu; And; Or; Xor; Sll; Srl; Sra;
        Slt; Sltu ]
  in
  let cond =
    oneofl [ VI.Eq; Ne; Lt; Le; Gt; Ge; Ltu; Leu; Gtu; Geu ]
  in
  let width_s = oneofl [ (VI.W8, false); (W8, true); (W16, false); (W16, true); (W32, true) ] in
  let swidth = oneofl [ VI.W8; W16; W32 ] in
  let prec = oneofl [ VI.Single; VI.Double ] in
  oneof
    [ return VI.Nop;
      map2 (fun r i -> VI.Li (r, i)) gen_reg imm;
      (binop >>= fun op ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       gen_reg >>= fun c -> return (VI.Binop (op, a, b, c)));
      (binop >>= fun op ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       imm >>= fun i -> return (VI.Binopi (op, a, b, i)));
      (width_s >>= fun (w, s) ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       imm >>= fun i -> return (VI.Load (w, s, a, b, i)));
      (swidth >>= fun w ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       imm >>= fun i -> return (VI.Store (w, a, b, i)));
      (prec >>= fun p ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       imm >>= fun i -> return (VI.Fload (p, a, b, i)));
      (prec >>= fun p ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       imm >>= fun i -> return (VI.Fstore (p, a, b, i)));
      (oneofl [ VI.Fadd; Fsub; Fmul; Fdiv ] >>= fun op ->
       prec >>= fun p ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       gen_reg >>= fun c -> return (VI.Fbinop (op, p, a, b, c)));
      (oneofl [ VI.Fneg; Fabs; Fmov ] >>= fun op ->
       prec >>= fun p ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b -> return (VI.Funop (op, p, a, b)));
      (oneofl [ VI.Feq; Flt; Fle ] >>= fun op ->
       prec >>= fun p ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       gen_reg >>= fun c -> return (VI.Fcmp (op, p, a, b, c)));
      (prec >>= fun p ->
       gen_reg >>= fun a ->
       float_bound_inclusive 1000.0 >>= fun v -> return (VI.Fli (p, a, v)));
      (cond >>= fun c ->
       gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       lab >>= fun l -> return (VI.Br (c, a, b, l)));
      (cond >>= fun c ->
       gen_reg >>= fun a ->
       imm >>= fun i ->
       lab >>= fun l -> return (VI.Bri (c, a, i, l)));
      map (fun l -> VI.J l) lab;
      map (fun l -> VI.Jal l) lab;
      map (fun r -> VI.Jr r) gen_reg;
      map2 (fun a b -> VI.Jalr (a, b)) gen_reg gen_reg;
      (gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       int_bound 3 >>= fun pos ->
       int_range 1 (4 - pos) >>= fun len -> return (VI.Ext (a, b, pos, len)));
      (gen_reg >>= fun a ->
       gen_reg >>= fun b ->
       int_bound 3 >>= fun pos ->
       int_range 1 (4 - pos) >>= fun len -> return (VI.Ins (a, b, pos, len)));
      map (fun n -> VI.Hcall n) (int_bound 8);
      map (fun n -> VI.Trap n) (int_bound 100)
    ]

let arb_exe =
  QCheck.make
    ~print:(fun (e : Omnivm.Exe.t) ->
      Format.asprintf "%a" Omnivm.Exe.pp e)
    QCheck.Gen.(
      list_size (int_range 1 40) gen_instr >>= fun instrs ->
      string_size (int_bound 64) >>= fun data ->
      int_bound 256 >>= fun bss ->
      let text = Array.of_list instrs in
      return
        {
          Omnivm.Exe.text;
          entry = Omnivm.Layout.code_base;
          data = Bytes.of_string data;
          bss_size = bss;
          symbols = [ ("main", Omnivm.Layout.code_base) ];
        })

let wire_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"wire encode/decode roundtrip" arb_exe
       (fun exe ->
         let exe' = Omnivm.Wire.decode (Omnivm.Wire.encode exe) in
         exe'.Omnivm.Exe.text = exe.Omnivm.Exe.text
         && exe'.entry = exe.entry
         && Bytes.equal exe'.data exe.data
         && exe'.bss_size = exe.bss_size
         && exe'.symbols = exe.symbols))

(* decoding arbitrary bytes must never raise anything except Bad_module
   (and decoded modules must re-encode) *)
let wire_decode_robust =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000 ~name:"wire decode is total"
       QCheck.(string_of_size (QCheck.Gen.int_bound 200))
       (fun s ->
         (* half the time, corrupt a valid module instead of random bytes *)
         let s =
           if String.length s > 0 && Char.code s.[0] land 1 = 0 then s
           else begin
             let good =
               Omnivm.Wire.encode
                 { Omnivm.Exe.text = [| VI.Li (1, 42); VI.Hcall 0 |];
                   entry = Omnivm.Layout.code_base;
                   data = Bytes.of_string "abc"; bss_size = 4;
                   symbols = [ ("main", Omnivm.Layout.code_base) ] }
             in
             let b = Bytes.of_string good in
             String.iteri
               (fun i c ->
                 if i < Bytes.length b then
                   Bytes.set b (i * 31 mod Bytes.length b) c)
               s;
             Bytes.to_string b
           end
         in
         match Omnivm.Wire.decode s with
         | exe -> String.length (Omnivm.Wire.encode exe) > 0
         | exception Omnivm.Wire.Bad_module _ -> true))

let wire_rejects_garbage () =
  Alcotest.check_raises "magic" (Omnivm.Wire.Bad_module "bad magic")
    (fun () -> ignore (Omnivm.Wire.decode "NOPE"));
  let good = Omnivm.Wire.encode
      { Omnivm.Exe.text = [| VI.Nop |]; entry = Omnivm.Layout.code_base;
        data = Bytes.create 0; bss_size = 0; symbols = [] } in
  let truncated = String.sub good 0 (String.length good - 1) in
  (match Omnivm.Wire.decode truncated with
  | exception Omnivm.Wire.Bad_module _ -> ()
  | _ -> Alcotest.fail "truncated module accepted")

let () =
  Alcotest.run "omnivm"
    [ ("interp",
       [ Alcotest.test_case "smoke" `Quick smoke;
         Alcotest.test_case "arith" `Quick arith;
         Alcotest.test_case "memory ops" `Quick memory_ops;
         Alcotest.test_case "float ops" `Quick float_ops;
         Alcotest.test_case "ext/ins" `Quick ext_ins;
         Alcotest.test_case "branches" `Quick branches;
         Alcotest.test_case "calls" `Quick calls ]);
      ("faults",
       [ Alcotest.test_case "unmapped read" `Quick fault_unmapped;
         Alcotest.test_case "write to code" `Quick fault_write_code;
         Alcotest.test_case "division by zero" `Quick fault_div0;
         Alcotest.test_case "bad indirect jump" `Quick fault_bad_jump;
         Alcotest.test_case "handler delivery" `Quick handler_delivery;
         Alcotest.test_case "unauthorized host call" `Quick unauthorized_hcall;
         Alcotest.test_case "sbrk heap" `Quick sbrk_heap ]);
      ("memory",
       [ Alcotest.test_case "unit" `Quick memory_unit;
         Alcotest.test_case "overlap rejected" `Quick overlap_rejected ]);
      ("wire",
       [ wire_roundtrip;
         wire_decode_robust;
         Alcotest.test_case "rejects garbage" `Quick wire_rejects_garbage ])
    ]
