(* Experiment-harness tests: run the table machinery over a micro-workload
   and check the structural properties the paper's results rest on, without
   paying for full benchmark runs. *)

module E = Omni_harness.Experiments
module Machine = Omni_targets.Machine
module Arch = Omni_targets.Arch

(* a small but non-trivial program exercising int, fp, memory, and calls *)
let micro : Omni_workloads.Workloads.t =
  {
    Omni_workloads.Workloads.name = "micro";
    source =
      {| int tab[64];
         double acc = 0.0;
         int mix(int x) { return (x * 31 + 7) ^ (x >> 3); }
         int bits(int x) { int n; n = 0; while (x != 0) { n += x & 1; x = (x >> 1) & 0x7FFFFFFF; } return n; }
         int main(void) {
           int i; int s;
           for (i = 0; i < 64; i++) tab[i] = mix(i);
           s = 0;
           for (i = 0; i < 64; i++) s += (tab[i] & 0xFF) + bits(tab[i]);
           acc = (double)s / 3.0;
           print_int(s); putchar(10);
           print_float(acc); putchar(10);
           return 0;
         } |};
  }

let all_archs = [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

let ratios_sane () =
  List.iter
    (fun arch ->
      let r = E.ratio micro arch E.Mobile_sfi E.Native_cc in
      Alcotest.(check bool)
        (Printf.sprintf "%s sfi/cc ratio %.2f in [1.0, 2.5]" (Arch.name arch) r)
        true
        (r >= 0.99 && r <= 2.5);
      let r45 = E.ratio micro arch E.Mobile_nosfi E.Native_cc in
      Alcotest.(check bool)
        (Printf.sprintf "%s sfi >= no-sfi" (Arch.name arch))
        true (r >= r45 -. 0.001))
    all_archs

let sfi_overhead_positive () =
  (* SFI must cost something but not dominate *)
  List.iter
    (fun arch ->
      let sfi = E.measure micro arch E.Mobile_sfi in
      let nosfi = E.measure micro arch E.Mobile_nosfi in
      Alcotest.(check bool)
        (Printf.sprintf "%s sfi cycles >= no-sfi" (Arch.name arch))
        true
        (sfi.E.m_cycles >= nosfi.E.m_cycles);
      let over =
        float_of_int sfi.E.m_cycles /. float_of_int nosfi.E.m_cycles
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s sfi overhead %.2f < 1.5" (Arch.name arch) over)
        true (over < 1.5))
    all_archs

let translator_opts_help () =
  List.iter
    (fun arch ->
      let opt = E.measure micro arch E.Mobile_sfi in
      let noopt = E.measure micro arch E.Mobile_sfi_noopt in
      Alcotest.(check bool)
        (Printf.sprintf "%s translator opts don't hurt" (Arch.name arch))
        true
        (opt.E.m_cycles <= noopt.E.m_cycles))
    all_archs

let omni_counts_consistent () =
  (* every configuration executes the same number of OmniVM instructions:
     the Core-origin discipline in the translators *)
  List.iter
    (fun arch ->
      let a = E.measure micro arch E.Mobile_sfi in
      let b = E.measure micro arch E.Mobile_nosfi in
      Alcotest.(check int)
        (Printf.sprintf "%s omni instruction counts agree" (Arch.name arch))
        a.E.m_omni_instructions b.E.m_omni_instructions)
    all_archs;
  (* and across architectures *)
  let base = (E.measure micro Arch.Mips E.Mobile_sfi).E.m_omni_instructions in
  List.iter
    (fun arch ->
      Alcotest.(check int)
        (Printf.sprintf "%s omni count matches mips" (Arch.name arch))
        base
        (E.measure micro arch E.Mobile_sfi).E.m_omni_instructions)
    all_archs

let expansion_profile_shape () =
  (* Figure 1 structural facts *)
  let profile arch =
    match (E.measure micro arch E.Mobile_sfi).E.m_stats with
    | Some s -> Machine.expansion_profile s
    | None -> Alcotest.fail "no stats"
  in
  let get k p = List.assoc k p in
  let mips = profile Arch.Mips in
  let ppc = profile Arch.Ppc in
  Alcotest.(check bool) "mips has delay-slot nops" true (get "bnop" mips > 0.0);
  Alcotest.(check (float 0.0)) "ppc has no delay slots" 0.0 (get "bnop" ppc);
  Alcotest.(check bool) "ppc executes more compares" true
    (get "cmp" ppc > get "cmp" mips);
  Alcotest.(check bool) "ppc shorter sfi sequence" true
    (get "sfi" ppc < get "sfi" mips);
  Alcotest.(check bool) "some sfi overhead on mips" true (get "sfi" mips > 0.0)

let regfile_monotone () =
  (* Table 2: fewer registers cannot be faster *)
  let cycles n =
    (E.measure ~regfile_size:n micro Arch.Sparc E.Mobile_sfi).E.m_cycles
  in
  let c8 = cycles 8 and c12 = cycles 12 and c16 = cycles 16 in
  Alcotest.(check bool)
    (Printf.sprintf "8 regs (%d) >= 12 regs (%d)" c8 c12)
    true (c8 >= c12);
  Alcotest.(check bool)
    (Printf.sprintf "12 regs (%d) >= 16 regs (%d)" c12 c16)
    true (c12 >= c16)

let table_rendering () =
  (* tables render and contain every workload row (micro only, via direct
     render call) *)
  let s =
    E.render_ratio_table ~title:"T" ~columns:[ "a"; "b" ] ~rows:[ "x"; "y" ]
      ~cell:(fun r c -> if r = "x" && c = "a" then Some 1.25 else Some 2.0)
  in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "has average row" true (contains s "average");
  Alcotest.(check bool) "has the cell" true (contains s "1.25")

let figure2_renders () =
  let s = E.figure2 () in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions all architectures" true
    (contains s "MIPS" && contains s "SPARC" && contains s "PowerPC"
     && contains s "x86")

let () =
  Alcotest.run "harness"
    [ ("experiments",
       [ Alcotest.test_case "ratios sane" `Slow ratios_sane;
         Alcotest.test_case "sfi overhead" `Slow sfi_overhead_positive;
         Alcotest.test_case "translator opts" `Slow translator_opts_help;
         Alcotest.test_case "omni counts" `Slow omni_counts_consistent;
         Alcotest.test_case "expansion profile" `Slow expansion_profile_shape;
         Alcotest.test_case "regfile monotone" `Slow regfile_monotone ]);
      ("rendering",
       [ Alcotest.test_case "ratio table" `Quick table_rendering;
         Alcotest.test_case "figure 2" `Quick figure2_renders ])
    ]
