(* Unit and property tests for 32-bit word arithmetic. *)

module W = Omni_util.Word32

let check = Alcotest.(check int)

let unit_tests =
  [ Alcotest.test_case "wrap add" `Quick (fun () ->
        check "max+1" W.min_int32 (W.add W.max_int32 1);
        check "min-1" W.max_int32 (W.sub W.min_int32 1);
        check "0+0" 0 (W.add 0 0));
    Alcotest.test_case "canonical" `Quick (fun () ->
        check "of_int wraps" 0 (W.of_int 0x100000000);
        check "of_int sign" (-1) (W.of_int 0xFFFFFFFF);
        check "of_int keep" 123 (W.of_int 123));
    Alcotest.test_case "mul" `Quick (fun () ->
        check "simple" 42 (W.mul 6 7);
        check "wrap" 0 (W.mul 0x10000 0x10000);
        check "neg" (-42) (W.mul (-6) 7);
        check "big" (W.of_int (0xFFFFFFFF * 3)) (W.mul (-1) 3));
    Alcotest.test_case "div trunc toward zero" `Quick (fun () ->
        check "7/2" 3 (W.div 7 2);
        check "-7/2" (-3) (W.div (-7) 2);
        check "7/-2" (-3) (W.div 7 (-2));
        check "-7/-2" 3 (W.div (-7) (-2));
        check "min/-1 wraps" W.min_int32 (W.div W.min_int32 (-1)));
    Alcotest.test_case "rem sign" `Quick (fun () ->
        check "7%2" 1 (W.rem 7 2);
        check "-7%2" (-1) (W.rem (-7) 2);
        check "7%-2" 1 (W.rem 7 (-2)));
    Alcotest.test_case "divu/remu" `Quick (fun () ->
        check "unsigned div" 0x7FFFFFFF (W.divu (-2) 2);
        check "unsigned rem" 0 (W.remu (-2) 2);
        check "divu small" 3 (W.divu 7 2));
    Alcotest.test_case "div by zero" `Quick (fun () ->
        Alcotest.check_raises "div" W.Division_by_zero (fun () ->
            ignore (W.div 1 0));
        Alcotest.check_raises "remu" W.Division_by_zero (fun () ->
            ignore (W.remu 1 0)));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check "sll" 256 (W.shift_left 1 8);
        check "sll wrap" W.min_int32 (W.shift_left 1 31);
        check "srl sign" 1 (W.shift_right_logical W.min_int32 31);
        check "sra sign" (-1) (W.shift_right_arith W.min_int32 31);
        check "amount mod 32" 2 (W.shift_left 1 33));
    Alcotest.test_case "extensions" `Quick (fun () ->
        check "sext8 pos" 0x7F (W.sext8 0x7F);
        check "sext8 neg" (-1) (W.sext8 0xFF);
        check "zext8" 0xFF (W.zext8 0xFFF);
        check "sext16 neg" (-1) (W.sext16 0xFFFF);
        check "zext16" 0x8000 (W.zext16 0x8000));
    Alcotest.test_case "unsigned compare" `Quick (fun () ->
        Alcotest.(check bool) "ltu" true (W.ltu 1 (-1));
        Alcotest.(check bool) "ltu2" false (W.ltu (-1) 1);
        Alcotest.(check bool) "leu eq" true (W.leu (-1) (-1)));
    Alcotest.test_case "bytes" `Quick (fun () ->
        let v = W.of_bytes 0x78 0x56 0x34 0x12 in
        check "assemble" 0x12345678 v;
        check "byte0" 0x78 (W.byte v 0);
        check "byte3" 0x12 (W.byte v 3))
  ]

(* properties *)

let arb32 =
  QCheck.map W.of_int
    QCheck.(oneof [ int_bound 1000; int; always 0; always W.min_int32;
                    always W.max_int32 ])

let prop name arb p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:2000 ~name arb p)

let props =
  [ prop "canonical range" arb32 (fun x -> x >= W.min_int32 && x <= W.max_int32);
    prop "add comm"
      QCheck.(pair arb32 arb32)
      (fun (a, b) -> W.add a b = W.add b a);
    prop "add assoc"
      QCheck.(triple arb32 arb32 arb32)
      (fun (a, b, c) -> W.add (W.add a b) c = W.add a (W.add b c));
    prop "sub inverse"
      QCheck.(pair arb32 arb32)
      (fun (a, b) -> W.add (W.sub a b) b = a);
    prop "mul matches int64"
      QCheck.(pair arb32 arb32)
      (fun (a, b) ->
        let m64 = Int64.mul (Int64.of_int a) (Int64.of_int b) in
        let lo = Int64.to_int (Int64.logand m64 0xFFFFFFFFL) in
        W.mul a b = W.of_int lo);
    prop "div euclid-ish"
      QCheck.(pair arb32 arb32)
      (fun (a, b) ->
        b = 0 || (a = W.min_int32 && b = -1)
        || W.add (W.mul (W.div a b) b) (W.rem a b) = a);
    prop "divu matches unsigned"
      QCheck.(pair arb32 arb32)
      (fun (a, b) ->
        b = 0 || W.divu a b = W.of_int (W.to_unsigned a / W.to_unsigned b));
    prop "logical ops agree with land/lor/lxor"
      QCheck.(pair arb32 arb32)
      (fun (a, b) ->
        W.logand a b = W.of_int (a land b)
        && W.logor a b = W.of_int (a lor b)
        && W.logxor a b = W.of_int (a lxor b));
    prop "byte roundtrip" arb32 (fun x ->
        W.of_bytes (W.byte x 0) (W.byte x 1) (W.byte x 2) (W.byte x 3) = x);
    prop "sext8 idempotent" arb32 (fun x -> W.sext8 (W.sext8 x) = W.sext8 x);
    prop "unsigned view roundtrip" arb32 (fun x ->
        W.of_unsigned (W.to_unsigned x) = x)
  ]

let () = Alcotest.run "word32" [ ("units", unit_tests); ("props", props) ]
