(* Host-environment tests: service dispatch, authority, heap management,
   and loader behaviour. *)

module Host = Omni_runtime.Host
module Loader = Omni_runtime.Loader
module L = Omnivm.Layout

let mk_host ?(allow = Omnivm.Hostcall.all) ?(heap = 4096) () =
  let mem = Omnivm.Memory.create () in
  ignore
    (Omnivm.Memory.map mem ~name:"data" ~base:L.data_base ~size:L.data_size
       ~perm:Omnivm.Memory.perm_rw);
  let host =
    Host.create ~allow ~heap_start:(L.data_base + 0x1000)
      ~heap_limit:(L.data_base + 0x1000 + heap) ()
  in
  (host, mem)

let request host mem index args =
  let ret = ref 0 in
  let outcome =
    Host.handle host
      {
        Host.index;
        arg = (fun i -> try List.nth args i with _ -> 0);
        farg = (fun _ -> 0.0);
        set_ret = (fun v -> ret := v);
        mem;
      }
  in
  (outcome, !ret)

let output_services () =
  let host, mem = mk_host () in
  ignore (request host mem 1 [ Char.code 'h' ]);
  ignore (request host mem 1 [ Char.code 'i' ]);
  ignore (request host mem 2 [ -42 ]);
  Alcotest.(check string) "putchar + print_int" "hi-42" (Host.output host);
  Host.clear_output host;
  Alcotest.(check string) "cleared" "" (Host.output host);
  (* print_string reads a NUL-terminated string from module memory *)
  let addr = L.data_base + 64 in
  String.iteri
    (fun i c -> Omnivm.Memory.store8 mem (addr + i) (Char.code c))
    "str!\000";
  ignore (request host mem 3 [ addr ]);
  Alcotest.(check string) "print_string" "str!" (Host.output host)

let sbrk_behaviour () =
  let host, mem = mk_host ~heap:64 () in
  let _, a = request host mem 5 [ 16 ] in
  let _, b = request host mem 5 [ 16 ] in
  Alcotest.(check bool) "blocks distinct and ordered" true (b >= a + 16);
  Alcotest.(check int) "aligned" 0 (a land 7);
  (* exhaustion returns null, not a fault *)
  let _, c = request host mem 5 [ 1_000_000 ] in
  Alcotest.(check int) "exhausted -> 0" 0 c;
  (* negative requests are clamped *)
  let _, d = request host mem 5 [ -5 ] in
  Alcotest.(check bool) "negative clamped" true (d > 0)

let authority () =
  let host, mem = mk_host ~allow:[ Omnivm.Hostcall.Exit ] () in
  (match request host mem 0 [ 3 ] with
  | Host.Exit 3, _ -> ()
  | _ -> Alcotest.fail "exit allowed");
  Alcotest.check_raises "putchar denied"
    (Omnivm.Fault.Vm_fault (Omnivm.Fault.Unauthorized_host_call { index = 1 }))
    (fun () -> ignore (request host mem 1 [ 65 ]));
  Alcotest.check_raises "unknown call"
    (Omnivm.Fault.Vm_fault (Omnivm.Fault.Unauthorized_host_call { index = 99 }))
    (fun () -> ignore (request host mem 99 []))

let service_extension () =
  let host, mem = mk_host () in
  (* no service installed: host_service is a fault *)
  Alcotest.check_raises "no service"
    (Omnivm.Fault.Vm_fault (Omnivm.Fault.Unauthorized_host_call { index = 8 }))
    (fun () -> ignore (request host mem 8 [ 1; 2; 3; 4 ]));
  Host.set_service host (fun a b c d -> (a * 1000) + (b * 100) + (c * 10) + d);
  let _, v = request host mem 8 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "service result" 1234 v

let set_handler_outcome () =
  let host, mem = mk_host () in
  match request host mem 7 [ 0x10000040 ] with
  | Host.Set_handler a, _ -> Alcotest.(check int) "address" 0x10000040 a
  | _ -> Alcotest.fail "expected Set_handler"

let loader_layout () =
  let obj =
    Omni_asm.Parse.assemble ~name:"t"
      {|
        .data
        .globl g
g:      .word 0x11223344
        .text
        .globl main
main:   li r1, 0
        hcall 0
|}
  in
  let exe = Omni_asm.Link.link [ obj ] in
  let img = Loader.load exe in
  (* globals land above the reserved runtime area *)
  let gaddr = Option.get (Omnivm.Exe.lookup_symbol exe "g") in
  Alcotest.(check bool) "global above reserved area" true
    (gaddr >= L.data_base + L.reserved_data);
  Alcotest.(check int) "image copied" 0x11223344
    (Omnivm.Memory.load32 img.Loader.mem gaddr);
  (* heap starts after globals, stays below the stack reservation *)
  Alcotest.(check bool) "heap after globals" true
    (img.Loader.host.Host.brk > gaddr);
  Alcotest.(check bool) "heap below stack" true
    (img.Loader.host.Host.heap_limit
    <= L.data_base + L.data_size - L.default_stack_size);
  (* no host region unless requested *)
  Alcotest.(check bool) "no host region" true (img.Loader.host_region = None);
  let img2 = Loader.load ~map_host_region:true exe in
  Alcotest.(check bool) "host region on demand" true
    (img2.Loader.host_region <> None)

let lcg_determinism () =
  let a = Omni_util.Lcg.create 42 in
  let b = Omni_util.Lcg.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Omni_util.Lcg.next a)
      (Omni_util.Lcg.next b)
  done;
  let c = Omni_util.Lcg.create 43 in
  Alcotest.(check bool) "different seed diverges" true
    (Omni_util.Lcg.next a <> Omni_util.Lcg.next c);
  for _ = 1 to 1000 do
    let v = Omni_util.Lcg.int a 10 in
    Alcotest.(check bool) "bounded" true (v >= 0 && v < 10)
  done

let () =
  Alcotest.run "runtime"
    [ ("host",
       [ Alcotest.test_case "output services" `Quick output_services;
         Alcotest.test_case "sbrk" `Quick sbrk_behaviour;
         Alcotest.test_case "authority" `Quick authority;
         Alcotest.test_case "service extension" `Quick service_extension;
         Alcotest.test_case "set_handler" `Quick set_handler_outcome ]);
      ("loader", [ Alcotest.test_case "layout" `Quick loader_layout ]);
      ("util", [ Alcotest.test_case "lcg determinism" `Quick lcg_determinism ])
    ]
