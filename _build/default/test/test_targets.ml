(* Target-machine tests: translators, schedulers, delay slots, pipeline
   cost model, and the native baseline tiers. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine
module Arch = Omni_targets.Arch
module Risc = Omni_targets.Risc
module P = Omni_targets.Pipeline
module S = Omni_targets.Sched

let sandbox = Machine.Mobile (Omni_sfi.Policy.make ())

let compile_asm src =
  Omni_asm.Link.link [ Omni_asm.Parse.assemble ~name:"t" src ]

let translate_risc arch ?(mode = sandbox) ?opts exe =
  match Api.translate ~mode ?opts arch exe with
  | Api.T_risc p -> p
  | Api.T_x86 _ -> assert false

(* --- scheduler: random straight-line blocks preserve semantics --- *)

type sched_ins =
  | Op of int * int * int (* rd := ra + 7*rb + 1 *)
  | Ld of int * int (* rd := mem[cell] *)
  | St of int * int (* mem[cell] := ra *)

let sched_attrs = function
  | Op (rd, ra, rb) ->
      { P.uses = [ ra; rb ]; defs = [ rd ]; latency = 2; unit_ = P.IU;
        is_load = false; is_store = false }
  | Ld (rd, _) ->
      { P.uses = []; defs = [ rd ]; latency = 2; unit_ = P.IU;
        is_load = true; is_store = false }
  | St (_, ra) ->
      { P.uses = [ ra ]; defs = []; latency = 1; unit_ = P.IU;
        is_load = false; is_store = true }

let sched_info = { S.attrs = sched_attrs; is_barrier = (fun _ -> false) }

let sched_exec prog =
  let regs = Array.init 8 (fun i -> (i * 13) + 1) in
  let mem = Array.make 4 5 in
  Array.iter
    (function
      | Op (rd, ra, rb) -> regs.(rd) <- (regs.(ra) + (regs.(rb) * 7) + 1) land 0xFFFF
      | Ld (rd, c) -> regs.(rd) <- mem.(c)
      | St (c, ra) -> mem.(c) <- regs.(ra))
    prog;
  (Array.to_list regs, Array.to_list mem)

let gen_block =
  QCheck.Gen.(
    list_size (int_range 1 14)
      (oneof
         [ map3 (fun a b c -> Op (a, b, c)) (int_bound 7) (int_bound 7) (int_bound 7);
           map2 (fun a b -> Ld (a, b)) (int_bound 7) (int_bound 3);
           map2 (fun a b -> St (a, b)) (int_bound 3) (int_bound 7) ])
    >>= fun l -> return (Array.of_list l))

let scheduler_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:3000 ~name:"list scheduling preserves semantics"
       (QCheck.make gen_block)
       (fun prog ->
         sched_exec (S.schedule_body sched_info ~quality:S.Greedy prog)
         = sched_exec prog
         && sched_exec (S.schedule_body sched_info ~quality:S.Critical_path prog)
            = sched_exec prog))

let delay_slot_filler_safe =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000 ~name:"delay slot filler respects hazards"
       (QCheck.make
          QCheck.Gen.(pair gen_block (int_bound 7)))
       (fun (prog, breg) ->
         (* a "branch" that reads breg and writes reg 7 (like a call) *)
         let battrs =
           { P.uses = [ breg ]; defs = [ 7 ]; latency = 1; unit_ = P.BRU;
             is_load = false; is_store = false }
         in
         let body, filler = S.fill_delay_slot sched_info ~branch_attrs:battrs prog in
         match filler with
         | None -> true
         | Some f ->
             (* executing body+branch-effects+filler must equal prog+branch *)
             let a = sched_exec (Array.append body [| f |]) in
             let b = sched_exec prog in
             (* the filler must not touch breg's value or reg 7 *)
             let fa = sched_attrs f in
             a = b
             && (not (List.mem 7 fa.P.uses))
             && (not (List.mem 7 fa.P.defs))
             && not (List.mem breg fa.P.defs)))

(* --- golden translations: check key sequences per architecture --- *)

let strings_of p =
  Array.map (fun (s : Risc.slot) -> Risc.string_of_instr s.Risc.i) p.Risc.code
  |> Array.to_list

let origins_of p =
  Array.map (fun (s : Risc.slot) -> s.Risc.origin) p.Risc.code |> Array.to_list

let store_sfi_sequences () =
  let exe =
    compile_asm
      {|
        .text
        .globl main
main:   sw r3, 0(r2)
        hcall 0
|}
  in
  (* mips: and + or + store *)
  let mips = translate_risc Arch.Mips exe in
  Alcotest.(check (list string))
    "mips sandbox sequence"
    [ "and sd, o2, dm"; "or sd, sd, db"; "sw o3, 0(sd)"; "hcall 0" ]
    (strings_of mips);
  (* ppc: indexed store drops the or (paper 4.3) *)
  let ppc = translate_risc Arch.Ppc exe in
  Alcotest.(check (list string))
    "ppc sandbox sequence (shorter)"
    [ "and sd, o2, dm"; "swx o3, db(sd)"; "hcall 0" ]
    (strings_of ppc);
  (* sfi origins are tagged *)
  Alcotest.(check bool) "sfi origin count mips" true
    (List.length (List.filter (fun o -> o = Machine.Sfi) (origins_of mips)) = 2);
  Alcotest.(check bool) "sfi origin count ppc" true
    (List.length (List.filter (fun o -> o = Machine.Sfi) (origins_of ppc)) = 1)

let branch_models () =
  let exe =
    compile_asm
      {|
        .text
        .globl main
main:   blt r2, r3, main
        hcall 0
|}
  in
  (* mips: slt + bne; sparc/ppc: cmp + branch-on-cc *)
  let mips = strings_of (translate_risc Arch.Mips exe) in
  Alcotest.(check bool) "mips uses slt" true
    (List.exists (fun s -> s = "slt t24, o2, o3") mips);
  let sparc = strings_of (translate_risc Arch.Sparc exe) in
  Alcotest.(check bool) "sparc uses cmp" true
    (List.exists (fun s -> s = "cmp o2, o3") sparc);
  (* branch against zero is a single instruction on mips *)
  let exe0 =
    compile_asm "
        .text
        .globl main
main:   bgei r2, 0, main
        hcall 0
" in
  let mips0 = translate_risc Arch.Mips exe0 in
  let cmps =
    List.length
      (List.filter (fun o -> o = Machine.Cmp) (origins_of mips0))
  in
  Alcotest.(check int) "no compare for branch-vs-zero on mips" 0 cmps

let large_immediates () =
  let exe =
    compile_asm
      {|
        .text
        .globl main
main:   li r2, 305419896   ; 0x12345678
        addi r3, r2, 100000
        hcall 0
|}
  in
  let mips = translate_risc Arch.Mips exe in
  let ldis =
    List.length (List.filter (fun o -> o = Machine.Ldi) (origins_of mips))
  in
  Alcotest.(check bool) "mips needs lui parts" true (ldis >= 2);
  (* the vendor tier models perfect constant handling: no ldi expansion *)
  let cc = translate_risc Arch.Mips ~mode:(Machine.Native Machine.Cc)
      ~opts:Machine.all_opts exe in
  let ldis_cc =
    List.length (List.filter (fun o -> o = Machine.Ldi) (origins_of cc))
  in
  Alcotest.(check int) "native cc has no ldi" 0 ldis_cc

let delay_slots_emitted () =
  let exe =
    compile_asm
      {|
        .text
        .globl main
main:   beq r2, r3, main
        hcall 0
|}
  in
  let no_fill =
    translate_risc Arch.Mips ~opts:Machine.no_opts exe
  in
  (* branch followed by a bnop nop *)
  let rec has_bnop = function
    | [] -> false
    | (s : Risc.slot) :: _ when s.Risc.origin = Machine.Bnop -> true
    | _ :: rest -> has_bnop rest
  in
  Alcotest.(check bool) "mips nop in delay slot" true
    (has_bnop (Array.to_list no_fill.Risc.code));
  (* ppc has no delay slots *)
  let ppc = translate_risc Arch.Ppc ~opts:Machine.no_opts exe in
  Alcotest.(check bool) "ppc has no bnop" false
    (has_bnop (Array.to_list ppc.Risc.code))

(* delay-slot filling must preserve program behaviour: compile a branchy
   program and run with and without filling *)
let delay_fill_semantics () =
  let src =
    {| int collatz(int n) {
         int steps;
         steps = 0;
         while (n != 1) {
           if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
           steps++;
         }
         return steps;
       }
       int main(void) {
         int i; int s;
         s = 0;
         for (i = 1; i < 40; i++) s += collatz(i);
         print_int(s); putchar(10);
         return 0;
       } |}
  in
  let exe = Minic.Driver.compile_exe ~name:"collatz" src in
  let out opts arch =
    let img = Api.load exe in
    let tr = Api.translate ~mode:sandbox ~opts arch exe in
    let r = Api.run_translated ~fuel:50_000_000 tr img in
    (match r.Api.outcome with
    | Machine.Exited 0 -> ()
    | _ -> Alcotest.fail "run failed");
    r.Api.output
  in
  List.iter
    (fun arch ->
      let base = out Machine.no_opts arch in
      Alcotest.(check string)
        (Arch.name arch ^ " fill preserves semantics")
        base
        (out Machine.all_opts arch);
      Alcotest.(check string)
        (Arch.name arch ^ " sched-only preserves semantics")
        base
        (out { Machine.no_opts with schedule = true } arch))
    [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

(* scheduling should not increase cycle counts (on straight-line FP code it
   should decrease them) *)
let scheduling_helps () =
  let src =
    {| double a[64]; double b[64];
       int main(void) {
         int i; double s;
         for (i = 0; i < 64; i++) { a[i] = (double)i * 0.5; b[i] = (double)(64 - i); }
         s = 0.0;
         for (i = 0; i < 64; i++) s += a[i] * b[i] + a[i];
         print_int((int)s); putchar(10);
         return 0;
       } |}
  in
  let exe = Minic.Driver.compile_exe ~name:"dot" src in
  let cycles opts =
    let img = Api.load exe in
    let tr = Api.translate ~mode:sandbox ~opts Arch.Mips exe in
    let r = Api.run_translated ~fuel:50_000_000 tr img in
    r.Api.cycles
  in
  let unsched = cycles Machine.no_opts in
  let sched = cycles { Machine.no_opts with schedule = true;
                       fill_delay_slots = true } in
  Alcotest.(check bool)
    (Printf.sprintf "scheduled (%d) <= unscheduled (%d)" sched unsched)
    true (sched <= unsched)

(* gp addressing shortens global access on sparc *)
let gp_addressing () =
  let exe =
    compile_asm
      {|
        .data
g:      .word 7
        .text
        .globl main
main:   lw r2, g(r0)
        hcall 0
|}
  in
  let without =
    translate_risc Arch.Sparc ~opts:{ Machine.all_opts with use_gp = false } exe
  in
  let with_gp = translate_risc Arch.Sparc ~opts:Machine.all_opts exe in
  Alcotest.(check bool) "gp saves instructions" true
    (Array.length with_gp.Risc.code < Array.length without.Risc.code);
  (* and execution still works *)
  let img = Api.load exe in
  let o, _, _ =
    Omni_targets.Risc_sim.run ~fuel:1000 with_gp img.Omni_runtime.Loader.mem
      img.Omni_runtime.Loader.host
  in
  match o with
  | Machine.Exited 7 -> () (* hcall 0 takes r1; r1 = junk... just check exit *)
  | Machine.Exited _ -> ()
  | _ -> Alcotest.fail "gp run failed"

(* native tiers: cc is at least as fast as gcc, both at least as fast as
   mobile code with SFI *)
let tier_ordering () =
  let w = Omni_workloads.Workloads.eqntott ~size:Omni_workloads.Workloads.Test in
  let exe = Minic.Driver.compile_exe ~name:"eq" w.Omni_workloads.Workloads.source in
  List.iter
    (fun arch ->
      let run mode opts =
        let img = Api.load exe in
        let tr = Api.translate ~mode ~opts arch exe in
        let r = Api.run_translated ~fuel:500_000_000 tr img in
        (match r.Api.outcome with
        | Machine.Exited 0 -> ()
        | _ -> Alcotest.fail "tier run failed");
        r.Api.cycles
      in
      let cc = run (Machine.Native Machine.Cc) Machine.all_opts in
      let gcc = run (Machine.Native Machine.Gcc) Machine.all_opts in
      let mobile = run sandbox (Api.mobile_opts arch) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cc (%d) <= gcc (%d)" (Arch.name arch) cc gcc)
        true (cc <= gcc);
      Alcotest.(check bool)
        (Printf.sprintf "%s: gcc (%d) <= mobile+sfi (%d)" (Arch.name arch) gcc mobile)
        true (gcc <= mobile))
    [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

(* the guard-zone SFI optimization (paper 4.4 forecast): semantics are
   preserved, cycles never increase, and the verifier still accepts *)
let sfi_opt_correct () =
  let w = Omni_workloads.Workloads.li ~size:Omni_workloads.Workloads.Test in
  let exe = Minic.Driver.compile_exe ~name:"li" w.Omni_workloads.Workloads.source in
  let interp = Api.run_exe ~engine:Api.Interp ~fuel:500_000_000 exe in
  List.iter
    (fun arch ->
      let run opts =
        let img = Api.load exe in
        let tr = Api.translate ~mode:sandbox ~opts arch exe in
        let r = Api.run_translated ~fuel:500_000_000 tr img in
        (match r.Api.outcome with
        | Machine.Exited 0 -> ()
        | _ -> Alcotest.fail "sfi_opt run failed");
        (r.Api.output, r.Api.cycles, tr)
      in
      let base_out, base_cycles, _ = run (Api.mobile_opts arch) in
      let opt_out, opt_cycles, tr =
        run { (Api.mobile_opts arch) with Machine.sfi_opt = true }
      in
      Alcotest.(check string) (Arch.name arch ^ " output preserved")
        interp.Api.output opt_out;
      Alcotest.(check string) (Arch.name arch ^ " same as unoptimized")
        base_out opt_out;
      Alcotest.(check bool)
        (Printf.sprintf "%s opt (%d) <= base (%d)" (Arch.name arch)
           opt_cycles base_cycles)
        true
        (opt_cycles <= base_cycles);
      (* the verifier must still accept the optimized code *)
      match tr with
      | Api.T_risc p -> (
          match Omni_targets.Risc_verify.verify p with
          | Ok () -> ()
          | Error { Omni_sfi.Verifier.index; reason } ->
              Alcotest.failf "%s: verifier rejected sfi_opt code at %d: %s"
                (Arch.name arch) index reason)
      | Api.T_x86 _ -> ())
    [ Arch.Mips; Arch.Sparc; Arch.Ppc ]

(* pipeline model sanity *)
let pipeline_unit () =
  let cfg =
    { P.issue_width = 1; dual_issue_rule = (fun _ _ -> false);
      taken_branch_penalty = 0 }
  in
  let t = P.create cfg in
  let simple = { P.uses = []; defs = [ 1 ]; latency = 1; unit_ = P.IU;
                 is_load = false; is_store = false } in
  P.step t simple ~taken_branch:false;
  P.step t simple ~taken_branch:false;
  Alcotest.(check int) "two independent ops, 1/cycle" 2 (P.cycles t);
  (* load-use interlock *)
  let t = P.create cfg in
  let load = { P.uses = []; defs = [ 2 ]; latency = 3; unit_ = P.IU;
               is_load = true; is_store = false } in
  let use = { P.uses = [ 2 ]; defs = [ 3 ]; latency = 1; unit_ = P.IU;
              is_load = false; is_store = false } in
  P.step t load ~taken_branch:false;
  P.step t use ~taken_branch:false;
  Alcotest.(check int) "load-use stall" 4 (P.cycles t);
  (* dual issue *)
  let cfg2 = { cfg with P.issue_width = 2; dual_issue_rule = (fun _ _ -> true) } in
  let t = P.create cfg2 in
  let op d = { simple with P.defs = [ d ] } in
  P.step t (op 1) ~taken_branch:false;
  P.step t (op 2) ~taken_branch:false;
  P.step t (op 3) ~taken_branch:false;
  P.step t (op 4) ~taken_branch:false;
  Alcotest.(check int) "2-wide pairs" 2 (P.cycles t)

(* x86 register homes *)
let x86_homes () =
  let open Omni_targets.X86 in
  Alcotest.(check bool) "sp is esp" true (int_home Omnivm.Reg.sp = Hreg esp);
  Alcotest.(check bool) "r0 is zero" true (int_home 0 = Hzero);
  (match int_home 7 with
  | Hmem a -> Alcotest.(check int) "r7 home" (Omnivm.Layout.regsave_int_addr 7) a
  | _ -> Alcotest.fail "r7 should live in memory");
  match int_home 1 with
  | Hreg _ -> ()
  | _ -> Alcotest.fail "r1 should have a register home"

let () =
  Alcotest.run "targets"
    [ ("scheduler", [ scheduler_preserves; delay_slot_filler_safe ]);
      ("translation",
       [ Alcotest.test_case "sfi store sequences" `Quick store_sfi_sequences;
         Alcotest.test_case "branch models" `Quick branch_models;
         Alcotest.test_case "large immediates" `Quick large_immediates;
         Alcotest.test_case "delay slots emitted" `Quick delay_slots_emitted;
         Alcotest.test_case "delay fill semantics" `Quick delay_fill_semantics;
         Alcotest.test_case "scheduling helps" `Quick scheduling_helps;
         Alcotest.test_case "gp addressing" `Quick gp_addressing;
         Alcotest.test_case "tier ordering" `Quick tier_ordering;
         Alcotest.test_case "sfi guard-zone opt" `Quick sfi_opt_correct ]);
      ("pipeline", [ Alcotest.test_case "cost model" `Quick pipeline_unit ]);
      ("x86", [ Alcotest.test_case "register homes" `Quick x86_homes ])
    ]
