(* MiniC front-end tests: lexer, parser (including C declarators), and the
   typechecker's accept/reject behaviour. *)

open Minic

let parses src =
  match Parser.parse_program src with
  | _ -> true
  | exception (Parser.Error _ | Lexer.Error _) -> false

let typechecks src =
  match Typecheck.type_program ~protos:Driver.stdlib_protos
          (Parser.parse_program src)
  with
  | _ -> true
  | exception (Parser.Error _ | Lexer.Error _ | Typecheck.Error _) -> false

let accept name src = Alcotest.(check bool) name true (typechecks src)
let reject name src = Alcotest.(check bool) name false (typechecks src)

let lexer_tests () =
  let toks src = Array.length (Lexer.tokenize src) - 1 in
  Alcotest.(check int) "count" 5 (toks "int x = 1;");
  Alcotest.(check int) "comment line" 0 (toks "// nothing\n");
  Alcotest.(check int) "comment block" 1 (toks "/* a\nb */ x");
  Alcotest.(check int) "suffixes" 1 (toks "123u");
  (match Lexer.tokenize "0x1F" with
  | [| (Lexer.INT 31, _); (Lexer.EOF, _) |] -> ()
  | _ -> Alcotest.fail "hex");
  (match Lexer.tokenize "1.5e2" with
  | [| (Lexer.FLOAT f, _); (Lexer.EOF, _) |] when f = 150.0 -> ()
  | _ -> Alcotest.fail "float");
  (match Lexer.tokenize "'\\n'" with
  | [| (Lexer.INT 10, _); (Lexer.EOF, _) |] -> ()
  | _ -> Alcotest.fail "char escape");
  (match Lexer.tokenize "\"a\\tb\"" with
  | [| (Lexer.STRING "a\tb", _); (Lexer.EOF, _) |] -> ()
  | _ -> Alcotest.fail "string escape");
  match Lexer.tokenize "$" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "bad char accepted"

let declarators () =
  (* exercise the inside-out declarator algorithm *)
  accept "simple" "int x; int main(void){ return 0; }";
  accept "pointer chain" "int ***p; int main(void){ return 0; }";
  accept "array of pointers" "int *a[10]; int main(void){ return 0; }";
  accept "pointer to array deref"
    "int a[3][4]; int main(void){ return a[1][2]; }";
  accept "function pointer"
    "int f(int x) { return x; }\n\
     int main(void) { int (*p)(int); p = &f; return p(3); }";
  accept "fn ptr in struct"
    "struct ops { int (*fn)(int, int); };\n\
     int add2(int a, int b) { return a + b; }\n\
     int main(void) { struct ops o; o.fn = &add2; return o.fn(1, 2); }";
  accept "array of function pointers"
    "int f(int x) { return x; }\n\
     int (*tab[4])(int);\n\
     int main(void) { tab[0] = &f; return tab[0](7); }";
  accept "pointer returning proto" "char *strdup2(char *s);\nint main(void){ return 0; }";
  accept "array sized by initializer"
    "int a[] = {1, 2, 3};\nint main(void){ return a[2]; }";
  accept "char array from string"
    "char msg[] = \"hello\";\nint main(void){ return msg[0]; }"

let parser_rejects () =
  Alcotest.(check bool) "missing semi" false (parses "int main(void) { return 0 }");
  Alcotest.(check bool) "bad expr" false (parses "int main(void) { return +; }");
  Alcotest.(check bool) "unclosed brace" false (parses "int main(void) { ");
  Alcotest.(check bool) "stray token" false (parses "int main(void) { return 0; } @")

let typecheck_accepts () =
  accept "arith conversions"
    "int main(void) { double d; int i; char c; d = 1; i = (int)2.5; c = (char)i; return i + c; }";
  accept "pointer arith"
    "int a[10]; int main(void) { int *p; p = a + 3; return (int)(p - a); }";
  accept "struct access"
    "struct s { int x; struct s *next; };\n\
     int main(void) { struct s v; v.x = 1; v.next = &v; return v.next->x; }";
  accept "struct assignment"
    "struct s { int a; int b; };\n\
     int main(void) { struct s x; struct s y; x.a = 1; x.b = 2; y = x; return y.b; }";
  accept "short circuit"
    "int main(void) { int *p; p = 0; return p && *p; }";
  accept "ternary" "int main(void) { int x; x = 3; return x > 2 ? 1 : 0; }";
  accept "compound assign"
    "int main(void) { int x; x = 1; x += 2; x <<= 3; x %= 7; return x; }";
  accept "inc dec"
    "int a[4]; int main(void) { int i; i = 0; a[i++] = 1; a[++i] = 2; return a[0] + a[2] + i; }";
  accept "sizeof" "struct s { double d; char c; };\nint main(void) { return (int)sizeof(struct s) + (int)sizeof(int); }";
  accept "unsigned ops"
    "int main(void) { unsigned x; x = 0xFFFFFFFFu; return (int)(x >> 31); }";
  accept "void pointer" "int main(void) { void *p; int x; p = (void *)&x; return p == 0; }";
  accept "do while" "int main(void) { int i; i = 0; do { i++; } while (i < 3); return i; }";
  accept "break continue"
    "int main(void) { int i; int s; s = 0; for (i = 0; i < 10; i++) { if (i == 2) continue; if (i > 5) break; s += i; } return s; }"

let typecheck_rejects () =
  reject "undefined variable" "int main(void) { return x; }";
  reject "undefined function" "int main(void) { return g(); }";
  reject "wrong arity" "int f(int x) { return x; }\nint main(void) { return f(1, 2); }";
  reject "bad arg type" "int f(int *p) { return *p; }\nint main(void) { double d; return f(d); }";
  reject "assign to rvalue" "int main(void) { 1 = 2; return 0; }";
  reject "deref int" "int main(void) { int x; return *x; }";
  reject "dot on non-struct" "int main(void) { int x; return x.f; }";
  reject "unknown field"
    "struct s { int a; };\nint main(void) { struct s v; return v.b; }";
  reject "duplicate local" "int main(void) { int x; int x; return 0; }";
  reject "duplicate global" "int g; int g; int main(void) { return 0; }";
  reject "duplicate function" "int f(void) { return 0; }\nint f(void) { return 1; }\nint main(void){ return 0; }";
  reject "conflicting proto" "int f(int x);\ndouble f(int x) { return 1.0; }\nint main(void){ return 0; }";
  reject "void variable" "int main(void) { void v; return 0; }";
  reject "return value from void" "void f(void) { return 3; }\nint main(void){ return 0; }";
  reject "missing return value" "int f(void) { return; }\nint main(void){ return 0; }";
  reject "modulo on double" "int main(void) { double d; d = 1.0; return (int)(d % 2.0); }";
  reject "struct param" "struct s { int a; };\nint f(struct s v) { return v.a; }\nint main(void){ return 0; }";
  reject "aggregate return" "struct s { int a; };\nstruct s f(void);\nint main(void){ return 0; }";
  reject "undefined struct" "int main(void) { struct nope *p; return (int)sizeof(struct nope); }";
  reject "implicit ptr from int" "int main(void) { int *p; p = 5; return 0; }";
  reject "call non-function" "int main(void) { int x; x = 1; return x(); }";
  reject "break outside loop" "int main(void) { break; return 0; }"

let line_numbers () =
  (match Typecheck.type_program (Parser.parse_program "int main(void) {\n  int x;\n  y = 1;\n  return 0;\n}") with
  | exception Typecheck.Error { line; _ } ->
      Alcotest.(check int) "error line" 3 line
  | _ -> Alcotest.fail "accepted");
  match Parser.parse_program "int main(void) {\n\n  return 0\n}" with
  | exception Parser.Error { line; _ } -> Alcotest.(check int) "parse line" 4 line
  | _ -> Alcotest.fail "accepted"

let struct_layout () =
  let tp =
    Driver.typed_program
      "struct s { char c; int i; char c2; double d; char tail; };\n\
       int main(void) { return 0; }"
  in
  match List.assoc_opt "s" tp.Tast.tp_structs with
  | None -> Alcotest.fail "no struct"
  | Some l ->
      let field n =
        (List.find (fun f -> f.Tast.fl_name = n) l.Tast.sl_fields).Tast.fl_offset
      in
      Alcotest.(check int) "c" 0 (field "c");
      Alcotest.(check int) "i" 4 (field "i");
      Alcotest.(check int) "c2" 8 (field "c2");
      Alcotest.(check int) "d" 16 (field "d");
      Alcotest.(check int) "tail" 24 (field "tail");
      Alcotest.(check int) "size" 32 l.Tast.sl_size;
      Alcotest.(check int) "align" 8 l.Tast.sl_align

let () =
  Alcotest.run "minic-front"
    [ ("lexer", [ Alcotest.test_case "tokens" `Quick lexer_tests ]);
      ("parser",
       [ Alcotest.test_case "declarators" `Quick declarators;
         Alcotest.test_case "rejects" `Quick parser_rejects;
         Alcotest.test_case "line numbers" `Quick line_numbers ]);
      ("typecheck",
       [ Alcotest.test_case "accepts" `Quick typecheck_accepts;
         Alcotest.test_case "rejects" `Quick typecheck_rejects;
         Alcotest.test_case "struct layout" `Quick struct_layout ])
    ]
