(* Assembler and linker tests: syntax coverage, relocations, layout, and
   error reporting. *)

module VI = Omnivm.Instr

let assemble src = Omni_asm.Parse.assemble ~name:"t" src

let check_text src expected =
  let obj = assemble src in
  let got =
    Array.to_list obj.Omni_asm.Obj.text
    |> List.map (VI.to_string VI.pp_addr_label)
  in
  Alcotest.(check (list string)) "text" expected got

let syntax_instrs () =
  check_text
    {|
        add r1, r2, r3
        addi r4, r5, -7
        li r6, 0x10
        lw r1, 8(r2)
        lbu r3, -4(r4)
        sb r5, 0(r6)
        fadd.d f1, f2, f3
        fneg.s f4, f5
        feq.d r1, f2, f3
        fld f1, 16(r2)
        cvt.d.w f1, r2
        cvt.w.d r3, f4
        ext r1, r2, 0, 2
        hcall 3
        trap 9
        nop
        mv r1, r2
        neg r3, r4
        not r5, r6
        ret
        jr r7
        jalr r15, r8
|}
    [ "add r1, r2, r3"; "addi r4, r5, -7"; "li r6, 16"; "lw r1, 8(r2)";
      "lbu r3, -4(r4)"; "sb r5, 0(r6)"; "fadd.d f1, f2, f3";
      "fneg.s f4, f5"; "feq.d r1, f2, f3"; "fld f1, 16(r2)";
      "cvt.d.w f1, r2"; "cvt.w.d r3, f4"; "ext r1, r2, 0, 2"; "hcall 3";
      "trap 9"; "nop"; "addi r1, r2, 0"; "sub r3, r0, r4"; "xori r5, r6, -1";
      "jr r15"; "jr r7"; "jalr r15, r8" ]

let comments_and_labels () =
  let obj =
    assemble
      {|
; leading comment
start:  nop           # trailing comment
.L1:    nop
        j .L1
|}
  in
  Alcotest.(check int) "instrs" 3 (Array.length obj.Omni_asm.Obj.text);
  Alcotest.(check int) "relocs" 1 (List.length obj.Omni_asm.Obj.relocs);
  match Omni_asm.Obj.find_symbol obj ".L1" with
  | Some s -> Alcotest.(check int) "label offset" 1 s.Omni_asm.Obj.sym_offset
  | None -> Alcotest.fail "missing label"

let data_directives () =
  let obj =
    assemble
      {|
        .data
a:      .word 1, 2, 3
b:      .half 4, 5
        .align 4
c:      .byte 'x', 10
s:      .asciz "hi\n"
        .align 8
d:      .double 1.5
        .space 3
        .comm bss1, 16
|}
  in
  let find n =
    match Omni_asm.Obj.find_symbol obj n with
    | Some s -> s.Omni_asm.Obj.sym_offset
    | None -> Alcotest.failf "missing %s" n
  in
  Alcotest.(check int) "a" 0 (find "a");
  Alcotest.(check int) "b" 12 (find "b");
  Alcotest.(check int) "c" 16 (find "c");
  Alcotest.(check int) "s" 18 (find "s");
  Alcotest.(check int) "d" 24 (find "d");
  Alcotest.(check int) "bss" 35 (find "bss1");
  Alcotest.(check int) "bss size" 16 obj.Omni_asm.Obj.bss_size;
  Alcotest.(check char) "string content" 'h'
    (Bytes.get obj.Omni_asm.Obj.data 18)

let parse_errors () =
  let expect_err src =
    match assemble src with
    | exception Omni_asm.Parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" src
  in
  expect_err "add r1, r2";
  expect_err "bogus r1, r2, r3";
  expect_err "add r1, r2, r16";
  expect_err "lw r1, (r2";
  expect_err ".asciz 42";
  expect_err "li r1, 'ab'"

(* --- linking --- *)

let link_two_objects () =
  let a =
    assemble
      {|
        .text
        .globl main
main:   addi r14, r14, -16
        sw r15, 0(r14)
        jal helper
        hcall 2
        li r1, 10
        hcall 1
        li r1, 0
        hcall 0
        .data
        .globl shared
shared: .word 5
|}
  in
  let b =
    assemble
      {|
        .text
        .globl helper
helper: lw r1, shared(r0)
        muli r1, r1, 9
        jr r15
|}
  in
  let exe = Omni_asm.Link.link [ a; b ] in
  let img = Omni_runtime.Loader.load exe in
  let outcome, _ = Omni_runtime.Loader.run_interp img in
  (match outcome with
  | Omnivm.Interp.Exited 0 -> ()
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check string) "cross-object call + data reloc" "45\n"
    (Omni_runtime.Host.output img.Omni_runtime.Loader.host)

let link_errors () =
  let expect_link_err objs entry =
    match Omni_asm.Link.link ~entry objs with
    | exception Omni_asm.Link.Link_error _ -> ()
    | _ -> Alcotest.fail "link accepted bad input"
  in
  let m = assemble ".text\n.globl main\nmain: nop\n" in
  (* undefined symbol *)
  expect_link_err [ assemble ".text\n.globl main\nmain: j nowhere\n" ] "main";
  (* duplicate global *)
  expect_link_err [ m; assemble ".text\n.globl main\nmain: nop\n" ] "main";
  (* missing entry *)
  expect_link_err [ m ] "start"

let data_address_reloc () =
  let obj =
    assemble
      {|
        .data
tbl:    .word fn1, fn2
        .text
        .globl main
fn1:    li r1, 11
        jr r15
fn2:    li r1, 22
        jr r15
main:   addi r14, r14, -16
        sw r15, 0(r14)
        lw r5, tbl+4(r0)
        jalr r15, r5
        hcall 2
        li r1, 10
        hcall 1
        li r1, 0
        hcall 0
|}
  in
  let exe = Omni_asm.Link.link [ obj ] in
  let img = Omni_runtime.Loader.load exe in
  let outcome, _ = Omni_runtime.Loader.run_interp img in
  (match outcome with
  | Omnivm.Interp.Exited 0 -> ()
  | Omnivm.Interp.Faulted f -> Alcotest.failf "fault %s" (Omnivm.Fault.to_string f)
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check string) "jump table" "22\n"
    (Omni_runtime.Host.output img.Omni_runtime.Loader.host)

(* print -> parse round trip over random instruction sequences *)
let print_parse_roundtrip () =
  (* reuse canonical printing: print each instruction, reparse the program,
     compare (labels become addresses so we restrict to label-free instrs) *)
  let instrs =
    [ VI.Binop (VI.Add, 1, 2, 3);
      VI.Binopi (VI.Xor, 4, 5, -77);
      VI.Li (6, 123456789);
      VI.Load (VI.W16, false, 1, 2, 8);
      VI.Store (VI.W8, 3, 4, -2);
      VI.Fload (VI.Double, 5, 6, 16);
      VI.Fstore (VI.Single, 7, 8, 0);
      VI.Fbinop (VI.Fmul, VI.Single, 1, 2, 3);
      VI.Funop (VI.Fabs, VI.Double, 4, 5);
      VI.Fcmp (VI.Fle, VI.Double, 6, 7, 8);
      VI.Cvt_f_i (VI.Double, 1, 2);
      VI.Cvt_i_f (VI.Single, 3, 4);
      VI.Cvt_d_s (5, 6);
      VI.Cvt_s_d (7, 8);
      VI.Jr 9;
      VI.Jalr (15, 10);
      VI.Ext (1, 2, 1, 2);
      VI.Ins (3, 4, 0, 4);
      VI.Hcall 5;
      VI.Trap 3;
      VI.Nop ]
  in
  let text =
    String.concat "\n"
      (List.map (fun i -> "        " ^ VI.to_string VI.pp_string_label i) instrs)
  in
  let obj = assemble (".text\n" ^ text ^ "\n") in
  List.iteri
    (fun i expected ->
      let got = obj.Omni_asm.Obj.text.(i) in
      Alcotest.(check string)
        (Printf.sprintf "instr %d" i)
        (VI.to_string VI.pp_addr_label expected)
        (VI.to_string VI.pp_addr_label got))
    (List.map (VI.map_label (fun (_ : string) -> 0)) instrs)

let () =
  Alcotest.run "asm"
    [ ("assembler",
       [ Alcotest.test_case "instruction syntax" `Quick syntax_instrs;
         Alcotest.test_case "comments and labels" `Quick comments_and_labels;
         Alcotest.test_case "data directives" `Quick data_directives;
         Alcotest.test_case "parse errors" `Quick parse_errors;
         Alcotest.test_case "print/parse roundtrip" `Quick print_parse_roundtrip ]);
      ("linker",
       [ Alcotest.test_case "two objects" `Quick link_two_objects;
         Alcotest.test_case "errors" `Quick link_errors;
         Alcotest.test_case "data address reloc" `Quick data_address_reloc ])
    ]
