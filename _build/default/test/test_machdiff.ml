(* Machine-level differential fuzzing: random OmniVM assembly programs run
   on the reference interpreter and on every target simulator (sandboxed,
   unprotected, and with the guard-zone SFI optimization) and must print
   the same register checksum.

   This hits translator paths the compiler never generates: odd register
   combinations, immediate edge values, mixed-width memory traffic, and
   branch patterns. Programs are built to be self-terminating (conditional
   branches only jump forward) and in-segment (all addresses fall inside a
   data buffer), so sandboxing is semantically transparent and every engine
   must agree exactly. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine

let buf_size = 256

(* Generate one random program as assembly text. *)
let gen_program (rng : Random.State.t) : string =
  let ri n = Random.State.int rng n in
  let b = Buffer.create 1024 in
  let reg () = 1 + ri 9 in (* r1..r9 *)
  let freg () = 1 + ri 5 in
  let imm () =
    match ri 6 with
    | 0 -> 0
    | 1 -> ri 100 - 50
    | 2 -> 0x7FFFFFFF
    | 3 -> -0x80000000
    | 4 -> (1 lsl ri 31) - ri 2
    | _ -> ri 1000000 - 500000
  in
  Buffer.add_string b "        .data\nbuf:    .space 264\n        .text\n";
  Buffer.add_string b "        .globl main\nmain:\n";
  (* seed registers *)
  for r = 1 to 9 do
    Printf.bprintf b "        li r%d, %d\n" r (imm ())
  done;
  for f = 1 to 5 do
    Printf.bprintf b "        li r10, %d\n" (ri 1000 - 500);
    Printf.bprintf b "        cvt.d.w f%d, r10\n" f
  done;
  Printf.bprintf b "        li r10, buf\n";
  let n = 10 + ri 40 in
  let label = ref 0 in
  let pending_labels = ref [] in
  for i = 0 to n - 1 do
    (* emit any labels that were branched to and are due *)
    List.iter
      (fun (at, l) -> if at = i then Printf.bprintf b ".L%d:\n" l)
      !pending_labels;
    match ri 12 with
    | 0 | 1 | 2 ->
        let ops = [| "add"; "sub"; "mul"; "and"; "or"; "xor"; "slt"; "sltu" |] in
        Printf.bprintf b "        %s r%d, r%d, r%d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) (reg ())
    | 3 | 4 ->
        let ops = [| "addi"; "xori"; "ori"; "andi"; "slti" |] in
        Printf.bprintf b "        %s r%d, r%d, %d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) (imm ())
    | 5 ->
        (* shifts with bounded counts *)
        let ops = [| "slli"; "srli"; "srai" |] in
        Printf.bprintf b "        %s r%d, r%d, %d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) (ri 32)
    | 6 ->
        (* division by a guaranteed-nonzero value *)
        let d = reg () in
        Printf.bprintf b "        ori r%d, r%d, 1\n" d d;
        let ops = [| "div"; "divu"; "rem"; "remu" |] in
        Printf.bprintf b "        %s r%d, r%d, r%d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) d
    | 7 ->
        (* in-bounds store + load through r10 (= buf) *)
        let off = 4 * ri (buf_size / 4) in
        let w = [| ("sw", "lw"); ("sh", "lhu"); ("sb", "lbu") |].(ri 3) in
        Printf.bprintf b "        %s r%d, %d(r10)\n" (fst w) (reg ()) off;
        Printf.bprintf b "        %s r%d, %d(r10)\n" (snd w) (reg ()) off
    | 8 ->
        (* float work, kept exact: integer-valued doubles *)
        let ops = [| "fadd.d"; "fsub.d"; "fmul.d" |] in
        Printf.bprintf b "        %s f%d, f%d, f%d\n"
          ops.(ri (Array.length ops)) (freg ()) (freg ()) (freg ());
        Printf.bprintf b "        cvt.w.d r%d, f%d\n" (reg ()) (freg ())
    | 9 ->
        (* a forward conditional branch over the next few instructions *)
        let l = !label in
        incr label;
        let skip = 1 + ri 4 in
        let conds = [| "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu" |] in
        Printf.bprintf b "        %s r%d, r%d, .L%d\n"
          conds.(ri (Array.length conds)) (reg ()) (reg ()) l;
        pending_labels := (min (n - 1) (i + skip), l) :: !pending_labels
    | 10 ->
        let conds = [| "beqi"; "bnei"; "blti"; "bgei" |] in
        let l = !label in
        incr label;
        Printf.bprintf b "        %s r%d, %d, .L%d\n"
          conds.(ri (Array.length conds)) (reg ()) (imm ()) l;
        pending_labels := (min (n - 1) (i + 1 + ri 4), l) :: !pending_labels
    | _ ->
        Printf.bprintf b "        ext r%d, r%d, %d, %d\n" (reg ()) (reg ())
          (ri 3) (1 + ri 2)
  done;
  (* park all pending labels at the end *)
  List.iter (fun (_, l) -> Printf.bprintf b ".L%d:\n" l) !pending_labels;
  (* checksum: fold every register and a slice of the buffer into r1 *)
  Buffer.add_string b "        ; checksum\n";
  for r = 2 to 9 do
    Printf.bprintf b "        xor r1, r1, r%d\n" r
  done;
  for k = 0 to 7 do
    Printf.bprintf b "        lw r11, %d(r10)\n        xor r1, r1, r11\n"
      (k * 32)
  done;
  Buffer.add_string b "        hcall 2\n        li r1, 10\n        hcall 1\n";
  Buffer.add_string b "        li r1, 0\n        hcall 0\n";
  Buffer.contents b

let engines_agree src =
  let exe = Omni_asm.Link.link [ Omni_asm.Parse.assemble ~name:"fuzz" src ] in
  let run engine ~sfi ?opts () =
    let r = Api.run_exe ~engine ~sfi ?opts ~fuel:5_000_000 exe in
    match r.Api.outcome with
    | Machine.Exited 0 -> Some r.Api.output
    | _ -> None
  in
  match run Api.Interp ~sfi:true () with
  | None -> true (* interpreter faulted (e.g. overflowing shift count): skip *)
  | Some expected ->
      List.for_all
        (fun arch ->
          let variants =
            [ run (Api.Target arch) ~sfi:true ();
              run (Api.Target arch) ~sfi:false ();
              run (Api.Target arch) ~sfi:true
                ~opts:{ (Api.mobile_opts arch) with Machine.sfi_opt = true }
                ();
              run (Api.Target arch) ~sfi:true ~opts:Machine.no_opts () ]
          in
          List.for_all (fun v -> v = Some expected) variants)
        Omni_targets.Arch.all

let fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"random OmniVM programs agree on all engines"
       (QCheck.make
          ~print:(fun s -> s)
          QCheck.Gen.(
            int >>= fun seed ->
            return (gen_program (Random.State.make [| seed |]))))
       engines_agree)

let () = Alcotest.run "machdiff" [ ("fuzz", [ fuzz ]) ]
