(* Tests for the machine-independent optimizer: constant folding and
   propagation, strength reduction, CSE, DCE, and CFG cleanup. These check
   the shape of the optimized IR (the paper's claim is precisely that this
   work happens in the compiler, before load time). *)

open Minic

let ir_of ?(level = Opt.O2) src =
  let tast = Driver.typed_program ~protos:[] src in
  let ir = Lower.lower_program tast in
  Opt.optimize level ir

let func ir name =
  List.find (fun f -> f.Ir.fn_name = name) ir.Ir.pr_funcs

let insts f =
  Array.to_list f.Ir.fn_blocks
  |> List.concat_map (fun b -> b.Ir.insts)

let count_rvalues pred f =
  List.length
    (List.filter (function Ir.Def (_, rv) -> pred rv | _ -> false) (insts f))

let returns_constant f k =
  Array.exists
    (fun b ->
      match b.Ir.term with
      | Ir.Ret (Some (_, Ir.Ci v)) -> v = k
      | _ -> false)
    f.Ir.fn_blocks

let constant_folding () =
  let ir = ir_of "int f(void) { return 2 * 21 + (10 / 2) - 5; }" in
  Alcotest.(check bool) "folded to 42" true (returns_constant (func ir "f") 42);
  Alcotest.(check int) "no instructions left" 0 (List.length (insts (func ir "f")))

let constant_propagation () =
  let ir =
    ir_of
      "int f(void) { int a; int b; int c; a = 5; b = a * 3; c = b + a; return c; }"
  in
  Alcotest.(check bool) "propagated to 20" true (returns_constant (func ir "f") 20)

let branch_folding () =
  let ir =
    ir_of "int f(void) { if (1 < 2) return 7; else return 8; }"
  in
  let f = func ir "f" in
  Alcotest.(check bool) "constant branch folded" true (returns_constant f 7);
  (* the dead branch is unreachable and removed *)
  Alcotest.(check bool) "no 8 left" false (returns_constant f 8);
  Alcotest.(check int) "single block" 1 (Array.length f.Ir.fn_blocks)

let strength_reduction () =
  let ir = ir_of "int f(int x) { return x * 8; }" in
  let shifts =
    count_rvalues
      (function Ir.Ibin (Omnivm.Instr.Sll, _, _) -> true | _ -> false)
      (func ir "f")
  in
  let muls =
    count_rvalues
      (function Ir.Ibin (Omnivm.Instr.Mul, _, _) -> true | _ -> false)
      (func ir "f")
  in
  Alcotest.(check int) "mul became shift" 1 shifts;
  Alcotest.(check int) "no mul" 0 muls;
  let ir = ir_of "unsigned f(unsigned x) { return x % 16u + x / 8u; }" in
  let bad =
    count_rvalues
      (function
        | Ir.Ibin ((Omnivm.Instr.Remu | Omnivm.Instr.Divu), _, _) -> true
        | _ -> false)
      (func ir "f")
  in
  Alcotest.(check int) "unsigned div/mod by 2^k eliminated" 0 bad

let cse () =
  (* (a*b) appears twice; after CSE only one multiply remains *)
  let ir = ir_of "int f(int a, int b) { return (a * b) + (a * b); }" in
  let muls =
    count_rvalues
      (function Ir.Ibin (Omnivm.Instr.Mul, _, _) -> true | _ -> false)
      (func ir "f")
  in
  Alcotest.(check int) "one multiply" 1 muls

let cse_killed_by_store () =
  (* the store may alias the loaded address: the load must not be reused *)
  let ir =
    ir_of
      "int f(int *p, int *q) { int a; int b; a = *p; *q = 5; b = *p; return a + b; }"
  in
  let loads =
    count_rvalues
      (function Ir.Load _ -> true | _ -> false)
      (func ir "f")
  in
  Alcotest.(check int) "both loads remain" 2 loads

let cse_of_loads () =
  let ir = ir_of "int f(int *p) { return *p + *p; }" in
  let loads =
    count_rvalues (function Ir.Load _ -> true | _ -> false) (func ir "f")
  in
  Alcotest.(check int) "one load" 1 loads

let dce () =
  let ir =
    ir_of "int f(int x) { int dead; dead = x * 12345; return x + 1; }"
  in
  let muls =
    count_rvalues
      (function Ir.Ibin (Omnivm.Instr.Mul, _, _) -> true | _ -> false)
      (func ir "f")
  in
  Alcotest.(check int) "dead multiply removed" 0 muls

let dce_keeps_calls () =
  let ir =
    ir_of
      "int g(int x) { return x; }\nint f(int x) { g(x); return x; }"
  in
  let calls =
    List.length
      (List.filter
         (function Ir.Call _ -> true | _ -> false)
         (insts (func ir "f")))
  in
  Alcotest.(check int) "call with unused result kept" 1 calls

let address_folding () =
  (* constant offsets fold into load/store displacements *)
  let ir =
    ir_of
      "struct s { int a; int b; int c; };\n\
       int f(struct s *p) { return p->b + p->c; }"
  in
  let loads_with_disp =
    count_rvalues
      (function
        | Ir.Load (_, _, { Ir.disp; _ }) -> disp = 4 || disp = 8
        | _ -> false)
      (func ir "f")
  in
  let adds =
    count_rvalues
      (function Ir.Ibin (Omnivm.Instr.Add, _, _) -> true | _ -> false)
      (func ir "f")
  in
  Alcotest.(check int) "disp-folded loads" 2 loads_with_disp;
  Alcotest.(check int) "one add (the sum itself)" 1 adds

let unreachable_removed () =
  let ir =
    ir_of "int f(int x) { return x; x = x + 1; return x; }"
  in
  Alcotest.(check int) "one block" 1 (Array.length (func ir "f").Ir.fn_blocks)

let licm_hoists () =
  (* the a*b multiply is loop-invariant: with LICM (O2) the loop executes
     fewer dynamic instructions than with local optimization only (O1) *)
  let src =
    "int f(int a, int b) {\n\
     int i; int s;\n\
     s = 0;\n\
     for (i = 0; i < 1000; i++) s += a * b + i;\n\
     return s;\n}\n\
     int main(void) { print_int(f(3, 5)); putchar(10); return 0; }\n"
  in
  let icount level =
    let options = { Driver.opt_level = level; regfile_size = 16 } in
    let exe = Driver.compile_exe ~options ~with_stdlib:false ~name:"licm" src in
    let img = Omni_runtime.Loader.load exe in
    match Omni_runtime.Loader.run_interp img with
    | Omnivm.Interp.Exited 0, st -> st.Omnivm.Interp.icount
    | _ -> Alcotest.fail "licm test program failed"
  in
  let o1 = icount Opt.O1 and o2 = icount Opt.O2 in
  Alcotest.(check bool)
    (Printf.sprintf "O2 (%d) executes fewer instructions than O1 (%d)" o2 o1)
    true
    (o2 < o1);
  (* the hoisted multiply must appear in exactly one (preheader) block *)
  let ir = ir_of src in
  let f = func ir "f" in
  let mul_blocks =
    Array.to_list f.Ir.fn_blocks
    |> List.filteri (fun _ b ->
           List.exists
             (function
               | Ir.Def (_, Ir.Ibin (Omnivm.Instr.Mul, _, _)) -> true
               | _ -> false)
             b.Ir.insts)
  in
  Alcotest.(check int) "one block holds the multiply" 1 (List.length mul_blocks)

let licm_respects_traps () =
  (* a division by a loop-variant (possibly zero) value must NOT be hoisted:
     the zero-trip loop below would fault if it were *)
  let src =
    "int f(int a, int b, int n) {\n\
     int i; int s;\n\
     s = 0;\n\
     for (i = 0; i < n; i++) s += a / b;\n\
     return s;\n}\n\
     int main(void) { print_int(f(10, 0, 0)); putchar(10); return 0; }\n"
  in
  let exe = Driver.compile_exe ~with_stdlib:false ~name:"t" src in
  let img = Omni_runtime.Loader.load exe in
  match Omni_runtime.Loader.run_interp img with
  | Omnivm.Interp.Exited 0, _ -> ()
  | Omnivm.Interp.Faulted f, _ ->
      Alcotest.failf "hoisted trapping division: %s" (Omnivm.Fault.to_string f)
  | _ -> Alcotest.fail "unexpected outcome"

let o0_leaves_code_alone () =
  let ir0 = ir_of ~level:Opt.O0 "int f(void) { return 2 * 21; }" in
  let muls =
    count_rvalues
      (function Ir.Ibin (Omnivm.Instr.Mul, _, _) -> true | _ -> false)
      (func ir0 "f")
  in
  Alcotest.(check int) "O0 keeps the multiply" 1 muls

let regalloc_stats () =
  (* sanity on the allocator: few registers -> more spills, never fewer *)
  let src =
    "int f(int a, int b, int c, int d) {\n\
     int e; int g; int h; int i;\n\
     e = a * b; g = c * d; h = a + c; i = b + d;\n\
     return e + g + h + i + f(e, g, h, i);\n}\n"
  in
  let spills n =
    let tast = Driver.typed_program ~protos:[] src in
    let ir = Lower.lower_program tast in
    let ir = Opt.optimize Opt.O2 ir in
    let f = func ir "f" in
    let alloc =
      Regalloc.allocate ~pools:(Regalloc.default_pools ~regfile_size:n) f
    in
    alloc.Regalloc.spill_count
  in
  let s8 = spills 8 and s16 = spills 16 in
  Alcotest.(check bool) "more spills with 8 regs" true (s8 >= s16)

let () =
  Alcotest.run "minic-opt"
    [ ("opt",
       [ Alcotest.test_case "constant folding" `Quick constant_folding;
         Alcotest.test_case "constant propagation" `Quick constant_propagation;
         Alcotest.test_case "branch folding" `Quick branch_folding;
         Alcotest.test_case "strength reduction" `Quick strength_reduction;
         Alcotest.test_case "cse" `Quick cse;
         Alcotest.test_case "cse killed by store" `Quick cse_killed_by_store;
         Alcotest.test_case "cse of loads" `Quick cse_of_loads;
         Alcotest.test_case "dce" `Quick dce;
         Alcotest.test_case "dce keeps calls" `Quick dce_keeps_calls;
         Alcotest.test_case "address folding" `Quick address_folding;
         Alcotest.test_case "unreachable removed" `Quick unreachable_removed;
         Alcotest.test_case "licm hoists" `Quick licm_hoists;
         Alcotest.test_case "licm respects traps" `Quick licm_respects_traps;
         Alcotest.test_case "O0 no opt" `Quick o0_leaves_code_alone ]);
      ("regalloc", [ Alcotest.test_case "spill monotone" `Quick regalloc_stats ])
    ]
