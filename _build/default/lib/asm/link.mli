(** Linker: combine relocatable objects into a linked mobile module.

    Text sections are concatenated in input order at the bottom of the code
    segment; data sections are concatenated 8-byte-aligned above the
    reserved runtime area of the data segment, with bss blocks after all
    initialized data. Relocations resolve first against the referencing
    object's own symbols, then against the global symbols of all objects. *)

exception Link_error of string
(** Undefined or duplicate symbols, missing entry, malformed relocations. *)

val link : ?entry:string -> Obj.t list -> Omnivm.Exe.t
(** [entry] defaults to ["main"]. *)
