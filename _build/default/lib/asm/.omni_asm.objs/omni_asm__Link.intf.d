lib/asm/link.mli: Obj Omnivm
