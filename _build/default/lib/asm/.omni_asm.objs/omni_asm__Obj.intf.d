lib/asm/obj.mli: Bytes Omnivm
