lib/asm/parse.ml: Buffer Char Instr List Obj Omnivm Printf Reg String
