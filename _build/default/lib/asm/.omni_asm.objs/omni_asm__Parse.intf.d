lib/asm/parse.mli: Obj
