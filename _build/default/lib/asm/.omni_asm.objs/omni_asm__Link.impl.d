lib/asm/link.ml: Array Bytes Char Exe Hashtbl Instr Layout List Obj Omni_util Omnivm Printf
