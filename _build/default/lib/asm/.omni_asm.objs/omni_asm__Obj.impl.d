lib/asm/obj.ml: Array Buffer Bytes Char Int64 List Omnivm String
