(* Relocatable OmniVM object files.

   Both the MiniC code generator and the textual assembler produce this
   format; the linker combines objects into a linked [Omnivm.Exe.t] mobile
   module. Text offsets are in instructions, data offsets in bytes.

   Instructions referencing symbols carry a placeholder 0 in the affected
   field plus a relocation record. Because OmniVM immediates and address
   offsets are a full 32 bits (paper 3.4), every relocation is a simple
   "absolute address of symbol + addend" patch: no high/low pairs. *)

type section = Text | Data

type symbol = {
  sym_name : string;
  sym_section : section;
  sym_offset : int; (* instruction index (Text) or byte offset (Data) *)
  sym_global : bool;
}

(* Which field of an instruction a relocation patches. *)
type field =
  | Label (* branch / jump target *)
  | Imm (* 32-bit immediate or address offset *)

type reloc = { rel_at : int; rel_field : field; rel_sym : string; rel_addend : int }

type t = {
  obj_name : string;
  text : int Omnivm.Instr.t array;
  data : Bytes.t;
  bss_size : int;
  symbols : symbol list;
  relocs : reloc list;
  data_relocs : (int * string * int) list;
      (* byte offset in data <- address of sym + addend *)
}

let empty name =
  {
    obj_name = name;
    text = [||];
    data = Bytes.create 0;
    bss_size = 0;
    symbols = [];
    relocs = [];
    data_relocs = [];
  }

let find_symbol t name =
  List.find_opt (fun s -> String.equal s.sym_name name) t.symbols

(* --- builder: incremental object construction --- *)

module Builder = struct
  type obj = t

  type t = {
    name : string;
    mutable instrs : int Omnivm.Instr.t list; (* reversed *)
    mutable n_instrs : int;
    data : Buffer.t;
    mutable bss : int;
    mutable syms : symbol list;
    mutable rels : reloc list;
    mutable drels : (int * string * int) list;
  }

  let create name =
    {
      name;
      instrs = [];
      n_instrs = 0;
      data = Buffer.create 256;
      bss = 0;
      syms = [];
      rels = [];
      drels = [];
    }

  let here_text t = t.n_instrs
  let here_data t = Buffer.length t.data + t.bss

  let emit t i =
    t.instrs <- i :: t.instrs;
    t.n_instrs <- t.n_instrs + 1

  (* Emit an instruction whose [field] refers to [sym] + [addend]. *)
  let emit_reloc t i ~field ~sym ~addend =
    t.rels <-
      { rel_at = t.n_instrs; rel_field = field; rel_sym = sym;
        rel_addend = addend }
      :: t.rels;
    emit t i

  let def_symbol t ~name ~section ~offset ~global =
    t.syms <-
      { sym_name = name; sym_section = section; sym_offset = offset;
        sym_global = global }
      :: t.syms

  let def_label_here t ~name ~global =
    def_symbol t ~name ~section:Text ~offset:(here_text t) ~global

  (* Data emission. BSS bytes must come after all initialized data. *)
  let data_byte t v =
    if t.bss > 0 then invalid_arg "Builder.data_byte after bss";
    Buffer.add_char t.data (Char.chr (v land 0xFF))

  let data_word t v =
    data_byte t v;
    data_byte t (v lsr 8);
    data_byte t (v lsr 16);
    data_byte t (v lsr 24)

  let data_half t v =
    data_byte t v;
    data_byte t (v lsr 8)

  let data_double t f =
    let bits = Int64.bits_of_float f in
    data_word t (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
    data_word t (Int64.to_int (Int64.shift_right_logical bits 32))

  let data_string t s = String.iter (fun c -> data_byte t (Char.code c)) s

  let data_addr t ~sym ~addend =
    t.drels <- (Buffer.length t.data, sym, addend) :: t.drels;
    data_word t 0

  let data_space t n =
    if t.bss > 0 then invalid_arg "Builder.data_space after bss"
    else
      for _ = 1 to n do
        data_byte t 0
      done

  let data_align t n =
    if n land (n - 1) <> 0 then invalid_arg "Builder.data_align";
    while (Buffer.length t.data) land (n - 1) <> 0 do
      data_byte t 0
    done

  let bss_space t n = t.bss <- t.bss + n

  let finish t : obj =
    {
      obj_name = t.name;
      text = Array.of_list (List.rev t.instrs);
      data = Buffer.to_bytes t.data;
      bss_size = t.bss;
      symbols = List.rev t.syms;
      relocs = List.rev t.rels;
      data_relocs = List.rev t.drels;
    }
end
