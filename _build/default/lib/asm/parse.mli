(** Textual OmniVM assembler.

    Line-oriented syntax matching the canonical printer in
    {!Omnivm.Instr.pp}: labels ([name:]), directives ([.text], [.data],
    [.globl], [.word]/[.half]/[.byte]/[.double], [.asciz]/[.ascii],
    [.space], [.align], [.comm]), instructions with [offset(base)] memory
    operands and symbolic immediates, and the pseudo-instructions [mv],
    [neg], [not], [ret], [b], [call], [la].

    Symbols may not be named like registers ([r0]..[r15], [f0]..[f15]). *)

exception Parse_error of { line : int; message : string }

val assemble : name:string -> string -> Obj.t
(** Assemble one source file into a relocatable object named [name]. *)
