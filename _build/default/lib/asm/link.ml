(* Linker: combine relocatable objects into a linked mobile module.

   Layout: text sections are concatenated in input order starting at
   [Layout.code_base]; data sections are concatenated 8-byte aligned starting
   at [Layout.data_base], with all bss blocks placed after all initialized
   data (so the executable's data image contains no bss bytes).

   Symbol resolution: a relocation in object O first resolves against O's own
   symbols (local or global), then against global symbols of all objects.
   Duplicate global definitions and unresolved references are errors. *)

open Omnivm

exception Link_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

type placed = {
  obj : Obj.t;
  text_base : int; (* instruction index of this object's text *)
  data_base : int; (* byte offset of this object's data *)
  bss_base : int; (* byte offset of this object's bss *)
}

let align8 n = (n + 7) land lnot 7

let symbol_addr placed (s : Obj.symbol) =
  match s.sym_section with
  | Obj.Text -> Exe.code_addr (placed.text_base + s.sym_offset)
  | Obj.Data ->
      let init_len = Bytes.length placed.obj.Obj.data in
      let origin = Layout.data_base + Layout.reserved_data in
      if s.sym_offset < init_len then
        origin + placed.data_base + s.sym_offset
      else
        (* Offsets past the initialized data refer into this object's bss. *)
        origin + placed.bss_base + (s.sym_offset - init_len)

let link ?(entry = "main") (objs : Obj.t list) : Exe.t =
  if objs = [] then fail "no input objects";
  (* Place sections. *)
  let text_len = List.fold_left (fun n o -> n + Array.length o.Obj.text) 0 objs in
  let data_len =
    List.fold_left (fun n o -> align8 (n + Bytes.length o.Obj.data)) 0 objs
  in
  let placed, _, _, _ =
    List.fold_left
      (fun (acc, ti, di, bi) o ->
        let p = { obj = o; text_base = ti; data_base = di; bss_base = bi } in
        ( p :: acc,
          ti + Array.length o.Obj.text,
          align8 (di + Bytes.length o.Obj.data),
          align8 (bi + o.Obj.bss_size) ))
      ([], 0, 0, data_len) objs
  in
  let placed = List.rev placed in
  (* Global symbol table. *)
  let globals = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun (s : Obj.symbol) ->
          if s.sym_global then begin
            if Hashtbl.mem globals s.sym_name then
              fail "duplicate global symbol %s (in %s)" s.sym_name
                p.obj.Obj.obj_name;
            Hashtbl.add globals s.sym_name (symbol_addr p s)
          end)
        p.obj.Obj.symbols)
    placed;
  let resolve p name =
    match Obj.find_symbol p.obj name with
    | Some s -> symbol_addr p s
    | None -> (
        match Hashtbl.find_opt globals name with
        | Some a -> a
        | None ->
            fail "undefined symbol %s (referenced from %s)" name
              p.obj.Obj.obj_name)
  in
  (* Build text with relocations applied. *)
  let text = Array.make text_len Instr.Nop in
  List.iter
    (fun p ->
      Array.blit p.obj.Obj.text 0 text p.text_base
        (Array.length p.obj.Obj.text);
      List.iter
        (fun (r : Obj.reloc) ->
          let v = resolve p r.rel_sym + r.rel_addend in
          let at = p.text_base + r.rel_at in
          let patched =
            match (r.rel_field, text.(at)) with
            | Obj.Label, Instr.Br (c, a, b, _) -> Instr.Br (c, a, b, v)
            | Obj.Label, Instr.Bri (c, a, i, _) -> Instr.Bri (c, a, i, v)
            | Obj.Label, Instr.J _ -> Instr.J v
            | Obj.Label, Instr.Jal _ -> Instr.Jal v
            | Obj.Imm, Instr.Li (rd, base) ->
                Instr.Li (rd, Omni_util.Word32.of_int (base + v))
            | Obj.Imm, Instr.Binopi (op, rd, rs, base) ->
                Instr.Binopi (op, rd, rs, Omni_util.Word32.of_int (base + v))
            | Obj.Imm, Instr.Load (w, s, rd, b, base) ->
                Instr.Load (w, s, rd, b, Omni_util.Word32.of_int (base + v))
            | Obj.Imm, Instr.Store (w, rv, b, base) ->
                Instr.Store (w, rv, b, Omni_util.Word32.of_int (base + v))
            | Obj.Imm, Instr.Fload (pr, fd, b, base) ->
                Instr.Fload (pr, fd, b, Omni_util.Word32.of_int (base + v))
            | Obj.Imm, Instr.Fstore (pr, fv, b, base) ->
                Instr.Fstore (pr, fv, b, Omni_util.Word32.of_int (base + v))
            | Obj.Imm, Instr.Bri (c, a, base, l) ->
                Instr.Bri (c, a, Omni_util.Word32.of_int (base + v), l)
            | _, i ->
                fail "bad relocation in %s at %d on %s" p.obj.Obj.obj_name
                  r.rel_at
                  (Instr.to_string Instr.pp_addr_label i)
          in
          text.(at) <- patched)
        p.obj.Obj.relocs)
    placed;
  (* Build the initialized-data image with data relocations applied. *)
  let data = Bytes.make data_len '\000' in
  let total_bss =
    List.fold_left (fun n o -> align8 (n + o.Obj.bss_size)) 0 objs
  in
  List.iter
    (fun p ->
      Bytes.blit p.obj.Obj.data 0 data p.data_base
        (Bytes.length p.obj.Obj.data);
      List.iter
        (fun (off, sym, addend) ->
          let v = (resolve p sym + addend) land 0xFFFFFFFF in
          let at = p.data_base + off in
          Bytes.set data at (Char.chr (v land 0xFF));
          Bytes.set data (at + 1) (Char.chr ((v lsr 8) land 0xFF));
          Bytes.set data (at + 2) (Char.chr ((v lsr 16) land 0xFF));
          Bytes.set data (at + 3) (Char.chr ((v lsr 24) land 0xFF)))
        p.obj.Obj.data_relocs)
    placed;
  let entry_addr =
    match Hashtbl.find_opt globals entry with
    | Some a -> a
    | None -> fail "entry symbol %s is undefined" entry
  in
  let symbols =
    Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) globals []
    |> List.sort compare
  in
  { Exe.text; entry = entry_addr; data; bss_size = total_bss; symbols }
