(** Relocatable OmniVM object files.

    Both the MiniC code generator and the textual assembler produce this
    format; the linker combines objects into a linked {!Omnivm.Exe.t}.
    Text offsets are in instructions, data offsets in bytes. Because OmniVM
    immediates and address offsets are a full 32 bits, every relocation is
    a simple "absolute address of symbol + addend" patch. *)

type section = Text | Data

type symbol = {
  sym_name : string;
  sym_section : section;
  sym_offset : int;
  sym_global : bool;
}

(** Which instruction field a relocation patches. *)
type field =
  | Label  (** branch / jump target *)
  | Imm  (** 32-bit immediate or address offset *)

type reloc = {
  rel_at : int;  (** instruction index *)
  rel_field : field;
  rel_sym : string;
  rel_addend : int;
}

type t = {
  obj_name : string;
  text : int Omnivm.Instr.t array;
  data : Bytes.t;
  bss_size : int;
  symbols : symbol list;
  relocs : reloc list;
  data_relocs : (int * string * int) list;
      (** byte offset in data <- address of symbol + addend *)
}

val empty : string -> t
val find_symbol : t -> string -> symbol option

(** Incremental object construction (used by the assembler and the MiniC
    code generator). *)
module Builder : sig
  type obj = t
  type t

  val create : string -> t

  val here_text : t -> int
  (** Current instruction index. *)

  val here_data : t -> int
  (** Current data offset (initialized bytes + bss so far). *)

  val emit : t -> int Omnivm.Instr.t -> unit

  val emit_reloc :
    t -> int Omnivm.Instr.t -> field:field -> sym:string -> addend:int -> unit
  (** Emit an instruction whose [field] refers to [sym + addend]. *)

  val def_symbol :
    t -> name:string -> section:section -> offset:int -> global:bool -> unit

  val def_label_here : t -> name:string -> global:bool -> unit

  val data_byte : t -> int -> unit
  val data_half : t -> int -> unit
  val data_word : t -> int -> unit
  val data_double : t -> float -> unit
  val data_string : t -> string -> unit

  val data_addr : t -> sym:string -> addend:int -> unit
  (** A 32-bit cell holding another symbol's address (jump tables,
      function-pointer initializers). *)

  val data_space : t -> int -> unit
  val data_align : t -> int -> unit

  val bss_space : t -> int -> unit
  (** Uninitialized bytes; must follow all initialized data. *)

  val finish : t -> obj
end
