(* Textual OmniVM assembler.

   Line-oriented syntax matching the canonical printer in [Omnivm.Instr]:

     ; comment (also #)
     .text / .data             section switch
     .globl name               export a symbol
     label:                    define a label in the current section
     .word v, ...              32-bit values or symbol(+addend) addresses
     .half v, ... / .byte v, ...
     .double 1.5, ...
     .asciz "s" / .ascii "s"
     .space n                  n zero bytes (initialized data)
     .align n
     .comm name, n             n bytes of bss, label it
     add r1, r2, r3            instructions (see Omnivm.Instr)
     lw r1, 8(r2)              memory operands: offset(base)
     lw r1, sym(r0)            symbolic offsets relocate
     li r1, sym                address-of
     beq r1, r2, target

   Pseudo-instructions: mv, neg, not, ret, b, call, la. *)

open Omnivm

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* --- tokenizing one line --- *)

type token =
  | Ident of string
  | Int of int
  | Float_lit of float
  | Str of string
  | Punct of char (* , ( ) : + - . *)

let tokenize line_no s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
    || c = '.'
  in
  let is_ident c = is_ident_start c || (c >= '0' && c <= '9') || c = '.' in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' || c = '#' then i := n
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do incr i done;
      push (Ident (String.sub s start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X') then begin
        i := !i + 2;
        while
          !i < n
          && (is_digit s.[!i]
             || (Char.lowercase_ascii s.[!i] >= 'a'
                && Char.lowercase_ascii s.[!i] <= 'f'))
        do
          incr i
        done;
        push (Int (int_of_string (String.sub s start (!i - start))))
      end
      else begin
        while !i < n && (is_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'e'
                         || s.[!i] = 'E'
                         || ((s.[!i] = '+' || s.[!i] = '-')
                            && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E'))) do
          incr i
        done;
        let text = String.sub s start (!i - start) in
        if String.contains text '.' || String.contains text 'e'
           || String.contains text 'E'
        then push (Float_lit (float_of_string text))
        else push (Int (int_of_string text))
      end
    end
    else if c = '\'' then begin
      (* character literal: 'a' or '\n' *)
      if !i + 2 < n && s.[!i + 1] = '\\' then begin
        let v =
          match s.[!i + 2] with
          | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | '0' -> 0 | '\\' -> 92
          | '\'' -> 39 | c -> Char.code c
        in
        if !i + 3 >= n || s.[!i + 3] <> '\'' then
          fail line_no "bad character literal";
        push (Int v);
        i := !i + 4
      end
      else if !i + 2 < n && s.[!i + 2] = '\'' then begin
        push (Int (Char.code s.[!i + 1]));
        i := !i + 3
      end
      else fail line_no "bad character literal"
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let rec go () =
        if !i >= n then fail line_no "unterminated string"
        else if s.[!i] = '"' then incr i
        else if s.[!i] = '\\' && !i + 1 < n then begin
          (match s.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | '0' -> Buffer.add_char buf '\000'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c -> Buffer.add_char buf c);
          i := !i + 2;
          go ()
        end
        else begin
          Buffer.add_char buf s.[!i];
          incr i;
          go ()
        end
      in
      go ();
      push (Str (Buffer.contents buf))
    end
    else if c = ',' || c = '(' || c = ')' || c = ':' || c = '+' || c = '-'
            || c = '.'
    then begin
      push (Punct c);
      incr i
    end
    else fail line_no "unexpected character %C" c
  done;
  List.rev !toks

(* --- parser state --- *)

type operand =
  | O_reg of Reg.t
  | O_freg of Reg.t
  | O_imm of int
  | O_float of float
  | O_sym of string * int (* symbol + addend *)
  | O_mem of [ `Imm of int | `Sym of string * int ] * Reg.t

let parse_reg line name =
  let freg = String.length name >= 2 && name.[0] = 'f' in
  let ireg = String.length name >= 2 && name.[0] = 'r' in
  if not (freg || ireg) then None
  else
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some n when n >= 0 && n < 16 ->
        Some (if freg then O_freg n else O_reg n)
    | Some _ -> fail line "register out of range: %s" name
    | None -> None

(* Parse an operand from a token stream; returns operand and rest. *)
let rec parse_operand line toks =
  match toks with
  | Ident name :: rest -> (
      match parse_reg line name with
      | Some r -> (r, rest)
      | None -> (
          (* symbol, maybe +/- addend, maybe (reg) memory *)
          match rest with
          | Punct '+' :: Int a :: rest' -> finish_sym line name a rest'
          | Punct '-' :: Int a :: rest' -> finish_sym line name (-a) rest'
          | _ -> finish_sym line name 0 rest))
  | Int v :: Punct '(' :: rest -> parse_mem line (`Imm v) rest
  | Int v :: rest -> (O_imm v, rest)
  | Punct '-' :: Int v :: Punct '(' :: rest -> parse_mem line (`Imm (-v)) rest
  | Punct '-' :: Int v :: rest -> (O_imm (-v), rest)
  | Punct '-' :: Float_lit v :: rest -> (O_float (-.v), rest)
  | Float_lit v :: rest -> (O_float v, rest)
  | _ -> fail line "expected operand"

and finish_sym line name addend rest =
  match rest with
  | Punct '(' :: rest' -> parse_mem line (`Sym (name, addend)) rest'
  | _ -> (O_sym (name, addend), rest)

and parse_mem line off rest =
  match rest with
  | Ident rname :: Punct ')' :: rest' -> (
      match parse_reg line rname with
      | Some (O_reg r) -> (O_mem (off, r), rest')
      | Some _ | None -> fail line "expected integer base register")
  | _ -> fail line "expected (reg)"

let parse_operands line toks =
  let rec go acc toks =
    let op, rest = parse_operand line toks in
    match rest with
    | [] -> List.rev (op :: acc)
    | Punct ',' :: rest' -> go (op :: acc) rest'
    | _ -> fail line "junk after operand"
  in
  match toks with [] -> [] | _ -> go [] toks

(* --- mnemonic tables --- *)

let binops =
  [ ("add", Instr.Add); ("sub", Sub); ("mul", Mul); ("div", Div);
    ("divu", Divu); ("rem", Rem); ("remu", Remu); ("and", And); ("or", Or);
    ("xor", Xor); ("sll", Sll); ("srl", Srl); ("sra", Sra); ("slt", Slt);
    ("sltu", Sltu) ]

let conds =
  [ ("eq", Instr.Eq); ("ne", Ne); ("lt", Lt); ("le", Le); ("gt", Gt);
    ("ge", Ge); ("ltu", Ltu); ("leu", Leu); ("gtu", Gtu); ("geu", Geu) ]

let loads =
  [ ("lb", (Instr.W8, true)); ("lbu", (Instr.W8, false));
    ("lh", (Instr.W16, true)); ("lhu", (Instr.W16, false));
    ("lw", (Instr.W32, true)) ]

let stores = [ ("sb", Instr.W8); ("sh", Instr.W16); ("sw", Instr.W32) ]

let fbinops =
  [ ("fadd", Instr.Fadd); ("fsub", Fsub); ("fmul", Fmul); ("fdiv", Fdiv) ]

let funops = [ ("fneg", Instr.Fneg); ("fabs", Fabs); ("fmov", Fmov) ]
let fcmps = [ ("feq", Instr.Feq); ("flt", Flt); ("fle", Fle) ]

let split_suffix name =
  (* "fadd.d" -> ("fadd", Some Double) *)
  match String.index_opt name '.' with
  | None -> (name, None)
  | Some i ->
      let base = String.sub name 0 i in
      let sfx = String.sub name (i + 1) (String.length name - i - 1) in
      let prec =
        match sfx with
        | "s" -> Some Instr.Single
        | "d" -> Some Instr.Double
        | _ -> None
      in
      (base, if prec = None then None else prec)

(* --- assembling --- *)

type section = Sec_text | Sec_data

let assemble ~name source : Obj.t =
  let b = Obj.Builder.create name in
  let section = ref Sec_text in
  let globals = ref [] in
  let lines = String.split_on_char '\n' source in
  let ireg line = function
    | O_reg r -> r
    | _ -> fail line "expected integer register"
  in
  let freg line = function
    | O_freg r -> r
    | _ -> fail line "expected float register"
  in
  let imm line = function
    | O_imm v -> v
    | _ -> fail line "expected immediate"
  in
  let emit = Obj.Builder.emit b in
  let emit_sym_imm line i sym addend =
    ignore line;
    Obj.Builder.emit_reloc b i ~field:Obj.Imm ~sym ~addend
  in
  let emit_branch line i target =
    match target with
    | O_sym (s, 0) -> Obj.Builder.emit_reloc b i ~field:Obj.Label ~sym:s ~addend:0
    | O_sym (s, a) ->
        Obj.Builder.emit_reloc b i ~field:Obj.Label ~sym:s ~addend:a
    | O_imm _ -> fail line "branch targets must be symbolic"
    | _ -> fail line "expected branch target"
  in
  let def_label line name =
    match !section with
    | Sec_text ->
        Obj.Builder.def_label_here b ~name ~global:false
    | Sec_data ->
        ignore line;
        Obj.Builder.def_symbol b ~name ~section:Obj.Data
          ~offset:(Obj.Builder.here_data b) ~global:false
  in
  let handle_instr line mnemonic ops =
    let base, prec = split_suffix mnemonic in
    match (mnemonic, ops) with
    (* conversions use two-level suffixes; match the full mnemonic first *)
    | "cvt.d.w", [ fd; rs ] ->
        emit (Instr.Cvt_f_i (Double, freg line fd, ireg line rs))
    | "cvt.s.w", [ fd; rs ] ->
        emit (Instr.Cvt_f_i (Single, freg line fd, ireg line rs))
    | "cvt.w.d", [ rd; fs ] ->
        emit (Instr.Cvt_i_f (Double, ireg line rd, freg line fs))
    | "cvt.w.s", [ rd; fs ] ->
        emit (Instr.Cvt_i_f (Single, ireg line rd, freg line fs))
    | "cvt.d.s", [ fd; fs ] ->
        emit (Instr.Cvt_d_s (freg line fd, freg line fs))
    | "cvt.s.d", [ fd; fs ] ->
        emit (Instr.Cvt_s_d (freg line fd, freg line fs))
    | _ ->
    match (base, prec, ops) with
    (* integer ALU *)
    | m, None, [ rd; rs1; rs2 ] when List.mem_assoc m binops -> (
        let op = List.assoc m binops in
        match rs2 with
        | O_reg r2 -> emit (Instr.Binop (op, ireg line rd, ireg line rs1, r2))
        | _ -> fail line "expected register")
    | m, None, [ rd; rs1; v ]
      when String.length m > 1
           && m.[String.length m - 1] = 'i'
           && List.mem_assoc (String.sub m 0 (String.length m - 1)) binops
      -> (
        let op = List.assoc (String.sub m 0 (String.length m - 1)) binops in
        match v with
        | O_imm i -> emit (Instr.Binopi (op, ireg line rd, ireg line rs1, i))
        | O_sym (s, a) ->
            emit_sym_imm line
              (Instr.Binopi (op, ireg line rd, ireg line rs1, 0))
              s a
        | _ -> fail line "expected immediate")
    | "li", None, [ rd; v ] -> (
        match v with
        | O_imm i -> emit (Instr.Li (ireg line rd, i))
        | O_sym (s, a) -> emit_sym_imm line (Instr.Li (ireg line rd, 0)) s a
        | _ -> fail line "expected immediate or symbol")
    | "la", None, [ rd; O_sym (s, a) ] ->
        emit_sym_imm line (Instr.Li (ireg line rd, 0)) s a
    (* loads/stores *)
    | m, None, [ rd; O_mem (off, base_r) ] when List.mem_assoc m loads -> (
        let w, s = List.assoc m loads in
        match off with
        | `Imm v -> emit (Instr.Load (w, s, ireg line rd, base_r, v))
        | `Sym (sym, a) ->
            emit_sym_imm line (Instr.Load (w, s, ireg line rd, base_r, 0)) sym a)
    | m, None, [ rv; O_mem (off, base_r) ] when List.mem_assoc m stores -> (
        let w = List.assoc m stores in
        match off with
        | `Imm v -> emit (Instr.Store (w, ireg line rv, base_r, v))
        | `Sym (sym, a) ->
            emit_sym_imm line (Instr.Store (w, ireg line rv, base_r, 0)) sym a)
    | "fls", None, [ fd; O_mem (off, base_r) ] -> (
        match off with
        | `Imm v -> emit (Instr.Fload (Single, freg line fd, base_r, v))
        | `Sym (sym, a) ->
            emit_sym_imm line (Instr.Fload (Single, freg line fd, base_r, 0))
              sym a)
    | "fld", None, [ fd; O_mem (off, base_r) ] -> (
        match off with
        | `Imm v -> emit (Instr.Fload (Double, freg line fd, base_r, v))
        | `Sym (sym, a) ->
            emit_sym_imm line (Instr.Fload (Double, freg line fd, base_r, 0))
              sym a)
    | "fss", None, [ fv; O_mem (off, base_r) ] -> (
        match off with
        | `Imm v -> emit (Instr.Fstore (Single, freg line fv, base_r, v))
        | `Sym (sym, a) ->
            emit_sym_imm line (Instr.Fstore (Single, freg line fv, base_r, 0))
              sym a)
    | "fsd", None, [ fv; O_mem (off, base_r) ] -> (
        match off with
        | `Imm v -> emit (Instr.Fstore (Double, freg line fv, base_r, v))
        | `Sym (sym, a) ->
            emit_sym_imm line (Instr.Fstore (Double, freg line fv, base_r, 0))
              sym a)
    (* FP arithmetic *)
    | m, Some p, [ fd; fs1; fs2 ] when List.mem_assoc m fbinops ->
        emit
          (Instr.Fbinop
             (List.assoc m fbinops, p, freg line fd, freg line fs1,
              freg line fs2))
    | m, Some p, [ fd; fs ] when List.mem_assoc m funops ->
        emit (Instr.Funop (List.assoc m funops, p, freg line fd, freg line fs))
    | m, Some p, [ rd; fs1; fs2 ] when List.mem_assoc m fcmps ->
        emit
          (Instr.Fcmp
             (List.assoc m fcmps, p, ireg line rd, freg line fs1,
              freg line fs2))
    | "fli", Some p, [ fd; v ] -> (
        match v with
        | O_float f -> emit (Instr.Fli (p, freg line fd, f))
        | O_imm i -> emit (Instr.Fli (p, freg line fd, float_of_int i))
        | _ -> fail line "expected float literal")
    (* branches *)
    | m, None, [ rs1; rs2; target ]
      when String.length m > 1 && m.[0] = 'b'
           && List.mem_assoc (String.sub m 1 (String.length m - 1)) conds -> (
        let c = List.assoc (String.sub m 1 (String.length m - 1)) conds in
        match rs2 with
        | O_reg r2 ->
            emit_branch line (Instr.Br (c, ireg line rs1, r2, 0)) target
        | _ -> fail line "expected register")
    | m, None, [ rs1; v; target ]
      when String.length m > 2
           && m.[0] = 'b'
           && m.[String.length m - 1] = 'i'
           && List.mem_assoc (String.sub m 1 (String.length m - 2)) conds -> (
        let c = List.assoc (String.sub m 1 (String.length m - 2)) conds in
        match v with
        | O_imm i ->
            emit_branch line (Instr.Bri (c, ireg line rs1, i, 0)) target
        | _ -> fail line "expected immediate")
    | "j", None, [ target ] -> emit_branch line (Instr.J 0) target
    | "b", None, [ target ] -> emit_branch line (Instr.J 0) target
    | "jal", None, [ target ] -> emit_branch line (Instr.Jal 0) target
    | "call", None, [ target ] -> emit_branch line (Instr.Jal 0) target
    | "jr", None, [ rs ] -> emit (Instr.Jr (ireg line rs))
    | "ret", None, [] -> emit (Instr.Jr Reg.ra)
    | "jalr", None, [ rd; rs ] ->
        emit (Instr.Jalr (ireg line rd, ireg line rs))
    | "jalr", None, [ rs ] -> emit (Instr.Jalr (Reg.ra, ireg line rs))
    (* misc *)
    | "ext", None, [ rd; rs; pos; len ] ->
        emit
          (Instr.Ext (ireg line rd, ireg line rs, imm line pos, imm line len))
    | "ins", None, [ rd; rs; pos; len ] ->
        emit
          (Instr.Ins (ireg line rd, ireg line rs, imm line pos, imm line len))
    | "hcall", None, [ n ] -> emit (Instr.Hcall (imm line n))
    | "trap", None, [ n ] -> emit (Instr.Trap (imm line n))
    | "nop", None, [] -> emit Instr.Nop
    (* pseudos *)
    | "mv", None, [ rd; rs ] ->
        emit (Instr.Binopi (Add, ireg line rd, ireg line rs, 0))
    | "neg", None, [ rd; rs ] ->
        emit (Instr.Binop (Sub, ireg line rd, Reg.zero, ireg line rs))
    | "not", None, [ rd; rs ] ->
        emit (Instr.Binopi (Xor, ireg line rd, ireg line rs, -1))
    | _ -> fail line "unknown instruction %s/%d" mnemonic (List.length ops)
  in
  let handle_directive line d args =
    match (d, args) with
    | ".text", [] -> section := Sec_text
    | ".data", [] -> section := Sec_data
    | ".globl", [ O_sym (s, 0) ] -> globals := s :: !globals
    | ".entry", [ O_sym (_, 0) ] -> () (* entry is a link-time choice *)
    | ".word", vs ->
        List.iter
          (function
            | O_imm v -> Obj.Builder.data_word b v
            | O_sym (s, a) -> Obj.Builder.data_addr b ~sym:s ~addend:a
            | _ -> fail line "bad .word operand")
          vs
    | ".half", vs ->
        List.iter
          (function
            | O_imm v -> Obj.Builder.data_half b v
            | _ -> fail line "bad .half operand")
          vs
    | ".byte", vs ->
        List.iter
          (function
            | O_imm v -> Obj.Builder.data_byte b v
            | _ -> fail line "bad .byte operand")
          vs
    | ".double", vs ->
        List.iter
          (function
            | O_float f -> Obj.Builder.data_double b f
            | O_imm v -> Obj.Builder.data_double b (float_of_int v)
            | _ -> fail line "bad .double operand")
          vs
    | ".asciz", [ O_sym _ ] -> fail line ".asciz needs a string"
    | ".asciz", _ -> fail line ".asciz needs a string"
    | ".space", [ O_imm n ] -> Obj.Builder.data_space b n
    | ".align", [ O_imm n ] -> Obj.Builder.data_align b n
    | _ -> fail line "unknown or malformed directive %s" d
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let toks = tokenize line raw in
      (* consume leading label definitions *)
      let rec strip_labels toks =
        match toks with
        | Ident l :: Punct ':' :: rest when parse_reg line l = None ->
            def_label line l;
            strip_labels rest
        | _ -> toks
      in
      let toks = strip_labels toks in
      match toks with
      | [] -> ()
      | Ident dname :: rest when dname.[0] = '.' ->
          (* directives; the ones that take strings need special handling *)
          if dname = ".asciz" || dname = ".ascii" then (
            match rest with
            | [ Str s ] ->
                Obj.Builder.data_string b s;
                if dname = ".asciz" then Obj.Builder.data_byte b 0
            | _ -> fail line "%s needs a string literal" dname)
          else if dname = ".comm" then (
            match rest with
            | [ Ident sym; Punct ','; Int n ] ->
                Obj.Builder.def_symbol b ~name:sym ~section:Obj.Data
                  ~offset:(Obj.Builder.here_data b) ~global:false;
                Obj.Builder.bss_space b n
            | _ -> fail line ".comm needs name, size")
          else handle_directive line dname (parse_operands line rest)
      | Ident m :: rest -> handle_instr line m (parse_operands line rest)
      | _ -> fail line "cannot parse line")
    lines;
  let obj = Obj.Builder.finish b in
  (* Apply .globl markings. *)
  let symbols =
    List.map
      (fun (s : Obj.symbol) ->
        if List.mem s.sym_name !globals then { s with sym_global = true }
        else s)
      obj.symbols
  in
  { obj with symbols }
