(* Omniware: the public API tying the system together.

   A host application (a) obtains a mobile module's wire bytes (compiled
   from MiniC or assembled by hand), (b) loads it — mapping the segmented
   address space and instantiating the host-call environment, (c) picks an
   execution engine: the OmniVM reference interpreter, or a load-time
   translation to one of the four simulated target machines, with SFI
   applied unless the module is trusted, and (d) runs it, observing output,
   exit status, and execution statistics. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Risc = Omni_targets.Risc
module Risc_translate = Omni_targets.Risc_translate
module Risc_sim = Omni_targets.Risc_sim
module X86 = Omni_targets.X86
module X86_translate = Omni_targets.X86_translate
module X86_sim = Omni_targets.X86_sim

type engine =
  | Interp
  | Target of Arch.t

let engine_of_string = function
  | "interp" -> Some Interp
  | s -> Option.map (fun a -> Target a) (Arch.of_string s)

(* Per-architecture mobile-translator optimization defaults, following the
   paper (section 4): Mips and PowerPC translators schedule locally; the
   Sparc translator does not schedule but uses a global pointer and fills
   delay slots; the x86 translator does floating-point scheduling and
   peephole only. *)
let mobile_opts (a : Arch.t) : Machine.topts =
  match a with
  | Arch.Mips ->
      { schedule = true; fill_delay_slots = true; use_gp = false;
        peephole = true; sfi_opt = false }
  | Arch.Sparc ->
      { schedule = false; fill_delay_slots = true; use_gp = true;
        peephole = true; sfi_opt = false }
  | Arch.Ppc ->
      { schedule = true; fill_delay_slots = false; use_gp = false;
        peephole = true; sfi_opt = false }
  | Arch.X86 ->
      { schedule = true; fill_delay_slots = false; use_gp = false;
        peephole = true; sfi_opt = false }

type run_result = {
  output : string;
  exit_code : int;
  outcome : Machine.outcome;
  instructions : int;
  cycles : int;
  stats : Machine.stats option; (* None for the interpreter *)
}

(* --- loading and running --- *)

let load ?(map_host_region = false) ?allow exe =
  Omni_runtime.Loader.load ?allow ~map_host_region exe

let run_interp ?(fuel = max_int) (img : Omni_runtime.Loader.image) : run_result
    =
  let outcome, st = Omni_runtime.Loader.run_interp ~fuel img in
  let outcome' =
    match outcome with
    | Omnivm.Interp.Exited c -> Machine.Exited c
    | Omnivm.Interp.Faulted f -> Machine.Faulted f
    | Omnivm.Interp.Out_of_fuel -> Machine.Out_of_fuel
  in
  {
    output = Omni_runtime.Host.output img.Omni_runtime.Loader.host;
    exit_code = (match outcome' with Machine.Exited c -> c | _ -> -1);
    outcome = outcome';
    instructions = st.Omnivm.Interp.icount;
    cycles = st.Omnivm.Interp.icount;
    stats = None;
  }

(* Translate a loaded module for a target architecture. *)
type translated =
  | T_risc of Risc.program
  | T_x86 of X86.program

let translate ?(mode : Machine.mode option) ?opts (arch : Arch.t)
    (exe : Omnivm.Exe.t) : translated =
  let mode =
    match mode with
    | Some m -> m
    | None -> Machine.Mobile (Omni_sfi.Policy.make ())
  in
  let opts = match opts with Some o -> o | None -> mobile_opts arch in
  match arch with
  | Arch.Mips ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.mips_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.Sparc ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.sparc_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.Ppc ->
      T_risc
        (Risc_translate.translate
           { Risc_translate.cfg = Risc.ppc_cfg; mode; opts; sfi_cache = None }
           exe)
  | Arch.X86 -> T_x86 (X86_translate.translate ~mode ~opts exe)

let run_translated ?(fuel = max_int) (tr : translated)
    (img : Omni_runtime.Loader.image) : run_result =
  let outcome, stats =
    match tr with
    | T_risc p ->
        let o, s, _ =
          Risc_sim.run ~fuel p img.Omni_runtime.Loader.mem
            img.Omni_runtime.Loader.host
        in
        (o, s)
    | T_x86 p ->
        let o, s, _ =
          X86_sim.run ~fuel p img.Omni_runtime.Loader.mem
            img.Omni_runtime.Loader.host
        in
        (o, s)
  in
  {
    output = Omni_runtime.Host.output img.Omni_runtime.Loader.host;
    exit_code = (match outcome with Machine.Exited c -> c | _ -> -1);
    outcome;
    instructions = stats.Machine.instructions;
    cycles = stats.Machine.cycles;
    stats = Some stats;
  }

(* One-call convenience used by omnirun and the experiment harness. *)
let run_exe ?(engine = Interp) ?(sfi = true) ?mode ?opts ?fuel
    ?(map_host_region = false) (exe : Omnivm.Exe.t) : run_result =
  let img = load ~map_host_region exe in
  match engine with
  | Interp -> run_interp ?fuel img
  | Target arch ->
      let mode =
        match mode with
        | Some m -> m
        | None ->
            if sfi then Machine.Mobile (Omni_sfi.Policy.make ())
            else Machine.Mobile Omni_sfi.Policy.off
      in
      let tr = translate ~mode ?opts arch exe in
      run_translated ?fuel tr img

let run_wire ~engine ?(sfi = true) ?fuel bytes : run_result =
  let exe = Omnivm.Wire.decode bytes in
  match engine_of_string engine with
  | None -> invalid_arg ("unknown engine " ^ engine)
  | Some e -> run_exe ~engine:e ~sfi ?fuel exe

(* --- compilation (re-exported for hosts embedding the compiler) --- *)

let compile = Minic.Driver.compile_wire
let compile_exe = Minic.Driver.compile_exe
