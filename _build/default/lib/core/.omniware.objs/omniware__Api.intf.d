lib/core/api.mli: Minic Omni_runtime Omni_targets Omnivm
