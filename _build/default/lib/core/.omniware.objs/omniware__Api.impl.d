lib/core/api.ml: Minic Omni_runtime Omni_sfi Omni_targets Omnivm Option
