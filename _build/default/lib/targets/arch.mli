(** The four target processor architectures of the paper's evaluation. *)

type t = Mips | Sparc | Ppc | X86

val all : t list

val name : t -> string
(** ["mips"], ["sparc"], ["ppc"], ["x86"]. *)

val of_string : string -> t option
(** Accepts the names above plus ["powerpc"] and ["pentium"]. *)
