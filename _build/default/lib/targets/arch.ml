(* The four target processor architectures of the paper's evaluation. *)

type t = Mips | Sparc | Ppc | X86

let all = [ Mips; Sparc; Ppc; X86 ]

let name = function
  | Mips -> "mips"
  | Sparc -> "sparc"
  | Ppc -> "ppc"
  | X86 -> "x86"

let of_string = function
  | "mips" -> Some Mips
  | "sparc" -> Some Sparc
  | "ppc" | "powerpc" -> Some Ppc
  | "x86" | "pentium" -> Some X86
  | _ -> None
