lib/targets/arch.mli:
