lib/targets/pipeline.mli:
