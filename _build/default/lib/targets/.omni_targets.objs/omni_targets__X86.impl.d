lib/targets/x86.ml: Array Machine Omnivm Pipeline Printf String
