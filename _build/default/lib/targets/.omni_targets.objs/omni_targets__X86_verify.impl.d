lib/targets/x86_verify.ml: Array List Omni_sfi Omnivm Pipeline X86
