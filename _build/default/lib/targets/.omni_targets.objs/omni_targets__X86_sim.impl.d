lib/targets/x86_sim.ml: Array Float Int32 Machine Omni_runtime Omni_util Omnivm Pipeline X86
