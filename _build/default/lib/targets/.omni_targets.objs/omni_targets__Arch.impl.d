lib/targets/arch.ml:
