lib/targets/sched.mli: Pipeline
