lib/targets/risc_verify.ml: Array Omni_sfi Omnivm Risc
