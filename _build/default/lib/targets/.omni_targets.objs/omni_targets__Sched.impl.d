lib/targets/sched.ml: Array Hashtbl List Option Pipeline
