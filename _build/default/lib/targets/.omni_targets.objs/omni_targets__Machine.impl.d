lib/targets/machine.ml: Array List Omni_sfi Omnivm
