lib/targets/risc_translate.ml: Array Float List Machine Omni_sfi Omni_util Omnivm Pipeline Printf Risc Sched
