lib/targets/pipeline.ml: Array List
