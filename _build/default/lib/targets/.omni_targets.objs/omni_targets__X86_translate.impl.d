lib/targets/x86_translate.ml: Array Float List Machine Omni_sfi Omni_util Omnivm Pipeline Printf Sched Sys X86
