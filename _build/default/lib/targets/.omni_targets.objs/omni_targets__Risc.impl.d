lib/targets/risc.ml: Machine Omnivm Pipeline Printf
