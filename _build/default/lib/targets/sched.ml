(* Local (basic-block) list scheduling, generic over target instructions.

   This is the main translator optimization the paper measures (section 4.2,
   Table 5): it hides load/FP/compare latencies in pipeline interlock slots
   and, on delay-slot architectures, fills branch delay slots. The paper's
   observation that scheduling hides part of the SFI overhead falls out
   naturally: sandboxing instructions are short-latency ALU ops that slot
   into interlock bubbles.

   [quality] distinguishes the translators' greedy scheduler from the
   vendor-compiler tier's critical-path scheduler (used by the native `cc`
   baseline). *)

type 'a info = {
  attrs : 'a -> Pipeline.attrs;
  is_barrier : 'a -> bool; (* calls / host calls: nothing moves across *)
}

type quality = Greedy | Critical_path

(* Dependence graph over a straight-line body (no control instructions). *)
let build_deps info (body : 'a array) =
  let n = Array.length body in
  let preds = Array.make n [] in
  let add_dep i j = if i <> j then preds.(j) <- i :: preds.(j) in
  let last_writer : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let readers : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  let last_barrier = ref (-1) in
  let mem_stores = ref [] in
  let mem_loads = ref [] in
  for j = 0 to n - 1 do
    let a = info.attrs body.(j) in
    (* register dependences *)
    List.iter
      (fun r ->
        (match Hashtbl.find_opt last_writer r with
        | Some i -> add_dep i j (* RAW *)
        | None -> ());
        Hashtbl.replace readers r
          (j :: Option.value ~default:[] (Hashtbl.find_opt readers r)))
      a.Pipeline.uses;
    List.iter
      (fun r ->
        (match Hashtbl.find_opt last_writer r with
        | Some i -> add_dep i j (* WAW *)
        | None -> ());
        (match Hashtbl.find_opt readers r with
        | Some rs -> List.iter (fun i -> add_dep i j) rs (* WAR *)
        | None -> ());
        Hashtbl.replace last_writer r j;
        Hashtbl.replace readers r [])
      a.Pipeline.defs;
    (* memory dependences: conservative total order on stores; loads are
       ordered against stores both ways *)
    if a.Pipeline.is_store then begin
      List.iter (fun i -> add_dep i j) !mem_stores;
      List.iter (fun i -> add_dep i j) !mem_loads;
      mem_stores := j :: !mem_stores;
      mem_loads := []
    end
    else if a.Pipeline.is_load then begin
      List.iter (fun i -> add_dep i j) !mem_stores;
      mem_loads := j :: !mem_loads
    end;
    (* barriers *)
    if !last_barrier >= 0 then add_dep !last_barrier j;
    if info.is_barrier body.(j) then begin
      for i = 0 to j - 1 do
        add_dep i j
      done;
      last_barrier := j
    end
  done;
  Array.map (fun l -> List.sort_uniq compare l) preds

(* Longest path (by latency) from each node to the end of the block. *)
let critical_path info body preds =
  let n = Array.length body in
  let succs = Array.make n [] in
  Array.iteri (fun j ps -> List.iter (fun i -> succs.(i) <- j :: succs.(i)) ps) preds;
  let height = Array.make n 0 in
  for i = n - 1 downto 0 do
    let lat = (info.attrs body.(i)).Pipeline.latency in
    height.(i) <-
      List.fold_left (fun acc j -> max acc (height.(j) + lat)) lat succs.(i)
  done;
  height

(* Schedule a straight-line body; returns a permutation of it. *)
let schedule_body info ~quality (body : 'a array) : 'a array =
  let n = Array.length body in
  if n <= 1 then body
  else begin
    let preds = build_deps info body in
    let height =
      match quality with
      | Critical_path -> critical_path info body preds
      | Greedy -> Array.make n 0
    in
    let remaining = Array.make n 0 in
    Array.iteri (fun j ps -> remaining.(j) <- List.length ps) preds;
    let succs = Array.make n [] in
    Array.iteri (fun j ps -> List.iter (fun i -> succs.(i) <- j :: succs.(i)) ps) preds;
    let scheduled = Array.make n (-1) in
    let done_ = Array.make n false in
    let ready_time = Array.make n 0 in
    let reg_ready : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let clock = ref 0 in
    let count = ref 0 in
    while !count < n do
      (* collect ready nodes *)
      let best = ref (-1) in
      for j = n - 1 downto 0 do
        if (not done_.(j)) && remaining.(j) = 0 then begin
          (* data-ready time from operand latencies *)
          let a = info.attrs body.(j) in
          let t =
            List.fold_left
              (fun acc r ->
                max acc (Option.value ~default:0 (Hashtbl.find_opt reg_ready r)))
              ready_time.(j) a.Pipeline.uses
          in
          ready_time.(j) <- t;
          match !best with
          | -1 -> best := j
          | b ->
              let better =
                let tb = ready_time.(b) in
                if (t <= !clock) <> (tb <= !clock) then t <= !clock
                else
                  match quality with
                  | Critical_path ->
                      if height.(j) <> height.(b) then height.(j) > height.(b)
                      else j < b
                  | Greedy -> j < b
              in
              if better then best := j
        end
      done;
      let j = !best in
      assert (j >= 0);
      scheduled.(!count) <- j;
      incr count;
      done_.(j) <- true;
      let a = info.attrs body.(j) in
      clock := max !clock ready_time.(j) + 1;
      List.iter
        (fun r -> Hashtbl.replace reg_ready r (!clock - 1 + a.Pipeline.latency))
        a.Pipeline.defs;
      List.iter
        (fun s -> remaining.(s) <- remaining.(s) - 1)
        succs.(j)
    done;
    Array.map (fun i -> body.(i)) scheduled
  end

(* Try to move one scheduled-body instruction into the branch delay slot.
   [branch_attrs] are the attributes of the terminating control
   instruction. Returns (new_body, filler option). *)
let fill_delay_slot info ~branch_attrs (body : 'a array) : 'a array * 'a option
    =
  let n = Array.length body in
  let conflicts a =
    let inter l1 l2 = List.exists (fun x -> List.mem x l2) l1 in
    (* RAW: branch reads what the candidate writes; WAW: both write the
       same register; WAR: the candidate reads a register the branch
       writes (calls write the link register before the slot executes) *)
    inter a.Pipeline.defs branch_attrs.Pipeline.uses
    || inter a.Pipeline.defs branch_attrs.Pipeline.defs
    || inter a.Pipeline.uses branch_attrs.Pipeline.defs
  in
  (* candidate: the last instruction that the branch does not depend on,
     and that no later instruction depends on (we only try the very last
     instruction, which trivially satisfies the second condition) *)
  if n = 0 then (body, None)
  else
    let last = body.(n - 1) in
    let a = info.attrs last in
    if info.is_barrier last || conflicts a then (body, None)
    else (Array.sub body 0 (n - 1), Some last)
