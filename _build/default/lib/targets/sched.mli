(** Local (basic-block) list scheduling, generic over target instructions.

    The main translator optimization the paper measures (§4.2, Table 5):
    hides load/FP/compare latencies in pipeline interlock slots and, on
    delay-slot architectures, fills branch delay slots. The paper's
    observation that scheduling hides part of the SFI overhead falls out
    naturally: sandboxing instructions are short-latency ALU operations
    that fit into interlock bubbles. *)

type 'a info = {
  attrs : 'a -> Pipeline.attrs;
  is_barrier : 'a -> bool;  (** calls/host calls: nothing moves across *)
}

(** [Greedy] approximates the paper's translators; [Critical_path] is the
    vendor-compiler tier's stronger heuristic. *)
type quality = Greedy | Critical_path

val build_deps : 'a info -> 'a array -> int list array
(** Dependence predecessors (RAW/WAR/WAW on registers, conservative memory
    ordering, barriers) for each instruction of a straight-line body. *)

val critical_path : 'a info -> 'a array -> int list array -> int array

val schedule_body : 'a info -> quality:quality -> 'a array -> 'a array
(** A semantics-preserving permutation of the body. *)

val fill_delay_slot :
  'a info -> branch_attrs:Pipeline.attrs -> 'a array -> 'a array * 'a option
(** Try to move the body's last instruction into the branch delay slot;
    refuses on any RAW/WAW/WAR hazard against the branch. *)
