(** Generic in-order pipeline cost model.

    Each retired instruction reports the abstract resources it reads and
    writes, its result latency, and its functional-unit class; the engine
    charges issue cycles, operand-interlock stalls, and taken-branch
    penalties. Deliberately coarse: the effects the reproduction needs
    (scheduling hides load/FP latency and SFI overhead in interlock cycles;
    the superscalar PPC pays for long-latency compares; Pentium pairing)
    all appear at this granularity.

    Resource ids: 0..31 integer registers, 32..63 float registers, 64
    condition codes, 65 FP condition, 66+ free for target use. *)

type unit_class = IU | FPU | LSU | BRU

type attrs = {
  uses : int list;
  defs : int list;
  latency : int;
  unit_ : unit_class;
  is_load : bool;
  is_store : bool;
}

type config = {
  issue_width : int;
  dual_issue_rule : unit_class -> unit_class -> bool;
      (** may these two classes issue in the same cycle, in order? *)
  taken_branch_penalty : int;
}

type t

val create : config -> t
val reset : t -> unit

val step : t -> attrs -> taken_branch:bool -> unit
(** Account one retired instruction. *)

val cycles : t -> int
(** Total simulated cycles so far. *)
