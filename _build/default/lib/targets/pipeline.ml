(* Generic in-order pipeline cost model.

   Each retired instruction reports which abstract resources it reads and
   writes, its result latency, and its functional-unit class; the engine
   charges issue cycles, operand-interlock stalls, and taken-branch
   penalties. This is deliberately a coarse model: the paper's effects we
   need (scheduling hides load/FP latency and SFI overhead in interlock
   cycles; superscalar PPC pays for long-latency compares; Pentium pairing)
   all show up at this granularity.

   Resource ids: 0..31 integer regs, 32..63 float regs, 64 condition codes,
   65 FP condition, 66+ free for target use. *)

type unit_class = IU | FPU | LSU | BRU

type attrs = {
  uses : int list;
  defs : int list;
  latency : int; (* cycles until defs are usable *)
  unit_ : unit_class;
  is_load : bool;
  is_store : bool;
}

type config = {
  issue_width : int; (* instructions per cycle *)
  dual_issue_rule : unit_class -> unit_class -> bool;
      (* may these two issue in the same cycle (in order)? *)
  taken_branch_penalty : int;
}

type t = {
  cfg : config;
  ready : int array; (* resource id -> cycle its value is ready *)
  mutable cycle : int;
  mutable issued_this_cycle : int;
  mutable last_class : unit_class;
}

let create cfg = {
  cfg;
  ready = Array.make 80 0;
  cycle = 0;
  issued_this_cycle = 0;
  last_class = IU;
}

let reset t =
  Array.fill t.ready 0 (Array.length t.ready) 0;
  t.cycle <- 0;
  t.issued_this_cycle <- 0

(* Account one retired instruction; returns nothing, accumulates in
   [t.cycle]. *)
let step t (a : attrs) ~taken_branch =
  (* operand readiness *)
  let ready_at =
    List.fold_left (fun acc r -> max acc t.ready.(r)) t.cycle a.uses
  in
  let issue_cycle =
    if ready_at > t.cycle then ready_at (* interlock stall *)
    else if t.issued_this_cycle = 0 then t.cycle
    else if
      t.issued_this_cycle < t.cfg.issue_width
      && t.cfg.dual_issue_rule t.last_class a.unit_
    then t.cycle
    else t.cycle + 1
  in
  if issue_cycle > t.cycle then begin
    t.cycle <- issue_cycle;
    t.issued_this_cycle <- 1
  end
  else t.issued_this_cycle <- t.issued_this_cycle + 1;
  t.last_class <- a.unit_;
  List.iter (fun r -> t.ready.(r) <- issue_cycle + a.latency) a.defs;
  if taken_branch && t.cfg.taken_branch_penalty > 0 then begin
    t.cycle <- t.cycle + t.cfg.taken_branch_penalty;
    t.issued_this_cycle <- 0
  end

let cycles t = t.cycle + 1
