(* The typed core language MiniC elaborates into.

   The typechecker normalizes away C surface complexity:
   - pointer arithmetic becomes explicit scaled address arithmetic
     (the paper's OmniVM design point: the compiler defines data layout and
     emits explicit address computation the optimizer can work on),
   - array indexing and member access become address computations + loads,
   - implicit conversions become explicit [Cast] nodes,
   - compound assignment and inc/dec become [Let]-bound reads and writes,
   - local names are made unique (scoping is resolved here).

   Both the reference interpreter (the differential-testing oracle) and the
   IR lowering consume this form. *)

open Ast

type tmp = int (* compiler-introduced temporary *)

type lval =
  | Lvar of string * ty (* unique-named local or parameter *)
  | Lglob of string * ty
  | Lmem of texpr * ty (* object at address, of type ty *)

and texpr = { ty : ty; desc : tdesc }

and tdesc =
  | Cint of int (* also char and pointer constants *)
  | Cfloat of float
  | Cstr of int (* index into the program string table; ty = char* *)
  | Load of lval
  | Addr of lval
  | Fun_addr of string
  | Tmp of tmp
  | Let of tmp * texpr * texpr
  | Bin of binop * texpr * texpr
      (* operands already converted to a common type; for shifts the rhs is
         int; comparisons yield int *)
  | Un of unop * texpr
  | Cast of texpr (* convert operand to [ty] *)
  | Assign of lval * texpr (* value of the node = assigned value *)
  | Seq of texpr * texpr
  | Cond of texpr * texpr * texpr
  | Andor of bool * texpr * texpr (* true = &&, false = || ; yields int *)
  | Call of callee * texpr list

and callee =
  | Dir of string
  | Ind of texpr (* function pointer *)
  | Builtin of Omnivm.Hostcall.t

type tstmt =
  | Sexpr of texpr
  | Sdecl of string * ty * texpr option (* scalar initializer, if any *)
  | Sif of texpr * tstmt * tstmt option
  | Swhile of texpr * tstmt
  | Sdo of tstmt * texpr
  | Sfor of tstmt option * texpr option * texpr option * tstmt
  | Sret of texpr option
  | Sbreak
  | Scont
  | Sblock of tstmt list

type field_layout = { fl_name : string; fl_offset : int; fl_ty : ty }
type struct_layout = { sl_size : int; sl_align : int; sl_fields : field_layout list }

type tfunc = {
  tf_name : string;
  tf_ret : ty;
  tf_params : (string * ty) list; (* unique names *)
  tf_locals : (string * ty) list; (* all locals incl. params, unique names *)
  tf_addr_taken : (string, unit) Hashtbl.t; (* locals that must live in memory *)
  tf_body : tstmt;
}

(* Global initializer, reduced to constant data. *)
type gdata =
  | Gbytes of Bytes.t
  | Gword of int
  | Gdouble of float
  | Gaddr_of_global of string * int (* symbol + byte offset *)
  | Gaddr_of_func of string
  | Gaddr_of_string of int (* string table index *)
  | Gzeros of int

type tglobal = { tg_name : string; tg_ty : ty; tg_init : gdata list }

type tprogram = {
  tp_structs : (string * struct_layout) list;
  tp_globals : tglobal list;
  tp_funcs : tfunc list;
  tp_strings : string array;
}
