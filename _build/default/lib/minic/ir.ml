(* MiniC intermediate representation: a CFG of basic blocks over virtual
   registers, shaped so that (a) the machine-independent optimizations the
   paper attributes to the compiler (constant folding/propagation, CSE,
   strength reduction, dead code elimination) are easy to express, and
   (b) instruction selection to OmniVM is near 1:1. *)

type vclass = I | F

type vreg = int

type operand =
  | Vr of vreg
  | Ci of int (* 32-bit integer constant *)
  | Cf of float (* float constant (class F contexts) *)
  | Sym of string * int (* link-time address constant: symbol + offset *)
  | Slotaddr of int * int (* frame slot id + displacement: sp-relative *)

(* Memory operand: base + displacement. The 32-bit displacement mirrors
   OmniVM's 32-bit address offsets. *)
type address = { base : operand; disp : int }

type rvalue =
  | Ibin of Omnivm.Instr.binop * operand * operand
  | Fbin of Omnivm.Instr.fbinop * operand * operand
  | Fun1 of Omnivm.Instr.funop * operand
  | Fcmp of Omnivm.Instr.fcmp * operand * operand (* int result *)
  | F_of_i of operand
  | I_of_f of operand
  | Mov of operand
  | Load of Omnivm.Instr.mem_width * bool * address
  | Loadf of address

type callee = Direct of string | Indirect of operand

type inst =
  | Def of vreg * rvalue
  | Store of Omnivm.Instr.mem_width * operand * address
  | Storef of operand * address
  | Call of {
      dst : (vclass * vreg) option;
      callee : callee;
      args : (vclass * operand) list;
    }
  | Hcall of {
      dst : (vclass * vreg) option;
      call : Omnivm.Hostcall.t;
      args : (vclass * operand) list;
    }

type term =
  | Ret of (vclass * operand) option
  | Jmp of int
  | CondBr of Omnivm.Instr.cond * operand * operand * int * int
      (* if a cond b then blk1 else blk2 *)

type block = { mutable insts : inst list; mutable term : term }

type slot = { slot_size : int; slot_align : int }

type func = {
  fn_name : string;
  fn_params : (vclass * vreg) list;
  mutable fn_blocks : block array; (* entry = block 0 *)
  mutable fn_vreg_class : vclass array;
  mutable fn_slots : slot array;
}

type program = {
  pr_funcs : func list;
  pr_globals : Tast.tglobal list;
  pr_strings : string array;
}

let vreg_count f = Array.length f.fn_vreg_class

let class_of f v = f.fn_vreg_class.(v)

(* --- traversal helpers --- *)

let rvalue_operands = function
  | Ibin (_, a, b) | Fbin (_, a, b) | Fcmp (_, a, b) -> [ a; b ]
  | Fun1 (_, a) | F_of_i a | I_of_f a | Mov a -> [ a ]
  | Load (_, _, { base; _ }) | Loadf { base; _ } -> [ base ]

let inst_uses = function
  | Def (_, rv) -> rvalue_operands rv
  | Store (_, v, { base; _ }) | Storef (v, { base; _ }) -> [ v; base ]
  | Call { callee; args; _ } ->
      let c = match callee with Direct _ -> [] | Indirect o -> [ o ] in
      c @ List.map snd args
  | Hcall { args; _ } -> List.map snd args

let inst_def = function
  | Def (v, _) -> Some v
  | Call { dst = Some (_, v); _ } | Hcall { dst = Some (_, v); _ } -> Some v
  | Call { dst = None; _ } | Hcall { dst = None; _ } | Store _ | Storef _ ->
      None

let term_uses = function
  | Ret (Some (_, o)) -> [ o ]
  | Ret None -> []
  | Jmp _ -> []
  | CondBr (_, a, b, _, _) -> [ a; b ]

let term_succs = function
  | Ret _ -> []
  | Jmp b -> [ b ]
  | CondBr (_, _, _, t, e) -> [ t; e ]

let vregs_of_operands ops =
  List.filter_map (function Vr v -> Some v | _ -> None) ops

(* --- printing (debugging and golden tests) --- *)

let string_of_operand = function
  | Vr v -> Printf.sprintf "v%d" v
  | Ci i -> string_of_int i
  | Cf f -> Printf.sprintf "%g" f
  | Sym (s, 0) -> Printf.sprintf "&%s" s
  | Sym (s, o) -> Printf.sprintf "&%s+%d" s o
  | Slotaddr (s, 0) -> Printf.sprintf "&slot%d" s
  | Slotaddr (s, o) -> Printf.sprintf "&slot%d+%d" s o

let string_of_address { base; disp } =
  if disp = 0 then Printf.sprintf "[%s]" (string_of_operand base)
  else Printf.sprintf "[%s + %d]" (string_of_operand base) disp

let string_of_rvalue rv =
  let o = string_of_operand in
  match rv with
  | Ibin (op, a, b) ->
      Printf.sprintf "%s %s, %s" (Omnivm.Instr.binop_name op) (o a) (o b)
  | Fbin (op, a, b) ->
      Printf.sprintf "%s %s, %s" (Omnivm.Instr.fbinop_name op) (o a) (o b)
  | Fun1 (op, a) -> Printf.sprintf "%s %s" (Omnivm.Instr.funop_name op) (o a)
  | Fcmp (op, a, b) ->
      Printf.sprintf "%s %s, %s" (Omnivm.Instr.fcmp_name op) (o a) (o b)
  | F_of_i a -> Printf.sprintf "f_of_i %s" (o a)
  | I_of_f a -> Printf.sprintf "i_of_f %s" (o a)
  | Mov a -> o a
  | Load (w, s, addr) ->
      Printf.sprintf "%s %s" (Omnivm.Instr.load_name w s) (string_of_address addr)
  | Loadf addr -> Printf.sprintf "fld %s" (string_of_address addr)

let string_of_inst i =
  let o = string_of_operand in
  match i with
  | Def (v, rv) -> Printf.sprintf "v%d := %s" v (string_of_rvalue rv)
  | Store (w, v, addr) ->
      Printf.sprintf "%s %s <- %s" (Omnivm.Instr.store_name w)
        (string_of_address addr) (o v)
  | Storef (v, addr) ->
      Printf.sprintf "fsd %s <- %s" (string_of_address addr) (o v)
  | Call { dst; callee; args } ->
      let d = match dst with Some (_, v) -> Printf.sprintf "v%d := " v | None -> "" in
      let c = match callee with Direct s -> s | Indirect x -> "*" ^ o x in
      Printf.sprintf "%scall %s(%s)" d c
        (String.concat ", " (List.map (fun (_, a) -> o a) args))
  | Hcall { dst; call; args } ->
      let d = match dst with Some (_, v) -> Printf.sprintf "v%d := " v | None -> "" in
      Printf.sprintf "%shcall %s(%s)" d
        (Omnivm.Hostcall.name call)
        (String.concat ", " (List.map (fun (_, a) -> o a) args))

let string_of_term = function
  | Ret None -> "ret"
  | Ret (Some (_, o)) -> Printf.sprintf "ret %s" (string_of_operand o)
  | Jmp b -> Printf.sprintf "jmp B%d" b
  | CondBr (c, a, b, t, e) ->
      Printf.sprintf "if %s %s %s then B%d else B%d" (string_of_operand a)
        (Omnivm.Instr.cond_name c) (string_of_operand b) t e

let pp_func fmt f =
  Format.fprintf fmt "func %s(%s)@."  f.fn_name
    (String.concat ", "
       (List.map (fun (_, v) -> Printf.sprintf "v%d" v) f.fn_params));
  Array.iteri
    (fun i b ->
      Format.fprintf fmt "B%d:@." i;
      List.iter (fun inst -> Format.fprintf fmt "  %s@." (string_of_inst inst)) b.insts;
      Format.fprintf fmt "  %s@." (string_of_term b.term))
    f.fn_blocks

let func_to_string f = Format.asprintf "%a" pp_func f
