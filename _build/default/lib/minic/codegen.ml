(* Code generation: allocated IR -> relocatable OmniVM objects.

   Calling convention (see Reg): r1..r4 / f1..f4 carry the leading integer /
   float arguments, further arguments go on the stack at the caller's sp+0
   upward; results return in r1 / f1. r8, r9, f8, f9 are codegen scratch
   (spill reloads, parallel-move cycle breaking, address materialization).

   Frame layout, from sp upward:
     [outgoing stack args][frame slots][saved callee-saved regs][saved ra]
   Incoming stack args live at sp + frame_size + offset. *)

open Ir
module VI = Omnivm.Instr
module Reg = Omnivm.Reg
module B = Omni_asm.Obj.Builder

let scratch1 = 8 (* r8: address/base/general scratch *)
let scratch2 = 9 (* r9: value scratch, parallel-move temp *)
let fscratch1 = 8 (* f8 *)
let fscratch2 = 9 (* f9 *)

let max_reg_args = 4

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Where each argument of a call goes. *)
type arg_home = In_ireg of Reg.t | In_freg of Reg.t | On_stack of int

let arg_homes (args : (vclass * 'a) list) : (arg_home * 'a) list * int =
  let ni = ref 0 and nf = ref 0 and off = ref 0 in
  let homes =
    List.map
      (fun (cls, x) ->
        match cls with
        | I ->
            if !ni < max_reg_args then begin
              incr ni;
              (In_ireg (Reg.arg (!ni - 1)), x)
            end
            else begin
              let o = !off in
              off := o + 4;
              (On_stack o, x)
            end
        | F ->
            if !nf < max_reg_args then begin
              incr nf;
              (In_freg !nf, x)
            end
            else begin
              off := (!off + 7) land lnot 7;
              let o = !off in
              off := o + 8;
              (On_stack o, x)
            end)
      args
  in
  (homes, !off)

type fstate = {
  b : B.t;
  fname : string;
  locations : Regalloc.location array;
  slot_off : int array;
  frame_size : int;
  vreg_class : vclass array;
}

let block_label st i = Printf.sprintf ".L.%s.%d" st.fname i
let epilogue_label st = Printf.sprintf ".L.%s.epi" st.fname

let loc st v = st.locations.(v)

(* --- operand access --- *)

(* Bring an integer-class operand into a register; uses [scratch] when the
   operand is not already in a register. *)
let fetch_int st scratch (o : operand) : Reg.t =
  match o with
  | Ci 0 -> Reg.zero
  | Ci k ->
      B.emit st.b (VI.Li (scratch, k));
      scratch
  | Sym (s, off) ->
      B.emit_reloc st.b (VI.Li (scratch, 0)) ~field:Omni_asm.Obj.Imm ~sym:s
        ~addend:off;
      scratch
  | Slotaddr (s, d) ->
      B.emit st.b (VI.Binopi (VI.Add, scratch, Reg.sp, st.slot_off.(s) + d));
      scratch
  | Vr v -> (
      match loc st v with
      | Regalloc.Preg r -> r
      | Regalloc.Pslot s ->
          B.emit st.b
            (VI.Load (VI.W32, true, scratch, Reg.sp, st.slot_off.(s)));
          scratch)
  | Cf _ -> fail "float operand in integer context"

let fetch_float st scratch (o : operand) : Reg.t =
  match o with
  | Cf k ->
      B.emit st.b (VI.Fli (VI.Double, scratch, k));
      scratch
  | Vr v -> (
      match loc st v with
      | Regalloc.Preg r -> r
      | Regalloc.Pslot s ->
          B.emit st.b (VI.Fload (VI.Double, scratch, Reg.sp, st.slot_off.(s)));
          scratch)
  | Ci _ | Sym _ | Slotaddr _ -> fail "integer operand in float context"

(* Destination handling: returns the register to compute into and a
   finalizer that stores to the spill slot if needed. *)
let dest_int st v : Reg.t * (unit -> unit) =
  match loc st v with
  | Regalloc.Preg r -> (r, fun () -> ())
  | Regalloc.Pslot s ->
      ( scratch2,
        fun () ->
          B.emit st.b (VI.Store (VI.W32, scratch2, Reg.sp, st.slot_off.(s))) )

let dest_float st v : Reg.t * (unit -> unit) =
  match loc st v with
  | Regalloc.Preg r -> (r, fun () -> ())
  | Regalloc.Pslot s ->
      ( fscratch2,
        fun () ->
          B.emit st.b (VI.Fstore (VI.Double, fscratch2, Reg.sp, st.slot_off.(s)))
      )

(* Address resolution for loads/stores: returns base register, constant
   displacement and an optional symbol relocation for the offset field. *)
type maddr = { m_base : Reg.t; m_disp : int; m_sym : (string * int) option }

let resolve_addr st scratch (a : address) : maddr =
  match a.base with
  | Sym (s, o) -> { m_base = Reg.zero; m_disp = 0; m_sym = Some (s, o + a.disp) }
  | Slotaddr (s, d) ->
      { m_base = Reg.sp; m_disp = st.slot_off.(s) + d + a.disp; m_sym = None }
  | Ci k -> { m_base = Reg.zero; m_disp = k + a.disp; m_sym = None }
  | Vr _ ->
      let r = fetch_int st scratch a.base in
      { m_base = r; m_disp = a.disp; m_sym = None }
  | Cf _ -> fail "float address"

(* Emit the computation of [rv] into destination vreg [v]. *)
let emit_def st v (rv : rvalue) =
  match rv with
  | Mov o -> (
      match st.vreg_class.(v) with
      | I -> (
          let rd, fin = dest_int st v in
          (match o with
          | Ci k -> B.emit st.b (VI.Li (rd, k))
          | Sym (s, off) ->
              B.emit_reloc st.b (VI.Li (rd, 0)) ~field:Omni_asm.Obj.Imm ~sym:s
                ~addend:off
          | Slotaddr (s, d) ->
              B.emit st.b (VI.Binopi (VI.Add, rd, Reg.sp, st.slot_off.(s) + d))
          | Vr src -> (
              match loc st src with
              | Regalloc.Preg r ->
                  if r <> rd then B.emit st.b (VI.Binopi (VI.Add, rd, r, 0))
              | Regalloc.Pslot s ->
                  B.emit st.b
                    (VI.Load (VI.W32, true, rd, Reg.sp, st.slot_off.(s))))
          | Cf _ -> fail "float to int mov");
          fin ())
      | F ->
          let rd, fin = dest_float st v in
          (match o with
          | Cf k -> B.emit st.b (VI.Fli (VI.Double, rd, k))
          | Vr src -> (
              match loc st src with
              | Regalloc.Preg r ->
                  if r <> rd then
                    B.emit st.b (VI.Funop (VI.Fmov, VI.Double, rd, r))
              | Regalloc.Pslot s ->
                  B.emit st.b
                    (VI.Fload (VI.Double, rd, Reg.sp, st.slot_off.(s))))
          | Ci _ | Sym _ | Slotaddr _ -> fail "int to float mov");
          fin ())
  | Ibin (op, a, bb) ->
      let rd, fin = dest_int st v in
      (* commute constant to the right when possible *)
      let a, bb =
        match (op, a, bb) with
        | (VI.Add | VI.Mul | VI.And | VI.Or | VI.Xor), Ci _, _ -> (bb, a)
        | _ -> (a, bb)
      in
      let ra = fetch_int st scratch1 a in
      (match bb with
      | Ci k -> B.emit st.b (VI.Binopi (op, rd, ra, k))
      | Sym (s, off) ->
          B.emit_reloc st.b
            (VI.Binopi (op, rd, ra, 0))
            ~field:Omni_asm.Obj.Imm ~sym:s ~addend:off
      | _ ->
          let rb = fetch_int st scratch2 bb in
          B.emit st.b (VI.Binop (op, rd, ra, rb)));
      fin ()
  | Fbin (op, a, bb) ->
      let rd, fin = dest_float st v in
      let ra = fetch_float st fscratch1 a in
      let rb = fetch_float st fscratch2 bb in
      B.emit st.b (VI.Fbinop (op, VI.Double, rd, ra, rb));
      fin ()
  | Fun1 (op, a) ->
      let rd, fin = dest_float st v in
      let ra = fetch_float st fscratch1 a in
      B.emit st.b (VI.Funop (op, VI.Double, rd, ra));
      fin ()
  | Fcmp (op, a, bb) ->
      let rd, fin = dest_int st v in
      let ra = fetch_float st fscratch1 a in
      let rb = fetch_float st fscratch2 bb in
      B.emit st.b (VI.Fcmp (op, VI.Double, rd, ra, rb));
      fin ()
  | F_of_i a ->
      let rd, fin = dest_float st v in
      let ra = fetch_int st scratch1 a in
      B.emit st.b (VI.Cvt_f_i (VI.Double, rd, ra));
      fin ()
  | I_of_f a ->
      let rd, fin = dest_int st v in
      let ra = fetch_float st fscratch1 a in
      B.emit st.b (VI.Cvt_i_f (VI.Double, rd, ra));
      fin ()
  | Load (w, signed, a) ->
      let rd, fin = dest_int st v in
      let m = resolve_addr st scratch1 a in
      (match m.m_sym with
      | None -> B.emit st.b (VI.Load (w, signed, rd, m.m_base, m.m_disp))
      | Some (s, off) ->
          B.emit_reloc st.b
            (VI.Load (w, signed, rd, m.m_base, 0))
            ~field:Omni_asm.Obj.Imm ~sym:s ~addend:off);
      fin ()
  | Loadf a ->
      let rd, fin = dest_float st v in
      let m = resolve_addr st scratch1 a in
      (match m.m_sym with
      | None -> B.emit st.b (VI.Fload (VI.Double, rd, m.m_base, m.m_disp))
      | Some (s, off) ->
          B.emit_reloc st.b
            (VI.Fload (VI.Double, rd, m.m_base, 0))
            ~field:Omni_asm.Obj.Imm ~sym:s ~addend:off);
      fin ()

(* Parallel move of register sources into argument registers.
   [moves] maps destination register -> source register (same class).
   Uses [tmp] to break cycles. *)
let parallel_move emit_mv tmp (moves : (Reg.t * Reg.t) list) =
  let moves = List.filter (fun (d, s) -> d <> s) moves in
  let rec go moves =
    match moves with
    | [] -> ()
    | _ -> (
        (* a move is safe if no other pending move reads its destination *)
        match
          List.find_opt
            (fun (d, _) -> not (List.exists (fun (_, s') -> s' = d) moves))
            moves
        with
        | Some ((d, s) as m) ->
            emit_mv d s;
            go (List.filter (fun m' -> m' != m) moves)
        | None -> (
            (* cycle: rotate through tmp *)
            match moves with
            | (d, s) :: rest ->
                emit_mv tmp s;
                go
                  (List.map (fun (d', s') -> if s' = d then (d', d) else (d', s'))
                     ((d, tmp) :: rest))
            | [] -> ()))
  in
  go moves

let emit_call_args st (args : (vclass * operand) list) =
  let homes, _bytes = arg_homes args in
  (* stack args first (they use scratch registers) *)
  List.iter
    (fun (home, o) ->
      match home with
      | On_stack off -> (
          match o with
          | Cf _ | Vr _ when (match o with
                              | Vr v -> st.vreg_class.(v) = F
                              | Cf _ -> true
                              | _ -> false) ->
              let r = fetch_float st fscratch1 o in
              B.emit st.b (VI.Fstore (VI.Double, r, Reg.sp, off))
          | _ ->
              let r = fetch_int st scratch1 o in
              B.emit st.b (VI.Store (VI.W32, r, Reg.sp, off)))
      | In_ireg _ | In_freg _ -> ())
    homes;
  (* register args: reg-to-reg moves go through the parallel mover; memory
     and constant sources load directly into their destination *)
  let reg_moves = ref [] in
  let freg_moves = ref [] in
  let direct = ref [] in
  List.iter
    (fun (home, o) ->
      match (home, o) with
      | In_ireg d, Vr v -> (
          match loc st v with
          | Regalloc.Preg s -> reg_moves := (d, s) :: !reg_moves
          | Regalloc.Pslot _ -> direct := (home, o) :: !direct)
      | In_freg d, Vr v -> (
          match loc st v with
          | Regalloc.Preg s -> freg_moves := (d, s) :: !freg_moves
          | Regalloc.Pslot _ -> direct := (home, o) :: !direct)
      | (In_ireg _ | In_freg _), _ -> direct := (home, o) :: !direct
      | On_stack _, _ -> ())
    homes;
  parallel_move
    (fun d s -> B.emit st.b (VI.Binopi (VI.Add, d, s, 0)))
    scratch2 !reg_moves;
  parallel_move
    (fun d s -> B.emit st.b (VI.Funop (VI.Fmov, VI.Double, d, s)))
    fscratch2 !freg_moves;
  List.iter
    (fun (home, o) ->
      match home with
      | In_ireg d -> (
          match o with
          | Ci k -> B.emit st.b (VI.Li (d, k))
          | Sym (s, off) ->
              B.emit_reloc st.b (VI.Li (d, 0)) ~field:Omni_asm.Obj.Imm ~sym:s
                ~addend:off
          | Slotaddr (s, dd) ->
              B.emit st.b
                (VI.Binopi (VI.Add, d, Reg.sp, st.slot_off.(s) + dd))
          | Vr v -> (
              match loc st v with
              | Regalloc.Pslot s ->
                  B.emit st.b
                    (VI.Load (VI.W32, true, d, Reg.sp, st.slot_off.(s)))
              | Regalloc.Preg _ -> assert false)
          | Cf _ -> fail "float arg in int home")
      | In_freg d -> (
          match o with
          | Cf k -> B.emit st.b (VI.Fli (VI.Double, d, k))
          | Vr v -> (
              match loc st v with
              | Regalloc.Pslot s ->
                  B.emit st.b (VI.Fload (VI.Double, d, Reg.sp, st.slot_off.(s)))
              | Regalloc.Preg _ -> assert false)
          | _ -> fail "int arg in float home")
      | On_stack _ -> ())
    !direct

let emit_call_result st dst =
  match dst with
  | None -> ()
  | Some (I, v) -> (
      match loc st v with
      | Regalloc.Preg r ->
          if r <> Reg.ret then B.emit st.b (VI.Binopi (VI.Add, r, Reg.ret, 0))
      | Regalloc.Pslot s ->
          B.emit st.b (VI.Store (VI.W32, Reg.ret, Reg.sp, st.slot_off.(s))))
  | Some (F, v) -> (
      match loc st v with
      | Regalloc.Preg r ->
          if r <> 1 then B.emit st.b (VI.Funop (VI.Fmov, VI.Double, r, 1))
      | Regalloc.Pslot s ->
          B.emit st.b (VI.Fstore (VI.Double, 1, Reg.sp, st.slot_off.(s))))

let emit_inst st (i : inst) =
  match i with
  | Def (v, rv) -> emit_def st v rv
  | Store (w, value, a) ->
      let m = resolve_addr st scratch1 a in
      let rv = fetch_int st scratch2 value in
      (match m.m_sym with
      | None -> B.emit st.b (VI.Store (w, rv, m.m_base, m.m_disp))
      | Some (s, off) ->
          B.emit_reloc st.b
            (VI.Store (w, rv, m.m_base, 0))
            ~field:Omni_asm.Obj.Imm ~sym:s ~addend:off)
  | Storef (value, a) ->
      let m = resolve_addr st scratch1 a in
      let rv = fetch_float st fscratch1 value in
      (match m.m_sym with
      | None -> B.emit st.b (VI.Fstore (VI.Double, rv, m.m_base, m.m_disp))
      | Some (s, off) ->
          B.emit_reloc st.b
            (VI.Fstore (VI.Double, rv, m.m_base, 0))
            ~field:Omni_asm.Obj.Imm ~sym:s ~addend:off)
  | Call { dst; callee; args } ->
      (match callee with
      | Direct f ->
          emit_call_args st args;
          B.emit_reloc st.b (VI.Jal 0) ~field:Omni_asm.Obj.Label ~sym:f
            ~addend:0
      | Indirect o ->
          (* fetch the target before argument moves clobber arg registers *)
          let r = fetch_int st scratch1 o in
          if r <> scratch1 then B.emit st.b (VI.Binopi (VI.Add, scratch1, r, 0));
          emit_call_args st args;
          B.emit st.b (VI.Jalr (Reg.ra, scratch1)));
      emit_call_result st dst
  | Hcall { dst; call; args } ->
      emit_call_args st args;
      B.emit st.b (VI.Hcall (Omnivm.Hostcall.number call));
      emit_call_result st dst

let emit_term st ~next (t : term) =
  match t with
  | Jmp b ->
      if next <> Some b then
        B.emit_reloc st.b (VI.J 0) ~field:Omni_asm.Obj.Label
          ~sym:(block_label st b) ~addend:0
  | CondBr (c, a, bb, tb, eb) ->
      let ra = fetch_int st scratch1 a in
      (match bb with
      | Ci k ->
          B.emit_reloc st.b
            (VI.Bri (c, ra, k, 0))
            ~field:Omni_asm.Obj.Label ~sym:(block_label st tb) ~addend:0
      | _ ->
          let rb = fetch_int st scratch2 bb in
          B.emit_reloc st.b
            (VI.Br (c, ra, rb, 0))
            ~field:Omni_asm.Obj.Label ~sym:(block_label st tb) ~addend:0);
      if next <> Some eb then
        B.emit_reloc st.b (VI.J 0) ~field:Omni_asm.Obj.Label
          ~sym:(block_label st eb) ~addend:0
  | Ret value ->
      (match value with
      | None -> ()
      | Some (I, o) ->
          let r = fetch_int st scratch1 o in
          if r <> Reg.ret then B.emit st.b (VI.Binopi (VI.Add, Reg.ret, r, 0))
      | Some (F, o) ->
          let r = fetch_float st fscratch1 o in
          if r <> 1 then B.emit st.b (VI.Funop (VI.Fmov, VI.Double, 1, r)));
      B.emit_reloc st.b (VI.J 0) ~field:Omni_asm.Obj.Label
        ~sym:(epilogue_label st) ~addend:0

(* --- function --- *)

let gen_func b ~pools (f : func) =
  let alloc = Regalloc.allocate ~pools f in
  (* outgoing argument area *)
  let outgoing =
    Array.fold_left
      (fun acc blk ->
        List.fold_left
          (fun acc i ->
            match i with
            | Call { args; _ } | Hcall { args; _ } ->
                let _, bytes = arg_homes args in
                max acc bytes
            | Def _ | Store _ | Storef _ -> acc)
          acc blk.insts)
      0 f.fn_blocks
  in
  (* frame slots *)
  let n_slots = Array.length f.fn_slots in
  let slot_off = Array.make n_slots 0 in
  let off = ref ((outgoing + 7) land lnot 7) in
  Array.iteri
    (fun i s ->
      off := (!off + s.slot_align - 1) land lnot (s.slot_align - 1);
      slot_off.(i) <- !off;
      off := !off + s.slot_size)
    f.fn_slots;
  (* saved registers *)
  let csi = alloc.Regalloc.used_callee_saved_int in
  let csf = alloc.Regalloc.used_callee_saved_float in
  let save_area = ref [] in
  off := (!off + 7) land lnot 7;
  List.iter
    (fun r ->
      save_area := (`F r, !off) :: !save_area;
      off := !off + 8)
    csf;
  List.iter
    (fun r ->
      save_area := (`I r, !off) :: !save_area;
      off := !off + 4)
    csi;
  let ra_off = !off in
  off := !off + 4;
  let frame_size = (!off + 15) land lnot 15 in
  let st =
    {
      b;
      fname = f.fn_name;
      locations = alloc.Regalloc.locations;
      slot_off;
      frame_size;
      vreg_class = f.fn_vreg_class;
    }
  in
  B.def_label_here b ~name:f.fn_name ~global:true;
  (* prologue *)
  B.emit b (VI.Binopi (VI.Add, Reg.sp, Reg.sp, -frame_size));
  B.emit b (VI.Store (VI.W32, Reg.ra, Reg.sp, ra_off));
  List.iter
    (fun (which, o) ->
      match which with
      | `I r -> B.emit b (VI.Store (VI.W32, r, Reg.sp, o))
      | `F r -> B.emit b (VI.Fstore (VI.Double, r, Reg.sp, o)))
    !save_area;
  (* move parameters into their allocated homes *)
  let homes, _ = arg_homes f.fn_params in
  let reg_moves = ref [] and freg_moves = ref [] and later = ref [] in
  List.iter
    (fun (home, v) ->
      match (home, loc st v) with
      | In_ireg src, Regalloc.Preg d -> reg_moves := (d, src) :: !reg_moves
      | In_freg src, Regalloc.Preg d -> freg_moves := (d, src) :: !freg_moves
      | In_ireg src, Regalloc.Pslot s ->
          (* spill stores must precede the register shuffle below, which
             overwrites the argument registers *)
          B.emit b (VI.Store (VI.W32, src, Reg.sp, slot_off.(s)))
      | In_freg src, Regalloc.Pslot s ->
          B.emit b (VI.Fstore (VI.Double, src, Reg.sp, slot_off.(s)))
      | On_stack _, _ -> later := (home, v) :: !later)
    homes;
  parallel_move
    (fun d s -> B.emit b (VI.Binopi (VI.Add, d, s, 0)))
    scratch2 !reg_moves;
  parallel_move
    (fun d s -> B.emit b (VI.Funop (VI.Fmov, VI.Double, d, s)))
    fscratch2 !freg_moves;
  List.iter
    (fun (home, v) ->
      match (home, loc st v) with
      | In_ireg _, _ | In_freg _, _ -> assert false
      | On_stack o, dst -> (
          let incoming = frame_size + o in
          match (st.vreg_class.(v), dst) with
          | I, Regalloc.Preg d ->
              B.emit b (VI.Load (VI.W32, true, d, Reg.sp, incoming))
          | I, Regalloc.Pslot s ->
              B.emit b (VI.Load (VI.W32, true, scratch1, Reg.sp, incoming));
              B.emit b (VI.Store (VI.W32, scratch1, Reg.sp, slot_off.(s)))
          | F, Regalloc.Preg d ->
              B.emit b (VI.Fload (VI.Double, d, Reg.sp, incoming))
          | F, Regalloc.Pslot s ->
              B.emit b (VI.Fload (VI.Double, fscratch1, Reg.sp, incoming));
              B.emit b (VI.Fstore (VI.Double, fscratch1, Reg.sp, slot_off.(s)))))
    !later;
  (* body *)
  let nblocks = Array.length f.fn_blocks in
  Array.iteri
    (fun i blk ->
      B.def_label_here b ~name:(block_label st i) ~global:false;
      List.iter (emit_inst st) blk.insts;
      let next = if i + 1 < nblocks then Some (i + 1) else None in
      emit_term st ~next blk.term)
    f.fn_blocks;
  (* epilogue *)
  B.def_label_here b ~name:(epilogue_label st) ~global:false;
  List.iter
    (fun (which, o) ->
      match which with
      | `I r -> B.emit b (VI.Load (VI.W32, true, r, Reg.sp, o))
      | `F r -> B.emit b (VI.Fload (VI.Double, r, Reg.sp, o)))
    !save_area;
  B.emit b (VI.Load (VI.W32, true, Reg.ra, Reg.sp, ra_off));
  B.emit b (VI.Binopi (VI.Add, Reg.sp, Reg.sp, frame_size));
  B.emit b (VI.Jr Reg.ra)

(* --- globals and strings --- *)

let gen_globals b (globals : Tast.tglobal list) (strings : string array) =
  List.iter
    (fun (g : Tast.tglobal) ->
      B.data_align b 8;
      B.def_symbol b ~name:g.tg_name ~section:Omni_asm.Obj.Data
        ~offset:(B.here_data b) ~global:true;
      List.iter
        (fun item ->
          match item with
          | Tast.Gbytes bs -> Bytes.iter (fun c -> B.data_byte b (Char.code c)) bs
          | Tast.Gword w -> B.data_word b w
          | Tast.Gdouble d ->
              B.data_align b 8;
              B.data_double b d
          | Tast.Gaddr_of_global (s, off) -> B.data_addr b ~sym:s ~addend:off
          | Tast.Gaddr_of_func s -> B.data_addr b ~sym:s ~addend:0
          | Tast.Gaddr_of_string i ->
              B.data_addr b ~sym:(Lower.string_symbol i) ~addend:0
          | Tast.Gzeros n -> B.data_space b n)
        g.tg_init)
    globals;
  Array.iteri
    (fun i s ->
      B.def_symbol b ~name:(Lower.string_symbol i) ~section:Omni_asm.Obj.Data
        ~offset:(B.here_data b) ~global:false;
      B.data_string b s;
      B.data_byte b 0)
    strings

let gen_program ?(pools = Regalloc.default_pools ~regfile_size:16) ~name
    (p : program) : Omni_asm.Obj.t =
  let b = B.create name in
  List.iter (gen_func b ~pools) p.pr_funcs;
  gen_globals b p.pr_globals p.pr_strings;
  B.finish b
