(* Hand-written lexer for MiniC. *)

exception Error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type token =
  | INT of int
  | UINT of int (* literal with a u/U suffix *)
  | FLOAT of float
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_void | KW_char | KW_int | KW_unsigned | KW_double | KW_struct
  | KW_if | KW_else | KW_while | KW_do | KW_for | KW_return
  | KW_break | KW_continue | KW_sizeof
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | EOF

let keyword_table =
  [ ("void", KW_void); ("char", KW_char); ("int", KW_int);
    ("unsigned", KW_unsigned); ("double", KW_double); ("struct", KW_struct);
    ("if", KW_if); ("else", KW_else); ("while", KW_while); ("do", KW_do);
    ("for", KW_for); ("return", KW_return); ("break", KW_break);
    ("continue", KW_continue); ("sizeof", KW_sizeof) ]

let token_name = function
  | INT _ -> "integer" | UINT _ -> "unsigned integer"
  | FLOAT _ -> "float" | STRING _ -> "string"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_void -> "void" | KW_char -> "char" | KW_int -> "int"
  | KW_unsigned -> "unsigned" | KW_double -> "double" | KW_struct -> "struct"
  | KW_if -> "if" | KW_else -> "else" | KW_while -> "while" | KW_do -> "do"
  | KW_for -> "for" | KW_return -> "return" | KW_break -> "break"
  | KW_continue -> "continue" | KW_sizeof -> "sizeof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | DOT -> "." | ARROW -> "->" | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
  | SLASH -> "/" | PERCENT -> "%" | AMP -> "&" | PIPE -> "|" | CARET -> "^"
  | TILDE -> "~" | BANG -> "!" | SHL -> "<<" | SHR -> ">>" | LT -> "<"
  | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | ANDAND -> "&&" | OROR -> "||" | ASSIGN -> "=" | PLUSEQ -> "+="
  | MINUSEQ -> "-=" | STAREQ -> "*=" | SLASHEQ -> "/=" | PERCENTEQ -> "%="
  | AMPEQ -> "&=" | PIPEEQ -> "|=" | CARETEQ -> "^=" | SHLEQ -> "<<="
  | SHREQ -> ">>=" | PLUSPLUS -> "++" | MINUSMINUS -> "--" | QUESTION -> "?"
  | COLON -> ":" | EOF -> "end of file"

(* Tokenize the whole source; returns tokens with their line numbers. *)
let tokenize (src : string) : (token * int) array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c = is_ident_start c || is_digit c in
  let read_escape () =
    (* cursor on the char after backslash *)
    let c = peek 0 in
    incr i;
    match c with
    | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
    | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
    | c -> fail !line "bad escape \\%c" c
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail !line "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then incr line;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      match List.assoc_opt s keyword_table with
      | Some kw -> push kw
      | None -> push (IDENT s)
    end
    else if is_digit c then begin
      let start = !i in
      let skip_suffix () =
        let unsigned = ref false in
        while
          !i < n
          && (src.[!i] = 'u' || src.[!i] = 'U' || src.[!i] = 'l'
             || src.[!i] = 'L')
        do
          if src.[!i] = 'u' || src.[!i] = 'U' then unsigned := true;
          incr i
        done;
        !unsigned
      in
      if c = '0' && (peek 1 = 'x' || peek 1 = 'X') then begin
        i := !i + 2;
        while
          !i < n
          && (is_digit src.[!i]
             || (Char.lowercase_ascii src.[!i] >= 'a'
                && Char.lowercase_ascii src.[!i] <= 'f'))
        do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        let u = skip_suffix () in
        push (if u then UINT (int_of_string text) else INT (int_of_string text))
      end
      else begin
        while !i < n && is_digit src.[!i] do incr i done;
        let is_float =
          (!i < n && src.[!i] = '.' && peek 1 <> '.')
          || (!i < n && (src.[!i] = 'e' || src.[!i] = 'E'))
        in
        if is_float then begin
          if !i < n && src.[!i] = '.' then begin
            incr i;
            while !i < n && is_digit src.[!i] do incr i done
          end;
          if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
            incr i;
            if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
            while !i < n && is_digit src.[!i] do incr i done
          end;
          push (FLOAT (float_of_string (String.sub src start (!i - start))))
        end
        else begin
          let text = String.sub src start (!i - start) in
          let u = skip_suffix () in
          push
            (if u then UINT (int_of_string text)
             else INT (int_of_string text))
        end
      end
    end
    else if c = '\'' then begin
      incr i;
      let v =
        if peek 0 = '\\' then begin incr i; Char.code (read_escape ()) end
        else begin
          let ch = peek 0 in
          incr i;
          Char.code ch
        end
      in
      if peek 0 <> '\'' then fail !line "unterminated character literal";
      incr i;
      push (INT v)
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then fail !line "unterminated string"
        else if src.[!i] = '"' then incr i
        else if src.[!i] = '\\' then begin
          incr i;
          Buffer.add_char buf (read_escape ());
          go ()
        end
        else begin
          if src.[!i] = '\n' then fail !line "newline in string";
          Buffer.add_char buf src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      push (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      let adv k t = push t; i := !i + k in
      match three with
      | "<<=" -> adv 3 SHLEQ
      | ">>=" -> adv 3 SHREQ
      | _ -> (
          match two with
          | "->" -> adv 2 ARROW
          | "<<" -> adv 2 SHL
          | ">>" -> adv 2 SHR
          | "<=" -> adv 2 LE
          | ">=" -> adv 2 GE
          | "==" -> adv 2 EQEQ
          | "!=" -> adv 2 NEQ
          | "&&" -> adv 2 ANDAND
          | "||" -> adv 2 OROR
          | "+=" -> adv 2 PLUSEQ
          | "-=" -> adv 2 MINUSEQ
          | "*=" -> adv 2 STAREQ
          | "/=" -> adv 2 SLASHEQ
          | "%=" -> adv 2 PERCENTEQ
          | "&=" -> adv 2 AMPEQ
          | "|=" -> adv 2 PIPEEQ
          | "^=" -> adv 2 CARETEQ
          | "++" -> adv 2 PLUSPLUS
          | "--" -> adv 2 MINUSMINUS
          | _ -> (
              match c with
              | '(' -> adv 1 LPAREN
              | ')' -> adv 1 RPAREN
              | '{' -> adv 1 LBRACE
              | '}' -> adv 1 RBRACE
              | '[' -> adv 1 LBRACKET
              | ']' -> adv 1 RBRACKET
              | ';' -> adv 1 SEMI
              | ',' -> adv 1 COMMA
              | '.' -> adv 1 DOT
              | '+' -> adv 1 PLUS
              | '-' -> adv 1 MINUS
              | '*' -> adv 1 STAR
              | '/' -> adv 1 SLASH
              | '%' -> adv 1 PERCENT
              | '&' -> adv 1 AMP
              | '|' -> adv 1 PIPE
              | '^' -> adv 1 CARET
              | '~' -> adv 1 TILDE
              | '!' -> adv 1 BANG
              | '<' -> adv 1 LT
              | '>' -> adv 1 GT
              | '=' -> adv 1 ASSIGN
              | '?' -> adv 1 QUESTION
              | ':' -> adv 1 COLON
              | c -> fail !line "unexpected character %C" c))
    end
  done;
  push EOF;
  Array.of_list (List.rev !toks)
