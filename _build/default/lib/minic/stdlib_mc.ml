(* The MiniC runtime library, written in MiniC itself and linked into every
   program. [malloc]/[free] are a first-fit free list over [sbrk]'d memory
   (the host's exported memory-management service); string and memory
   helpers are the usual C ones; [rand]/[srand] is the same 32-bit LCG the
   host-side workload generators use, so synthetic inputs agree. *)

let source =
  {|
/* --- minic runtime library --- */

struct __hdr { unsigned size; struct __hdr *next; };

struct __hdr *__freelist = 0;

char *malloc(int nbytes) {
  struct __hdr *p;
  struct __hdr *prev;
  unsigned need;
  need = (unsigned)((nbytes + 7) & ~7) + 8u;
  prev = 0;
  p = __freelist;
  while (p != 0) {
    if (p->size >= need) {
      if (p->size >= need + 16u) {
        /* split */
        struct __hdr *rest;
        rest = (struct __hdr *)((char *)p + need);
        rest->size = p->size - need;
        rest->next = p->next;
        p->size = need;
        if (prev == 0) __freelist = rest; else prev->next = rest;
      } else {
        if (prev == 0) __freelist = p->next; else prev->next = p->next;
      }
      return (char *)p + 8;
    }
    prev = p;
    p = p->next;
  }
  {
    char *blk;
    unsigned ask;
    ask = need;
    if (ask < 4096u) ask = 4096u;
    blk = sbrk((int)ask);
    if (blk == 0) {
      if (ask > need) {
        blk = sbrk((int)need);
        if (blk == 0) return 0;
        ask = need;
      } else {
        return 0;
      }
    }
    p = (struct __hdr *)blk;
    p->size = ask;
    if (ask > need + 16u) {
      struct __hdr *rest;
      rest = (struct __hdr *)(blk + need);
      rest->size = ask - need;
      rest->next = __freelist;
      __freelist = rest;
      p->size = need;
    }
    return (char *)p + 8;
  }
}

void free(char *ptr) {
  struct __hdr *h;
  if (ptr == 0) return;
  h = (struct __hdr *)(ptr - 8);
  h->next = __freelist;
  __freelist = h;
}

char *calloc(int n, int size) {
  char *p;
  int total;
  int i;
  total = n * size;
  p = malloc(total);
  if (p == 0) return 0;
  for (i = 0; i < total; i++) p[i] = 0;
  return p;
}

void *memcpy(char *dst, char *src, int n) {
  int i;
  /* word-at-a-time when both are aligned */
  if ((((int)dst | (int)src | n) & 3) == 0) {
    int *d; int *s; int w;
    d = (int *)dst; s = (int *)src; w = n >> 2;
    for (i = 0; i < w; i++) d[i] = s[i];
  } else {
    for (i = 0; i < n; i++) dst[i] = src[i];
  }
  return (void *)dst;
}

void *memset(char *dst, int c, int n) {
  int i;
  for (i = 0; i < n; i++) dst[i] = (char)c;
  return (void *)dst;
}

int memcmp(char *a, char *b, int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (a[i] != b[i]) return (int)a[i] - (int)b[i];
  }
  return 0;
}

int strlen(char *s) {
  int n;
  n = 0;
  while (s[n] != 0) n++;
  return n;
}

int strcmp(char *a, char *b) {
  int i;
  i = 0;
  while (a[i] != 0 && a[i] == b[i]) i++;
  return (int)a[i] - (int)b[i];
}

char *strcpy(char *dst, char *src) {
  int i;
  i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return dst;
}

int strncmp(char *a, char *b, int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (a[i] != b[i]) return (int)a[i] - (int)b[i];
    if (a[i] == 0) return 0;
  }
  return 0;
}

unsigned __rand_state = 12345u;

void srand(int seed) { __rand_state = (unsigned)seed; }

int rand(void) {
  __rand_state = __rand_state * 1664525u + 1013904223u;
  return (int)((__rand_state >> 8) & 0x7FFFFF);
}

int abs(int x) { if (x < 0) return -x; return x; }

double fabs(double x) { if (x < 0.0) return -x; return x; }

/* exp(x) via scaling + Taylor series; good to ~1e-9 on moderate inputs. */
double exp(double x) {
  int neg;
  int k;
  double r;
  double term;
  double sum;
  int i;
  neg = 0;
  if (x < 0.0) { neg = 1; x = -x; }
  /* bring x into [0, 0.5) by halving k times */
  k = 0;
  while (x > 0.5) { x = x * 0.5; k++; }
  term = 1.0;
  sum = 1.0;
  for (i = 1; i < 16; i++) {
    term = term * x / (double)i;
    sum = sum + term;
  }
  r = sum;
  while (k > 0) { r = r * r; k--; }
  if (neg) return 1.0 / r;
  return r;
}

double sqrt(double x) {
  double g;
  int i;
  if (x <= 0.0) return 0.0;
  g = x;
  if (g > 1.0) g = x * 0.5;
  for (i = 0; i < 40; i++) g = 0.5 * (g + x / g);
  return g;
}

void print_nl(void) { putchar(10); }

/* quicksort over opaque elements, libc-style; the comparison function is
   called through a pointer (an indirect call the SFI layer must check). */

char __qsort_pv[64];

void qsort(char *base, int n, int size, int (*cmp)(char *, char *)) {
  int i;
  int j;
  int k;
  char t;
  if (n < 2) return;
  if (size > 64) return;
  /* median element as pivot, copied out so swaps cannot move it */
  memcpy(__qsort_pv, base + (n / 2) * size, size);
  i = 0;
  j = n - 1;
  while (i <= j) {
    while (cmp(base + i * size, __qsort_pv) < 0) i++;
    while (cmp(base + j * size, __qsort_pv) > 0) j--;
    if (i <= j) {
      for (k = 0; k < size; k++) {
        t = base[i * size + k];
        base[i * size + k] = base[j * size + k];
        base[j * size + k] = t;
      }
      i++;
      j--;
    }
  }
  if (j > 0) qsort(base, j + 1, size, cmp);
  if (i < n - 1) qsort(base + i * size, n - i, size, cmp);
}
|}
