(* MiniC typechecker and elaborator: Ast -> Tast.

   Responsibilities: name resolution (with scoping; locals get unique
   names), type checking with C's implicit conversions made explicit,
   struct layout, normalization of pointer/array/member operations into
   explicit address arithmetic, reduction of global initializers to constant
   data, and the address-taken analysis that decides which locals can be
   registerized. *)

open Ast
open Tast

exception Error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* --- environment --- *)

type fsig = { fs_ret : ty; fs_params : ty list; fs_defined : bool }

type env = {
  structs : (string, struct_layout) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable strings : string list; (* reversed *)
  mutable n_strings : int;
  mutable scopes : (string, string * ty) Hashtbl.t list; (* src name -> unique, ty *)
  mutable locals : (string * ty) list; (* unique names, reversed *)
  addr_taken : (string, unit) Hashtbl.t;
  mutable next_uid : int;
  mutable next_tmp : int;
  mutable cur_ret : ty;
  mutable loop_depth : int;
}

let builtins : (string * ty * ty list) list =
  [ ("putchar", Tvoid, [ Tint ]);
    ("print_int", Tvoid, [ Tint ]);
    ("print_str", Tvoid, [ Tptr Tchar ]);
    ("print_float", Tvoid, [ Tdouble ]);
    ("exit", Tvoid, [ Tint ]);
    ("sbrk", Tptr Tchar, [ Tint ]);
    ("clock_ticks", Tint, []);
    ("set_handler", Tvoid, [ Tptr (Tfun (Tvoid, [ Tint ])) ]);
    ("host_service", Tint, [ Tint; Tint; Tint; Tint ]) ]

let builtin_call = function
  | "putchar" -> Omnivm.Hostcall.Put_char
  | "print_int" -> Omnivm.Hostcall.Print_int
  | "print_str" -> Omnivm.Hostcall.Print_string
  | "print_float" -> Omnivm.Hostcall.Print_float
  | "exit" -> Omnivm.Hostcall.Exit
  | "sbrk" -> Omnivm.Hostcall.Sbrk
  | "clock_ticks" -> Omnivm.Hostcall.Clock
  | "set_handler" -> Omnivm.Hostcall.Set_handler
  | "host_service" -> Omnivm.Hostcall.Host_service
  | s -> invalid_arg ("builtin_call: " ^ s)

(* --- sizes and layout --- *)

let struct_layout env line tag =
  match Hashtbl.find_opt env.structs tag with
  | Some l -> l
  | None -> fail line "undefined struct %s" tag

let rec sizeof env line = function
  | Tvoid -> fail line "sizeof void"
  | Tchar -> 1
  | Tint | Tuint | Tptr _ -> 4
  | Tdouble -> 8
  | Tarray (t, n) -> n * sizeof env line t
  | Tstruct tag -> (struct_layout env line tag).sl_size
  | Tfun _ -> fail line "sizeof function"

let rec alignof env line = function
  | Tvoid -> fail line "alignof void"
  | Tchar -> 1
  | Tint | Tuint | Tptr _ -> 4
  | Tdouble -> 8
  | Tarray (t, _) -> alignof env line t
  | Tstruct tag -> (struct_layout env line tag).sl_align
  | Tfun _ -> fail line "alignof function"

let compute_struct_layout env (sd : struct_def) : struct_layout =
  let line = sd.s_line in
  if sd.s_fields = [] then fail line "empty struct %s" sd.s_tag;
  let align n a = (n + a - 1) land lnot (a - 1) in
  let offset = ref 0 in
  let max_align = ref 1 in
  let fields =
    List.map
      (fun (name, ty) ->
        (match ty with
        | Tfun _ | Tvoid -> fail line "bad field type in struct %s" sd.s_tag
        | _ -> ());
        let a = alignof env line ty in
        max_align := max !max_align a;
        offset := align !offset a;
        let f = { fl_name = name; fl_offset = !offset; fl_ty = ty } in
        offset := !offset + sizeof env line ty;
        f)
      sd.s_fields
  in
  { sl_size = align !offset !max_align; sl_align = !max_align;
    sl_fields = fields }

let field env line tag fname =
  let l = struct_layout env line tag in
  match List.find_opt (fun f -> String.equal f.fl_name fname) l.sl_fields with
  | Some f -> f
  | None -> fail line "struct %s has no field %s" tag fname

(* --- type predicates and conversions --- *)

let rec ty_eq a b =
  match (a, b) with
  | Tvoid, Tvoid | Tchar, Tchar | Tint, Tint | Tuint, Tuint
  | Tdouble, Tdouble ->
      true
  | Tptr a, Tptr b -> ty_eq a b
  | Tarray (a, n), Tarray (b, m) -> n = m && ty_eq a b
  | Tstruct a, Tstruct b -> String.equal a b
  | Tfun (r1, p1), Tfun (r2, p2) ->
      ty_eq r1 r2
      && List.length p1 = List.length p2
      && List.for_all2 ty_eq p1 p2
  | _ -> false

let lval_ty = function Lvar (_, t) | Lglob (_, t) | Lmem (_, t) -> t

(* Insert a conversion of [e] to type [want]; no-op when already there. *)
let cast want (e : texpr) =
  if ty_eq e.ty want then e else { ty = want; desc = Cast e }

(* Implicit conversion for assignment/parameter/return contexts. *)
let convert line want (e : texpr) =
  let ok =
    match (want, e.ty) with
    | a, b when ty_eq a b -> true
    | (Tchar | Tint | Tuint | Tdouble), (Tchar | Tint | Tuint | Tdouble) ->
        true
    | Tptr _, (Tint | Tuint | Tchar) -> (
        (* only the null constant converts implicitly *)
        match e.desc with Cint 0 -> true | _ -> false)
    | Tptr Tvoid, Tptr _ | Tptr _, Tptr Tvoid -> true
    | Tptr (Tfun _), Tptr (Tfun _) -> true
    | _ -> false
  in
  if not ok then
    fail line "cannot convert %s to %s" (string_of_ty e.ty)
      (string_of_ty want);
  cast want e

(* Usual arithmetic conversions, simplified to MiniC's type set. *)
let arith_common line a b =
  match (a, b) with
  | Tdouble, _ | _, Tdouble -> Tdouble
  | Tuint, _ | _, Tuint -> Tuint
  | (Tchar | Tint), (Tchar | Tint) -> Tint
  | _ -> fail line "expected arithmetic operands, got %s and %s"
           (string_of_ty a) (string_of_ty b)

let fresh_tmp env =
  let t = env.next_tmp in
  env.next_tmp <- t + 1;
  t

let intern_string env s =
  (* share identical literals; the list is kept reversed *)
  let rec find i = function
    | [] ->
        env.strings <- s :: env.strings;
        let idx = env.n_strings in
        env.n_strings <- idx + 1;
        idx
    | x :: rest ->
        if String.equal x s then env.n_strings - 1 - i else find (i + 1) rest
  in
  find 0 env.strings

(* --- scope handling --- *)

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let declare_local env line name ty =
  match env.scopes with
  | [] -> assert false
  | scope :: _ ->
      if Hashtbl.mem scope name then
        fail line "redeclaration of %s" name;
      let unique = Printf.sprintf "%s.%d" name env.next_uid in
      env.next_uid <- env.next_uid + 1;
      Hashtbl.add scope name (unique, ty);
      env.locals <- (unique, ty) :: env.locals;
      unique

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some x -> Some x
        | None -> go rest)
  in
  go env.scopes

(* --- expression typing --- *)

let mk ty desc = { ty; desc }

(* The rvalue produced by reading an lvalue: arrays decay to a pointer to
   the first element; structs stay as struct-typed loads (only usable in
   struct assignment, member selection, or address-of). *)
let read_lval lv =
  match lval_ty lv with
  | Tarray (elem, _) -> mk (Tptr elem) (Addr lv)
  | Tfun _ as ft -> mk (Tptr ft) (Addr lv)
  | t -> mk t (Load lv)

let scale line ~elem_size (index : texpr) =
  (* index * sizeof(elem), as int arithmetic *)
  let index =
    match index.ty with
    | Tint | Tuint -> index
    | Tchar -> cast Tint index
    | t -> fail line "array index must be integer, got %s" (string_of_ty t)
  in
  if elem_size = 1 then cast Tint index
  else mk Tint (Bin (Mul, cast Tint index, mk Tint (Cint elem_size)))

let ptr_add line ~elem_size (p : texpr) (i : texpr) =
  mk p.ty (Bin (Add, p, scale line ~elem_size i))

let rec type_expr env (e : expr) : texpr =
  let line = e.line in
  match e.desc with
  | Int_lit v -> mk Tint (Cint (Omni_util.Word32.of_int v))
  | Float_lit v -> mk Tdouble (Cfloat v)
  | Str_lit s -> mk (Tptr Tchar) (Cstr (intern_string env s))
  | Ident _ | Deref _ | Index _ | Member _ | Arrow _ ->
      read_lval (type_lval env e)
  | Bin (op, a, b) -> type_binop env line op a b
  | Un (Neg, a) ->
      let a = type_expr env a in
      let ty =
        match a.ty with
        | Tchar | Tint -> Tint
        | Tuint -> Tuint
        | Tdouble -> Tdouble
        | t -> fail line "cannot negate %s" (string_of_ty t)
      in
      mk ty (Un (Neg, cast ty a))
  | Un (Lognot, a) ->
      let a = scalar_expr env line a in
      mk Tint (Un (Lognot, a))
  | Un (Bitnot, a) ->
      let a = type_expr env a in
      let ty =
        match a.ty with
        | Tchar | Tint -> Tint
        | Tuint -> Tuint
        | t -> fail line "cannot complement %s" (string_of_ty t)
      in
      mk ty (Un (Bitnot, cast ty a))
  | Assign (lhs, rhs) ->
      let lv = type_lval env lhs in
      let rhs = type_expr env rhs in
      (match lval_ty lv with
      | Tstruct _ as st ->
          if not (ty_eq rhs.ty st) then
            fail line "struct assignment type mismatch";
          mk st (Assign (lv, rhs))
      | t -> mk t (Assign (lv, convert line t rhs)))
  | Assign_op (op, lhs, rhs) ->
      type_assign_op env line op lhs rhs
  | Cond (c, a, b) ->
      let c = scalar_expr env line c in
      let a = type_expr env a in
      let b = type_expr env b in
      let ty =
        if ty_eq a.ty b.ty then a.ty
        else
          match (a.ty, b.ty) with
          | (Tchar | Tint | Tuint | Tdouble), (Tchar | Tint | Tuint | Tdouble)
            ->
              arith_common line a.ty b.ty
          | Tptr _, (Tint | Tuint) -> a.ty
          | (Tint | Tuint), Tptr _ -> b.ty
          | Tptr Tvoid, Tptr _ -> b.ty
          | Tptr _, Tptr Tvoid -> a.ty
          | _ -> fail line "incompatible ?: branches"
      in
      mk ty (Cond (c, cast ty a, cast ty b))
  | Call (f, args) -> type_call env line f args
  | Addr_of a -> (
      match a.desc with
      | Ident name when is_function env name ->
          let fs = Hashtbl.find env.funcs name in
          mk (Tptr (Tfun (fs.fs_ret, fs.fs_params))) (Fun_addr name)
      | _ ->
          let lv = type_lval env a in
          (match lv with
          | Lvar (unique, _) -> Hashtbl.replace env.addr_taken unique ()
          | Lglob _ | Lmem _ -> ());
          let pointee =
            match lval_ty lv with Tarray (t, _) -> Tarray (t, 0) | t -> t
          in
          (* &array yields the array's address typed as pointer-to-elem *)
          (match pointee with
          | Tarray (t, _) -> mk (Tptr t) (Addr lv)
          | t -> mk (Tptr t) (Addr lv)))
  | Cast (ty, a) ->
      let a = type_expr env a in
      let ok =
        match (ty, a.ty) with
        | (Tchar | Tint | Tuint | Tdouble), (Tchar | Tint | Tuint | Tdouble)
          ->
            true
        | Tptr _, (Tptr _ | Tint | Tuint) -> true
        | (Tint | Tuint), Tptr _ -> true
        | Tvoid, _ -> true
        | _ -> false
      in
      if not ok then
        fail line "invalid cast from %s to %s" (string_of_ty a.ty)
          (string_of_ty ty);
      cast ty a
  | Sizeof_ty ty -> mk Tint (Cint (sizeof env line ty))
  | Sizeof_expr a ->
      (* types the operand without emitting it (no side effects) *)
      let a' = type_expr env a in
      let t = match a'.ty with Tptr _ when false -> a'.ty | t -> t in
      mk Tint (Cint (sizeof env line t))
  | Pre_inc a -> incdec env line a ~delta:1 ~post:false
  | Pre_dec a -> incdec env line a ~delta:(-1) ~post:false
  | Post_inc a -> incdec env line a ~delta:1 ~post:true
  | Post_dec a -> incdec env line a ~delta:(-1) ~post:true

and is_function env name =
  Hashtbl.mem env.funcs name
  && lookup_var env name = None
  && not (Hashtbl.mem env.globals name)

and is_builtin env name =
  lookup_var env name = None
  && (not (Hashtbl.mem env.globals name))
  && (not (Hashtbl.mem env.funcs name))
  && List.exists (fun (n, _, _) -> String.equal n name) builtins

(* An expression used as a truth value: any scalar. *)
and scalar_expr env line e =
  let e = type_expr env e in
  if not (is_scalar e.ty) then
    fail line "expected scalar, got %s" (string_of_ty e.ty);
  e

and type_binop env line op a b =
  match op with
  | Land | Lor ->
      let a = scalar_expr env line a in
      let b = scalar_expr env line b in
      mk Tint (Andor (op = Land, truth_int a, truth_int b))
  | Eq | Ne | Lt | Le | Gt | Ge -> (
      let a = type_expr env a in
      let b = type_expr env b in
      match (a.ty, b.ty) with
      | (Tchar | Tint | Tuint | Tdouble), (Tchar | Tint | Tuint | Tdouble) ->
          let c = arith_common line a.ty b.ty in
          mk Tint (Bin (op, cast c a, cast c b))
      | Tptr _, Tptr _ ->
          mk Tint (Bin (op, cast Tuint a, cast Tuint b))
      | Tptr _, (Tint | Tuint) -> mk Tint (Bin (op, cast Tuint a, cast Tuint b))
      | (Tint | Tuint), Tptr _ -> mk Tint (Bin (op, cast Tuint a, cast Tuint b))
      | _ -> fail line "cannot compare %s and %s" (string_of_ty a.ty)
               (string_of_ty b.ty))
  | Add | Sub -> (
      let a = type_expr env a in
      let b = type_expr env b in
      match (a.ty, b.ty) with
      | Tptr t, (Tchar | Tint | Tuint) ->
          let sz = sizeof env line t in
          if op = Add then ptr_add line ~elem_size:sz a b
          else mk a.ty (Bin (Sub, a, scale line ~elem_size:sz b))
      | (Tchar | Tint | Tuint), Tptr t when op = Add ->
          ptr_add line ~elem_size:(sizeof env line t) b a
      | Tptr t, Tptr t' when op = Sub && ty_eq t t' ->
          let sz = sizeof env line t in
          let diff = mk Tint (Bin (Sub, cast Tint a, cast Tint b)) in
          if sz = 1 then diff
          else mk Tint (Bin (Div, diff, mk Tint (Cint sz)))
      | (Tchar | Tint | Tuint | Tdouble), (Tchar | Tint | Tuint | Tdouble) ->
          let c = arith_common line a.ty b.ty in
          mk c (Bin (op, cast c a, cast c b))
      | _ -> fail line "cannot %s %s and %s"
               (if op = Add then "add" else "subtract")
               (string_of_ty a.ty) (string_of_ty b.ty))
  | Mul | Div ->
      let a = type_expr env a in
      let b = type_expr env b in
      let c = arith_common line a.ty b.ty in
      mk c (Bin (op, cast c a, cast c b))
  | Mod | Band | Bor | Bxor -> (
      let a = type_expr env a in
      let b = type_expr env b in
      match arith_common line a.ty b.ty with
      | Tdouble -> fail line "integer operator on double"
      | c -> mk c (Bin (op, cast c a, cast c b)))
  | Shl | Shr -> (
      let a = type_expr env a in
      let b = type_expr env b in
      match a.ty with
      | Tchar | Tint | Tuint ->
          let base = if ty_eq a.ty Tuint then Tuint else Tint in
          mk base (Bin (op, cast base a, cast Tint b))
      | t -> fail line "cannot shift %s" (string_of_ty t))

(* Normalize a scalar to an int truth value for && / || operands; pointers
   compare against null. *)
and truth_int (e : texpr) =
  match e.ty with
  | Tint -> e
  | Tchar | Tuint -> cast Tint e
  | Tptr _ -> mk Tint (Bin (Ne, cast Tuint e, mk Tuint (Cint 0)))
  | Tdouble -> mk Tint (Bin (Ne, e, mk Tdouble (Cfloat 0.0)))
  | Tvoid | Tarray _ | Tstruct _ | Tfun _ -> assert false

and type_assign_op env line op lhs rhs =
  let lv = type_lval env lhs in
  let t = lval_ty lv in
  let build lv =
    let cur = read_lval lv in
    let rhs_t = type_expr env rhs in
    let value =
      match (t, op) with
      | Tptr elem, (Add | Sub) ->
          let sz = sizeof env line elem in
          let scaled = scale line ~elem_size:sz rhs_t in
          mk t (Bin (op, cur, scaled))
      | (Tchar | Tint | Tuint | Tdouble), _ ->
          let c = arith_common line t rhs_t.ty in
          let c = match op with Shl | Shr -> t | _ -> c in
          (match (c, op) with
          | Tdouble, (Mod | Band | Bor | Bxor | Shl | Shr) ->
              fail line "integer operator on double"
          | _ -> ());
          let r =
            match op with
            | Shl | Shr -> mk c (Bin (op, cast c cur, cast Tint rhs_t))
            | _ -> mk c (Bin (op, cast c cur, cast c rhs_t))
          in
          convert line t r
      | _ -> fail line "bad compound assignment on %s" (string_of_ty t)
    in
    mk t (Assign (lv, value))
  in
  match lv with
  | Lvar _ | Lglob _ -> build lv
  | Lmem (addr, ty) ->
      (* bind the address once *)
      let tmp = fresh_tmp env in
      let body = build (Lmem (mk addr.ty (Tmp tmp), ty)) in
      mk body.ty (Let (tmp, addr, body))

and incdec env line a ~delta ~post =
  let lv = type_lval env a in
  let t = lval_ty lv in
  let step lv_use cur =
    match t with
    | Tptr elem ->
        let sz = sizeof env line elem in
        mk t (Assign (lv_use, mk t (Bin (Add, cur, mk Tint (Cint (delta * sz))))))
    | Tchar | Tint | Tuint ->
        mk t
          (Assign
             (lv_use, convert line t (mk Tint (Bin (Add, cast Tint cur,
                                                    mk Tint (Cint delta))))))
    | Tdouble ->
        mk t
          (Assign
             (lv_use,
              mk Tdouble (Bin (Add, cur, mk Tdouble (Cfloat (float_of_int delta))))))
    | _ -> fail line "cannot increment %s" (string_of_ty t)
  in
  let with_lv lv_use =
    if not post then step lv_use (read_lval lv_use)
    else
      let tmp = fresh_tmp env in
      mk t
        (Let
           (tmp, read_lval lv_use,
            mk t (Seq (step lv_use (mk t (Tmp tmp)), mk t (Tmp tmp)))))
  in
  match lv with
  | Lvar _ | Lglob _ -> with_lv lv
  | Lmem (addr, ty) ->
      let atmp = fresh_tmp env in
      let body = with_lv (Lmem (mk addr.ty (Tmp atmp), ty)) in
      mk body.ty (Let (atmp, addr, body))

and type_call env line f args =
  let check_args params args =
    if List.length params <> List.length args then
      fail line "wrong number of arguments (%d expected, %d given)"
        (List.length params) (List.length args);
    List.map2 (fun p a -> convert line p (type_expr env a)) params args
  in
  match f.desc with
  | Ident name when is_builtin env name ->
      let _, ret, params =
        let n, r, p =
          List.find (fun (n, _, _) -> String.equal n name) builtins
        in
        (n, r, p)
      in
      let args = check_args params args in
      mk ret (Call (Builtin (builtin_call name), args))
  | Ident name when is_function env name ->
      let fs = Hashtbl.find env.funcs name in
      let args = check_args fs.fs_params args in
      mk fs.fs_ret (Call (Dir name, args))
  | _ -> (
      let fe = type_expr env f in
      match fe.ty with
      | Tptr (Tfun (ret, params)) ->
          let args = check_args params args in
          mk ret (Call (Ind fe, args))
      | t -> fail line "called object is not a function (%s)" (string_of_ty t))

and type_lval env (e : expr) : lval =
  let line = e.line in
  match e.desc with
  | Ident name -> (
      match lookup_var env name with
      | Some (unique, ty) -> Lvar (unique, ty)
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty -> Lglob (name, ty)
          | None ->
              if Hashtbl.mem env.funcs name then
                fail line "function %s used as variable (use & to take its address)"
                  name
              else fail line "undefined variable %s" name))
  | Deref p -> (
      let p = type_expr env p in
      match p.ty with
      | Tptr (Tfun _) -> fail line "cannot dereference function pointer (call it)"
      | Tptr Tvoid -> fail line "cannot dereference void*"
      | Tptr t -> Lmem (p, t)
      | t -> fail line "cannot dereference %s" (string_of_ty t))
  | Index (a, i) -> (
      let a = type_expr env a in
      let i = type_expr env i in
      match a.ty with
      | Tptr t ->
          let sz = sizeof env line t in
          Lmem (ptr_add line ~elem_size:sz a i, t)
      | t -> fail line "cannot index %s" (string_of_ty t))
  | Member (b, fname) -> (
      let blv = type_lval env b in
      match lval_ty blv with
      | Tstruct tag ->
          let f = field env line tag fname in
          let base_addr =
            mk (Tptr (Tstruct tag)) (Addr blv)
          in
          let addr =
            if f.fl_offset = 0 then cast (Tptr f.fl_ty) base_addr
            else
              mk (Tptr f.fl_ty)
                (Bin (Add, cast (Tptr f.fl_ty) base_addr,
                      mk Tint (Cint f.fl_offset)))
          in
          Lmem (addr, f.fl_ty)
      | t -> fail line ". applied to non-struct %s" (string_of_ty t))
  | Arrow (b, fname) -> (
      let b = type_expr env b in
      match b.ty with
      | Tptr (Tstruct tag) ->
          let f = field env line tag fname in
          let addr =
            if f.fl_offset = 0 then cast (Tptr f.fl_ty) b
            else
              mk (Tptr f.fl_ty)
                (Bin (Add, cast (Tptr f.fl_ty) b, mk Tint (Cint f.fl_offset)))
          in
          Lmem (addr, f.fl_ty)
      | t -> fail line "-> applied to %s" (string_of_ty t))
  | _ -> fail line "expression is not an lvalue"

(* --- statements --- *)

let rec type_stmt env (s : stmt) : tstmt =
  let line = s.sline in
  match s.sdesc with
  | Empty -> Sblock []
  | Expr e -> Sexpr (type_expr env e)
  | Block ss ->
      push_scope env;
      let ts = List.map (type_stmt env) ss in
      pop_scope env;
      Sblock ts
  | If (c, a, b) ->
      let c = scalar_expr env line c in
      Sif (c, type_stmt env a, Option.map (type_stmt env) b)
  | While (c, body) ->
      let c = scalar_expr env line c in
      env.loop_depth <- env.loop_depth + 1;
      let body = type_stmt env body in
      env.loop_depth <- env.loop_depth - 1;
      Swhile (c, body)
  | Do_while (body, c) ->
      env.loop_depth <- env.loop_depth + 1;
      let body = type_stmt env body in
      env.loop_depth <- env.loop_depth - 1;
      Sdo (body, scalar_expr env line c)
  | For (init, cond, step, body) ->
      push_scope env;
      let init = Option.map (type_stmt env) init in
      let cond = Option.map (scalar_expr env line) cond in
      let step = Option.map (type_expr env) step in
      env.loop_depth <- env.loop_depth + 1;
      let body = type_stmt env body in
      env.loop_depth <- env.loop_depth - 1;
      pop_scope env;
      Sfor (init, cond, step, body)
  | Return None ->
      if not (ty_eq env.cur_ret Tvoid) then
        fail line "return without value in non-void function";
      Sret None
  | Return (Some e) ->
      if ty_eq env.cur_ret Tvoid then fail line "return value in void function";
      let e = type_expr env e in
      Sret (Some (convert line env.cur_ret e))
  | Break ->
      if env.loop_depth = 0 then fail line "break outside of a loop";
      Sbreak
  | Continue ->
      if env.loop_depth = 0 then fail line "continue outside of a loop";
      Scont
  | Decl (ty, name, init) -> type_local_decl env line ty name init

and type_local_decl env line ty name init =
  (match ty with
  | Tvoid -> fail line "void variable %s" name
  | Tfun _ -> fail line "local function declaration not supported"
  | _ -> ());
  (* incomplete array completed by its initializer *)
  let ty =
    match (ty, init) with
    | Tarray (t, 0), Some (Init_list is) -> Tarray (t, List.length is)
    | Tarray (Tchar, 0), Some (Init_expr { desc = Str_lit s; _ }) ->
        Tarray (Tchar, String.length s + 1)
    | _ -> ty
  in
  ignore (sizeof env line ty);
  let unique = declare_local env line name ty in
  match init with
  | None -> Sdecl (unique, ty, None)
  | Some (Init_expr e) -> (
      match (ty, e.desc) with
      | Tarray (Tchar, n), Str_lit s ->
          if String.length s + 1 > n then fail line "string too long for %s" name;
          (* copy the string into the local array, element by element *)
          let stmts = ref [] in
          String.iteri
            (fun i ch ->
              stmts :=
                Sexpr
                  (mk Tchar
                     (Assign
                        (char_elt env line unique ty i,
                         mk Tchar (Cast (mk Tint (Cint (Char.code ch)))))))
                :: !stmts)
            (s ^ "\000");
          Sblock (Sdecl (unique, ty, None) :: List.rev !stmts)
      | _ ->
          let e = type_expr env e in
          (match ty with
          | Tstruct _ ->
              if not (ty_eq e.ty ty) then fail line "struct init type mismatch";
              Sblock
                [ Sdecl (unique, ty, None);
                  Sexpr (mk ty (Assign (Lvar (unique, ty), e))) ]
          | _ -> Sdecl (unique, ty, Some (convert line ty e))))
  | Some (Init_list items) -> (
      match ty with
      | Tarray (elem, n) ->
          if List.length items > n then fail line "too many initializers";
          let stmts = ref [] in
          List.iteri
            (fun i item ->
              match item with
              | Init_expr e ->
                  let e = convert line elem (type_expr env e) in
                  let lv = array_elt env line unique ty elem i in
                  stmts := Sexpr (mk elem (Assign (lv, e))) :: !stmts
              | Init_list _ -> fail line "nested initializer lists on locals")
            items;
          Sblock (Sdecl (unique, ty, None) :: List.rev !stmts)
      | Tstruct tag ->
          let l = struct_layout env line tag in
          if List.length items > List.length l.sl_fields then
            fail line "too many initializers";
          let stmts = ref [] in
          List.iteri
            (fun i item ->
              let f = List.nth l.sl_fields i in
              match item with
              | Init_expr e ->
                  let e = convert line f.fl_ty (type_expr env e) in
                  let base =
                    mk (Tptr f.fl_ty) (Addr (Lvar (unique, ty)))
                  in
                  let addr =
                    if f.fl_offset = 0 then base
                    else
                      mk (Tptr f.fl_ty)
                        (Bin (Add, base, mk Tint (Cint f.fl_offset)))
                  in
                  stmts :=
                    Sexpr (mk f.fl_ty (Assign (Lmem (addr, f.fl_ty), e)))
                    :: !stmts
              | Init_list _ -> fail line "nested initializer lists on locals")
            items;
          Sblock (Sdecl (unique, ty, None) :: List.rev !stmts)
      | _ -> fail line "initializer list on scalar")

and array_elt env line unique arr_ty elem i =
  let base = mk (Tptr elem) (Addr (Lvar (unique, arr_ty))) in
  let sz = sizeof env line elem in
  let addr =
    if i = 0 then base
    else mk (Tptr elem) (Bin (Add, base, mk Tint (Cint (i * sz))))
  in
  Lmem (addr, elem)

and char_elt env line unique arr_ty i = array_elt env line unique arr_ty Tchar i

(* --- global initializers --- *)

(* Evaluate a constant expression to an int (for array sizes / scalars). *)
let rec const_int env line (e : expr) : int =
  let module W = Omni_util.Word32 in
  match e.desc with
  | Int_lit v -> W.of_int v
  | Sizeof_ty t -> sizeof env line t
  | Un (Neg, a) -> W.neg (const_int env line a)
  | Un (Bitnot, a) -> W.lognot (const_int env line a)
  | Bin (op, a, b) -> (
      let a = const_int env line a and b = const_int env line b in
      match op with
      | Add -> W.add a b | Sub -> W.sub a b | Mul -> W.mul a b
      | Div -> W.div a b | Mod -> W.rem a b
      | Shl -> W.shift_left a b | Shr -> W.shift_right_arith a b
      | Band -> W.logand a b | Bor -> W.logor a b | Bxor -> W.logxor a b
      | Lt -> if a < b then 1 else 0
      | Le -> if a <= b then 1 else 0
      | Gt -> if a > b then 1 else 0
      | Ge -> if a >= b then 1 else 0
      | Eq -> if a = b then 1 else 0
      | Ne -> if a <> b then 1 else 0
      | Land -> if a <> 0 && b <> 0 then 1 else 0
      | Lor -> if a <> 0 || b <> 0 then 1 else 0)
  | Cast ((Tint | Tuint | Tchar), a) -> const_int env line a
  | _ -> fail line "expected integer constant expression"

let rec const_float env line (e : expr) : float =
  match e.desc with
  | Float_lit v -> v
  | Int_lit v -> float_of_int v
  | Un (Neg, a) -> -.const_float env line a
  | Cast (Tdouble, a) -> const_float env line a
  | _ -> fail line "expected float constant expression"

(* A constant of scalar type [ty], as one gdata item. *)
let rec const_scalar env line ty (e : expr) : gdata =
  match ty with
  | Tdouble -> Gdouble (const_float env line e)
  | Tptr _ -> (
      match e.desc with
      | Int_lit 0 -> Gword 0
      | Str_lit s -> Gaddr_of_string (intern_string env s)
      | Ident name when Hashtbl.mem env.funcs name -> Gaddr_of_func name
      | Ident name when Hashtbl.mem env.globals name ->
          Gaddr_of_global (name, 0)
      | Addr_of { desc = Ident name; _ } when Hashtbl.mem env.funcs name ->
          Gaddr_of_func name
      | Addr_of { desc = Ident name; _ } when Hashtbl.mem env.globals name ->
          Gaddr_of_global (name, 0)
      | Addr_of { desc = Index ({ desc = Ident name; _ }, idx); _ }
        when Hashtbl.mem env.globals name -> (
          match Hashtbl.find env.globals name with
          | Tarray (elem, _) ->
              let i = const_int env line idx in
              Gaddr_of_global (name, i * sizeof env line elem)
          | _ -> fail line "bad constant address")
      | Cast (Tptr _, a) -> const_scalar env line ty a
      | _ -> fail line "expected constant address")
  | Tchar -> Gbytes (Bytes.make 1 (Char.chr (const_int env line e land 0xFF)))
  | Tint | Tuint -> Gword (const_int env line e)
  | _ -> fail line "bad scalar initializer"

let rec const_init env line ty (init : init) : gdata list =
  match (ty, init) with
  | Tarray (Tchar, n), Init_expr { desc = Str_lit s; _ } ->
      if String.length s + 1 > n then fail line "string too long";
      [ Gbytes (Bytes.of_string s); Gzeros (n - String.length s) ]
  | _, Init_expr e -> [ const_scalar env line ty e ]
  | Tarray (elem, n), Init_list items ->
      if List.length items > n then fail line "too many initializers";
      let parts = List.concat_map (const_init env line elem) items in
      let elem_sz = sizeof env line elem in
      let missing = n - List.length items in
      parts @ (if missing > 0 then [ Gzeros (missing * elem_sz) ] else [])
  | Tstruct tag, Init_list items ->
      let l = struct_layout env line tag in
      if List.length items > List.length l.sl_fields then
        fail line "too many initializers";
      let pos = ref 0 in
      let parts = ref [] in
      List.iteri
        (fun i item ->
          let f = List.nth l.sl_fields i in
          if f.fl_offset > !pos then begin
            parts := Gzeros (f.fl_offset - !pos) :: !parts;
            pos := f.fl_offset
          end;
          parts := List.rev_append (const_init env line f.fl_ty item) !parts;
          pos := !pos + sizeof env line f.fl_ty)
        items;
      if l.sl_size > !pos then parts := Gzeros (l.sl_size - !pos) :: !parts;
      List.rev !parts
  | _, Init_list _ -> fail line "initializer list on scalar"

(* --- program --- *)

(* Prototypes injected into the environment before checking: used by the
   driver to make the MiniC runtime library (compiled separately) visible
   to user translation units, like an implicit #include. *)
type proto = { proto_name : string; proto_ret : ty; proto_params : ty list }

let type_program ?(protos = []) (prog : program) : tprogram =
  let env =
    {
      structs = Hashtbl.create 16;
      globals = Hashtbl.create 64;
      funcs = Hashtbl.create 64;
      strings = [];
      n_strings = 0;
      scopes = [];
      locals = [];
      addr_taken = Hashtbl.create 16;
      next_uid = 0;
      next_tmp = 0;
      cur_ret = Tvoid;
      loop_depth = 0;
    }
  in
  List.iter
    (fun p ->
      Hashtbl.replace env.funcs p.proto_name
        { fs_ret = p.proto_ret; fs_params = p.proto_params;
          fs_defined = false })
    protos;
  (* Pass 1: collect structs (in order), function signatures, global types. *)
  List.iter
    (function
      | Dstruct sd ->
          if Hashtbl.mem env.structs sd.s_tag then
            fail sd.s_line "duplicate struct %s" sd.s_tag;
          Hashtbl.add env.structs sd.s_tag (compute_struct_layout env sd)
      | Dfunc f ->
          let params = List.map (fun p -> p.p_ty) f.f_params in
          (match f.f_ret with
          | Tstruct _ | Tarray _ ->
              fail f.f_line "functions cannot return aggregates"
          | _ -> ());
          List.iter
            (fun t ->
              match t with
              | Tstruct _ | Tarray _ ->
                  fail f.f_line
                    "aggregate parameters not supported (pass a pointer)"
              | _ -> ())
            params;
          let defined = f.f_body <> None in
          (match Hashtbl.find_opt env.funcs f.f_name with
          | Some prev ->
              if not (ty_eq prev.fs_ret f.f_ret)
                 || List.length prev.fs_params <> List.length params
                 || not (List.for_all2 ty_eq prev.fs_params params)
              then fail f.f_line "conflicting declaration of %s" f.f_name;
              if prev.fs_defined && defined then
                fail f.f_line "redefinition of %s" f.f_name;
              Hashtbl.replace env.funcs f.f_name
                { fs_ret = f.f_ret; fs_params = params;
                  fs_defined = prev.fs_defined || defined }
          | None ->
              Hashtbl.add env.funcs f.f_name
                { fs_ret = f.f_ret; fs_params = params; fs_defined = defined });
          if List.exists (fun (n, _, _) -> String.equal n f.f_name) builtins
          then fail f.f_line "%s is a builtin" f.f_name
      | Dglobal g ->
          if Hashtbl.mem env.globals g.g_name then
            fail g.g_line "duplicate global %s" g.g_name;
          let ty =
            match (g.g_ty, g.g_init) with
            | Tarray (t, 0), Some (Init_list is) -> Tarray (t, List.length is)
            | Tarray (Tchar, 0), Some (Init_expr { desc = Str_lit s; _ }) ->
                Tarray (Tchar, String.length s + 1)
            | t, _ -> t
          in
          (match ty with
          | Tvoid | Tfun _ -> fail g.g_line "bad global type for %s" g.g_name
          | _ -> ());
          Hashtbl.add env.globals g.g_name ty)
    prog;
  (* Pass 2: global initializers. *)
  let tglobals =
    List.filter_map
      (function
        | Dglobal g ->
            let ty = Hashtbl.find env.globals g.g_name in
            let init =
              match g.g_init with
              | None -> [ Gzeros (sizeof env g.g_line ty) ]
              | Some i -> const_init env g.g_line ty i
            in
            Some { tg_name = g.g_name; tg_ty = ty; tg_init = init }
        | Dfunc _ | Dstruct _ -> None)
      prog
  in
  (* Pass 3: function bodies. *)
  let tfuncs =
    List.filter_map
      (function
        | Dfunc { f_body = None; _ } | Dglobal _ | Dstruct _ -> None
        | Dfunc ({ f_body = Some body; _ } as f) ->
            env.scopes <- [];
            env.locals <- [];
            Hashtbl.reset env.addr_taken;
            env.cur_ret <- f.f_ret;
            env.loop_depth <- 0;
            (match f.f_ret with
            | Tstruct _ | Tarray _ ->
                fail f.f_line "functions cannot return aggregates"
            | _ -> ());
            push_scope env;
            let params =
              List.map
                (fun p ->
                  if String.equal p.p_name "" then
                    fail f.f_line "parameter name required in definition";
                  (match p.p_ty with
                  | Tstruct _ | Tarray _ ->
                      fail f.f_line
                        "aggregate parameters not supported (pass a pointer)"
                  | _ -> ());
                  (declare_local env f.f_line p.p_name p.p_ty, p.p_ty))
                f.f_params
            in
            let tbody = type_stmt env body in
            pop_scope env;
            Some
              {
                tf_name = f.f_name;
                tf_ret = f.f_ret;
                tf_params = params;
                tf_locals = List.rev env.locals;
                tf_addr_taken = Hashtbl.copy env.addr_taken;
                tf_body = tbody;
              })
      prog
  in
  {
    tp_structs =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.structs []
      |> List.sort compare;
    tp_globals = tglobals;
    tp_funcs = tfuncs;
    tp_strings = Array.of_list (List.rev env.strings);
  }
