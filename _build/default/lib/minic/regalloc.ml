(* Linear-scan register allocation onto the OmniVM register file.

   The allocatable pools are parameters so the Table 2 experiment (OmniVM
   register file size 8..16) is a one-argument change. Intervals that cross
   a call site must receive callee-saved registers (or spill); the code
   generator then saves/restores exactly the callee-saved registers used.

   Output: a location per virtual register — a physical OmniVM register or
   a fresh frame slot. Spill-code insertion happens in the code generator,
   which keeps two reserved scratch registers per class. *)

open Ir

type location = Preg of Omnivm.Reg.t | Pslot of int

type pools = {
  int_caller : Omnivm.Reg.t list;
  int_callee : Omnivm.Reg.t list;
  float_caller : Omnivm.Reg.t list;
  float_callee : Omnivm.Reg.t list;
}

(* Register conventions (see Reg): r8/r9 and f8/f9 are reserved as codegen
   scratch and are never allocatable. The register-file-size parameter
   shrinks the pools from the top, mimicking a smaller OmniVM register
   file. *)
let default_pools ~regfile_size =
  if regfile_size < 8 || regfile_size > 16 then
    invalid_arg "Regalloc.default_pools";
  let take n l =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: r -> x :: go (n - 1) r
    in
    go n l
  in
  (* full int pool in preference order: callers r1..r7, callees r10..r12 *)
  let caller_full = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let callee_full = [ 10; 11; 12 ] in
  let budget = regfile_size - 6 in
  (* zero, gp, sp, ra + 2 scratch are always present *)
  let int_caller = take (min budget 7) caller_full in
  let int_callee = take (max 0 (budget - 7)) callee_full in
  let fbudget = regfile_size - 2 in
  let fcaller_full = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let fcallee_full = [ 10; 11; 12; 13; 14; 15 ] in
  let float_caller = take (min fbudget 8) fcaller_full in
  let float_callee = take (max 0 (fbudget - 8)) fcallee_full in
  { int_caller; int_callee; float_caller; float_callee }

type interval = {
  vreg : vreg;
  cls : vclass;
  start : int;
  stop : int;
  crosses_call : bool;
}

type result = {
  locations : location array; (* indexed by vreg *)
  used_callee_saved_int : Omnivm.Reg.t list;
  used_callee_saved_float : Omnivm.Reg.t list;
  spill_count : int;
}

module IS = Set.Make (Int)

let liveness (f : func) =
  let n = Array.length f.fn_blocks in
  let use = Array.make n IS.empty in
  let def = Array.make n IS.empty in
  Array.iteri
    (fun i b ->
      let u = ref IS.empty and d = ref IS.empty in
      List.iter
        (fun inst ->
          List.iter
            (function
              | Vr v -> if not (IS.mem v !d) then u := IS.add v !u
              | _ -> ())
            (inst_uses inst);
          match inst_def inst with
          | Some v -> d := IS.add v !d
          | None -> ())
        b.insts;
      List.iter
        (function
          | Vr v -> if not (IS.mem v !d) then u := IS.add v !u
          | _ -> ())
        (term_uses b.term);
      use.(i) <- !u;
      def.(i) <- !d)
    f.fn_blocks;
  let live_in = Array.make n IS.empty in
  let live_out = Array.make n IS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> IS.union acc live_in.(s))
          IS.empty
          (term_succs f.fn_blocks.(i).term)
      in
      let inn = IS.union use.(i) (IS.diff out def.(i)) in
      if not (IS.equal out live_out.(i)) || not (IS.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

let build_intervals (f : func) =
  let nv = vreg_count f in
  let start = Array.make nv max_int in
  let stop = Array.make nv (-1) in
  let live_in, live_out = liveness f in
  let touch v p =
    if p < start.(v) then start.(v) <- p;
    if p > stop.(v) then stop.(v) <- p
  in
  let pos = ref 0 in
  let call_positions = ref [] in
  (* parameters are defined at position 0 *)
  List.iter (fun (_, v) -> touch v 0) f.fn_params;
  Array.iteri
    (fun bi b ->
      let block_start = !pos in
      IS.iter (fun v -> touch v block_start) live_in.(bi);
      List.iter
        (fun inst ->
          incr pos;
          List.iter
            (function Vr v -> touch v !pos | _ -> ())
            (inst_uses inst);
          (match inst_def inst with Some v -> touch v !pos | None -> ());
          match inst with
          | Call _ | Hcall _ -> call_positions := !pos :: !call_positions
          | Def _ | Store _ | Storef _ -> ())
        b.insts;
      incr pos;
      List.iter
        (function Vr v -> touch v !pos | _ -> ())
        (term_uses b.term);
      IS.iter (fun v -> touch v !pos) live_out.(bi))
    f.fn_blocks;
  let calls = List.sort compare !call_positions in
  let crosses s e = List.exists (fun p -> s < p && p < e) calls in
  let ivs = ref [] in
  for v = nv - 1 downto 0 do
    if stop.(v) >= 0 then
      ivs :=
        {
          vreg = v;
          cls = class_of f v;
          start = start.(v);
          stop = stop.(v);
          crosses_call = crosses start.(v) stop.(v);
        }
        :: !ivs
  done;
  List.sort (fun a b -> compare a.start b.start) !ivs

let allocate ?(pools = default_pools ~regfile_size:16) (f : func) : result =
  let nv = vreg_count f in
  let locations = Array.make nv (Pslot (-1)) in
  let spill_count = ref 0 in
  let used_callee_int = ref [] in
  let used_callee_float = ref [] in
  let new_slot cls =
    let size, align = match cls with I -> (4, 4) | F -> (8, 8) in
    let id = Array.length f.fn_slots in
    f.fn_slots <-
      Array.append f.fn_slots [| { slot_size = size; slot_align = align } |];
    incr spill_count;
    id
  in
  let ivs = build_intervals f in
  (* free sets per class, split by saved-ness *)
  let free_caller_i = ref pools.int_caller in
  let free_callee_i = ref pools.int_callee in
  let free_caller_f = ref pools.float_caller in
  let free_callee_f = ref pools.float_callee in
  let is_callee_saved cls r =
    match cls with
    | I -> List.mem r pools.int_callee
    | F -> List.mem r pools.float_callee
  in
  let release cls r =
    match (cls, is_callee_saved cls r) with
    | I, true -> free_callee_i := r :: !free_callee_i
    | I, false -> free_caller_i := r :: !free_caller_i
    | F, true -> free_callee_f := r :: !free_callee_f
    | F, false -> free_caller_f := r :: !free_caller_f
  in
  let active : interval list ref = ref [] in
  let expire point =
    let expired, still =
      List.partition (fun iv -> iv.stop < point) !active
    in
    List.iter
      (fun iv ->
        match locations.(iv.vreg) with
        | Preg r -> release iv.cls r
        | Pslot _ -> ())
      expired;
    active := still
  in
  let note_callee cls r =
    if is_callee_saved cls r then
      match cls with
      | I -> if not (List.mem r !used_callee_int) then
               used_callee_int := r :: !used_callee_int
      | F -> if not (List.mem r !used_callee_float) then
               used_callee_float := r :: !used_callee_float
  in
  let try_take pool =
    match !pool with
    | [] -> None
    | r :: rest ->
        pool := rest;
        Some r
  in
  let assign iv =
    expire iv.start;
    let choice =
      match (iv.cls, iv.crosses_call) with
      | I, true -> try_take free_callee_i
      | F, true -> try_take free_callee_f
      | I, false -> (
          match try_take free_caller_i with
          | Some r -> Some r
          | None -> try_take free_callee_i)
      | F, false -> (
          match try_take free_caller_f with
          | Some r -> Some r
          | None -> try_take free_callee_f)
    in
    match choice with
    | Some r ->
        locations.(iv.vreg) <- Preg r;
        note_callee iv.cls r;
        active := iv :: !active
    | None ->
        (* steal from the active interval with the furthest end whose
           register is legal for this interval *)
        let legal r =
          if iv.crosses_call then is_callee_saved iv.cls r else true
        in
        let candidates =
          List.filter
            (fun a ->
              a.cls = iv.cls
              &&
              match locations.(a.vreg) with
              | Preg r -> legal r
              | Pslot _ -> false)
            !active
        in
        let victim =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some a
              | Some b -> if a.stop > b.stop then Some a else best)
            None candidates
        in
        (match victim with
        | Some v when v.stop > iv.stop ->
            (match locations.(v.vreg) with
            | Preg r ->
                locations.(v.vreg) <- Pslot (new_slot v.cls);
                locations.(iv.vreg) <- Preg r;
                note_callee iv.cls r;
                active := iv :: List.filter (fun a -> a != v) !active
            | Pslot _ -> assert false)
        | _ -> locations.(iv.vreg) <- Pslot (new_slot iv.cls))
  in
  List.iter assign ivs;
  {
    locations;
    used_callee_saved_int = List.sort compare !used_callee_int;
    used_callee_saved_float = List.sort compare !used_callee_float;
    spill_count = !spill_count;
  }
