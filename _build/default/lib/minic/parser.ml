(* Recursive-descent parser for MiniC, with full C declarator syntax
   (pointers, arrays, function pointers) and precedence-climbing expression
   parsing. There is no typedef in MiniC, so the cast / parenthesized
   expression ambiguity resolves with one token of lookahead. *)

open Ast

exception Error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1)
  else Lexer.EOF
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else
    fail (line st) "expected %s, found %s" (Lexer.token_name tok)
      (Lexer.token_name (peek st))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> fail (line st) "expected identifier, found %s" (Lexer.token_name t)

(* --- type specifiers and declarators --- *)

let starts_type st =
  match peek st with
  | Lexer.KW_void | KW_char | KW_int | KW_unsigned | KW_double | KW_struct ->
      true
  | _ -> false

let parse_specifier st =
  match peek st with
  | Lexer.KW_void -> advance st; Tvoid
  | KW_char -> advance st; Tchar
  | KW_int -> advance st; Tint
  | KW_unsigned ->
      advance st;
      if peek st = Lexer.KW_int then advance st;
      Tuint
  | KW_double -> advance st; Tdouble
  | KW_struct ->
      advance st;
      let tag = expect_ident st in
      Tstruct tag
  | t -> fail (line st) "expected type, found %s" (Lexer.token_name t)

(* A declarator parse yields the declared name (or None for abstract
   declarators) and a function that wraps the base type with the declared
   derivations (inside-out, as in C). *)
let rec parse_declarator st : string option * (ty -> ty) =
  match peek st with
  | Lexer.STAR ->
      advance st;
      let name, wrap = parse_declarator st in
      (name, fun base -> wrap (Tptr base))
  | _ -> parse_direct_declarator st

and parse_direct_declarator st =
  let name, wrap =
    match peek st with
    | Lexer.IDENT s ->
        advance st;
        (Some s, fun base -> base)
    | LPAREN ->
        advance st;
        let name, wrap = parse_declarator st in
        expect st Lexer.RPAREN;
        (name, wrap)
    | _ -> (None, fun base -> base)
  in
  parse_declarator_suffixes st name wrap

and parse_declarator_suffixes st name wrap =
  match peek st with
  | Lexer.LBRACKET ->
      advance st;
      let size =
        match peek st with
        | Lexer.INT n -> advance st; n
        | RBRACKET -> 0 (* incomplete array; must come with an initializer *)
        | t -> fail (line st) "expected array size, found %s" (Lexer.token_name t)
      in
      expect st Lexer.RBRACKET;
      let name, wrap = parse_declarator_suffixes st name wrap in
      (name, fun base -> wrap (Tarray (base, size)))
  | LPAREN ->
      advance st;
      let params = parse_param_types st in
      expect st Lexer.RPAREN;
      let name, wrap = parse_declarator_suffixes st name wrap in
      (name, fun base -> wrap (Tfun (base, params)))
  | _ -> (name, wrap)

and parse_param_types st =
  (* Used only from declarator suffixes: function pointer types. Parameter
     names are allowed and discarded. () and (void) mean no parameters. *)
  if peek st = Lexer.RPAREN then []
  else if peek st = Lexer.KW_void && peek2 st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let spec = parse_specifier st in
      let _, wrap = parse_declarator st in
      let acc = wrap spec :: acc in
      if peek st = Lexer.COMMA then begin
        advance st;
        go acc
      end
      else List.rev acc
    in
    go []

let parse_type st =
  (* A full type name: specifier + abstract declarator (for casts/sizeof). *)
  let spec = parse_specifier st in
  let name, wrap = parse_declarator st in
  (match name with
  | Some n -> fail (line st) "unexpected identifier %s in type name" n
  | None -> ());
  wrap spec

(* --- expressions --- *)

let prec_of_binop = function
  | Lexer.STAR | SLASH | PERCENT -> Some (10, Mul)
  | PLUS | MINUS -> Some (9, Add)
  | SHL | SHR -> Some (8, Shl)
  | LT | LE | GT | GE -> Some (7, Lt)
  | EQEQ | NEQ -> Some (6, Eq)
  | AMP -> Some (5, Band)
  | CARET -> Some (4, Bxor)
  | PIPE -> Some (3, Bor)
  | ANDAND -> Some (2, Land)
  | OROR -> Some (1, Lor)
  | _ -> None

let binop_of_token = function
  | Lexer.STAR -> Mul | SLASH -> Div | PERCENT -> Mod
  | PLUS -> Add | MINUS -> Sub
  | SHL -> Shl | SHR -> Shr
  | LT -> Lt | LE -> Le | GT -> Gt | GE -> Ge
  | EQEQ -> Eq | NEQ -> Ne
  | AMP -> Band | CARET -> Bxor | PIPE -> Bor
  | ANDAND -> Land | OROR -> Lor
  | _ -> assert false

let assign_op_of_token = function
  | Lexer.PLUSEQ -> Some Add
  | MINUSEQ -> Some Sub
  | STAREQ -> Some Mul
  | SLASHEQ -> Some Div
  | PERCENTEQ -> Some Mod
  | AMPEQ -> Some Band
  | PIPEEQ -> Some Bor
  | CARETEQ -> Some Bxor
  | SHLEQ -> Some Shl
  | SHREQ -> Some Shr
  | _ -> None

let mk line desc = { desc; line }

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  let ln = line st in
  match peek st with
  | Lexer.ASSIGN ->
      advance st;
      let rhs = parse_assign st in
      mk ln (Assign (lhs, rhs))
  | t -> (
      match assign_op_of_token t with
      | Some op ->
          advance st;
          let rhs = parse_assign st in
          mk ln (Assign_op (op, lhs, rhs))
      | None -> lhs)

and parse_cond st =
  let c = parse_binary st 1 in
  if peek st = Lexer.QUESTION then begin
    let ln = line st in
    advance st;
    let t = parse_expr st in
    expect st Lexer.COLON;
    let e = parse_cond st in
    mk ln (Cond (c, t, e))
  end
  else c

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec go lhs =
    match prec_of_binop (peek st) with
    | Some (prec, _) when prec >= min_prec ->
        let tok = peek st in
        let ln = line st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        go (mk ln (Bin (binop_of_token tok, lhs, rhs)))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  let ln = line st in
  match peek st with
  | Lexer.MINUS ->
      advance st;
      mk ln (Un (Neg, parse_unary st))
  | BANG ->
      advance st;
      mk ln (Un (Lognot, parse_unary st))
  | TILDE ->
      advance st;
      mk ln (Un (Bitnot, parse_unary st))
  | STAR ->
      advance st;
      mk ln (Deref (parse_unary st))
  | AMP ->
      advance st;
      mk ln (Addr_of (parse_unary st))
  | PLUSPLUS ->
      advance st;
      mk ln (Pre_inc (parse_unary st))
  | MINUSMINUS ->
      advance st;
      mk ln (Pre_dec (parse_unary st))
  | KW_sizeof ->
      advance st;
      if peek st = Lexer.LPAREN
         && (match peek2 st with
            | Lexer.KW_void | KW_char | KW_int | KW_unsigned | KW_double
            | KW_struct ->
                true
            | _ -> false)
      then begin
        advance st;
        let ty = parse_type st in
        expect st Lexer.RPAREN;
        mk ln (Sizeof_ty ty)
      end
      else mk ln (Sizeof_expr (parse_unary st))
  | LPAREN
    when (match peek2 st with
         | Lexer.KW_void | KW_char | KW_int | KW_unsigned | KW_double
         | KW_struct ->
             true
         | _ -> false) ->
      advance st;
      let ty = parse_type st in
      expect st Lexer.RPAREN;
      mk ln (Cast (ty, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec go e =
    let ln = line st in
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Lexer.RBRACKET;
        go (mk ln (Index (e, idx)))
    | LPAREN ->
        advance st;
        let args =
          if peek st = Lexer.RPAREN then []
          else
            let rec args acc =
              let a = parse_assign st in
              if peek st = Lexer.COMMA then begin
                advance st;
                args (a :: acc)
              end
              else List.rev (a :: acc)
            in
            args []
        in
        expect st Lexer.RPAREN;
        go (mk ln (Call (e, args)))
    | DOT ->
        advance st;
        let f = expect_ident st in
        go (mk ln (Member (e, f)))
    | ARROW ->
        advance st;
        let f = expect_ident st in
        go (mk ln (Arrow (e, f)))
    | PLUSPLUS ->
        advance st;
        go (mk ln (Post_inc e))
    | MINUSMINUS ->
        advance st;
        go (mk ln (Post_dec e))
    | _ -> e
  in
  go e

and parse_primary st =
  let ln = line st in
  match peek st with
  | Lexer.INT v -> advance st; mk ln (Int_lit v)
  | UINT v -> advance st; mk ln (Cast (Tuint, mk ln (Int_lit v)))
  | FLOAT v -> advance st; mk ln (Float_lit v)
  | STRING s ->
      advance st;
      (* adjacent string literals concatenate *)
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf s;
      let rec more () =
        match peek st with
        | Lexer.STRING s2 ->
            advance st;
            Buffer.add_string buf s2;
            more ()
        | _ -> ()
      in
      more ();
      mk ln (Str_lit (Buffer.contents buf))
  | IDENT s -> advance st; mk ln (Ident s)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | t -> fail ln "expected expression, found %s" (Lexer.token_name t)

(* --- initializers --- *)

let rec parse_init st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    let rec go acc =
      let i = parse_init st in
      match peek st with
      | Lexer.COMMA ->
          advance st;
          if peek st = Lexer.RBRACE then begin
            advance st;
            List.rev (i :: acc)
          end
          else go (i :: acc)
      | RBRACE ->
          advance st;
          List.rev (i :: acc)
      | t -> fail (line st) "expected , or } in initializer, found %s"
               (Lexer.token_name t)
    in
    Init_list (if peek st = Lexer.RBRACE then (advance st; []) else go [])
  end
  else Init_expr (parse_assign st)

(* --- statements --- *)

let mks line sdesc = { sdesc; sline = line }

let rec parse_stmt st =
  let ln = line st in
  match peek st with
  | Lexer.LBRACE -> parse_block st
  | SEMI -> advance st; mks ln Empty
  | KW_if ->
      advance st;
      expect st Lexer.LPAREN;
      let c = parse_expr st in
      expect st Lexer.RPAREN;
      let then_s = parse_stmt st in
      if peek st = Lexer.KW_else then begin
        advance st;
        let else_s = parse_stmt st in
        mks ln (If (c, then_s, Some else_s))
      end
      else mks ln (If (c, then_s, None))
  | KW_while ->
      advance st;
      expect st Lexer.LPAREN;
      let c = parse_expr st in
      expect st Lexer.RPAREN;
      mks ln (While (c, parse_stmt st))
  | KW_do ->
      advance st;
      let body = parse_stmt st in
      expect st Lexer.KW_while;
      expect st Lexer.LPAREN;
      let c = parse_expr st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      mks ln (Do_while (body, c))
  | KW_for ->
      advance st;
      expect st Lexer.LPAREN;
      let init =
        if peek st = Lexer.SEMI then None
        else Some (mks (line st) (Expr (parse_expr st)))
      in
      expect st Lexer.SEMI;
      let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI;
      let step =
        if peek st = Lexer.RPAREN then None else Some (parse_expr st)
      in
      expect st Lexer.RPAREN;
      mks ln (For (init, cond, step, parse_stmt st))
  | KW_return ->
      advance st;
      if peek st = Lexer.SEMI then begin
        advance st;
        mks ln (Return None)
      end
      else begin
        let e = parse_expr st in
        expect st Lexer.SEMI;
        mks ln (Return (Some e))
      end
  | KW_break ->
      advance st;
      expect st Lexer.SEMI;
      mks ln Break
  | KW_continue ->
      advance st;
      expect st Lexer.SEMI;
      mks ln Continue
  | _ when starts_type st ->
      let decls = parse_local_decl st in
      (match decls with [ d ] -> d | ds -> mks ln (Block ds))
  | _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      mks ln (Expr e)

and parse_block st =
  let ln = line st in
  expect st Lexer.LBRACE;
  let rec go acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  mks ln (Block (go []))

and parse_local_decl st =
  let ln = line st in
  let spec = parse_specifier st in
  let rec go acc =
    let name, wrap = parse_declarator st in
    let name =
      match name with
      | Some n -> n
      | None -> fail ln "declaration needs a name"
    in
    let ty = wrap spec in
    let init =
      if peek st = Lexer.ASSIGN then begin
        advance st;
        Some (parse_init st)
      end
      else None
    in
    let acc = mks ln (Decl (ty, name, init)) :: acc in
    match peek st with
    | Lexer.COMMA -> advance st; go acc
    | SEMI -> advance st; List.rev acc
    | t -> fail (line st) "expected , or ; in declaration, found %s"
             (Lexer.token_name t)
  in
  go []

(* --- top level --- *)

let parse_struct_def st =
  let ln = line st in
  expect st Lexer.KW_struct;
  let tag = expect_ident st in
  expect st Lexer.LBRACE;
  let rec fields acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let spec = parse_specifier st in
      let rec members acc =
        let name, wrap = parse_declarator st in
        let name =
          match name with
          | Some n -> n
          | None -> fail (line st) "struct field needs a name"
        in
        let acc = (name, wrap spec) :: acc in
        match peek st with
        | Lexer.COMMA -> advance st; members acc
        | SEMI -> advance st; acc
        | t -> fail (line st) "expected , or ; in struct, found %s"
                 (Lexer.token_name t)
      in
      fields (members acc)
    end
  in
  let fs = fields [] in
  expect st Lexer.SEMI;
  Dstruct { s_tag = tag; s_fields = fs; s_line = ln }

let parse_params_with_names st =
  if peek st = Lexer.RPAREN then []
  else if peek st = Lexer.KW_void && peek2 st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let spec = parse_specifier st in
      let name, wrap = parse_declarator st in
      let p_name = match name with Some n -> n | None -> "" in
      let acc = { p_name; p_ty = wrap spec } :: acc in
      if peek st = Lexer.COMMA then begin
        advance st;
        go acc
      end
      else List.rev acc
    in
    go []

let parse_program (src : string) : program =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | KW_struct when peek2 st <> Lexer.EOF
                     && (match st.toks.(st.pos + 2) with
                        | Lexer.LBRACE, _ -> true
                        | _ -> false) ->
        go (parse_struct_def st :: acc)
    | _ ->
        let ln = line st in
        let spec = parse_specifier st in
        (* Function definitions/prototypes need parameter names, so peek the
           declarator: if it is [*... ident (] we parse parameters with
           names; the stars derive the return type. *)
        let saved = st.pos in
        let stars = ref 0 in
        while peek st = Lexer.STAR do
          incr stars;
          advance st
        done;
        let is_simple_function =
          match (peek st, peek2 st) with
          | Lexer.IDENT _, Lexer.LPAREN -> true
          | _ -> false
        in
        if is_simple_function then begin
          let rec ptrs n t = if n = 0 then t else ptrs (n - 1) (Tptr t) in
          let spec = ptrs !stars spec in
          let fname = expect_ident st in
          expect st Lexer.LPAREN;
          let params = parse_params_with_names st in
          expect st Lexer.RPAREN;
          match peek st with
          | Lexer.SEMI ->
              advance st;
              go
                (Dfunc
                   { f_name = fname; f_ret = spec; f_params = params;
                     f_body = None; f_line = ln }
                :: acc)
          | LBRACE ->
              let body = parse_block st in
              go
                (Dfunc
                   { f_name = fname; f_ret = spec; f_params = params;
                     f_body = Some body; f_line = ln }
                :: acc)
          | t ->
              fail (line st) "expected ; or function body, found %s"
                (Lexer.token_name t)
        end
        else begin
          st.pos <- saved;
          (* global variable(s), or a prototype with a derived declarator *)
          let rec go_decls acc_decls =
            let name, wrap = parse_declarator st in
            let name =
              match name with
              | Some n -> n
              | None -> fail ln "declaration needs a name"
            in
            let ty = wrap spec in
            match (ty, peek st) with
            | Tfun (ret, _), Lexer.LBRACE ->
                (* function definition with derived declarator: re-derive
                   parameter names is impossible here, so require the simple
                   form for definitions with bodies *)
                ignore ret;
                fail ln
                  "function definitions must use the simple form: ret name(params)"
            | Tfun (ret, params), SEMI ->
                advance st;
                let d =
                  Dfunc
                    { f_name = name; f_ret = ret;
                      f_params =
                        List.map (fun t -> { p_name = ""; p_ty = t }) params;
                      f_body = None; f_line = ln }
                in
                List.rev (d :: acc_decls)
            | _, ASSIGN ->
                advance st;
                let i = parse_init st in
                let d =
                  Dglobal { g_name = name; g_ty = ty; g_init = Some i;
                            g_line = ln }
                in
                (match peek st with
                | Lexer.COMMA -> advance st; go_decls (d :: acc_decls)
                | SEMI -> advance st; List.rev (d :: acc_decls)
                | t -> fail (line st) "expected , or ;, found %s"
                         (Lexer.token_name t))
            | _, COMMA ->
                advance st;
                go_decls
                  (Dglobal { g_name = name; g_ty = ty; g_init = None;
                             g_line = ln }
                  :: acc_decls)
            | _, SEMI ->
                advance st;
                List.rev
                  (Dglobal { g_name = name; g_ty = ty; g_init = None;
                             g_line = ln }
                  :: acc_decls)
            | _, t ->
                fail (line st) "expected declaration, found %s"
                  (Lexer.token_name t)
          in
          go (List.rev_append (go_decls []) acc)
        end
  in
  go []
