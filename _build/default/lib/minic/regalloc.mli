(** Linear-scan register allocation onto the OmniVM register file.

    The allocatable pools are parameters, making the paper's Table 2
    experiment (register file sizes 8..16) a one-argument change. Intervals
    that cross a call site receive callee-saved registers or spill; the
    code generator then saves exactly the callee-saved registers in use and
    materializes spill traffic with two reserved scratch registers per
    class. *)

type location = Preg of Omnivm.Reg.t | Pslot of int

type pools = {
  int_caller : Omnivm.Reg.t list;
  int_callee : Omnivm.Reg.t list;
  float_caller : Omnivm.Reg.t list;
  float_callee : Omnivm.Reg.t list;
}

val default_pools : regfile_size:int -> pools
(** Pools for an OmniVM register file of [regfile_size] in [8, 16];
    r8/r9 and f8/f9 stay reserved as codegen scratch. *)

type result = {
  locations : location array;  (** indexed by virtual register *)
  used_callee_saved_int : Omnivm.Reg.t list;
  used_callee_saved_float : Omnivm.Reg.t list;
  spill_count : int;
}

val allocate : ?pools:pools -> Ir.func -> result
(** Allocates every live virtual register; appends spill slots to the
    function's frame. *)
