(* Reference interpreter for the typed MiniC core language.

   This is the compiler-independent oracle of the differential test suite:
   it executes the typed AST directly over a byte-addressed memory with its
   own (independent) data layout. A MiniC program whose output here differs
   from the compiled pipeline's output has found a compiler, translator, or
   simulator bug.

   Unsupported relative to the full system: the VM-fault handler host call
   (programs exercising the exception model are tested against the real
   engines only). *)

open Tast
module W = Omni_util.Word32
module Mem = Omnivm.Memory

exception Oracle_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Oracle_error s)) fmt

type value = VI of int | VF of float

let as_int = function VI v -> v | VF _ -> fail "expected int value"
let as_float = function VF v -> v | VI _ -> fail "expected float value"

type fn_table = {
  by_name : (string, tfunc) Hashtbl.t;
  by_addr : (int, tfunc) Hashtbl.t;
  addr_of : (string, int) Hashtbl.t;
}

type state = {
  mem : Mem.t;
  globals : (string, int) Hashtbl.t; (* global name -> address *)
  strings : int array; (* string index -> address *)
  struct_sizes : (string * struct_layout) list;
  fns : fn_table;
  out : Buffer.t;
  mutable brk : int;
  heap_limit : int;
  mutable sp : int; (* oracle stack pointer, grows down *)
  stack_limit : int;
  mutable ticks : int;
  mutable exited : int option;
  mutable fuel : int;
}

exception Exit_program of int
exception Out_of_fuel

(* frame: local name -> address *)
type frame = {
  vars : (string, int) Hashtbl.t;
  tmps : (int, value) Hashtbl.t;
}

exception Return_exn of value option
exception Break_exn
exception Continue_exn

(* --- sizes (mirrors Typecheck) --- *)

let rec sizeof st = function
  | Ast.Tchar -> 1
  | Tint | Tuint | Tptr _ -> 4
  | Tdouble -> 8
  | Tarray (t, n) -> n * sizeof st t
  | Tstruct tag -> (
      match List.assoc_opt tag st.struct_sizes with
      | Some l -> l.sl_size
      | None -> fail "unknown struct %s" tag)
  | Tvoid | Tfun _ -> fail "sizeof void/function"

let rec alignof st = function
  | Ast.Tchar -> 1
  | Tint | Tuint | Tptr _ -> 4
  | Tdouble -> 8
  | Tarray (t, _) -> alignof st t
  | Tstruct tag -> (
      match List.assoc_opt tag st.struct_sizes with
      | Some l -> l.sl_align
      | None -> fail "unknown struct %s" tag)
  | Tvoid | Tfun _ -> fail "alignof void/function"

(* --- memory access by type --- *)

let load st ty addr =
  match ty with
  | Ast.Tchar -> VI (Mem.load8 st.mem addr)
  | Tint | Tuint | Tptr _ -> VI (Mem.load32 st.mem addr)
  | Tdouble -> VF (Mem.load_float st.mem addr)
  | t -> fail "cannot load %s" (Ast.string_of_ty t)

let store st ty addr v =
  match ty with
  | Ast.Tchar -> Mem.store8 st.mem addr (as_int v)
  | Tint | Tuint | Tptr _ -> Mem.store32 st.mem addr (as_int v)
  | Tdouble -> Mem.store_float st.mem addr (as_float v)
  | t -> fail "cannot store %s" (Ast.string_of_ty t)

(* --- setup --- *)

let data_origin = Omnivm.Layout.data_base + Omnivm.Layout.reserved_data

let create (tp : tprogram) : state =
  let mem = Mem.create () in
  ignore
    (Mem.map mem ~name:"data" ~base:Omnivm.Layout.data_base
       ~size:Omnivm.Layout.data_size ~perm:Mem.perm_rw);
  let fns =
    {
      by_name = Hashtbl.create 64;
      by_addr = Hashtbl.create 64;
      addr_of = Hashtbl.create 64;
    }
  in
  List.iteri
    (fun i f ->
      let addr = Omnivm.Layout.code_base + (4 * (i + 1)) in
      Hashtbl.replace fns.by_name f.tf_name f;
      Hashtbl.replace fns.by_addr addr f;
      Hashtbl.replace fns.addr_of f.tf_name addr)
    tp.tp_funcs;
  let globals = Hashtbl.create 64 in
  let strings = Array.make (Array.length tp.tp_strings) 0 in
  let st =
    {
      mem;
      globals;
      strings;
      struct_sizes = tp.tp_structs;
      fns;
      out = Buffer.create 256;
      brk = 0;
      heap_limit =
        Omnivm.Layout.data_base + Omnivm.Layout.data_size
        - Omnivm.Layout.default_stack_size;
      sp = Omnivm.Layout.initial_sp;
      stack_limit =
        Omnivm.Layout.data_base + Omnivm.Layout.data_size
        - Omnivm.Layout.default_stack_size;
      ticks = 0;
      exited = None;
      fuel = max_int;
    }
  in
  (* lay out globals *)
  let cursor = ref data_origin in
  let align n a = (n + a - 1) land lnot (a - 1) in
  List.iter
    (fun (g : tglobal) ->
      cursor := align !cursor 8;
      Hashtbl.replace globals g.tg_name !cursor;
      let pos = ref !cursor in
      List.iter
        (fun item ->
          match item with
          | Gbytes bs ->
              Bytes.iteri (fun i c -> Mem.store8 mem (!pos + i) (Char.code c)) bs;
              pos := !pos + Bytes.length bs
          | Gword w ->
              Mem.store32 mem !pos w;
              pos := !pos + 4
          | Gdouble d ->
              pos := align !pos 8;
              Mem.store_float mem !pos d;
              pos := !pos + 8
          | Gaddr_of_global (s, off) ->
              (* forward references resolved in a second pass *)
              ignore (s, off);
              pos := !pos + 4
          | Gaddr_of_func _ | Gaddr_of_string _ -> pos := !pos + 4
          | Gzeros n -> pos := !pos + n)
        g.tg_init;
      cursor := !pos)
    tp.tp_globals;
  (* strings *)
  Array.iteri
    (fun i s ->
      strings.(i) <- !cursor;
      String.iteri (fun j c -> Mem.store8 mem (!cursor + j) (Char.code c)) s;
      Mem.store8 mem (!cursor + String.length s) 0;
      cursor := !cursor + String.length s + 1)
    tp.tp_strings;
  (* second pass: address-valued initializers *)
  List.iter
    (fun (g : tglobal) ->
      let pos = ref (Hashtbl.find globals g.tg_name) in
      List.iter
        (fun item ->
          match item with
          | Gbytes bs -> pos := !pos + Bytes.length bs
          | Gword _ -> pos := !pos + 4
          | Gdouble _ ->
              pos := align !pos 8;
              pos := !pos + 8
          | Gaddr_of_global (s, off) ->
              (match Hashtbl.find_opt globals s with
              | Some a -> Mem.store32 mem !pos (a + off)
              | None -> fail "unknown global %s in initializer" s);
              pos := !pos + 4
          | Gaddr_of_func f ->
              (match Hashtbl.find_opt fns.addr_of f with
              | Some a -> Mem.store32 mem !pos a
              | None -> fail "unknown function %s in initializer" f);
              pos := !pos + 4
          | Gaddr_of_string i ->
              Mem.store32 mem !pos strings.(i);
              pos := !pos + 4
          | Gzeros n -> pos := !pos + n)
        g.tg_init)
    tp.tp_globals;
  st.brk <- align !cursor 16;
  st

(* --- expression evaluation --- *)

let truthy = function VI v -> v <> 0 | VF f -> f <> 0.0

let rec lval_addr st fr (lv : lval) : int * Ast.ty =
  match lv with
  | Lvar (name, ty) -> (
      match Hashtbl.find_opt fr.vars name with
      | Some a -> (a, ty)
      | None -> fail "unbound local %s" name)
  | Lglob (name, ty) -> (
      match Hashtbl.find_opt st.globals name with
      | Some a -> (a, ty)
      | None -> fail "unbound global %s" name)
  | Lmem (e, ty) -> (W.to_unsigned (as_int (eval st fr e)), ty)

and eval st fr (e : texpr) : value =
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then raise Out_of_fuel;
  match e.desc with
  | Cint v -> VI (W.of_int v)
  | Cfloat v -> VF v
  | Cstr i -> VI st.strings.(i)
  | Load lv ->
      let addr, ty = lval_addr st fr lv in
      (match ty with
      | Ast.Tstruct _ -> VI addr (* struct value = its address, for Assign *)
      | _ -> load st ty addr)
  | Addr lv ->
      let addr, _ = lval_addr st fr lv in
      VI addr
  | Fun_addr f -> (
      match Hashtbl.find_opt st.fns.addr_of f with
      | Some a -> VI a
      | None -> fail "unknown function %s" f)
  | Tmp t -> Hashtbl.find fr.tmps t
  | Let (t, bound, body) ->
      let v = eval st fr bound in
      Hashtbl.replace fr.tmps t v;
      eval st fr body
  | Bin (op, a, b) -> eval_bin st fr e.ty op a b
  | Un (op, a) -> eval_un st fr op a
  | Cast a -> eval_cast st fr e.ty a
  | Assign (lv, rhs) -> (
      let v = eval st fr rhs in
      let addr, ty = lval_addr st fr lv in
      match ty with
      | Ast.Tstruct _ ->
          (* struct copy: v is the source address *)
          let size = sizeof st ty in
          let src = W.to_unsigned (as_int v) in
          for i = 0 to size - 1 do
            Mem.store8 st.mem (addr + i) (Mem.load8 st.mem (src + i))
          done;
          VI addr
      | _ ->
          store st ty addr v;
          v)
  | Seq (a, b) ->
      ignore (eval st fr a);
      eval st fr b
  | Cond (c, a, b) ->
      if truthy (eval st fr c) then eval st fr a else eval st fr b
  | Andor (is_and, a, b) ->
      let av = truthy (eval st fr a) in
      if is_and then
        if not av then VI 0 else VI (if truthy (eval st fr b) then 1 else 0)
      else if av then VI 1
      else VI (if truthy (eval st fr b) then 1 else 0)
  | Call (callee, args) -> eval_call st fr e.ty callee args

and eval_bin st fr node_ty op a b : value =
  let va = eval st fr a in
  let vb = eval st fr b in
  let is_cmp =
    match op with
    | Ast.Lt | Le | Gt | Ge | Eq | Ne -> true
    | _ -> false
  in
  if is_cmp then begin
    match (va, vb) with
    | VF x, VF y ->
        let r =
          match op with
          | Ast.Lt -> x < y | Le -> x <= y | Gt -> x > y | Ge -> x >= y
          | Eq -> x = y | Ne -> x <> y
          | _ -> assert false
        in
        VI (if r then 1 else 0)
    | VI x, VI y ->
        let unsigned =
          match a.ty with Ast.Tuint | Tptr _ | Tchar -> true | _ -> false
        in
        let r =
          if unsigned then
            match op with
            | Ast.Lt -> W.ltu x y | Le -> W.leu x y
            | Gt -> W.ltu y x | Ge -> W.leu y x
            | Eq -> x = y | Ne -> x <> y
            | _ -> assert false
          else
            match op with
            | Ast.Lt -> x < y | Le -> x <= y | Gt -> x > y | Ge -> x >= y
            | Eq -> x = y | Ne -> x <> y
            | _ -> assert false
        in
        VI (if r then 1 else 0)
    | _ -> fail "mixed comparison"
  end
  else
    match (va, vb) with
    | VF x, VF y ->
        VF
          (match op with
          | Ast.Add -> x +. y | Sub -> x -. y | Mul -> x *. y | Div -> x /. y
          | _ -> fail "bad float operator")
    | VI x, VI y ->
        let unsigned =
          match node_ty with Ast.Tuint | Tptr _ -> true | _ -> false
        in
        VI
          (match op with
          | Ast.Add -> W.add x y
          | Sub -> W.sub x y
          | Mul -> W.mul x y
          | Div -> if unsigned then W.divu x y else W.div x y
          | Mod -> if unsigned then W.remu x y else W.rem x y
          | Band -> W.logand x y
          | Bor -> W.logor x y
          | Bxor -> W.logxor x y
          | Shl -> W.shift_left x (W.to_unsigned y land 31)
          | Shr ->
              if unsigned then W.shift_right_logical x (W.to_unsigned y land 31)
              else W.shift_right_arith x (W.to_unsigned y land 31)
          | _ -> fail "bad int operator")
    | _ -> fail "mixed arithmetic"

and eval_un st fr op a : value =
  let v = eval st fr a in
  match (op, v) with
  | Ast.Neg, VI x -> VI (W.neg x)
  | Ast.Neg, VF x -> VF (-.x)
  | Ast.Lognot, v -> VI (if truthy v then 0 else 1)
  | Ast.Bitnot, VI x -> VI (W.lognot x)
  | Ast.Bitnot, VF _ -> fail "~ on float"

and eval_cast st fr to_ty a : value =
  let v = eval st fr a in
  match (to_ty, v) with
  | Ast.Tdouble, VI x -> VF (float_of_int x)
  | Ast.Tdouble, VF x -> VF x
  | Ast.Tchar, VF f -> VI (int_of_float_sat f land 0xFF)
  | Ast.Tchar, VI x -> VI (x land 0xFF)
  | (Ast.Tint | Ast.Tuint), VF f -> VI (int_of_float_sat f)
  | (Ast.Tint | Ast.Tuint | Ast.Tptr _), VI x -> VI x
  | Ast.Tptr _, VF _ -> fail "float to pointer"
  | Ast.Tvoid, _ -> VI 0
  | _ -> fail "bad cast to %s" (Ast.string_of_ty to_ty)

and int_of_float_sat f =
  if Float.is_nan f then 0
  else if f >= 2147483648.0 then W.max_int32
  else if f <= -2147483649.0 then W.min_int32
  else W.of_int (int_of_float f)

and eval_call st fr ret_ty callee args : value =
  let argv = List.map (eval st fr) args in
  match callee with
  | Builtin hc -> eval_builtin st hc argv ret_ty
  | Dir name -> (
      match Hashtbl.find_opt st.fns.by_name name with
      | Some f -> call_function st f argv
      | None -> fail "call to undefined function %s" name)
  | Ind e -> (
      let addr = W.to_unsigned (as_int (eval st fr e)) in
      match Hashtbl.find_opt st.fns.by_addr addr with
      | Some f -> call_function st f argv
      | None -> fail "indirect call to bad address 0x%x" addr)

and eval_builtin st hc argv _ret_ty : value =
  st.ticks <- st.ticks + 1;
  match (hc, argv) with
  | Omnivm.Hostcall.Exit, [ v ] -> raise (Exit_program (as_int v))
  | Omnivm.Hostcall.Put_char, [ v ] ->
      Buffer.add_char st.out (Char.chr (as_int v land 0xFF));
      VI 0
  | Omnivm.Hostcall.Print_int, [ v ] ->
      Buffer.add_string st.out (string_of_int (as_int v));
      VI 0
  | Omnivm.Hostcall.Print_string, [ v ] ->
      Buffer.add_string st.out
        (Mem.read_cstring st.mem ~addr:(W.to_unsigned (as_int v))
           ~max_len:65536);
      VI 0
  | Omnivm.Hostcall.Print_float, [ v ] ->
      Buffer.add_string st.out (Printf.sprintf "%.6f" (as_float v));
      VI 0
  | Omnivm.Hostcall.Sbrk, [ v ] ->
      let size = (max 0 (as_int v) + 7) land lnot 7 in
      if st.brk + size > st.heap_limit then VI 0
      else begin
        let a = st.brk in
        st.brk <- st.brk + size;
        VI a
      end
  | Omnivm.Hostcall.Clock, [] -> VI st.ticks
  | Omnivm.Hostcall.Set_handler, [ _ ] ->
      fail "set_handler is not supported by the oracle"
  | Omnivm.Hostcall.Host_service, _ ->
      fail "host_service is not supported by the oracle"
  | _ -> fail "bad builtin arity"

and call_function st (f : tfunc) argv : value =
  if List.length argv <> List.length f.tf_params then
    fail "arity mismatch calling %s" f.tf_name;
  let fr = { vars = Hashtbl.create 16; tmps = Hashtbl.create 8 } in
  let saved_sp = st.sp in
  (* allocate every local (params included) on the oracle stack *)
  let alloc name ty =
    let size = sizeof st ty and al = alignof st ty in
    st.sp <- (st.sp - size) land lnot (al - 1);
    if st.sp < st.stack_limit then fail "oracle stack overflow";
    Hashtbl.replace fr.vars name st.sp
  in
  List.iter (fun (name, ty) -> alloc name ty) f.tf_locals;
  List.iter2
    (fun (name, ty) v ->
      store st ty (Hashtbl.find fr.vars name) v)
    f.tf_params argv;
  let result =
    match exec st fr f.tf_body with
    | () -> (
        match f.tf_ret with
        | Ast.Tvoid -> None
        | Ast.Tdouble -> Some (VF 0.0)
        | _ -> Some (VI 0))
    | exception Return_exn v -> v
  in
  st.sp <- saved_sp;
  match result with None -> VI 0 | Some v -> v

(* --- statements --- *)

and exec st fr (s : tstmt) : unit =
  match s with
  | Sexpr e -> ignore (eval st fr e)
  | Sdecl (name, ty, init) -> (
      match init with
      | None -> ()
      | Some e ->
          let v = eval st fr e in
          store st ty (Hashtbl.find fr.vars name) v)
  | Sblock ss -> List.iter (exec st fr) ss
  | Sif (c, a, b) ->
      if truthy (eval st fr c) then exec st fr a
      else Option.iter (exec st fr) b
  | Swhile (c, body) ->
      let rec loop () =
        if truthy (eval st fr c) then begin
          (try exec st fr body with Continue_exn -> ());
          loop ()
        end
      in
      (try loop () with Break_exn -> ())
  | Sdo (body, c) ->
      let rec loop () =
        (try exec st fr body with Continue_exn -> ());
        if truthy (eval st fr c) then loop ()
      in
      (try loop () with Break_exn -> ())
  | Sfor (init, cond, step, body) ->
      Option.iter (exec st fr) init;
      let rec loop () =
        let go = match cond with None -> true | Some c -> truthy (eval st fr c) in
        if go then begin
          (try exec st fr body with Continue_exn -> ());
          Option.iter (fun e -> ignore (eval st fr e)) step;
          loop ()
        end
      in
      (try loop () with Break_exn -> ())
  | Sret None -> raise (Return_exn None)
  | Sret (Some e) -> raise (Return_exn (Some (eval st fr e)))
  | Sbreak -> raise Break_exn
  | Scont -> raise Continue_exn

(* --- entry --- *)

type outcome = Exited of int | Ran_off_end of int | Failed of string

let run ?(fuel = max_int) (tp : tprogram) : outcome * string =
  let st = create tp in
  st.fuel <- fuel;
  match Hashtbl.find_opt st.fns.by_name "main" with
  | None -> (Failed "no main function", "")
  | Some main -> (
      match call_function st main [] with
      | v -> (Exited (as_int v), Buffer.contents st.out)
      | exception Exit_program c -> (Exited c, Buffer.contents st.out)
      | exception Oracle_error m -> (Failed m, Buffer.contents st.out)
      | exception Out_of_fuel -> (Failed "out of fuel", Buffer.contents st.out)
      | exception W.Division_by_zero ->
          (Failed "division by zero", Buffer.contents st.out)
      | exception Omnivm.Fault.Vm_fault f ->
          (Failed (Omnivm.Fault.to_string f), Buffer.contents st.out))
