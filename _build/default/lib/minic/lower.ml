(* Lowering: typed core AST -> IR CFG.

   Scalar locals whose address is never taken are registerized (assigned a
   virtual register); everything else lives in frame slots. Comparison
   conditions fuse into conditional branches (OmniVM has general
   compare-and-branch instructions). *)

open Tast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let string_symbol i = Printf.sprintf "$str.%d" i

type loc = In_reg of Ir.vreg | In_slot of int

type env = {
  mutable classes : Ir.vclass list; (* reversed *)
  mutable n_vregs : int;
  mutable slots : Ir.slot list; (* reversed *)
  mutable n_slots : int;
  vars : (string, loc) Hashtbl.t;
  tmps : (int, Ir.vreg) Hashtbl.t;
  mutable blocks : Ir.block list; (* reversed; ids assigned in order *)
  mutable n_blocks : int;
  mutable cur : Ir.block; (* block under construction *)
  mutable cur_id : int;
  mutable cur_insts : Ir.inst list; (* reversed *)
  mutable loop_stack : (int * int) list; (* (continue target, break target) *)
  structs : (string * struct_layout) list;
}

let fresh_vreg env cls =
  let v = env.n_vregs in
  env.n_vregs <- v + 1;
  env.classes <- cls :: env.classes;
  v

let fresh_slot env ~size ~align =
  let s = env.n_slots in
  env.n_slots <- s + 1;
  env.slots <- { Ir.slot_size = size; slot_align = align } :: env.slots;
  s

let emit env i = env.cur_insts <- i :: env.cur_insts

(* Allocate a new block id without switching to it. *)
let new_block env =
  let id = env.n_blocks in
  env.n_blocks <- id + 1;
  env.blocks <- { Ir.insts = []; term = Ir.Ret None } :: env.blocks;
  id

let set_block env id b =
  let arr = Array.of_list (List.rev env.blocks) in
  arr.(id) <- b;
  env.blocks <- List.rev (Array.to_list arr)

(* Finish the current block with terminator [t] and switch to block [id]. *)
let finish_and_switch env t id =
  set_block env env.cur_id { Ir.insts = List.rev env.cur_insts; term = t };
  env.cur_id <- id;
  env.cur_insts <- []

let class_of_ty = function
  | Ast.Tdouble -> Ir.F
  | Ast.Tvoid | Tchar | Tint | Tuint | Tptr _ | Tarray _ | Tstruct _ | Tfun _
    ->
      Ir.I

let width_of_ty = function
  | Ast.Tchar -> (Omnivm.Instr.W8, false)
  | Tint -> (Omnivm.Instr.W32, true)
  | Tuint | Tptr _ -> (Omnivm.Instr.W32, true)
  | t -> fail "width_of_ty: %s" (Ast.string_of_ty t)

let sizeof_struct env tag =
  match List.assoc_opt tag env.structs with
  | Some l -> l.sl_size
  | None -> fail "unknown struct %s" tag

let rec size_of_ty env = function
  | Ast.Tchar -> 1
  | Tint | Tuint | Tptr _ -> 4
  | Tdouble -> 8
  | Tarray (t, n) -> n * size_of_ty env t
  | Tstruct tag -> sizeof_struct env tag
  | Tvoid | Tfun _ -> fail "size_of_ty"

let rec align_of_ty env = function
  | Ast.Tchar -> 1
  | Tint | Tuint | Tptr _ -> 4
  | Tdouble -> 8
  | Tarray (t, _) -> align_of_ty env t
  | Tstruct tag -> (
      match List.assoc_opt tag env.structs with
      | Some l -> l.sl_align
      | None -> fail "unknown struct %s" tag)
  | Tvoid | Tfun _ -> fail "align_of_ty"

let cond_of_binop ~unsigned = function
  | Ast.Lt -> if unsigned then Omnivm.Instr.Ltu else Omnivm.Instr.Lt
  | Le -> if unsigned then Omnivm.Instr.Leu else Omnivm.Instr.Le
  | Gt -> if unsigned then Omnivm.Instr.Gtu else Omnivm.Instr.Gt
  | Ge -> if unsigned then Omnivm.Instr.Geu else Omnivm.Instr.Ge
  | Eq -> Omnivm.Instr.Eq
  | Ne -> Omnivm.Instr.Ne
  | _ -> invalid_arg "cond_of_binop"

let is_cmp = function
  | Ast.Lt | Le | Gt | Ge | Eq | Ne -> true
  | _ -> false

let ibinop_of_ast ~unsigned = function
  | Ast.Add -> Omnivm.Instr.Add
  | Sub -> Omnivm.Instr.Sub
  | Mul -> Omnivm.Instr.Mul
  | Div -> if unsigned then Omnivm.Instr.Divu else Omnivm.Instr.Div
  | Mod -> if unsigned then Omnivm.Instr.Remu else Omnivm.Instr.Rem
  | Band -> Omnivm.Instr.And
  | Bor -> Omnivm.Instr.Or
  | Bxor -> Omnivm.Instr.Xor
  | Shl -> Omnivm.Instr.Sll
  | Shr -> if unsigned then Omnivm.Instr.Srl else Omnivm.Instr.Sra
  | Lt | Le | Gt | Ge | Eq | Ne | Land | Lor -> invalid_arg "ibinop_of_ast"

let fbinop_of_ast = function
  | Ast.Add -> Omnivm.Instr.Fadd
  | Sub -> Omnivm.Instr.Fsub
  | Mul -> Omnivm.Instr.Fmul
  | Div -> Omnivm.Instr.Fdiv
  | _ -> invalid_arg "fbinop_of_ast"

let is_unsigned_ty = function
  | Ast.Tuint | Tchar | Tptr _ -> true
  | _ -> false

(* --- expressions --- *)

(* Materialize an operand into a vreg (needed when an instruction requires a
   register, e.g. float constants in stores). *)
let force_reg env cls (o : Ir.operand) =
  match o with
  | Ir.Vr v -> v
  | _ ->
      let v = fresh_vreg env cls in
      emit env (Ir.Def (v, Ir.Mov o));
      v

let rec lower_expr env (e : texpr) : Ir.operand =
  match e.desc with
  | Cint v -> Ir.Ci v
  | Cfloat v -> Ir.Cf v
  | Cstr i -> Ir.Sym (string_symbol i, 0)
  | Load lv -> lower_load env lv
  | Addr lv -> addr_operand env lv
  | Fun_addr f -> Ir.Sym (f, 0)
  | Tmp t -> Ir.Vr (Hashtbl.find env.tmps t)
  | Let (t, bound, body) ->
      (* always copy into a fresh vreg: the bound value must be immune to
         later mutation of its source (e.g. post-increment) *)
      let bo = lower_expr env bound in
      let v = fresh_vreg env (class_of_ty bound.ty) in
      emit env (Ir.Def (v, Ir.Mov bo));
      Hashtbl.replace env.tmps t v;
      lower_expr env body
  | Bin (op, a, b) -> lower_binop env e.ty op a b
  | Un (op, a) -> lower_unop env e.ty op a
  | Cast a -> lower_cast env e.ty a
  | Assign (lv, rhs) -> lower_assign env lv rhs
  | Seq (a, b) ->
      ignore (lower_expr env a);
      lower_expr env b
  | Cond (c, a, b) ->
      let cls = class_of_ty e.ty in
      let dst = fresh_vreg env cls in
      let then_b = new_block env in
      let else_b = new_block env in
      let join_b = new_block env in
      lower_branch env c ~if_true:then_b ~if_false:else_b;
      env.cur_id <- then_b;
      env.cur_insts <- [];
      let av = lower_expr env a in
      emit env (Ir.Def (dst, Ir.Mov av));
      finish_and_switch env (Ir.Jmp join_b) else_b;
      let bv = lower_expr env b in
      emit env (Ir.Def (dst, Ir.Mov bv));
      finish_and_switch env (Ir.Jmp join_b) join_b;
      Ir.Vr dst
  | Andor _ ->
      (* as a value: compute 0/1 through branches *)
      let dst = fresh_vreg env Ir.I in
      let t_b = new_block env in
      let f_b = new_block env in
      let join_b = new_block env in
      lower_branch env e ~if_true:t_b ~if_false:f_b;
      env.cur_id <- t_b;
      env.cur_insts <- [ Ir.Def (dst, Ir.Mov (Ir.Ci 1)) ];
      finish_and_switch env (Ir.Jmp join_b) f_b;
      emit env (Ir.Def (dst, Ir.Mov (Ir.Ci 0)));
      finish_and_switch env (Ir.Jmp join_b) join_b;
      Ir.Vr dst
  | Call (callee, args) -> lower_call env e.ty callee args

and lower_load env (lv : lval) : Ir.operand =
  match lv with
  | Lvar (name, ty) -> (
      match Hashtbl.find env.vars name with
      | In_reg v -> Ir.Vr v
      | In_slot s -> load_from env ty { Ir.base = Ir.Slotaddr (s, 0); disp = 0 })
  | Lglob (name, ty) ->
      load_from env ty { Ir.base = Ir.Sym (name, 0); disp = 0 }
  | Lmem (addr, ty) -> load_from env ty (lower_address env addr)

and load_from env ty addr : Ir.operand =
  match ty with
  | Ast.Tdouble ->
      let v = fresh_vreg env Ir.F in
      emit env (Ir.Def (v, Ir.Loadf addr));
      Ir.Vr v
  | Ast.Tstruct _ | Ast.Tarray _ ->
      fail "aggregate load reached lower (should be Addr)"
  | _ ->
      let w, s = width_of_ty ty in
      let v = fresh_vreg env Ir.I in
      emit env (Ir.Def (v, Ir.Load (w, s, addr)));
      Ir.Vr v

(* The address of an lvalue, as an operand (for decay and &). *)
and addr_operand env (lv : lval) : Ir.operand =
  match lv with
  | Lvar (name, _) -> (
      match Hashtbl.find env.vars name with
      | In_reg _ -> fail "address of registerized local"
      | In_slot s -> Ir.Slotaddr (s, 0))
  | Lglob (name, _) -> Ir.Sym (name, 0)
  | Lmem (addr, _) ->
      let a = lower_address env addr in
      if a.Ir.disp = 0 then a.Ir.base
      else (
        let v = fresh_vreg env Ir.I in
        emit env (Ir.Def (v, Ir.Ibin (Omnivm.Instr.Add, a.Ir.base, Ir.Ci a.Ir.disp)));
        Ir.Vr v)

(* Lower an address expression into base + displacement, folding additive
   constants into the displacement (exploits OmniVM's 32-bit offsets). *)
and lower_address env (e : texpr) : Ir.address =
  match e.desc with
  | Bin (Ast.Add, a, { desc = Cint k; _ }) ->
      let inner = lower_address env a in
      { inner with disp = Omni_util.Word32.of_int (inner.Ir.disp + k) }
  | Bin (Ast.Add, { desc = Cint k; _ }, a) ->
      let inner = lower_address env a in
      { inner with disp = Omni_util.Word32.of_int (inner.Ir.disp + k) }
  | Cast a when class_of_ty a.ty = Ir.I && class_of_ty e.ty = Ir.I ->
      lower_address env a
  | _ -> (
      match lower_expr env e with
      | Ir.Sym (s, o) -> { Ir.base = Ir.Sym (s, 0); disp = o }
      | Ir.Slotaddr (s, o) -> { Ir.base = Ir.Slotaddr (s, 0); disp = o }
      | o -> { Ir.base = o; disp = 0 })

and lower_binop env ty op a b : Ir.operand =
  if is_cmp op then begin
    (* comparison as a value: materialize 0/1 without branches when the
       operands are integers (slt/sltu family), else via branches *)
    match class_of_ty a.ty with
    | Ir.I ->
        let unsigned = is_unsigned_ty a.ty in
        let av = lower_expr env a in
        let bv = lower_expr env b in
        let dst = fresh_vreg env Ir.I in
        let slt x y = Ir.Ibin ((if unsigned then Omnivm.Instr.Sltu else Slt), x, y) in
        (match op with
        | Ast.Lt -> emit env (Ir.Def (dst, slt av bv))
        | Gt -> emit env (Ir.Def (dst, slt bv av))
        | Ge ->
            emit env (Ir.Def (dst, slt av bv));
            emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Xor, Ir.Vr dst, Ir.Ci 1)))
        | Le ->
            emit env (Ir.Def (dst, slt bv av));
            emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Xor, Ir.Vr dst, Ir.Ci 1)))
        | Eq ->
            let d = fresh_vreg env Ir.I in
            emit env (Ir.Def (d, Ir.Ibin (Omnivm.Instr.Xor, av, bv)));
            emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Sltu, Ir.Vr d, Ir.Ci 1)))
        | Ne ->
            let d = fresh_vreg env Ir.I in
            emit env (Ir.Def (d, Ir.Ibin (Omnivm.Instr.Xor, av, bv)));
            emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Sltu, Ir.Ci 0, Ir.Vr d)))
        | _ -> assert false);
        Ir.Vr dst
    | Ir.F ->
        let av = lower_expr env a in
        let bv = lower_expr env b in
        let dst = fresh_vreg env Ir.I in
        let fcmp c x y = emit env (Ir.Def (dst, Ir.Fcmp (c, x, y))) in
        (match op with
        | Ast.Eq -> fcmp Omnivm.Instr.Feq av bv
        | Lt -> fcmp Omnivm.Instr.Flt av bv
        | Le -> fcmp Omnivm.Instr.Fle av bv
        | Gt -> fcmp Omnivm.Instr.Flt bv av
        | Ge -> fcmp Omnivm.Instr.Fle bv av
        | Ne ->
            fcmp Omnivm.Instr.Feq av bv;
            emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Xor, Ir.Vr dst, Ir.Ci 1)))
        | _ -> assert false);
        Ir.Vr dst
  end
  else
    match class_of_ty ty with
    | Ir.F ->
        let av = lower_expr env a in
        let bv = lower_expr env b in
        let dst = fresh_vreg env Ir.F in
        emit env (Ir.Def (dst, Ir.Fbin (fbinop_of_ast op, av, bv)));
        Ir.Vr dst
    | Ir.I ->
        let unsigned = is_unsigned_ty ty in
        let av = lower_expr env a in
        let bv = lower_expr env b in
        let dst = fresh_vreg env Ir.I in
        emit env (Ir.Def (dst, Ir.Ibin (ibinop_of_ast ~unsigned op, av, bv)));
        Ir.Vr dst

and lower_unop env ty op a : Ir.operand =
  match (op, class_of_ty ty) with
  | Ast.Neg, Ir.F ->
      let av = lower_expr env a in
      let dst = fresh_vreg env Ir.F in
      emit env (Ir.Def (dst, Ir.Fun1 (Omnivm.Instr.Fneg, av)));
      Ir.Vr dst
  | Ast.Neg, Ir.I ->
      let av = lower_expr env a in
      let dst = fresh_vreg env Ir.I in
      emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Sub, Ir.Ci 0, av)));
      Ir.Vr dst
  | Ast.Bitnot, _ ->
      let av = lower_expr env a in
      let dst = fresh_vreg env Ir.I in
      emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Xor, av, Ir.Ci (-1))));
      Ir.Vr dst
  | Ast.Lognot, _ ->
      (* !x = (x == 0), over the operand's class *)
      let dst = fresh_vreg env Ir.I in
      (match class_of_ty a.ty with
      | Ir.I ->
          let av = lower_expr env a in
          emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.Sltu, av, Ir.Ci 1)))
      | Ir.F ->
          let av = lower_expr env a in
          emit env (Ir.Def (dst, Ir.Fcmp (Omnivm.Instr.Feq, av, Ir.Cf 0.0))));
      Ir.Vr dst

and lower_cast env to_ty (a : texpr) : Ir.operand =
  let from_ty = a.ty in
  match (class_of_ty from_ty, class_of_ty to_ty) with
  | Ir.I, Ir.F ->
      let av = lower_expr env a in
      let dst = fresh_vreg env Ir.F in
      emit env (Ir.Def (dst, Ir.F_of_i av));
      Ir.Vr dst
  | Ir.F, Ir.I ->
      let av = lower_expr env a in
      let dst = fresh_vreg env Ir.I in
      emit env (Ir.Def (dst, Ir.I_of_f av));
      (match to_ty with
      | Ast.Tchar ->
          let d2 = fresh_vreg env Ir.I in
          emit env (Ir.Def (d2, Ir.Ibin (Omnivm.Instr.And, Ir.Vr dst, Ir.Ci 0xFF)));
          Ir.Vr d2
      | _ -> Ir.Vr dst)
  | Ir.F, Ir.F -> lower_expr env a
  | Ir.I, Ir.I -> (
      let av = lower_expr env a in
      match to_ty with
      | Ast.Tchar when from_ty <> Ast.Tchar ->
          let dst = fresh_vreg env Ir.I in
          emit env (Ir.Def (dst, Ir.Ibin (Omnivm.Instr.And, av, Ir.Ci 0xFF)));
          Ir.Vr dst
      | _ -> av)

and lower_assign env (lv : lval) (rhs : texpr) : Ir.operand =
  match lval_ty_of lv with
  | Ast.Tstruct _ as st -> lower_struct_copy env lv rhs st
  | ty -> (
      let value = lower_expr env rhs in
      match lv with
      | Lvar (name, _) -> (
          match Hashtbl.find env.vars name with
          | In_reg v ->
              emit env (Ir.Def (v, Ir.Mov value));
              Ir.Vr v
          | In_slot s ->
              store_to env ty { Ir.base = Ir.Slotaddr (s, 0); disp = 0 } value;
              value)
      | Lglob (name, _) ->
          store_to env ty { Ir.base = Ir.Sym (name, 0); disp = 0 } value;
          value
      | Lmem (addr, _) ->
          let a = lower_address env addr in
          store_to env ty a value;
          value)

and lval_ty_of = function
  | Lvar (_, t) | Lglob (_, t) | Lmem (_, t) -> t

and store_to env ty addr value =
  match ty with
  | Ast.Tdouble ->
      let v = force_reg env Ir.F value in
      emit env (Ir.Storef (Ir.Vr v, addr))
  | Ast.Tchar -> emit env (Ir.Store (Omnivm.Instr.W8, value, addr))
  | Ast.Tint | Tuint | Tptr _ ->
      emit env (Ir.Store (Omnivm.Instr.W32, value, addr))
  | t -> fail "store_to: %s" (Ast.string_of_ty t)

and lower_struct_copy env (lv : lval) (rhs : texpr) st : Ir.operand =
  let size = size_of_ty env st in
  if size > 4096 then fail "struct copy too large (%d bytes)" size;
  let src =
    match rhs.desc with
    | Load src_lv -> addr_operand env src_lv
    | _ -> fail "struct assignment requires an lvalue source"
  in
  let dst = addr_operand env lv in
  let src = force_reg env Ir.I src in
  let dst_r = force_reg env Ir.I dst in
  (* unrolled word copy; structs are 4-aligned so the tail is bytes *)
  let off = ref 0 in
  while !off + 4 <= size do
    let t = fresh_vreg env Ir.I in
    emit env
      (Ir.Def (t, Ir.Load (Omnivm.Instr.W32, true,
                           { Ir.base = Ir.Vr src; disp = !off })));
    emit env
      (Ir.Store (Omnivm.Instr.W32, Ir.Vr t, { Ir.base = Ir.Vr dst_r; disp = !off }));
    off := !off + 4
  done;
  while !off < size do
    let t = fresh_vreg env Ir.I in
    emit env
      (Ir.Def (t, Ir.Load (Omnivm.Instr.W8, false,
                           { Ir.base = Ir.Vr src; disp = !off })));
    emit env
      (Ir.Store (Omnivm.Instr.W8, Ir.Vr t, { Ir.base = Ir.Vr dst_r; disp = !off }));
    off := !off + 1
  done;
  Ir.Vr dst_r

and lower_call env ret_ty callee args : Ir.operand =
  let cargs =
    List.map (fun (a : texpr) -> (class_of_ty a.ty, lower_expr env a)) args
  in
  let dst =
    match ret_ty with
    | Ast.Tvoid -> None
    | t ->
        let cls = class_of_ty t in
        Some (cls, fresh_vreg env cls)
  in
  (match callee with
  | Dir f -> emit env (Ir.Call { dst; callee = Ir.Direct f; args = cargs })
  | Ind e ->
      let f = lower_expr env e in
      emit env (Ir.Call { dst; callee = Ir.Indirect f; args = cargs })
  | Builtin hc -> emit env (Ir.Hcall { dst; call = hc; args = cargs }));
  match dst with Some (_, v) -> Ir.Vr v | None -> Ir.Ci 0

(* Lower [e] as a branch condition: jump to [if_true] or [if_false]. *)
and lower_branch env (e : texpr) ~if_true ~if_false =
  match e.desc with
  | Andor (is_and, a, b) ->
      let mid = new_block env in
      if is_and then begin
        lower_branch env a ~if_true:mid ~if_false;
        env.cur_id <- mid;
        env.cur_insts <- [];
        lower_branch env b ~if_true ~if_false
      end
      else begin
        lower_branch env a ~if_true ~if_false:mid;
        env.cur_id <- mid;
        env.cur_insts <- [];
        lower_branch env b ~if_true ~if_false
      end
  | Un (Ast.Lognot, a) when Ast.is_scalar a.ty ->
      lower_branch env a ~if_true:if_false ~if_false:if_true
  | Bin (op, a, b) when is_cmp op && class_of_ty a.ty = Ir.I ->
      let unsigned = is_unsigned_ty a.ty in
      let av = lower_expr env a in
      let bv = lower_expr env b in
      let c = cond_of_binop ~unsigned op in
      finish_and_switch env (Ir.CondBr (c, av, bv, if_true, if_false)) if_false;
      (* caller decides where to continue; leave cursor on if_false
         arbitrarily -- callers always reposition explicitly *)
      env.cur_id <- if_false;
      env.cur_insts <- []
  | Bin (op, a, b) when is_cmp op && class_of_ty a.ty = Ir.F ->
      let av = lower_expr env a in
      let bv = lower_expr env b in
      let t = fresh_vreg env Ir.I in
      let fcmp c x y = emit env (Ir.Def (t, Ir.Fcmp (c, x, y))) in
      let invert = ref false in
      (match op with
      | Ast.Eq -> fcmp Omnivm.Instr.Feq av bv
      | Ne ->
          fcmp Omnivm.Instr.Feq av bv;
          invert := true
      | Lt -> fcmp Omnivm.Instr.Flt av bv
      | Le -> fcmp Omnivm.Instr.Fle av bv
      | Gt -> fcmp Omnivm.Instr.Flt bv av
      | Ge -> fcmp Omnivm.Instr.Fle bv av
      | _ -> assert false);
      let tt, ff = if !invert then (if_false, if_true) else (if_true, if_false) in
      finish_and_switch env
        (Ir.CondBr (Omnivm.Instr.Ne, Ir.Vr t, Ir.Ci 0, tt, ff))
        if_false;
      env.cur_id <- if_false;
      env.cur_insts <- []
  | _ ->
      let v =
        match class_of_ty e.ty with
        | Ir.I -> lower_expr env e
        | Ir.F ->
            let av = lower_expr env e in
            let t = fresh_vreg env Ir.I in
            emit env (Ir.Def (t, Ir.Fcmp (Omnivm.Instr.Feq, av, Ir.Cf 0.0)));
            emit env (Ir.Def (t, Ir.Ibin (Omnivm.Instr.Xor, Ir.Vr t, Ir.Ci 1)));
            Ir.Vr t
      in
      finish_and_switch env
        (Ir.CondBr (Omnivm.Instr.Ne, v, Ir.Ci 0, if_true, if_false))
        if_false;
      env.cur_id <- if_false;
      env.cur_insts <- []

(* --- statements --- *)

let rec lower_stmt env (s : tstmt) : unit =
  match s with
  | Sexpr e -> ignore (lower_expr env e)
  | Sblock ss -> List.iter (lower_stmt env) ss
  | Sdecl (name, ty, init) -> (
      (* location was pre-assigned in lower_func; just run the initializer *)
      match init with
      | None -> ()
      | Some e -> ignore (lower_expr env { ty; desc = Assign (Lvar (name, ty), e) }))
  | Sif (c, a, b) -> (
      let then_b = new_block env in
      let join_b = new_block env in
      match b with
      | None ->
          lower_branch env c ~if_true:then_b ~if_false:join_b;
          env.cur_id <- then_b;
          env.cur_insts <- [];
          lower_stmt env a;
          finish_and_switch env (Ir.Jmp join_b) join_b
      | Some b ->
          let else_b = new_block env in
          lower_branch env c ~if_true:then_b ~if_false:else_b;
          env.cur_id <- then_b;
          env.cur_insts <- [];
          lower_stmt env a;
          finish_and_switch env (Ir.Jmp join_b) else_b;
          lower_stmt env b;
          finish_and_switch env (Ir.Jmp join_b) join_b)
  | Swhile (c, body) ->
      let head = new_block env in
      let body_b = new_block env in
      let exit_b = new_block env in
      finish_and_switch env (Ir.Jmp head) head;
      lower_branch env c ~if_true:body_b ~if_false:exit_b;
      env.cur_id <- body_b;
      env.cur_insts <- [];
      env.loop_stack <- (head, exit_b) :: env.loop_stack;
      lower_stmt env body;
      env.loop_stack <- List.tl env.loop_stack;
      finish_and_switch env (Ir.Jmp head) exit_b
  | Sdo (body, c) ->
      let body_b = new_block env in
      let cond_b = new_block env in
      let exit_b = new_block env in
      finish_and_switch env (Ir.Jmp body_b) body_b;
      env.loop_stack <- (cond_b, exit_b) :: env.loop_stack;
      lower_stmt env body;
      env.loop_stack <- List.tl env.loop_stack;
      finish_and_switch env (Ir.Jmp cond_b) cond_b;
      lower_branch env c ~if_true:body_b ~if_false:exit_b;
      env.cur_id <- exit_b;
      env.cur_insts <- []
  | Sfor (init, cond, step, body) ->
      Option.iter (lower_stmt env) init;
      let head = new_block env in
      let body_b = new_block env in
      let step_b = new_block env in
      let exit_b = new_block env in
      finish_and_switch env (Ir.Jmp head) head;
      (match cond with
      | Some c ->
          lower_branch env c ~if_true:body_b ~if_false:exit_b;
          env.cur_id <- body_b;
          env.cur_insts <- []
      | None -> finish_and_switch env (Ir.Jmp body_b) body_b);
      env.loop_stack <- (step_b, exit_b) :: env.loop_stack;
      lower_stmt env body;
      env.loop_stack <- List.tl env.loop_stack;
      finish_and_switch env (Ir.Jmp step_b) step_b;
      Option.iter (fun e -> ignore (lower_expr env e)) step;
      finish_and_switch env (Ir.Jmp head) exit_b
  | Sret None ->
      let dead = new_block env in
      finish_and_switch env (Ir.Ret None) dead
  | Sret (Some e) ->
      let cls = class_of_ty e.ty in
      let v = lower_expr env e in
      let dead = new_block env in
      finish_and_switch env (Ir.Ret (Some (cls, v))) dead
  | Sbreak -> (
      match env.loop_stack with
      | [] -> fail "break outside loop"
      | (_, brk) :: _ ->
          let dead = new_block env in
          finish_and_switch env (Ir.Jmp brk) dead)
  | Scont -> (
      match env.loop_stack with
      | [] -> fail "continue outside loop"
      | (cont, _) :: _ ->
          let dead = new_block env in
          finish_and_switch env (Ir.Jmp cont) dead)

(* Pre-assign locations for all locals of a function. *)
let assign_locations env (tf : tfunc) =
  List.iter
    (fun (name, ty) ->
      let registerizable =
        Ast.is_scalar ty && not (Hashtbl.mem tf.tf_addr_taken name)
      in
      let loc =
        if registerizable then In_reg (fresh_vreg env (class_of_ty ty))
        else
          In_slot
            (fresh_slot env ~size:(size_of_ty env ty)
               ~align:(align_of_ty env ty))
      in
      Hashtbl.replace env.vars name loc)
    tf.tf_locals

let lower_func structs (tf : tfunc) : Ir.func =
  let entry = { Ir.insts = []; term = Ir.Ret None } in
  let env =
    {
      classes = [];
      n_vregs = 0;
      slots = [];
      n_slots = 0;
      vars = Hashtbl.create 32;
      tmps = Hashtbl.create 8;
      blocks = [ entry ];
      n_blocks = 1;
      cur = entry;
      cur_id = 0;
      cur_insts = [];
      loop_stack = [];
      structs;
    }
  in
  ignore env.cur;
  assign_locations env tf;
  (* Parameters arrive in fresh vregs; copy to their homes. *)
  let params =
    List.map
      (fun (name, ty) ->
        let cls = class_of_ty ty in
        let pv = fresh_vreg env cls in
        (match Hashtbl.find env.vars name with
        | In_reg v -> emit env (Ir.Def (v, Ir.Mov (Ir.Vr pv)))
        | In_slot s ->
            store_to env ty { Ir.base = Ir.Slotaddr (s, 0); disp = 0 } (Ir.Vr pv));
        (cls, pv))
      tf.tf_params
  in
  lower_stmt env tf.tf_body;
  (* implicit return *)
  let final_term =
    match tf.tf_ret with
    | Ast.Tvoid -> Ir.Ret None
    | Ast.Tdouble -> Ir.Ret (Some (Ir.F, Ir.Cf 0.0))
    | _ -> Ir.Ret (Some (Ir.I, Ir.Ci 0))
  in
  set_block env env.cur_id
    { Ir.insts = List.rev env.cur_insts; term = final_term };
  {
    Ir.fn_name = tf.tf_name;
    fn_params = params;
    fn_blocks = Array.of_list (List.rev env.blocks);
    fn_vreg_class = Array.of_list (List.rev env.classes);
    fn_slots = Array.of_list (List.rev env.slots);
  }

let lower_program (tp : tprogram) : Ir.program =
  {
    Ir.pr_funcs = List.map (lower_func tp.tp_structs) tp.tp_funcs;
    pr_globals = tp.tp_globals;
    pr_strings = tp.tp_strings;
  }
