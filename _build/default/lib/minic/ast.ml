(* MiniC: the C subset used to author mobile modules.

   This is the stand-in for the paper's retargeted gcc front end. The subset
   covers what the four SPEC92-analogue workloads need: the full expression
   language, pointers, arrays, structs, function pointers, globals with
   initializers, and the usual control flow. Omitted relative to C:
   typedef, switch, varargs, unions, bitfields, float (single precision),
   short, goto; struct-valued parameters and returns (pass pointers). *)

type ty =
  | Tvoid
  | Tchar (* 8-bit, unsigned *)
  | Tint (* 32-bit, signed *)
  | Tuint (* 32-bit, unsigned *)
  | Tdouble (* IEEE double *)
  | Tptr of ty
  | Tarray of ty * int
  | Tstruct of string (* by tag; layout lives in the environment *)
  | Tfun of ty * ty list

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor
  | Land | Lor (* short-circuit *)

type unop = Neg | Lognot | Bitnot

(* Source expressions (untyped, as parsed). *)
type expr = { desc : expr_desc; line : int }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Ident of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr
  | Assign_op of binop * expr * expr (* x op= e *)
  | Cond of expr * expr * expr (* ?: *)
  | Call of expr * expr list
  | Index of expr * expr
  | Member of expr * string (* e.f *)
  | Arrow of expr * string (* e->f *)
  | Deref of expr
  | Addr_of of expr
  | Cast of ty * expr
  | Sizeof_ty of ty
  | Sizeof_expr of expr
  | Pre_inc of expr
  | Pre_dec of expr
  | Post_inc of expr
  | Post_dec of expr

type init =
  | Init_expr of expr
  | Init_list of init list (* array / struct initializer *)

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Expr of expr
  | Decl of ty * string * init option (* local declaration *)
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of stmt option * expr option * expr option * stmt
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Empty

type param = { p_name : string; p_ty : ty }

type func = {
  f_name : string;
  f_ret : ty;
  f_params : param list;
  f_body : stmt option; (* None = prototype *)
  f_line : int;
}

type global = {
  g_name : string;
  g_ty : ty;
  g_init : init option;
  g_line : int;
}

type struct_def = {
  s_tag : string;
  s_fields : (string * ty) list;
  s_line : int;
}

type decl =
  | Dfunc of func
  | Dglobal of global
  | Dstruct of struct_def

type program = decl list

(* --- pretty printing of types (for error messages) --- *)

let rec string_of_ty = function
  | Tvoid -> "void"
  | Tchar -> "char"
  | Tint -> "int"
  | Tuint -> "unsigned"
  | Tdouble -> "double"
  | Tptr t -> string_of_ty t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (string_of_ty t) n
  | Tstruct tag -> "struct " ^ tag
  | Tfun (ret, args) ->
      Printf.sprintf "%s(*)(%s)" (string_of_ty ret)
        (String.concat ", " (List.map string_of_ty args))

let is_integer = function
  | Tchar | Tint | Tuint -> true
  | Tvoid | Tdouble | Tptr _ | Tarray _ | Tstruct _ | Tfun _ -> false

let is_arith = function
  | Tchar | Tint | Tuint | Tdouble -> true
  | Tvoid | Tptr _ | Tarray _ | Tstruct _ | Tfun _ -> false

let is_scalar = function
  | Tchar | Tint | Tuint | Tdouble | Tptr _ -> true
  | Tvoid | Tarray _ | Tstruct _ | Tfun _ -> false
