lib/minic/lexer.ml: Array Buffer Char List Printf String
