lib/minic/tast.ml: Ast Bytes Hashtbl Omnivm
