lib/minic/ast.ml: List Printf String
