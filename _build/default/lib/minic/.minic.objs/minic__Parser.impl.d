lib/minic/parser.ml: Array Ast Buffer Lexer List Printf String
