lib/minic/ir.ml: Array Format List Omnivm Printf String Tast
