lib/minic/opt.mli: Ir
