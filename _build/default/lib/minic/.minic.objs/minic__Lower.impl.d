lib/minic/lower.ml: Array Ast Hashtbl Ir List Omni_util Omnivm Option Printf Tast
