lib/minic/oracle.mli: Tast
