lib/minic/opt.ml: Array Float Hashtbl Ir List Omni_util Omnivm Option
