lib/minic/codegen.ml: Array Bytes Char Ir List Lower Omni_asm Omnivm Printf Regalloc Tast
