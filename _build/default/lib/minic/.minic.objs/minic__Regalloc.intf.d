lib/minic/regalloc.mli: Ir Omnivm
