lib/minic/driver.ml: Ast Codegen Lower Omni_asm Omnivm Opt Parser Regalloc Stdlib_mc Tast Typecheck
