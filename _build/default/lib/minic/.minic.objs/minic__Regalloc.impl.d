lib/minic/regalloc.ml: Array Int Ir List Omnivm Set
