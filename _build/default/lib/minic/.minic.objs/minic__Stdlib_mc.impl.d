lib/minic/stdlib_mc.ml:
