lib/minic/oracle.ml: Array Ast Buffer Bytes Char Float Hashtbl List Omni_util Omnivm Option Printf String Tast
