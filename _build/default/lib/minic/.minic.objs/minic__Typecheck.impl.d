lib/minic/typecheck.ml: Array Ast Bytes Char Hashtbl List Omni_util Omnivm Option Printf String Tast
