lib/minic/driver.mli: Omni_asm Omnivm Opt Tast Typecheck
