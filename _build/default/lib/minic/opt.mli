(** Machine-independent optimizations on the IR — the work the paper
    assigns to the compiler, ahead of module load time: constant folding,
    constant/copy propagation, local common-subexpression elimination,
    strength reduction, dead-code elimination, loop-invariant code motion,
    and control-flow cleanup. *)

type level =
  | O0  (** no optimization (debugging) *)
  | O1  (** local: folding, propagation, CSE, DCE *)
  | O2  (** O1 + more rounds + loop-invariant code motion (default) *)

val simplify_rvalue : Ir.rvalue -> Ir.rvalue
(** One step of constant folding / algebraic simplification / strength
    reduction; trapping divisions by a zero constant are left intact. *)

val propagate : Ir.func -> bool
(** Global single-def constant and copy propagation plus folding;
    returns whether anything changed. *)

val local_cse : Ir.func -> bool
(** Block-local value numbering; loads participate but are killed by
    stores and calls. *)

val dce : Ir.func -> bool
(** Remove pure definitions whose results are never used (calls with
    unused results are kept). *)

val licm : Ir.func -> bool
(** Loop-invariant code motion: hoists pure, trap-free, single-def
    computations with invariant operands into fresh preheaders. *)

val cleanup_cfg : Ir.func -> unit
(** Thread jumps through empty blocks, fold constant branches' targets,
    drop unreachable blocks, renumber in preorder from the entry. *)

val optimize_func : level -> Ir.func -> unit
val optimize : level -> Ir.program -> Ir.program
