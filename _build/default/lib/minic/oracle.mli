(** Reference interpreter for the typed MiniC core language.

    The compiler-independent oracle of the differential test suite: it
    executes the typed AST directly over a byte-addressed memory with its
    own data layout. A program whose output here differs from the compiled
    pipeline's output has found a compiler, translator, or simulator bug.

    Not supported: the VM-fault-handler and host-service host calls
    (programs using them are tested against the real engines only). *)

exception Oracle_error of string

type outcome = Exited of int | Ran_off_end of int | Failed of string

val run : ?fuel:int -> Tast.tprogram -> outcome * string
(** [run tp] executes [main] and returns the outcome paired with
    everything the program printed. [fuel] bounds the number of expression
    evaluations. *)
