(* Machine-independent optimizations on the IR.

   These are the optimizations the paper attributes to the compiler (ahead
   of module load time): constant folding, constant/copy propagation, common
   subexpression elimination, strength reduction, dead code elimination, and
   control-flow cleanup. OmniVM's explicit address arithmetic makes the
   address computations visible to CSE, which is the design point section
   3.3 argues for. *)

open Ir

module W = Omni_util.Word32
module VI = Omnivm.Instr

type level = O0 | O1 | O2

(* --- constant folding / algebraic simplification --- *)

(* Fold an rvalue to a simpler one, given already-propagated operands.
   Division by a zero constant is left alone (it must trap at runtime). *)
let simplify_rvalue (rv : rvalue) : rvalue =
  let fold_i op a b =
    match op with
    | VI.Div | VI.Divu | VI.Rem | VI.Remu when b = 0 -> None
    | _ -> Some (VI.eval_binop op a b)
  in
  match rv with
  | Ibin (op, Ci a, Ci b) -> (
      match fold_i op a b with Some v -> Mov (Ci v) | None -> rv)
  (* symbol arithmetic: &g + c folds into the symbol's offset *)
  | Ibin (VI.Add, Sym (s, o), Ci c) | Ibin (VI.Add, Ci c, Sym (s, o)) ->
      Mov (Sym (s, W.of_int (o + c)))
  | Ibin (VI.Add, Slotaddr (s, o), Ci c) | Ibin (VI.Add, Ci c, Slotaddr (s, o))
    ->
      Mov (Slotaddr (s, W.of_int (o + c)))
  | Ibin (VI.Add, x, Ci 0) | Ibin (VI.Add, Ci 0, x) -> Mov x
  | Ibin (VI.Sub, x, Ci 0) -> Mov x
  | Ibin (VI.Sub, x, y) when x = y && (match x with Vr _ -> true | _ -> false)
    ->
      Mov (Ci 0)
  | Ibin (VI.Mul, x, Ci 1) | Ibin (VI.Mul, Ci 1, x) -> Mov x
  | Ibin (VI.Mul, _, Ci 0) | Ibin (VI.Mul, Ci 0, _) -> Mov (Ci 0)
  (* strength reduction: multiply / unsigned divide / modulo by 2^k *)
  | Ibin (VI.Mul, x, Ci c) when c > 0 && c land (c - 1) = 0 ->
      let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
      Ibin (VI.Sll, x, Ci (log2 c))
  | Ibin (VI.Mul, Ci c, x) when c > 0 && c land (c - 1) = 0 ->
      let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
      Ibin (VI.Sll, x, Ci (log2 c))
  | Ibin (VI.Divu, x, Ci c) when c > 0 && c land (c - 1) = 0 ->
      let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
      Ibin (VI.Srl, x, Ci (log2 c))
  | Ibin (VI.Remu, x, Ci c) when c > 0 && c land (c - 1) = 0 ->
      Ibin (VI.And, x, Ci (c - 1))
  | Ibin (VI.And, x, Ci -1) | Ibin (VI.And, Ci -1, x) -> Mov x
  | Ibin (VI.And, _, Ci 0) | Ibin (VI.And, Ci 0, _) -> Mov (Ci 0)
  | Ibin (VI.Or, x, Ci 0) | Ibin (VI.Or, Ci 0, x) -> Mov x
  | Ibin (VI.Xor, x, Ci 0) | Ibin (VI.Xor, Ci 0, x) -> Mov x
  | Ibin ((VI.Sll | VI.Srl | VI.Sra), x, Ci 0) -> Mov x
  | Fbin (op, Cf a, Cf b) -> (
      match op with
      | VI.Fadd -> Mov (Cf (a +. b))
      | VI.Fsub -> Mov (Cf (a -. b))
      | VI.Fmul -> Mov (Cf (a *. b))
      | VI.Fdiv -> if b = 0.0 then rv else Mov (Cf (a /. b)))
  | Fun1 (VI.Fneg, Cf a) -> Mov (Cf (-.a))
  | Fun1 (VI.Fabs, Cf a) -> Mov (Cf (Float.abs a))
  | Fun1 (VI.Fmov, x) -> Mov x
  | F_of_i (Ci a) -> Mov (Cf (float_of_int a))
  | _ -> rv

(* Fold displacement-producing adds into load/store addresses. *)
let fold_addr (defs : rvalue option array) (a : address) : address =
  match a.base with
  | Vr v -> (
      match defs.(v) with
      | Some (Ibin (VI.Add, base', Ci c)) ->
          { base = base'; disp = W.of_int (a.disp + c) }
      | Some (Ibin (VI.Add, Ci c, base')) ->
          { base = base'; disp = W.of_int (a.disp + c) }
      | Some (Mov (Sym (s, o))) -> { base = Sym (s, 0); disp = W.of_int (a.disp + o) }
      | Some (Mov (Slotaddr (s, o))) ->
          { base = Slotaddr (s, 0); disp = W.of_int (a.disp + o) }
      | _ -> a)
  | Sym (s, o) when o <> 0 -> { base = Sym (s, 0); disp = W.of_int (a.disp + o) }
  | Slotaddr (s, o) when o <> 0 ->
      { base = Slotaddr (s, 0); disp = W.of_int (a.disp + o) }
  | _ -> a

(* --- global single-def constant / copy propagation --- *)

let count_defs f =
  let counts = Array.make (vreg_count f) 0 in
  Array.iter
    (fun b ->
      List.iter
        (fun i ->
          match inst_def i with
          | Some v -> counts.(v) <- counts.(v) + 1
          | None -> ())
        b.insts)
    f.fn_blocks;
  List.iter (fun (_, v) -> counts.(v) <- counts.(v) + 1) f.fn_params;
  counts

(* For single-def vregs, record the defining rvalue; [single] also covers
   parameters (single definition at entry, no Def instruction). *)
let single_defs f =
  let counts = count_defs f in
  let defs = Array.make (vreg_count f) None in
  let single = Array.map (fun c -> c <= 1) counts in
  Array.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Def (v, rv) when counts.(v) = 1 -> defs.(v) <- Some rv
          | _ -> ())
        b.insts)
    f.fn_blocks;
  (defs, single)

(* Resolve an operand through chains of single-def Movs of constants or
   other single-def vregs. *)
let resolve (defs, single) (o : operand) : operand =
  (* Copy propagation is only sound when the copy's SOURCE is single-def:
     a multi-def source may be overwritten between the copy and the use.
     Fuel guards against degenerate copy cycles in unreachable code. *)
  let rec go fuel o =
    match o with
    | Vr v when fuel > 0 -> (
        match defs.(v) with
        | Some (Mov ((Ci _ | Cf _ | Sym _ | Slotaddr _) as c)) -> c
        | Some (Mov (Vr v')) when single.(v') -> go (fuel - 1) (Vr v')
        | _ -> o)
    | _ -> o
  in
  go 64 o

let map_rvalue_operands g = function
  | Ibin (op, a, b) -> Ibin (op, g a, g b)
  | Fbin (op, a, b) -> Fbin (op, g a, g b)
  | Fun1 (op, a) -> Fun1 (op, g a)
  | Fcmp (op, a, b) -> Fcmp (op, g a, g b)
  | F_of_i a -> F_of_i (g a)
  | I_of_f a -> I_of_f (g a)
  | Mov a -> Mov (g a)
  | Load (w, s, a) -> Load (w, s, { a with base = g a.base })
  | Loadf a -> Loadf { a with base = g a.base }

let map_inst_operands g = function
  | Def (v, rv) -> Def (v, map_rvalue_operands g rv)
  | Store (w, v, a) -> Store (w, g v, { a with base = g a.base })
  | Storef (v, a) -> Storef (g v, { a with base = g a.base })
  | Call c ->
      Call
        {
          c with
          callee =
            (match c.callee with
            | Direct _ as d -> d
            | Indirect o -> Indirect (g o));
          args = List.map (fun (cl, o) -> (cl, g o)) c.args;
        }
  | Hcall c -> Hcall { c with args = List.map (fun (cl, o) -> (cl, g o)) c.args }

let map_term_operands g = function
  | Ret (Some (cl, o)) -> Ret (Some (cl, g o))
  | Ret None -> Ret None
  | Jmp b -> Jmp b
  | CondBr (c, a, b, t, e) -> CondBr (c, g a, g b, t, e)

(* One round of propagation + folding over the whole function. *)
let propagate f =
  let changed = ref false in
  let (defs, _) as sd = single_defs f in
  let g o =
    let o' = resolve sd o in
    if o' <> o then changed := true;
    o'
  in
  Array.iter
    (fun b ->
      b.insts <-
        List.map
          (fun i ->
            let i = map_inst_operands g i in
            match i with
            | Def (v, rv) ->
                let rv =
                  match rv with
                  | Load (w, s, a) ->
                      let a' = fold_addr defs a in
                      if a' <> a then changed := true;
                      Load (w, s, a')
                  | Loadf a ->
                      let a' = fold_addr defs a in
                      if a' <> a then changed := true;
                      Loadf a'
                  | _ -> rv
                in
                let rv' = simplify_rvalue rv in
                if rv' <> rv then changed := true;
                Def (v, rv')
            | Store (w, v, a) ->
                let a' = fold_addr defs a in
                if a' <> a then changed := true;
                Store (w, v, a')
            | Storef (v, a) ->
                let a' = fold_addr defs a in
                if a' <> a then changed := true;
                Storef (v, a')
            | i -> i)
          b.insts;
      b.term <- map_term_operands g b.term;
      (* fold constant conditional branches *)
      (match b.term with
      | CondBr (c, Ci a, Ci b', t, e) ->
          changed := true;
          b.term <- Jmp (if VI.eval_cond c a b' then t else e)
      | CondBr (_, _, _, t, e) when t = e ->
          changed := true;
          b.term <- Jmp t
      | _ -> ()))
    f.fn_blocks;
  !changed

(* --- local common subexpression elimination --- *)

(* Value-number pure rvalues within a block. Loads participate but are
   killed by stores and calls. Defs of multi-def vregs invalidate entries
   mentioning them. *)
let local_cse f =
  let changed = ref false in
  let counts = count_defs f in
  Array.iter
    (fun b ->
      let table : (rvalue, vreg) Hashtbl.t = Hashtbl.create 16 in
      let kill_loads () =
        Hashtbl.iter
          (fun rv _ ->
            match rv with
            | Load _ | Loadf _ -> Hashtbl.remove table rv
            | _ -> ())
          (Hashtbl.copy table)
      in
      let kill_mentions v =
        Hashtbl.iter
          (fun rv _ ->
            let mentions =
              List.exists
                (function Vr v' -> v' = v | _ -> false)
                (rvalue_operands rv)
            in
            if mentions then Hashtbl.remove table rv)
          (Hashtbl.copy table)
      in
      b.insts <-
        List.map
          (fun i ->
            match i with
            | Def (v, rv) ->
                let i =
                  if counts.(v) > 1 then begin
                    kill_mentions v;
                    i
                  end
                  else
                    match rv with
                    | Mov _ -> i
                    | _ -> (
                        match Hashtbl.find_opt table rv with
                        | Some v' ->
                            changed := true;
                            Def (v, Mov (Vr v'))
                        | None ->
                            Hashtbl.replace table rv v;
                            i)
                in
                i
            | Store _ | Storef _ ->
                kill_loads ();
                i
            | Call _ | Hcall _ ->
                kill_loads ();
                (match inst_def i with
                | Some v when counts.(v) > 1 -> kill_mentions v
                | _ -> ());
                i)
          b.insts)
    f.fn_blocks;
  !changed

(* --- dead code elimination --- *)

let is_pure_rvalue = function
  | Ibin _ | Fbin _ | Fun1 _ | Fcmp _ | F_of_i _ | I_of_f _ | Mov _ -> true
  | Load _ | Loadf _ -> true (* removing a dead load is fine *)

let dce f =
  let used = Array.make (vreg_count f) false in
  (* fixpoint marking: side-effecting roots first, then transitive *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        List.iter
          (fun i ->
            let live =
              match i with
              | Def (v, rv) -> (not (is_pure_rvalue rv)) || used.(v)
              | Store _ | Storef _ | Call _ | Hcall _ -> true
            in
            if live then
              List.iter
                (function
                  | Vr v when not used.(v) ->
                      used.(v) <- true;
                      changed := true
                  | _ -> ())
                (inst_uses i))
          b.insts;
        List.iter
          (function
            | Vr v when not used.(v) ->
                used.(v) <- true;
                changed := true
            | _ -> ())
          (term_uses b.term))
      f.fn_blocks
  done;
  let removed = ref false in
  Array.iter
    (fun b ->
      b.insts <-
        List.filter
          (fun i ->
            match i with
            | Def (v, rv) when is_pure_rvalue rv && not used.(v) ->
                removed := true;
                false
            | _ -> true)
          b.insts)
    f.fn_blocks;
  !removed

(* --- loop-invariant code motion --- *)

(* Hoist pure, single-def computations whose operands are loop-invariant
   into a fresh preheader block. Conservative: only trap-free arithmetic is
   hoisted (no loads -- a zero-trip loop must not fault on a hoisted
   access; no division by a non-constant), and loops whose header is the
   entry block are skipped rather than re-rooting the CFG. *)

let block_preds f =
  let n = Array.length f.fn_blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) (term_succs b.term))
    f.fn_blocks;
  preds

let dominators f =
  let n = Array.length f.fn_blocks in
  let preds = block_preds f in
  let all = List.init n (fun i -> i) in
  let dom = Array.make n all in
  dom.(0) <- [ 0 ];
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let inter =
        match preds.(i) with
        | [] -> [ i ]
        | p :: rest ->
            let meet =
              List.fold_left
                (fun acc q -> List.filter (fun x -> List.mem x dom.(q)) acc)
                dom.(p) rest
            in
            List.sort_uniq compare (i :: meet)
      in
      if inter <> dom.(i) then begin
        dom.(i) <- inter;
        changed := true
      end
    done
  done;
  dom

(* Natural loop bodies, keyed by header; bodies include the header. *)
let natural_loops f =
  let preds = block_preds f in
  let dom = dominators f in
  let loops = Hashtbl.create 4 in
  Array.iteri
    (fun b blk ->
      List.iter
        (fun h ->
          if List.mem h dom.(b) then begin
            (* back edge b -> h *)
            let body = Hashtbl.create 8 in
            Hashtbl.replace body h ();
            let rec up x =
              if not (Hashtbl.mem body x) then begin
                Hashtbl.replace body x ();
                List.iter up preds.(x)
              end
            in
            up b;
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt loops h)
            in
            Hashtbl.replace loops h
              (List.sort_uniq compare
                 (prev @ Hashtbl.fold (fun k () acc -> k :: acc) body []))
          end)
        (term_succs blk.term))
    f.fn_blocks;
  loops

let hoistable_rvalue counts in_loop_def invariant rv =
  let op_ok o =
    match o with
    | Ci _ | Cf _ | Sym _ | Slotaddr _ -> true
    | Vr v -> (not (in_loop_def v)) || invariant v
  in
  let ops_ok = List.for_all op_ok (rvalue_operands rv) in
  ignore counts;
  ops_ok
  &&
  match rv with
  | Ibin ((VI.Div | VI.Divu | VI.Rem | VI.Remu), _, b) -> (
      (* only hoist divisions that provably cannot trap *)
      match b with Ci k -> k <> 0 | _ -> false)
  | Ibin _ | Fbin _ | Fun1 _ | Fcmp _ | F_of_i _ | I_of_f _ | Mov _ -> true
  | Load _ | Loadf _ -> false

let licm f =
  let loops = natural_loops f in
  if Hashtbl.length loops = 0 then false
  else begin
    let counts = count_defs f in
    let changed = ref false in
    (* process headers in a stable order *)
    let headers =
      Hashtbl.fold (fun h body acc -> (h, body) :: acc) loops []
      |> List.sort compare
    in
    List.iter
      (fun (header, body) ->
        if header <> 0 then begin
          (* which vregs are defined inside the loop? *)
          let defined = Hashtbl.create 32 in
          List.iter
            (fun bi ->
              List.iter
                (fun ins ->
                  match inst_def ins with
                  | Some v -> Hashtbl.replace defined v ()
                  | None -> ())
                f.fn_blocks.(bi).insts)
            body;
          let invariant = Hashtbl.create 16 in
          let hoisted = ref [] in
          (* fixpoint: keep sweeping the loop body for hoistable defs *)
          let again = ref true in
          while !again do
            again := false;
            List.iter
              (fun bi ->
                let blk = f.fn_blocks.(bi) in
                let keep =
                  List.filter
                    (fun ins ->
                      match ins with
                      | Def (v, rv)
                        when counts.(v) = 1
                             && (not (Hashtbl.mem invariant v))
                             && hoistable_rvalue counts
                                  (Hashtbl.mem defined)
                                  (Hashtbl.mem invariant)
                                  rv ->
                          Hashtbl.replace invariant v ();
                          hoisted := ins :: !hoisted;
                          again := true;
                          changed := true;
                          false
                      | _ -> true)
                    blk.insts
                in
                blk.insts <- keep)
              body
          done;
          (match List.rev !hoisted with
          | [] -> ()
          | moved ->
              (* build the preheader and retarget out-of-loop predecessors *)
              let n = Array.length f.fn_blocks in
              let pre = { insts = moved; term = Jmp header } in
              f.fn_blocks <- Array.append f.fn_blocks [| pre |];
              Array.iteri
                (fun bi blk ->
                  if bi <> n && not (List.mem bi body) then
                    blk.term <-
                      (match blk.term with
                      | Jmp j when j = header -> Jmp n
                      | CondBr (c, a, b, t, e) ->
                          let t = if t = header then n else t in
                          let e = if e = header then n else e in
                          CondBr (c, a, b, t, e)
                      | t -> t))
                f.fn_blocks)
        end)
      headers;
    !changed
  end

(* --- control-flow cleanup --- *)

(* Thread jumps through empty blocks, remove unreachable blocks, and merge
   single-predecessor straight lines. *)
let cleanup_cfg f =
  let n = Array.length f.fn_blocks in
  if n = 0 then ()
  else begin
    (* resolve chains of empty Jmp blocks *)
    let target = Array.init n (fun i -> i) in
    let rec chase seen i =
      let b = f.fn_blocks.(i) in
      match (b.insts, b.term) with
      | [], Jmp j when (not (List.mem j seen)) && j <> i ->
          let t = chase (i :: seen) j in
          target.(i) <- t;
          t
      | _ -> i
    in
    for i = 0 to n - 1 do
      ignore (chase [] i)
    done;
    Array.iter
      (fun b ->
        b.term <-
          (match b.term with
          | Jmp j -> Jmp target.(j)
          | CondBr (c, a, x, t, e) ->
              let t' = target.(t) and e' = target.(e) in
              if t' = e' then Jmp t' else CondBr (c, a, x, t', e')
          | Ret _ as r -> r))
      f.fn_blocks;
    (* reachability + renumbering in preorder from the (threaded) entry, so
       an empty entry block is skipped entirely *)
    let entry = target.(0) in
    let remap = Array.make n (-1) in
    let order = ref [] in
    let count = ref 0 in
    let rec dfs i =
      if remap.(i) < 0 then begin
        remap.(i) <- !count;
        incr count;
        order := i :: !order;
        List.iter dfs (term_succs f.fn_blocks.(i).term)
      end
    in
    dfs entry;
    let blocks =
      Array.of_list (List.rev_map (fun i -> f.fn_blocks.(i)) !order)
    in
    Array.iter
      (fun b ->
        b.term <-
          (match b.term with
          | Jmp j -> Jmp remap.(j)
          | CondBr (c, a, x, t, e) -> CondBr (c, a, x, remap.(t), remap.(e))
          | Ret _ as r -> r))
      blocks;
    f.fn_blocks <- blocks
  end

(* --- driver --- *)

let optimize_func level (f : func) : unit =
  (match level with
  | O0 -> ()
  | O1 | O2 ->
      let rounds = match level with O1 -> 2 | _ -> 4 in
      for _ = 1 to rounds do
        let c1 = propagate f in
        let c2 = local_cse f in
        let c3 = dce f in
        if not (c1 || c2 || c3) then ()
      done;
      if level = O2 then begin
        cleanup_cfg f;
        if licm f then begin
          ignore (propagate f);
          ignore (local_cse f);
          ignore (dce f)
        end
      end);
  cleanup_cfg f

let optimize level (p : program) : program =
  List.iter (optimize_func level) p.pr_funcs;
  p
