(** Software fault isolation policy (Wahbe et al., SOSP'93).

    A mobile module owns a code segment and a data segment, each a
    power-of-two-sized region whose base is aligned to its size, so an
    address can be forced into its segment with an [and]/[or] pair. *)

(** How translators protect unsafe stores and indirect branches:
    - [Off]: no protection (trusted modules, native compiler baselines);
    - [Sandbox]: classic SFI forcing — addresses are masked into the
      segment (the configuration the paper measures);
    - [Guard]: check-and-trap — an out-of-segment access raises the OmniVM
      access-violation exception (the virtual exception model). *)
type mode = Off | Sandbox | Guard

type t = {
  mode : mode;
  data_base : int;
  data_mask : int;  (** segment size - 1 *)
  code_base : int;
  code_mask : int;
  protect_reads : bool;
      (** also check loads — the read-protection capability the paper cites
          but does not incorporate (§1); off in the measured
          configuration *)
}

val make : ?mode:mode -> ?protect_reads:bool -> unit -> t
(** Policy for the standard module layout ({!Omnivm.Layout}); [mode]
    defaults to [Sandbox], [protect_reads] to [false]. *)

val off : t
(** No protection. *)

val sandbox_data : t -> int -> int
(** The value an address is forced to by the data-segment sandboxing
    sequence: [(addr land data_mask) lor data_base]. *)

val sandbox_code : t -> int -> int

val in_data : t -> int -> bool
val in_code : t -> int -> bool

val safe_sp_disp : int
(** Stack-pointer-relative accesses with displacements below this bound
    skip SFI checks; translators maintain the invariant that sp stays
    inside the data segment. *)

val enabled : t -> bool
