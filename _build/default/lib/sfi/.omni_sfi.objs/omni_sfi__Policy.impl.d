lib/sfi/policy.ml: Omnivm
