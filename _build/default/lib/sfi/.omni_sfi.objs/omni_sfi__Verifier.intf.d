lib/sfi/verifier.mli:
