lib/sfi/policy.mli:
