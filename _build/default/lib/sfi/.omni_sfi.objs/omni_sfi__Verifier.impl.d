lib/sfi/verifier.ml: Array Policy Printf
