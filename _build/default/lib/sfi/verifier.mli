(** Static SFI verifier over an abstract view of translated native code.

    Each target provides a [summarize] function mapping its instruction
    stream to the events below (see {!Omni_targets.Risc_verify} and
    {!Omni_targets.X86_verify}); the verifier then checks the Wahbe-style
    invariant: every unsafe store and indirect branch goes through a
    properly sandboxed dedicated register, stack-pointer discipline is
    maintained, and all displacements stay within the segment guard zone.

    The check is a linear scan — per-instruction, not per-path — which is
    what makes load-time verification cheap. *)

type event =
  | Sandbox_data_def  (** dedicated register masked/boxed for the data seg *)
  | Sandbox_code_def
  | Dedicated_clobber of string
      (** dedicated register written in a way that breaks the invariant *)
  | Store_via_dedicated of { disp : int }
  | Store_via_sp of { disp : int }
  | Store_unsafe of string
  | Jump_via_dedicated
  | Jump_unsafe of string
  | Sp_adjust_const of int
  | Sp_clobber of string
  | Neutral  (** no bearing on the SFI invariant *)

type failure = { index : int; reason : string }

val verify : event array -> (unit, failure) result
