(* Static SFI verifier over an abstract view of translated native code.

   Each target provides a [summarize] function mapping its instructions to
   the events below; the verifier then checks the Wahbe-style invariant:

   1. dedicated registers are written only by the blessed sandboxing
      sequence (so their contents always point into the proper segment,
      even between the two halves of the sequence), and
   2. every unsafe store's address and every indirect branch target is a
      dedicated register with a small displacement.

   Because the invariant is per-instruction (not per-path), a linear scan
   suffices: no control-flow analysis is needed, which is what makes
   load-time verification cheap. *)

type event =
  | Sandbox_data_def (* dedicated-data := (x & data_mask) | data_base *)
  | Sandbox_code_def (* dedicated-code := (x & code_mask) | code_base *)
  | Dedicated_clobber of string (* dedicated register written another way *)
  | Store_via_dedicated of { disp : int }
  | Store_via_sp of { disp : int }
  | Store_unsafe of string
  | Jump_via_dedicated
  | Jump_unsafe of string
  | Sp_adjust_const of int (* sp := sp + small constant *)
  | Sp_clobber of string (* sp written from an arbitrary value, unsandboxed *)
  | Neutral

type failure = { index : int; reason : string }

let verify (events : event array) : (unit, failure) result =
  let fail index reason = Error { index; reason } in
  let max_disp = Policy.safe_sp_disp in
  let rec go i =
    if i >= Array.length events then Ok ()
    else
      match events.(i) with
      | Sandbox_data_def | Sandbox_code_def | Neutral -> go (i + 1)
      | Dedicated_clobber what ->
          fail i (Printf.sprintf "dedicated register clobbered by %s" what)
      | Store_via_dedicated { disp } ->
          (* small negative displacements fall into the guard zone below
             the segment (unmapped), which is equally safe *)
          if disp > -max_disp && disp < max_disp then go (i + 1)
          else fail i (Printf.sprintf "store displacement %d too large" disp)
      | Store_via_sp { disp } ->
          if disp > -max_disp && disp < max_disp then go (i + 1)
          else
            fail i (Printf.sprintf "sp-relative displacement %d too large" disp)
      | Store_unsafe what ->
          fail i (Printf.sprintf "unprotected store: %s" what)
      | Jump_via_dedicated -> go (i + 1)
      | Jump_unsafe what ->
          fail i (Printf.sprintf "unprotected indirect branch: %s" what)
      | Sp_adjust_const k ->
          if abs k < max_disp then go (i + 1)
          else fail i (Printf.sprintf "sp adjusted by %d (too large)" k)
      | Sp_clobber what ->
          fail i (Printf.sprintf "sp set from arbitrary value by %s" what)
  in
  go 0
