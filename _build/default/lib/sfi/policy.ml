(* Software fault isolation policy (Wahbe et al., SOSP'93; paper section 1).

   A mobile module owns a code segment and a data segment, each a
   power-of-two-sized region whose base is aligned to its size. Translators
   enforce, at load time, that

   - every unsafe store goes through a dedicated register whose value has
     been forced into the data segment:  dr := (addr & mask) | base
   - every indirect branch goes through a dedicated register forced into
     the code segment the same way.

   [Sandbox] is the classic forcing scheme the paper measures; [Guard]
   checks and raises the OmniVM access-violation exception instead (the
   virtual exception model); [Off] emits no protection (trusted modules /
   the native baselines). *)

type mode = Off | Sandbox | Guard

type t = {
  mode : mode;
  data_base : int;
  data_mask : int; (* size - 1 *)
  code_base : int;
  code_mask : int;
  protect_reads : bool;
      (* also check loads: the read-protection capability the paper cites
         from Wahbe et al. but did not incorporate (section 1). Off in the
         measured configuration. *)
}

let make ?(mode = Sandbox) ?(protect_reads = false) () =
  {
    mode;
    data_base = Omnivm.Layout.data_base;
    data_mask = Omnivm.Layout.data_mask;
    code_base = Omnivm.Layout.code_base;
    code_mask = Omnivm.Layout.code_mask;
    protect_reads;
  }

let off = make ~mode:Off ()

(* The value an address is forced to by the data-segment sandboxing
   sequence. *)
let sandbox_data t addr = addr land t.data_mask lor t.data_base
let sandbox_code t addr = addr land t.code_mask lor t.code_base

let in_data t addr = addr land lnot t.data_mask = t.data_base
let in_code t addr = addr land lnot t.code_mask = t.code_base

(* The stack pointer is treated as a safe register: translators keep the
   invariant that sp stays inside the data segment (it is only modified by
   small constant increments, re-sandboxed when set from an arbitrary
   value), so sp-relative accesses with small displacements need no check.
   This is the standard SFI optimization for stack traffic and matches the
   overhead profile the paper reports. *)
let safe_sp_disp = 4096

let enabled t = t.mode <> Off
