(* Segmented byte-addressed memory with host-imposed permissions.

   The address space is a small set of mapped regions (code, data, host,
   ...). Multi-byte values are stored little-endian: OmniVM data formats are
   endian-neutral (paper 3.3), so an implementation picks an order; ours is
   little-endian and the [Ext]/[Ins] instructions give programs portable
   byte access. *)

type perm = { read : bool; write : bool; execute : bool }

let perm_rw = { read = true; write = true; execute = false }
let perm_r = { read = true; write = false; execute = false }
let perm_rx = { read = true; write = false; execute = true }
let perm_rwx = { read = true; write = true; execute = true }

type region = {
  name : string;
  base : int;
  size : int;
  mutable perm : perm;
  bytes : Bytes.t;
}

type t = { mutable regions : region array }

let create () = { regions = [||] }

let map t ~name ~base ~size ~perm =
  if size <= 0 then invalid_arg "Memory.map: size";
  if base land 0xFFF <> 0 then invalid_arg "Memory.map: base not page aligned";
  let r = { name; base; size; perm; bytes = Bytes.make size '\000' } in
  Array.iter
    (fun r' ->
      if base < r'.base + r'.size && r'.base < base + size then
        invalid_arg "Memory.map: overlapping regions")
    t.regions;
  t.regions <- Array.append t.regions [| r |];
  r

let region_of t addr =
  let n = Array.length t.regions in
  let rec go i =
    if i >= n then None
    else
      let r = Array.unsafe_get t.regions i in
      if addr >= r.base && addr < r.base + r.size then Some r else go (i + 1)
  in
  go 0

let find_region t name =
  let n = Array.length t.regions in
  let rec go i =
    if i >= n then None
    else
      let r = t.regions.(i) in
      if String.equal r.name name then Some r else go (i + 1)
  in
  go 0

let set_perm t name perm =
  match find_region t name with
  | Some r -> r.perm <- perm
  | None -> invalid_arg "Memory.set_perm: unknown region"

let fault addr access = raise (Fault.Vm_fault (Access_violation { addr; access }))

let locate t addr access =
  match region_of t addr with
  | None -> fault addr access
  | Some r ->
      let ok =
        match access with
        | Fault.Read -> r.perm.read
        | Fault.Write -> r.perm.write
        | Fault.Execute -> r.perm.execute
      in
      if not ok then fault addr access;
      r

(* Unsigned byte loads/stores. Widths > 1 may straddle region boundaries
   only within one region; a straddle is an access violation. *)

let load8 t addr =
  let addr = addr land 0xFFFFFFFF in
  let r = locate t addr Fault.Read in
  Char.code (Bytes.unsafe_get r.bytes (addr - r.base))

let store8 t addr v =
  let addr = addr land 0xFFFFFFFF in
  let r = locate t addr Fault.Write in
  Bytes.unsafe_set r.bytes (addr - r.base) (Char.unsafe_chr (v land 0xFF))

let check_span r addr width access =
  if addr - r.base + width > r.size then fault (addr + width - 1) access

let load16 t addr =
  let addr = addr land 0xFFFFFFFF in
  let r = locate t addr Fault.Read in
  check_span r addr 2 Fault.Read;
  let off = addr - r.base in
  Char.code (Bytes.unsafe_get r.bytes off)
  lor (Char.code (Bytes.unsafe_get r.bytes (off + 1)) lsl 8)

let store16 t addr v =
  let addr = addr land 0xFFFFFFFF in
  let r = locate t addr Fault.Write in
  check_span r addr 2 Fault.Write;
  let off = addr - r.base in
  Bytes.unsafe_set r.bytes off (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set r.bytes (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let load32 t addr =
  let addr = addr land 0xFFFFFFFF in
  let r = locate t addr Fault.Read in
  check_span r addr 4 Fault.Read;
  let off = addr - r.base in
  let b i = Char.code (Bytes.unsafe_get r.bytes (off + i)) in
  Omni_util.Word32.of_bytes (b 0) (b 1) (b 2) (b 3)

let store32 t addr v =
  let addr = addr land 0xFFFFFFFF in
  let r = locate t addr Fault.Write in
  check_span r addr 4 Fault.Write;
  let off = addr - r.base in
  let v = v land 0xFFFFFFFF in
  Bytes.unsafe_set r.bytes off (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set r.bytes (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set r.bytes (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set r.bytes (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let load64 t addr =
  let lo = load32 t addr land 0xFFFFFFFF in
  let hi = load32 t (addr + 4) land 0xFFFFFFFF in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

let store64 t addr v =
  store32 t addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  store32 t (addr + 4) (Int64.to_int (Int64.shift_right_logical v 32))

let load_float t addr = Int64.float_of_bits (load64 t addr)
let store_float t addr f = store64 t addr (Int64.bits_of_float f)

let load_single t addr =
  Int32.float_of_bits (Int32.of_int (load32 t addr land 0xFFFFFFFF))

let store_single t addr f =
  store32 t addr (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF)

(* Bulk access, bypassing permissions: used by the loader and the host,
   which are trusted. *)

let blit_in t ~addr (src : Bytes.t) =
  match region_of t addr with
  | None -> invalid_arg "Memory.blit_in: unmapped"
  | Some r ->
      if addr - r.base + Bytes.length src > r.size then
        invalid_arg "Memory.blit_in: overflow";
      Bytes.blit src 0 r.bytes (addr - r.base) (Bytes.length src)

let read_bytes t ~addr ~len =
  match region_of t addr with
  | None -> invalid_arg "Memory.read_bytes: unmapped"
  | Some r ->
      if addr - r.base + len > r.size then
        invalid_arg "Memory.read_bytes: overflow";
      Bytes.sub r.bytes (addr - r.base) len

(* Read a NUL-terminated string (for host calls that take C strings). *)
let read_cstring t ~addr ~max_len =
  let buf = Buffer.create 32 in
  let rec go a n =
    if n >= max_len then Buffer.contents buf
    else
      let c = load8 t a in
      if c = 0 then Buffer.contents buf
      else (
        Buffer.add_char buf (Char.chr c);
        go (a + 1) (n + 1))
  in
  go addr 0
