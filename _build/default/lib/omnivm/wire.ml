(* Binary wire format for mobile OmniVM modules.

   This is the portable artifact of the system: the compiler/linker emits
   these bytes, they are shipped unchanged to any host, and the host's loader
   decodes and translates them. Layout (all little-endian):

     "OMNI" magic | u16 version | u16 flags
     u32 entry address
     u32 instruction count | u32 data length | u32 bss size | u32 symbol count
     instruction stream (variable length)
     data bytes
     symbols: { u16 name length; name bytes; u32 address } *)

exception Bad_module of string

let version = 1

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_module s)) fmt

(* --- opcode assignments --- *)

let binop_code = function
  | Instr.Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Divu -> 4 | Rem -> 5
  | Remu -> 6 | And -> 7 | Or -> 8 | Xor -> 9 | Sll -> 10 | Srl -> 11
  | Sra -> 12 | Slt -> 13 | Sltu -> 14

let binop_of_code = function
  | 0 -> Instr.Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Divu | 5 -> Rem
  | 6 -> Remu | 7 -> And | 8 -> Or | 9 -> Xor | 10 -> Sll | 11 -> Srl
  | 12 -> Sra | 13 -> Slt | 14 -> Sltu
  | c -> bad "bad binop code %d" c

let cond_code = function
  | Instr.Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
  | Ltu -> 6 | Leu -> 7 | Gtu -> 8 | Geu -> 9

let cond_of_code = function
  | 0 -> Instr.Eq | 1 -> Ne | 2 -> Lt | 3 -> Le | 4 -> Gt | 5 -> Ge
  | 6 -> Ltu | 7 -> Leu | 8 -> Gtu | 9 -> Geu
  | c -> bad "bad cond code %d" c

let width_code w signed =
  match (w, signed) with
  | Instr.W8, false -> 0
  | Instr.W8, true -> 1
  | Instr.W16, false -> 2
  | Instr.W16, true -> 3
  | Instr.W32, _ -> 4

let width_of_code = function
  | 0 -> (Instr.W8, false)
  | 1 -> (Instr.W8, true)
  | 2 -> (Instr.W16, false)
  | 3 -> (Instr.W16, true)
  | 4 -> (Instr.W32, true)
  | c -> bad "bad width code %d" c

let swidth_code = function Instr.W8 -> 0 | W16 -> 1 | W32 -> 2

let swidth_of_code = function
  | 0 -> Instr.W8 | 1 -> W16 | 2 -> W32 | c -> bad "bad store width %d" c

let prec_code = function Instr.Single -> 0 | Double -> 1
let prec_of_code = function
  | 0 -> Instr.Single | 1 -> Double | c -> bad "bad precision %d" c

let fbinop_code = function
  | Instr.Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3

let fbinop_of_code = function
  | 0 -> Instr.Fadd | 1 -> Fsub | 2 -> Fmul | 3 -> Fdiv
  | c -> bad "bad fbinop %d" c

let funop_code = function Instr.Fneg -> 0 | Fabs -> 1 | Fmov -> 2
let funop_of_code = function
  | 0 -> Instr.Fneg | 1 -> Fabs | 2 -> Fmov | c -> bad "bad funop %d" c

let fcmp_code = function Instr.Feq -> 0 | Flt -> 1 | Fle -> 2
let fcmp_of_code = function
  | 0 -> Instr.Feq | 1 -> Flt | 2 -> Fle | c -> bad "bad fcmp %d" c

(* --- primitive writers --- *)

let w8 b v = Buffer.add_char b (Char.chr (v land 0xFF))
let w16 b v = w8 b v; w8 b (v lsr 8)
let w32 b v =
  let v = v land 0xFFFFFFFF in
  w8 b v; w8 b (v lsr 8); w8 b (v lsr 16); w8 b (v lsr 24)
let w64 b v =
  w32 b (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  w32 b (Int64.to_int (Int64.shift_right_logical v 32))

let encode_instr b (i : int Instr.t) =
  match i with
  | Nop -> w8 b 0
  | Binop (op, rd, rs1, rs2) ->
      w8 b 1; w8 b (binop_code op); w8 b rd; w8 b rs1; w8 b rs2
  | Binopi (op, rd, rs1, imm) ->
      w8 b 2; w8 b (binop_code op); w8 b rd; w8 b rs1; w32 b imm
  | Li (rd, imm) -> w8 b 3; w8 b rd; w32 b imm
  | Load (w, s, rd, base, off) ->
      w8 b 4; w8 b (width_code w s); w8 b rd; w8 b base; w32 b off
  | Store (w, rv, base, off) ->
      w8 b 5; w8 b (swidth_code w); w8 b rv; w8 b base; w32 b off
  | Fload (p, fd, base, off) ->
      w8 b 6; w8 b (prec_code p); w8 b fd; w8 b base; w32 b off
  | Fstore (p, fv, base, off) ->
      w8 b 7; w8 b (prec_code p); w8 b fv; w8 b base; w32 b off
  | Fbinop (op, p, fd, fs1, fs2) ->
      w8 b 8; w8 b ((fbinop_code op lsl 1) lor prec_code p);
      w8 b fd; w8 b fs1; w8 b fs2
  | Funop (op, p, fd, fs) ->
      w8 b 9; w8 b ((funop_code op lsl 1) lor prec_code p); w8 b fd; w8 b fs
  | Fcmp (op, p, rd, fs1, fs2) ->
      w8 b 10; w8 b ((fcmp_code op lsl 1) lor prec_code p);
      w8 b rd; w8 b fs1; w8 b fs2
  | Fli (p, fd, v) ->
      w8 b 11; w8 b (prec_code p); w8 b fd; w64 b (Int64.bits_of_float v)
  | Cvt_f_i (p, fd, rs) -> w8 b 12; w8 b (prec_code p); w8 b fd; w8 b rs
  | Cvt_i_f (p, rd, fs) -> w8 b 13; w8 b (prec_code p); w8 b rd; w8 b fs
  | Cvt_d_s (fd, fs) -> w8 b 14; w8 b fd; w8 b fs
  | Cvt_s_d (fd, fs) -> w8 b 15; w8 b fd; w8 b fs
  | Br (c, rs1, rs2, l) ->
      w8 b 16; w8 b (cond_code c); w8 b rs1; w8 b rs2; w32 b l
  | Bri (c, rs1, imm, l) ->
      w8 b 17; w8 b (cond_code c); w8 b rs1; w32 b imm; w32 b l
  | J l -> w8 b 18; w32 b l
  | Jal l -> w8 b 19; w32 b l
  | Jr rs -> w8 b 20; w8 b rs
  | Jalr (rd, rs) -> w8 b 21; w8 b rd; w8 b rs
  | Ext (rd, rs, pos, len) -> w8 b 22; w8 b rd; w8 b rs; w8 b pos; w8 b len
  | Ins (rd, rs, pos, len) -> w8 b 23; w8 b rd; w8 b rs; w8 b pos; w8 b len
  | Hcall n -> w8 b 24; w16 b n
  | Trap n -> w8 b 25; w16 b n

let encode (exe : Exe.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "OMNI";
  w16 b version;
  w16 b 0;
  w32 b exe.entry;
  w32 b (Array.length exe.text);
  w32 b (Bytes.length exe.data);
  w32 b exe.bss_size;
  w32 b (List.length exe.symbols);
  Array.iter (encode_instr b) exe.text;
  Buffer.add_bytes b exe.data;
  List.iter
    (fun (name, addr) ->
      w16 b (String.length name);
      Buffer.add_string b name;
      w32 b addr)
    exe.symbols;
  Buffer.contents b

(* --- decoding --- *)

type cursor = { s : string; mutable pos : int }

let r8 c =
  if c.pos >= String.length c.s then bad "truncated module";
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r16 c = let a = r8 c in a lor (r8 c lsl 8)
let r32 c = let a = r16 c in a lor (r16 c lsl 16)
let r64 c =
  let lo = Int64.of_int (r32 c) in
  let hi = Int64.of_int (r32 c) in
  Int64.logor lo (Int64.shift_left hi 32)

let reg c =
  let r = r8 c in
  if r > 15 then bad "bad register %d" r;
  r

let s32 v = Omni_util.Word32.of_int v

let decode_instr c : int Instr.t =
  match r8 c with
  | 0 -> Nop
  | 1 ->
      let op = binop_of_code (r8 c) in
      let rd = reg c in let rs1 = reg c in let rs2 = reg c in
      Binop (op, rd, rs1, rs2)
  | 2 ->
      let op = binop_of_code (r8 c) in
      let rd = reg c in let rs1 = reg c in let imm = s32 (r32 c) in
      Binopi (op, rd, rs1, imm)
  | 3 -> let rd = reg c in Li (rd, s32 (r32 c))
  | 4 ->
      let w, s = width_of_code (r8 c) in
      let rd = reg c in let base = reg c in
      Load (w, s, rd, base, s32 (r32 c))
  | 5 ->
      let w = swidth_of_code (r8 c) in
      let rv = reg c in let base = reg c in
      Store (w, rv, base, s32 (r32 c))
  | 6 ->
      let p = prec_of_code (r8 c) in
      let fd = reg c in let base = reg c in
      Fload (p, fd, base, s32 (r32 c))
  | 7 ->
      let p = prec_of_code (r8 c) in
      let fv = reg c in let base = reg c in
      Fstore (p, fv, base, s32 (r32 c))
  | 8 ->
      let sub = r8 c in
      let op = fbinop_of_code (sub lsr 1) and p = prec_of_code (sub land 1) in
      let fd = reg c in let fs1 = reg c in let fs2 = reg c in
      Fbinop (op, p, fd, fs1, fs2)
  | 9 ->
      let sub = r8 c in
      let op = funop_of_code (sub lsr 1) and p = prec_of_code (sub land 1) in
      let fd = reg c in let fs = reg c in
      Funop (op, p, fd, fs)
  | 10 ->
      let sub = r8 c in
      let op = fcmp_of_code (sub lsr 1) and p = prec_of_code (sub land 1) in
      let rd = reg c in let fs1 = reg c in let fs2 = reg c in
      Fcmp (op, p, rd, fs1, fs2)
  | 11 ->
      let p = prec_of_code (r8 c) in
      let fd = reg c in
      Fli (p, fd, Int64.float_of_bits (r64 c))
  | 12 ->
      let p = prec_of_code (r8 c) in
      let fd = reg c in let rs = reg c in
      Cvt_f_i (p, fd, rs)
  | 13 ->
      let p = prec_of_code (r8 c) in
      let rd = reg c in let fs = reg c in
      Cvt_i_f (p, rd, fs)
  | 14 -> let fd = reg c in let fs = reg c in Cvt_d_s (fd, fs)
  | 15 -> let fd = reg c in let fs = reg c in Cvt_s_d (fd, fs)
  | 16 ->
      let cond = cond_of_code (r8 c) in
      let rs1 = reg c in let rs2 = reg c in
      Br (cond, rs1, rs2, r32 c)
  | 17 ->
      let cond = cond_of_code (r8 c) in
      let rs1 = reg c in let imm = s32 (r32 c) in
      Bri (cond, rs1, imm, r32 c)
  | 18 -> J (r32 c)
  | 19 -> Jal (r32 c)
  | 20 -> Jr (reg c)
  | 21 -> let rd = reg c in let rs = reg c in Jalr (rd, rs)
  | 22 ->
      let rd = reg c in let rs = reg c in
      let pos = r8 c in let len = r8 c in
      Ext (rd, rs, pos, len)
  | 23 ->
      let rd = reg c in let rs = reg c in
      let pos = r8 c in let len = r8 c in
      Ins (rd, rs, pos, len)
  | 24 -> Hcall (r16 c)
  | 25 -> Trap (r16 c)
  | op -> bad "bad opcode %d" op

let decode (s : string) : Exe.t =
  let c = { s; pos = 0 } in
  if String.length s < 4 || not (String.equal (String.sub s 0 4) "OMNI") then
    bad "bad magic";
  c.pos <- 4;
  let v = r16 c in
  if v <> version then bad "unsupported version %d" v;
  let _flags = r16 c in
  let entry = r32 c in
  let count = r32 c in
  let data_len = r32 c in
  let bss_size = r32 c in
  let nsyms = r32 c in
  if count > 0x400000 then bad "unreasonable instruction count";
  let text = Array.init count (fun _ -> decode_instr c) in
  if c.pos + data_len > String.length s then bad "truncated data";
  let data = Bytes.of_string (String.sub s c.pos data_len) in
  c.pos <- c.pos + data_len;
  let symbols =
    List.init nsyms (fun _ ->
        let len = r16 c in
        if c.pos + len > String.length s then bad "truncated symbol";
        let name = String.sub s c.pos len in
        c.pos <- c.pos + len;
        let addr = r32 c in
        (name, addr))
  in
  { Exe.text; entry; data; bss_size; symbols }
