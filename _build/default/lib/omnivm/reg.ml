(* OmniVM register file: 16 integer registers r0..r15 and 16 floating-point
   registers f0..f15 (paper, section 3.2).

   Integer conventions (defined by this implementation's ABI):
     r0          hardwired zero
     r1..r4      argument / result registers (caller-saved)
     r5..r9      temporaries (caller-saved)
     r10..r12    callee-saved
     r13         global pointer (reserved)
     r14         stack pointer
     r15         return address (link)

   Floating point: f1..f4 argument/result, f5..f9 temporaries (caller-saved),
   f10..f15 callee-saved, f0 temporary. *)

type t = int

let count = 16

let make i =
  if i < 0 || i >= count then invalid_arg "Reg.make" else i

let index r = r

let zero = 0
let gp = 13
let sp = 14
let ra = 15

let arg i =
  if i < 0 || i > 3 then invalid_arg "Reg.arg" else 1 + i

let ret = 1

let name r = Printf.sprintf "r%d" r
let fname r = Printf.sprintf "f%d" r

let pp fmt r = Format.pp_print_string fmt (name r)
let pp_f fmt r = Format.pp_print_string fmt (fname r)

(* Integer registers available to the register allocator when the register
   file is restricted to [n] registers (Table 2 experiment). The reserved
   registers (zero, gp, sp, ra) always exist; the allocatable pool is the
   prefix of r1..r12 of size [n - 4]. With n = 16 the pool is r1..r12. *)
let allocatable_ints ~regfile_size =
  if regfile_size < 6 || regfile_size > 16 then
    invalid_arg "Reg.allocatable_ints";
  let pool = regfile_size - 4 in
  List.init (min pool 12) (fun i -> 1 + i)

let allocatable_floats ~regfile_size =
  if regfile_size < 6 || regfile_size > 16 then
    invalid_arg "Reg.allocatable_floats";
  (* f0..f(n-1), all allocatable: no reserved FP registers. *)
  List.init regfile_size (fun i -> i)

let caller_saved_ints = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
let callee_saved_ints = [ 10; 11; 12 ]
let caller_saved_floats = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
let callee_saved_floats = [ 10; 11; 12; 13; 14; 15 ]
