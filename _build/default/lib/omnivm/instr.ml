(* The OmniVM instruction set (paper, section 3).

   A RISC-like, three-address, load/store instruction set with:
   - 32-bit immediates and 32-bit address offsets everywhere (3.4),
   - general compare-and-branch instructions on two registers or a register
     and an immediate (3.4),
   - byte/halfword/word integer memory access and IEEE single/double
     floating point (3.3),
   - endian-neutral extract/insert instructions (3.3),
   - a host-call instruction through which the runtime exports library
     functions to the module (section 4, "runtime environment").

   Instructions are polymorphic in the label type: the assembler works over
   symbolic (string) labels, linked executables over resolved 32-bit code
   addresses. *)

type binop =
  | Add | Sub | Mul | Div | Divu | Rem | Remu
  | And | Or | Xor
  | Sll | Srl | Sra
  | Slt | Sltu

type fbinop = Fadd | Fsub | Fmul | Fdiv
type funop = Fneg | Fabs | Fmov
type fcmp = Feq | Flt | Fle

(* Precision of a floating-point operation: IEEE single or double. *)
type fprec = Single | Double

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu

(* Memory access widths. Loads carry signedness for sub-word widths. *)
type mem_width = W8 | W16 | W32

type 'lab t =
  | Binop of binop * Reg.t * Reg.t * Reg.t        (* rd <- rs1 op rs2 *)
  | Binopi of binop * Reg.t * Reg.t * int         (* rd <- rs1 op imm32 *)
  | Li of Reg.t * int                             (* rd <- imm32 *)
  | Load of mem_width * bool * Reg.t * Reg.t * int
      (* width, signed, rd, base, off32: rd <- mem[base + off] *)
  | Store of mem_width * Reg.t * Reg.t * int
      (* width, rv, base, off32: mem[base + off] <- rv *)
  | Fload of fprec * Reg.t * Reg.t * int          (* fd <- mem[base + off] *)
  | Fstore of fprec * Reg.t * Reg.t * int         (* mem[base + off] <- fv *)
  | Fbinop of fbinop * fprec * Reg.t * Reg.t * Reg.t
  | Funop of funop * fprec * Reg.t * Reg.t
  | Fcmp of fcmp * fprec * Reg.t * Reg.t * Reg.t  (* rd <- fs1 cmp fs2 *)
  | Fli of fprec * Reg.t * float                  (* fd <- constant *)
  | Cvt_f_i of fprec * Reg.t * Reg.t              (* fd <- (fp) rs *)
  | Cvt_i_f of fprec * Reg.t * Reg.t              (* rd <- (int) fs, trunc *)
  | Cvt_d_s of Reg.t * Reg.t                      (* fd(double) <- fs(single) *)
  | Cvt_s_d of Reg.t * Reg.t                      (* fd(single) <- fs(double) *)
  | Br of cond * Reg.t * Reg.t * 'lab             (* if rs1 cond rs2 goto l *)
  | Bri of cond * Reg.t * int * 'lab              (* if rs1 cond imm goto l *)
  | J of 'lab
  | Jal of 'lab                                   (* ra <- pc+4; goto l *)
  | Jr of Reg.t                                   (* goto rs *)
  | Jalr of Reg.t * Reg.t                         (* rd <- pc+4; goto rs *)
  | Ext of Reg.t * Reg.t * int * int
      (* rd <- bytes [pos, pos+len) of rs, zero-extended (endian-neutral) *)
  | Ins of Reg.t * Reg.t * int * int
      (* bytes [pos, pos+len) of rd <- low bytes of rs *)
  | Hcall of int                                  (* host call by index *)
  | Trap of int                                   (* raise VM exception *)
  | Nop

let map_label f = function
  | Br (c, a, b, l) -> Br (c, a, b, f l)
  | Bri (c, a, i, l) -> Bri (c, a, i, f l)
  | J l -> J (f l)
  | Jal l -> Jal (f l)
  | Binop (o, a, b, c) -> Binop (o, a, b, c)
  | Binopi (o, a, b, c) -> Binopi (o, a, b, c)
  | Li (a, b) -> Li (a, b)
  | Load (w, s, a, b, c) -> Load (w, s, a, b, c)
  | Store (w, a, b, c) -> Store (w, a, b, c)
  | Fload (p, a, b, c) -> Fload (p, a, b, c)
  | Fstore (p, a, b, c) -> Fstore (p, a, b, c)
  | Fbinop (o, p, a, b, c) -> Fbinop (o, p, a, b, c)
  | Funop (o, p, a, b) -> Funop (o, p, a, b)
  | Fcmp (o, p, a, b, c) -> Fcmp (o, p, a, b, c)
  | Fli (p, a, v) -> Fli (p, a, v)
  | Cvt_f_i (p, a, b) -> Cvt_f_i (p, a, b)
  | Cvt_i_f (p, a, b) -> Cvt_i_f (p, a, b)
  | Cvt_d_s (a, b) -> Cvt_d_s (a, b)
  | Cvt_s_d (a, b) -> Cvt_s_d (a, b)
  | Jr a -> Jr a
  | Jalr (a, b) -> Jalr (a, b)
  | Ext (a, b, p, n) -> Ext (a, b, p, n)
  | Ins (a, b, p, n) -> Ins (a, b, p, n)
  | Hcall n -> Hcall n
  | Trap n -> Trap n
  | Nop -> Nop

let label = function
  | Br (_, _, _, l) | Bri (_, _, _, l) | J l | Jal l -> Some l
  | Binop _ | Binopi _ | Li _ | Load _ | Store _ | Fload _ | Fstore _
  | Fbinop _ | Funop _ | Fcmp _ | Fli _ | Cvt_f_i _ | Cvt_i_f _ | Cvt_d_s _
  | Cvt_s_d _ | Jr _ | Jalr _ | Ext _ | Ins _ | Hcall _ | Trap _ | Nop ->
      None

(* Does control flow unconditionally leave this instruction? *)
let is_terminator = function
  | J _ | Jr _ | Trap _ -> true
  | Br _ | Bri _ | Jal _ | Jalr _ | Binop _ | Binopi _ | Li _ | Load _
  | Store _ | Fload _ | Fstore _ | Fbinop _ | Funop _ | Fcmp _ | Fli _
  | Cvt_f_i _ | Cvt_i_f _ | Cvt_d_s _ | Cvt_s_d _ | Ext _ | Ins _ | Hcall _
  | Nop ->
      false

let negate_cond = function
  | Eq -> Ne | Ne -> Eq
  | Lt -> Ge | Ge -> Lt
  | Le -> Gt | Gt -> Le
  | Ltu -> Geu | Geu -> Ltu
  | Leu -> Gtu | Gtu -> Leu

(* [swap_cond c] is the condition c' with [a c b] iff [b c' a]. *)
let swap_cond = function
  | Eq -> Eq | Ne -> Ne
  | Lt -> Gt | Gt -> Lt
  | Le -> Ge | Ge -> Le
  | Ltu -> Gtu | Gtu -> Ltu
  | Leu -> Geu | Geu -> Leu

let eval_cond c a b =
  let module W = Omni_util.Word32 in
  match c with
  | Eq -> W.eq a b
  | Ne -> not (W.eq a b)
  | Lt -> W.lt a b
  | Le -> W.le a b
  | Gt -> W.lt b a
  | Ge -> W.le b a
  | Ltu -> W.ltu a b
  | Leu -> W.leu a b
  | Gtu -> W.ltu b a
  | Geu -> W.leu b a

let eval_binop op a b =
  let module W = Omni_util.Word32 in
  match op with
  | Add -> W.add a b
  | Sub -> W.sub a b
  | Mul -> W.mul a b
  | Div -> W.div a b
  | Divu -> W.divu a b
  | Rem -> W.rem a b
  | Remu -> W.remu a b
  | And -> W.logand a b
  | Or -> W.logor a b
  | Xor -> W.logxor a b
  | Sll -> W.shift_left a (W.to_unsigned b land 31)
  | Srl -> W.shift_right_logical a (W.to_unsigned b land 31)
  | Sra -> W.shift_right_arith a (W.to_unsigned b land 31)
  | Slt -> if W.lt a b then 1 else 0
  | Sltu -> if W.ltu a b then 1 else 0

(* --- pretty printing (canonical assembly syntax) --- *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
  | Divu -> "divu" | Rem -> "rem" | Remu -> "remu" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Slt -> "slt" | Sltu -> "sltu"

let fbinop_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let funop_name = function Fneg -> "fneg" | Fabs -> "fabs" | Fmov -> "fmov"
let fcmp_name = function Feq -> "feq" | Flt -> "flt" | Fle -> "fle"
let prec_suffix = function Single -> "s" | Double -> "d"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt"
  | Ge -> "ge" | Ltu -> "ltu" | Leu -> "leu" | Gtu -> "gtu" | Geu -> "geu"

let load_name w signed =
  match (w, signed) with
  | W8, true -> "lb" | W8, false -> "lbu"
  | W16, true -> "lh" | W16, false -> "lhu"
  | W32, _ -> "lw"

let store_name = function W8 -> "sb" | W16 -> "sh" | W32 -> "sw"

let pp pp_lab fmt i =
  let p format = Format.fprintf fmt format in
  let r = Reg.name and f = Reg.fname in
  match i with
  | Binop (op, rd, rs1, rs2) ->
      p "%s %s, %s, %s" (binop_name op) (r rd) (r rs1) (r rs2)
  | Binopi (op, rd, rs1, imm) ->
      p "%si %s, %s, %d" (binop_name op) (r rd) (r rs1) imm
  | Li (rd, imm) -> p "li %s, %d" (r rd) imm
  | Load (w, s, rd, base, off) ->
      p "%s %s, %d(%s)" (load_name w s) (r rd) off (r base)
  | Store (w, rv, base, off) ->
      p "%s %s, %d(%s)" (store_name w) (r rv) off (r base)
  | Fload (pr, fd, base, off) ->
      p "fl%s %s, %d(%s)" (prec_suffix pr) (f fd) off (r base)
  | Fstore (pr, fv, base, off) ->
      p "fs%s %s, %d(%s)" (prec_suffix pr) (f fv) off (r base)
  | Fbinop (op, pr, fd, fs1, fs2) ->
      p "%s.%s %s, %s, %s" (fbinop_name op) (prec_suffix pr) (f fd) (f fs1)
        (f fs2)
  | Funop (op, pr, fd, fs) ->
      p "%s.%s %s, %s" (funop_name op) (prec_suffix pr) (f fd) (f fs)
  | Fcmp (op, pr, rd, fs1, fs2) ->
      p "%s.%s %s, %s, %s" (fcmp_name op) (prec_suffix pr) (r rd) (f fs1)
        (f fs2)
  | Fli (pr, fd, v) -> p "fli.%s %s, %h" (prec_suffix pr) (f fd) v
  | Cvt_f_i (pr, fd, rs) -> p "cvt.%s.w %s, %s" (prec_suffix pr) (f fd) (r rs)
  | Cvt_i_f (pr, rd, fs) -> p "cvt.w.%s %s, %s" (prec_suffix pr) (r rd) (f fs)
  | Cvt_d_s (fd, fs) -> p "cvt.d.s %s, %s" (f fd) (f fs)
  | Cvt_s_d (fd, fs) -> p "cvt.s.d %s, %s" (f fd) (f fs)
  | Br (c, rs1, rs2, l) ->
      p "b%s %s, %s, %a" (cond_name c) (r rs1) (r rs2) pp_lab l
  | Bri (c, rs1, imm, l) ->
      p "b%si %s, %d, %a" (cond_name c) (r rs1) imm pp_lab l
  | J l -> p "j %a" pp_lab l
  | Jal l -> p "jal %a" pp_lab l
  | Jr rs -> p "jr %s" (r rs)
  | Jalr (rd, rs) -> p "jalr %s, %s" (r rd) (r rs)
  | Ext (rd, rs, pos, len) -> p "ext %s, %s, %d, %d" (r rd) (r rs) pos len
  | Ins (rd, rs, pos, len) -> p "ins %s, %s, %d, %d" (r rd) (r rs) pos len
  | Hcall n -> p "hcall %d" n
  | Trap n -> p "trap %d" n
  | Nop -> p "nop"

let to_string pp_lab i = Format.asprintf "%a" (pp pp_lab) i

let pp_string_label fmt s = Format.pp_print_string fmt s
let pp_addr_label fmt a = Format.fprintf fmt "0x%08x" (a land 0xFFFFFFFF)
