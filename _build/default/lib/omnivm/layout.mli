(** Address-space layout for a loaded mobile module.

    Each segment is a power-of-two-sized region whose base is aligned to
    its size, so software fault isolation can force an address into its
    segment with an [and]/[or] pair. *)

val code_base : int
val code_size : int
val data_base : int
val data_size : int

val host_base : int
(** A region standing in for memory owned by the host application, mapped
    on demand by the loader so tests and examples can demonstrate what SFI
    protects. *)

val host_size : int

val code_mask : int
(** [code_size - 1] *)

val data_mask : int

val reserved_data : int
(** Bytes at the bottom of the data segment reserved for the runtime
    (e.g. x86 register homes); the linker places globals above them. *)

val default_stack_size : int

val regsave_int_addr : int -> int
(** Memory home of an OmniVM integer register on targets that cannot map
    all 16 to machine registers. *)

val regsave_float_addr : int -> int

val in_code : int -> bool
val in_data : int -> bool

val initial_sp : int
(** Initial stack pointer: just below the top of the data segment. *)
