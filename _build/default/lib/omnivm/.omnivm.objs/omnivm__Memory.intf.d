lib/omnivm/memory.mli: Bytes
