lib/omnivm/exe.ml: Array Bytes Format Instr Layout List
