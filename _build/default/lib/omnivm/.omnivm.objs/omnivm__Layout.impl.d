lib/omnivm/layout.ml:
