lib/omnivm/hostcall.ml:
