lib/omnivm/reg.ml: Format List Printf
