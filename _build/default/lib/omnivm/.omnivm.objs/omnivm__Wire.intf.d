lib/omnivm/wire.mli: Exe
