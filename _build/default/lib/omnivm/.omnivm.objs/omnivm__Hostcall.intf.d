lib/omnivm/hostcall.mli:
