lib/omnivm/interp.mli: Exe Fault Instr Memory Reg
