lib/omnivm/wire.ml: Array Buffer Bytes Char Exe Instr Int64 List Omni_util Printf String
