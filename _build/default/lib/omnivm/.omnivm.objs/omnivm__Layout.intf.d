lib/omnivm/layout.mli:
