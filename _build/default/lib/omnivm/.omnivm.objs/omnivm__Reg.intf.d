lib/omnivm/reg.mli: Format
