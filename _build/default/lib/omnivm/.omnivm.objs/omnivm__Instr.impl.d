lib/omnivm/instr.ml: Format Omni_util Reg
