lib/omnivm/exe.mli: Bytes Format Instr
