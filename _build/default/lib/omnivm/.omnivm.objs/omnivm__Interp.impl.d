lib/omnivm/interp.ml: Array Exe Fault Float Instr Int32 Layout Memory Omni_util Reg
