lib/omnivm/fault.mli: Format
