lib/omnivm/fault.ml: Format Printf
