lib/omnivm/memory.ml: Array Buffer Bytes Char Fault Int32 Int64 Omni_util String
