(* Address-space layout for a loaded mobile module.

   OmniVM presents a segmented 32-bit address space. A module owns a code
   segment and a data segment; each is a power-of-two-sized region whose base
   is aligned to its size, so that software fault isolation can force an
   address into its segment with an and/or pair (Wahbe et al., SOSP'93):

       sandboxed = (addr land (size - 1)) lor base

   Host memory (the loading application's own data) lives outside both
   segments; protecting it from wild stores is the whole point. *)

let code_base = 0x10000000
let code_size = 0x01000000 (* 16 MiB *)
let data_base = 0x20000000
let data_size = 0x01000000 (* 16 MiB *)

(* A region standing in for memory owned by the host application, used by
   tests and examples to demonstrate that unsandboxed modules can corrupt it
   and sandboxed ones cannot. *)
let host_base = 0x40000000
let host_size = 0x00010000

let code_mask = code_size - 1
let data_mask = data_size - 1

(* Data segment internal layout: a small reserved runtime area at the very
   bottom (used e.g. by the x86 translator to home OmniVM registers that do
   not fit in the eight x86 registers), then globals, then heap, with the
   stack at the top growing down. *)
let reserved_data = 256
let default_stack_size = 0x00040000 (* 256 KiB *)

(* Memory homes for OmniVM integer and float registers on targets that
   cannot map all 16+16 to machine registers (paper 3.2: "on the x86, some
   registers are mapped to memory locations"). *)
let regsave_int_addr r = data_base + (4 * r)
let regsave_float_addr f = data_base + 64 + (8 * f)

let in_code addr = addr land lnot code_mask = code_base
let in_data addr = addr land lnot data_mask = data_base

let initial_sp = data_base + data_size - 16
