(** OmniVM registers: 16 integer (r0..r15) and 16 floating point (f0..f15).

    The integer ABI fixes r0 = zero, r13 = global pointer, r14 = stack
    pointer, r15 = return address. *)

type t = int

val count : int

val make : int -> t
(** @raise Invalid_argument outside [0, 16). *)

val index : t -> int

val zero : t
val gp : t
val sp : t
val ra : t

val arg : int -> t
(** [arg i] is the i-th (0-based, i <= 3) integer argument register. *)

val ret : t
(** Integer result register (r1). *)

val name : t -> string
val fname : t -> string
val pp : Format.formatter -> t -> unit
val pp_f : Format.formatter -> t -> unit

val allocatable_ints : regfile_size:int -> t list
(** Integer registers the compiler may allocate when the OmniVM register
    file is restricted to [regfile_size] registers (paper Table 2).
    [regfile_size] must be in [6, 16]. *)

val allocatable_floats : regfile_size:int -> t list

val caller_saved_ints : t list
val callee_saved_ints : t list
val caller_saved_floats : t list
val callee_saved_floats : t list
