(** Linked OmniVM executable: the in-memory form of a mobile code module.

    Code addresses are byte addresses in the code segment; instruction [i]
    of [text] lives at [Layout.code_base + 4 * i]. Branch and jump operands
    are resolved code addresses. *)

type t = {
  text : int Instr.t array;
  entry : int;  (** code address of the entry point *)
  data : Bytes.t;  (** initial data-segment image (initialized globals) *)
  bss_size : int;  (** zero-initialized bytes following [data] *)
  symbols : (string * int) list;  (** exported name -> address *)
}

val instr_size : int
(** Every instruction occupies one 4-byte code slot. *)

val code_addr : int -> int
(** [code_addr i] is the code address of instruction index [i]. *)

val index_of_addr : int -> int option
(** Inverse of {!code_addr}; [None] for misaligned or out-of-segment
    addresses. *)

val instr_count : t -> int

val globals_size : t -> int
(** Initialized data plus bss, in bytes. *)

val lookup_symbol : t -> string -> int option

val pp : Format.formatter -> t -> unit
(** Disassembly listing (entry, data sizes, one line per instruction). *)
