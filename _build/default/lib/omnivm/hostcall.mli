(** The host-call interface: the runtime environment's exported services
    (paper section 4 — memory management and I/O the host makes available
    to loaded modules). A module invokes export [n] with [Hcall n];
    arguments use r1..r4 / f1..f4 and results return in r1.

    This numbering is the ABI contract shared by the MiniC compiler, the
    OmniVM interpreter, every target simulator, and the host runtime. *)

type t =
  | Exit  (** r1 = status; terminates the module *)
  | Put_char  (** r1 = byte *)
  | Print_int  (** r1 = signed integer, printed in decimal *)
  | Print_string  (** r1 = address of a NUL-terminated string *)
  | Print_float  (** f1 = double, printed with 6 decimals *)
  | Sbrk  (** r1 = size; returns the base of a fresh heap block in r1 *)
  | Clock  (** returns an abstract tick counter in r1 *)
  | Set_handler  (** r1 = code address of the VM-fault handler; 0 clears *)
  | Host_service  (** host-defined extension point; r1..r4 -> r1 *)

val all : t list
val number : t -> int
val of_number : int -> t option
val name : t -> string
