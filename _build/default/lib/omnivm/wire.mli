(** Binary wire format for mobile OmniVM modules — the portable artifact of
    the system. The compiler/linker emits these bytes; they are shipped
    unchanged to any host, whose loader decodes and translates them.

    Layout (little-endian):
    ["OMNI"] magic, u16 version, u16 flags, u32 entry, u32 instruction
    count, u32 data length, u32 bss size, u32 symbol count, the
    variable-length instruction stream, the data image, and the symbol
    table. *)

exception Bad_module of string
(** Raised by {!decode} on malformed input (bad magic, unknown opcode,
    out-of-range register, truncation, unreasonable sizes). *)

val version : int

val encode : Exe.t -> string
val decode : string -> Exe.t
