(* Linked OmniVM executable: the mobile code module.

   Code addresses are byte addresses in the code segment; instruction [i] of
   [text] lives at [Layout.code_base + 4 * i]. Branch/jump labels are
   resolved code addresses. The [data] image is loaded at the bottom of the
   data segment. *)

type t = {
  text : int Instr.t array;
  entry : int; (* code address of the entry function *)
  data : Bytes.t; (* initial data-segment image (globals) *)
  bss_size : int; (* zero-initialized bytes after [data] *)
  symbols : (string * int) list; (* exported name -> code/data address *)
}

let instr_size = 4

let code_addr index = Layout.code_base + (instr_size * index)

let index_of_addr addr =
  let off = addr - Layout.code_base in
  if off < 0 || off land 3 <> 0 then None else Some (off / instr_size)

let instr_count t = Array.length t.text

let globals_size t = Bytes.length t.data + t.bss_size

let lookup_symbol t name =
  List.assoc_opt name t.symbols

let pp fmt t =
  Format.fprintf fmt "entry: 0x%08x@." t.entry;
  Format.fprintf fmt "data: %d bytes (+%d bss)@." (Bytes.length t.data)
    t.bss_size;
  Array.iteri
    (fun i ins ->
      Format.fprintf fmt "0x%08x: %a@." (code_addr i)
        (Instr.pp Instr.pp_addr_label) ins)
    t.text
