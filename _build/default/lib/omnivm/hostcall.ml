(* Host-call interface: the runtime environment exports a set of library
   functions (paper section 4: "memory management, threads, synchronization,
   and graphics that the host program can safely export to dynamically loaded
   Omniware modules"). A module invokes export [n] with the [Hcall n]
   instruction; arguments and results use the standard registers.

   This table is the ABI contract shared by the compiler (minic codegen),
   the interpreter, the target simulators, and the host runtime. *)

type t =
  | Exit (* r1 = status; terminates the module *)
  | Put_char (* r1 = byte *)
  | Print_int (* r1 = signed int *)
  | Print_string (* r1 = address of NUL-terminated string in data segment *)
  | Print_float (* f1 = double *)
  | Sbrk (* r1 = size; returns base of fresh heap block in r1 *)
  | Clock (* returns an abstract tick counter in r1 *)
  | Set_handler (* r1 = code address of VM-exception handler, 0 to clear *)
  | Host_service (* host-defined extension point; r1..r4 args, r1 result *)

let all =
  [ Exit; Put_char; Print_int; Print_string; Print_float; Sbrk; Clock;
    Set_handler; Host_service ]

let number = function
  | Exit -> 0
  | Put_char -> 1
  | Print_int -> 2
  | Print_string -> 3
  | Print_float -> 4
  | Sbrk -> 5
  | Clock -> 6
  | Set_handler -> 7
  | Host_service -> 8

let of_number = function
  | 0 -> Some Exit
  | 1 -> Some Put_char
  | 2 -> Some Print_int
  | 3 -> Some Print_string
  | 4 -> Some Print_float
  | 5 -> Some Sbrk
  | 6 -> Some Clock
  | 7 -> Some Set_handler
  | 8 -> Some Host_service
  | _ -> None

let name = function
  | Exit -> "exit"
  | Put_char -> "putchar"
  | Print_int -> "print_int"
  | Print_string -> "print_string"
  | Print_float -> "print_float"
  | Sbrk -> "sbrk"
  | Clock -> "clock"
  | Set_handler -> "set_handler"
  | Host_service -> "host_service"
