(** The OmniVM virtual exception model.

    Execution engines raise {!Vm_fault}; the engine then either delivers
    the fault to a handler the module registered through the set-handler
    host call (fault code in r1, handler cleared to prevent loops) or
    aborts the module, returning control to the host. *)

type access = Read | Write | Execute

type t =
  | Access_violation of { addr : int; access : access }
  | Misaligned of { addr : int; width : int }
  | Division_by_zero
  | Illegal_instruction of { pc : int }
  | Unauthorized_host_call of { index : int }
  | Stack_overflow
  | Explicit_trap of int

exception Vm_fault of t

val access_name : access -> string

val code : t -> int
(** The small integer delivered in r1 when a module handler is invoked. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
