(** Segmented, byte-addressed memory with host-imposed permissions.

    The address space is a set of non-overlapping mapped regions (code,
    data, host, ...). Multi-byte values are little-endian: OmniVM's data
    formats are endian-neutral (paper 3.3), so each implementation picks an
    order and programs use the [ext]/[ins] instructions for portable byte
    access.

    Access outside any region, against a region's permissions, or
    straddling a region boundary raises {!Fault.Vm_fault} with an
    access-violation payload. *)

type perm = { read : bool; write : bool; execute : bool }

val perm_rw : perm
val perm_r : perm
val perm_rx : perm
val perm_rwx : perm

type region = {
  name : string;
  base : int;
  size : int;
  mutable perm : perm;
  bytes : Bytes.t;
}

type t

val create : unit -> t

val map : t -> name:string -> base:int -> size:int -> perm:perm -> region
(** Map a fresh zero-filled region. [base] must be page (4 KiB) aligned.
    @raise Invalid_argument on overlap or bad arguments. *)

val region_of : t -> int -> region option
val find_region : t -> string -> region option

val set_perm : t -> string -> perm -> unit
(** Change a region's permissions by name (the host-imposed permission
    model of the paper's SDCA). *)

(** {2 Checked accesses} — loads return canonical {!Omni_util.Word32}
    values (unsigned for sub-word widths). *)

val load8 : t -> int -> int
val load16 : t -> int -> int
val load32 : t -> int -> int
val load64 : t -> int -> int64
val load_float : t -> int -> float
val load_single : t -> int -> float
val store8 : t -> int -> int -> unit
val store16 : t -> int -> int -> unit
val store32 : t -> int -> int -> unit
val store64 : t -> int -> int64 -> unit
val store_float : t -> int -> float -> unit
val store_single : t -> int -> float -> unit

(** {2 Trusted bulk access} — used by the loader and host; bypasses
    permissions. *)

val blit_in : t -> addr:int -> Bytes.t -> unit
val read_bytes : t -> addr:int -> len:int -> Bytes.t

val read_cstring : t -> addr:int -> max_len:int -> string
(** Read a NUL-terminated string (for host calls taking C strings). *)
