(* 32-bit two's-complement arithmetic over OCaml [int].

   Values are kept in canonical signed form: the unique representative in
   [-2^31, 2^31). All operations wrap modulo 2^32. OCaml's native [int] is
   63-bit on every platform we support, so intermediate products of two
   canonical values never overflow except for [mul], which we split. *)

type t = int

let mask = 0xFFFFFFFF
let sign_bit = 0x80000000

(* Canonicalize an arbitrary int to signed 32-bit. *)
let of_int x =
  let x = x land mask in
  if x land sign_bit <> 0 then x - (mask + 1) else x

let to_int x = x

(* Unsigned view in [0, 2^32). *)
let to_unsigned x = x land mask
let of_unsigned = of_int

let zero = 0
let one = 1
let minus_one = of_int (-1)
let min_int32 = -0x80000000
let max_int32 = 0x7FFFFFFF

let add a b = of_int (a + b)
let sub a b = of_int (a - b)
let neg a = of_int (- a)

(* Split multiplication: low 32 bits of the 64-bit product. Operands as
   unsigned; (a * b) mod 2^32 is sign-agnostic. *)
let mul a b =
  let a = to_unsigned a and b = to_unsigned b in
  let al = a land 0xFFFF and ah = a lsr 16 in
  let lo = al * b in
  let hi = (ah * (b land 0xFFFF)) lsl 16 in
  of_int (lo + hi)

exception Division_by_zero

(* Signed division truncating toward zero, like C. INT_MIN / -1 wraps. *)
let div a b =
  if b = 0 then raise Division_by_zero
  else if a = min_int32 && b = -1 then min_int32
  else
    let q = abs a / abs b in
    of_int (if (a < 0) <> (b < 0) then -q else q)

let rem a b =
  if b = 0 then raise Division_by_zero
  else if a = min_int32 && b = -1 then 0
  else
    let r = abs a mod abs b in
    of_int (if a < 0 then -r else r)

let divu a b =
  if b = 0 then raise Division_by_zero
  else of_int (to_unsigned a / to_unsigned b)

let remu a b =
  if b = 0 then raise Division_by_zero
  else of_int (to_unsigned a mod to_unsigned b)

let logand a b = of_int (a land b)
let logor a b = of_int (a lor b)
let logxor a b = of_int (a lxor b)
let lognot a = of_int (lnot a)

(* Shift amounts are taken modulo 32, like most hardware. *)
let shift_left a n = of_int ((to_unsigned a) lsl (n land 31))
let shift_right_logical a n = of_int ((to_unsigned a) lsr (n land 31))
let shift_right_arith a n = of_int (a asr (n land 31))

let eq (a : t) (b : t) = a = b
let lt (a : t) (b : t) = a < b
let le (a : t) (b : t) = a <= b
let ltu a b = to_unsigned a < to_unsigned b
let leu a b = to_unsigned a <= to_unsigned b

let compare (a : t) (b : t) = Stdlib.compare a b

(* Sign / zero extension of sub-word values. *)
let sext8 x = of_int ((x land 0xFF) lxor 0x80 - 0x80)
let zext8 x = x land 0xFF
let sext16 x = of_int ((x land 0xFFFF) lxor 0x8000 - 0x8000)
let zext16 x = x land 0xFFFF

(* Byte access, little-endian order of the canonical representation. *)
let byte x i = (to_unsigned x lsr (8 * i)) land 0xFF

let of_bytes b0 b1 b2 b3 =
  of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))

(* Float bridging: IEEE double <-> bits is provided by the runtime; single
   precision goes through Int32 conversions. *)
let bits_of_float_single f = of_int (Int32.to_int (Int32.bits_of_float f))
let float_of_bits_single x = Int32.float_of_bits (Int32.of_int (to_unsigned x land mask))

let to_hex x = Printf.sprintf "0x%08x" (to_unsigned x)
let pp fmt x = Format.fprintf fmt "%d" x
let pp_hex fmt x = Format.fprintf fmt "%s" (to_hex x)
