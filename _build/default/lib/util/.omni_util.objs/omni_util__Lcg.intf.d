lib/util/lcg.mli:
