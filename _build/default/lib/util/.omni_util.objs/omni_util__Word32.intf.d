lib/util/word32.mli: Format
