lib/util/word32.ml: Format Int32 Printf Stdlib
