lib/util/lcg.ml:
