(** 32-bit two's-complement machine words.

    The carrier is OCaml's [int]; every value is kept canonical in
    [-2{^31}, 2{^31}). All arithmetic wraps modulo 2{^32} with C-like
    signed/unsigned variants where the distinction matters. *)

type t = int

val of_int : int -> t
(** Canonicalize an arbitrary [int] (wraps modulo 2{^32}). *)

val to_int : t -> int
(** Identity; the canonical signed value. *)

val to_unsigned : t -> int
(** Unsigned view in [0, 2{^32}). *)

val of_unsigned : int -> t

val zero : t
val one : t
val minus_one : t
val min_int32 : t
val max_int32 : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

exception Division_by_zero

val div : t -> t -> t
(** Signed division truncating toward zero; [min_int32 / -1] wraps.
    @raise Division_by_zero on zero divisor. *)

val rem : t -> t -> t
val divu : t -> t -> t
val remu : t -> t -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** Shift amount is taken modulo 32. *)

val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

val eq : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val ltu : t -> t -> bool
val leu : t -> t -> bool
val compare : t -> t -> int

val sext8 : t -> t
val zext8 : t -> t
val sext16 : t -> t
val zext16 : t -> t

val byte : t -> int -> int
(** [byte x i] is byte [i] (0 = least significant) of [x]. *)

val of_bytes : int -> int -> int -> int -> t
(** [of_bytes b0 b1 b2 b3] assembles a word from least-significant-first
    bytes. *)

val bits_of_float_single : float -> t
val float_of_bits_single : t -> float

val to_hex : t -> string
val pp : Format.formatter -> t -> unit
val pp_hex : Format.formatter -> t -> unit
