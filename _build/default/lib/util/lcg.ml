(* Deterministic linear congruential generator (Numerical Recipes constants).
   Used for reproducible synthetic workload inputs and test data; the same
   generator is reimplemented inside the MiniC workloads so that host-side
   and module-side data agree. *)

type t = { mutable state : int }

let a = 1664525
let c = 1013904223

let create seed = { state = seed land 0xFFFFFFFF }

let next t =
  t.state <- (a * t.state + c) land 0xFFFFFFFF;
  t.state

(* Uniform in [0, bound). Uses the high bits, which are better mixed. *)
let int t bound =
  if bound <= 0 then invalid_arg "Lcg.int";
  (next t lsr 8) mod bound

let bool t = next t land 0x10000 <> 0

let float t =
  float_of_int (next t) /. 4294967296.0
