(** Deterministic 32-bit linear congruential generator for reproducible
    synthetic inputs. *)

type t

val create : int -> t
(** [create seed] starts a generator at [seed] (truncated to 32 bits). *)

val next : t -> int
(** Next raw 32-bit state, in [0, 2{^32}). *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [0, bound). [bound] must be positive. *)

val bool : t -> bool
val float : t -> float
(** Uniform-ish in [0, 1). *)
