lib/runtime/loader.mli: Exe Host Hostcall Interp Memory Omnivm
