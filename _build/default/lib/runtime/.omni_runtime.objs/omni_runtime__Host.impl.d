lib/runtime/host.ml: Array Buffer Char Fault Hostcall List Memory Omnivm Printf
