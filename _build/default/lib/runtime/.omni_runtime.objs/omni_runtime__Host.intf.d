lib/runtime/host.mli: Buffer Hostcall Memory Omnivm
