lib/runtime/loader.ml: Exe Host Hostcall Interp Layout Memory Omnivm Reg Wire
