(* The host execution environment.

   The host application loads mobile modules and exports library services to
   them (paper section 4: memory management etc.). The host decides which
   exports a given module may call; an unauthorized call is a VM fault, which
   is exactly the "calling unauthorized host functions" protection the paper
   requires of a mobile code system.

   This module is engine-agnostic: the OmniVM interpreter and all four
   target-machine simulators dispatch host calls through [handle]. *)

open Omnivm

type outcome =
  | Continue
  | Exit of int
  | Set_handler of int (* code address; engines update their fault handler *)

(* A host-call request, abstracted over the engine's register file. *)
type request = {
  index : int;
  arg : int -> int; (* i-th integer argument (0-based, from r1..) *)
  farg : int -> float; (* i-th float argument (from f1..) *)
  set_ret : int -> unit; (* write integer result to r1 *)
  mem : Memory.t;
}

type t = {
  out : Buffer.t;
  mutable brk : int; (* next free heap byte in the data segment *)
  heap_limit : int;
  mutable ticks : int;
  allowed : bool array; (* indexed by host-call number *)
  mutable service : (int -> int -> int -> int -> int) option;
      (* host-defined extension: receives r1..r4, returns r1 *)
}

let create ?(allow = Hostcall.all) ~heap_start ~heap_limit () =
  let allowed = Array.make 16 false in
  List.iter (fun c -> allowed.(Hostcall.number c) <- true) allow;
  { out = Buffer.create 256; brk = heap_start; heap_limit; ticks = 0;
    allowed; service = None }

let output t = Buffer.contents t.out
let clear_output t = Buffer.clear t.out
let set_service t f = t.service <- Some f

let align8 n = (n + 7) land lnot 7

let handle t (req : request) : outcome =
  t.ticks <- t.ticks + 1;
  match Hostcall.of_number req.index with
  | None -> raise (Fault.Vm_fault (Unauthorized_host_call { index = req.index }))
  | Some call ->
      if not t.allowed.(req.index) then
        raise (Fault.Vm_fault (Unauthorized_host_call { index = req.index }));
      (match call with
      | Hostcall.Exit -> Exit (req.arg 0)
      | Hostcall.Put_char ->
          Buffer.add_char t.out (Char.chr (req.arg 0 land 0xFF));
          Continue
      | Hostcall.Print_int ->
          Buffer.add_string t.out (string_of_int (req.arg 0));
          Continue
      | Hostcall.Print_string ->
          let s =
            Memory.read_cstring req.mem ~addr:(req.arg 0 land 0xFFFFFFFF)
              ~max_len:65536
          in
          Buffer.add_string t.out s;
          Continue
      | Hostcall.Print_float ->
          Buffer.add_string t.out (Printf.sprintf "%.6f" (req.farg 0));
          Continue
      | Hostcall.Sbrk ->
          let size = align8 (max 0 (req.arg 0)) in
          if t.brk + size > t.heap_limit then req.set_ret 0
          else begin
            req.set_ret t.brk;
            t.brk <- t.brk + size
          end;
          Continue
      | Hostcall.Clock ->
          req.set_ret t.ticks;
          Continue
      | Hostcall.Set_handler -> Set_handler (req.arg 0 land 0xFFFFFFFF)
      | Hostcall.Host_service ->
          (match t.service with
          | None ->
              raise
                (Fault.Vm_fault (Unauthorized_host_call { index = req.index }))
          | Some f -> req.set_ret (f (req.arg 0) (req.arg 1) (req.arg 2)
                                     (req.arg 3)));
          Continue)
