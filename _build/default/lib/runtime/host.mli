(** The host execution environment: the services a host application exports
    to loaded mobile modules, and the authority boundary between them.

    Engine-agnostic: the OmniVM interpreter and all target simulators
    dispatch host calls through {!handle}. *)

open Omnivm

(** What the engine should do after a host call. *)
type outcome =
  | Continue
  | Exit of int
  | Set_handler of int
      (** module registered a VM-fault handler at this code address *)

(** A host-call request, abstracted over the engine's register file. *)
type request = {
  index : int;  (** host-call number *)
  arg : int -> int;  (** i-th integer argument (0-based) *)
  farg : int -> float;  (** i-th float argument *)
  set_ret : int -> unit;  (** write the integer result *)
  mem : Memory.t;
}

type t = {
  out : Buffer.t;
  mutable brk : int;
  heap_limit : int;
  mutable ticks : int;
  allowed : bool array;
  mutable service : (int -> int -> int -> int -> int) option;
}

val create :
  ?allow:Hostcall.t list -> heap_start:int -> heap_limit:int -> unit -> t
(** [allow] is the set of services this module may call (default: all);
    calling anything else raises an unauthorized-host-call fault. *)

val output : t -> string
(** Everything the module has printed so far. *)

val clear_output : t -> unit

val set_service : t -> (int -> int -> int -> int -> int) -> unit
(** Install the host-defined extension service (host call 8): receives the
    module's four integer arguments, returns the result. *)

val handle : t -> request -> outcome
(** Dispatch one host call.
    @raise Omnivm.Fault.Vm_fault on unauthorized or unknown calls. *)
