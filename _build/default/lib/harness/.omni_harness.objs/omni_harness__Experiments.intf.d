lib/harness/experiments.mli: Omni_targets Omni_workloads
