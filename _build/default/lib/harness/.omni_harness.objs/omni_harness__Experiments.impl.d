lib/harness/experiments.ml: Array Buffer Filename Hashtbl List Minic Omni_sfi Omni_targets Omni_workloads Omnivm Omniware Option Printf String Sys
