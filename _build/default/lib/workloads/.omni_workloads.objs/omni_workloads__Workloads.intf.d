lib/workloads/workloads.mli:
