lib/workloads/workloads.ml: List Printf String
