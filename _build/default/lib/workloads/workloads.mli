(** The four SPEC92-analogue benchmark programs, written in MiniC.

    Each mirrors the computational character of the SPEC92 program the
    paper measures (DESIGN.md §2):

    - [li]: a small Lisp interpreter with a mark-sweep GC (pointer chasing,
      branches, call-heavy);
    - [compress]: LZW compression + decompression over synthetic text
      (integer ops, hash-table loads/stores);
    - [alvinn]: multi-layer-perceptron training (double-precision FP);
    - [eqntott]: product-term truth-table sorting dominated by a comparison
      routine called through qsort (integer compares, indirect calls).

    Inputs are generated in-program from a fixed-seed LCG, so every
    execution engine sees identical work; each program prints intermediate
    values and a final checksum. *)

type size =
  | Test  (** small: fast enough for the differential test suite *)
  | Ref  (** benchmark size used for EXPERIMENTS.md *)

type t = { name : string; source : string }

val li : size:size -> t
val compress : size:size -> t
val alvinn : size:size -> t
val eqntott : size:size -> t

val all : size:size -> t list
val by_name : size:size -> string -> t option
