(* omnirun: host application that loads and executes mobile OmniVM modules.

   Single-load mode (the original host):

     omnirun module.omni [--engine interp|mips|sparc|ppc|x86] [--no-sfi]
                         [--stats]

   Serving mode — many loads of few modules through the content-addressed
   store and memoizing translation cache:

     omnirun serve mod1.omni [mod2.omni ...]
             [--engine E] [--no-sfi] [--requests N] [--cache-cap K]
             [--stats]

   runs N requests round-robin over the given modules (each request on a
   fresh isolated image) and reports throughput plus the service counters.
   Identical module files are deduplicated; only the first request per
   (module, engine, SFI config) pays the translator. *)

module Api = Omniware.Api
module Service = Omni_service.Service

let read_file path = In_channel.with_open_bin path In_channel.input_all

let run_single args =
  let input = ref None in
  let engine = ref "interp" in
  let sfi = ref true in
  let stats = ref false in
  let spec =
    [ ("--engine", Arg.Set_string engine,
       "ENGINE interp|mips|sparc|ppc|x86 (default interp)");
      ("--no-sfi", Arg.Clear sfi, " translate without software fault isolation");
      ("--stats", Arg.Set stats, " print execution statistics") ]
  in
  Arg.parse_argv args spec (fun f -> input := Some f) "omnirun <module.omni>";
  match !input with
  | None ->
      prerr_endline "omnirun: no module";
      exit 2
  | Some path ->
      let result = Api.run_wire ~engine:!engine ~sfi:!sfi (read_file path) in
      print_string result.Api.output;
      if !stats then begin
        Printf.eprintf "engine:        %s\n" !engine;
        Printf.eprintf "instructions:  %d\n" result.Api.instructions;
        Printf.eprintf "cycles:        %d\n" result.Api.cycles
      end;
      exit result.Api.exit_code

let run_serve args =
  let inputs = ref [] in
  let engine = ref "interp" in
  let sfi = ref true in
  let requests = ref 16 in
  let cache_cap = ref 256 in
  let stats = ref false in
  let spec =
    [ ("--engine", Arg.Set_string engine,
       "ENGINE interp|mips|sparc|ppc|x86 (default interp)");
      ("--no-sfi", Arg.Clear sfi, " translate without software fault isolation");
      ("--requests", Arg.Set_int requests,
       "N total requests, round-robin over the modules (default 16)");
      ("--cache-cap", Arg.Set_int cache_cap,
       "K translation-cache capacity; 0 disables caching (default 256)");
      ("--stats", Arg.Set stats, " print service counters") ]
  in
  Arg.parse_argv args spec
    (fun f -> inputs := f :: !inputs)
    "omnirun serve <module.omni>...";
  let inputs = List.rev !inputs in
  if inputs = [] then begin
    prerr_endline "omnirun serve: no modules";
    exit 2
  end;
  let eng =
    match Api.engine_of_string !engine with
    | Some e -> e
    | None ->
        Printf.eprintf "omnirun serve: unknown engine %s\n" !engine;
        exit 2
  in
  let svc = Service.create ~cache_capacity:!cache_cap () in
  let handles =
    List.map (fun path -> Service.submit svc (read_file path)) inputs
  in
  let harr = Array.of_list handles in
  let reqs =
    Array.init !requests (fun i ->
        { Service.rq_handle = harr.(i mod Array.length harr);
          rq_engine = eng; rq_sfi = !sfi })
  in
  let report = Service.run_batch svc reqs in
  print_string (Service.render_batch report);
  if !stats then print_string (Service.render_stats svc);
  exit (if report.Service.br_failures = 0 then 0 else 1)

let () =
  let argv = Sys.argv in
  try
    if Array.length argv > 1 && argv.(1) = "serve" then
      (* re-seat argv so Arg reports "omnirun serve" on errors *)
      run_serve
        (Array.append
           [| argv.(0) ^ " serve" |]
           (Array.sub argv 2 (Array.length argv - 2)))
    else run_single argv
  with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0
  | Sys_error msg ->
      Printf.eprintf "omnirun: %s\n" msg;
      exit 2
  | Omnivm.Wire.Bad_module msg ->
      Printf.eprintf "omnirun: malformed module: %s\n" msg;
      exit 2
