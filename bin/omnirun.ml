(* omnirun: host application that loads and executes mobile OmniVM modules.

   Single-load mode (the original host):

     omnirun [--trace[=FILE]] [run] module.omni
             [--engine interp|mips|sparc|ppc|x86] [--no-sfi] [--stats]
             [--deadline SECS] [--crash-dir DIR]
             [--remote ADDR] [--read-timeout SECS]
             [--retries N] [--retry-base SECS] [--retry-deadline SECS]
             [--fallback-local]
             [--loopback] [--fault-rate P] [--fault-seed N]

   With --remote, the module is submitted to a live omnid daemon (ADDR
   is a Unix-socket path or host:port) and executed there; output, exit
   code, and statistics are the daemon's, bit-identical to a local run.
   --stats then additionally prints the daemon's service counters.

   Resilience: --retries N arms a retry policy (N attempts, exponential
   backoff from --retry-base, overall --retry-deadline) under which
   transient failures — timeouts, lost connections, frames damaged in
   transit — re-dial and re-send; --fallback-local degrades to
   in-process execution when the daemon stays unreachable (the result
   is identical — execution is deterministic). --loopback serves the
   request from an in-process daemon over the in-memory transport; with
   --fault-rate P each frame is damaged with probability P (seeded by
   --fault-seed, so runs reproduce) — the fault-smoke check drives
   exactly this.

   Serving mode — many loads of few modules through the content-addressed
   store and memoizing translation cache:

     omnirun [--trace[=FILE]] serve mod1.omni [mod2.omni ...]
             [--engine E] [--no-sfi] [--requests N] [--cache-cap K]
             [--stats] [--metrics]

   runs N requests round-robin over the given modules (each request on a
   fresh isolated image) and reports throughput. --stats prints the
   service counters as JSON; --metrics dumps the full metrics registry.
   Identical module files are deduplicated; only the first request per
   (module, engine, SFI config) pays the translator.

   Supervision: --deadline bounds the run's wall-clock time (a module
   exceeding it faults with deadline_exceeded, reported like any other
   fault); --crash-dir writes a self-contained crash report — fault,
   registers, memory window, the module bytes — as one JSON file per
   faulted run. Such a report is a replay bundle:

     omnirun replay crash-....json [--engine E]

   re-executes it in-process and asserts the same fault reproduces
   (deterministic faults; a deadline fault is transient and only
   re-observed, never asserted). Exit status: 0 reproduced/transient,
   1 diverged.

   Guest front-end — lift a StackVM guest program (assembly text or GSTK
   bytecode) to an OmniVM wire module:

     omnirun lift guest.gasm [-o out.omni] [--pool N]
             [--run [--oracle] [--engine E] [--no-sfi] [--crash-dir DIR]]

   Without --run, writes the lifted module (default <input>.omni). With
   --run, executes it directly; --oracle additionally runs the guest
   reference interpreter and exits 1 unless output and exit code are
   bit-identical. Crash reports record producer "stackvm"; plain runs
   of pre-built modules can declare their origin with
   omnirun module.omni --producer NAME.

   --trace emits one JSON line per completed pipeline span (decode, load,
   translate, verify, run, ...) to stderr, or to FILE with --trace=FILE. *)

module Api = Omniware.Api
module Service = Omni_service.Service
module Counters = Omni_service.Counters
module Supervise = Omni_service.Supervise
module Trace = Omni_obs.Trace
module Metrics = Omni_obs.Metrics

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --trace[=FILE] is pulled out of argv by a pre-scan: Arg cannot express
   a flag whose value is optional. *)
let extract_trace argv =
  let trace = ref `Off in
  let rest =
    List.filter
      (fun a ->
        if String.equal a "--trace" then begin
          trace := `Stderr;
          false
        end
        else if String.length a >= 8 && String.equal (String.sub a 0 8) "--trace="
        then begin
          trace := `File (String.sub a 8 (String.length a - 8));
          false
        end
        else true)
      (Array.to_list argv)
  in
  (!trace, Array.of_list rest)

(* Run [f] under a span tracer emitting JSON lines, handing [f] the
   tracer's metrics registry so it can report per-phase breakdowns.
   With tracing off, [f None] runs under the ambient null tracer. *)
let with_tracer trace (f : Metrics.t option -> 'a) : 'a =
  match trace with
  | `Off -> f None
  | (`Stderr | `File _) as dest ->
      let oc, close =
        match dest with
        | `Stderr -> (stderr, fun () -> flush stderr)
        | `File path ->
            let oc = open_out path in
            (oc, fun () -> close_out oc)
      in
      let metrics = Metrics.create () in
      let tracer =
        Trace.make ~metrics
          (Trace.Emit
             (fun s ->
               output_string oc (Trace.json_line s);
               output_char oc '\n'))
      in
      Fun.protect ~finally:close (fun () ->
          Trace.with_current tracer (fun () -> f (Some metrics)))

let parse_engine ~who s =
  match Api.engine_of_string s with
  | Ok e -> e
  | Error msg ->
      Printf.eprintf "%s: %s\n" who msg;
      exit 2

let run_single trace args =
  let input = ref None in
  let engine = ref "interp" in
  let sfi = ref true in
  let sfi_pad = ref "" in
  let stats = ref false in
  let deadline = ref 0.0 in
  let crash_dir = ref "" in
  let remote = ref "" in
  let read_timeout = ref 0.0 in
  let retries = ref 0 in
  let retry_base = ref Omni_net.Retry.default.Omni_net.Retry.base_delay_s in
  let retry_deadline = ref Omni_net.Retry.default.Omni_net.Retry.deadline_s in
  let fallback_local = ref false in
  let loopback = ref false in
  let fault_rate = ref 0.0 in
  let fault_seed = ref 42 in
  let want_cert = ref false in
  let producer = ref "" in
  let spec =
    [ ("--engine", Arg.Set_string engine,
       "ENGINE interp|fast|mips|sparc|ppc|x86 (default interp)");
      ("--no-sfi", Arg.Clear sfi, " translate without software fault isolation");
      ("--sfi-pad", Arg.Set_string sfi_pad,
       "MODE pad SFI masking sequences: none|nop|align|guard8 (translated \
        engines; default none)");
      ("--stats", Arg.Set stats, " print execution statistics");
      ("--deadline", Arg.Set_float deadline,
       "SECS wall-clock budget; exceeding it is a deadline_exceeded fault");
      ("--crash-dir", Arg.Set_string crash_dir,
       "DIR write a JSON crash report there if the module faults");
      ("--remote", Arg.Set_string remote,
       "ADDR submit + run on a live omnid (socket path or host:port)");
      ("--read-timeout", Arg.Set_float read_timeout,
       "SECS bound each response read; 0 = no bound (default)");
      ("--retries", Arg.Set_int retries,
       "N retry transient failures, N attempts total (default 0 = off)");
      ("--retry-base", Arg.Set_float retry_base,
       Printf.sprintf "SECS first-retry delay, doubling after (default %g)"
         Omni_net.Retry.default.Omni_net.Retry.base_delay_s);
      ("--retry-deadline", Arg.Set_float retry_deadline,
       Printf.sprintf "SECS overall retry budget (default %g)"
         Omni_net.Retry.default.Omni_net.Retry.deadline_s);
      ("--fallback-local", Arg.Set fallback_local,
       " run in-process if the daemon stays unreachable");
      ("--loopback", Arg.Set loopback,
       " serve from an in-process daemon over the in-memory transport");
      ("--fault-rate", Arg.Set_float fault_rate,
       "P damage each loopback frame with probability P (default 0)");
      ("--fault-seed", Arg.Set_int fault_seed,
       "N PRNG seed for --fault-rate (default 42)");
      ("--cert", Arg.Set want_cert,
       " report the translation's safety certificate (remote runs fetch \
        it from the daemon and re-check it locally; disables \
        --fallback-local)");
      ("--producer", Arg.Set_string producer,
       "NAME record which front-end produced the module (minic|stackvm) \
        in crash reports") ]
  in
  Arg.parse_argv args spec
    (fun f ->
      (* tolerate an explicit "run" subcommand word *)
      if String.equal f "run" && !input = None then () else input := Some f)
    "omnirun [run] <module.omni>";
  match !input with
  | None ->
      prerr_endline "omnirun: no module";
      exit 2
  | Some path ->
      let eng = parse_engine ~who:"omnirun" !engine in
      let req_mode =
        match !sfi_pad with
        | "" -> None
        | s -> (
            match Omni_sfi.Policy.pad_of_string s with
            | Some pad ->
                if not !sfi then begin
                  prerr_endline
                    "omnirun: --sfi-pad requires SFI (drop --no-sfi)";
                  exit 2
                end;
                Some
                  (Omni_targets.Machine.Mobile (Omni_sfi.Policy.make ~pad ()))
            | None ->
                Printf.eprintf
                  "omnirun: unknown --sfi-pad %S (none|nop|align|guard8)\n" s;
                exit 2)
      in
      (match !producer with
      | "" -> ()
      | p -> (
          match Api.producer_of_string p with
          | Ok _ -> ()
          | Error msg ->
              Printf.eprintf "omnirun: %s\n" msg;
              exit 2));
      if !fault_rate > 0.0 && not !loopback then begin
        prerr_endline "omnirun: --fault-rate requires --loopback";
        exit 2
      end;
      let retry =
        if !retries <= 0 then None
        else
          Some
            {
              Omni_net.Retry.default with
              Omni_net.Retry.max_attempts = !retries;
              base_delay_s = !retry_base;
              deadline_s = !retry_deadline;
            }
      in
      let client =
        if !loopback then begin
          let svc = Service.create () in
          let server = Omni_net.Server.create svc in
          let fault =
            if !fault_rate > 0.0 then
              Some
                (Omni_net.Fault.arm
                   ~metrics:(Service.metrics svc)
                   (Omni_net.Fault.seeded ~seed:!fault_seed ~rate:!fault_rate
                      ()))
            else None
          in
          (* manual-clock env: the backoff schedule runs without real
             sleeping — loopback retries are instantaneous *)
          Some
            (Omni_net.Client.loopback ?retry
               ~env:(Omni_net.Retry.manual_env ())
               ?fault server)
        end
        else if !remote = "" then None
        else
          match Omni_net.Transport.parse_address !remote with
          | Error msg ->
              Printf.eprintf "omnirun: %s\n" msg;
              exit 2
          | Ok addr -> (
              try
                Some
                  (Omni_net.Client.connect ?retry
                     ~read_timeout:!read_timeout addr)
              with Unix.Unix_error (e, _, _) when not !fallback_local ->
                Printf.eprintf "omnirun: cannot reach %s: %s\n" !remote
                  (Unix.error_message e);
                exit 2
              | Unix.Unix_error (e, _, _) ->
                (* --fallback-local covers a dead daemon at dial time too *)
                Printf.eprintf
                  "omnirun: cannot reach %s (%s); running locally\n" !remote
                  (Unix.error_message e);
                None)
      in
      let code =
        with_tracer trace @@ fun tm ->
        let wire = read_file path in
        let req =
          { Api.default_request with engine = eng; sfi = !sfi;
            mode = req_mode;
            deadline_s = (if !deadline > 0.0 then Some !deadline else None);
            remote = client;
            on_unreachable =
              (if !fallback_local then `Fallback_local else `Fail) }
        in
        let result, remote_cert =
          match client with
          | Some c when !want_cert ->
              (* fetch the witness with the result; the client's retry
                 policy still applies, but there is no local fallback —
                 certificates only come from the daemon *)
              let h = Omni_net.Client.submit c wire in
              Omni_net.Client.run_cert ~engine:eng ~sfi:!sfi
                ?deadline_s:(if !deadline > 0.0 then Some !deadline else None)
                ~want_cert:true c h
          | _ -> (Api.run req (Api.Wire wire), None)
        in
        if !want_cert then begin
          let module Exec = Omni_service.Exec in
          let module Cert = Omni_cert.Certificate in
          match eng with
          | Api.Interp | Api.Fast ->
              prerr_endline
                "omnirun: --cert: interpreter runs carry no certificate"
          | Api.Target arch when not !sfi ->
              ignore arch;
              prerr_endline
                "omnirun: --cert: unsandboxed translations are not \
                 certified"
          | Api.Target arch -> (
              let digest = Omni_util.Fnv64.digest_string wire in
              let mode =
                match req_mode with
                | Some m -> m
                | None -> Omni_targets.Machine.Mobile (Omni_sfi.Policy.make ())
              in
              let opts = Exec.mobile_opts arch in
              let check_local cert origin =
                (* re-translate locally and check the witness against it:
                   translation is pure, so the daemon's certificate must
                   hold here too *)
                let tr =
                  Exec.translate ~mode ~opts arch (Omnivm.Wire.decode wire)
                in
                match
                  Exec.check_cert ~module_digest:digest ~mode ~opts cert tr
                with
                | Ok () ->
                    Printf.eprintf "certificate:   %s (%s; check ok)\n"
                      (Cert.summary cert) origin
                | Error msg ->
                    Printf.eprintf "certificate:   INVALID (%s): %s\n" origin
                      msg
              in
              match remote_cert with
              | Some enc -> (
                  match Cert.decode enc with
                  | Ok cert -> check_local cert "from daemon"
                  | Error e ->
                      Printf.eprintf
                        "certificate:   INVALID (from daemon): %s\n"
                        (Cert.decode_error_to_string e))
              | None when client <> None ->
                  prerr_endline
                    "certificate:   none (daemon offered no certificate)"
              | None -> (
                  let tr =
                    Exec.translate ~mode ~opts arch (Omnivm.Wire.decode wire)
                  in
                  match Exec.certify ~module_digest:digest ~mode ~opts tr with
                  | Ok cert -> check_local cert "local"
                  | Error msg ->
                      Printf.eprintf "certificate:   REFUSED: %s\n" msg))
        end;
        (* The crash site travels in the run result, so the report is the
           same whether the module faulted here or on the daemon. *)
        if !crash_dir <> "" then
          Option.iter
            (fun report ->
              let file = Supervise.write_report ~dir:!crash_dir report in
              Printf.eprintf "omnirun: crash report written to %s\n" file)
            (Supervise.of_run ~engine:eng ~sfi:!sfi
               ?producer:(if !producer = "" then None else Some !producer)
               ~wire result);
        print_string result.Api.output;
        if !stats then begin
          Printf.eprintf "engine:        %s\n" (Api.engine_name eng);
          Printf.eprintf "instructions:  %d\n" result.Api.instructions;
          Printf.eprintf "cycles:        %d\n" result.Api.cycles;
          (match client with
          | Some c -> Printf.eprintf "remote stats:  %s\n" (Omni_net.Client.stats_json c)
          | None -> ());
          match tm with
          | Some m -> prerr_string (Metrics.render_phases (Metrics.snapshot m))
          | None -> ()
        end;
        Option.iter Omni_net.Client.close client;
        result.Api.exit_code
      in
      exit code

let run_serve trace args =
  let inputs = ref [] in
  let engine = ref "interp" in
  let sfi = ref true in
  let requests = ref 16 in
  let cache_cap = ref 256 in
  let domains = ref 1 in
  let stats = ref false in
  let metrics_dump = ref false in
  let store_dir = ref "" in
  let spec =
    [ ("--engine", Arg.Set_string engine,
       "ENGINE interp|mips|sparc|ppc|x86 (default interp)");
      ("--store-dir", Arg.Set_string store_dir,
       "DIR journal modules and certified translations to a crash-safe \
        on-disk store (created if missing); a previous run's store is \
        recovered before the batch, so translations are served warm");
      ("--no-sfi", Arg.Clear sfi, " translate without software fault isolation");
      ("--requests", Arg.Set_int requests,
       "N total requests, round-robin over the modules (default 16)");
      ("--domains", Arg.Set_int domains,
       "N drive the batch from N domains sharing one service (default 1)");
      ("--cache-cap", Arg.Set_int cache_cap,
       "K translation-cache capacity; 0 disables caching (default 256)");
      ("--cache-capacity", Arg.Set_int cache_cap,
       "N same as --cache-cap (omnid spells it this way)");
      ("--stats", Arg.Set stats, " print service counters as JSON");
      ("--metrics", Arg.Set metrics_dump,
       " dump the full metrics registry (counters + phase timings)") ]
  in
  Arg.parse_argv args spec
    (fun f -> inputs := f :: !inputs)
    "omnirun serve <module.omni>...";
  let inputs = List.rev !inputs in
  if inputs = [] then begin
    prerr_endline "omnirun serve: no modules";
    exit 2
  end;
  let eng = parse_engine ~who:"omnirun serve" !engine in
  let code =
    with_tracer trace @@ fun tm ->
    (* Share one registry between the tracer's phase histograms and the
       service's counters so --metrics shows both. *)
    let cfg =
      {
        Service.default_config with
        Service.cache_capacity = !cache_cap;
        persist =
          (if !store_dir <> "" then
             Some (Omni_persist.Io.real ~dir:!store_dir)
           else None);
      }
    in
    let svc =
      match tm with
      | Some m -> Service.of_config ~metrics:m cfg
      | None -> Service.of_config cfg
    in
    (match Service.recovery svc with
    | None -> ()
    | Some r ->
        Printf.eprintf "omnirun serve: store recovery (%s): %s%!" !store_dir
          (Omni_persist.Store.render_recovered r));
    let handles =
      List.map (fun path -> Service.submit svc (read_file path)) inputs
    in
    let harr = Array.of_list handles in
    let reqs =
      Array.init !requests (fun i ->
          { Service.rq_handle = harr.(i mod Array.length harr);
            rq_engine = eng; rq_sfi = !sfi })
    in
    let report =
      if !domains <= 1 then Service.run_batch svc reqs
      else begin
        (* Partition the batch round-robin across the domains; every
           domain drives the same shared service (sharded cache/store,
           atomic counters), so this is the concurrency the serving
           layer now promises. Elapsed time is wall clock: CPU seconds
           sum across domains and would overstate the cost. *)
        let n = !domains in
        let slice d =
          let keep = ref [] in
          Array.iteri (fun i r -> if i mod n = d then keep := r :: !keep) reqs;
          Array.of_list (List.rev !keep)
        in
        let t0 = Unix.gettimeofday () in
        let workers =
          List.init n (fun d ->
              let mine = slice d in
              Domain.spawn (fun () ->
                  let failures = ref 0 and instructions = ref 0 in
                  Array.iter
                    (fun r ->
                      let res =
                        Service.instantiate ~engine:r.Service.rq_engine
                          ~sfi:r.Service.rq_sfi svc r.Service.rq_handle
                      in
                      if res.Api.exit_code <> 0 then incr failures;
                      instructions := !instructions + res.Api.instructions)
                    mine;
                  (!failures, !instructions)))
        in
        let totals = List.map Domain.join workers in
        let dt = Unix.gettimeofday () -. t0 in
        let failures = List.fold_left (fun a (f, _) -> a + f) 0 totals in
        let instructions = List.fold_left (fun a (_, i) -> a + i) 0 totals in
        {
          Service.br_requests = !requests;
          br_failures = failures;
          br_instructions = instructions;
          br_elapsed_s = dt;
          br_rps =
            (if dt > 0.0 then float_of_int !requests /. dt else 0.0);
        }
      end
    in
    (* clean shutdown: flush the journal, commit the marker *)
    Service.close svc;
    print_string (Service.render_batch report);
    if !stats then print_endline (Counters.to_json (Service.stats svc));
    if !metrics_dump then
      print_string (Metrics.render (Metrics.snapshot (Service.metrics svc)));
    if report.Service.br_failures = 0 then 0 else 1
  in
  exit code

(* omnirun store: offline inspection and maintenance of a --store-dir.
   stat is a cheap physical description; fsck replays the journal with
   every proof forced (witness obligations included) and reports what
   would be recovered, quarantined, or dropped; compact rewrites the
   store as a fresh generation holding only the survivors. Exit 0: store
   healthy (fsck: nothing quarantined or torn); 1: issues found. *)
let run_store _trace args =
  let dir = ref "" in
  let verb = ref "" in
  let spec =
    [ ("--store-dir", Arg.Set_string dir, "DIR the store directory") ]
  in
  Arg.parse_argv args spec
    (fun a ->
      if !verb = "" then verb := a
      else if !dir = "" then dir := a
      else raise (Arg.Bad (Printf.sprintf "stray argument %S" a)))
    "omnirun store stat|fsck|compact [--store-dir] DIR";
  if !verb = "" || !dir = "" then begin
    prerr_endline "omnirun store: usage: omnirun store stat|fsck|compact DIR";
    exit 2
  end;
  if not (Sys.file_exists !dir) then begin
    Printf.eprintf "omnirun store: no such directory %s\n" !dir;
    exit 2
  end;
  let module P = Omni_persist.Store in
  let io = Omni_persist.Io.real ~dir:!dir in
  match !verb with
  | "stat" ->
      print_string (P.render_stat (P.stat io));
      exit 0
  | "fsck" ->
      let r = P.fsck io in
      print_string (P.render_recovered r);
      exit (if r.P.r_quarantined = [] && r.P.r_torn = 0 then 0 else 1)
  | "compact" ->
      let r, (before, after) = P.compact io in
      print_string (P.render_recovered r);
      Printf.printf "compacted: %d -> %d bytes\n" before after;
      exit 0
  | other ->
      Printf.eprintf "omnirun store: unknown action %s (stat|fsck|compact)\n"
        other;
      exit 2

(* omnirun cert: translate + certify + check one module per architecture,
   printing the witness summaries. With --mutate SEED, additionally derive
   a batch of deterministic certificate corruptions (byte flips) from the
   seed and insist every one is rejected by decode or by the checker —
   what `make cert-smoke` drives. Exit 0: all checks passed (and, with
   --mutate, all mutants rejected); 1: a witness failed or a mutant was
   accepted. *)
let run_cert trace args =
  let module Exec = Omni_service.Exec in
  let module Cert = Omni_cert.Certificate in
  let input = ref None in
  let engine = ref "all" in
  let mutate = ref 0 in
  let mutants = ref 64 in
  let spec =
    [ ("--engine", Arg.Set_string engine,
       "ENGINE mips|sparc|ppc|x86, or all (default all)");
      ("--mutate", Arg.Set_int mutate,
       "SEED corrupt the certificate deterministically; every mutant must \
        be rejected");
      ("--mutants", Arg.Set_int mutants,
       "N how many corruptions to derive from the seed (default 64)") ]
  in
  Arg.parse_argv args spec
    (fun f -> input := Some f)
    "omnirun cert <module.omni>";
  match !input with
  | None ->
      prerr_endline "omnirun cert: no module";
      exit 2
  | Some path ->
      let archs =
        match Api.engines_of_string !engine with
        | Error msg ->
            Printf.eprintf "omnirun cert: %s\n" msg;
            exit 2
        | Ok engines -> (
            match
              List.filter_map
                (function
                  | Api.Target a -> Some a
                  | Api.Interp | Api.Fast -> None)
                engines
            with
            | [] ->
                prerr_endline
                  "omnirun cert: the interpreter runs no translated code; \
                   pick a target architecture";
                exit 2
            | archs -> archs)
      in
      let wire = read_file path in
      let exe = Omnivm.Wire.decode wire in
      let digest = Omni_util.Fnv64.digest_string wire in
      let mode = Omni_targets.Machine.Mobile (Omni_sfi.Policy.make ()) in
      let failures = ref 0 in
      let code =
        with_tracer trace @@ fun _ ->
        List.iter
          (fun arch ->
            let name = Omni_targets.Arch.name arch in
            let opts = Exec.mobile_opts arch in
            let tr = Exec.translate ~mode ~opts arch exe in
            match Exec.certify ~module_digest:digest ~mode ~opts tr with
            | Error msg ->
                Printf.printf "%-5s FAIL certify: %s\n" name msg;
                incr failures
            | Ok cert -> (
                let enc = Cert.encode cert in
                match Cert.decode enc with
                | Error e ->
                    Printf.printf "%-5s FAIL decode: %s\n" name
                      (Cert.decode_error_to_string e);
                    incr failures
                | Ok cert' -> (
                    match
                      Exec.check_cert ~module_digest:digest ~mode ~opts cert'
                        tr
                    with
                    | Error msg ->
                        Printf.printf "%-5s FAIL check: %s\n" name msg;
                        incr failures
                    | Ok () ->
                        Printf.printf "%-5s ok    %s\n" name
                          (Cert.summary cert);
                        if !mutate <> 0 then begin
                          let rng =
                            Omni_util.Lcg.create (!mutate + Hashtbl.hash name)
                          in
                          let accepted = ref 0 in
                          for _ = 1 to !mutants do
                            let b = Bytes.of_string enc in
                            let i = Omni_util.Lcg.int rng (Bytes.length b) in
                            let bit = 1 lsl Omni_util.Lcg.int rng 8 in
                            Bytes.set b i
                              (Char.chr
                                 (Char.code (Bytes.get b i) lxor bit));
                            match Cert.decode (Bytes.to_string b) with
                            | Error _ -> ()
                            | Ok m -> (
                                match
                                  Exec.check_cert ~module_digest:digest ~mode
                                    ~opts m tr
                                with
                                | Error _ -> ()
                                | Ok () -> incr accepted)
                          done;
                          (* byte flips die on the self-digest; also lie at
                             the obligation level (kind swaps on a decoded
                             witness) so the checker proper is exercised *)
                          let nobs = Array.length cert.Cert.obs in
                          if nobs > 0 then
                            for _ = 1 to min !mutants nobs do
                              let j = Omni_util.Lcg.int rng nobs in
                              let ob = cert.Cert.obs.(j) in
                              let kinds =
                                List.filter
                                  (fun k -> k <> ob.Omni_sfi.Witness.kind)
                                  Omni_sfi.Witness.all_kinds
                              in
                              let k' =
                                List.nth kinds
                                  (Omni_util.Lcg.int rng (List.length kinds))
                              in
                              let obs' = Array.copy cert.Cert.obs in
                              obs'.(j) <- { ob with Omni_sfi.Witness.kind = k' };
                              let m = { cert with Cert.obs = obs' } in
                              match
                                Exec.check_cert ~module_digest:digest ~mode
                                  ~opts m tr
                              with
                              | Error _ -> ()
                              | Ok () -> incr accepted
                            done;
                          if !accepted > 0 then begin
                            Printf.printf
                              "%-5s FAIL mutate: %d corrupted certificates \
                               accepted\n"
                              name !accepted;
                            incr failures
                          end
                          else
                            Printf.printf
                              "%-5s ok    all corrupted certificates \
                               rejected (%d byte flips + %d kind swaps)\n"
                              name !mutants (min !mutants nobs)
                        end)))
          archs;
        if !failures = 0 then 0 else 1
      in
      exit code

let outcome_string = function
  | Omni_targets.Machine.Exited c -> Printf.sprintf "exited with code %d" c
  | Omni_targets.Machine.Faulted f ->
      Printf.sprintf "faulted (%s)" (Omnivm.Fault.to_string f)
  | Omni_targets.Machine.Out_of_fuel -> "ran out of fuel"

let run_replay trace args =
  let input = ref None in
  let engine = ref "" in
  let quiet = ref false in
  let spec =
    [ ("--engine", Arg.Set_string engine,
       "ENGINE replay on this engine instead of the report's own");
      ("--quiet", Arg.Set quiet, " suppress the report rendering") ]
  in
  Arg.parse_argv args spec
    (fun f -> input := Some f)
    "omnirun replay <crash-report.json>";
  match !input with
  | None ->
      prerr_endline "omnirun replay: no crash report";
      exit 2
  | Some path ->
      let report =
        try Supervise.of_json (read_file path)
        with Supervise.Bad_report msg ->
          Printf.eprintf "omnirun replay: %s: %s\n" path msg;
          exit 2
      in
      let engine =
        if !engine = "" then None
        else Some (parse_engine ~who:"omnirun replay" !engine)
      in
      if not !quiet then Format.printf "%a@." Supervise.pp report;
      let code =
        with_tracer trace @@ fun _ ->
        match Supervise.check_replay ?engine report with
        | Supervise.Reproduced ->
            print_endline "replay: fault reproduced";
            0
        | Supervise.Transient outcome ->
            Printf.printf "replay: transient fault; this run %s\n"
              (outcome_string outcome);
            0
        | Supervise.Diverged outcome ->
            Printf.printf "replay: DIVERGED; this run %s\n"
              (outcome_string outcome);
            1
      in
      exit code

(* Lift a StackVM guest program (assembly text, or GSTK bytecode detected
   by magic) to an OmniVM wire module: the guest-ISA front-end as a CLI.
   Default writes <input>.omni next to the input; --run executes the
   lifted module instead (through the same Api.run path as any other
   module, so --crash-dir reports carry producer "stackvm"); --oracle
   additionally runs the guest reference interpreter and asserts
   bit-identical output and exit code. *)
let run_lift trace args =
  let module Guest = Omni_guest in
  let input = ref None in
  let out = ref "" in
  let pool = ref Guest.Lift.default_options.Guest.Lift.pool in
  let do_run = ref false in
  let oracle = ref false in
  let engine = ref "interp" in
  let sfi = ref true in
  let crash_dir = ref "" in
  let spec =
    [ ("-o", Arg.Set_string out,
       "FILE write the lifted wire module here (default <input>.omni)");
      ("--pool", Arg.Set_int pool,
       "N registers for operand-stack slots, 1-9 (default 9; deeper \
        stacks spill to the frame)");
      ("--run", Arg.Set do_run,
       " execute the lifted module instead of writing it");
      ("--oracle", Arg.Set oracle,
       " with --run: also run the guest reference interpreter and \
        assert identical output and exit code (exit 1 on divergence)");
      ("--engine", Arg.Set_string engine,
       "ENGINE interp (default) | mips | sparc | ppc | x86");
      ("--no-sfi", Arg.Clear sfi, " translate without sandboxing checks");
      ("--crash-dir", Arg.Set_string crash_dir,
       "DIR write a crash report there if the lifted module faults") ]
  in
  Arg.parse_argv args spec
    (fun f -> input := Some f)
    "omnirun lift <guest.gasm|guest.gstk>";
  match !input with
  | None ->
      prerr_endline "omnirun lift: no guest program";
      exit 2
  | Some path ->
      let src = read_file path in
      if !pool < 1 || !pool > 9 then begin
        prerr_endline "omnirun lift: --pool must be in 1..9";
        exit 2
      end;
      (* Bytecode starts with the GSTK magic; anything else is assembly. *)
      let program =
        let r =
          if String.length src >= 4 && String.equal (String.sub src 0 4) "GSTK"
          then
            match Guest.Bytecode.decode src with
            | Ok p -> Guest.Validate.check p |> Result.map (fun _ -> p)
            | Error _ as e -> e
          else Guest.Asm.assemble src
        in
        match r with
        | Ok p -> p
        | Error e ->
            Printf.eprintf "omnirun lift: %s: %s\n" path
              (Guest.Error.to_string e);
            exit 2
      in
      let code =
        with_tracer trace @@ fun _ ->
        let options = { Guest.Lift.pool = !pool } in
        let wire =
          match Guest.Lift.lift_wire ~options program with
          | Ok w -> w
          | Error e ->
              Printf.eprintf "omnirun lift: %s: %s\n" path
                (Guest.Error.to_string e);
              exit 2
        in
        if not !do_run then begin
          let out =
            if !out <> "" then !out else Filename.remove_extension path ^ ".omni"
          in
          Out_channel.with_open_bin out (fun oc -> output_string oc wire);
          Printf.eprintf "omnirun lift: wrote %s (%d bytes)\n" out
            (String.length wire);
          0
        end
        else begin
          let eng = parse_engine ~who:"omnirun lift" !engine in
          let result =
            Api.run
              { Api.default_request with engine = eng; sfi = !sfi }
              (Api.Wire wire)
          in
          if !crash_dir <> "" then
            Option.iter
              (fun report ->
                let file = Supervise.write_report ~dir:!crash_dir report in
                Printf.eprintf "omnirun lift: crash report written to %s\n"
                  file)
              (Supervise.of_run ~engine:eng ~sfi:!sfi ~producer:"stackvm"
                 ~wire result);
          print_string result.Api.output;
          if !oracle then begin
            let o = Guest.Interp.run program in
            let oracle_exit = Guest.Interp.exit_code o.Guest.Interp.outcome in
            if
              String.equal o.Guest.Interp.output result.Api.output
              && oracle_exit = result.Api.exit_code
            then begin
              Printf.eprintf
                "omnirun lift: oracle agrees (exit %d, %d output bytes)\n"
                oracle_exit
                (String.length result.Api.output);
              result.Api.exit_code
            end
            else begin
              Printf.eprintf
                "omnirun lift: DIVERGED from oracle: lifted exit %d \
                 (%d output bytes), oracle exit %d (%d output bytes)\n"
                result.Api.exit_code
                (String.length result.Api.output)
                oracle_exit
                (String.length o.Guest.Interp.output);
              1
            end
          end
          else result.Api.exit_code
        end
      in
      exit code

let () =
  let trace, argv = extract_trace Sys.argv in
  let subcommand name runner =
    (* re-seat argv so Arg reports "omnirun <name>" on errors *)
    runner trace
      (Array.append
         [| argv.(0) ^ " " ^ name |]
         (Array.sub argv 2 (Array.length argv - 2)))
  in
  try
    if Array.length argv > 1 && argv.(1) = "serve" then
      subcommand "serve" run_serve
    else if Array.length argv > 1 && argv.(1) = "replay" then
      subcommand "replay" run_replay
    else if Array.length argv > 1 && argv.(1) = "cert" then
      subcommand "cert" run_cert
    else if Array.length argv > 1 && argv.(1) = "lift" then
      subcommand "lift" run_lift
    else if Array.length argv > 1 && argv.(1) = "store" then
      subcommand "store" run_store
    else run_single trace argv
  with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0
  | Sys_error msg ->
      Printf.eprintf "omnirun: %s\n" msg;
      exit 2
  | Omnivm.Wire.Bad_module msg ->
      Printf.eprintf "omnirun: malformed module: %s\n" msg;
      exit 2
  | Omni_net.Client.Remote_error (cls, msg) ->
      Printf.eprintf "omnirun: remote %s error: %s\n"
        (Omni_net.Message.err_class_name cls)
        msg;
      exit 2
  | Omni_net.Client.Protocol_error msg ->
      Printf.eprintf "omnirun: protocol error: %s\n" msg;
      exit 2
  | Omni_net.Client.Connection_lost msg ->
      Printf.eprintf "omnirun: connection lost: %s\n" msg;
      exit 2
  | Omni_net.Transport.Timeout ->
      prerr_endline "omnirun: remote read timed out";
      exit 2
  | Invalid_argument msg ->
      (* the local surface for resource-limit refusals, remote or not *)
      Printf.eprintf "omnirun: limit exceeded: %s\n" msg;
      exit 2
