(* omniasm: assemble OmniVM assembly source(s) and link them into a mobile
   module.

     omniasm a.s b.s -o module.omni [--entry main] [--run ENGINE]

   Each input file becomes one relocatable object; the linker resolves
   cross-file references and produces wire-format bytes. --run additionally
   executes the linked module on the named engine (assemble-link-go). *)

module Api = Omniware.Api

let () =
  let inputs = ref [] in
  let output = ref "a.omni" in
  let entry = ref "main" in
  let dump = ref false in
  let run_engine = ref "" in
  let spec =
    [ ("-o", Arg.Set_string output, "FILE output module (default a.omni)");
      ("--entry", Arg.Set_string entry, "SYM entry symbol (default main)");
      ("--dump", Arg.Set dump, " print the linked module");
      ("--run", Arg.Set_string run_engine,
       "ENGINE also run the linked module (interp|mips|sparc|ppc|x86)") ]
  in
  Arg.parse spec (fun f -> inputs := f :: !inputs) "omniasm <files.s> -o out.omni";
  let engine =
    if !run_engine = "" then None
    else
      match Api.engine_of_string !run_engine with
      | Ok e -> Some e
      | Error msg ->
          Printf.eprintf "omniasm: %s\n" msg;
          exit 2
  in
  match List.rev !inputs with
  | [] ->
      prerr_endline "omniasm: no input files";
      exit 2
  | files -> (
      try
        let objs =
          List.map
            (fun path ->
              let src = In_channel.with_open_text path In_channel.input_all in
              Omni_asm.Parse.assemble ~name:path src)
            files
        in
        let exe = Omni_asm.Link.link ~entry:!entry objs in
        if !dump then Format.printf "%a" Omnivm.Exe.pp exe;
        Out_channel.with_open_bin !output (fun oc ->
            Out_channel.output_string oc (Omnivm.Wire.encode exe));
        match engine with
        | None -> ()
        | Some e ->
            let r = Api.run_exe ~engine:e exe in
            print_string r.Api.output;
            exit r.Api.exit_code
      with
      | Omni_asm.Parse.Parse_error { line; message } ->
          Printf.eprintf "error: line %d: %s\n" line message;
          exit 1
      | Omni_asm.Link.Link_error m ->
          Printf.eprintf "link error: %s\n" m;
          exit 1)
