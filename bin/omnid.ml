(* omnid: the mobile-code distribution daemon.

     omnid --socket PATH | --port N [--host ADDR]
           [--cache-capacity N] [--max-frame BYTES] [--timeout SECS]
           [--max-module-bytes N] [--max-fuel N]
           [--max-requests-per-conn N] [--max-conn-bytes N]
           [--deadline SECS] [--max-deadline SECS]
           [--quarantine N] [--quarantine-ttl SECS] [--require-cert]
           [--pool N] [--queue-depth N] [--fair-slice N]
           [--store-dir DIR]
           [--metrics] [--trace | --trace-file FILE] [--once]

   Listens on a Unix-domain socket (--socket) or TCP (--port), and
   serves the frame protocol: Ping, Submit (wire bytes -> content
   handle), Run (handle x engine/sfi/mode/fuel -> full run result),
   Stats (service counters as JSON). Every module is untrusted input:
   malformed frames, malformed modules, unknown handles, and SFI
   verifier refusals all come back as typed Error responses; the daemon
   keeps serving.

   --pool N serves with N worker domains draining a bounded accept
   queue (--queue-depth); when the queue is full new connections are
   refused with a typed "overloaded" error clients retry with backoff.
   --fair-slice bounds how many requests one connection can hold a
   worker before it is parked behind waiting connections.

   --store-dir DIR journals every submitted module and certified
   translation to a crash-safe on-disk store (Omni_persist): a restart
   replays the journal, re-proves every translation against its
   omni-cert/1 witness, and serves warm from the first request. SIGTERM
   and SIGINT drain gracefully: stop accepting, finish in-flight pool
   work, flush the journal, and commit the clean-shutdown marker so the
   next start takes the fast recovery path. kill -9 gets no marker —
   recovery then re-checks everything and quarantines anything that lies.

   --metrics dumps the full metrics registry (net.* counters, serving
   counters, per-phase timings) to stderr on exit.
   --once exits after the first connection closes (for smoke tests;
   forces the serial --pool 1 path). *)

module Service = Omni_service.Service
module Net = Omni_net
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace

let () =
  let socket = ref "" in
  let port = ref 0 in
  let host = ref "127.0.0.1" in
  let cache_capacity = ref 256 in
  let max_frame = ref Net.Frame.max_payload in
  let timeout = ref 30.0 in
  let max_module_bytes = ref 0 in
  let max_fuel = ref 0 in
  let max_requests_per_conn = ref 0 in
  let max_conn_bytes = ref 0 in
  let deadline = ref 0.0 in
  let max_deadline = ref 0.0 in
  let quarantine = ref 0 in
  let quarantine_ttl = ref 300.0 in
  let require_cert = ref false in
  let pool = ref 1 in
  let queue_depth = ref Net.Server.default_config.Net.Server.queue_depth in
  let fair_slice = ref Net.Server.default_config.Net.Server.fair_slice in
  let store_dir = ref "" in
  let metrics_dump = ref false in
  let trace_file = ref "" in
  let trace_flag = ref false in
  let once = ref false in
  let spec =
    [ ("--socket", Arg.Set_string socket, "PATH listen on a Unix-domain socket");
      ("--port", Arg.Set_int port, "N listen on TCP port N");
      ("--host", Arg.Set_string host,
       "ADDR TCP interface to bind (default 127.0.0.1)");
      ("--cache-capacity", Arg.Set_int cache_capacity,
       "N translation-cache capacity; 0 disables caching (default 256)");
      ("--max-frame", Arg.Set_int max_frame,
       Printf.sprintf "BYTES frame payload cap (default %d)"
         Net.Frame.max_payload);
      ("--timeout", Arg.Set_float timeout,
       " per-request read timeout in seconds; 0 disables (default 30)");
      ("--max-module-bytes", Arg.Set_int max_module_bytes,
       "N largest module a Submit may carry; 0 = unlimited (default)");
      ("--max-fuel", Arg.Set_int max_fuel,
       "N fuel ceiling per Run; 0 = unlimited (default)");
      ("--max-requests-per-conn", Arg.Set_int max_requests_per_conn,
       "N requests admitted per connection; 0 = unlimited (default)");
      ("--max-conn-bytes", Arg.Set_int max_conn_bytes,
       "N frame bytes admitted per connection; 0 = unlimited (default)");
      ("--deadline", Arg.Set_float deadline,
       "SECS default wall-clock budget per run; 0 = none (default)");
      ("--max-deadline", Arg.Set_float max_deadline,
       "SECS deadline ceiling per Run; 0 = unlimited (default)");
      ("--quarantine", Arg.Set_int quarantine,
       "N quarantine a module after N deterministic faults; 0 = off (default)");
      ("--quarantine-ttl", Arg.Set_float quarantine_ttl,
       "SECS how long a quarantined module stays refused (default 300)");
      ("--require-cert", Arg.Set require_cert,
       " refuse uncertified translated runs (certificate-invalid) and \
        attach the safety certificate to every Run response");
      ("--pool", Arg.Set_int pool,
       "N worker domains serving concurrently; 1 = serial (default)");
      ("--queue-depth", Arg.Set_int queue_depth,
       Printf.sprintf
         "N connections the accept queue holds before shedding (default %d)"
         !queue_depth);
      ("--fair-slice", Arg.Set_int fair_slice,
       Printf.sprintf
         "N requests one connection may hold a worker before parking \
          (default %d)"
         !fair_slice);
      ("--store-dir", Arg.Set_string store_dir,
       "DIR journal modules and certified translations to a crash-safe \
        on-disk store (created if missing); restart recovers them");
      ("--metrics", Arg.Set metrics_dump,
       " dump the metrics registry to stderr on exit");
      ("--trace", Arg.Set trace_flag,
       " emit one JSON line per request span to stderr");
      ("--trace-file", Arg.Set_string trace_file,
       "FILE emit request spans to FILE");
      ("--once", Arg.Set once, " exit after the first connection closes") ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "stray argument %S" a)))
    "omnid --socket PATH | --port N";
  let addr =
    match (!socket, !port) with
    | "", 0 ->
        prerr_endline "omnid: one of --socket PATH or --port N is required";
        exit 2
    | path, 0 -> Net.Transport.Unix_sock path
    | "", p -> Net.Transport.Tcp (!host, p)
    | _ ->
        prerr_endline "omnid: --socket and --port are exclusive";
        exit 2
  in
  (* a client vanishing mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let svc =
    Service.of_config
      {
        Service.default_config with
        Service.cache_capacity = !cache_capacity;
        quarantine =
          (if !quarantine > 0 then
             Some
               {
                 Omni_service.Supervise.Quarantine.default_config with
                 threshold = !quarantine;
                 ttl_s = !quarantine_ttl;
               }
           else None);
        deadline_s = (if !deadline > 0.0 then Some !deadline else None);
        persist =
          (if !store_dir <> "" then
             Some (Omni_persist.Io.real ~dir:!store_dir)
           else None);
      }
  in
  (match Service.recovery svc with
  | None -> ()
  | Some r ->
      Printf.eprintf "omnid: store recovery (%s): %s%!" !store_dir
        (Omni_persist.Store.render_recovered r));
  let tracer =
    let emit oc =
      Trace.make ~metrics:(Service.metrics svc)
        (Trace.Emit
           (fun s ->
             output_string oc (Trace.json_line s);
             output_char oc '\n';
             flush oc))
    in
    if !trace_file <> "" then Some (emit (open_out !trace_file))
    else if !trace_flag then Some (emit stderr)
    else None
  in
  let server =
    Net.Server.create
      ~config:
        {
          Net.Server.max_frame = !max_frame;
          read_timeout_s = !timeout;
          max_module_bytes = !max_module_bytes;
          max_fuel = !max_fuel;
          max_requests_per_conn = !max_requests_per_conn;
          max_conn_bytes = !max_conn_bytes;
          max_deadline_s = !max_deadline;
          require_cert = !require_cert;
          pool_size = (if !once then 1 else !pool);
          queue_depth = !queue_depth;
          fair_slice = !fair_slice;
        }
      ?tracer svc
  in
  if !metrics_dump then
    at_exit (fun () ->
        prerr_string (Metrics.render (Metrics.snapshot (Service.metrics svc))));
  (* Graceful drain: the handler only raises a flag; the accept loop
     polls it, stops accepting, finishes in-flight pool work (workers
     joined by Server.serve), and then the journal is flushed and the
     clean-shutdown marker committed below. A second signal during the
     drain still kills the process the hard way (recovery handles it). *)
  let draining = ref false in
  let quit _ = if !draining then exit 1 else draining := true in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle quit)
   with Invalid_argument _ -> ());
  let listen_fd =
    try Net.Server.listen addr
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "omnid: cannot listen on %s: %s\n"
        (Net.Transport.address_to_string addr)
        (Unix.error_message e);
      exit 2
  in
  (match addr with
  | Net.Transport.Unix_sock path ->
      at_exit (fun () -> try Sys.remove path with Sys_error _ -> ())
  | Net.Transport.Tcp _ -> ());
  (* readiness line: smoke tests and supervisors wait for it *)
  Printf.printf "omnid: listening on %s\n%!"
    (Net.Transport.address_to_string addr);
  (if !once then
     let rec loop () =
       if not !draining then
         match Unix.accept listen_fd with
         | fd, _ ->
             Net.Server.serve_conn server
               (Net.Transport.of_fd ~descr:"client" fd)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
     in
     loop ()
   else
     (* Server.serve polls [stop] between accepts; with --pool it also
        starts the domain pool, sheds with a typed overloaded error when
        the queue is full, and joins the workers when the drain begins —
        every accepted connection finishes before serve returns *)
     Net.Server.serve ~stop:(fun () -> !draining) server listen_fd);
  (* drained: flush the journal and commit the clean-shutdown marker *)
  Service.close svc
