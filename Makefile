# Convenience targets; the source of truth is dune.

.PHONY: check build test bench bench-smoke trace-smoke clean

check: ## full tier-1 verification: build + every test suite + trace smoke
	dune build @all && dune runtest && $(MAKE) trace-smoke

build:
	dune build

test:
	dune runtest

# The complete paper evaluation at test size (slow).
bench:
	dune exec bench/main.exe

# Quick exercise of the serving experiment so the cache path stays honest.
bench-smoke:
	dune exec bench/main.exe -- service

# End-to-end observability smoke: compile the quickstart module, run it
# under omnirun with span tracing on, and insist the trace is non-empty.
trace-smoke:
	dune build examples/quickstart.exe bin/omnirun.exe
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null
	./_build/default/bin/omnirun.exe --trace=/tmp/quickstart.trace run \
	  /tmp/quickstart.omni --engine x86 >/dev/null
	@grep -q '"span":"translate"' /tmp/quickstart.trace
	@grep -q '"span":"run"' /tmp/quickstart.trace
	@echo "trace-smoke: OK ($$(wc -l < /tmp/quickstart.trace) spans)"

clean:
	dune clean
