# Convenience targets; the source of truth is dune.

.PHONY: check build test bench bench-smoke clean

check: ## full tier-1 verification: build + every test suite
	dune build && dune runtest

build:
	dune build

test:
	dune runtest

# The complete paper evaluation at test size (slow).
bench:
	dune exec bench/main.exe

# Quick exercise of the serving experiment so the cache path stays honest.
bench-smoke:
	dune exec bench/main.exe -- service

clean:
	dune clean
