# Convenience targets; the source of truth is dune.

.PHONY: check build test bench bench-smoke bench-gate trace-smoke net-smoke fault-smoke crash-smoke cert-smoke par-smoke guest-smoke fast-smoke persist-smoke clean

check: ## full tier-1 verification: build + every test suite + smokes
	dune build @all && dune runtest && $(MAKE) trace-smoke && $(MAKE) net-smoke && $(MAKE) fault-smoke && $(MAKE) crash-smoke && $(MAKE) cert-smoke && $(MAKE) par-smoke && $(MAKE) guest-smoke && $(MAKE) fast-smoke && $(MAKE) persist-smoke
	@if [ -f BENCH_10.json ] || [ -f BENCH_9.json ]; then $(MAKE) bench-gate; \
	else echo "check: no bench snapshot baseline; skipping bench-gate"; fi

build:
	dune build

test:
	dune runtest

# The complete paper evaluation at test size (slow).
bench:
	dune exec bench/main.exe

# Quick exercise of the serving experiment so the cache path stays honest.
bench-smoke:
	dune exec bench/main.exe -- service

# Performance regression gate: run the hot-path benchmarks and compare
# against the committed BENCH_10.json baseline (falling back to the prior
# BENCH_9.json); >20% regression on any hot path fails. The first run
# (no baseline) seeds it; keys present in only one snapshot are skipped
# and summarized in one stderr line.
bench-gate:
	dune exec bench/main.exe -- gate

# Fast-path smoke: run a MiniC-compiled module and a guest-lifted module
# under the pre-decoded threaded interpreter (--engine fast) and the
# baseline interpreter, and insist the outputs are identical — the
# differential guarantee end to end from the CLI, on both families.
fast-smoke:
	dune build examples/quickstart.exe bin/omnirun.exe
	@src="/tmp/fast-smoke-$$$$.gasm"; omni="/tmp/fast-smoke-$$$$.omni"; \
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null; \
	base=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni --engine interp) || \
	  { echo "fast-smoke: FAIL (interp run errored)"; exit 1; }; \
	fast=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni --engine fast) || \
	  { echo "fast-smoke: FAIL (fast run errored)"; exit 1; }; \
	[ "$$base" = "$$fast" ] || \
	  { echo "fast-smoke: FAIL (minic outputs differ)"; exit 1; }; \
	printf '.mem 8\n.func main 0 2\npush 10 set 0\nloop: get 0 brz done\nget 0 get 1 add set 1\nget 0 push 1 sub set 0\njmp loop\ndone: get 1 sys print_int\npush 10 sys put_char\npush 0 halt\n' > "$$src"; \
	./_build/default/bin/omnirun.exe lift "$$src" -o "$$omni" 2>/dev/null; \
	gbase=$$(./_build/default/bin/omnirun.exe run "$$omni" --engine interp) || \
	  { echo "fast-smoke: FAIL (guest interp run errored)"; exit 1; }; \
	gfast=$$(./_build/default/bin/omnirun.exe run "$$omni" --engine fast) || \
	  { echo "fast-smoke: FAIL (guest fast run errored)"; exit 1; }; \
	rm -f "$$src" "$$omni"; \
	{ [ "$$gbase" = "$$gfast" ] && [ "$$gfast" = "55" ]; } || \
	  { echo "fast-smoke: FAIL (guest outputs: interp=$$gbase fast=$$gfast)"; exit 1; }; \
	echo "fast-smoke: OK (fast == interp on both workload families)"

# End-to-end observability smoke: compile the quickstart module, run it
# under omnirun with span tracing on, and insist the trace is non-empty.
trace-smoke:
	dune build examples/quickstart.exe bin/omnirun.exe
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null
	./_build/default/bin/omnirun.exe --trace=/tmp/quickstart.trace run \
	  /tmp/quickstart.omni --engine x86 >/dev/null
	@grep -q '"span":"translate"' /tmp/quickstart.trace
	@grep -q '"span":"run"' /tmp/quickstart.trace
	@echo "trace-smoke: OK ($$(wc -l < /tmp/quickstart.trace) spans)"

# Remote-serving smoke: start omnid on a throwaway Unix socket, push the
# quickstart module through omnirun --remote twice, and insist the second
# run hit the daemon's translation cache. Skips (exit 0) rather than
# fails when the environment cannot create Unix-domain sockets.
net-smoke:
	dune build examples/quickstart.exe bin/omnid.exe bin/omnirun.exe
	@sock="/tmp/omnid-smoke-$$$$.sock"; rm -f "$$sock"; \
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null; \
	./_build/default/bin/omnid.exe --socket "$$sock" >/dev/null 2>&1 & pid=$$!; \
	i=0; while [ $$i -lt 100 ] && ! [ -S "$$sock" ]; do \
	  kill -0 $$pid 2>/dev/null || break; sleep 0.05; i=$$((i+1)); done; \
	if ! [ -S "$$sock" ]; then \
	  echo "net-smoke: SKIP (could not create a Unix-domain socket)"; \
	  kill $$pid 2>/dev/null; exit 0; fi; \
	status=0; \
	./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --remote "$$sock" >/dev/null 2>&1 || status=1; \
	out=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --remote "$$sock" --stats 2>&1 >/dev/null) || status=1; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -f "$$sock"; \
	[ $$status -eq 0 ] || { echo "net-smoke: FAIL (remote run errored)"; exit 1; }; \
	echo "$$out" | grep -Eq '"hits":[1-9]' || \
	  { echo "net-smoke: FAIL (no cache hit on the warm run)"; exit 1; }; \
	echo "net-smoke: OK (second remote run hit the daemon cache)"

# Resilience smoke: run the quickstart module through the in-process
# loopback with seeded fault injection on the wire and a retrying
# client, and insist the output is identical to a clean run. Exercises
# the fault injector, the retry loop, and the typed-error path end to
# end from the CLI.
fault-smoke:
	dune build examples/quickstart.exe bin/omnirun.exe
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null
	@clean=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --loopback) || \
	  { echo "fault-smoke: FAIL (clean loopback run errored)"; exit 1; }; \
	faulty=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --loopback --fault-rate 0.05 --fault-seed 42 --retries 8) || \
	  { echo "fault-smoke: FAIL (faulty loopback run errored)"; exit 1; }; \
	[ "$$clean" = "$$faulty" ] || \
	  { echo "fault-smoke: FAIL (output differs under fault injection)"; exit 1; }; \
	echo "fault-smoke: OK (identical output at fault rate 0.05)"

# Crash-containment smoke: compile a module that divides by zero, run it
# under omnirun with --crash-dir, and replay the written report on a
# different architecture — the fault must reproduce. Exercises crash
# reporting and deterministic replay end to end from the CLI.
crash-smoke:
	dune build bin/omnicc.exe bin/omnirun.exe
	@dir="/tmp/omni-crash-$$$$"; rm -rf "$$dir"; mkdir -p "$$dir"; \
	printf 'int main(void) { int x = 0; return 1 / x; }\n' > "$$dir/crashy.mc"; \
	./_build/default/bin/omnicc.exe "$$dir/crashy.mc" -o "$$dir/crashy.omni"; \
	./_build/default/bin/omnirun.exe run "$$dir/crashy.omni" --engine mips \
	  --crash-dir "$$dir" >/dev/null 2>&1; \
	report=$$(ls "$$dir"/crash-*.json 2>/dev/null | head -n 1); \
	[ -n "$$report" ] || { echo "crash-smoke: FAIL (no report written)"; exit 1; }; \
	out=$$(./_build/default/bin/omnirun.exe replay "$$report" --quiet --engine x86) || \
	  { echo "crash-smoke: FAIL (replay diverged: $$out)"; exit 1; }; \
	echo "$$out" | grep -q 'reproduced' || \
	  { echo "crash-smoke: FAIL (unexpected verdict: $$out)"; exit 1; }; \
	rm -rf "$$dir"; \
	echo "crash-smoke: OK (report written; fault reproduced on x86)"

# Proof-carrying translation smoke: compile the quickstart module, then
# translate + certify + witness-check it on every architecture, and
# derive a batch of deterministic certificate corruptions that must all
# be rejected — produce once, check cheap, and lying witnesses die.
cert-smoke:
	dune build examples/quickstart.exe bin/omnirun.exe
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null
	./_build/default/bin/omnirun.exe cert /tmp/quickstart.omni --mutate 42

# Parallel-serving smoke: start omnid with a 4-domain worker pool on a
# throwaway Unix socket, push the quickstart module through several
# remote runs, and insist every run succeeds with identical output and
# the later ones hit the shared translation cache. Skips (exit 0) when
# the environment cannot create Unix-domain sockets.
par-smoke:
	dune build examples/quickstart.exe bin/omnid.exe bin/omnirun.exe
	@sock="/tmp/omnid-par-$$$$.sock"; rm -f "$$sock"; \
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null; \
	./_build/default/bin/omnid.exe --socket "$$sock" --pool 4 >/dev/null 2>&1 & pid=$$!; \
	i=0; while [ $$i -lt 100 ] && ! [ -S "$$sock" ]; do \
	  kill -0 $$pid 2>/dev/null || break; sleep 0.05; i=$$((i+1)); done; \
	if ! [ -S "$$sock" ]; then \
	  echo "par-smoke: SKIP (could not create a Unix-domain socket)"; \
	  kill $$pid 2>/dev/null; exit 0; fi; \
	status=0; first=""; \
	for n in 1 2 3 4; do \
	  out=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	    --engine x86 --remote "$$sock" 2>/dev/null) || { status=1; break; }; \
	  if [ -z "$$first" ]; then first="$$out"; \
	  elif [ "$$out" != "$$first" ]; then status=2; break; fi; \
	done; \
	stats=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --remote "$$sock" --stats 2>&1 >/dev/null) || status=1; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -f "$$sock"; \
	[ $$status -ne 1 ] || { echo "par-smoke: FAIL (remote run errored)"; exit 1; }; \
	[ $$status -ne 2 ] || { echo "par-smoke: FAIL (outputs differ across runs)"; exit 1; }; \
	echo "$$stats" | grep -Eq '"hits":[1-9]' || \
	  { echo "par-smoke: FAIL (no cache hit on the pooled daemon)"; exit 1; }; \
	echo "par-smoke: OK (4 identical runs through a 4-domain pool; cache hit)"

# Guest front-end smoke: assemble a StackVM program, lift it to OmniVM,
# run the lifted module on a real target with the guest reference
# interpreter as oracle, then write the lifted .omni and serve it through
# the normal run path with producer attribution. Exercises the assembler,
# the lifter, the differential check, and the uniform producer plumbing
# end to end from the CLI.
guest-smoke:
	dune build bin/omnirun.exe
	@src="/tmp/guest-smoke-$$$$.gasm"; omni="/tmp/guest-smoke-$$$$.omni"; \
	printf '.mem 8\n.func main 0 2\npush 10 set 0\nloop: get 0 brz done\nget 0 get 1 add set 1\nget 0 push 1 sub set 0\njmp loop\ndone: get 1 sys print_int\npush 10 sys put_char\npush 0 halt\n' > "$$src"; \
	out=$$(./_build/default/bin/omnirun.exe lift "$$src" --run --oracle \
	  --engine mips 2>&1) || { echo "guest-smoke: FAIL ($$out)"; exit 1; }; \
	echo "$$out" | grep -q '^55$$' || \
	  { echo "guest-smoke: FAIL (expected 55, got: $$out)"; exit 1; }; \
	echo "$$out" | grep -q 'oracle agrees' || \
	  { echo "guest-smoke: FAIL (no oracle verdict: $$out)"; exit 1; }; \
	./_build/default/bin/omnirun.exe lift "$$src" -o "$$omni" 2>/dev/null; \
	served=$$(./_build/default/bin/omnirun.exe run "$$omni" --engine x86 \
	  --producer stackvm) || { echo "guest-smoke: FAIL (lifted module errored under omnirun run)"; exit 1; }; \
	rm -f "$$src" "$$omni"; \
	[ "$$served" = "55" ] || \
	  { echo "guest-smoke: FAIL (served output: $$served)"; exit 1; }; \
	echo "guest-smoke: OK (lifted module matches oracle on mips; served on x86)"

# Crash-safe persistence smoke: start omnid with a journaled store on a
# throwaway socket, serve a cold burst, kill -9 the daemon MID-burst,
# restart it over the same store directory, and insist the warm serve is
# byte-identical with the recovered translation re-admitted via its
# witness (cert_checks > 0, i.e. no re-translation). Skips (exit 0) when
# the environment cannot create Unix-domain sockets.
persist-smoke:
	dune build examples/quickstart.exe bin/omnid.exe bin/omnirun.exe
	@sock="/tmp/omnid-persist-$$$$.sock"; dir="/tmp/omni-store-$$$$"; \
	rm -rf "$$dir"; rm -f "$$sock"; \
	./_build/default/examples/quickstart.exe -o /tmp/quickstart.omni >/dev/null; \
	./_build/default/bin/omnid.exe --socket "$$sock" --store-dir "$$dir" >/dev/null 2>&1 & pid=$$!; \
	i=0; while [ $$i -lt 100 ] && ! [ -S "$$sock" ]; do \
	  kill -0 $$pid 2>/dev/null || break; sleep 0.05; i=$$((i+1)); done; \
	if ! [ -S "$$sock" ]; then \
	  echo "persist-smoke: SKIP (could not create a Unix-domain socket)"; \
	  kill $$pid 2>/dev/null; rm -rf "$$dir"; exit 0; fi; \
	cold=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --remote "$$sock" 2>/dev/null) || \
	  { echo "persist-smoke: FAIL (cold remote run errored)"; \
	    kill -9 $$pid 2>/dev/null; exit 1; }; \
	( for n in 1 2 3 4 5 6; do \
	    ./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	      --engine x86 --remote "$$sock" >/dev/null 2>&1 || true; done ) & burst=$$!; \
	kill -9 $$pid 2>/dev/null; \
	wait $$burst 2>/dev/null; wait $$pid 2>/dev/null; rm -f "$$sock"; \
	./_build/default/bin/omnid.exe --socket "$$sock" --store-dir "$$dir" >/dev/null 2>&1 & pid=$$!; \
	i=0; while [ $$i -lt 100 ] && ! [ -S "$$sock" ]; do \
	  kill -0 $$pid 2>/dev/null || break; sleep 0.05; i=$$((i+1)); done; \
	[ -S "$$sock" ] || \
	  { echo "persist-smoke: FAIL (daemon did not restart over the store)"; \
	    rm -rf "$$dir"; exit 1; }; \
	warm=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --remote "$$sock" 2>/dev/null) || \
	  { echo "persist-smoke: FAIL (warm remote run errored)"; \
	    kill -9 $$pid 2>/dev/null; exit 1; }; \
	stats=$$(./_build/default/bin/omnirun.exe run /tmp/quickstart.omni \
	  --engine x86 --remote "$$sock" --stats 2>&1 >/dev/null); \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f "$$sock"; rm -rf "$$dir"; \
	[ "$$cold" = "$$warm" ] || \
	  { echo "persist-smoke: FAIL (output differs after kill -9 + recovery)"; exit 1; }; \
	echo "$$stats" | grep -Eq '"cert_checks":[1-9]' || \
	  { echo "persist-smoke: FAIL (recovered translation not witness-checked)"; exit 1; }; \
	echo "persist-smoke: OK (kill -9 mid-burst; journal recovered; warm serve byte-identical)"

clean:
	dune clean
