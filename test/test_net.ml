(* The distribution protocol: codec totality and end-to-end serving.

   Load-bearing properties:

   - the frame and message codecs are total: encode-then-decode is the
     identity, and NO byte string — truncated, bit-flipped, oversized,
     garbage — makes a decoder raise (qcheck'd);
   - a module submitted and run through the protocol produces results
     bit-identical to the in-process Api.run path, for every engine,
     with and without SFI;
   - every hostile input (bad magic, truncated frame, oversized frame,
     corrupt payload, unknown tag, malformed module, unknown handle,
     verifier-rejected translation) yields a typed Error response and
     the server keeps serving well-formed requests afterwards. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Risc = Omni_targets.Risc
module Exec = Omni_service.Exec
module Service = Omni_service.Service
module Cache = Omni_service.Cache
module Counters = Omni_service.Counters
module Frame = Omni_net.Frame
module Msg = Omni_net.Message
module Transport = Omni_net.Transport
module Server = Omni_net.Server
module Client = Omni_net.Client

let fuel = 50_000_000

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ["hits":N] with N >= 1 somewhere in a one-line JSON object. The
   leading quote keeps [dedup_hits] from matching. *)
let hits_positive json =
  let key = "\"hits\":" in
  let nl = String.length key and hl = String.length json in
  let rec go i =
    if i + nl >= hl then false
    else if String.sub json i nl = key then
      match json.[i + nl] with '1' .. '9' -> true | _ -> go (i + 1)
    else go (i + 1)
  in
  go 0

let hello_src =
  {| int g = 7;
     int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
     int main(void) {
       int i;
       for (i = 0; i < 5; i++) { print_int(f(i + 5) + g); putchar(32); }
       putchar(10);
       return 0; } |}

let hello_bytes = lazy (Api.compile ~name:"hello" hello_src)

let check_same_result what (a : Exec.run_result) (b : Exec.run_result) =
  Alcotest.(check string) (what ^ ": output") a.Exec.output b.Exec.output;
  Alcotest.(check int) (what ^ ": exit code") a.Exec.exit_code b.Exec.exit_code;
  Alcotest.(check int) (what ^ ": instructions") a.Exec.instructions
    b.Exec.instructions;
  Alcotest.(check int) (what ^ ": cycles") a.Exec.cycles b.Exec.cycles;
  Alcotest.(check bool)
    (what ^ ": outcome + stats")
    true
    (a.Exec.outcome = b.Exec.outcome && a.Exec.stats = b.Exec.stats)

(* --- frame codec --- *)

let frame_roundtrip () =
  List.iter
    (fun (tag, payload) ->
      let fr = { Frame.tag; payload } in
      let bytes = Frame.encode fr in
      (match Frame.decode bytes ~pos:0 with
      | Ok (fr', stop) ->
          Alcotest.(check bool) "decode = id" true (fr' = fr);
          Alcotest.(check int) "consumed all" (String.length bytes) stop
      | Error e -> Alcotest.failf "decode failed: %s" (Frame.error_to_string e));
      (* the stream decoder, through a deliberately dribbling reader *)
      let pos = ref 0 in
      let recv buf off len =
        let n = min 3 (min len (String.length bytes - !pos)) in
        Bytes.blit_string bytes !pos buf off n;
        pos := !pos + n;
        n
      in
      match Frame.read recv with
      | Ok fr' -> Alcotest.(check bool) "read = id" true (fr' = fr)
      | Error e -> Alcotest.failf "read failed: %s" (Frame.error_to_string e))
    [ (0, ""); (0x42, "hello"); (0xff, String.make 5000 '\x00');
      (7, String.init 256 Char.chr) ]

let frame_hostile () =
  let good = Frame.encode { Frame.tag = 1; payload = "payload" } in
  let expect what want got =
    Alcotest.(check string) what want
      (match got with
      | Ok _ -> "ok"
      | Error e -> (
          match (e : Frame.error) with
          | Frame.Eof -> "eof"
          | Frame.Truncated -> "truncated"
          | Frame.Bad_magic -> "bad-magic"
          | Frame.Bad_version _ -> "bad-version"
          | Frame.Too_large _ -> "too-large"
          | Frame.Corrupt -> "corrupt"))
  in
  expect "empty = eof" "eof" (Frame.decode "" ~pos:0);
  expect "bad magic" "bad-magic"
    (Frame.decode ("XMNI" ^ String.sub good 4 (String.length good - 4)) ~pos:0);
  let bad_ver = Bytes.of_string good in
  Bytes.set bad_ver 4 '\x63';
  expect "bad version" "bad-version"
    (Frame.decode (Bytes.to_string bad_ver) ~pos:0);
  expect "truncated header" "truncated" (Frame.decode (String.sub good 0 9) ~pos:0);
  expect "truncated payload" "truncated"
    (Frame.decode (String.sub good 0 (String.length good - 2)) ~pos:0);
  let corrupt = Bytes.of_string good in
  Bytes.set corrupt (Frame.header_size + 2) 'X';
  expect "corrupt payload" "corrupt" (Frame.decode (Bytes.to_string corrupt) ~pos:0);
  let oversized = Bytes.of_string good in
  Bytes.set_int32_be oversized 6 0x7fffffffl;
  expect "oversized" "too-large"
    (Frame.decode (Bytes.to_string oversized) ~pos:0)

(* qcheck: arbitrary (tag, payload) frames round-trip; arbitrary
   corruption of the encoding decodes to Ok or Error, never an escaping
   exception. *)
let qcheck_frame_total =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"frame: roundtrip + corruption total"
       QCheck.(
         triple (int_bound 255) (string_of_size (Gen.int_bound 300))
           (pair small_nat small_nat))
       (fun (tag, payload, (mut_pos, mut_byte)) ->
         let fr = { Frame.tag; payload } in
         let bytes = Frame.encode fr in
         let roundtrips =
           match Frame.decode bytes ~pos:0 with
           | Ok (fr', _) -> fr' = fr
           | Error _ -> false
         in
         (* flip one byte somewhere, then also truncate: decode must
            stay total on both *)
         let mutated = Bytes.of_string bytes in
         let p = mut_pos mod Bytes.length mutated in
         Bytes.set mutated p
           (Char.chr (Char.code (Bytes.get mutated p) lxor (1 + (mut_byte mod 255))));
         let mutated = Bytes.to_string mutated in
         let truncated = String.sub bytes 0 (mut_pos mod (String.length bytes + 1)) in
         let total s =
           match Frame.decode s ~pos:0 with Ok _ | Error _ -> true
         in
         roundtrips && total mutated && total truncated))

(* --- message codec --- *)

let gen_err_class =
  QCheck.Gen.oneofl
    [ Msg.E_decode; Msg.E_verifier_rejected; Msg.E_unknown_handle;
      Msg.E_limit_exceeded; Msg.E_internal; Msg.E_bad_frame;
      Msg.E_certificate_invalid ]

let gen_engine =
  QCheck.Gen.oneofl
    [ Exec.Interp; Exec.Fast; Exec.Target Arch.Mips; Exec.Target Arch.Sparc;
      Exec.Target Arch.Ppc; Exec.Target Arch.X86 ]

let gen_mode =
  let open QCheck.Gen in
  oneof
    [ return Msg.M_default;
      (let* pmode =
         oneofl [ Omni_sfi.Policy.Off; Omni_sfi.Policy.Sandbox; Omni_sfi.Policy.Guard ]
       in
       let* protect_reads = bool in
       let* pad = oneofl Omni_sfi.Policy.all_pads in
       return (Msg.M_policy { pmode; protect_reads; pad }));
      map
        (fun cc -> Msg.M_native (if cc then Machine.Cc else Machine.Gcc))
        bool ]

let gen_fault =
  let open QCheck.Gen in
  let access = oneofl [ Omnivm.Fault.Read; Omnivm.Fault.Write; Omnivm.Fault.Execute ] in
  oneof
    [ (let* addr = nat and* a = access in
       return (Omnivm.Fault.Access_violation { addr; access = a }));
      (let* addr = nat and* width = oneofl [ 1; 2; 4 ] in
       return (Omnivm.Fault.Misaligned { addr; width }));
      return Omnivm.Fault.Division_by_zero;
      map (fun pc -> Omnivm.Fault.Illegal_instruction { pc }) nat;
      map (fun index -> Omnivm.Fault.Unauthorized_host_call { index }) nat;
      return Omnivm.Fault.Stack_overflow;
      map (fun c -> Omnivm.Fault.Explicit_trap c) nat;
      return Omnivm.Fault.Deadline_exceeded ]

let gen_outcome =
  let open QCheck.Gen in
  oneof
    [ map (fun c -> Machine.Exited c) (int_range (-1) 255);
      map (fun f -> Machine.Faulted f) gen_fault;
      return Machine.Out_of_fuel ]

let gen_stats =
  let open QCheck.Gen in
  let* instructions = nat
  and* by_origin = array_repeat 6 nat
  and* cycles = nat
  and* loads = nat
  and* stores = nat
  and* branches = nat
  and* taken_branches = nat
  and* omni_instructions = nat in
  return
    { Machine.instructions; by_origin; cycles; loads; stores; branches;
      taken_branches; omni_instructions }

let gen_crash =
  let open QCheck.Gen in
  let* cs_pc = nat
  and* cs_regs = array_repeat 16 nat
  and* cs_window_base = int_range (-1) 1_000_000
  and* cs_window = string_size (int_bound 64) in
  return { Exec.cs_pc; cs_regs; cs_window_base; cs_window }

let gen_result =
  let open QCheck.Gen in
  let* output = string_size (int_bound 100)
  and* exit_code = int_range (-1) 255
  and* outcome = gen_outcome
  and* instructions = nat
  and* cycles = nat
  and* stats = opt gen_stats
  and* crash = opt gen_crash in
  return { Exec.output; exit_code; outcome; instructions; cycles; stats; crash }

let gen_req =
  let open QCheck.Gen in
  oneof
    [ return Msg.Ping;
      map (fun s -> Msg.Submit s) (string_size (int_bound 200));
      (let* rs_handle = map Int64.of_int nat
       and* rs_engine = gen_engine
       and* rs_sfi = bool
       and* rs_mode = gen_mode
       and* rs_fuel = opt nat
       and* rs_deadline_s = opt (map float_of_int (int_bound 1000))
       and* rs_want_cert = bool in
       return
         (Msg.Run
            { Msg.rs_handle; rs_engine; rs_sfi; rs_mode; rs_fuel;
              rs_deadline_s; rs_want_cert }));
      return Msg.Stats ]

let gen_resp =
  let open QCheck.Gen in
  oneof
    [ return Msg.Pong;
      map (fun d -> Msg.Submitted (Int64.of_int d)) nat;
      (let* r = gen_result
       and* cert = opt (string_size (int_bound 120)) in
       return (Msg.Ran (r, cert)));
      map (fun s -> Msg.Stats_json s) (string_size (int_bound 100));
      (let* cls = gen_err_class and* m = string_size (int_bound 80) in
       return (Msg.Error (cls, m))) ]

let qcheck_message_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"message: encode/decode = id"
       (QCheck.make (QCheck.Gen.pair gen_req gen_resp))
       (fun (req, resp) ->
         Msg.decode_req (Msg.encode_req req) = Ok req
         && Msg.decode_resp (Msg.encode_resp resp) = Ok resp))

let qcheck_message_corruption =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500
       ~name:"message: corrupted payloads decode to Error, never raise"
       (QCheck.make
          QCheck.Gen.(triple (pair gen_req gen_resp) small_nat small_nat))
       (fun ((req, resp), pos, delta) ->
         let total_req (fr : Frame.t) =
           match Msg.decode_req fr with Ok _ | Error _ -> true
         in
         let total_resp (fr : Frame.t) =
           match Msg.decode_resp fr with Ok _ | Error _ -> true
         in
         let mutate (fr : Frame.t) =
           let p = fr.Frame.payload in
           if String.length p = 0 then { fr with Frame.payload = "\x9f" }
           else
             let b = Bytes.of_string p in
             let i = pos mod Bytes.length b in
             Bytes.set b i
               (Char.chr
                  (Char.code (Bytes.get b i) lxor (1 + (delta mod 255))));
             { fr with Frame.payload = Bytes.to_string b }
         in
         let truncate (fr : Frame.t) =
           let p = fr.Frame.payload in
           { fr with Frame.payload = String.sub p 0 (pos mod (String.length p + 1)) }
         in
         let rf = Msg.encode_req req and pf = Msg.encode_resp resp in
         total_req (mutate rf) && total_req (truncate rf)
         && total_resp (mutate pf)
         && total_resp (truncate pf)
         (* a response never parses as a request and vice versa *)
         && (match Msg.decode_req pf with Error _ -> true | Ok _ -> false)
         && (match Msg.decode_resp rf with Error _ -> true | Ok _ -> false)))

(* --- end-to-end over the in-memory transport --- *)

let with_loopback f =
  let svc = Service.create () in
  let server = Server.create svc in
  let client = Client.loopback server in
  f svc server client

let e2e_identity () =
  with_loopback @@ fun svc _server client ->
  Client.ping client;
  let bytes = Lazy.force hello_bytes in
  let h = Client.submit client bytes in
  let h2 = Client.submit client bytes in
  Alcotest.(check bool) "submit is idempotent" true (Int64.equal h h2);
  (* interpreter + all four targets × SFI on/off, against Api.run *)
  List.iter
    (fun engine ->
      List.iter
        (fun sfi ->
          let remote = Client.run ~engine ~sfi ~fuel client h in
          let local =
            Api.run
              { Api.default_request with engine; sfi; fuel = Some fuel }
              (Api.Wire bytes)
          in
          check_same_result
            (Printf.sprintf "%s/sfi=%b" (Exec.engine_name engine) sfi)
            local remote)
        [ true; false ])
    [ Exec.Interp; Exec.Target Arch.Mips; Exec.Target Arch.Sparc;
      Exec.Target Arch.Ppc; Exec.Target Arch.X86 ];
  (* warm runs hit the translation cache *)
  let c = Service.stats svc in
  Alcotest.(check int) "one module" 1 c.Counters.s_modules;
  Alcotest.(check bool) "cache consulted" true (c.Counters.s_misses > 0);
  let r1 = Client.run ~engine:(Exec.Target Arch.Mips) ~fuel client h in
  let r2 = Client.run ~engine:(Exec.Target Arch.Mips) ~fuel client h in
  check_same_result "warm = warm" r1 r2;
  let c' = Service.stats svc in
  Alcotest.(check bool) "hits advanced" true
    (c'.Counters.s_hits > c.Counters.s_hits);
  (* stats travel as JSON *)
  let json = Client.stats_json client in
  Alcotest.(check bool) "stats json mentions hits" true
    (contains json "\"hits\":")

let e2e_native_mode () =
  with_loopback @@ fun _svc _server client ->
  let bytes = Lazy.force hello_bytes in
  let h = Client.submit client bytes in
  let remote =
    Client.run ~engine:(Exec.Target Arch.Ppc)
      ~mode:(Msg.M_native Machine.Gcc) ~fuel client h
  in
  let local =
    Api.run_exe ~engine:(Exec.Target Arch.Ppc) ~mode:(Machine.Native Machine.Gcc)
      ~fuel (Omnivm.Wire.decode bytes)
  in
  check_same_result "native-gcc baseline over the wire" local remote

(* --- hostile inputs --- *)

(* Push raw bytes at the server and read back one raw frame. *)
let raw_exchange server bytes =
  let c, s = Transport.pair () in
  Transport.on_stall c (fun () -> ignore (Server.step server s));
  Transport.send c bytes;
  let r = Frame.read (Transport.recv c) in
  Transport.close c;
  r

let expect_error_resp what cls r =
  match r with
  | Ok fr -> (
      match Msg.decode_resp fr with
      | Ok (Msg.Error (c, _)) ->
          Alcotest.(check string) what (Msg.err_class_name cls)
            (Msg.err_class_name c)
      | Ok _ -> Alcotest.failf "%s: expected Error response" what
      | Error m -> Alcotest.failf "%s: bad response: %s" what m)
  | Error e ->
      Alcotest.failf "%s: no response frame: %s" what (Frame.error_to_string e)

let hostile_frames () =
  with_loopback @@ fun _svc server client ->
  let alive what =
    Client.ping client;
    ignore what
  in
  let good = Frame.encode (Msg.encode_req Msg.Ping) in
  (* bad magic *)
  expect_error_resp "bad magic" Msg.E_bad_frame
    (raw_exchange server ("EVIL" ^ String.sub good 4 (String.length good - 4)));
  alive "after bad magic";
  (* foreign version *)
  let bad_ver = Bytes.of_string good in
  Bytes.set bad_ver 4 '\x07';
  expect_error_resp "bad version" Msg.E_bad_frame
    (raw_exchange server (Bytes.to_string bad_ver));
  alive "after bad version";
  (* oversized declared length: build a header claiming 2 GiB *)
  let oversized = Bytes.of_string good in
  Bytes.set_int32_be oversized 6 0x7fff_ffffl;
  expect_error_resp "oversized" Msg.E_bad_frame
    (raw_exchange server (Bytes.to_string oversized));
  alive "after oversized";
  (* short read: header promises 64 payload bytes, stream ends early *)
  let submit = Frame.encode (Msg.encode_req (Msg.Submit (String.make 64 'x'))) in
  expect_error_resp "short read" Msg.E_bad_frame
    (raw_exchange server (String.sub submit 0 (String.length submit - 10)));
  alive "after short read";
  (* corrupt payload byte: checksum catches it *)
  let corrupt = Bytes.of_string submit in
  Bytes.set corrupt (Frame.header_size + 5) '\x00';
  expect_error_resp "corrupt payload" Msg.E_bad_frame
    (raw_exchange server (Bytes.to_string corrupt));
  alive "after corruption";
  (* unknown request tag *)
  expect_error_resp "unknown tag" Msg.E_decode
    (raw_exchange server (Frame.encode { Frame.tag = 0x7f; payload = "" }));
  alive "after unknown tag"

(* Frame payloads at the admission boundary: empty, exactly at the cap,
   one byte over. The cap refusal is a framing-level E_bad_frame (an
   oversized declared length is indistinguishable from a corrupted
   length field); honest size admission is the server's module-byte
   quota, tested in test_fault.ml. *)
let frame_boundaries () =
  let svc = Service.create () in
  let cap = 64 in
  let server =
    Server.create
      ~config:{ Server.default_config with Server.max_frame = cap }
      svc
  in
  (* empty payload: Ping is an empty-payload frame *)
  (match raw_exchange server (Frame.encode (Msg.encode_req Msg.Ping)) with
  | Ok fr ->
      Alcotest.(check bool) "empty-payload frame serves" true
        (Msg.decode_resp fr = Ok Msg.Pong)
  | Error e -> Alcotest.failf "no pong: %s" (Frame.error_to_string e));
  (* a payload exactly at the cap clears framing: the message layer's
     unknown-tag refusal proves the frame itself was admitted *)
  expect_error_resp "payload at cap" Msg.E_decode
    (raw_exchange server
       (Frame.encode { Frame.tag = 0x7f; payload = String.make cap 'a' }));
  (* one byte over the cap is refused at the framing layer *)
  expect_error_resp "payload one over cap" Msg.E_bad_frame
    (raw_exchange server
       (Frame.encode { Frame.tag = 0x7f; payload = String.make (cap + 1) 'a' }));
  (* and the server still serves *)
  match raw_exchange server (Frame.encode (Msg.encode_req Msg.Ping)) with
  | Ok fr ->
      Alcotest.(check bool) "still serving after cap refusal" true
        (Msg.decode_resp fr = Ok Msg.Pong)
  | Error e -> Alcotest.failf "server died: %s" (Frame.error_to_string e)

let hostile_requests () =
  with_loopback @@ fun _svc _server client ->
  (* malformed module bytes *)
  (match Client.submit client "not a module" with
  | _ -> Alcotest.fail "server admitted garbage"
  | exception Client.Remote_error (Msg.E_decode, _) -> ());
  Client.ping client;
  (* unknown handle *)
  (match Client.run ~fuel client 0xdeadbeefL with
  | _ -> Alcotest.fail "server ran a module it never saw"
  | exception Client.Remote_error (Msg.E_unknown_handle, _) -> ());
  Client.ping client;
  (* a well-formed request still works on the very same connection *)
  let h = Client.submit client (Lazy.force hello_bytes) in
  let r = Client.run ~fuel client h in
  Alcotest.(check int) "exit 0 after hostile traffic" 0 r.Exec.exit_code

(* Corrupt the server's translation cache in place: the per-hit static
   verifier must refuse to let the poisoned code reach a simulator, the
   client must see a typed error, and the daemon must keep serving. *)
let verifier_rejected () =
  with_loopback @@ fun svc _server client ->
  let bytes = Lazy.force hello_bytes in
  let h = Client.submit client bytes in
  let r = Client.run ~engine:(Exec.Target Arch.Mips) ~fuel client h in
  Alcotest.(check int) "clean run first" 0 r.Exec.exit_code;
  (* same bytes -> same handle on the server's own store *)
  let local_h = Service.submit svc bytes in
  (match Service.cached ~arch:Arch.Mips svc local_h with
  | Some e -> (
      match e.Cache.tr with
      | Exec.T_risc p ->
          let bad = if Risc.omni_sp = 20 then 21 else 20 in
          p.Risc.code.(0) <-
            Risc.mk Machine.Core (Risc.Store (Omnivm.Instr.W32, bad, bad, 0))
      | Exec.T_x86 _ -> Alcotest.fail "mips entry is not risc?")
  | None -> Alcotest.fail "no cached mips entry");
  (match Client.run ~engine:(Exec.Target Arch.Mips) ~fuel client h with
  | _ -> Alcotest.fail "poisoned cache entry reached the simulator"
  | exception Client.Remote_error (Msg.E_verifier_rejected, _) -> ());
  (* the daemon survives and other configurations still serve *)
  Client.ping client;
  let r = Client.run ~engine:(Exec.Target Arch.Sparc) ~fuel client h in
  Alcotest.(check int) "sparc still serves" 0 r.Exec.exit_code

(* --- the Api facade's remote path --- *)

let api_remote_path () =
  with_loopback @@ fun _svc _server client ->
  let bytes = Lazy.force hello_bytes in
  let local = Api.run_wire ~engine:"x86" ~fuel bytes in
  let remote = Api.run_wire_remote ~remote:client ~engine:"x86" ~fuel bytes in
  check_same_result "run_wire_remote = run_wire" local remote;
  (* remote refusals surface as the local exceptions *)
  (match Api.run_wire_remote ~remote:client ~engine:"x86" "garbage" with
  | _ -> Alcotest.fail "garbage ran"
  | exception Omnivm.Wire.Bad_module _ -> ());
  match
    Api.run
      { Api.default_request with
        engine = Exec.Target Arch.Ppc;
        fuel = Some fuel;
        remote = Some client }
      (Api.Wire bytes)
  with
  | r -> Alcotest.(check int) "request-record remote run" 0 r.Exec.exit_code

(* --- real Unix socket, daemon in a forked child --- *)

let socket_skip reason = Printf.eprintf "net socket test: SKIP (%s)\n%!" reason

let socket_e2e () =
  if not Sys.unix then socket_skip "not a Unix platform"
  else
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "omni_net_test_%d.sock" (Unix.getpid ()))
    in
    (try Sys.remove path with Sys_error _ -> ());
    match Server.listen (Transport.Unix_sock path) with
    | exception _ -> socket_skip "cannot bind a Unix-domain socket"
    | listen_fd -> (
        match Unix.fork () with
        | exception _ ->
            Unix.close listen_fd;
            (try Sys.remove path with Sys_error _ -> ());
            socket_skip "cannot fork"
        | 0 ->
            (* child: a daemon — sequential accept loop, killed by the
               parent. _exit so alcotest's at_exit never runs here. *)
            (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
             with Invalid_argument _ -> ());
            let svc = Service.create () in
            let server = Server.create svc in
            (try Server.serve server listen_fd with _ -> ());
            Unix._exit 0
        | pid ->
            Unix.close listen_fd;
            Fun.protect
              ~finally:(fun () ->
                (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] pid);
                try Sys.remove path with Sys_error _ -> ())
              (fun () ->
                (* wait for the daemon to come up *)
                let rec conn tries =
                  match Transport.connect (Transport.Unix_sock path) with
                  | c -> c
                  | exception Unix.Unix_error _ when tries > 0 ->
                      Unix.sleepf 0.05;
                      conn (tries - 1)
                in
                let c = conn 100 in
                Transport.set_read_timeout c 30.;
                let client = Client.of_conn c in
                Client.ping client;
                let bytes = Lazy.force hello_bytes in
                let h = Client.submit client bytes in
                let remote =
                  Client.run ~engine:(Exec.Target Arch.X86) ~fuel client h
                in
                let local =
                  Api.run_wire ~engine:"x86" ~fuel bytes
                in
                check_same_result "socket run = local run" local remote;
                (* hostile frame on a second connection; the daemon
                   answers with a typed error and survives *)
                let c2 = Transport.connect (Transport.Unix_sock path) in
                Transport.set_read_timeout c2 30.;
                let good = Frame.encode (Msg.encode_req Msg.Ping) in
                Transport.send c2
                  ("EVIL" ^ String.sub good 4 (String.length good - 4));
                expect_error_resp "socket bad magic" Msg.E_bad_frame
                  (Frame.read (Transport.recv c2));
                Transport.close c2;
                (* warm run on a fresh connection: the daemon's cache hits *)
                let c3 = Transport.connect (Transport.Unix_sock path) in
                Transport.set_read_timeout c3 30.;
                let client3 = Client.of_conn c3 in
                let h3 = Client.submit client3 bytes in
                let again =
                  Client.run ~engine:(Exec.Target Arch.X86) ~fuel client3 h3
                in
                check_same_result "warm socket run" remote again;
                let json = Client.stats_json client3 in
                Alcotest.(check bool) "daemon reports a cache hit" true
                  (hits_positive json);
                Client.close client3;
                Client.close client))

(* A daemon that stalls mid-frame: the first connection answers with 7
   bytes of a Pong frame and then hangs past the client's read timeout.
   The retrying client must classify the Transport.Timeout as transient,
   re-dial, and succeed against the (by then well-behaved) daemon. *)
let socket_stall_retry () =
  if not Sys.unix then socket_skip "not a Unix platform"
  else
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "omni_net_stall_%d.sock" (Unix.getpid ()))
    in
    (try Sys.remove path with Sys_error _ -> ());
    match Server.listen (Transport.Unix_sock path) with
    | exception _ -> socket_skip "cannot bind a Unix-domain socket"
    | listen_fd -> (
        match Unix.fork () with
        | exception _ ->
            Unix.close listen_fd;
            (try Sys.remove path with Sys_error _ -> ());
            socket_skip "cannot fork"
        | 0 ->
            (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
             with Invalid_argument _ -> ());
            (* first connection: read the request, send a truncated
               response, hang past the client's read timeout *)
            (try
               let fd, _ = Unix.accept listen_fd in
               let conn = Transport.of_fd fd in
               Transport.set_read_timeout conn 5.;
               ignore (Frame.read (Transport.recv conn));
               let pong = Frame.encode (Msg.encode_resp Msg.Pong) in
               Transport.send conn (String.sub pong 0 7);
               Unix.sleepf 0.8;
               Transport.close conn
             with _ -> ());
            (* then behave *)
            let svc = Service.create () in
            let server = Server.create svc in
            (try Server.serve server listen_fd with _ -> ());
            Unix._exit 0
        | pid ->
            Unix.close listen_fd;
            Fun.protect
              ~finally:(fun () ->
                (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] pid);
                try Sys.remove path with Sys_error _ -> ())
              (fun () ->
                let retry =
                  { Omni_net.Retry.default with
                    Omni_net.Retry.max_attempts = 5;
                    base_delay_s = 0.6 }
                in
                let client =
                  Client.connect ~retry ~read_timeout:0.4
                    (Transport.Unix_sock path)
                in
                let reg = Omni_obs.Metrics.create () in
                let tracer = Omni_obs.Trace.make ~metrics:reg Omni_obs.Trace.Null in
                Omni_obs.Trace.with_current tracer (fun () ->
                    Client.ping client;
                    let bytes = Lazy.force hello_bytes in
                    let h = Client.submit client bytes in
                    let remote =
                      Client.run ~engine:(Exec.Target Arch.X86) ~fuel client h
                    in
                    let local = Api.run_wire ~engine:"x86" ~fuel bytes in
                    check_same_result "post-stall run = local run" local remote);
                Alcotest.(check bool) "the stalled attempt was retried" true
                  (Omni_obs.Metrics.value
                     (Omni_obs.Metrics.counter reg "net.retry")
                  >= 1);
                Client.close client))

let () =
  Alcotest.run "net"
    [ ("frame",
       [ Alcotest.test_case "roundtrip" `Quick frame_roundtrip;
         Alcotest.test_case "hostile bytes" `Quick frame_hostile;
         qcheck_frame_total ]);
      ("message",
       [ qcheck_message_roundtrip; qcheck_message_corruption ]);
      ("e2e",
       [ Alcotest.test_case "identity across engines × SFI" `Quick
           e2e_identity;
         Alcotest.test_case "native baseline mode" `Quick e2e_native_mode;
         Alcotest.test_case "api remote path" `Quick api_remote_path ]);
      ("hostile",
       [ Alcotest.test_case "frames" `Quick hostile_frames;
         Alcotest.test_case "frame boundaries" `Quick frame_boundaries;
         Alcotest.test_case "requests" `Quick hostile_requests;
         Alcotest.test_case "verifier rejection" `Quick verifier_rejected ]);
      ("socket",
       [ Alcotest.test_case "daemon over unix socket" `Quick socket_e2e;
         Alcotest.test_case "stalled daemon, retrying client" `Quick
           socket_stall_retry ]) ]
