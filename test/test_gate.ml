(* The benchmark regression gate (Omni_harness.Gate) against synthetic
   snapshot pairs: the hot-path scanner, the regression threshold
   semantics (strictly-above fails, exactly-at passes, zero baselines
   never trip), and the skip bookkeeping for keys that exist in only one
   snapshot — the gate must neither fail on them nor lose them
   silently. *)

module Gate = Omni_harness.Gate

(* a synthetic snapshot in the exact shape bench_snapshot writes *)
let snap hot =
  Printf.sprintf
    "{\n\
    \  \"schema\": \"omni-bench/1\",\n\
    \  \"size\": \"test\",\n\
    \  \"service\": {\n\
    \    \"x86\": {\"cold_us\": 1234, \"warm_us\": 56}\n\
    \  },\n\
    \  \"hot_paths\": {\n\
     %s\n\
    \  }\n\
     }\n"
    (String.concat ",\n"
       (List.map
          (fun (k, v) -> Printf.sprintf "    \"%s\": %d" k v)
          hot))

let pairs =
  Alcotest.(list (pair string int))

let scanner_roundtrip () =
  let hot = [ ("phase.run.mean", 42); ("service.warm.x86", 0);
              ("persist.cold_us", 31415) ] in
  Alcotest.check pairs "all pairs survive" hot
    (Gate.hot_paths_of_json (snap hot));
  (* the nested objects before hot_paths are not mistaken for it *)
  Alcotest.check pairs "empty object" [] (Gate.hot_paths_of_json (snap []))

let scanner_total_on_garbage () =
  List.iter
    (fun text ->
      Alcotest.check pairs
        (Printf.sprintf "no pairs from %S" text)
        [] (Gate.hot_paths_of_json text))
    [ ""; "{}"; "not json at all"; "{\"hot_paths\""; "{\"hot_paths\": {";
      "\"hot_paths\" with no object" ]

let diff ?threshold baseline fresh =
  Gate.diff ?threshold ~baseline ~fresh ()

let gate_passes_within_threshold () =
  let d = diff [ ("a", 100); ("b", 50) ] [ ("a", 110); ("b", 45) ] in
  Alcotest.(check int) "compared both" 2 d.Gate.d_compared;
  Alcotest.(check int) "no regressions" 0 (List.length d.Gate.d_regressions);
  Alcotest.(check bool) "nothing skipped" true
    (Gate.skip_summary d = None)

let gate_fails_above_threshold () =
  let d = diff [ ("a", 100) ] [ ("a", 121) ] in
  match d.Gate.d_regressions with
  | [ ("a", 100, 121) ] ->
      let line = Gate.render_regression ("a", 100, 121) in
      Alcotest.(check bool) "rendered with both values" true
        (String.length line > 0
        && String.index_opt line 'R' <> None)
  | _ -> Alcotest.fail "a 21% slowdown must regress at threshold 1.20"

let gate_exactly_at_threshold_passes () =
  (* 120 is not strictly above 1.20 * 100 *)
  let d = diff [ ("a", 100) ] [ ("a", 120) ] in
  Alcotest.(check int) "at-threshold passes" 0
    (List.length d.Gate.d_regressions)

let gate_zero_baseline_never_trips () =
  let d = diff [ ("a", 0) ] [ ("a", 50_000) ] in
  Alcotest.(check int) "zero baseline skipped from gating" 0
    (List.length d.Gate.d_regressions);
  Alcotest.(check int) "but still compared" 1 d.Gate.d_compared

let gate_custom_threshold () =
  let d = diff ~threshold:2.0 [ ("a", 100) ] [ ("a", 199) ] in
  Alcotest.(check int) "within 2x" 0 (List.length d.Gate.d_regressions);
  let d = diff ~threshold:2.0 [ ("a", 100) ] [ ("a", 201) ] in
  Alcotest.(check int) "above 2x" 1 (List.length d.Gate.d_regressions)

let gate_new_key_skipped () =
  (* a new hot path has no baseline: skipped this run, named in the
     summary, gated next run once the fresh snapshot becomes baseline *)
  let d = diff [ ("a", 100) ] [ ("a", 100); ("persist.cold_us", 1) ] in
  Alcotest.(check (list string)) "new key listed" [ "persist.cold_us" ]
    d.Gate.d_new;
  Alcotest.(check int) "not gated" 0 (List.length d.Gate.d_regressions);
  match Gate.skip_summary d with
  | Some line ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "summary names the key" true
        (contains line "persist.cold_us");
      Alcotest.(check bool) "one line" true
        (not (String.contains line '\n'))
  | None -> Alcotest.fail "skipped keys must be summarized"

let gate_dropped_key_skipped () =
  let d = diff [ ("a", 100); ("retired", 9) ] [ ("a", 100) ] in
  Alcotest.(check (list string)) "dropped key listed" [ "retired" ]
    d.Gate.d_dropped;
  Alcotest.(check int) "only the shared key compared" 1 d.Gate.d_compared;
  Alcotest.(check bool) "summarized" true (Gate.skip_summary d <> None)

let gate_empty_baseline () =
  let d = diff [] [ ("a", 1); ("b", 2) ] in
  Alcotest.(check int) "nothing compared" 0 d.Gate.d_compared;
  Alcotest.(check int) "nothing regressed" 0
    (List.length d.Gate.d_regressions);
  Alcotest.(check int) "everything new" 2 (List.length d.Gate.d_new)

(* absolute slack: a relative regression under [default_min_delta] µs of
   absolute slowdown is timer noise on a tiny path, not a regression —
   but a tiny path that blows through both bars still trips *)
let gate_small_delta_is_noise () =
  let d = diff [ ("cert.check", 32) ] [ ("cert.check", 39) ] in
  Alcotest.(check int) "+22%% but only 7us: not a regression" 0
    (List.length d.Gate.d_regressions)

let gate_small_base_large_delta_trips () =
  let d = diff [ ("cert.check", 30) ] [ ("cert.check", 45) ] in
  Alcotest.(check int) "+50%% and 15us: regression" 1
    (List.length d.Gate.d_regressions)

let gate_custom_min_delta () =
  let fine =
    Gate.diff ~min_delta:0 ~baseline:[ ("a", 32) ] ~fresh:[ ("a", 39) ] ()
  in
  Alcotest.(check int) "min_delta 0 restores the pure ratio test" 1
    (List.length fine.Gate.d_regressions)

(* re-measurement merge: per-key minimum, fresh's key set — one noisy
   attempt must not fail the gate, but a genuine regression (slow in
   every attempt) must survive the merge and still trip it *)
let merge_min_absorbs_spike () =
  let spiky = [ ("a", 250); ("b", 50) ] in
  let retry = [ ("a", 205); ("b", 55) ] in
  Alcotest.(check pairs) "per-key minimum"
    [ ("a", 205); ("b", 50) ]
    (Gate.merge_min spiky retry);
  let d = diff [ ("a", 200); ("b", 50) ] (Gate.merge_min spiky retry) in
  Alcotest.(check int) "spike absorbed, no regression" 0
    (List.length d.Gate.d_regressions)

let merge_min_keeps_real_regression () =
  let first = [ ("a", 260) ] and second = [ ("a", 255) ] in
  let d = diff [ ("a", 200) ] (Gate.merge_min first second) in
  Alcotest.(check pairs) "min of two slow samples" [ ("a", 255) ]
    (Gate.merge_min first second);
  Alcotest.(check int) "still regressed" 1 (List.length d.Gate.d_regressions)

let merge_min_key_set_is_fresh () =
  Alcotest.(check pairs) "new key passes through, dropped key gone"
    [ ("a", 7); ("fresh-only", 3) ]
    (Gate.merge_min
       [ ("a", 9); ("prev-only", 1) ]
       [ ("a", 7); ("fresh-only", 3) ])

let () =
  Alcotest.run "gate"
    [ ("scanner",
       [ Alcotest.test_case "snapshot roundtrip" `Quick scanner_roundtrip;
         Alcotest.test_case "total on garbage" `Quick
           scanner_total_on_garbage ]);
      ("threshold",
       [ Alcotest.test_case "passes within" `Quick
           gate_passes_within_threshold;
         Alcotest.test_case "fails above" `Quick gate_fails_above_threshold;
         Alcotest.test_case "exactly at passes" `Quick
           gate_exactly_at_threshold_passes;
         Alcotest.test_case "zero baseline never trips" `Quick
           gate_zero_baseline_never_trips;
         Alcotest.test_case "custom threshold" `Quick gate_custom_threshold;
         Alcotest.test_case "small delta is noise" `Quick
           gate_small_delta_is_noise;
         Alcotest.test_case "small base, large delta trips" `Quick
           gate_small_base_large_delta_trips;
         Alcotest.test_case "custom min delta" `Quick
           gate_custom_min_delta ]);
      ("skips",
       [ Alcotest.test_case "new key" `Quick gate_new_key_skipped;
         Alcotest.test_case "dropped key" `Quick gate_dropped_key_skipped;
         Alcotest.test_case "empty baseline seeds" `Quick
           gate_empty_baseline ]);
      ("re-measure",
       [ Alcotest.test_case "spike absorbed" `Quick merge_min_absorbs_spike;
         Alcotest.test_case "real regression survives" `Quick
           merge_min_keeps_real_regression;
         Alcotest.test_case "key set is fresh's" `Quick
           merge_min_key_set_is_fresh ]) ]
