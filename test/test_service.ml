(* The serving stack: content-addressed module store + memoizing
   translation cache + service front-end.

   The load-bearing property is the cache invariant: a run served from the
   translation cache must be observationally identical (output, exit code,
   instruction and cycle counts) to an uncached run of the same request,
   across all four target architectures, with and without SFI — and cached
   sandboxed artifacts must still pass the static SFI verifier on every
   hit. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Exec = Omni_service.Exec
module Store = Omni_service.Store
module Cache = Omni_service.Cache
module Counters = Omni_service.Counters
module Lru = Omni_service.Lru
module Service = Omni_service.Service

let fuel = 50_000_000

let hello_src =
  {| int g = 7;
     int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
     int main(void) {
       int i;
       for (i = 0; i < 5; i++) { print_int(f(i + 5) + g); putchar(32); }
       putchar(10);
       return 0; } |}

let hello_bytes = lazy (Api.compile ~name:"hello" hello_src)

let check_same_result what (a : Exec.run_result) (b : Exec.run_result) =
  Alcotest.(check string) (what ^ ": output") a.Exec.output b.Exec.output;
  Alcotest.(check int) (what ^ ": exit code") a.Exec.exit_code b.Exec.exit_code;
  Alcotest.(check int) (what ^ ": instructions") a.Exec.instructions
    b.Exec.instructions;
  Alcotest.(check int) (what ^ ": cycles") a.Exec.cycles b.Exec.cycles

(* --- store --- *)

let store_dedup () =
  let svc = Service.create () in
  let bytes = Lazy.force hello_bytes in
  let h1 = Service.submit svc bytes in
  let h2 = Service.submit svc bytes in
  Alcotest.(check bool) "same handle" true (Store.equal_handle h1 h2);
  let c = Service.stats svc in
  Alcotest.(check int) "one module" 1 c.Counters.s_modules;
  Alcotest.(check int) "one dedup hit" 1 c.Counters.s_dedup_hits;
  Alcotest.(check int) "two submits" 2 c.Counters.s_submits;
  Alcotest.(check int) "bytes stored once" (String.length bytes)
    c.Counters.s_bytes_stored

let store_rejects_garbage () =
  let svc = Service.create () in
  match Service.submit svc "not a module" with
  | _ -> Alcotest.fail "store admitted malformed bytes"
  | exception Omnivm.Wire.Bad_module _ -> ()

let store_digests_differ () =
  let b1 = Lazy.force hello_bytes in
  let b2 = Api.compile ~name:"other" "int main(void) { return 1; }" in
  let svc = Service.create () in
  let h1 = Service.submit svc b1 in
  let h2 = Service.submit svc b2 in
  Alcotest.(check bool) "distinct handles" false (Store.equal_handle h1 h2);
  Alcotest.(check int) "two modules" 2 (Service.stats svc).Counters.s_modules

(* --- observational identity of cached runs --- *)

let identity_one ~arch ~sfi () =
  let bytes = Lazy.force hello_bytes in
  let engine = Exec.Target arch in
  let svc = Service.create () in
  let h = Service.submit svc bytes in
  let cold = Service.instantiate ~engine ~sfi ~fuel svc h in
  let warm = Service.instantiate ~engine ~sfi ~fuel svc h in
  let c = Service.stats svc in
  Alcotest.(check int) "one translation" 1 c.Counters.s_translations;
  Alcotest.(check int) "one miss" 1 c.Counters.s_misses;
  Alcotest.(check int) "one hit" 1 c.Counters.s_hits;
  check_same_result "warm vs cold" cold warm;
  (* and both must match the uncached façade path *)
  let direct =
    Api.run_wire ~engine:(Arch.name arch) ~sfi ~fuel bytes
  in
  check_same_result "cold vs uncached" direct cold;
  Alcotest.(check bool) "exited 0" true (cold.Exec.exit_code = 0)

let identity_cases =
  List.concat_map
    (fun arch ->
      List.map
        (fun sfi ->
          Alcotest.test_case
            (Printf.sprintf "%s sfi=%b" (Arch.name arch) sfi)
            `Quick (identity_one ~arch ~sfi))
        [ true; false ])
    Arch.all

let interp_cached () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create () in
  let h = Service.submit svc bytes in
  let r1 = Service.instantiate ~fuel svc h in
  let r2 = Service.instantiate ~fuel svc h in
  check_same_result "interp twice" r1 r2;
  let direct = Api.run_wire ~engine:"interp" ~fuel bytes in
  check_same_result "interp vs uncached" direct r1;
  let c = Service.stats svc in
  Alcotest.(check int) "interp never translates" 0 c.Counters.s_translations;
  Alcotest.(check int) "two instantiations" 2 c.Counters.s_instantiations

(* --- verifier admission of cached artifacts --- *)

let cached_artifacts_verify () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create () in
  let h = Service.submit svc bytes in
  List.iter
    (fun arch ->
      ignore (Service.instantiate ~engine:(Exec.Target arch) ~fuel svc h);
      ignore (Service.instantiate ~engine:(Exec.Target arch) ~fuel svc h);
      match Service.cached ~arch svc h with
      | None -> Alcotest.failf "%s: no cached entry" (Arch.name arch)
      | Some e ->
          Alcotest.(check bool)
            (Arch.name arch ^ ": verdict Verified")
            true
            (e.Cache.verdict = Cache.Verified);
          (match Exec.verify e.Cache.tr with
          | Ok () -> ()
          | Error reason ->
              Alcotest.failf "%s: cached artifact rejected: %s"
                (Arch.name arch) reason);
          Alcotest.(check bool)
            (Arch.name arch ^ ": fingerprint stable")
            true
            (Omni_util.Fnv64.equal e.Cache.fp (Exec.fingerprint e.Cache.tr)))
    Arch.all;
  let c = Service.stats svc in
  (* 4 archs × 1 cold full (certifying) verification; the warm admission
     is a witness check against the stored certificate, not a re-verify *)
  Alcotest.(check int) "full verifier ran per cold load" 4
    c.Counters.s_verifications;
  Alcotest.(check int) "warm admissions witness-checked" 4
    c.Counters.s_cert_checks;
  Alcotest.(check int) "no witness fell back to full verify" 0
    c.Counters.s_cert_full_verify;
  Alcotest.(check int) "no admission failed" 0 c.Counters.s_verify_fail

let nosfi_not_applicable () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create () in
  let h = Service.submit svc bytes in
  ignore
    (Service.instantiate ~engine:(Exec.Target Arch.Mips) ~sfi:false ~fuel svc h);
  (match Service.cached ~arch:Arch.Mips ~sfi:false svc h with
  | Some e ->
      Alcotest.(check bool) "verdict N/A" true
        (e.Cache.verdict = Cache.Not_applicable)
  | None -> Alcotest.fail "no cached entry");
  let c = Service.stats svc in
  Alcotest.(check int) "no verifier run without SFI" 0 c.Counters.s_verifications

(* A cache hit must re-translate nothing even when the translation is
   structurally re-derivable: check the memoized program IS the fresh one. *)
let cached_equals_fresh () =
  let bytes = Lazy.force hello_bytes in
  let exe = Omnivm.Wire.decode bytes in
  let svc = Service.create () in
  let h = Service.submit svc bytes in
  List.iter
    (fun arch ->
      ignore (Service.instantiate ~engine:(Exec.Target arch) ~fuel svc h);
      let fresh = Api.translate arch exe in
      match Service.cached ~arch svc h with
      | None -> Alcotest.failf "%s: no cached entry" (Arch.name arch)
      | Some e ->
          Alcotest.(check bool)
            (Arch.name arch ^ ": cached = fresh translation")
            true
            (Exec.equal_translated e.Cache.tr fresh);
          Alcotest.(check bool)
            (Arch.name arch ^ ": fingerprints agree")
            true
            (Omni_util.Fnv64.equal (Exec.fingerprint fresh)
               (Exec.fingerprint e.Cache.tr)))
    Arch.all

(* --- LRU unit tests --- *)

let lru_eviction_order () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check (option (pair string int)))
    "add a" None (Lru.add l "a" 1);
  Alcotest.(check (option (pair string int)))
    "add b" None (Lru.add l "b" 2);
  (* touch a so b becomes LRU *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  Alcotest.(check (option (pair string int)))
    "add c evicts b" (Some ("b", 2)) (Lru.add l "c" 3);
  Alcotest.(check (list string)) "recency c,a" [ "c"; "a" ]
    (Lru.keys_mru_first l);
  Alcotest.(check (option int)) "b gone" None (Lru.find l "b");
  (* replacing a key promotes it without eviction *)
  Alcotest.(check (option (pair string int)))
    "replace a" None (Lru.add l "a" 10);
  Alcotest.(check (list string)) "recency a,c" [ "a"; "c" ]
    (Lru.keys_mru_first l);
  Alcotest.(check (option int)) "peek keeps order" (Some 3) (Lru.peek l "c");
  Alcotest.(check (list string)) "peek did not promote" [ "a"; "c" ]
    (Lru.keys_mru_first l)

let lru_capacity_zero () =
  let l = Lru.create ~capacity:0 in
  Alcotest.(check (option (pair string int)))
    "add is a no-op" None (Lru.add l "a" 1);
  Alcotest.(check int) "stores nothing" 0 (Lru.length l);
  Alcotest.(check (option int)) "never hits" None (Lru.find l "a")

let cache_capacity_zero_disables () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create ~cache_capacity:0 () in
  let h = Service.submit svc bytes in
  let r1 = Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h in
  let r2 = Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h in
  check_same_result "uncached runs agree" r1 r2;
  let c = Service.stats svc in
  Alcotest.(check int) "no hits" 0 c.Counters.s_hits;
  Alcotest.(check int) "every load translates" 2 c.Counters.s_translations

let cache_eviction_counted () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create ~cache_capacity:1 () in
  let h = Service.submit svc bytes in
  let run arch =
    ignore (Service.instantiate ~engine:(Exec.Target arch) ~fuel svc h)
  in
  run Arch.Mips;
  run Arch.Sparc;
  (* mips evicted *)
  run Arch.Mips;
  let c = Service.stats svc in
  Alcotest.(check int) "three translations" 3 c.Counters.s_translations;
  Alcotest.(check int) "two evictions" 2 c.Counters.s_evictions;
  Alcotest.(check int) "no hits at capacity 1" 0 c.Counters.s_hits

(* --- run_wire_cached façade --- *)

let run_wire_cached_matches () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create () in
  let direct = Api.run_wire ~engine:"ppc" ~fuel bytes in
  let c1 = Api.run_wire_cached ~service:svc ~engine:"ppc" ~fuel bytes in
  let c2 = Api.run_wire_cached ~service:svc ~engine:"ppc" ~fuel bytes in
  check_same_result "cached vs direct" direct c1;
  check_same_result "second cached" direct c2;
  let c = Service.stats svc in
  Alcotest.(check int) "deduped" 1 c.Counters.s_dedup_hits;
  Alcotest.(check int) "hit on second" 1 c.Counters.s_hits

(* --- qcheck: random programs × random configs --- *)

let gen_minic_program rng =
  let ri n = Random.State.int rng n in
  let gen_expr depth vars =
    let buf = Buffer.create 64 in
    let rec go depth =
      if depth = 0 || ri 4 = 0 then
        match ri 3 with
        | 0 -> Buffer.add_string buf (string_of_int (ri 100 - 50))
        | _ -> Buffer.add_string buf (List.nth vars (ri (List.length vars)))
      else begin
        Buffer.add_char buf '(';
        go (depth - 1);
        Buffer.add_string buf
          (match ri 9 with
          | 0 -> " + " | 1 -> " - " | 2 -> " * " | 3 -> " < " | 4 -> " == "
          | 5 -> " & " | 6 -> " ^ " | 7 -> " | " | _ -> " != ");
        go (depth - 1);
        Buffer.add_char buf ')'
      end
    in
    go depth;
    Buffer.contents buf
  in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "int f(int a, int b, int c) {\n";
  let vars = ref [ "a"; "b"; "c" ] in
  let nlocals = 1 + ri 5 in
  for i = 0 to nlocals - 1 do
    Printf.bprintf buf "  int v%d;\n" i
  done;
  for i = 0 to nlocals - 1 do
    Printf.bprintf buf "  v%d = %s;\n" i (gen_expr (1 + ri 3) !vars);
    vars := Printf.sprintf "v%d" i :: !vars
  done;
  Printf.bprintf buf
    "  { int i; int s; s = 0; for (i = 0; i < %d; i++) { s += %s; } return \
     s; }\n}\n"
    (1 + ri 5) (gen_expr 2 !vars);
  Printf.bprintf buf
    "int main(void) { print_int(f(%d, %d, %d)); putchar(10); return 0; }\n"
    (ri 20) (ri 20) (ri 20);
  Buffer.contents buf

(* Random translation config: arch, SFI on/off, and a random-but-valid
   combination of translator optimizations. *)
let gen_config rng =
  let ri n = Random.State.int rng n in
  let arch = List.nth Arch.all (ri (List.length Arch.all)) in
  let sfi = ri 2 = 0 in
  let opts =
    if ri 2 = 0 then None
    else
      Some
        { Machine.schedule = ri 2 = 0;
          fill_delay_slots = ri 2 = 0;
          use_gp = ri 2 = 0;
          peephole = ri 2 = 0;
          sfi_opt = ri 2 = 0 }
  in
  (arch, sfi, opts)

let service_matches_uncached (seed : int) : bool =
  let rng = Random.State.make [| seed |] in
  let src = gen_minic_program rng in
  let arch, sfi, opts = gen_config rng in
  let bytes = Api.compile ~name:"rand" src in
  let svc = Service.create () in
  let h = Service.submit svc bytes in
  let engine = Exec.Target arch in
  let cold = Service.instantiate ~engine ~sfi ?opts ~fuel svc h in
  let warm = Service.instantiate ~engine ~sfi ?opts ~fuel svc h in
  let direct = Api.run_exe ~engine ~sfi ?opts ~fuel (Omnivm.Wire.decode bytes) in
  let c = Service.stats svc in
  c.Counters.s_hits = 1
  && c.Counters.s_translations = 1
  && cold.Exec.output = direct.Exec.output
  && warm.Exec.output = direct.Exec.output
  && cold.Exec.exit_code = direct.Exec.exit_code
  && warm.Exec.exit_code = direct.Exec.exit_code
  && cold.Exec.instructions = direct.Exec.instructions
  && warm.Exec.instructions = direct.Exec.instructions
  && cold.Exec.cycles = direct.Exec.cycles
  && warm.Exec.cycles = direct.Exec.cycles

let qcheck_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"random program × config: cached run = uncached run"
       QCheck.(make ~print:string_of_int Gen.int)
       service_matches_uncached)

(* --- counters JSON: every field survives to_json/of_json ------------- *)

(* A random snapshot. The two histogram-sum fields are seconds printed
   at %.6f, so the generator snaps them to the 6-decimal grid — any
   value on that grid must round-trip exactly. *)
let gen_snapshot =
  QCheck.Gen.(
    let sec =
      map2
        (fun a b -> float_of_string (Printf.sprintf "%d.%06d" a b))
        (int_bound 10_000) (int_bound 999_999)
    in
    map3
      (fun i cold warm ->
        {
          Counters.s_submits = i 0;
          s_modules = i 1;
          s_dedup_hits = i 2;
          s_bytes_stored = i 3;
          s_predecode_hits = i 4;
          s_predecode_misses = i 5;
          s_hits = i 6;
          s_misses = i 7;
          s_evictions = i 8;
          s_translations = i 9;
          s_verifications = i 10;
          s_cert_checks = i 11;
          s_cert_full_verify = i 12;
          s_verify_fail = i 13;
          s_cold_translate_s = cold;
          s_warm_admit_s = warm;
          s_instantiations = i 14;
          s_quarantine_trips = i 15;
          s_quarantine_refused = i 16;
          s_quarantine_cleared = i 17;
          s_crash_reports = i 18;
          s_deadline_exceeded = i 19;
          s_persist_append = i 20;
          s_persist_replay = i 21;
          s_persist_recovered = i 22;
          s_persist_quarantined = i 23;
          s_persist_torn = i 24;
        })
      (map
         (fun a k -> a.(k))
         (array_size (return 25) (int_bound 1_000_000)))
      sec sec)

let qcheck_counters_json =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"counters snapshot JSON round-trip (all fields, incl. persist)"
       (QCheck.make gen_snapshot ~print:Counters.to_json)
       (fun s -> Counters.of_json (Counters.to_json s) = s))

(* the rendered forms carry the post-schema counters too — a counter
   added to the snapshot but forgotten in render/to_json is invisible in
   [--stats] output, which is how the persist counters went missing *)
let snapshot_surfaces_persist () =
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  let c = Counters.create () in
  Omni_obs.Metrics.incr c.Counters.persist_append;
  let s = Counters.snapshot c in
  Alcotest.(check int) "snapshot sees the bump" 1 s.Counters.s_persist_append;
  Alcotest.(check bool) "to_json has persist_append" true
    (contains (Counters.to_json s) "\"persist_append\":1");
  Alcotest.(check bool) "render has a persistence line" true
    (contains (Counters.render s) "persist");
  Alcotest.(check bool) "of_json reads it back" true
    ((Counters.of_json (Counters.to_json s)).Counters.s_persist_append = 1)

let () =
  Alcotest.run "service"
    [ ("store",
       [ Alcotest.test_case "dedup by content" `Quick store_dedup;
         Alcotest.test_case "rejects malformed bytes" `Quick
           store_rejects_garbage;
         Alcotest.test_case "distinct content, distinct handles" `Quick
           store_digests_differ ]);
      ("identity", identity_cases);
      ("engines",
       [ Alcotest.test_case "interp served from store" `Quick interp_cached ]);
      ("verification",
       [ Alcotest.test_case "cached artifacts pass the verifier" `Quick
           cached_artifacts_verify;
         Alcotest.test_case "no verification without SFI" `Quick
           nosfi_not_applicable;
         Alcotest.test_case "cached = fresh translation" `Quick
           cached_equals_fresh ]);
      ("lru",
       [ Alcotest.test_case "eviction order" `Quick lru_eviction_order;
         Alcotest.test_case "capacity 0" `Quick lru_capacity_zero;
         Alcotest.test_case "cache capacity 0 disables" `Quick
           cache_capacity_zero_disables;
         Alcotest.test_case "evictions counted" `Quick cache_eviction_counted ]);
      ("facade",
       [ Alcotest.test_case "run_wire_cached = run_wire" `Quick
           run_wire_cached_matches ]);
      ("qcheck", [ qcheck_identity ]);
      ("counters-json",
       [ qcheck_counters_json;
         Alcotest.test_case "persist counters surfaced" `Quick
           snapshot_surfaces_persist ]) ]
