(* Differential execution tests: every program runs on the AST oracle, the
   OmniVM interpreter, and all four target simulators (with and without
   SFI), and must produce identical output everywhere. This is the
   correctness backbone of the whole system. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine

let engines = [ "interp"; "mips"; "sparc"; "ppc"; "x86" ]

let run_everywhere ?(regs = [ 16 ]) name src =
  (* oracle *)
  let tp = Minic.Driver.typed_program_with_stdlib src in
  let expected =
    match Minic.Oracle.run ~fuel:200_000_000 tp with
    | Minic.Oracle.Exited 0, out -> out
    | Minic.Oracle.Exited c, _ -> Alcotest.failf "%s: oracle exited %d" name c
    | Minic.Oracle.Failed m, _ -> Alcotest.failf "%s: oracle failed: %s" name m
    | Minic.Oracle.Ran_off_end _, _ -> Alcotest.failf "%s: oracle off end" name
  in
  List.iter
    (fun regfile_size ->
      let options = { Minic.Driver.opt_level = Minic.Opt.O2; regfile_size } in
      let exe = Minic.Driver.compile_exe ~options ~name src in
      List.iter
        (fun engine ->
          List.iter
            (fun sfi ->
              let e = Result.get_ok (Api.engine_of_string engine) in
              if not (e = Api.Interp && not sfi) then begin
                let r = Api.run_exe ~engine:e ~sfi ~fuel:200_000_000 exe in
                (match r.Api.outcome with
                | Machine.Exited 0 -> ()
                | Machine.Exited c ->
                    Alcotest.failf "%s/%s/regs%d exited %d" name engine
                      regfile_size c
                | Machine.Faulted f ->
                    Alcotest.failf "%s/%s/regs%d fault: %s" name engine
                      regfile_size (Omnivm.Fault.to_string f)
                | Machine.Out_of_fuel ->
                    Alcotest.failf "%s/%s out of fuel" name engine);
                Alcotest.(check string)
                  (Printf.sprintf "%s/%s/regs%d/sfi=%b" name engine
                     regfile_size sfi)
                  expected r.Api.output
              end)
            [ true; false ])
        engines)
    regs;
  expected

let t name ?regs src expected () =
  let got = run_everywhere ?regs name src in
  Alcotest.(check string) (name ^ " output") expected got

let cases =
  [ ("arith int",
     {| int main(void) {
          print_int(7 * 6); putchar(32);
          print_int(-17 / 5); putchar(32);
          print_int(-17 % 5); putchar(32);
          print_int(1 << 20); putchar(32);
          print_int(-64 >> 3); putchar(32);
          print_int((int)(4000000000u / 3u)); putchar(10);
          return 0; } |},
     "42 -3 -2 1048576 -8 1333333333\n");
    ("overflow wrap",
     {| int main(void) {
          int x; x = 2147483647;
          print_int(x + 1); putchar(32);
          print_int(x * 2); putchar(10);
          return 0; } |},
     "-2147483648 -2\n");
    ("unsigned compare",
     {| int main(void) {
          unsigned a; int b;
          a = 0xFFFFFFFFu; b = 1;
          print_int(a > (unsigned)b); putchar(32);
          print_int(-1 > 1); putchar(10);
          return 0; } |},
     "1 0\n");
    ("float math",
     {| int main(void) {
          double a; double b;
          a = 1.5; b = 0.25;
          print_float(a + b); putchar(32);
          print_float(a * b); putchar(32);
          print_float(a / b); putchar(32);
          print_float(-a); putchar(10);
          print_int(a < b); putchar(32);
          print_int((int)(a * 100.0)); putchar(10);
          return 0; } |},
     "1.750000 0.375000 6.000000 -1.500000\n0 150\n");
    ("conversions",
     {| int main(void) {
          double d; char c; int i;
          d = 3.99; i = (int)d; c = (char)300;
          print_int(i); putchar(32);
          print_int((int)c); putchar(32);
          d = (double)7 / 2.0;
          print_float(d); putchar(32);
          print_int((int)-2.7); putchar(10);
          return 0; } |},
     "3 44 3.500000 -2\n");
    ("pointers and arrays",
     {| int a[8];
        int main(void) {
          int *p; int i; int s;
          for (i = 0; i < 8; i++) a[i] = i * i;
          p = a + 2;
          s = *p + p[1] + *(p + 2);
          print_int(s); putchar(32);
          print_int((int)(&a[7] - a)); putchar(10);
          return 0; } |},
     "29 7\n");
    ("strings and chars",
     {| int main(void) {
          char *s; int n; int i; int sum;
          s = "hello, world";
          n = strlen(s);
          sum = 0;
          for (i = 0; i < n; i++) sum += (int)s[i];
          print_int(n); putchar(32);
          print_int(sum); putchar(10);
          print_str(s); putchar(10);
          return 0; } |},
     "12 1160\nhello, world\n");
    ("struct linked list",
     {| struct node { int v; struct node *next; };
        int main(void) {
          struct node *head; struct node *n; int i; int s;
          head = 0;
          for (i = 1; i <= 5; i++) {
            n = (struct node *)malloc((int)sizeof(struct node));
            n->v = i * 10; n->next = head; head = n;
          }
          s = 0;
          for (n = head; n != 0; n = n->next) s += n->v;
          print_int(s); putchar(10);
          return 0; } |},
     "150\n");
    ("struct copy and nesting",
     {| struct inner { int a; int b; };
        struct outer { struct inner in; double d; char tag; };
        int main(void) {
          struct outer x; struct outer y;
          x.in.a = 3; x.in.b = 4; x.d = 2.5; x.tag = 'z';
          y = x;
          x.in.a = 99;
          print_int(y.in.a + y.in.b); putchar(32);
          print_float(y.d); putchar(32);
          putchar((int)y.tag); putchar(10);
          return 0; } |},
     "7 2.500000 z\n");
    ("recursion",
     {| int ack(int m, int n) {
          if (m == 0) return n + 1;
          if (n == 0) return ack(m - 1, 1);
          return ack(m - 1, ack(m, n - 1));
        }
        int main(void) { print_int(ack(2, 3)); putchar(10); return 0; } |},
     "9\n");
    ("function pointers",
     {| int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
        int (*table[2])(int, int);
        int main(void) {
          table[0] = &add; table[1] = &mul;
          print_int(apply(table[0], 3, 4)); putchar(32);
          print_int(apply(table[1], 3, 4)); putchar(10);
          return 0; } |},
     "7 12\n");
    ("short circuit effects",
     {| int calls = 0;
        int bump(int r) { calls++; return r; }
        int main(void) {
          int r;
          r = bump(0) && bump(1);
          r = r + (bump(1) || bump(1));
          print_int(r); putchar(32);
          print_int(calls); putchar(10);
          return 0; } |},
     "1 2\n");
    ("ternary and compound",
     {| int main(void) {
          int x; int y;
          x = 10; y = 0;
          y += x > 5 ? 100 : 200;
          y -= 3; y *= 2; y /= 4; y <<= 1; y |= 1; y &= 0xFF; y ^= 0x0F;
          print_int(y); putchar(10);
          return 0; } |},
     "110\n");
    ("post/pre increment",
     {| int main(void) {
          int a[5]; int i; int x;
          for (i = 0; i < 5; i++) a[i] = 0;
          i = 0;
          a[i++] = 10;
          a[++i] = 20;
          x = a[0] + a[1] + a[2];
          print_int(x); putchar(32); print_int(i); putchar(10);
          x = 5;
          print_int(x++ + ++x); putchar(32); print_int(x); putchar(10);
          return 0; } |},
     "30 2\n12 7\n");
    ("globals with initializers",
     {| int scal = 42;
        int arr[4] = {1, 2, 3};
        double dd = 0.125;
        char msg[8] = "hey";
        struct pt { int x; int y; };
        struct pt origin = {5, 6};
        int *ptr = &scal;
        int main(void) {
          print_int(scal + arr[0] + arr[1] + arr[2] + arr[3]); putchar(32);
          print_float(dd); putchar(32);
          print_str(msg); putchar(32);
          print_int(origin.x * origin.y); putchar(32);
          print_int(*ptr); putchar(10);
          return 0; } |},
     "48 0.125000 hey 30 42\n");
    ("2d arrays",
     {| int m[3][4];
        int main(void) {
          int i; int j; int s;
          for (i = 0; i < 3; i++)
            for (j = 0; j < 4; j++)
              m[i][j] = i * 10 + j;
          s = 0;
          for (i = 0; i < 3; i++) s += m[i][i];
          print_int(s); putchar(32);
          print_int(m[2][3]); putchar(10);
          return 0; } |},
     "33 23\n");
    ("qsort stdlib",
     {| int cmp_int(char *a, char *b) { return *(int *)a - *(int *)b; }
        int v[8];
        int main(void) {
          int i;
          for (i = 0; i < 8; i++) v[i] = (i * 37) % 19;
          qsort((char *)v, 8, 4, &cmp_int);
          for (i = 0; i < 8; i++) { print_int(v[i]); putchar(32); }
          putchar(10);
          return 0; } |},
     "0 12 13 14 15 16 17 18 \n");
    ("malloc free reuse",
     {| int main(void) {
          char *a; char *b; char *c;
          a = malloc(100); strcpy(a, "first");
          free(a);
          b = malloc(60);     /* should reuse the freed block */
          strcpy(b, "second");
          c = malloc(200);
          strcpy(c, "third");
          print_str(b); putchar(32); print_str(c); putchar(32);
          print_int(a == b); putchar(10);
          return 0; } |},
     "second third 1\n");
    ("while with break/continue",
     {| int main(void) {
          int i; int s;
          i = 0; s = 0;
          while (1) {
            i++;
            if (i > 20) break;
            if (i % 3 == 0) continue;
            s += i;
          }
          print_int(s); putchar(10);
          return 0; } |},
     "147\n");
    ("char arithmetic",
     {| int main(void) {
          char c; int count; char *s;
          s = "AbCdE";
          count = 0;
          while (*s != 0) {
            c = *s;
            if (c >= 'A' && c <= 'Z') count++;
            s++;
          }
          print_int(count); putchar(10);
          return 0; } |},
     "3\n");
    ("sieve of eratosthenes",
     {| char comp[1000];
        int main(void) {
          int i; int j; int count;
          for (i = 0; i < 1000; i++) comp[i] = 0;
          for (i = 2; i < 1000; i++) {
            if (!comp[i]) {
              for (j = i * 2; j < 1000; j += i) comp[j] = 1;
            }
          }
          count = 0;
          for (i = 2; i < 1000; i++) if (!comp[i]) count++;
          print_int(count); putchar(10);
          return 0; } |},
     "168\n");
    ("matrix multiply doubles",
     {| double a[8][8]; double b[8][8]; double c[8][8];
        int main(void) {
          int i; int j; int k;
          double sum;
          for (i = 0; i < 8; i++)
            for (j = 0; j < 8; j++) {
              a[i][j] = (double)(i + j);
              b[i][j] = (double)(i - j);
            }
          for (i = 0; i < 8; i++)
            for (j = 0; j < 8; j++) {
              sum = 0.0;
              for (k = 0; k < 8; k++) sum += a[i][k] * b[k][j];
              c[i][j] = sum;
            }
          print_float(c[3][4]); putchar(32);
          print_float(c[7][0]); putchar(10);
          return 0; } |},
     "16.000000 336.000000\n");
    ("bubble sort strings",
     {| char *names[5];
        int main(void) {
          int i; int j; int n;
          char *t;
          names[0] = "pear"; names[1] = "apple"; names[2] = "fig";
          names[3] = "cherry"; names[4] = "banana";
          n = 5;
          for (i = 0; i < n - 1; i++)
            for (j = 0; j < n - 1 - i; j++)
              if (strcmp(names[j], names[j + 1]) > 0) {
                t = names[j]; names[j] = names[j + 1]; names[j + 1] = t;
              }
          for (i = 0; i < n; i++) { print_str(names[i]); putchar(32); }
          putchar(10);
          return 0; } |},
     "apple banana cherry fig pear \n");
    ("nested struct arrays",
     {| struct point { int x; int y; };
        struct path { struct point pts[4]; int len; };
        struct path paths[3];
        int main(void) {
          int p; int i; int total;
          for (p = 0; p < 3; p++) {
            paths[p].len = p + 2;
            for (i = 0; i < 4; i++) {
              paths[p].pts[i].x = p * 10 + i;
              paths[p].pts[i].y = p - i;
            }
          }
          total = 0;
          for (p = 0; p < 3; p++)
            for (i = 0; i < paths[p].len && i < 4; i++)
              total += paths[p].pts[i].x - paths[p].pts[i].y;
          print_int(total); putchar(10);
          return 0; } |},
     "119\n");
    ("unsigned wraparound loop",
     {| int main(void) {
          unsigned u; int steps;
          u = 0xFFFFFFFCu;
          steps = 0;
          while (u != 2u) { u += 1u; steps++; }
          print_int(steps); putchar(32);
          print_int((int)u); putchar(10);
          return 0; } |},
     "6 2\n");
    ("memcpy memset memcmp",
     {| char a[32]; char bb[32];
        int main(void) {
          int i;
          for (i = 0; i < 32; i++) a[i] = (char)(i * 3);
          memset(bb, 0, 32);
          print_int(memcmp(a, bb, 32) != 0); putchar(32);
          memcpy(bb, a, 32);
          print_int(memcmp(a, bb, 32)); putchar(32);
          bb[31] = (char)((int)bb[31] + 1);
          print_int(memcmp(a, bb, 32) < 0); putchar(10);
          return 0; } |},
     "1 0 1\n");
    ("double recursion",
     {| double power(double x, int n) {
          if (n == 0) return 1.0;
          if (n % 2 == 0) { double h; h = power(x, n / 2); return h * h; }
          return x * power(x, n - 1);
        }
        int main(void) {
          print_float(power(2.0, 10)); putchar(32);
          print_float(power(1.5, 3)); putchar(10);
          return 0; } |},
     "1024.000000 3.375000\n");
    ("pointer to pointer",
     {| int main(void) {
          int x; int *p; int **pp;
          x = 5; p = &x; pp = &p;
          **pp = 9;
          print_int(x); putchar(32);
          print_int(*p + **pp); putchar(10);
          return 0; } |},
     "9 18\n");
    ("compound loop condition",
     {| int main(void) {
          int i; int hits;
          hits = 0;
          for (i = 0; i < 50 && hits < 5; i++)
            if (i % 7 == 3) hits++;
          print_int(i); putchar(32); print_int(hits); putchar(10);
          return 0; } |},
     "32 5\n");
    ("stdlib math",
     {| int main(void) {
          print_float(sqrt(16.0)); putchar(32);
          print_float(fabs(-2.5)); putchar(32);
          print_int((int)(exp(1.0) * 1000.0)); putchar(32);
          print_int(abs(-42)); putchar(10);
          return 0; } |},
     "4.000000 2.500000 2718 42\n")
  ]

(* exercise small register files on a subset (slow-ish) *)
let regfile_cases =
  [ ("spill heavy",
     {| int f(int a, int b, int c, int d) {
          int e; int g; int h; int i; int j;
          e = a * b + c; g = b * c + d; h = c * d + a; i = d * a + b;
          j = f2(e, g, h, i) + f2(g, h, i, e);
          return e + g + h + i + j;
        }
        int f2(int a, int b, int c, int d) { return a + 2 * b + 3 * c + 4 * d; }
        int main(void) {
          print_int(f(1, 2, 3, 4)); putchar(10);
          return 0; } |},
     "196\n") ]

(* --- random differential testing (qcheck) --- *)

let gen_program rng =
  let ri n = Random.State.int rng n in
  let gen_expr depth vars =
    let buf = Buffer.create 64 in
    let rec go depth =
      if depth = 0 || ri 4 = 0 then
        match ri 3 with
        | 0 -> Buffer.add_string buf (string_of_int (ri 100 - 50))
        | _ -> Buffer.add_string buf (List.nth vars (ri (List.length vars)))
      else begin
        Buffer.add_char buf '(';
        go (depth - 1);
        Buffer.add_string buf
          (match ri 9 with
          | 0 -> " + " | 1 -> " - " | 2 -> " * " | 3 -> " < " | 4 -> " == "
          | 5 -> " & " | 6 -> " ^ " | 7 -> " | " | _ -> " != ");
        go (depth - 1);
        Buffer.add_char buf ')'
      end
    in
    go depth;
    Buffer.contents buf
  in
  let nfuncs = 1 + ri 4 in
  let buf = Buffer.create 1024 in
  for idx = 0 to nfuncs - 1 do
    Printf.bprintf buf "int f%d(int a, int b, int c, int d) {\n" idx;
    let nlocals = 1 + ri 7 in
    let vars = ref [ "a"; "b"; "c"; "d" ] in
    for i = 0 to nlocals - 1 do
      Printf.bprintf buf "  int v%d;\n" i
    done;
    for i = 0 to nlocals - 1 do
      if idx > 0 && ri 3 = 0 then
        Printf.bprintf buf "  v%d = f%d(%s, %s, %s, %s);\n" i (ri idx)
          (gen_expr 2 !vars) (gen_expr 2 !vars) (gen_expr 2 !vars)
          (gen_expr 2 !vars)
      else Printf.bprintf buf "  v%d = %s;\n" i (gen_expr (1 + ri 3) !vars);
      vars := Printf.sprintf "v%d" i :: !vars
    done;
    Printf.bprintf buf
      "  { int i; int s; s = 0; for (i = 0; i < %d; i++) { s += %s; } return s + %s; }\n}\n"
      (1 + ri 5) (gen_expr 2 !vars) (gen_expr 3 !vars)
  done;
  Printf.bprintf buf
    "int main(void) { print_int(f%d(3, 5, 7, 11)); putchar(10); return 0; }\n"
    (nfuncs - 1);
  Buffer.contents buf

let random_diff =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"random programs agree everywhere"
       (QCheck.make
          ~print:(fun s -> s)
          QCheck.Gen.(
            int >>= fun seed ->
            return (gen_program (Random.State.make [| seed |]))))
       (fun src ->
         match run_everywhere ~regs:[ 16; 10 ] "random" src with
         | _ -> true
         | exception _ -> false))

let opt_levels_agree () =
  (* O0 / O1 / O2 must agree on output *)
  let src =
    {| int g = 3;
       int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int main(void) {
         int x; double d;
         x = fib(10) + g * 100;
         d = (double)x / 4.0;
         print_int(x); putchar(32); print_float(d); putchar(10);
         return 0; } |}
  in
  let out level =
    let options = { Minic.Driver.opt_level = level; regfile_size = 16 } in
    let exe = Minic.Driver.compile_exe ~options ~name:"lv" src in
    let r = Api.run_exe ~engine:Api.Interp exe in
    r.Api.output
  in
  let o2 = out Minic.Opt.O2 in
  Alcotest.(check string) "O0 = O2" o2 (out Minic.Opt.O0);
  Alcotest.(check string) "O1 = O2" o2 (out Minic.Opt.O1);
  Alcotest.(check string) "value" "355 88.750000\n" o2

let () =
  Alcotest.run "minic-exec"
    [ ("programs",
       List.map (fun (name, src, expected) ->
           Alcotest.test_case name `Quick (t name src expected))
         cases);
      ("regfiles",
       List.map (fun (name, src, expected) ->
           Alcotest.test_case name `Quick
             (t name ~regs:[ 8; 10; 12; 14; 16 ] src expected))
         regfile_cases);
      ("random", [ random_diff ]);
      ("levels", [ Alcotest.test_case "opt levels agree" `Quick opt_levels_agree ])
    ]
