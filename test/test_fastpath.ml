(* Fast-path differential harness: the pre-decoded threaded interpreter
   (Omnivm.Fastinterp) must be observably BIT-IDENTICAL to the reference
   interpreter — same outcome, same fault at the same machine state, same
   dynamic instruction count, same fuel accounting, same watchdog poll
   cadence — and must agree with all four target simulators on observable
   behaviour across SFI modes and padding variants.

   Three program families feed the harness: random straight-line/branchy
   assembly ("tame": self-terminating, in-bounds, so sandboxing is
   transparent and every engine must agree), random fault-seeking assembly
   ("wild": out-of-bounds traffic, division by zero, traps, handlers,
   loops — compared interp vs fast exactly, fault-for-fault), and the
   deterministic workload families (MiniC SPEC-analogues and guest-lifted
   StackVM programs). Together the seeded families exceed 300 programs. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine
module Policy = Omni_sfi.Policy
module W = Omni_workloads.Workloads
module Loader = Omni_runtime.Loader
module Host = Omni_runtime.Host
module Interp = Omnivm.Interp
module Fastinterp = Omnivm.Fastinterp
module Fault = Omnivm.Fault
module Watchdog = Omnivm.Watchdog
module Clock = Omni_util.Clock
module Exec = Omni_service.Exec

let outcome_str = function
  | Interp.Exited c -> Printf.sprintf "exited %d" c
  | Interp.Faulted f -> "faulted: " ^ Fault.to_string f
  | Interp.Out_of_fuel -> "out of fuel"

(* --- exact machine-level snapshots --- *)

type snap = {
  s_outcome : Interp.outcome;
  s_icount : int;
  s_pc : int;
  s_regs : int array;
  s_fregs : int64 array; (* bitwise, so NaN payloads compare *)
  s_handler : int;
  s_output : string;
}

let snap ~engine ?fuel ?watchdog exe : snap =
  let img = Loader.load exe in
  let outcome, st =
    match engine with
    | `Interp -> Loader.run_interp ?fuel ?watchdog img
    | `Fast -> Loader.run_fast ?fuel ?watchdog img
  in
  {
    s_outcome = outcome;
    s_icount = st.Interp.icount;
    s_pc = st.Interp.pc;
    s_regs = Array.copy st.Interp.iregs;
    s_fregs = Array.map Int64.bits_of_float st.Interp.fregs;
    s_handler = st.Interp.handler;
    s_output = Host.output img.Loader.host;
  }

let equal_snap a b =
  a.s_outcome = b.s_outcome
  && a.s_icount = b.s_icount
  && a.s_pc = b.s_pc
  && a.s_handler = b.s_handler
  && a.s_regs = b.s_regs
  && a.s_fregs = b.s_fregs
  && String.equal a.s_output b.s_output

let explain a b =
  if a.s_outcome <> b.s_outcome then
    Printf.sprintf "outcome: interp=%s fast=%s" (outcome_str a.s_outcome)
      (outcome_str b.s_outcome)
  else if a.s_icount <> b.s_icount then
    Printf.sprintf "icount: interp=%d fast=%d" a.s_icount b.s_icount
  else if a.s_pc <> b.s_pc then
    Printf.sprintf "pc: interp=%d fast=%d" a.s_pc b.s_pc
  else if a.s_handler <> b.s_handler then "handler differs"
  else if a.s_regs <> b.s_regs then "integer registers differ"
  else if a.s_fregs <> b.s_fregs then "float registers differ"
  else if not (String.equal a.s_output b.s_output) then "output differs"
  else "equal"

let check_exact name ?fuel ?(fuels = []) exe =
  let at fuel =
    let a = snap ~engine:`Interp ?fuel exe in
    let b = snap ~engine:`Fast ?fuel exe in
    if not (equal_snap a b) then
      Alcotest.failf "%s (fuel=%s): %s" name
        (match fuel with None -> "default" | Some f -> string_of_int f)
        (explain a b)
  in
  at fuel;
  List.iter (fun f -> at (Some f)) fuels

(* --- random program generators --- *)

let buf_size = 256

(* Self-terminating, in-bounds programs: every engine — interpreter,
   fast path, and all four sandboxed simulators — must agree exactly. *)
let gen_tame (rng : Random.State.t) : string =
  let ri n = Random.State.int rng n in
  let b = Buffer.create 1024 in
  let reg () = 1 + ri 9 in
  let imm () =
    match ri 5 with
    | 0 -> 0
    | 1 -> ri 100 - 50
    | 2 -> 0x7FFFFFFF
    | 3 -> (1 lsl ri 31) - ri 2
    | _ -> ri 1000000 - 500000
  in
  Buffer.add_string b "        .data\nbuf:    .space 264\n        .text\n";
  Buffer.add_string b "        .globl main\nmain:\n";
  for r = 1 to 9 do
    Printf.bprintf b "        li r%d, %d\n" r (imm ())
  done;
  Printf.bprintf b "        li r10, buf\n";
  let n = 8 + ri 32 in
  let label = ref 0 in
  let pending = ref [] in
  for i = 0 to n - 1 do
    List.iter (fun (at, l) -> if at = i then Printf.bprintf b ".L%d:\n" l)
      !pending;
    match ri 10 with
    | 0 | 1 | 2 ->
        let ops = [| "add"; "sub"; "mul"; "and"; "or"; "xor"; "slt"; "sltu" |] in
        Printf.bprintf b "        %s r%d, r%d, r%d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) (reg ())
    | 3 | 4 ->
        (* li-then-use runs straight into the constant-folding fusion rule *)
        let d = reg () in
        Printf.bprintf b "        li r%d, %d\n" d (imm ());
        let ops = [| "add"; "xor"; "or"; "and" |] in
        Printf.bprintf b "        %s r%d, r%d, r%d\n"
          ops.(ri (Array.length ops)) (reg ()) d (reg ())
    | 5 ->
        let ops = [| "slli"; "srli"; "srai" |] in
        Printf.bprintf b "        %s r%d, r%d, %d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) (ri 32)
    | 6 ->
        (* load-use pairs for the load-use fusion rule *)
        let off = 4 * ri (buf_size / 4) in
        let d = reg () in
        Printf.bprintf b "        sw r%d, %d(r10)\n" (reg ()) off;
        Printf.bprintf b "        lw r%d, %d(r10)\n" d off;
        Printf.bprintf b "        add r%d, r%d, r%d\n" (reg ()) d (reg ())
    | 7 | 8 ->
        (* forward compare-and-branch: the cmp_br fusion rule *)
        let l = !label in
        incr label;
        let skip = 1 + ri 4 in
        (if ri 2 = 0 then
           let conds = [| "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu" |] in
           Printf.bprintf b "        %s r%d, r%d, .L%d\n"
             conds.(ri (Array.length conds)) (reg ()) (reg ()) l
         else
           let conds = [| "beqi"; "bnei"; "blti"; "bgei" |] in
           Printf.bprintf b "        %s r%d, %d, .L%d\n"
             conds.(ri (Array.length conds)) (reg ()) (imm ()) l);
        pending := (min (n - 1) (i + skip), l) :: !pending
    | _ ->
        let d = reg () in
        Printf.bprintf b "        ori r%d, r%d, 1\n" d d;
        let ops = [| "div"; "divu"; "rem"; "remu" |] in
        Printf.bprintf b "        %s r%d, r%d, r%d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) d
  done;
  List.iter (fun (_, l) -> Printf.bprintf b ".L%d:\n" l) !pending;
  for r = 2 to 9 do
    Printf.bprintf b "        xor r1, r1, r%d\n" r
  done;
  Buffer.add_string b "        hcall 2\n        li r1, 10\n        hcall 1\n";
  Buffer.add_string b "        li r1, 0\n        hcall 0\n";
  Buffer.contents b

(* Fault-seeking programs: out-of-bounds traffic, division by zero,
   explicit traps, misaligned accesses, optional fault handlers, backward
   loops (exercised under small fuel). Interp vs fast must agree exactly,
   fault-for-fault, at the same machine state. *)
let gen_wild (rng : Random.State.t) : string =
  let ri n = Random.State.int rng n in
  let b = Buffer.create 1024 in
  let reg () = 1 + ri 9 in
  let imm () = ri 1000000 - 500000 in
  let with_handler = ri 2 = 0 in
  Buffer.add_string b "        .data\nbuf:    .space 264\n        .text\n";
  Buffer.add_string b "        .globl main\n";
  if with_handler then
    (* print the fault code, then exit 7 *)
    Buffer.add_string b
      "handler:\n        hcall 2\n        li r1, 7\n        hcall 0\n";
  Buffer.add_string b "main:\n";
  if with_handler then
    Buffer.add_string b "        li r1, handler\n        hcall 7\n";
  for r = 1 to 9 do
    Printf.bprintf b "        li r%d, %d\n" r (imm ())
  done;
  Printf.bprintf b "        li r10, buf\n";
  let n = 6 + ri 24 in
  let label = ref 0 in
  let pending = ref [] in
  for i = 0 to n - 1 do
    List.iter (fun (at, l) -> if at = i then Printf.bprintf b ".L%d:\n" l)
      !pending;
    match ri 12 with
    | 0 | 1 ->
        let ops = [| "add"; "sub"; "mul"; "xor"; "slt" |] in
        Printf.bprintf b "        %s r%d, r%d, r%d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) (reg ())
    | 2 ->
        let d = reg () in
        Printf.bprintf b "        li r%d, %d\n" d (imm ());
        Printf.bprintf b "        add r%d, r%d, r%d\n" (reg ()) d (reg ())
    | 3 ->
        (* possibly wild address: in-bounds, far out-of-bounds, or odd *)
        let addr =
          match ri 3 with
          | 0 -> 4 * ri (buf_size / 4)
          | 1 -> 0x3F000000 + ri 64
          | _ -> 1 + (4 * ri (buf_size / 4))
        in
        let w = [| ("sw", "lw"); ("sh", "lhu"); ("sb", "lbu") |].(ri 3) in
        if ri 2 = 0 then
          Printf.bprintf b "        %s r%d, %d(r10)\n" (fst w) (reg ()) addr
        else Printf.bprintf b "        %s r%d, %d(r10)\n" (snd w) (reg ()) addr
    | 4 ->
        (* division that may well be by zero *)
        (if ri 2 = 0 then Printf.bprintf b "        li r%d, 0\n" (reg ()));
        let ops = [| "div"; "divu"; "rem"; "remu" |] in
        Printf.bprintf b "        %s r%d, r%d, r%d\n"
          ops.(ri (Array.length ops)) (reg ()) (reg ()) (reg ())
    | 5 -> Printf.bprintf b "        trap %d\n" (ri 8)
    | 6 | 7 ->
        let l = !label in
        incr label;
        let conds = [| "beq"; "bne"; "blt"; "bge" |] in
        Printf.bprintf b "        %s r%d, r%d, .L%d\n"
          conds.(ri (Array.length conds)) (reg ()) (reg ()) l;
        pending := (min (n - 1) (i + 1 + ri 4), l) :: !pending
    | 8 ->
        (* a backward self-loop headed by a countdown: terminates, or runs
           the fuel out — both must match exactly *)
        let c = reg () in
        Printf.bprintf b "        li r%d, %d\n" c (ri 64);
        Printf.bprintf b ".B%d:\n" i;
        Printf.bprintf b "        addi r%d, r%d, -1\n" c c;
        Printf.bprintf b "        bnei r%d, 0, .B%d\n" c i
    | _ ->
        Printf.bprintf b "        addi r%d, r%d, %d\n" (reg ()) (reg ())
          (ri 100 - 50)
  done;
  List.iter (fun (_, l) -> Printf.bprintf b ".L%d:\n" l) !pending;
  Buffer.add_string b "        li r1, 0\n        hcall 0\n";
  Buffer.contents b

let assemble src =
  Omni_asm.Link.link [ Omni_asm.Parse.assemble ~name:"fastpath" src ]

(* --- property 1: tame programs agree on every engine, every pad --- *)

let pads = Policy.all_pads

let tame_property seed =
  let src = gen_tame (Random.State.make [| seed |]) in
  let exe = assemble src in
  (* exact interp/fast identity, at full and at starved fuel *)
  check_exact
    (Printf.sprintf "tame seed=%d" seed)
    ~fuel:5_000_000
    ~fuels:[ 1 + (seed land 63); 17 ]
    exe;
  (* observable agreement with every simulator, under a per-seed pad *)
  let pad = List.nth pads (abs seed mod List.length pads) in
  let expected =
    let r = Api.run_exe ~engine:Api.Interp ~fuel:5_000_000 exe in
    (r.Api.outcome, r.Api.output)
  in
  (match expected with
  | Machine.Exited 0, _ -> ()
  | o, _ -> Alcotest.failf "tame seed=%d: interp %s" seed
              (match o with
               | Machine.Exited c -> Printf.sprintf "exited %d" c
               | Machine.Faulted f -> Fault.to_string f
               | Machine.Out_of_fuel -> "out of fuel"));
  List.iter
    (fun arch ->
      let mode = Machine.Mobile (Policy.make ~pad ()) in
      let r =
        Api.run_exe ~engine:(Api.Target arch) ~mode ~fuel:5_000_000 exe
      in
      if (r.Api.outcome, r.Api.output) <> expected then
        Alcotest.failf "tame seed=%d: %s pad=%s disagrees" seed
          (Omni_targets.Arch.name arch) (Policy.pad_name pad))
    Omni_targets.Arch.all;
  true

(* --- property 2: wild programs are fault-for-fault identical --- *)

let wild_property seed =
  let src = gen_wild (Random.State.make [| seed |]) in
  let exe = assemble src in
  check_exact
    (Printf.sprintf "wild seed=%d" seed)
    ~fuel:200_000
    ~fuels:[ 1; 2; 3 + (seed land 31); 100 + (seed land 255) ]
    exe;
  true

(* --- property 3 (fusion law): fuel is charged per source instruction ---

   For any fuel budget f, the fast path retires exactly the instructions
   the baseline retires: a fused pair at the fuel boundary must split. *)
let fuel_law (seed, fuel) =
  let src = gen_tame (Random.State.make [| seed |]) in
  let exe = assemble src in
  let a = snap ~engine:`Interp ~fuel exe in
  let b = snap ~engine:`Fast ~fuel exe in
  if not (equal_snap a b) then
    Alcotest.failf "fuel law seed=%d fuel=%d: %s" seed fuel (explain a b);
  (match a.s_outcome with
  | Interp.Out_of_fuel -> assert (a.s_icount <= fuel)
  | _ -> ());
  true

(* --- property 4 (fusion law): watchdog poll cadence is unchanged ---

   A counting clock observes exactly one [Clock.now] per poll (plus one at
   [Watchdog.make]); fusion must not change how often the engines poll. *)
let poll_count ~engine ~every exe =
  let polls = ref 0 in
  let clock = Clock.fn (fun () -> incr polls; 0.0) in
  let w = Watchdog.make ~poll_every:every ~clock ~budget_s:1e9 () in
  ignore (snap ~engine ~fuel:100_000 ~watchdog:w exe);
  !polls - 1 (* make consumed one reading *)

let poll_law (seed, every) =
  let src = gen_tame (Random.State.make [| seed |]) in
  let exe = assemble src in
  let a = poll_count ~engine:`Interp ~every exe in
  let b = poll_count ~engine:`Fast ~every exe in
  if a <> b then
    Alcotest.failf "poll law seed=%d every=%d: interp polled %d, fast %d"
      seed every a b;
  true

(* --- satellite 3: deadlines fire within poll_every instructions ---

   Under an injectable clock that advances one second per reading, a
   budget of [k] seconds expires at the (k+1)-th poll — so the fault must
   land within poll_every source instructions of the k-th poll, fusion or
   not, and at the exact same machine state on both engines. *)
let deadline_within_k () =
  (* an effectively infinite loop of fusible pairs *)
  let src =
    {|
        .text
        .globl main
main:   li r2, 0
loop:   li r3, 1
        add r2, r2, r3
        slti r4, r2, 2
        beqi r4, 99, loop
        j loop
|}
  in
  let exe = assemble src in
  List.iter
    (fun every ->
      List.iter
        (fun k ->
          let run engine =
            let clock =
              let t = ref (-1.0) in
              Clock.fn (fun () -> t := !t +. 1.0; !t)
            in
            let w =
              Watchdog.make ~poll_every:every ~clock
                ~budget_s:(float_of_int k) ()
            in
            snap ~engine ~fuel:10_000_000 ~watchdog:w exe
          in
          let a = run `Interp in
          let b = run `Fast in
          if not (equal_snap a b) then
            Alcotest.failf "deadline every=%d k=%d: %s" every k (explain a b);
          (match a.s_outcome with
          | Interp.Faulted Fault.Deadline_exceeded -> ()
          | o -> Alcotest.failf "deadline every=%d k=%d: got %s" every k
                   (outcome_str o));
          (* expired at poll k+1, i.e. within (k+1) * every instructions *)
          if a.s_icount > (k + 1) * every then
            Alcotest.failf
              "deadline every=%d k=%d: fired after %d instructions (> %d)"
              every k a.s_icount ((k + 1) * every))
        [ 0; 1; 3 ])
    [ 1; 2; 7; 64 ]

(* --- the deterministic workload families --- *)

let minic_exe (w : W.t) = Minic.Driver.compile_exe ~name:w.W.name w.W.source

let guest_exe (g : W.Guest.t) =
  match Omni_guest.Asm.assemble g.W.Guest.asm with
  | Error e -> Alcotest.failf "guest %s: %s" g.W.Guest.name
                 (Omni_guest.Error.to_string e)
  | Ok p -> (
      match Omni_guest.Lift.lift_exe p with
      | Error e -> Alcotest.failf "guest %s: %s" g.W.Guest.name
                     (Omni_guest.Error.to_string e)
      | Ok exe -> exe)

let workload_exact (name, exe) () =
  check_exact name ~fuel:500_000_000 ~fuels:[ 1; 1000 ] exe

(* each workload, on each simulator, under each padding mode, matches the
   fast path's observable behaviour *)
let workload_matrix (name, exe) () =
  let fast = snap ~engine:`Fast ~fuel:500_000_000 exe in
  (match fast.s_outcome with
  | Interp.Exited 0 -> ()
  | o -> Alcotest.failf "%s: fast %s" name (outcome_str o));
  List.iter
    (fun arch ->
      List.iter
        (fun pad ->
          let mode = Machine.Mobile (Policy.make ~pad ()) in
          let r =
            Api.run_exe ~engine:(Api.Target arch) ~mode ~fuel:500_000_000 exe
          in
          (match r.Api.outcome with
          | Machine.Exited 0 -> ()
          | Machine.Exited c ->
              Alcotest.failf "%s %s pad=%s: exited %d" name
                (Omni_targets.Arch.name arch) (Policy.pad_name pad) c
          | Machine.Faulted f ->
              Alcotest.failf "%s %s pad=%s: %s" name
                (Omni_targets.Arch.name arch) (Policy.pad_name pad)
                (Fault.to_string f)
          | Machine.Out_of_fuel ->
              Alcotest.failf "%s %s pad=%s: out of fuel" name
                (Omni_targets.Arch.name arch) (Policy.pad_name pad));
          Alcotest.(check string)
            (Printf.sprintf "%s %s pad=%s output" name
               (Omni_targets.Arch.name arch) (Policy.pad_name pad))
            fast.s_output r.Api.output)
        pads)
    Omni_targets.Arch.all

(* --- certificates mint and check under every padding mode --- *)

let cert_pad_matrix () =
  let w = W.compress ~size:W.Test in
  let exe = minic_exe w in
  let wire = Omnivm.Wire.encode exe in
  let digest = Omni_util.Fnv64.digest_string wire in
  List.iter
    (fun arch ->
      let opts = Exec.mobile_opts arch in
      List.iter
        (fun pad ->
          let mode = Machine.Mobile (Policy.make ~pad ()) in
          let tr = Exec.translate ~mode ~opts arch exe in
          match Exec.certify ~module_digest:digest ~mode ~opts tr with
          | Error msg ->
              Alcotest.failf "certify %s pad=%s: %s"
                (Omni_targets.Arch.name arch) (Policy.pad_name pad) msg
          | Ok cert -> (
              match
                Exec.check_cert ~module_digest:digest ~mode ~opts cert tr
              with
              | Ok () -> ()
              | Error msg ->
                  Alcotest.failf "check %s pad=%s: %s"
                    (Omni_targets.Arch.name arch) (Policy.pad_name pad) msg))
        pads)
    Omni_targets.Arch.all

(* --- fusion actually happens (and is reported) --- *)

let fusion_present () =
  let w = W.compress ~size:W.Test in
  let exe = minic_exe w in
  let p = Fastinterp.compile exe.Omnivm.Exe.text in
  Alcotest.(check int) "covers the text"
    (Array.length exe.Omnivm.Exe.text)
    (Fastinterp.length p);
  if Fastinterp.fused p = 0 then
    Alcotest.fail "peephole pass fused nothing in a real workload";
  let by_rule = Fastinterp.fused_by_rule p in
  Alcotest.(check int) "rule counts sum to total" (Fastinterp.fused p)
    (List.fold_left (fun a (_, n) -> a + n) 0 by_rule);
  List.iter
    (fun k ->
      if not (List.mem_assoc k by_rule) then
        Alcotest.failf "missing rule counter %s" k)
    [ "cmp_br"; "li_op"; "load_use"; "push_pop" ]

(* --- wiring --- *)

let qtest ~count name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name (QCheck.make gen) prop)

let () =
  let minic_workloads =
    List.map (fun w -> (w.W.name, minic_exe w)) (W.all ~size:W.Test)
  in
  let guest_workloads =
    List.map
      (fun g -> (g.W.Guest.name, guest_exe g))
      (W.Guest.all ~size:W.Test)
  in
  let workloads = minic_workloads @ guest_workloads in
  Alcotest.run "fastpath"
    [
      ( "differential",
        [
          qtest ~count:160 "tame: all engines, all pads agree"
            QCheck.Gen.(map (fun s -> s) small_signed_int)
            tame_property;
          qtest ~count:160 "wild: interp = fast, fault-for-fault"
            QCheck.Gen.(map (fun s -> s) int)
            wild_property;
        ] );
      ( "fusion-laws",
        [
          qtest ~count:120 "fuel charged per source instruction"
            QCheck.Gen.(pair small_signed_int (int_bound 2000))
            fuel_law;
          qtest ~count:60 "watchdog poll cadence unchanged"
            QCheck.Gen.(pair small_signed_int (int_range 1 64))
            poll_law;
          Alcotest.test_case "deadline fires within poll_every" `Quick
            deadline_within_k;
        ] );
      ( "workloads",
        List.map
          (fun (name, exe) ->
            Alcotest.test_case (name ^ " exact") `Quick
              (workload_exact (name, exe)))
          workloads
        @ List.map
            (fun (name, exe) ->
              Alcotest.test_case (name ^ " matrix") `Slow
                (workload_matrix (name, exe)))
            workloads );
      ( "certificates",
        [
          Alcotest.test_case "mint+check under every pad" `Quick
            cert_pad_matrix;
        ] );
      ("fusion", [ Alcotest.test_case "rules fire" `Quick fusion_present ]);
    ]
