(* Execution supervision: crash reports, quarantine, deterministic replay.

   Load-bearing properties:

   - engine parity of fault delivery: every engine (interpreter + four
     simulated targets) delivers the same fault code — including the new
     deadline_exceeded — to a registered handler in r1 and clears the
     handler on delivery (a second fault aborts);
   - the watchdog is deterministic under an injectable clock, fires as
     deadline_exceeded through the ordinary delivery path, and never
     counts toward quarantine (transient);
   - crash reports are a total JSON round-trip (qcheck'd over arbitrary
     faults, register files, and byte windows), and a report is a replay
     bundle: re-execution reproduces the fault on the report's own
     engine and on every other architecture;
   - the quarantine breaker obeys its laws (qcheck'd): trips exactly at
     the threshold, TTL expiry grants fresh chances, a clean exit resets
     strikes, transient faults and fuel exhaustion are neutral;
   - a service under a 1,000-request hostile mix survives, refuses
     quarantined modules without paying the translator, produces exactly
     one report per fault, and keeps serving healthy modules. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Exec = Omni_service.Exec
module Service = Omni_service.Service
module Counters = Omni_service.Counters
module Supervise = Omni_service.Supervise
module Quarantine = Supervise.Quarantine
module Clock = Omni_util.Clock
module Fnv64 = Omni_util.Fnv64
module Fault = Omnivm.Fault
module Watchdog = Omnivm.Watchdog

let fuel = 50_000_000

(* A clock that advances [step] seconds per reading: watchdog behaviour
   becomes a pure function of how often the engine polls. *)
let ticking ?(step = 0.001) () =
  let t = ref 0.0 in
  Clock.fn (fun () ->
      t := !t +. step;
      !t)

let engines =
  [ Exec.Interp; Exec.Target Arch.Mips; Exec.Target Arch.Sparc;
    Exec.Target Arch.Ppc; Exec.Target Arch.X86 ]

let assemble src = Omni_asm.Link.link [ Omni_asm.Parse.assemble ~name:"t" src ]

let run_engine ?fuel ?watchdog engine exe =
  let img = Exec.load exe in
  match engine with
  | Exec.Interp -> Exec.run_interp ?fuel ?watchdog img
  | Exec.Fast -> Exec.run_fast ?fuel ?watchdog img
  | Exec.Target arch ->
      let mode = Machine.Mobile (Omni_sfi.Policy.make ()) in
      let tr = Exec.translate ~mode ~opts:(Exec.mobile_opts arch) arch exe in
      Exec.run_translated ?fuel ?watchdog tr img

(* --- source modules --- *)

let crashy_bytes =
  lazy (Api.compile ~name:"crashy" "int main(void) { int x = 0; return 1 / x; }")

let spin_bytes =
  lazy (Api.compile ~name:"spin" "int main(void) { while (1) { } return 0; }")

let hello_bytes =
  lazy
    (Api.compile ~name:"hello"
       {| int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
          int main(void) { print_int(f(12)); putchar(10); return 0; } |})

(* The handler prints the delivered fault code and exits cleanly. *)
let report_handler_exe body =
  assemble
    (Printf.sprintf
       {|
        .text
        .globl main
handler:
        hcall 2            ; print_int(r1 = fault code)
        li r1, 10
        hcall 1
        li r1, 0
        hcall 0
main:
        li r1, handler
        hcall 7            ; set_handler
%s
|}
       body)

let div_fault_body = {|
        li r2, 0
        li r3, 4
        div r3, r3, r2
        li r1, 1
        hcall 0
|}

let spin_body = {|
loop:
        j loop
|}

(* --- engine parity of fault delivery --- *)

(* (scenario name, expected printed code, run it on the engine) *)
let parity_scenarios =
  [ ( "division_by_zero",
      Fault.code Fault.Division_by_zero,
      fun engine ->
        run_engine ~fuel engine (report_handler_exe div_fault_body) );
    ( "deadline_exceeded",
      Fault.code Fault.Deadline_exceeded,
      fun engine ->
        let w =
          Watchdog.make ~poll_every:256 ~clock:(ticking ()) ~budget_s:0.01 ()
        in
        run_engine ~fuel ~watchdog:w engine (report_handler_exe spin_body) ) ]

let qcheck_engine_parity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"every engine delivers the same fault code in r1"
       QCheck.(
         make
           Gen.(pair (oneofl engines) (oneofl parity_scenarios))
           ~print:(fun (e, (name, _, _)) ->
             Printf.sprintf "%s/%s" (Exec.engine_name e) name))
       (fun (engine, (_, code, run)) ->
         let r = run engine in
         r.Exec.outcome = Machine.Exited 0
         && r.Exec.output = Printf.sprintf "%d\n" code))

(* Delivery must clear the handler: a second fault inside the handler
   aborts the run instead of looping through delivery forever. *)
let handler_cleared () =
  let exe =
    assemble
      {|
        .text
        .globl main
handler:
        li r2, 0
        li r3, 1
        div r3, r3, r2     ; faults again: handler is gone, must abort
main:
        li r1, handler
        hcall 7
        li r2, 0
        li r3, 4
        div r3, r3, r2
|}
  in
  List.iter
    (fun engine ->
      let r = run_engine ~fuel engine exe in
      Alcotest.(check bool)
        (Exec.engine_name engine ^ ": second fault aborts")
        true
        (r.Exec.outcome = Machine.Faulted Fault.Division_by_zero))
    engines

(* --- watchdog --- *)

let watchdog_fires () =
  let exe = Omnivm.Wire.decode (Lazy.force spin_bytes) in
  List.iter
    (fun engine ->
      let w =
        Watchdog.make ~poll_every:256 ~clock:(ticking ()) ~budget_s:0.01 ()
      in
      let r = run_engine ~fuel ~watchdog:w engine exe in
      Alcotest.(check bool)
        (Exec.engine_name engine ^ ": deadline fault")
        true
        (r.Exec.outcome = Machine.Faulted Fault.Deadline_exceeded);
      Alcotest.(check bool)
        (Exec.engine_name engine ^ ": crash site captured")
        true (r.Exec.crash <> None))
    engines

let watchdog_spares_finishers () =
  (* A generous budget under the same ticking clock: the module finishes
     first and the watchdog never shows in the outcome. *)
  let exe = Omnivm.Wire.decode (Lazy.force hello_bytes) in
  let w =
    Watchdog.make ~poll_every:256 ~clock:(ticking ()) ~budget_s:1e6 ()
  in
  let r = run_engine ~fuel ~watchdog:w Exec.Interp exe in
  Alcotest.(check bool) "exited 0" true (r.Exec.outcome = Machine.Exited 0)

let watchdog_rejects_nonsense () =
  (match Watchdog.make ~poll_every:0 ~clock:(ticking ()) ~budget_s:1.0 () with
  | _ -> Alcotest.fail "accepted poll_every = 0"
  | exception Invalid_argument _ -> ());
  match Watchdog.make ~clock:(ticking ()) ~budget_s:(-1.0) () with
  | _ -> Alcotest.fail "accepted a negative budget"
  | exception Invalid_argument _ -> ()

(* --- crash reports: construction and JSON round-trip --- *)

let report_of_crashy ?(engine = Exec.Interp) () =
  let wire = Lazy.force crashy_bytes in
  let sfi = true in
  let r =
    Api.run
      { Api.default_request with engine; sfi; fuel = Some fuel }
      (Api.Wire wire)
  in
  match Supervise.of_run ~engine ~sfi ~fuel ~wire r with
  | Some report -> report
  | None -> Alcotest.fail "crashy run produced no report"

let report_fields () =
  let wire = Lazy.force crashy_bytes in
  let report = report_of_crashy () in
  Alcotest.(check bool) "fault" true
    (report.Supervise.r_fault = Fault.Division_by_zero);
  Alcotest.(check bool) "digest is the wire digest" true
    (report.Supervise.r_digest = Fnv64.digest_string wire);
  Alcotest.(check int) "sixteen registers" 16
    (Array.length report.Supervise.r_regs);
  Alcotest.(check bool) "spent instructions recorded" true
    (report.Supervise.r_fuel_spent > 0);
  Alcotest.(check string) "bundle carries the module" wire
    report.Supervise.r_wire;
  (* a clean run produces no report *)
  let hello = Lazy.force hello_bytes in
  let ok =
    Api.run { Api.default_request with fuel = Some fuel } (Api.Wire hello)
  in
  Alcotest.(check bool) "no report for a clean exit" true
    (Supervise.of_run ~engine:Exec.Interp ~sfi:true ~fuel ~wire:hello ok
    = None)

let gen_fault =
  let open QCheck.Gen in
  let addr = int_range 0 0xFFFF_FFFF in
  oneof
    [ map2
        (fun addr access -> Fault.Access_violation { addr; access })
        addr
        (oneofl [ Fault.Read; Fault.Write; Fault.Execute ]);
      map2 (fun addr width -> Fault.Misaligned { addr; width }) addr
        (oneofl [ 2; 4 ]);
      return Fault.Division_by_zero;
      map (fun pc -> Fault.Illegal_instruction { pc }) addr;
      map (fun index -> Fault.Unauthorized_host_call { index }) (int_bound 31);
      return Fault.Stack_overflow;
      map (fun n -> Fault.Explicit_trap n) (int_bound 255);
      return Fault.Deadline_exceeded ]

let gen_report =
  let open QCheck.Gen in
  let bytes = string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 80) in
  let* r_fault = gen_fault
  and* r_engine = oneofl engines
  and* r_sfi = bool
  and* r_producer = opt (oneofl [ "minic"; "stackvm" ])
  and* r_digest = map Int64.of_int int
  and* r_fuel = opt (int_bound 1_000_000)
  and* r_fuel_spent = int_bound 1_000_000
  and* r_pc = int_range (-1) 0xFFFF_FFFF
  and* regs = array_size (return 16) small_signed_int
  and* r_window_base = int_range (-1) 0xFFFF_FFFF
  and* r_window = bytes
  and* r_wire = bytes in
  return
    {
      Supervise.r_fault;
      r_engine;
      r_sfi;
      r_producer;
      r_digest;
      r_fuel;
      r_fuel_spent;
      r_pc;
      r_regs = regs;
      r_window_base;
      r_window;
      r_wire;
    }

let qcheck_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"report JSON round-trip"
       (QCheck.make gen_report ~print:Supervise.to_json)
       (fun r -> Supervise.of_json (Supervise.to_json r) = r))

let json_rejects_garbage () =
  let reject what text =
    match Supervise.of_json text with
    | _ -> Alcotest.failf "accepted %s" what
    | exception Supervise.Bad_report _ -> ()
  in
  reject "empty input" "";
  reject "non-object" "[1,2]";
  reject "missing fields" {|{"schema":"omni-crash/1"}|};
  reject "unknown schema" {|{"schema":"omni-crash/999"}|};
  let good = Supervise.to_json (report_of_crashy ()) in
  reject "truncated document" (String.sub good 0 (String.length good - 5));
  reject "trailing garbage" (good ^ "x");
  reject "string escapes" {|{"schema":"omni-crash/1"}|}

(* regression: [omnirun --crash-dir DIR] with a missing DIR must create
   it (parents included) instead of failing the write at fault time *)
let write_report_creates_missing_dir () =
  let report = report_of_crashy () in
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omni-test-crashdir-%d" (Unix.getpid ()))
  in
  let dir = Filename.concat (Filename.concat base "nested") "deep" in
  let cleanup () =
    if Sys.file_exists dir then
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
    List.iter
      (fun d -> try Unix.rmdir d with Unix.Unix_error _ -> ())
      [ dir; Filename.concat base "nested"; base ]
  in
  cleanup ();
  Fun.protect ~finally:cleanup @@ fun () ->
  let path = Supervise.write_report ~dir report in
  Alcotest.(check bool) "report written" true (Sys.file_exists path);
  Alcotest.(check string) "under the requested dir" dir
    (Filename.dirname path);
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Alcotest.(check bool) "round-trips" true
    (Supervise.of_json (String.trim text) = report);
  (* writing again into the now-existing dir is fine and lands on the
     same conventional filename *)
  let path2 = Supervise.write_report ~dir report in
  Alcotest.(check string) "stable path" path path2

(* --- replay --- *)

let replay_reproduces_everywhere () =
  (* A bundle captured on one engine must reproduce on its own engine and
     on every other architecture: the fault is a property of the module,
     not of the machine that first observed it. *)
  let report = report_of_crashy ~engine:(Exec.Target Arch.Mips) () in
  List.iter
    (fun engine ->
      match Supervise.check_replay ~engine report with
      | Supervise.Reproduced -> ()
      | Supervise.Transient o | Supervise.Diverged o ->
          Alcotest.failf "%s: did not reproduce (%s)"
            (Exec.engine_name engine)
            (match o with
            | Machine.Exited n -> Printf.sprintf "exited %d" n
            | Machine.Faulted f -> Fault.to_string f
            | Machine.Out_of_fuel -> "out of fuel"))
    engines;
  (* and round-tripping through JSON first changes nothing *)
  let rt = Supervise.of_json (Supervise.to_json report) in
  Alcotest.(check bool) "replay after round-trip" true
    (Supervise.check_replay rt = Supervise.Reproduced)

let replay_divergence_detected () =
  (* Claim a different fault than the module actually commits: replay
     must call the bundle out instead of rubber-stamping it. *)
  let report =
    { (report_of_crashy ()) with Supervise.r_fault = Fault.Stack_overflow }
  in
  match Supervise.check_replay report with
  | Supervise.Diverged (Machine.Faulted Fault.Division_by_zero) -> ()
  | _ -> Alcotest.fail "forged bundle was not detected"

let replay_transient_terminates () =
  (* A deadline bundle of a spinning module has no bound of its own; the
     replay must terminate anyway (bounded by the original's progress)
     and assert nothing. *)
  let wire = Lazy.force spin_bytes in
  let w = Watchdog.make ~poll_every:256 ~clock:(ticking ()) ~budget_s:0.01 () in
  let r =
    Exec.run_interp ~fuel ~watchdog:w
      (Exec.load (Omnivm.Wire.decode wire))
  in
  let report =
    Option.get (Supervise.of_run ~engine:Exec.Interp ~sfi:true ~wire r)
  in
  match Supervise.check_replay report with
  | Supervise.Transient _ -> ()
  | Supervise.Reproduced | Supervise.Diverged _ ->
      Alcotest.fail "transient fault was asserted"

(* --- quarantine laws --- *)

let gen_threshold = QCheck.Gen.int_range 1 6

let qcheck_quarantine_threshold =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"quarantine trips exactly at the threshold"
       QCheck.(make gen_threshold ~print:string_of_int)
       (fun threshold ->
         let clock = Clock.manual () in
         let q =
           Quarantine.create { Quarantine.threshold; ttl_s = 10.0; clock }
         in
         let d = 0xBEEFL in
         let ok = ref true in
         for i = 1 to threshold - 1 do
           let tripped = Quarantine.note q d (Machine.Faulted Fault.Division_by_zero) in
           ok := !ok && (not tripped) && Quarantine.strikes q d = i;
           (match Quarantine.check q d with
           | () -> ()
           | exception Quarantine.Quarantined _ -> ok := false)
         done;
         let tripped =
           Quarantine.note q d (Machine.Faulted Fault.Division_by_zero)
         in
         ok := !ok && tripped;
         (match Quarantine.check q d with
         | () -> ok := false
         | exception Quarantine.Quarantined { digest; _ } ->
             ok := !ok && digest = d);
         (* tripping is edge-triggered: further notes do not re-trip *)
         let again =
           Quarantine.note q d (Machine.Faulted Fault.Division_by_zero)
         in
         !ok && not again))

let qcheck_quarantine_ttl =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"TTL expiry grants fresh chances"
       QCheck.(make gen_threshold ~print:string_of_int)
       (fun threshold ->
         let clock = Clock.manual () in
         let q =
           Quarantine.create { Quarantine.threshold; ttl_s = 10.0; clock }
         in
         let d = 1L in
         for _ = 1 to threshold do
           ignore (Quarantine.note q d (Machine.Faulted Fault.Stack_overflow))
         done;
         let quarantined =
           match Quarantine.check q d with
           | () -> false
           | exception Quarantine.Quarantined _ -> true
         in
         Clock.advance clock 10.5;
         (match Quarantine.check q d with
         | () -> ()
         | exception Quarantine.Quarantined _ ->
             QCheck.Test.fail_report "still quarantined after TTL");
         (* fresh chances: the strike count restarted from zero *)
         quarantined && Quarantine.strikes q d = 0))

let quarantine_classification () =
  let clock = Clock.manual () in
  let q = Quarantine.create { Quarantine.threshold = 2; ttl_s = 10.0; clock } in
  let d = 7L in
  (* transient faults and fuel exhaustion never strike *)
  for _ = 1 to 10 do
    ignore (Quarantine.note q d (Machine.Faulted Fault.Deadline_exceeded));
    ignore (Quarantine.note q d Machine.Out_of_fuel)
  done;
  Alcotest.(check int) "transient runs never strike" 0 (Quarantine.strikes q d);
  (* a clean exit resets accumulated strikes *)
  ignore (Quarantine.note q d (Machine.Faulted Fault.Division_by_zero));
  Alcotest.(check int) "one strike" 1 (Quarantine.strikes q d);
  ignore (Quarantine.note q d (Machine.Exited 0));
  Alcotest.(check int) "clean exit resets" 0 (Quarantine.strikes q d);
  (* clear lifts an active quarantine *)
  ignore (Quarantine.note q d (Machine.Faulted Fault.Division_by_zero));
  ignore (Quarantine.note q d (Machine.Faulted Fault.Division_by_zero));
  Alcotest.(check bool) "tripped" true
    (match Quarantine.check q d with
    | () -> false
    | exception Quarantine.Quarantined _ -> true);
  Alcotest.(check bool) "clear lifts" true (Quarantine.clear q d);
  Quarantine.check q d;
  Alcotest.(check bool) "clearing twice is false" false (Quarantine.clear q d);
  (* config validation *)
  (match Quarantine.create { Quarantine.threshold = 0; ttl_s = 1.0; clock } with
  | _ -> Alcotest.fail "accepted threshold 0"
  | exception Invalid_argument _ -> ());
  match Quarantine.create { Quarantine.threshold = 1; ttl_s = 0.0; clock } with
  | _ -> Alcotest.fail "accepted ttl 0"
  | exception Invalid_argument _ -> ()

(* --- service integration --- *)

let service_quarantines () =
  let clock = Clock.manual () in
  let reports = ref [] in
  let svc =
    Service.create
      ~quarantine:{ Quarantine.threshold = 2; ttl_s = 60.0; clock }
      ~on_crash:(fun r -> reports := r :: !reports)
      ()
  in
  let h = Service.submit svc (Lazy.force crashy_bytes) in
  let engine = Exec.Target Arch.Mips in
  let faulted () =
    let r = Service.instantiate ~engine ~fuel svc h in
    Alcotest.(check bool) "faulted" true
      (r.Exec.outcome = Machine.Faulted Fault.Division_by_zero)
  in
  faulted ();
  faulted ();
  let translations_before = (Service.stats svc).Counters.s_translations in
  (* tripped: refusals are typed and pay no translation or execution *)
  for _ = 1 to 5 do
    match Service.instantiate ~engine ~fuel svc h with
    | _ -> Alcotest.fail "quarantined module ran"
    | exception Quarantine.Quarantined _ -> ()
  done;
  let c = Service.stats svc in
  Alcotest.(check int) "refusals skip the translator" translations_before
    c.Counters.s_translations;
  Alcotest.(check int) "one trip" 1 c.Counters.s_quarantine_trips;
  Alcotest.(check int) "five refusals" 5 c.Counters.s_quarantine_refused;
  Alcotest.(check int) "a report per fault" 2 c.Counters.s_crash_reports;
  Alcotest.(check int) "hook saw both" 2 (List.length !reports);
  Alcotest.(check int) "one digest listed" 1
    (List.length (Service.quarantined svc));
  (* manual clear re-admits the module (which promptly faults again) *)
  let digest = Fnv64.digest_string (Lazy.force crashy_bytes) in
  Alcotest.(check bool) "cleared" true (Service.clear_quarantine svc digest);
  Alcotest.(check int) "clear counted" 1
    (Service.stats svc).Counters.s_quarantine_cleared;
  faulted ()

let service_deadline () =
  (* Service-wide deadline under an injectable clock: a spinning module
     faults with deadline_exceeded; the fault is transient, so even many
     such runs never quarantine the module. *)
  let svc =
    Service.create
      ~quarantine:{ Quarantine.default_config with clock = Clock.manual () }
      ~deadline_s:0.01 ~watchdog_poll:64 ~clock:(ticking ()) ()
  in
  let h = Service.submit svc (Lazy.force spin_bytes) in
  for _ = 1 to 5 do
    let r = Service.instantiate ~fuel svc h in
    Alcotest.(check bool) "deadline fault" true
      (r.Exec.outcome = Machine.Faulted Fault.Deadline_exceeded)
  done;
  let c = Service.stats svc in
  Alcotest.(check int) "deadline faults counted" 5
    c.Counters.s_deadline_exceeded;
  Alcotest.(check int) "never quarantined" 0 c.Counters.s_quarantine_trips;
  Alcotest.(check int) "never refused" 0 c.Counters.s_quarantine_refused;
  (* a per-call deadline overrides the service default: a generous one
     lets a healthy module finish *)
  let hh = Service.submit svc (Lazy.force hello_bytes) in
  let r = Service.instantiate ~fuel ~deadline_s:1e6 svc hh in
  Alcotest.(check bool) "healthy module finishes" true
    (r.Exec.outcome = Machine.Exited 0)

(* --- survival: 1,000 hostile requests --- *)

let survival_1000 () =
  let reports = ref 0 in
  let svc =
    Service.create
      ~quarantine:
        { Quarantine.threshold = 3; ttl_s = 1e9; clock = Clock.manual () }
      ~watchdog_poll:64 ~clock:(ticking ())
      ~on_crash:(fun _ -> incr reports)
      ()
  in
  let good = Service.submit svc (Lazy.force hello_bytes) in
  let crashy = Service.submit svc (Lazy.force crashy_bytes) in
  let spin = Service.submit svc (Lazy.force spin_bytes) in
  let engine = Exec.Target Arch.Mips in
  let faults = ref 0 and refused = ref 0 and ok = ref 0 in
  for i = 1 to 1000 do
    match i mod 10 with
    | 0 -> (
        (* a deterministic faulter: three strikes, then refusals *)
        match Service.instantiate ~engine ~fuel svc crashy with
        | r ->
            Alcotest.(check bool) "crashy faults" true
              (r.Exec.outcome = Machine.Faulted Fault.Division_by_zero);
            incr faults
        | exception Quarantine.Quarantined _ -> incr refused)
    | 5 ->
        (* a spinner under a deadline: transient faults, never refused *)
        let r = Service.instantiate ~fuel ~deadline_s:0.01 svc spin in
        Alcotest.(check bool) "spin hits the deadline" true
          (r.Exec.outcome = Machine.Faulted Fault.Deadline_exceeded);
        incr faults
    | _ ->
        let r = Service.instantiate ~engine ~fuel svc good in
        Alcotest.(check int) "good module exits 0" 0 r.Exec.exit_code;
        incr ok
  done;
  let c = Service.stats svc in
  Alcotest.(check int) "three faults then quarantined" 3
    ((1000 / 10) - !refused);
  Alcotest.(check int) "every fault has exactly one report" !faults !reports;
  Alcotest.(check int) "counters agree with the hook" !faults
    c.Counters.s_crash_reports;
  Alcotest.(check int) "one breaker trip" 1 c.Counters.s_quarantine_trips;
  Alcotest.(check int) "every refusal counted" !refused
    c.Counters.s_quarantine_refused;
  Alcotest.(check int) "transient faults all counted" 100
    c.Counters.s_deadline_exceeded;
  Alcotest.(check int) "healthy traffic unharmed" 800 !ok;
  (* refusals are free: only two configurations ever paid the translator
     (good and crashy on mips; the spinner runs interpreted) *)
  Alcotest.(check int) "refusals never translated" 2 c.Counters.s_translations;
  (* and the service still serves *)
  let r = Service.instantiate ~engine ~fuel svc good in
  Alcotest.(check int) "still serving" 0 r.Exec.exit_code

let () =
  Alcotest.run "supervise"
    [ ("parity",
       [ qcheck_engine_parity;
         Alcotest.test_case "delivery clears the handler" `Quick
           handler_cleared ]);
      ("watchdog",
       [ Alcotest.test_case "fires on every engine" `Quick watchdog_fires;
         Alcotest.test_case "spares finishing runs" `Quick
           watchdog_spares_finishers;
         Alcotest.test_case "rejects nonsense configs" `Quick
           watchdog_rejects_nonsense ]);
      ("reports",
       [ Alcotest.test_case "fields" `Quick report_fields;
         qcheck_json_roundtrip;
         Alcotest.test_case "rejects garbage" `Quick json_rejects_garbage;
         Alcotest.test_case "write_report creates missing dir" `Quick
           write_report_creates_missing_dir ]);
      ("replay",
       [ Alcotest.test_case "reproduces on every engine" `Quick
           replay_reproduces_everywhere;
         Alcotest.test_case "detects divergence" `Quick
           replay_divergence_detected;
         Alcotest.test_case "transient replay terminates" `Quick
           replay_transient_terminates ]);
      ("quarantine",
       [ qcheck_quarantine_threshold; qcheck_quarantine_ttl;
         Alcotest.test_case "classification + clear" `Quick
           quarantine_classification ]);
      ("service",
       [ Alcotest.test_case "quarantine end to end" `Quick service_quarantines;
         Alcotest.test_case "deadline end to end" `Quick service_deadline ]);
      ("survival",
       [ Alcotest.test_case "1000 hostile requests" `Quick survival_1000 ]) ]
