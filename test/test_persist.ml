(* Crash-safety of the persistent store (lib/persist).

   The load-bearing property: after ANY failure the fault layer can
   inject — a crash at every mutating operation, torn and bit-flipped
   writes, short reads, dropped fsyncs, crashes on either side of a
   rename, and crashes during recovery itself — reopening the store
   either recovers a record bit-identically or refuses it with a typed
   quarantine reason. Never an escaped exception, never divergent bytes.

   The matrix below enumerates 200+ seeded fault cases over one fixed
   workload (two modules + three certified translations produced once
   through the real serving path). Alongside it: the clean-marker fast
   path, the witness-recheck counters on a recovered cache, fingerprint
   parity between the persist layer and the live path, and compaction
   dropping a corrupted record. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Exec = Omni_service.Exec
module Service = Omni_service.Service
module Counters = Omni_service.Counters
module Cache = Omni_service.Cache
module Io = Omni_persist.Io
module Store = Omni_persist.Store
module Fnv64 = Omni_util.Fnv64

let fuel = 50_000_000

let hello_src =
  {| int g = 7;
     int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
     int main(void) {
       int i;
       for (i = 0; i < 5; i++) { print_int(f(i + 5) + g); putchar(32); }
       putchar(10);
       return 0; } |}

let loop_src =
  {| int main(void) {
       int i; int s = 0;
       for (i = 0; i < 300; i++) s = s + i * 5;
       print_int(s); putchar(10); return 0; } |}

let hello_bytes = lazy (Api.compile ~name:"hello" hello_src)
let loop_bytes = lazy (Api.compile ~name:"loop" loop_src)

let persisted io =
  { Service.default_config with Service.persist = Some io }

(* The corpus: a store populated once through the real serving path
   (submit + certified X86/Mips translations), then read back. The fault
   matrix replays these exact records, so it never pays translation. *)
let corpus =
  lazy
    (let io = Io.sim () in
     let svc = Service.of_config (persisted io) in
     let h1 = Service.submit svc (Lazy.force hello_bytes) in
     let h2 = Service.submit svc (Lazy.force loop_bytes) in
     ignore (Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h1);
     ignore (Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h2);
     ignore (Service.instantiate ~engine:(Exec.Target Arch.Mips) ~fuel svc h1);
     Service.close svc;
     let r = Store.fsck io in
     if r.Store.r_quarantined <> [] || r.Store.r_torn <> 0 then
       failwith "corpus store did not fsck clean";
     if
       List.length r.Store.r_modules <> 2
       || List.length r.Store.r_translations <> 3
     then failwith "corpus store incomplete";
     (r.Store.r_modules, r.Store.r_translations))

(* Replay the corpus through the store API: open, append everything,
   close. Deterministic, so the fault plan indexes its kill points. *)
let replay_workload io =
  let mods, trs = Lazy.force corpus in
  let t, _ = Store.open_ io in
  List.iter (Store.append_module t) mods;
  List.iter
    (fun (rt : Store.rtrans) ->
      Store.append_translation t ~module_digest:rt.Store.rt_module
        ~mode:rt.Store.rt_mode ~opts:rt.Store.rt_opts ~cert:rt.Store.rt_cert
        rt.Store.rt_prog)
    trs;
  Store.close t

(* Recovery may itself crash (the fault plan can point past the workload)
   — then the machine reboots and recovers again. Anything but a clean
   return or a simulated crash is a bug. *)
let rec open_with_reboots ~case io attempts =
  match Store.open_ io with
  | t, r -> (t, r)
  | exception Io.Crashed _ when attempts < 8 ->
      Io.reboot io;
      open_with_reboots ~case io (attempts + 1)
  | exception e ->
      Alcotest.failf "%s: recovery raised %s" case (Printexc.to_string e)

let check_recovery ~case io =
  let mods, trs = Lazy.force corpus in
  let _, r = open_with_reboots ~case io 0 in
  (* safety: every recovered byte is bit-identical to an appended one *)
  List.iter
    (fun m ->
      if not (List.mem m mods) then
        Alcotest.failf "%s: recovered module diverges from what was stored"
          case)
    r.Store.r_modules;
  List.iter
    (fun (rt : Store.rtrans) ->
      let matches (o : Store.rtrans) =
        o.Store.rt_module = rt.Store.rt_module
        && Store.arch_of o.Store.rt_prog = Store.arch_of rt.Store.rt_prog
        && Store.fingerprint o.Store.rt_prog
           = Store.fingerprint rt.Store.rt_prog
        && o.Store.rt_fp = rt.Store.rt_fp
      in
      if not (List.exists matches trs) then
        Alcotest.failf
          "%s: recovered translation diverges from what was stored" case)
    r.Store.r_translations;
  (* the first open truncated the torn tails: with the faults disarmed, a
     second scan must see the same store with nothing left to drop *)
  Io.disarm io;
  let _, r2 = Store.open_ io in
  if r2.Store.r_torn <> 0 then
    Alcotest.failf "%s: torn tail survived the truncation" case;
  if
    List.length r2.Store.r_modules <> List.length r.Store.r_modules
    || List.length r2.Store.r_translations
       <> List.length r.Store.r_translations
  then Alcotest.failf "%s: recovery is not idempotent" case;
  r

(* One matrix case: run the workload under the armed faults; on a crash
   the machine reboots; either way the power is cut before recovery (a
   completed workload is fully fsynced, so this loses nothing it was
   ever promised). [crash_only] marks fault plans that cannot corrupt or
   silently lose bytes — if such a workload ran to completion, recovery
   must be total. *)
let run_case (case, crash_only, faults) =
  let io = Io.sim ~faults () in
  let completed =
    match replay_workload io with
    | () -> true
    | exception Io.Crashed _ -> false
  in
  Io.reboot io;
  let r = check_recovery ~case io in
  if completed && crash_only then begin
    let mods, trs = Lazy.force corpus in
    if
      List.length r.Store.r_modules <> List.length mods
      || List.length r.Store.r_translations <> List.length trs
      || r.Store.r_quarantined <> []
      || r.Store.r_torn <> 0
    then
      Alcotest.failf
        "%s: workload completed under a pure-crash plan but recovery was \
         partial (%d+%d of %d+%d, %d quarantined, %d torn)"
        case
        (List.length r.Store.r_modules)
        (List.length r.Store.r_translations)
        (List.length mods) (List.length trs)
        (List.length r.Store.r_quarantined)
        r.Store.r_torn
  end

let matrix_cases () =
  (* measure the kill-point space on a fault-free run *)
  let io0 = Io.sim () in
  replay_workload io0;
  let m = Io.mutations io0 in
  let cases = ref [] in
  let add case crash_only faults = cases := (case, crash_only, faults) :: !cases in
  (* crash just before every mutating operation (and past the end) *)
  for k = 0 to m + 2 do
    add (Printf.sprintf "crash@%d" k) true [ Io.Crash_at k ]
  done;
  (* torn writes: every op, several tear points *)
  for k = 0 to m - 1 do
    List.iter
      (fun keep ->
        add
          (Printf.sprintf "torn@%d.keep%d" k keep)
          true
          [ Io.Torn_write { op = k; keep } ])
      [ 0; 1; 3; 7 ]
  done;
  (* silent single-bit media corruption: every op, two bit positions *)
  for k = 0 to m - 1 do
    List.iter
      (fun bit ->
        add
          (Printf.sprintf "bitflip@%d.bit%d" k bit)
          false
          [ Io.Bit_flip { op = k; bit } ])
      [ 0; 13 ]
  done;
  (* crashes on either side of every rename commit point *)
  for k = 0 to 3 do
    add (Printf.sprintf "pre-rename@%d" k) true [ Io.Crash_before_rename k ];
    add (Printf.sprintf "post-rename@%d" k) true [ Io.Crash_after_rename k ]
  done;
  (* a disk that acknowledges fsync but loses the bytes, plus a crash *)
  add "fsync-dropped" false [ Io.Drop_fsync ];
  for k = 0 to m - 1 do
    add
      (Printf.sprintf "fsync-dropped+crash@%d" k)
      false
      [ Io.Drop_fsync; Io.Crash_at k ]
  done;
  (* reads that lose their tails, per file and depth *)
  List.iter
    (fun file ->
      List.iter
        (fun drop ->
          add
            (Printf.sprintf "short-read:%s-%d" file drop)
            false
            [ Io.Short_read { file; drop } ])
        [ 1; 2; 3; 5; 9; 13 ])
    [ "seg-0000.dat"; "journal-0000.wal"; "current"; "clean" ];
  !cases

let fault_matrix () =
  let cases = matrix_cases () in
  if List.length cases < 200 then
    Alcotest.failf "fault matrix shrank to %d cases (wanted >= 200)"
      (List.length cases);
  List.iter run_case cases

let fault_free_roundtrip () =
  let io = Io.sim () in
  replay_workload io;
  Io.reboot io;
  (* power cut after a graceful close: everything durable, marker valid *)
  let _, r = Store.open_ io in
  Alcotest.(check bool) "clean marker honored" true r.Store.r_clean;
  Alcotest.(check int) "modules" 2 (List.length r.Store.r_modules);
  Alcotest.(check int) "translations" 3 (List.length r.Store.r_translations);
  Alcotest.(check int) "nothing torn" 0 r.Store.r_torn;
  Alcotest.(check int) "nothing quarantined" 0
    (List.length r.Store.r_quarantined);
  Alcotest.(check int) "replayed = stored" 5 r.Store.r_replayed

let garbage_store_opens_empty () =
  let io = Io.sim () in
  Io.append io "seg-0000.dat" "this is not a segment record";
  Io.append io "journal-0000.wal" "nor is this a journal";
  Io.append io "current" "17 notahexdigest";
  Io.append io "clean" "lies all the way down";
  List.iter (Io.fsync io) [ "seg-0000.dat"; "journal-0000.wal"; "current"; "clean" ];
  let _, r = Store.open_ io in
  Alcotest.(check bool) "not clean" false r.Store.r_clean;
  Alcotest.(check int) "no modules" 0 (List.length r.Store.r_modules);
  Alcotest.(check int) "no translations" 0
    (List.length r.Store.r_translations)

(* a valid store whose journal grew a torn tail: full recovery + 1 torn *)
let torn_journal_tail () =
  let io = Io.sim () in
  replay_workload io;
  Io.append io "journal-0000.wal" (String.make 11 '\xFF');
  let _, r = Store.open_ io in
  Alcotest.(check int) "all records recovered" 5
    (List.length r.Store.r_modules + List.length r.Store.r_translations);
  Alcotest.(check int) "tail dropped" 1 r.Store.r_torn;
  Alcotest.(check bool) "marker no longer vouches" false r.Store.r_clean

(* --- the serving path over a recovered store ------------------------- *)

let warm_hits_recheck_witness () =
  let io = Io.sim () in
  let svc = Service.of_config (persisted io) in
  let h = Service.submit svc (Lazy.force hello_bytes) in
  let cold = Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h in
  (* kill -9: drop the service without close — recovery runs dirty *)
  let svc2 = Service.of_config (persisted io) in
  (match Service.recovery svc2 with
  | Some r ->
      Alcotest.(check bool) "dirty restart" false r.Store.r_clean;
      Alcotest.(check int) "recovered both records" 2
        (List.length r.Store.r_modules + List.length r.Store.r_translations)
  | None -> Alcotest.fail "persistent service reported no recovery");
  let h2 = Service.submit svc2 (Lazy.force hello_bytes) in
  let warm = Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc2 h2 in
  Alcotest.(check string) "bit-identical output" cold.Exec.output
    warm.Exec.output;
  Alcotest.(check int) "same exit" cold.Exec.exit_code warm.Exec.exit_code;
  Alcotest.(check int) "same instruction count" cold.Exec.instructions
    warm.Exec.instructions;
  let c = Service.stats svc2 in
  Alcotest.(check int) "no re-translation" 0 c.Counters.s_translations;
  Alcotest.(check int) "no full verifier run" 0 c.Counters.s_verifications;
  Alcotest.(check int) "no full-verify fallback" 0
    c.Counters.s_cert_full_verify;
  Alcotest.(check int) "the warm hit re-checked the witness" 1
    c.Counters.s_cert_checks;
  Alcotest.(check int) "replayed" 2 c.Counters.s_persist_replay;
  Alcotest.(check int) "recovered" 2 c.Counters.s_persist_recovered;
  Alcotest.(check int) "restore paths journaled nothing" 0
    c.Counters.s_persist_append

let clean_marker_fast_path () =
  let io = Io.sim () in
  let svc = Service.of_config (persisted io) in
  let h = Service.submit svc (Lazy.force hello_bytes) in
  ignore (Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h);
  Service.close svc;
  let svc2 = Service.of_config (persisted io) in
  (match Service.recovery svc2 with
  | Some r -> Alcotest.(check bool) "clean restart" true r.Store.r_clean
  | None -> Alcotest.fail "no recovery report");
  (* close rewrites the marker: clean restarts chain *)
  Service.close svc2;
  let svc3 = Service.of_config (persisted io) in
  match Service.recovery svc3 with
  | Some r ->
      Alcotest.(check bool) "still clean" true r.Store.r_clean;
      Alcotest.(check int) "still everything" 2
        (List.length r.Store.r_modules + List.length r.Store.r_translations)
  | None -> Alcotest.fail "no recovery report"

(* the persist layer recomputes exactly the live path's fingerprint, so
   recovered code binds against certificates minted at admission *)
let fingerprint_parity () =
  let io = Io.sim () in
  let svc = Service.of_config (persisted io) in
  let h = Service.submit svc (Lazy.force hello_bytes) in
  ignore (Service.instantiate ~engine:(Exec.Target Arch.X86) ~fuel svc h);
  ignore (Service.instantiate ~engine:(Exec.Target Arch.Mips) ~fuel svc h);
  let live_fp arch =
    match Service.cached ~arch svc h with
    | Some e -> e.Cache.fp
    | None -> Alcotest.fail "translation not cached"
  in
  Service.close svc;
  let r = Store.fsck io in
  Alcotest.(check int) "two translations on disk" 2
    (List.length r.Store.r_translations);
  List.iter
    (fun (rt : Store.rtrans) ->
      let arch = Store.arch_of rt.Store.rt_prog in
      Alcotest.(check bool)
        (Printf.sprintf "fingerprint parity on %s" (Arch.name arch))
        true
        (Store.fingerprint rt.Store.rt_prog = rt.Store.rt_fp
        && rt.Store.rt_fp = live_fp arch))
    r.Store.r_translations

let compact_drops_corruption () =
  let io = Io.sim () in
  replay_workload io;
  (* flip the last byte of the segment (inside the final record's
     checksum): truncate one byte, append its complement *)
  let seg = Option.get (Io.read io "seg-0000.dat") in
  let n = String.length seg in
  Io.truncate io "seg-0000.dat" (n - 1);
  Io.append io "seg-0000.dat"
    (String.make 1 (Char.chr (Char.code seg.[n - 1] lxor 0xFF)));
  let r = Store.fsck io in
  Alcotest.(check int) "one record quarantined" 1
    (List.length r.Store.r_quarantined);
  Alcotest.(check int) "the rest recovered" 4
    (List.length r.Store.r_modules + List.length r.Store.r_translations);
  let r2, (before, after) = Store.compact io in
  Alcotest.(check int) "compaction saw the same store" 4
    (List.length r2.Store.r_modules + List.length r2.Store.r_translations);
  Alcotest.(check bool) "compaction shrank the store" true (after < before);
  let r3 = Store.fsck io in
  Alcotest.(check bool) "compacted store is clean" true r3.Store.r_clean;
  Alcotest.(check int) "nothing quarantined after compact" 0
    (List.length r3.Store.r_quarantined);
  Alcotest.(check int) "survivors intact" 4
    (List.length r3.Store.r_modules + List.length r3.Store.r_translations)

let () =
  Alcotest.run "persist"
    [ ("matrix",
       [ Alcotest.test_case "200+ kill-point x fault cases" `Quick
           fault_matrix ]);
      ("recovery",
       [ Alcotest.test_case "fault-free roundtrip survives power cut" `Quick
           fault_free_roundtrip;
         Alcotest.test_case "garbage store opens empty" `Quick
           garbage_store_opens_empty;
         Alcotest.test_case "torn journal tail dropped" `Quick
           torn_journal_tail ]);
      ("service",
       [ Alcotest.test_case "warm hits re-check the witness" `Quick
           warm_hits_recheck_witness;
         Alcotest.test_case "clean-marker fast path chains" `Quick
           clean_marker_fast_path;
         Alcotest.test_case "fingerprint parity with the live path" `Quick
           fingerprint_parity ]);
      ("compact",
       [ Alcotest.test_case "drops a corrupted record" `Quick
           compact_drops_corruption ]) ]
