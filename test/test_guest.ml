(* The guest front-end's guarantees, end to end:

   1. codec: [Bytecode.decode (encode p)] gives back [p], and the decoder
      is total — arbitrary bytes and mutated encodings yield a typed
      result, never an exception;
   2. differential: for seeded random guest programs (valid, terminating
      and fault-free by construction), the lifted OmniVM module produces
      bit-identical output and exit code to the [Interp] oracle on the
      interpreter and on all four target simulators, with SFI on and off,
      and with a starved register pool so every spill path runs;
   3. refusal is typed: malformed bytecode, stack-discipline violations,
      bad targets and unknown host calls come back as [Error.t] values
      (and through the shared [Producer] surface as producer errors),
      never as exceptions or silently-wrong modules;
   4. lifted modules are first-class downstream: certificates produced
      for their translations check, and serving one through the
      memoizing [Service] cache returns bit-identical results warm and
      cold with the producer name recorded on the stored module. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Exec = Omni_service.Exec
module Service = Omni_service.Service
module Counters = Omni_service.Counters
module Guest = Omni_guest
module Producer = Omni_producer.Producer
module Fnv64 = Omni_util.Fnv64

let all_archs = [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

let gen_program seed =
  Guest.Gen.program (Random.State.make [| 0x57ac; seed |])

let lift_ok ?options p =
  match Guest.Lift.lift_exe ?options p with
  | Ok exe -> exe
  | Error e -> Alcotest.failf "lift refused: %s" (Guest.Error.to_string e)

(* --- 1. codec ---------------------------------------------------------- *)

let qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"decode (encode p) = Ok p"
       QCheck.(make Gen.int)
       (fun seed ->
         let p = gen_program seed in
         match Guest.Bytecode.decode (Guest.Bytecode.encode p) with
         | Ok p' -> Guest.Bytecode.equal p p'
         | Error e ->
             QCheck.Test.fail_reportf "decode refused its own encoding: %s"
               (Guest.Error.to_string e)))

let qcheck_decode_total_garbage =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"decode is total on arbitrary bytes"
       QCheck.(string_gen Gen.char)
       (fun bytes ->
         match Guest.Bytecode.decode bytes with
         | Ok _ | Error _ -> true))

(* Structured hostility: take a real encoding, then truncate it or flip a
   byte. Every mutant must still decode to a typed result. *)
let qcheck_decode_total_mutants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"decode is total on mutated encodings"
       QCheck.(pair (make Gen.int) (pair small_nat small_nat))
       (fun (seed, (pos, salt)) ->
         let enc = Guest.Bytecode.encode (gen_program seed) in
         let n = String.length enc in
         let mutant =
           if salt land 1 = 0 then String.sub enc 0 (pos mod (n + 1))
           else begin
             let b = Bytes.of_string enc in
             let i = pos mod n in
             Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + (salt mod 255))));
             Bytes.to_string b
           end
         in
         match Guest.Bytecode.decode mutant with
         | Ok _ | Error _ -> true))

(* --- 2. the differential guarantee ------------------------------------ *)

let fuel = 50_000_000

(* Oracle vs lifted module, across every engine and SFI mode, plus a
   pool-starved lift (pool = 2) that spills most of the operand stack. *)
let qcheck_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"oracle = lifted on every engine"
       QCheck.(make Gen.int)
       (fun seed ->
         let p = gen_program seed in
         let o = Guest.Interp.run ~fuel p in
         (match o.Guest.Interp.outcome with
         | Guest.Interp.Exited _ -> ()
         | Guest.Interp.Faulted f ->
             QCheck.Test.fail_reportf
               "generated program faulted on the oracle (generator bug): %s"
               (Omnivm.Fault.to_string f)
         | Guest.Interp.Out_of_fuel ->
             QCheck.Test.fail_reportf
               "generated program ran out of fuel (generator bug)");
         let expect_exit = Guest.Interp.exit_code o.Guest.Interp.outcome in
         let check what (r : Api.run_result) =
           if not (String.equal r.Api.output o.Guest.Interp.output) then
             QCheck.Test.fail_reportf "seed %d: %s output diverged" seed what;
           if r.Api.exit_code <> expect_exit then
             QCheck.Test.fail_reportf "seed %d: %s exit %d, oracle %d" seed
               what r.Api.exit_code expect_exit;
           true
         in
         let exe = lift_ok p in
         let ok =
           check "interp" (Api.run_exe ~engine:Api.Interp ~fuel exe)
           && List.for_all
                (fun arch ->
                  List.for_all
                    (fun sfi ->
                      check
                        (Printf.sprintf "%s/sfi=%b" (Arch.name arch) sfi)
                        (Api.run_exe ~engine:(Api.Target arch) ~sfi ~fuel exe))
                    [ true; false ])
                all_archs
         in
         (* starved pool: same seeds through the spill paths *)
         let spilly = lift_ok ~options:{ Guest.Lift.pool = 2 } p in
         ok
         && check "interp/pool=2" (Api.run_exe ~engine:Api.Interp ~fuel spilly)
         && check "mips/pool=2"
              (Api.run_exe ~engine:(Api.Target Arch.Mips) ~fuel spilly)))

(* --- 3. typed refusal -------------------------------------------------- *)

let asm_exn src =
  match Guest.Asm.assemble src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assemble: %s" (Guest.Error.to_string e)

let expect_error what r (classify : Guest.Error.t -> bool) =
  match r with
  | Ok _ -> Alcotest.failf "%s: accepted" what
  | Error e ->
      if not (classify e) then
        Alcotest.failf "%s: wrong error %s" what (Guest.Error.to_string e)

let lift_errors_typed () =
  (* malformed bytecode *)
  expect_error "empty input" (Guest.Lift.lift_bytes "") (function
    | Guest.Error.Truncated _ | Guest.Error.Bad_magic -> true
    | _ -> false);
  expect_error "bad magic" (Guest.Lift.lift_bytes "NOPE00000000") (function
    | Guest.Error.Bad_magic -> true
    | _ -> false);
  let good = Guest.Bytecode.encode (asm_exn ".mem 0\n.func main 0 0\npush 0 halt\n") in
  expect_error "truncated body"
    (Guest.Lift.lift_bytes (String.sub good 0 (String.length good - 3)))
    (function Guest.Error.Truncated _ -> true | _ -> false);
  (* an unknown host-call byte inside an otherwise-valid stream: patch the
     encoded [sys print_int] (opcode 0x0F, operand 0x00) to service 9 *)
  let with_sys =
    Guest.Bytecode.encode
      (asm_exn ".mem 0\n.func main 0 0\npush 1 sys print_int push 0 halt\n")
  in
  let patched =
    let b = Bytes.of_string with_sys in
    let rec find i =
      if i + 1 >= Bytes.length b then
        Alcotest.fail "sys opcode not found in encoding"
      else if Bytes.get b i = '\x0F' && Bytes.get b (i + 1) = '\x00' then i
      else find (i + 1)
    in
    Bytes.set b (find 0 + 1) '\x09';
    Bytes.to_string b
  in
  expect_error "unknown host call" (Guest.Lift.lift_bytes patched) (function
    | Guest.Error.Unknown_host { code = 9; _ } -> true
    | _ -> false);
  (* stack discipline *)
  expect_error "underflow"
    (Guest.Lift.lift_exe (asm_exn ".mem 0\n.func main 0 0\nadd push 0 halt\n"))
    (function Guest.Error.Stack_underflow _ -> true | _ -> false);
  expect_error "join-depth mismatch"
    (Guest.Lift.lift_exe
       (asm_exn
          ".mem 0\n.func main 0 1\nget 0 brz deep push 1\ndeep: push 2 drop \
           push 0 halt\n"))
    (function Guest.Error.Stack_mismatch _ -> true | _ -> false);
  expect_error "no main"
    (Guest.Lift.lift_exe (asm_exn ".mem 0\n.func helper 0 0\npush 0 halt\n"))
    (function Guest.Error.No_main -> true | _ -> false)

(* The same refusals through the uniform Producer surface: typed producer
   errors naming the producer and stage, still never an exception. *)
let producer_errors_typed () =
  let stackvm =
    match Api.producer_of_string "stackvm" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  (match Producer.compile stackvm ~name:"bad" "push push push" with
  | Ok _ -> Alcotest.fail "parse error accepted"
  | Error e ->
      Alcotest.(check string) "producer" "stackvm" e.Producer.e_producer;
      Alcotest.(check string) "stage" "parse" e.Producer.e_stage);
  (match Producer.compile stackvm ~name:"bad" ".mem 0\n.func main 0 0\nadd\n" with
  | Ok _ -> Alcotest.fail "underflow accepted"
  | Error e -> Alcotest.(check string) "stage" "lift" e.Producer.e_stage);
  match Api.producer_of_string "cobol" with
  | Ok _ -> Alcotest.fail "unknown producer resolved"
  | Error msg ->
      if not (String.length msg > 0) then Alcotest.fail "empty error"

(* --- 4. first-class downstream ---------------------------------------- *)

let subject =
  ".mem 8\n\
   .func main 0 2\n\
   push 6 set 0\n\
   loop: get 0 brz done\n\
   get 0 get 1 add set 1\n\
   get 0 push 1 sub set 0\n\
   get 0 push 7 and get 1 stm\n\
   jmp loop\n\
   done: get 1 sys print_int push 10 sys put_char push 0 halt\n"

(* Certificates are produced and checked on lifted modules exactly as on
   compiled ones — the safety story does not depend on the front-end. *)
let certificates_on_lifted () =
  let exe = lift_ok (asm_exn subject) in
  let bytes = Omnivm.Wire.encode exe in
  let digest = Fnv64.digest_string bytes in
  List.iter
    (fun arch ->
      let mode = Machine.Mobile (Omni_sfi.Policy.make ()) in
      let opts = Api.mobile_opts arch in
      let tr = Exec.translate ~mode ~opts arch exe in
      match Exec.certify ~module_digest:digest ~mode ~opts tr with
      | Error msg -> Alcotest.failf "%s: certify: %s" (Arch.name arch) msg
      | Ok cert -> (
          match Exec.check_cert ~module_digest:digest ~mode ~opts cert tr with
          | Ok () -> ()
          | Error msg ->
              Alcotest.failf "%s: witness check: %s" (Arch.name arch) msg))
    all_archs

(* Serving identity: a lifted module through the memoizing service answers
   bit-identically warm and cold, and the store remembers who produced it. *)
let cached_serving_identity () =
  let p = asm_exn subject in
  let oracle = Guest.Interp.run p in
  let wire = Omnivm.Wire.encode (lift_ok p) in
  let svc = Service.create () in
  let run () =
    Api.run
      { Api.default_request with
        engine = Api.Target Arch.Mips;
        service = Some svc }
      (Api.Text
         { producer = Omni_guest.Lift.producer;
           unit_name = "subject";
           text = subject })
  in
  let cold = run () in
  let warm = run () in
  Alcotest.(check string) "cold = oracle" oracle.Guest.Interp.output
    cold.Api.output;
  Alcotest.(check string) "warm = cold" cold.Api.output warm.Api.output;
  Alcotest.(check int) "exit" cold.Api.exit_code warm.Api.exit_code;
  let stats = Service.stats svc in
  if stats.Counters.s_hits < 1 then
    Alcotest.fail "second serving did not hit the translation cache";
  (* the stored module carries its producer name (first submitter wins) *)
  let store = Omni_service.Store.create () in
  let h = Omni_service.Store.submit ~producer:"stackvm" store wire in
  Alcotest.(check (option string))
    "producer recorded" (Some "stackvm")
    (Omni_service.Store.producer store h)

(* Both producers feed the same downstream: compile the same computation
   from MiniC and from guest assembly; both modules run through the same
   request and agree on the answer. *)
let producers_uniform () =
  let minic_src =
    "int main(void) { int i; int s; s = 0; for (i = 6; i > 0; i--) s = s + \
     i; print_int(s); putchar(10); return 0; }"
  in
  let run producer text =
    Api.run
      { Api.default_request with engine = Api.Target Arch.X86 }
      (Api.Text { producer; unit_name = "uniform"; text })
  in
  let a = run Minic.Driver.producer minic_src in
  let b = run Omni_guest.Lift.producer subject in
  Alcotest.(check string) "same answer" a.Api.output b.Api.output;
  Alcotest.(check int) "same exit" a.Api.exit_code b.Api.exit_code;
  Alcotest.(check (list string))
    "registered producers" [ "minic"; "stackvm" ]
    (List.map Producer.name Api.producers)

let () =
  Alcotest.run "guest"
    [ ("codec",
       [ qcheck_roundtrip; qcheck_decode_total_garbage;
         qcheck_decode_total_mutants ]);
      ("differential", [ qcheck_differential ]);
      ("errors",
       [ Alcotest.test_case "lift errors are typed" `Quick lift_errors_typed;
         Alcotest.test_case "producer errors are typed" `Quick
           producer_errors_typed ]);
      ("downstream",
       [ Alcotest.test_case "certificates on lifted modules" `Quick
           certificates_on_lifted;
         Alcotest.test_case "cached serving identity" `Quick
           cached_serving_identity;
         Alcotest.test_case "producers are uniform" `Quick producers_uniform ])
    ]
