(* Proof-carrying translation: the certificate subsystem's honesty tests.

   Four properties keep the produce-once / check-cheap scheme trustworthy:

   1. the [omni-cert/1] codec round-trips and its decoder is total on
      arbitrary bytes (a hostile wire cannot crash a host);
   2. every certifying verification yields a witness the independent
      checker accepts — across all architectures and certifiable SFI
      policies, through an encode/decode round trip;
   3. mutation: corrupted witnesses (bit flips, obligation drops /
      reorders / duplications, digest swaps) and corrupted code are
      refused — formally, an accepted witness NEVER licenses code the
      full verifier would reject;
   4. the cache's warm admission refuses a poisoned entry and counts the
      refusal ([service.cache.verify_fail]).

   Plus an exhaustive small-memory model check that the masking algebra
   the obligations attest (mask-then-box) can only produce in-segment
   addresses. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Exec = Omni_service.Exec
module Cache = Omni_service.Cache
module Counters = Omni_service.Counters
module Metrics = Omni_obs.Metrics
module Cert = Omni_cert.Certificate
module Check = Omni_cert.Check
module Witness = Omni_sfi.Witness
module Policy = Omni_sfi.Policy
module Fnv64 = Omni_util.Fnv64
module R = Omni_targets.Risc
module X = Omni_targets.X86
module L = Omnivm.Layout

(* A module with stores (locals, globals, computed), calls, loops and
   indirect control flow, so every obligation kind the translators emit
   shows up in its witnesses. *)
let subject_src =
  {| int g = 7;
     int tab[16];
     int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
     int main(void) {
       int i;
       for (i = 0; i < 16; i++) tab[i] = f(i % 9) + g;
       for (i = 0; i < 16; i++) g = g + tab[15 - i];
       print_int(g); putchar(10);
       return 0; } |}

let subject_bytes = lazy (Api.compile ~name:"cert-subject" subject_src)
let subject_exe = lazy (Omnivm.Wire.decode (Lazy.force subject_bytes))
let subject_digest = lazy (Fnv64.digest_string (Lazy.force subject_bytes))

let policies =
  [ ("sandbox", Policy.make ());
    ("sandbox+reads", Policy.make ~protect_reads:true ());
    (* the padded masking-sequence variants: certificates must mint,
       check, and survive the mutation battery under every pad mode *)
    ("sandbox+padnop", Policy.make ~pad:Policy.Pad_nop ());
    ("sandbox+padalign", Policy.make ~pad:Policy.Pad_align ());
    ("sandbox+guard8", Policy.make ~pad:Policy.Pad_guard8 ()) ]

(* One translated + certified configuration, memoized across tests. *)
type setup = {
  s_mode : Machine.mode;
  s_opts : Machine.topts;
  s_tr : Exec.translated;
  s_cert : Cert.t;
}

let setups : (Arch.t * string, setup) Hashtbl.t = Hashtbl.create 8

let setup arch pname =
  match Hashtbl.find_opt setups (arch, pname) with
  | Some s -> s
  | None ->
      let pol = List.assoc pname policies in
      let s_mode = Machine.Mobile pol in
      let s_opts = Api.mobile_opts arch in
      let s_tr =
        Exec.translate ~mode:s_mode ~opts:s_opts arch (Lazy.force subject_exe)
      in
      let s_cert =
        match
          Exec.certify ~module_digest:(Lazy.force subject_digest) ~mode:s_mode
            ~opts:s_opts s_tr
        with
        | Ok c -> c
        | Error msg ->
            Alcotest.failf "setup %s/%s: certification refused: %s"
              (Arch.name arch) pname msg
      in
      let s = { s_mode; s_opts; s_tr; s_cert } in
      Hashtbl.replace setups (arch, pname) s;
      s

let check_with s cert =
  Exec.check_cert ~module_digest:(Lazy.force subject_digest) ~mode:s.s_mode
    ~opts:s.s_opts cert s.s_tr

(* --- generators --- *)

let gen_kind = QCheck.Gen.oneofl Witness.all_kinds
let gen_arch = QCheck.Gen.oneofl [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

let gen_digest = QCheck.Gen.map Int64.of_int QCheck.Gen.int

let gen_topts =
  let open QCheck.Gen in
  let* schedule = bool
  and* fill_delay_slots = bool
  and* use_gp = bool
  and* peephole = bool
  and* sfi_opt = bool in
  return { Machine.schedule; fill_delay_slots; use_gp; peephole; sfi_opt }

(* An arbitrary well-formed certificate: obligation indices strictly
   increasing within [0, n_code). *)
let gen_cert =
  let open QCheck.Gen in
  let* arch = gen_arch
  and* module_digest = gen_digest
  and* code_fp = gen_digest
  and* protect_reads = bool
  and* pad = oneofl Policy.all_pads
  and* opts = gen_topts
  and* n_code = int_range 1 2000 in
  let* raw = list_size (int_bound 60) (int_bound (n_code - 1)) in
  let oxs = List.sort_uniq compare raw in
  let* obs =
    flatten_l
      (List.map
         (fun ox -> map (fun kind -> { Witness.ox; kind }) gen_kind)
         oxs)
  in
  return
    (Cert.make ~arch ~module_digest ~code_fp ~protect_reads ~pad ~opts ~n_code
       (Array.of_list obs))

let cert_arbitrary = QCheck.make ~print:Cert.summary gen_cert

(* --- 1. codec: round trip + decoder totality --- *)

let qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"omni-cert/1: decode (encode c) = Ok c"
       cert_arbitrary (fun c ->
         match Cert.decode (Cert.encode c) with
         | Ok c' -> Cert.equal c c'
         | Error e ->
             QCheck.Test.fail_reportf "decode failed: %s"
               (Cert.decode_error_to_string e)))

(* Byte flips and truncations never crash the decoder, and never decode
   to a certificate different from the original (the trailing content
   digest catches tampering). *)
let qcheck_decode_total =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500
       ~name:"omni-cert/1: decode total + tamper-evident"
       (QCheck.make
          QCheck.Gen.(quad gen_cert (int_bound 10_000) (int_bound 7) bool))
       (fun (c, pos, bit, truncate) ->
         let enc = Cert.encode c in
         let n = String.length enc in
         let mutated =
           if truncate then String.sub enc 0 (pos mod (n + 1))
           else begin
             let b = Bytes.of_string enc in
             let p = pos mod n in
             Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor (1 lsl bit)));
             Bytes.to_string b
           end
         in
         match Cert.decode mutated with
         | Error _ -> true
         | Ok c' ->
             (* accepting tampered bytes is only sound if they still mean
                the same certificate (e.g. a flip undone by truncation
                can't happen — but equality is the honest criterion) *)
             Cert.equal c c'))

let qcheck_garbage_total =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"omni-cert/1: decode total on garbage"
       QCheck.(string_of_size (Gen.int_bound 300))
       (fun s ->
         match Cert.decode s with Ok _ -> true | Error _ -> true))

(* --- 2. certify -> check agreement, all archs x certifiable policies --- *)

let certify_then_check () =
  List.iter
    (fun arch ->
      List.iter
        (fun (pname, _) ->
          let s = setup arch pname in
          (* through the wire: encode, decode, then check *)
          let cert =
            match Cert.decode (Cert.encode s.s_cert) with
            | Ok c -> c
            | Error e ->
                Alcotest.failf "%s/%s: decode: %s" (Arch.name arch) pname
                  (Cert.decode_error_to_string e)
          in
          match check_with s cert with
          | Ok () -> ()
          | Error msg ->
              Alcotest.failf "%s/%s: checker refused honest witness: %s"
                (Arch.name arch) pname msg)
        policies)
    Arch.all

(* The binding layer: every way a certificate can speak about the wrong
   translation has a typed refusal. *)
let binding_refusals () =
  let s = setup Arch.Mips "sandbox" in
  let c = s.s_cert in
  let digest = Lazy.force subject_digest in
  let fp = Exec.fingerprint s.s_tr in
  let bind ?(c = c) ?(digest = digest) ?(arch = Arch.Mips) ?(mode = s.s_mode)
      ?(opts = s.s_opts) ?(fp = fp) () =
    Check.bind c ~module_digest:digest ~arch ~mode ~opts ~code_fp:fp
  in
  let expect what err r =
    if r <> Error err then Alcotest.failf "bind: expected %s refusal" what
  in
  (match bind () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest binding refused: %s" (Check.error_to_string e));
  expect "native-mode" Check.Not_sandbox
    (bind ~mode:(Machine.Native Machine.Cc) ());
  expect "guard-mode" Check.Not_sandbox
    (bind ~mode:(Machine.Mobile (Policy.make ~mode:Policy.Guard ())) ());
  expect "arch"
    (Check.Arch_mismatch { expected = Arch.Sparc; got = Arch.Mips })
    (bind ~arch:Arch.Sparc ());
  expect "module-digest" Check.Module_digest_mismatch
    (bind ~digest:(Int64.lognot digest) ());
  expect "code-fingerprint" Check.Code_fingerprint_mismatch
    (bind ~fp:(Int64.lognot fp) ());
  expect "opts" Check.Opts_mismatch
    (bind ~opts:{ s.s_opts with Machine.peephole = not s.s_opts.Machine.peephole } ());
  expect "policy-bit" Check.Opts_mismatch
    (bind ~mode:(Machine.Mobile (Policy.make ~protect_reads:true ())) ())

(* A certificate is bound to its padding mode: one minted under pad A
   must refuse to vouch for a run configured with pad B, in both
   directions, with the typed [Pad_mismatch] refusal. *)
let pad_cross_reuse_refused () =
  let digest = Lazy.force subject_digest in
  let pad_policies =
    [ (Policy.Pad_none, "sandbox"); (Policy.Pad_nop, "sandbox+padnop");
      (Policy.Pad_align, "sandbox+padalign");
      (Policy.Pad_guard8, "sandbox+guard8") ]
  in
  List.iter
    (fun arch ->
      List.iter
        (fun (cert_pad, cert_pname) ->
          List.iter
            (fun (run_pad, _) ->
              if cert_pad <> run_pad then begin
                let s = setup arch cert_pname in
                (* everything else matches: same translation, same opts —
                   only the requested pad differs *)
                let run_mode =
                  Machine.Mobile (Policy.make ~pad:run_pad ())
                in
                match
                  Check.bind s.s_cert ~module_digest:digest ~arch
                    ~mode:run_mode ~opts:s.s_opts
                    ~code_fp:(Exec.fingerprint s.s_tr)
                with
                | Error (Check.Pad_mismatch { expected; got })
                  when expected = run_pad && got = cert_pad ->
                    ()
                | Error e ->
                    Alcotest.failf "%s %s->%s: wrong refusal: %s"
                      (Arch.name arch) (Policy.pad_name cert_pad)
                      (Policy.pad_name run_pad) (Check.error_to_string e)
                | Ok () ->
                    Alcotest.failf "%s: pad=%s certificate reused for pad=%s"
                      (Arch.name arch) (Policy.pad_name cert_pad)
                      (Policy.pad_name run_pad)
              end)
            pad_policies)
        pad_policies)
    Arch.all

(* --- 3. mutation: no accepted-but-unsafe witness --- *)

(* Obligation kinds whose *removal* leaves a sound, checkable witness:
   they claim positive facts (a boxed register, a known scratch
   constant) that only license LATER obligations — dropping one merely
   makes the checker more conservative. Every other kind covers an
   instruction the checker would otherwise flag as unsafe, or is
   cross-checked against the translator's declared masking counts. *)
let benign_drop = function
  | Witness.Box_data | Witness.Box_code | Witness.Lui_const -> true
  | _ -> false

let drop_at a i =
  Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let dup_at a i =
  Array.init
    (Array.length a + 1)
    (fun j -> if j <= i then a.(j) else a.(j - 1))

let swap_adjacent a i =
  let b = Array.copy a in
  let t = b.(i) in
  b.(i) <- b.(i + 1);
  b.(i + 1) <- t;
  b

(* Swap two instructions of a translated program (in place on a copy):
   the generic code corruption. *)
let swap_code tr i j =
  match tr with
  | Exec.T_risc p ->
      let code = Array.copy p.R.code in
      let t = code.(i) in
      code.(i) <- code.(j);
      code.(j) <- t;
      Exec.T_risc { p with R.code }
  | Exec.T_x86 p ->
      let code = Array.copy p.X.code in
      let t = code.(i) in
      code.(i) <- code.(j);
      code.(j) <- t;
      Exec.T_x86 { p with X.code }

(* Check a certificate against (possibly corrupted) code, bypassing the
   fingerprint binding: the point is that the obligation scan itself —
   not just the content hash — refuses code that no longer discharges
   the claims. *)
let raw_check cert tr =
  match tr with
  | Exec.T_risc p -> Check.check_risc cert p
  | Exec.T_x86 p -> Check.check_x86 cert p

(* The full verifier must judge under the same displacement bound the
   policy grants (Pad_guard8 widens it), or honest guard-zone code would
   read as unsafe. *)
let full_verify ~pad tr =
  let max_disp = Policy.guard_zone_of_pad pad in
  match tr with
  | Exec.T_risc p -> (
      match Omni_targets.Risc_verify.verify ~max_disp p with
      | Ok () -> true
      | Error _ -> false)
  | Exec.T_x86 p -> (
      match Omni_targets.X86_verify.verify ~max_disp p with
      | Ok () -> true
      | Error _ -> false)

let pad_of_setup s =
  match s.s_mode with
  | Machine.Mobile p -> p.Policy.pad
  | Machine.Native _ -> Policy.Pad_none

type mutation =
  | M_bit_flip of int * int
  | M_drop of int
  | M_dup of int
  | M_reorder of int
  | M_digest_swap of bool (* false: module digest; true: code fingerprint *)
  | M_code_swap of int * int

let gen_mutation =
  let open QCheck.Gen in
  oneof
    [ map2 (fun p b -> M_bit_flip (p, b)) (int_bound 100_000) (int_bound 7);
      map (fun i -> M_drop i) (int_bound 100_000);
      map (fun i -> M_dup i) (int_bound 100_000);
      map (fun i -> M_reorder i) (int_bound 100_000);
      map (fun b -> M_digest_swap b) bool;
      map2 (fun i j -> M_code_swap (i, j)) (int_bound 100_000)
        (int_bound 100_000) ]

let mutation_case arch (pname, mut) =
  let s = setup arch pname in
  let cert = s.s_cert in
  let obs = cert.Cert.obs in
  let nobs = Array.length obs in
  let with_obs obs = { cert with Cert.obs } in
  match mut with
  | M_bit_flip (pos, bit) -> (
      (* a flipped encoded witness must never silently check out as
         something else *)
      let enc = Cert.encode cert in
      let b = Bytes.of_string enc in
      let p = pos mod Bytes.length b in
      Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor (1 lsl bit)));
      match Cert.decode (Bytes.to_string b) with
      | Error _ -> true
      | Ok c' -> Cert.equal c' cert || check_with s c' <> Ok ())
  | M_drop i ->
      nobs = 0
      ||
      let i = i mod nobs in
      let accepted = check_with s (with_obs (drop_at obs i)) = Ok () in
      (* an accepted drop weakens the witness but cannot license unsafe
         code (the code is unchanged); it is only possible for the
         positive-fact kinds *)
      (not accepted) || benign_drop obs.(i).Witness.kind
  | M_dup i ->
      nobs = 0
      ||
      let i = i mod nobs in
      check_with s (with_obs (dup_at obs i)) <> Ok ()
  | M_reorder i ->
      nobs < 2
      ||
      let i = i mod (nobs - 1) in
      check_with s (with_obs (swap_adjacent obs i)) <> Ok ()
  | M_digest_swap fp ->
      let c' =
        if fp then
          { cert with Cert.code_fp = Int64.lognot cert.Cert.code_fp }
        else
          { cert with
            Cert.module_digest = Int64.lognot cert.Cert.module_digest }
      in
      check_with s c' <> Ok ()
  | M_code_swap (i, j) -> (
      let n =
        match s.s_tr with
        | Exec.T_risc p -> Array.length p.R.code
        | Exec.T_x86 p -> Array.length p.X.code
      in
      let i = i mod n and j = j mod n in
      let tr' = swap_code s.s_tr i j in
      (* THE soundness property: if the checker accepts the witness
         against the corrupted code, the full verifier must too — zero
         accepted-but-unsafe outcomes *)
      match raw_check cert tr' with
      | Ok () -> full_verify ~pad:(pad_of_setup s) tr'
      | Error _ -> true)

let qcheck_mutations arch =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:600
       ~name:
         (Printf.sprintf "mutation: no accepted-but-unsafe witness (%s)"
            (Arch.name arch))
       (QCheck.make
          QCheck.Gen.(
            pair (oneofl (List.map fst policies)) gen_mutation))
       (fun case -> mutation_case arch case))

(* --- 4. exhaustive small-memory model of the masking algebra --- *)

(* The Mask/Box obligations attest exactly [(a land mask) lor base]
   address arithmetic. Over an exhaustive small model (every 16-bit
   address, stretched across the word by three strides, plus negatives
   and extremes), the result must land inside the segment — there is no
   input, however hostile, that masks outside the sandbox. Run per
   target family: the RISC targets sandbox via the reserved mask/base
   registers, x86 via inline immediates (its code mask additionally
   word-aligns the target). *)
let masking_model () =
  let check_addr a =
    let d = a land L.data_mask lor L.data_base in
    if not (L.in_data d) then
      Alcotest.failf "data masking escaped: 0x%x -> 0x%x" a d;
    let c = a land L.code_mask lor L.code_base in
    if not (L.in_code c) then
      Alcotest.failf "code masking escaped: 0x%x -> 0x%x" a c;
    (* the x86 immediate variant: also forces word alignment *)
    let xm = L.code_mask land lnot 3 in
    let xc = a land xm lor L.code_base in
    if not (L.in_code xc && xc land 3 = 0) then
      Alcotest.failf "x86 code masking escaped: 0x%x -> 0x%x" a xc
  in
  for a = 0 to 0xFFFF do
    check_addr a;
    check_addr (a lsl 8);
    check_addr (a lsl 16)
  done;
  List.iter check_addr
    [ -1; min_int; max_int; L.data_base - 1; L.data_base;
      L.data_base + L.data_mask; L.data_base + L.data_mask + 1;
      L.code_base; L.code_base + L.code_mask + 1 ];
  (* and the in-segment identity the translators rely on: sandboxing an
     already-sandboxed address is a no-op *)
  let p = Policy.make () in
  for off = 0 to 0xFFFF do
    let a = L.data_base + (off land L.data_mask) in
    if Policy.sandbox_data p a <> a then
      Alcotest.failf "data sandbox not idempotent at 0x%x" a
  done

(* --- 5. cache: poisoned entries are refused and counted --- *)

let cache_verify_fail () =
  let counters = Counters.create () in
  let cache = Cache.create counters in
  let digest = Lazy.force subject_digest in
  let mode = Machine.Mobile (Policy.make ()) in
  let opts = Api.mobile_opts Arch.Mips in
  let key = Cache.key ~digest ~arch:Arch.Mips ~mode ~opts in
  let exe = Lazy.force subject_exe in
  (* cold: certifying verification; warm: witness check *)
  ignore (Cache.find_or_translate cache key exe);
  ignore (Cache.find_or_translate cache key exe);
  let snap = Counters.snapshot counters in
  Alcotest.(check int) "cold full verification" 1 snap.Counters.s_verifications;
  Alcotest.(check int) "warm witness check" 1 snap.Counters.s_cert_checks;
  Alcotest.(check int) "no failures yet" 0 snap.Counters.s_verify_fail;
  (* corrupt the cached witness: claim a different module *)
  (match Cache.peek cache key with
  | Some e ->
      let poisoned =
        match e.Cache.cert with
        | Some c ->
            { c with Cert.module_digest = Int64.lognot c.Cert.module_digest }
        | None -> Alcotest.fail "verified entry carries no witness"
      in
      Cache.inject cache key { e with Cache.cert = Some poisoned }
  | None -> Alcotest.fail "no cached entry");
  (match Cache.find_or_translate cache key exe with
  | _ -> Alcotest.fail "poisoned entry admitted"
  | exception Cache.Rejected _ -> ());
  let snap = Counters.snapshot counters in
  Alcotest.(check int) "failure counted" 1 snap.Counters.s_verify_fail;
  (* and the counter is surfaced to operators *)
  let json = Counters.to_json snap in
  let has_field =
    let needle = "\"verify_fail\":1" in
    let ln = String.length needle and n = String.length json in
    let rec go i = i + ln <= n && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "verify_fail in counters JSON" true has_field

let () =
  Alcotest.run "cert"
    [ ("codec",
       [ qcheck_roundtrip; qcheck_decode_total; qcheck_garbage_total ]);
      ("agreement",
       [ Alcotest.test_case "certify -> check, all archs x policies" `Quick
           certify_then_check;
         Alcotest.test_case "binding refusals" `Quick binding_refusals;
         Alcotest.test_case "cross-pad reuse refused" `Quick
           pad_cross_reuse_refused ]);
      ("mutation", List.map qcheck_mutations Arch.all);
      ("model",
       [ Alcotest.test_case "exhaustive masking algebra" `Quick masking_model ]);
      ("cache",
       [ Alcotest.test_case "poisoned entry refused + counted" `Quick
           cache_verify_fail ]) ]
