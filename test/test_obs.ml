(* Observability layer: span tracer + metrics registry.

   Determinism comes from the injectable manual clock; the load-bearing
   property is the last one — installing a tracer must never change what a
   run computes (output, exit code, instruction and cycle counts), it may
   only describe it. *)

module Clock = Omni_util.Clock

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0
module Trace = Omni_obs.Trace
module Metrics = Omni_obs.Metrics
module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine

(* --- spans under a fake clock --- *)

let span_nesting () =
  let clk = Clock.manual () in
  let col = Trace.collector () in
  let t = Trace.make ~clock:clk (Trace.Collect col) in
  Trace.with_span t "run" (fun () ->
      Clock.advance clk 1.0;
      Trace.with_span t ~attrs:[ ("arch", "mips") ] "translate" (fun () ->
          Clock.advance clk 0.25);
      Trace.with_span t "verify" (fun () -> Clock.advance clk 0.125);
      Clock.advance clk 0.5);
  match Trace.collected col with
  | [ tr; ve; run ] ->
      (* completion order: children first *)
      Alcotest.(check string) "first completed" "translate" tr.Trace.name;
      Alcotest.(check string) "second completed" "verify" ve.Trace.name;
      Alcotest.(check string) "last completed" "run" run.Trace.name;
      (* ids are allocated in open order; parents/depths reflect nesting *)
      Alcotest.(check int) "root id" 1 run.Trace.id;
      Alcotest.(check int) "root parent" 0 run.Trace.parent;
      Alcotest.(check int) "root depth" 0 run.Trace.depth;
      Alcotest.(check int) "translate parent" 1 tr.Trace.parent;
      Alcotest.(check int) "translate depth" 1 tr.Trace.depth;
      Alcotest.(check int) "verify parent" 1 ve.Trace.parent;
      Alcotest.(check bool) "sibling ids ordered" true
        (ve.Trace.id > tr.Trace.id);
      (* fake-clock timings are exact *)
      Alcotest.(check (float 0.0)) "translate start" 1.0 tr.Trace.start_s;
      Alcotest.(check (float 0.0)) "translate dur" 0.25 tr.Trace.dur_s;
      Alcotest.(check (float 0.0)) "verify dur" 0.125 ve.Trace.dur_s;
      Alcotest.(check (float 0.0)) "root dur" 1.875 run.Trace.dur_s;
      Alcotest.(check
                  (list (pair string string)))
        "attrs kept" [ ("arch", "mips") ] tr.Trace.attrs
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let span_error_attr () =
  let clk = Clock.manual () in
  let col = Trace.collector () in
  let t = Trace.make ~clock:clk (Trace.Collect col) in
  (try
     Trace.with_span t "boom" (fun () -> failwith "translator bug")
   with Failure _ -> ());
  match Trace.collected col with
  | [ s ] ->
      Alcotest.(check bool) "error attr present" true
        (List.mem_assoc "error" s.Trace.attrs)
  | _ -> Alcotest.fail "span not closed on exception"

let end_without_begin () =
  let t = Trace.make (Trace.Collect (Trace.collector ())) in
  Alcotest.check_raises "unbalanced end"
    (Invalid_argument "Trace.end_span: no open span") (fun () ->
      Trace.end_span t)

let null_tracer_inert () =
  (* every probe on the null tracer is a no-op, including end_span *)
  Trace.end_span Trace.null;
  Trace.begin_span Trace.null "x";
  Trace.phase "y" (fun () -> ());
  Trace.count "c";
  Trace.observe "h" 1.0;
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.null)

let phase_histograms_fed () =
  let clk = Clock.manual () in
  let m = Metrics.create () in
  (* Null sink: spans are discarded but the registry still collects *)
  let t = Trace.make ~clock:clk ~metrics:m Trace.Null in
  Trace.with_current t (fun () ->
      Trace.phase "translate" (fun () -> Clock.advance clk 0.5);
      Trace.phase "translate" (fun () -> Clock.advance clk 0.25);
      Trace.phase "run" (fun () -> Clock.advance clk 2.0));
  let h = Metrics.histogram m "phase.translate" in
  Alcotest.(check int) "two translate samples" 2 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "summed" 0.75 (Metrics.histogram_sum h);
  let table = Metrics.render_phases (Metrics.snapshot m) in
  Alcotest.(check bool) "breakdown lists translate" true
    (contains ~affix:"translate" table)

(* --- histogram bucket boundaries --- *)

let bucket_boundaries () =
  (* powers of two sit at the bottom of their bucket: [2^k, 2^(k+1)) *)
  List.iter
    (fun k ->
      let v = Float.ldexp 1.0 k in
      let i = Metrics.bucket_index v in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "upper(2^%d)" k)
        (Float.ldexp 1.0 (k + 1))
        (Metrics.bucket_upper i);
      (* just below the boundary falls one bucket lower *)
      let below = v *. 0.999 in
      Alcotest.(check bool)
        (Printf.sprintf "below 2^%d in lower bucket" k)
        true
        (Metrics.bucket_index below < i))
    [ -20; -10; -1; 0; 1; 10; 20 ];
  (* non-positive and NaN land in the underflow bucket *)
  Alcotest.(check int) "zero" 0 (Metrics.bucket_index 0.0);
  Alcotest.(check int) "negative" 0 (Metrics.bucket_index (-3.0));
  Alcotest.(check int) "nan" 0 (Metrics.bucket_index Float.nan);
  (* every positive in-range value is inside its bucket *)
  List.iter
    (fun v ->
      let i = Metrics.bucket_index v in
      Alcotest.(check bool)
        (Printf.sprintf "%g < upper" v)
        true
        (v < Metrics.bucket_upper i);
      Alcotest.(check bool)
        (Printf.sprintf "%g >= lower" v)
        true
        (i = 0 || v >= Metrics.bucket_upper (i - 1)))
    [ 1e-9; 0.003; 0.5; 1.0; 1.5; 7.0; 1000.0 ]

let histogram_snapshot_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "t" in
  List.iter (Metrics.observe h) [ 0.3; 0.4; 1.5; 100.0 ];
  let s = Metrics.snapshot m in
  let hs = List.assoc "t" s.Metrics.histograms in
  Alcotest.(check int) "count" 4 hs.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "sum" 102.2 hs.Metrics.hs_sum;
  (* 0.3 and 0.4 share bucket [0.25, 0.5); 1.5 and 100.0 are alone *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets"
    [ (0.5, 2); (2.0, 1); (128.0, 1) ]
    hs.Metrics.hs_buckets

(* --- counters survive snapshot + reset --- *)

let counters_survive_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "service.hits" in
  let g = Metrics.gauge m "cache.size" in
  Metrics.incr ~by:3 c;
  Metrics.set g 7.0;
  let s1 = Metrics.snapshot m in
  Alcotest.(check int) "counted" 3 (List.assoc "service.hits" s1.Metrics.counters);
  Metrics.reset m;
  let s2 = Metrics.snapshot m in
  (* registration survives, reading is zeroed *)
  Alcotest.(check int) "zeroed" 0 (List.assoc "service.hits" s2.Metrics.counters);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0
    (List.assoc "cache.size" s2.Metrics.gauges);
  (* the old handle still works after reset *)
  Metrics.incr c;
  Alcotest.(check int) "handle alive" 1 (Metrics.value c);
  (* snapshots are immutable: s1 unchanged *)
  Alcotest.(check int) "snapshot immutable" 3
    (List.assoc "service.hits" s1.Metrics.counters)

let kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  match Metrics.histogram m "x" with
  | _ -> Alcotest.fail "same name, different kind admitted"
  | exception Invalid_argument _ -> ()

let json_escaping () =
  let s =
    { Trace.id = 1; parent = 0; depth = 0; name = "a\"b\\c"; attrs = [];
      start_s = 0.0; dur_s = 0.001 }
  in
  let line = Trace.json_line s in
  Alcotest.(check bool) "escaped" true
    (contains ~affix:{|"a\"b\\c"|} line)

(* --- qcheck: tracing is observationally inert --- *)

let gen_minic_program rng =
  let ri n = Random.State.int rng n in
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "int f(int n) { int s; int i; s = %d;\n\
    \  for (i = 0; i < n; i++) { s = s * %d + i; if (s > 100000) s = s - %d; }\n\
    \  return s; }\n"
    (ri 50) (2 + ri 5) (50_000 + ri 50_000);
  Printf.bprintf buf
    "int main(void) { print_int(f(%d)); putchar(10); return 0; }\n"
    (5 + ri 40);
  Buffer.contents buf

let trace_is_inert (seed : int) : bool =
  let rng = Random.State.make [| seed |] in
  let src = gen_minic_program rng in
  let arch = List.nth Arch.all (Random.State.int rng (List.length Arch.all)) in
  let sfi = Random.State.int rng 2 = 0 in
  let exe = Api.compile_exe ~name:"rand" src in
  let fuel = 50_000_000 in
  let plain =
    {
      Api.default_request with
      engine = Api.Target arch;
      sfi;
      fuel = Some fuel;
    }
  in
  let untraced = Api.run plain (Api.Exe exe) in
  let col = Trace.collector () in
  let m = Metrics.create () in
  let tracer = Trace.make ~metrics:m (Trace.Collect col) in
  let traced = Api.run { plain with trace = Some tracer } (Api.Exe exe) in
  let spans = Trace.collected col in
  String.equal traced.Api.output untraced.Api.output
  && traced.Api.exit_code = untraced.Api.exit_code
  && traced.Api.instructions = untraced.Api.instructions
  && traced.Api.cycles = untraced.Api.cycles
  && traced.Api.outcome = untraced.Api.outcome
  (* and the trace actually described the pipeline *)
  && List.exists (fun s -> s.Trace.name = "translate") spans
  && List.exists (fun s -> s.Trace.name = "run") spans
  && List.exists (fun s -> s.Trace.name = "load") spans
  && Trace.current () == Trace.null

let qcheck_inert =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20
       ~name:"tracing never changes a run's result"
       QCheck.(make ~print:string_of_int Gen.int)
       trace_is_inert)

let () =
  Alcotest.run "obs"
    [ ("spans",
       [ Alcotest.test_case "nesting and ordering" `Quick span_nesting;
         Alcotest.test_case "error attr on exception" `Quick span_error_attr;
         Alcotest.test_case "unbalanced end raises" `Quick end_without_begin;
         Alcotest.test_case "null tracer is inert" `Quick null_tracer_inert;
         Alcotest.test_case "phase histograms fed" `Quick phase_histograms_fed;
         Alcotest.test_case "json escaping" `Quick json_escaping ]);
      ("metrics",
       [ Alcotest.test_case "bucket boundaries" `Quick bucket_boundaries;
         Alcotest.test_case "snapshot buckets" `Quick histogram_snapshot_buckets;
         Alcotest.test_case "counters survive reset" `Quick
           counters_survive_reset;
         Alcotest.test_case "kind mismatch rejected" `Quick
           kind_mismatch_rejected ]);
      ("identity", [ qcheck_inert ]) ]
