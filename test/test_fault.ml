(* The resilience layer: fault injection, retry policy, admission limits.

   Load-bearing properties:

   - the fault matrix: for every single-fault plan — each kind, each
     direction, frame and byte sites — a retrying loopback client's run
     result is bit-identical to the in-process Api.run path, on all four
     target architectures with SFI on. An injected fault is never a
     hang, a crash, or a silently wrong answer;
   - the retry policy is exact (qcheck'd): it never sleeps past its
     deadline, its gaps follow the backoff schedule to the float, it
     never exceeds max_attempts, and terminal errors are never retried;
   - admission limits answer typed E_limit_exceeded refusals — terminal
     for the retry policy — and are counted under net.limit.rejected;
   - a dead daemon degrades to in-process execution under
     `Fallback_local, counted under net.fallback;
   - a server survives 1,000 seeded faulty requests with the fault,
     retry, and request counters accounting for all of them. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Exec = Omni_service.Exec
module Service = Omni_service.Service
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace
module Clock = Omni_util.Clock
module Frame = Omni_net.Frame
module Msg = Omni_net.Message
module Transport = Omni_net.Transport
module Server = Omni_net.Server
module Client = Omni_net.Client
module Fault = Omni_net.Fault
module Retry = Omni_net.Retry

let fuel = 50_000_000

let hello_src =
  {| int g = 7;
     int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
     int main(void) {
       int i;
       for (i = 0; i < 5; i++) { print_int(f(i + 5) + g); putchar(32); }
       putchar(10);
       return 0; } |}

let hello_bytes = lazy (Api.compile ~name:"hello" hello_src)

let check_same_result what (a : Exec.run_result) (b : Exec.run_result) =
  Alcotest.(check string) (what ^ ": output") a.Exec.output b.Exec.output;
  Alcotest.(check int) (what ^ ": exit code") a.Exec.exit_code b.Exec.exit_code;
  Alcotest.(check int) (what ^ ": instructions") a.Exec.instructions
    b.Exec.instructions;
  Alcotest.(check bool)
    (what ^ ": outcome + stats")
    true
    (a.Exec.outcome = b.Exec.outcome && a.Exec.stats = b.Exec.stats)

(* --- the fault matrix --- *)

let archs = [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

let local_results =
  lazy
    (List.map
       (fun arch ->
         ( arch,
           Api.run
             { Api.default_request with
               engine = Exec.Target arch;
               fuel = Some fuel }
             (Api.Wire (Lazy.force hello_bytes)) ))
       archs)

(* Every kind x direction, at frame starts, skewed into headers and
   payloads, and at absolute byte offsets. Send frames (client->server):
   0 = Submit, 1.. = Run. Recv frames (server->client): 0 = Submitted,
   1.. = Ran. Skews poke at specific header fields: 0 = magic, 4 =
   version, 7 = length, >= 18 = payload (checksummed). *)
let matrix_plans =
  [ ("send/drop@f0", Fault.fault Fault.Drop Fault.Send (Fault.Frame 0));
    ("send/corrupt@f0.magic",
     Fault.fault ~skew:0 Fault.Corrupt Fault.Send (Fault.Frame 0));
    ("send/corrupt@f0.version",
     Fault.fault ~skew:4 Fault.Corrupt Fault.Send (Fault.Frame 0));
    ("send/corrupt@f1.payload",
     Fault.fault ~skew:24 Fault.Corrupt Fault.Send (Fault.Frame 1));
    ("send/truncate@f0",
     Fault.fault ~skew:10 Fault.Truncate Fault.Send (Fault.Frame 0));
    ("send/truncate@f1",
     Fault.fault ~skew:5 Fault.Truncate Fault.Send (Fault.Frame 1));
    ("send/stall@f0", Fault.fault Fault.Stall Fault.Send (Fault.Frame 0));
    ("send/stall@f2", Fault.fault Fault.Stall Fault.Send (Fault.Frame 2));
    ("send/close@f1", Fault.fault Fault.Close Fault.Send (Fault.Frame 1));
    ("send/drop@b40", Fault.fault Fault.Drop Fault.Send (Fault.Byte 40));
    ("recv/drop@f0", Fault.fault Fault.Drop Fault.Recv (Fault.Frame 0));
    ("recv/corrupt@f0.payload",
     Fault.fault ~skew:20 Fault.Corrupt Fault.Recv (Fault.Frame 0));
    ("recv/corrupt@f1.length",
     Fault.fault ~skew:7 Fault.Corrupt Fault.Recv (Fault.Frame 1));
    ("recv/truncate@f0",
     Fault.fault ~skew:12 Fault.Truncate Fault.Recv (Fault.Frame 0));
    ("recv/stall@f1", Fault.fault Fault.Stall Fault.Recv (Fault.Frame 1));
    ("recv/close@f0", Fault.fault Fault.Close Fault.Recv (Fault.Frame 0));
    ("recv/corrupt@b2", Fault.fault Fault.Corrupt Fault.Recv (Fault.Byte 2)) ]

let fault_matrix () =
  let bytes = Lazy.force hello_bytes in
  let locals = Lazy.force local_results in
  List.iter
    (fun (what, plan) ->
      let svc = Service.create () in
      let server = Server.create svc in
      let armed = Fault.arm ~metrics:(Service.metrics svc) plan in
      let retry = { Retry.default with Retry.max_attempts = 6 } in
      let client =
        Client.loopback ~retry ~env:(Retry.manual_env ()) ~fault:armed server
      in
      let h = Client.submit client bytes in
      List.iter
        (fun (arch, local) ->
          let remote = Client.run ~engine:(Exec.Target arch) ~sfi:true ~fuel client h in
          check_same_result
            (Printf.sprintf "%s/%s" what (Arch.name arch))
            local remote)
        locals;
      Alcotest.(check int) (what ^ ": fired exactly once") 1
        (Fault.injected armed);
      (* the server is still serving after the storm *)
      Client.ping client)
    matrix_plans

(* A seeded probabilistic plan at a punishing rate: every call still
   either succeeds bit-identically or fails with a typed error. *)
let fault_seeded_matrix () =
  let bytes = Lazy.force hello_bytes in
  let locals = Lazy.force local_results in
  List.iter
    (fun seed ->
      let svc = Service.create () in
      let server = Server.create svc in
      let armed =
        Fault.arm ~metrics:(Service.metrics svc)
          (Fault.seeded ~seed ~rate:0.2 ())
      in
      let retry = { Retry.default with Retry.max_attempts = 12 } in
      let client =
        Client.loopback ~retry ~env:(Retry.manual_env ()) ~fault:armed server
      in
      let h = Client.submit client bytes in
      List.iter
        (fun (arch, local) ->
          let remote = Client.run ~engine:(Exec.Target arch) ~sfi:true ~fuel client h in
          check_same_result
            (Printf.sprintf "seed=%d/%s" seed (Arch.name arch))
            local remote)
        locals)
    [ 1; 7; 42 ]

(* --- retry policy properties (qcheck) --- *)

exception Boom

let retryable_only = function Boom -> Retry.Retryable | _ -> Retry.Terminal

let gen_policy =
  let open QCheck.Gen in
  let* max_attempts = int_range 1 8
  and* base_ms = int_range 0 100
  and* backoff_c = int_range 100 300
  and* jitter_c = int_range 0 50
  and* deadline_ms = int_range 0 500 in
  return
    {
      Retry.max_attempts;
      base_delay_s = float_of_int base_ms /. 1000.;
      backoff = float_of_int backoff_c /. 100.;
      jitter = float_of_int jitter_c /. 100.;
      deadline_s = float_of_int deadline_ms /. 1000.;
    }

let qcheck_deadline =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"retry: never sleeps past the deadline"
       (QCheck.make gen_policy)
       (fun policy ->
         let env = Retry.manual_env () in
         let start = Clock.now env.Retry.clock in
         (match Retry.run ~env ~classify:retryable_only policy (fun ~attempt:_ -> raise Boom) with
         | () -> false
         | exception Boom ->
             Clock.now env.Retry.clock -. start <= policy.Retry.deadline_s)))

let qcheck_schedule =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"retry: gaps follow the backoff schedule exactly"
       (QCheck.make gen_policy)
       (fun policy ->
         (* jitter off, deadline off: the schedule is the closed form *)
         let policy =
           { policy with Retry.jitter = 0.; deadline_s = infinity }
         in
         let clock = Clock.manual () in
         let sleeps = ref [] in
         let env =
           { Retry.clock;
             sleep =
               (fun s ->
                 sleeps := s :: !sleeps;
                 Clock.advance clock s);
             rand = (fun () -> 0.5) }
         in
         let calls = ref 0 in
         (match Retry.run ~env ~classify:retryable_only policy (fun ~attempt ->
              incr calls;
              Alcotest.(check int) "attempt numbering" !calls attempt;
              raise Boom) with
         | () -> false
         | exception Boom ->
             let expected =
               List.init (policy.Retry.max_attempts - 1) (fun i ->
                   policy.Retry.base_delay_s
                   *. (policy.Retry.backoff ** float_of_int i))
             in
             !calls = policy.Retry.max_attempts
             && List.rev !sleeps = expected)))

let qcheck_terminal_stops =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"retry: terminal errors are never retried"
       (QCheck.make gen_policy)
       (fun policy ->
         let calls = ref 0 in
         match
           Retry.run
             ~env:(Retry.manual_env ())
             ~classify:(fun _ -> Retry.Terminal)
             policy
             (fun ~attempt:_ ->
               incr calls;
               raise Boom)
         with
         | () -> false
         | exception Boom -> !calls = 1))

let retry_unit () =
  (* succeeds on attempt 3 of 5: two sleeps, then the value *)
  let env = Retry.manual_env () in
  let calls = ref 0 in
  let v =
    Retry.run ~env ~classify:retryable_only
      { Retry.default with Retry.max_attempts = 5 }
      (fun ~attempt ->
        incr calls;
        if attempt < 3 then raise Boom else attempt * 10)
  in
  Alcotest.(check int) "value through" 30 v;
  Alcotest.(check int) "three calls" 3 !calls;
  (* on_retry observes each scheduled retry *)
  let seen = ref [] in
  (match
     Retry.run ~env
       ~on_retry:(fun ~attempt ~delay_s:_ _ -> seen := attempt :: !seen)
       ~classify:retryable_only
       { Retry.default with Retry.max_attempts = 3 }
       (fun ~attempt:_ -> raise Boom)
   with
  | () -> Alcotest.fail "always-failing op returned"
  | exception Boom -> ());
  Alcotest.(check (list int)) "retries observed" [ 2; 1 ] !seen;
  (* max_attempts < 1 is a caller bug *)
  match
    Retry.run ~classify:retryable_only
      { Retry.default with Retry.max_attempts = 0 }
      (fun ~attempt:_ -> ())
  with
  | () -> Alcotest.fail "accepted max_attempts = 0"
  | exception Invalid_argument _ -> ()

let classification () =
  let check what want e =
    Alcotest.(check bool) what true (Client.classify e = want)
  in
  check "connection lost -> retryable" Retry.Retryable
    (Client.Connection_lost "x");
  check "timeout -> retryable" Retry.Retryable Transport.Timeout;
  check "bad frame -> retryable" Retry.Retryable
    (Client.Remote_error (Msg.E_bad_frame, "x"));
  check "econnreset -> retryable" Retry.Retryable
    (Unix.Unix_error (Unix.ECONNRESET, "read", ""));
  check "decode -> terminal" Retry.Terminal
    (Client.Remote_error (Msg.E_decode, "x"));
  check "verifier -> terminal" Retry.Terminal
    (Client.Remote_error (Msg.E_verifier_rejected, "x"));
  check "limit -> terminal" Retry.Terminal
    (Client.Remote_error (Msg.E_limit_exceeded, "x"));
  check "protocol -> terminal" Retry.Terminal (Client.Protocol_error "x");
  check "random exn -> terminal" Retry.Terminal Boom

(* --- admission limits --- *)

let limit_counter svc =
  Metrics.value (Metrics.counter (Service.metrics svc) "net.limit.rejected")

let limits_module_bytes () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create () in
  let server =
    Server.create
      ~config:{ Server.default_config with Server.max_module_bytes = 16 }
      svc
  in
  let client = Client.loopback server in
  (match Client.submit client bytes with
  | _ -> Alcotest.fail "oversized module admitted"
  | exception Client.Remote_error (Msg.E_limit_exceeded, _) -> ());
  Alcotest.(check int) "limit rejection counted" 1 (limit_counter svc);
  (* the refusal is terminal: a retrying client does not spin on it *)
  let armed_client =
    Client.loopback
      ~retry:{ Retry.default with Retry.max_attempts = 5 }
      ~env:(Retry.manual_env ()) server
  in
  (match Client.submit armed_client bytes with
  | _ -> Alcotest.fail "oversized module admitted under retry"
  | exception Client.Remote_error (Msg.E_limit_exceeded, _) -> ());
  Alcotest.(check int) "no retry on a limit refusal" 2 (limit_counter svc);
  Client.ping client

let limits_fuel () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create () in
  let server =
    Server.create
      ~config:{ Server.default_config with Server.max_fuel = 10 }
      svc
  in
  let client = Client.loopback server in
  let h = Client.submit client bytes in
  (* an explicit ask above the ceiling is refused *)
  (match Client.run ~fuel:1_000_000 client h with
  | _ -> Alcotest.fail "over-ceiling fuel admitted"
  | exception Client.Remote_error (Msg.E_limit_exceeded, _) -> ());
  (* an unfueled request is clamped to the ceiling: it runs out *)
  let r = Client.run client h in
  Alcotest.(check bool) "clamped run exhausts fuel" true
    (r.Exec.outcome = Machine.Out_of_fuel);
  (* an explicit ask below the ceiling is honored *)
  let r = Client.run ~fuel:5 client h in
  Alcotest.(check bool) "small explicit fuel admitted" true
    (r.Exec.outcome = Machine.Out_of_fuel)

let limits_per_conn () =
  let svc = Service.create () in
  let server =
    Server.create
      ~config:{ Server.default_config with Server.max_requests_per_conn = 2 }
      svc
  in
  (* without retry: the third request on the connection is refused *)
  let client = Client.loopback server in
  Client.ping client;
  Client.ping client;
  (match Client.ping client with
  | () -> Alcotest.fail "request cap not enforced"
  | exception Client.Remote_error (Msg.E_limit_exceeded, _) -> ());
  (* a fresh dial gets a fresh session *)
  let client2 = Client.loopback server in
  Client.ping client2;
  (* byte cap: one big submit blows it *)
  let svc2 = Service.create () in
  let server2 =
    Server.create
      ~config:{ Server.default_config with Server.max_conn_bytes = 64 }
      svc2
  in
  let client3 = Client.loopback server2 in
  (match Client.submit client3 (Lazy.force hello_bytes) with
  | _ -> Alcotest.fail "byte cap not enforced"
  | exception Client.Remote_error (Msg.E_limit_exceeded, _) -> ());
  Alcotest.(check int) "byte-cap rejection counted" 1 (limit_counter svc2)

(* --- fallback to local execution --- *)

let fallback_local () =
  let bytes = Lazy.force hello_bytes in
  (* a client whose wire is dead on arrival, with a retry policy that
     fails fast under a manual clock *)
  let dead_client () =
    let a, b = Transport.pair ~name:"dead" () in
    Transport.close b;
    Client.of_conn
      ~retry:{ Retry.default with Retry.max_attempts = 2 }
      ~env:(Retry.manual_env ()) a
  in
  (* default `Fail: the transport failure surfaces *)
  (match
     Api.run
       { Api.default_request with
         fuel = Some fuel;
         remote = Some (dead_client ()) }
       (Api.Wire bytes)
   with
  | _ -> Alcotest.fail "dead daemon answered"
  | exception Client.Connection_lost _ -> ());
  (* `Fallback_local: same result as a plain local run, and counted *)
  let reg = Metrics.create () in
  let tracer = Trace.make ~metrics:reg Trace.Null in
  let local =
    Api.run { Api.default_request with fuel = Some fuel } (Api.Wire bytes)
  in
  let degraded =
    Api.run
      { Api.default_request with
        fuel = Some fuel;
        remote = Some (dead_client ());
        on_unreachable = `Fallback_local;
        trace = Some tracer }
      (Api.Wire bytes)
  in
  check_same_result "fallback = local" local degraded;
  Alcotest.(check int) "net.fallback counted" 1
    (Metrics.value (Metrics.counter reg "net.fallback"))

(* --- survival: 1,000 seeded faulty requests --- *)

let survival_1000 () =
  let bytes = Lazy.force hello_bytes in
  let svc = Service.create () in
  let reg = Service.metrics svc in
  let tracer = Trace.make ~metrics:reg Trace.Null in
  let server = Server.create ~tracer svc in
  let armed =
    Fault.arm ~metrics:reg (Fault.seeded ~seed:42 ~rate:0.05 ())
  in
  let client =
    Client.loopback
      ~retry:{ Retry.default with Retry.max_attempts = 8 }
      ~env:(Retry.manual_env ()) ~fault:armed server
  in
  let requests = 1000 in
  Trace.with_current tracer (fun () ->
      let h = Client.submit client bytes in
      for i = 1 to requests - 1 do
        if i mod 100 = 0 then
          (* sprinkle real executions among the pings *)
          let r = Client.run ~fuel client h in
          Alcotest.(check int) "run exits 0" 0 r.Exec.exit_code
        else Client.ping client
      done);
  let injected = Fault.injected armed in
  let counter name = Metrics.value (Metrics.counter reg name) in
  (* at rate 0.05 over >= 2000 frames the plan must have fired often *)
  Alcotest.(check bool) "faults actually injected" true (injected >= 20);
  Alcotest.(check int) "injected faults are counted" injected
    (counter "net.fault.injected");
  (* every damaged attempt is retried; one attempt can absorb at most
     the faults of its own request and response *)
  let retries = counter "net.retry" in
  Alcotest.(check bool) "retries happened" true (retries > 0);
  Alcotest.(check bool) "retries <= injected faults" true
    (retries <= injected);
  (* the server answered every surviving attempt: at least one handled
     request per client call, plus the retried duplicates *)
  Alcotest.(check bool) "server handled every request" true
    (counter "net.requests" >= requests);
  Alcotest.(check bool) "server accounted the duplicates" true
    (counter "net.requests" <= requests + retries + injected);
  (* and it is still alive *)
  Client.ping client

let () =
  Alcotest.run "fault"
    [ ("matrix",
       [ Alcotest.test_case "single-fault plans x archs" `Quick fault_matrix;
         Alcotest.test_case "seeded plans x archs" `Quick fault_seeded_matrix ]);
      ("retry",
       [ qcheck_deadline; qcheck_schedule; qcheck_terminal_stops;
         Alcotest.test_case "unit" `Quick retry_unit;
         Alcotest.test_case "classification" `Quick classification ]);
      ("limits",
       [ Alcotest.test_case "module bytes" `Quick limits_module_bytes;
         Alcotest.test_case "fuel ceiling" `Quick limits_fuel;
         Alcotest.test_case "per-connection caps" `Quick limits_per_conn ]);
      ("degrade", [ Alcotest.test_case "fallback local" `Quick fallback_local ]);
      ("survival",
       [ Alcotest.test_case "1000 seeded faulty requests" `Quick survival_1000 ]) ]
