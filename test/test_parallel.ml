(* The concurrency contract of the serving stack.

   Load-bearing properties:

   - one [Service.t] shared by several domains answers bit-identically
     to a serial run of the same schedule, and its counters add up
     EXACTLY afterwards — every cold miss is one translation of one
     distinct configuration, everything else hits (the per-shard lock is
     held across translate-and-admit, so racing cold misses cannot
     double-translate);
   - the content-addressed store deduplicates concurrent submits of the
     same bytes down to one module;
   - [Workq] is a bounded FIFO whose [try_push] refuses instead of
     blocking, and whose [close] wakes blocked consumers;
   - a full accept queue sheds connections with a typed [E_overloaded]
     response — sent before any request work, counted under
     [net.overloaded], and classified retryable by the client. *)

module Api = Omniware.Api
module Arch = Omni_targets.Arch
module Exec = Omni_service.Exec
module Service = Omni_service.Service
module Counters = Omni_service.Counters
module Frame = Omni_net.Frame
module Msg = Omni_net.Message
module Transport = Omni_net.Transport
module Server = Omni_net.Server
module Client = Omni_net.Client
module Workq = Omni_net.Workq
module Retry = Omni_net.Retry
module Metrics = Omni_obs.Metrics
module Lcg = Omni_util.Lcg

let fuel = 50_000_000

let hello_src =
  {| int g = 7;
     int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
     int main(void) {
       int i;
       for (i = 0; i < 5; i++) { print_int(f(i + 5) + g); putchar(32); }
       putchar(10);
       return 0; } |}

let loop_src =
  {| int main(void) {
       int i; int s = 0;
       for (i = 0; i < 300; i++) s = s + i * 5;
       print_int(s); putchar(10); return 0; } |}

let hello_bytes = lazy (Api.compile ~name:"hello" hello_src)
let loop_bytes = lazy (Api.compile ~name:"loop" loop_src)
let domains = 4

(* --- workq --- *)

let workq_fifo_bounded () =
  let q = Workq.create ~depth:2 () in
  Alcotest.(check int) "depth" 2 (Workq.depth q);
  Alcotest.(check bool) "push 1" true (Workq.try_push q 1);
  Alcotest.(check bool) "push 2" true (Workq.try_push q 2);
  Alcotest.(check bool) "push 3 refused at depth" false (Workq.try_push q 3);
  Alcotest.(check int) "length" 2 (Workq.length q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Workq.pop q);
  Alcotest.(check bool) "slot freed" true (Workq.try_push q 3);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Workq.pop q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Workq.pop q);
  Alcotest.(check (option int)) "empty" None (Workq.try_pop q)

let workq_close () =
  let q = Workq.create ~depth:4 () in
  Alcotest.(check bool) "push" true (Workq.try_push q 7);
  Workq.close q;
  Alcotest.(check bool) "closed" true (Workq.closed q);
  Alcotest.(check bool) "push after close" false (Workq.try_push q 8);
  Alcotest.(check (option int)) "pop abandons after close" None (Workq.pop q);
  Alcotest.(check (option int)) "try_pop drains" (Some 7) (Workq.try_pop q);
  Alcotest.(check (option int)) "drained" None (Workq.try_pop q);
  Workq.close q (* idempotent *)

let workq_close_wakes_blocked_pop () =
  let q : int Workq.t = Workq.create ~depth:4 () in
  let consumer = Domain.spawn (fun () -> Workq.pop q) in
  (* the consumer blocks on the empty queue; close must wake it *)
  Unix.sleepf 0.05;
  Workq.close q;
  Alcotest.(check (option int)) "woken with None" None (Domain.join consumer)

(* --- the overloaded error class --- *)

let overloaded_roundtrip () =
  Alcotest.(check int) "code 9" 9 (Msg.err_class_code Msg.E_overloaded);
  Alcotest.(check string) "name" "overloaded"
    (Msg.err_class_name Msg.E_overloaded);
  let fr = Msg.encode_resp (Msg.Error (Msg.E_overloaded, "busy")) in
  match Msg.decode_resp fr with
  | Ok (Msg.Error (Msg.E_overloaded, "busy")) -> ()
  | _ -> Alcotest.fail "E_overloaded did not survive the codec"

let overloaded_is_retryable () =
  let verdict = function Retry.Retryable -> "retryable" | _ -> "terminal" in
  Alcotest.(check string) "overloaded retryable" "retryable"
    (verdict (Client.classify (Client.Remote_error (Msg.E_overloaded, "q"))));
  Alcotest.(check string) "internal terminal" "terminal"
    (verdict (Client.classify (Client.Remote_error (Msg.E_internal, "x"))))

(* --- service hammer: N domains, one service, exact counters --- *)

(* A seeded schedule over (module, arch, sfi). Interp is excluded on
   purpose: with every run translated, the cache arithmetic below is
   exact — misses = distinct configurations, everything else hits. *)
let schedule n =
  let rng = Lcg.create 77 in
  Array.init n (fun _ ->
      ( Lcg.int rng 2,
        List.nth [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ] (Lcg.int rng 4),
        Lcg.int rng 4 > 0 ))

let distinct_configs sched =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace tbl c ()) sched;
  Hashtbl.length tbl

let run_schedule svc handles sched i =
  let m, arch, sfi = sched.(i) in
  Service.instantiate ~engine:(Exec.Target arch) ~sfi ~fuel svc handles.(m)

let check_same i (a : Exec.run_result) (b : Exec.run_result) =
  if
    a.Exec.output <> b.Exec.output
    || a.Exec.exit_code <> b.Exec.exit_code
    || a.Exec.instructions <> b.Exec.instructions
    || a.Exec.cycles <> b.Exec.cycles
  then Alcotest.failf "request %d diverged from the serial reference" i

let hammer_service () =
  let n = 48 in
  let sched = schedule n in
  let bytes = [| Lazy.force hello_bytes; Lazy.force loop_bytes |] in
  (* serial reference on its own service *)
  let ref_svc = Service.create () in
  let ref_handles = Array.map (Service.submit ref_svc) bytes in
  let reference = Array.init n (run_schedule ref_svc ref_handles sched) in
  (* the shared service, hammered by [domains] domains on a stride *)
  let svc = Service.create () in
  let handles = Array.map (Service.submit svc) bytes in
  let results = Array.make n None in
  let worker d () =
    let i = ref d in
    while !i < n do
      results.(!i) <- Some (run_schedule svc handles sched !i);
      i := !i + domains
    done
  in
  List.init domains (fun d -> Domain.spawn (worker d))
  |> List.iter Domain.join;
  Array.iteri
    (fun i r ->
      match r with
      | Some r -> check_same i reference.(i) r
      | None -> Alcotest.failf "request %d never ran" i)
    results;
  let configs = distinct_configs sched in
  let c = Service.stats svc in
  Alcotest.(check int) "misses = distinct configs" configs
    c.Counters.s_misses;
  Alcotest.(check int) "translations = misses" configs
    c.Counters.s_translations;
  Alcotest.(check int) "every other admission hit" (n - configs)
    c.Counters.s_hits;
  Alcotest.(check int) "instantiations = requests" n
    c.Counters.s_instantiations;
  Alcotest.(check int) "no admission failures" 0 c.Counters.s_verify_fail

let store_concurrent_dedup () =
  let svc = Service.create () in
  let bytes = Lazy.force hello_bytes in
  let per_domain = 4 in
  let submitter () =
    for _ = 1 to per_domain do
      ignore (Service.submit svc bytes)
    done
  in
  List.init domains (fun _ -> Domain.spawn submitter)
  |> List.iter Domain.join;
  let c = Service.stats svc in
  Alcotest.(check int) "one module" 1 c.Counters.s_modules;
  Alcotest.(check int) "all submits counted" (domains * per_domain)
    c.Counters.s_submits;
  Alcotest.(check int) "rest deduplicated" ((domains * per_domain) - 1)
    c.Counters.s_dedup_hits;
  Alcotest.(check int) "bytes stored once" (String.length bytes)
    c.Counters.s_bytes_stored

(* --- predecode cache hammer: fast-engine runs share one program --- *)

(* [domains] domains repeatedly run the same two digests on the fast
   engine. The predecode counters must be EXACT: one miss per distinct
   digest (the shard lock is held across compile, so racing first runs
   cannot double-compile), a hit for every other run — and all runs agree
   with a serial interp reference byte-for-byte. *)
let hammer_predecode () =
  let bytes = [| Lazy.force hello_bytes; Lazy.force loop_bytes |] in
  let per_domain = 6 in
  let svc = Service.create () in
  let handles = Array.map (Service.submit svc) bytes in
  let expected =
    Array.map
      (fun h ->
        (Service.instantiate ~engine:Exec.Interp ~sfi:true ~fuel svc h)
          .Exec.output)
      handles
  in
  let worker d () =
    for i = 0 to per_domain - 1 do
      let m = (d + i) mod 2 in
      let r =
        Service.instantiate ~engine:Exec.Fast ~sfi:true ~fuel svc handles.(m)
      in
      if r.Exec.output <> expected.(m) then
        Alcotest.fail "fast run diverged from interp reference"
    done
  in
  List.init domains (fun d -> Domain.spawn (worker d))
  |> List.iter Domain.join;
  let n = domains * per_domain in
  let c = Service.stats svc in
  Alcotest.(check int) "misses = distinct digests" 2
    c.Counters.s_predecode_misses;
  Alcotest.(check int) "every other run hit" (n - 2)
    c.Counters.s_predecode_hits

(* --- persistent store hammer: 4 domains, mid-run reopen --- *)

(* The same exact-counter discipline as [hammer_service], but over a
   journaled store with a service restart in the middle: phase 1 hammers
   a persistent service (runs racing re-submits on the same shards),
   then the service closes and a second one recovers from the same
   simulated disk and serves phase 2. Every response must match the
   serial non-persistent reference bit for bit, the recovered
   translations must serve warm (witness re-checks, zero re-translations
   of phase-1 configurations), and the persist.* counters must add up
   EXACTLY: appends = modules + distinct certified configurations, and
   the restore path journals nothing. *)
let hammer_persistent_store () =
  let n = 48 in
  let rng = Lcg.create 99 in
  (* sfi stays on so every translation carries a witness and the append
     arithmetic below is exact (uncertified entries are never persisted) *)
  let sched =
    Array.init n (fun _ ->
        ( Lcg.int rng 2,
          List.nth [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]
            (Lcg.int rng 4) ))
  in
  let bytes = [| Lazy.force hello_bytes; Lazy.force loop_bytes |] in
  let half = n / 2 in
  let distinct lo hi =
    let tbl = Hashtbl.create 16 in
    for i = lo to hi - 1 do
      Hashtbl.replace tbl sched.(i) ()
    done;
    tbl
  in
  let d1 = distinct 0 half in
  let fresh2 =
    let tbl = Hashtbl.create 16 in
    for i = half to n - 1 do
      if not (Hashtbl.mem d1 sched.(i)) then Hashtbl.replace tbl sched.(i) ()
    done;
    tbl
  in
  let run svc handles i =
    let m, arch = sched.(i) in
    Service.instantiate ~engine:(Exec.Target arch) ~sfi:true ~fuel svc
      handles.(m)
  in
  (* serial reference on a non-persistent service *)
  let ref_svc = Service.create () in
  let ref_handles = Array.map (Service.submit ref_svc) bytes in
  let reference = Array.init n (run ref_svc ref_handles) in
  let io = Omni_persist.Io.sim () in
  let persisted =
    { Service.default_config with Service.persist = Some io }
  in
  let results = Array.make n None in
  let hammer svc handles lo hi =
    let worker d () =
      let i = ref (lo + d) in
      while !i < hi do
        (* racing re-submits share shards with the runs; dedup keeps
           them off the journal *)
        ignore (Service.submit svc bytes.(fst sched.(!i)));
        results.(!i) <- Some (run svc handles !i);
        i := !i + domains
      done
    in
    List.init domains (fun d -> Domain.spawn (worker d))
    |> List.iter Domain.join
  in
  let svc1 = Service.of_config persisted in
  let handles1 = Array.map (Service.submit svc1) bytes in
  hammer svc1 handles1 0 half;
  let c1 = Service.stats svc1 in
  Alcotest.(check int) "phase 1 journaled modules + distinct configs"
    (2 + Hashtbl.length d1)
    c1.Counters.s_persist_append;
  Service.close svc1;
  (* mid-run reopen over the same disk *)
  let svc2 = Service.of_config persisted in
  let handles2 = Array.map (Service.submit svc2) bytes in
  hammer svc2 handles2 half n;
  Array.iteri
    (fun i r ->
      match r with
      | Some r -> check_same i reference.(i) r
      | None -> Alcotest.failf "request %d never ran" i)
    results;
  let c2 = Service.stats svc2 in
  Alcotest.(check int) "replayed all of phase 1"
    (2 + Hashtbl.length d1)
    c2.Counters.s_persist_replay;
  Alcotest.(check int) "recovered all of phase 1"
    (2 + Hashtbl.length d1)
    c2.Counters.s_persist_recovered;
  Alcotest.(check int) "quarantined nothing" 0
    c2.Counters.s_persist_quarantined;
  Alcotest.(check int) "tore nothing" 0 c2.Counters.s_persist_torn;
  Alcotest.(check int) "phase 2 journaled only unseen configs"
    (Hashtbl.length fresh2)
    c2.Counters.s_persist_append;
  Alcotest.(check int) "phase 2 translated only unseen configs"
    (Hashtbl.length fresh2)
    c2.Counters.s_translations;
  Alcotest.(check int) "no full-verify fallback on recovered entries" 0
    c2.Counters.s_cert_full_verify;
  Alcotest.(check int) "every warm hit re-checked its witness"
    (n - half - Hashtbl.length fresh2)
    c2.Counters.s_cert_checks

(* --- server dispatch hammer: handle_request from several domains --- *)

let hammer_server_dispatch () =
  let svc = Service.create () in
  let server = Server.create svc in
  let handle =
    match Server.handle_request server (Msg.Submit (Lazy.force hello_bytes)) with
    | Msg.Submitted d -> d
    | _ -> Alcotest.fail "submit refused"
  in
  let run arch =
    Server.handle_request server
      (Msg.Run
         {
           Msg.rs_handle = handle;
           rs_engine = Exec.Target arch;
           rs_sfi = true;
           rs_mode = Msg.M_default;
           rs_fuel = Some fuel;
           rs_deadline_s = None;
           rs_want_cert = false;
         })
  in
  let expected =
    match run Arch.X86 with
    | Msg.Ran (r, _) -> r.Exec.output
    | _ -> Alcotest.fail "reference run refused"
  in
  let worker () =
    for i = 0 to 23 do
      let arch = if i mod 2 = 0 then Arch.X86 else Arch.Mips in
      match run arch with
      | Msg.Ran (r, _) ->
          if r.Exec.output <> expected then
            Alcotest.fail "concurrent dispatch diverged"
      | _ -> Alcotest.fail "concurrent run refused"
    done
  in
  List.init 2 (fun _ -> Domain.spawn worker) |> List.iter Domain.join

(* --- backpressure: a full queue sheds with a typed refusal --- *)

let read_error_resp conn =
  match Frame.read (Transport.recv conn) with
  | Error e -> Alcotest.failf "no response frame: %s" (Frame.error_to_string e)
  | Ok fr -> (
      match Msg.decode_resp fr with
      | Ok (Msg.Error (cls, msg)) -> (cls, msg)
      | Ok _ -> Alcotest.fail "expected an Error response"
      | Error msg -> Alcotest.failf "undecodable response: %s" msg)

let backpressure_sheds_typed () =
  let reg = Metrics.create () in
  let svc = Service.create ~metrics:reg () in
  let config =
    { Server.default_config with pool_size = 2; queue_depth = 2 }
  in
  let server = Server.create ~config svc in
  (* no pool_start: the queue stays full, deterministically *)
  let pool = Server.pool_create server in
  let offer () =
    let client_end, server_end = Transport.pair ~name:"bp" () in
    (client_end, Server.pool_offer pool server_end)
  in
  let _, v1 = offer () in
  let _, v2 = offer () in
  let shed_client, v3 = offer () in
  Alcotest.(check bool) "first queued" true (v1 = `Queued);
  Alcotest.(check bool) "second queued" true (v2 = `Queued);
  Alcotest.(check bool) "third shed" true (v3 = `Shed);
  let cls, msg = read_error_resp shed_client in
  Alcotest.(check string) "typed refusal" "overloaded"
    (Msg.err_class_name cls);
  Alcotest.(check bool) "says the queue is full" true
    (String.length msg > 0);
  Alcotest.(check int) "counted under net.overloaded" 1
    (Metrics.value (Metrics.counter reg "net.overloaded"));
  (* stopping an unstarted pool disposes of the queued connections *)
  Server.pool_stop pool;
  let _, v4 = offer () in
  Alcotest.(check bool) "closed pool sheds" true (v4 = `Shed)

let () =
  Alcotest.run "parallel"
    [ ("workq",
       [ Alcotest.test_case "bounded fifo" `Quick workq_fifo_bounded;
         Alcotest.test_case "close semantics" `Quick workq_close;
         Alcotest.test_case "close wakes blocked pop" `Quick
           workq_close_wakes_blocked_pop ]);
      ("overloaded",
       [ Alcotest.test_case "codec roundtrip + code" `Quick
           overloaded_roundtrip;
         Alcotest.test_case "retry classification" `Quick
           overloaded_is_retryable ]);
      ("hammer",
       [ Alcotest.test_case "shared service, 4 domains" `Quick hammer_service;
         Alcotest.test_case "concurrent store dedup" `Quick
           store_concurrent_dedup;
         Alcotest.test_case "predecode cache, 4 domains" `Quick
           hammer_predecode;
         Alcotest.test_case "persistent store, 4 domains + reopen" `Quick
           hammer_persistent_store;
         Alcotest.test_case "server dispatch, 2 domains" `Quick
           hammer_server_dispatch ]);
      ("backpressure",
       [ Alcotest.test_case "full queue sheds typed" `Quick
           backpressure_sheds_typed ]) ]
