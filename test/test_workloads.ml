(* Workload integration tests: each SPEC92-analogue program must produce
   identical output on the oracle, the OmniVM interpreter, and all four
   target simulators, with and without SFI. This is the end-to-end
   integrity check behind every number in the benchmark tables. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine
module W = Omni_workloads.Workloads

let engines = [ "interp"; "mips"; "sparc"; "ppc"; "x86" ]

let check_workload (w : W.t) () =
  let tp = Minic.Driver.typed_program_with_stdlib w.W.source in
  let expected =
    match Minic.Oracle.run ~fuel:500_000_000 tp with
    | Minic.Oracle.Exited 0, out -> out
    | Minic.Oracle.Failed m, _ -> Alcotest.failf "oracle failed: %s" m
    | _ -> Alcotest.fail "oracle did not exit 0"
  in
  Alcotest.(check bool) "produces output" true (String.length expected > 0);
  let exe = Minic.Driver.compile_exe ~name:w.W.name w.W.source in
  List.iter
    (fun engine ->
      List.iter
        (fun sfi ->
          let e = Result.get_ok (Api.engine_of_string engine) in
          if not (e = Api.Interp && not sfi) then begin
            let r = Api.run_exe ~engine:e ~sfi ~fuel:1_000_000_000 exe in
            (match r.Api.outcome with
            | Machine.Exited 0 -> ()
            | Machine.Exited c -> Alcotest.failf "%s exited %d" engine c
            | Machine.Faulted f ->
                Alcotest.failf "%s faulted: %s" engine (Omnivm.Fault.to_string f)
            | Machine.Out_of_fuel -> Alcotest.failf "%s out of fuel" engine);
            Alcotest.(check string)
              (Printf.sprintf "%s sfi=%b" engine sfi)
              expected r.Api.output
          end)
        [ true; false ])
    engines

(* guard mode (the virtual exception model's check-and-trap variant) is
   transparent to honest code: identical output, and no guard ever fires *)
let guard_mode_transparent (w : W.t) () =
  let exe = Minic.Driver.compile_exe ~name:w.W.name w.W.source in
  let expected =
    let r = Api.run_exe ~engine:Api.Interp ~fuel:1_000_000_000 exe in
    r.Api.output
  in
  List.iter
    (fun arch ->
      let mode =
        Machine.Mobile (Omni_sfi.Policy.make ~mode:Omni_sfi.Policy.Guard ())
      in
      let img = Api.load exe in
      let tr = Api.translate ~mode ~opts:(Api.mobile_opts arch) arch exe in
      let r = Api.run_translated ~fuel:1_000_000_000 tr img in
      (match r.Api.outcome with
      | Machine.Exited 0 -> ()
      | Machine.Faulted f ->
          Alcotest.failf "%s guard fired on honest code: %s"
            (Omni_targets.Arch.name arch) (Omnivm.Fault.to_string f)
      | _ -> Alcotest.fail "guard run failed");
      Alcotest.(check string)
        (Omni_targets.Arch.name arch ^ " guard output")
        expected r.Api.output)
    Omni_targets.Arch.all

(* the wire format round-trips complete workloads *)
let wire_roundtrip (w : W.t) () =
  let exe = Minic.Driver.compile_exe ~name:w.W.name w.W.source in
  let exe' = Omnivm.Wire.decode (Omnivm.Wire.encode exe) in
  Alcotest.(check int) "text" (Array.length exe.Omnivm.Exe.text)
    (Array.length exe'.Omnivm.Exe.text);
  let r = Api.run_exe ~engine:Api.Interp ~fuel:1_000_000_000 exe' in
  match r.Api.outcome with
  | Machine.Exited 0 -> ()
  | _ -> Alcotest.fail "decoded module failed to run"

(* characteristic instruction mixes: alvinn is FP-heavy, compress is
   load/store heavy, eqntott branch heavy -- these shapes drive the paper's
   per-benchmark effects, so pin them down *)
let instruction_mixes () =
  let stats (w : W.t) =
    let exe = Minic.Driver.compile_exe ~name:w.W.name w.W.source in
    let r =
      Api.run_exe ~engine:(Api.Target Omni_targets.Arch.Mips)
        ~fuel:1_000_000_000 exe
    in
    Option.get r.Api.stats
  in
  let s_alvinn = stats (W.alvinn ~size:W.Test) in
  let s_compress = stats (W.compress ~size:W.Test) in
  let s_eqntott = stats (W.eqntott ~size:W.Test) in
  let frac part whole = float_of_int part /. float_of_int whole in
  (* compress touches memory a lot *)
  Alcotest.(check bool) "compress load+store fraction > 20%" true
    (frac (s_compress.Machine.loads + s_compress.Machine.stores)
       s_compress.Machine.instructions
    > 0.20);
  (* eqntott branches a lot *)
  Alcotest.(check bool) "eqntott branch fraction > 6%" true
    (frac s_eqntott.Machine.branches s_eqntott.Machine.instructions > 0.06);
  (* alvinn performs more cycles/instr than compress on mips (fp latency) *)
  Alcotest.(check bool) "alvinn cpi > 1" true
    (frac s_alvinn.Machine.cycles s_alvinn.Machine.instructions > 1.0)

let () =
  let ws = W.all ~size:W.Test in
  Alcotest.run "workloads"
    [ ("differential",
       List.map
         (fun (w : W.t) ->
           Alcotest.test_case w.W.name `Slow (check_workload w))
         ws);
      ("guard",
       List.map
         (fun (w : W.t) ->
           Alcotest.test_case w.W.name `Slow (guard_mode_transparent w))
         ws);
      ("wire",
       List.map
         (fun (w : W.t) ->
           Alcotest.test_case w.W.name `Quick (wire_roundtrip w))
         ws);
      ("mixes", [ Alcotest.test_case "instruction mixes" `Slow instruction_mixes ])
    ]
