(* Software fault isolation tests: the security core of the system.

   We hand-write adversarial OmniVM modules that attempt to corrupt host
   memory or hijack control flow, and check that:
   - WITHOUT SFI, the attacks succeed on the simulated hardware (the
     threat is real),
   - with sandboxing, every attack is contained (host memory untouched,
     jumps confined to the code segment),
   - with guard mode, attacks raise the OmniVM access-violation exception,
   - the static verifier accepts sandboxed translations and rejects
     unprotected ones. *)

module Api = Omniware.Api
module Machine = Omni_targets.Machine
module Arch = Omni_targets.Arch
module L = Omnivm.Layout

let target_archs = [ Arch.Mips; Arch.Sparc; Arch.Ppc; Arch.X86 ]

let compile_asm src =
  Omni_asm.Link.link [ Omni_asm.Parse.assemble ~name:"evil" src ]

(* Run a module against a given SFI mode; returns (outcome, host_region,
   output). The canary byte pattern 0xAB is planted in host memory. *)
let run_with_mode arch exe mode =
  let img = Api.load ~map_host_region:true exe in
  (match img.Omni_runtime.Loader.host_region with
  | Some r -> Bytes.fill r.Omnivm.Memory.bytes 0 64 '\xAB'
  | None -> assert false);
  let tr = Api.translate ~mode ~opts:(Api.mobile_opts arch) arch exe in
  let r = Api.run_translated ~fuel:10_000_000 tr img in
  let host_bytes =
    match img.Omni_runtime.Loader.host_region with
    | Some reg -> Bytes.sub reg.Omnivm.Memory.bytes 0 64
    | None -> assert false
  in
  (r.Api.outcome, host_bytes, r.Api.output)

let intact b = Bytes.for_all (fun c -> c = '\xAB') b

let sandbox = Machine.Mobile (Omni_sfi.Policy.make ())
let guard = Machine.Mobile (Omni_sfi.Policy.make ~mode:Omni_sfi.Policy.Guard ())
let off = Machine.Mobile Omni_sfi.Policy.off

(* attack 1: direct wild store into host memory *)
let wild_store_src =
  Printf.sprintf
    {|
        .text
        .globl main
main:   li r2, %d          ; host region base
        li r3, 0x5A5A5A5A
        sw r3, 0(r2)
        sw r3, 16(r2)
        li r1, 0
        hcall 0
|}
    L.host_base

let wild_store_contained () =
  let exe = compile_asm wild_store_src in
  List.iter
    (fun arch ->
      let name s = Printf.sprintf "%s/%s" (Arch.name arch) s in
      (* without SFI the attack corrupts host memory *)
      let o, host, _ = run_with_mode arch exe off in
      (match o with
      | Machine.Exited 0 -> ()
      | _ -> Alcotest.failf "%s: unexpected outcome" (name "off"));
      Alcotest.(check bool) (name "no-sfi corrupts host") false (intact host);
      (* sandboxing forces the store into the data segment *)
      let o, host, _ = run_with_mode arch exe sandbox in
      (match o with
      | Machine.Exited 0 -> ()
      | Machine.Faulted f ->
          Alcotest.failf "%s: fault %s" (name "sandbox") (Omnivm.Fault.to_string f)
      | _ -> Alcotest.failf "%s: unexpected outcome" (name "sandbox"));
      Alcotest.(check bool) (name "sandbox protects host") true (intact host);
      (* guard mode turns the attack into an access violation *)
      let o, host, _ = run_with_mode arch exe guard in
      (match o with
      | Machine.Faulted (Omnivm.Fault.Access_violation { access = Omnivm.Fault.Write; _ }) -> ()
      | _ -> Alcotest.failf "%s: expected write violation" (name "guard"));
      Alcotest.(check bool) (name "guard protects host") true (intact host))
    target_archs

(* attack 2: compute the address to defeat static inspection *)
let computed_store_src =
  Printf.sprintf
    {|
        .text
        .globl main
main:   li r2, %d
        li r3, 16
        li r4, 4
        mul r3, r3, r4     ; 64
        add r2, r2, r3     ; host_base + 64... minus 64
        subi r2, r2, 64
        li r3, 0x5A5A5A5A
        sw r3, 0(r2)
        li r1, 0
        hcall 0
|}
    L.host_base

let computed_store_contained () =
  let exe = compile_asm computed_store_src in
  List.iter
    (fun arch ->
      let o, host, _ = run_with_mode arch exe sandbox in
      (match o with
      | Machine.Exited 0 -> ()
      | _ -> Alcotest.fail "sandbox run failed");
      Alcotest.(check bool)
        (Arch.name arch ^ " computed store contained")
        true (intact host))
    target_archs

(* attack 3: corrupt the stack pointer, then store through it *)
let sp_attack_src =
  Printf.sprintf
    {|
        .text
        .globl main
main:   li r14, %d         ; point sp at host memory
        li r3, 0x5A5A5A5A
        sw r3, 0(r14)      ; "safe" sp-relative store
        li r1, 0
        hcall 0
|}
    L.host_base

let sp_attack_contained () =
  let exe = compile_asm sp_attack_src in
  List.iter
    (fun arch ->
      (* unprotected: sp really does point at host memory *)
      let o, host, _ = run_with_mode arch exe off in
      (match o with Machine.Exited 0 -> () | _ -> Alcotest.fail "off run");
      Alcotest.(check bool)
        (Arch.name arch ^ " sp attack works without sfi")
        false (intact host);
      (* sandboxed: setting sp re-sandboxes it into the data segment *)
      let o, host, _ = run_with_mode arch exe sandbox in
      (match o with Machine.Exited 0 -> () | _ -> Alcotest.fail "sandbox run");
      Alcotest.(check bool)
        (Arch.name arch ^ " sp attack contained")
        true (intact host))
    target_archs

(* attack 4: indirect jump out of the code segment *)
let wild_jump_src =
  Printf.sprintf
    {|
        .text
        .globl main
main:   li r2, %d          ; data segment address
        jr r2
        li r1, 0
        hcall 0
|}
    (L.data_base + 0x100)

let wild_jump_contained () =
  let exe = compile_asm wild_jump_src in
  List.iter
    (fun arch ->
      let o, _, _ = run_with_mode arch exe sandbox in
      (* the masked target lands inside the code segment; it is not a valid
         instruction boundary, so the module faults -- control never
         escapes to data or host memory *)
      match o with
      | Machine.Faulted
          (Omnivm.Fault.Access_violation { access = Omnivm.Fault.Execute; addr }) ->
          Alcotest.(check bool)
            (Arch.name arch ^ " jump target forced into code segment")
            true
            (addr land lnot L.code_mask = L.code_base)
      | Machine.Exited _ | Machine.Faulted _ | Machine.Out_of_fuel ->
          Alcotest.failf "%s: expected execute violation" (Arch.name arch))
    target_archs

(* attack 5: jump to a valid code address that is NOT a function entry /
   branch target (bypassing call discipline) still cannot escape *)
let misaligned_jump_src =
  Printf.sprintf
    {|
        .text
        .globl main
main:   li r2, %d          ; mid-instruction address: not a valid entry
        jr r2
        li r1, 0
        hcall 0
|}
    (L.code_base + 6)

let misaligned_jump_faults () =
  let exe = compile_asm misaligned_jump_src in
  List.iter
    (fun arch ->
      let o, _, _ = run_with_mode arch exe sandbox in
      match o with
      | Machine.Faulted (Omnivm.Fault.Access_violation { access = Omnivm.Fault.Execute; _ }) ->
          ()
      | _ -> Alcotest.failf "%s: expected execute violation" (Arch.name arch))
    target_archs

(* guard mode delivers the access violation to a module handler: the
   virtual exception model end-to-end on translated code *)
let guard_handler_src =
  Printf.sprintf
    {|
        .text
        .globl main
handler:
        hcall 2            ; print fault code (1 = access violation)
        li r1, 10
        hcall 1
        li r1, 0
        hcall 0
main:
        li r1, handler
        hcall 7            ; set_handler
        li r2, %d
        li r3, 1
        sw r3, 0(r2)       ; wild store -> guard traps -> handler
        li r1, 99
        hcall 2
        li r1, 1
        hcall 0
|}
    L.host_base

let guard_handler_delivery () =
  let exe = compile_asm guard_handler_src in
  List.iter
    (fun arch ->
      let o, host, out = run_with_mode arch exe guard in
      (match o with
      | Machine.Exited 0 -> ()
      | _ -> Alcotest.failf "%s: handler did not run" (Arch.name arch));
      Alcotest.(check string) (Arch.name arch ^ " handler output") "1\n" out;
      Alcotest.(check bool) (Arch.name arch ^ " host intact") true (intact host))
    target_archs

(* read protection: a module trying to READ host memory sees its own
   segment's bytes instead of the secret (confidentiality, not just
   integrity). Honest code is unaffected. *)
let secret_read_src =
  Printf.sprintf
    {|
        .text
        .globl main
main:   li r2, %d          ; host region: holds a secret
        lw r1, 0(r2)
        hcall 2            ; print what we read
        li r1, 10
        hcall 1
        li r1, 0
        hcall 0
|}
    L.host_base

let read_protection () =
  let exe = compile_asm secret_read_src in
  let secret = 0x5EC2E700 in
  let run mode =
    let img = Api.load ~map_host_region:true exe in
    (match img.Omni_runtime.Loader.host_region with
    | Some r ->
        Bytes.set r.Omnivm.Memory.bytes 0 (Char.chr (secret land 0xFF));
        Bytes.set r.Omnivm.Memory.bytes 1 (Char.chr ((secret lsr 8) land 0xFF));
        Bytes.set r.Omnivm.Memory.bytes 2 (Char.chr ((secret lsr 16) land 0xFF));
        Bytes.set r.Omnivm.Memory.bytes 3 (Char.chr ((secret lsr 24) land 0xFF))
    | None -> assert false);
    let tr = Api.translate ~mode ~opts:(Api.mobile_opts Arch.Mips) Arch.Mips exe in
    let r = Api.run_translated ~fuel:1_000_000 tr img in
    r.Api.output
  in
  (* write-only SFI (the paper's configuration): the read leaks the secret *)
  let leaked = run sandbox in
  Alcotest.(check string) "write-only sfi leaks reads"
    (Printf.sprintf "%d\n" secret) leaked;
  (* with read protection the load is forced into the module's own segment *)
  let protected_ =
    run (Machine.Mobile (Omni_sfi.Policy.make ~protect_reads:true ()))
  in
  Alcotest.(check bool) "read protection hides the secret" true
    (protected_ <> leaked);
  (* and in guard mode the read faults instead *)
  let exe2 = compile_asm secret_read_src in
  let img = Api.load ~map_host_region:true exe2 in
  let tr =
    Api.translate
      ~mode:(Machine.Mobile
               (Omni_sfi.Policy.make ~mode:Omni_sfi.Policy.Guard
                  ~protect_reads:true ()))
      ~opts:(Api.mobile_opts Arch.Mips) Arch.Mips exe2
  in
  let r = Api.run_translated ~fuel:1_000_000 tr img in
  match r.Api.outcome with
  | Machine.Faulted (Omnivm.Fault.Access_violation _) -> ()
  | _ -> Alcotest.fail "guarded read did not fault"

let read_protection_transparent () =
  (* honest compiled code produces identical output with read checks on *)
  let w = Omni_workloads.Workloads.compress ~size:Omni_workloads.Workloads.Test in
  let exe = Minic.Driver.compile_exe ~name:"c" w.Omni_workloads.Workloads.source in
  let expected = (Api.run_exe ~engine:Api.Interp ~fuel:1_000_000_000 exe).Api.output in
  List.iter
    (fun arch ->
      let img = Api.load exe in
      let tr =
        Api.translate
          ~mode:(Machine.Mobile (Omni_sfi.Policy.make ~protect_reads:true ()))
          ~opts:(Api.mobile_opts arch) arch exe
      in
      let r = Api.run_translated ~fuel:1_000_000_000 tr img in
      Alcotest.(check string)
        (Arch.name arch ^ " read-protected output")
        expected r.Api.output)
    target_archs

(* compiled MiniC under SFI behaves identically (sanity that sandboxing is
   transparent for honest modules) -- covered further in test_minic_exec *)

(* --- property: random store addresses never escape the data segment --- *)

let random_stores_contained =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random wild stores contained"
       QCheck.(pair (pair int int) small_int)
       (fun ((addr_raw, value), arch_pick) ->
         let addr = addr_raw land 0xFFFFFFFF in
         let arch = List.nth target_archs (arch_pick mod 4) in
         let src =
           Printf.sprintf
             {|
        .text
        .globl main
main:   li r2, %d
        li r3, %d
        sw r3, 0(r2)
        sb r3, 1(r2)
        li r1, 0
        hcall 0
|}
             (Omni_util.Word32.of_int addr)
             (Omni_util.Word32.of_int value)
         in
         let exe = compile_asm src in
         let o, host, _ = run_with_mode arch exe sandbox in
         let img2 = Api.load ~map_host_region:true exe in
         (match img2.Omni_runtime.Loader.host_region with
         | Some r -> Bytes.fill r.Omnivm.Memory.bytes 0 64 '\xAB'
         | None -> ());
         let tr2 =
           Api.translate ~mode:sandbox
             ~opts:{ (Api.mobile_opts arch) with
                     Omni_targets.Machine.sfi_opt = true }
             arch exe
         in
         let r2 = Api.run_translated ~fuel:10_000_000 tr2 img2 in
         let host2 =
           match img2.Omni_runtime.Loader.host_region with
           | Some reg -> Bytes.sub reg.Omnivm.Memory.bytes 0 64
           | None -> assert false
         in
         ignore r2;
         (match o with
         | Machine.Exited 0 -> true
         | Machine.Exited _ -> false
         | Machine.Faulted _ -> false (* sandboxed stores cannot fault *)
         | Machine.Out_of_fuel -> false)
         && intact host && intact host2))

(* --- static verifier --- *)

let verifier_accepts_sandboxed () =
  let w = Omni_workloads.Workloads.compress ~size:Omni_workloads.Workloads.Test in
  let exe = Minic.Driver.compile_exe ~name:"c" w.Omni_workloads.Workloads.source in
  List.iter
    (fun arch ->
      let fail_at index reason =
        Alcotest.failf "%s: verifier rejected sandboxed code at %d: %s"
          (Arch.name arch) index reason
      in
      match Api.translate ~mode:sandbox ~opts:(Api.mobile_opts arch) arch exe with
      | Api.T_risc p -> (
          match Omni_targets.Risc_verify.verify p with
          | Ok () -> ()
          | Error { Omni_sfi.Verifier.index; reason } -> fail_at index reason)
      | Api.T_x86 p -> (
          match Omni_targets.X86_verify.verify p with
          | Ok () -> ()
          | Error { Omni_sfi.Verifier.index; reason } -> fail_at index reason))
    target_archs

let verifier_rejects_unprotected () =
  let exe = compile_asm wild_store_src in
  List.iter
    (fun arch ->
      let accepted () =
        Alcotest.failf "%s: verifier accepted unprotected store"
          (Arch.name arch)
      in
      match Api.translate ~mode:off ~opts:(Api.mobile_opts arch) arch exe with
      | Api.T_risc p -> (
          match Omni_targets.Risc_verify.verify p with
          | Ok () -> accepted ()
          | Error _ -> ())
      | Api.T_x86 p -> (
          match Omni_targets.X86_verify.verify p with
          | Ok () -> accepted ()
          | Error _ -> ()))
    target_archs

let verifier_unit () =
  let module V = Omni_sfi.Verifier in
  (* minimal event streams *)
  Alcotest.(check bool) "ok stream" true
    (V.verify
       [| V.Sandbox_data_mask; V.Sandbox_data_box;
          V.Store_via_dedicated { disp = 0 }; V.Jump_via_dedicated |]
     = Ok ());
  (match V.verify [| V.Store_unsafe "sw" |] with
  | Error { index = 0; _ } -> ()
  | _ -> Alcotest.fail "unsafe store accepted");
  (match V.verify [| V.Dedicated_clobber "li" |] with
  | Error _ -> ()
  | _ -> Alcotest.fail "clobber accepted");
  (match V.verify [| V.Store_via_dedicated { disp = 100000 } |] with
  | Error _ -> ()
  | _ -> Alcotest.fail "big disp accepted");
  match V.verify [| V.Sp_clobber "li sp" |] with
  | Error _ -> ()
  | _ -> Alcotest.fail "sp clobber accepted"

(* policy unit tests *)
let policy_unit () =
  let p = Omni_sfi.Policy.make () in
  Alcotest.(check bool) "sandboxed in data" true
    (Omni_sfi.Policy.in_data p (Omni_sfi.Policy.sandbox_data p 0x40000010));
  Alcotest.(check int) "identity inside" (L.data_base + 4)
    (Omni_sfi.Policy.sandbox_data p (L.data_base + 4));
  Alcotest.(check bool) "code sandbox" true
    (Omni_sfi.Policy.in_code p (Omni_sfi.Policy.sandbox_code p 0x99999999))

let () =
  Alcotest.run "sfi"
    [ ("containment",
       [ Alcotest.test_case "wild store" `Quick wild_store_contained;
         Alcotest.test_case "computed store" `Quick computed_store_contained;
         Alcotest.test_case "sp corruption" `Quick sp_attack_contained;
         Alcotest.test_case "wild jump" `Quick wild_jump_contained;
         Alcotest.test_case "misaligned jump" `Quick misaligned_jump_faults;
         Alcotest.test_case "guard handler" `Quick guard_handler_delivery;
         Alcotest.test_case "read protection" `Quick read_protection;
         Alcotest.test_case "read protection transparent" `Slow
           read_protection_transparent;
         random_stores_contained ]);
      ("verifier",
       [ Alcotest.test_case "unit" `Quick verifier_unit;
         Alcotest.test_case "accepts sandboxed" `Quick verifier_accepts_sandboxed;
         Alcotest.test_case "rejects unprotected" `Quick verifier_rejects_unprotected ]);
      ("policy", [ Alcotest.test_case "unit" `Quick policy_unit ])
    ]
