(** The [omni-cert/1] witness format: a translation-safety certificate.

    A certificate carries the per-instruction safety obligations that a
    certifying verification produced ({!Omni_sfi.Verifier.certify}),
    bound to one specific translation by (module digest × architecture ×
    SFI policy × translator options × sandbox layout × code fingerprint).
    Hosts re-establish safety of cached or shipped code by the cheap
    linear check in {!Check} instead of a full re-verification.

    The binary encoding is versioned and self-delimiting with a trailing
    content digest; {!decode} is total on arbitrary bytes. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Witness = Omni_sfi.Witness

val format_name : string
(** ["omni-cert/1"]. *)

type t = {
  arch : Arch.t;
  module_digest : Omni_util.Fnv64.t;  (** digest of the module bytes *)
  code_fp : Omni_util.Fnv64.t;  (** fingerprint of the translated code *)
  protect_reads : bool;  (** SFI policy bit the witness depends on *)
  pad : Omni_sfi.Policy.pad;
      (** masking-sequence layout variant (determines the displacement
          bound the obligations were checked against); flags bits 6–7 *)
  opts : Machine.topts;  (** translator options used *)
  data_base : int;  (** sandbox layout facts the obligations reference *)
  data_mask : int;
  code_base : int;
  code_mask : int;
  n_code : int;  (** number of native instructions covered *)
  obs : Witness.obligation array;  (** strictly increasing by [ox] *)
}

val make :
  arch:Arch.t ->
  module_digest:Omni_util.Fnv64.t ->
  code_fp:Omni_util.Fnv64.t ->
  protect_reads:bool ->
  pad:Omni_sfi.Policy.pad ->
  opts:Machine.topts ->
  n_code:int ->
  Witness.obligation array ->
  t
(** Build a certificate for the ambient {!Omnivm.Layout} sandbox. *)

val equal : t -> t -> bool

val encode : t -> string

type decode_error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_arch of int
  | Bad_kind of int
  | Bad_order  (** obligation indices not strictly increasing *)
  | Bad_index  (** obligation index outside the code array *)
  | Oversized  (** a varint field exceeds any plausible value *)
  | Trailing_garbage
  | Bad_self_digest

val decode_error_to_string : decode_error -> string

val decode : string -> (t, decode_error) result
(** Total on arbitrary bytes: never raises. [decode (encode c)] returns
    [Ok c] (the codec round-trips). *)

val summary : t -> string
(** One-line human-readable description (for [omnirun --cert]). *)
