(* The witness checker: the small, independent half of proof-carrying
   translation.

   [check_risc] / [check_x86] validate a certificate against translated
   code in ONE linear pass. The discipline that keeps the checker honest:

   - Obligations are payload-free claims; every fact is re-read from the
     instruction at the claimed index, so a witness cannot assert
     anything the code does not exhibit.
   - Instructions not covered by an obligation must pass a shallow
     harmless test: anything that stores, branches indirectly, or writes
     the stack pointer demands an obligation; uncovered writes merely
     dirty the checker's register state (conservative, never permissive).
   - The checker mirrors the full verifier's conservative control-flow
     joins (state killed at control, after the delay slot on delay-slot
     architectures) via kill barriers: each state value remembers where
     it was established, each control transfer schedules a kill point,
     and a read is live only if no kill point separates it from its
     establishment — so it accepts no path the verifier would question.
   - The translator's declared masking counts are cross-checked against
     the witness, so a witness that omits masking claims — or a producer
     that drifts from the translators — is caught structurally.

   Soundness invariant: [check_* cert p = Ok ()] implies the full
   verifier accepts [p]. The checker is cheaper because it replays
   *decisions* (one comparison chain per instruction) instead of
   re-deriving them: no event array, no attribute/def-use lists, no
   string formatting — no allocation at all on the accept path.

   Unlike the verifier, nothing here is generic over a target adapter:
   deliberately small, independent code is the trusted base. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Witness = Omni_sfi.Witness
module Policy = Omni_sfi.Policy
module Fnv64 = Omni_util.Fnv64
module L = Omnivm.Layout
module R = Omni_targets.Risc
module X = Omni_targets.X86
module VI = Omnivm.Instr

type error =
  | Not_sandbox  (** certificates only exist for Sandbox-mode translations *)
  | Arch_mismatch of { expected : Arch.t; got : Arch.t }
  | Module_digest_mismatch
  | Code_fingerprint_mismatch
  | Opts_mismatch
  | Pad_mismatch of { expected : Policy.pad; got : Policy.pad }
  | Layout_mismatch
  | Length_mismatch of { expected : int; got : int }
  | Obligation_out_of_range of { ox : int }
  | Obligation_disorder of { ox : int }
  | Obligation_mismatch of { ox : int; kind : Witness.kind }
  | Uncovered_unsafe of { ox : int }
  | Count_mismatch of { seg : string; declared : int; witnessed : int }

let error_to_string = function
  | Not_sandbox -> "certificate applies only to Sandbox-mode translations"
  | Arch_mismatch { expected; got } ->
      Printf.sprintf "architecture mismatch: certificate is for %s, code is %s"
        (Arch.name got) (Arch.name expected)
  | Module_digest_mismatch -> "module digest mismatch"
  | Code_fingerprint_mismatch -> "translated-code fingerprint mismatch"
  | Opts_mismatch -> "translator options or SFI policy mismatch"
  | Pad_mismatch { expected; got } ->
      Printf.sprintf
        "SFI padding-mode mismatch: certificate is for %s, policy wants %s"
        (Policy.pad_name got) (Policy.pad_name expected)
  | Layout_mismatch -> "sandbox layout (base/mask) mismatch"
  | Length_mismatch { expected; got } ->
      Printf.sprintf "instruction count mismatch: certificate %d, code %d" got
        expected
  | Obligation_out_of_range { ox } ->
      Printf.sprintf "obligation index %d out of range" ox
  | Obligation_disorder { ox } ->
      Printf.sprintf "obligations out of order at index %d" ox
  | Obligation_mismatch { ox; kind } ->
      Printf.sprintf "instruction %d does not discharge obligation %s" ox
        (Witness.kind_name kind)
  | Uncovered_unsafe { ox } ->
      Printf.sprintf "instruction %d is unsafe and carries no obligation" ox
  | Count_mismatch { seg; declared; witnessed } ->
      Printf.sprintf
        "%s masking count mismatch: translator declared %d, witness has %d"
        seg declared witnessed

exception Reject of error

let reject e = raise (Reject e)

(* --- binding: does this certificate speak about this translation? --- *)

let bind (c : Certificate.t) ~(module_digest : Fnv64.t) ~(arch : Arch.t)
    ~(mode : Machine.mode) ~(opts : Machine.topts) ~(code_fp : Fnv64.t) :
    (unit, error) result =
  match mode with
  | Machine.Native _ -> Error Not_sandbox
  | Machine.Mobile p ->
      if p.Policy.mode <> Policy.Sandbox then Error Not_sandbox
      else if c.Certificate.arch <> arch then
        Error (Arch_mismatch { expected = arch; got = c.Certificate.arch })
      else if not (Fnv64.equal c.Certificate.module_digest module_digest) then
        Error Module_digest_mismatch
      else if not (Fnv64.equal c.Certificate.code_fp code_fp) then
        Error Code_fingerprint_mismatch
      else if
        c.Certificate.opts <> opts
        || c.Certificate.protect_reads <> p.Policy.protect_reads
      then Error Opts_mismatch
      else if c.Certificate.pad <> p.Policy.pad then
        Error
          (Pad_mismatch { expected = p.Policy.pad; got = c.Certificate.pad })
      else if
        c.Certificate.data_base <> L.data_base
        || c.Certificate.data_mask <> L.data_mask
        || c.Certificate.code_base <> L.code_base
        || c.Certificate.code_mask <> L.code_mask
      then Error Layout_mismatch
      else Ok ()

(* Obligation arrays from [Certificate.decode] are strictly increasing and
   in range by construction; hand-built ones (tests, adversaries calling
   the checker directly) are caught by the main scan's per-obligation
   bounds test and re-diagnosed here for the precise error. *)
let check_order (obs : Witness.obligation array) (n_code : int) =
  let prev = ref (-1) in
  Array.iter
    (fun (ob : Witness.obligation) ->
      let ox = ob.Witness.ox in
      if ox < 0 || ox >= n_code then reject (Obligation_out_of_range { ox });
      if ox <= !prev then reject (Obligation_disorder { ox });
      prev := ox)
    obs

(* The mask counts are accumulated by the main scan (no separate pass)
   and cross-checked against the translator's declaration here. *)
let check_counts (decl : Machine.sfi_decl) ~data_masks ~code_masks =
  if data_masks <> decl.Machine.data_masks then
    reject
      (Count_mismatch
         { seg = "data";
           declared = decl.Machine.data_masks;
           witnessed = data_masks });
  if code_masks <> decl.Machine.code_masks then
    reject
      (Count_mismatch
         { seg = "code";
           declared = decl.Machine.code_masks;
           witnessed = code_masks })

(* Dedicated/scratch register states. Plain ints: no allocation. *)
let dirty = 0
let masked_d = 1
let masked_c = 2
let boxed_d = 3
let boxed_c = 4

let no_const = min_int

(* --- RISC (mips / sparc / ppc) --- *)

(* Destination integer register of an instruction; -1 if none. Mirrors
   [Risc.attrs] defs restricted to the integer file. *)
let risc_dest (i : R.instr) : int =
  match i with
  | R.Alu (_, rd, _, _)
  | R.Alui (_, rd, _, _)
  | R.Alu_record (_, rd, _, _)
  | R.Lui (rd, _)
  | R.Load (_, _, rd, _, _)
  | R.Load_x (_, _, rd, _, _)
  | R.Cvt_i_f (rd, _)
  | R.Fcc_to_reg rd
  | R.Cc_to_reg (_, rd) ->
      rd
  | R.Call (_, _) | R.Call_ind (_, _) -> R.omni_ra
  | R.Hcall _ -> R.map_reg 1
  | _ -> -1

let check_risc (c : Certificate.t) (p : R.program) : (unit, error) result =
  let code = p.R.code in
  let n = Array.length code in
  try
    if c.Certificate.n_code <> n then
      reject (Length_mismatch { expected = n; got = c.Certificate.n_code });
    let obs = c.Certificate.obs in
    let nobs = Array.length obs in
    let max_disp = Policy.guard_zone_of_pad c.Certificate.pad in
    (* Cross-module register constants hoisted into locals: without
       flambda every [R.r_*] reference is a load from the module block,
       and the loop below touches several per instruction. *)
    let sp = R.omni_sp in
    let reg_d = R.r_sfi_data and reg_c = R.r_sfi_code in
    let mask_d = R.r_data_mask and base_d = R.r_data_base in
    let mask_c = R.r_code_mask and base_c = R.r_code_base in
    let scratch = R.r_scratch1 in
    let rzero = R.r_zero and rgp = R.r_gp in
    let sd = ref dirty and sc = ref dirty in
    let sd_at = ref 0 and sc_at = ref 0 in
    let lui = ref no_const in
    let lui_at = ref 0 in
    (* mask counts, accumulated in the covered arms below instead of a
       separate [count_masks] pass *)
    let n_md = ref 0 and n_mc = ref 0 in
    (* Control-flow joins kill checker state, exactly as the verifier's
       reset does — but instead of a per-instruction "pending reset"
       test, each state value records the index where it was established
       ([sd_at] / [sc_at] / [lui_at]) and each control transfer at [c]
       schedules a kill point [p = c + inc] ([inc] = 1 on delay-slot
       architectures: state stays usable in the slot and dies after it).
       A value set at [a] and read at [i] is dead iff some kill point
       [p] satisfies [a <= p < i]. Kill points are scheduled in
       increasing order, and every one except the latest is [< i] at any
       read (its control sits at least two instructions back), so
       remembering the two most recent points [kb1 <= kb2] decides the
       predicate exactly:

         dead(a, i)  <=>  kb1 >= a  ||  (kb2 >= a && kb2 < i)

       This moves all join bookkeeping off the per-instruction path:
       controls update two cells, reads test two cells, and the
       (dominant) uncovered straight-line instructions pay nothing. *)
    let kb1 = ref (-1) and kb2 = ref (-1) in
    (* the register-state reads/writes are open-coded in the arms below:
       without flambda a [state]/[set] helper is an indirect closure call
       on a path taken for a third or more of the instructions *)
    (* the blessed sp re-sandbox follows instruction i *)
    let resandbox_follows i =
      (i + 2 < n
      && (match (code.(i + 1).R.i, code.(i + 2).R.i) with
         | R.Alu (VI.And, a, _, m), R.Alu (VI.Or, b, _, base) ->
             a = sp && m = mask_d && b = sp && base = base_d
         | _ -> false))
      || i + 1 < n
         && (match code.(i + 1).R.i with
            | R.Guard_data r -> r = sp
            | _ -> false)
    in
    let inc = if p.R.cfg.R.has_delay_slot then 1 else 0 in
    (* Register ids fit in a word, so one shift+mask replaces the
       four-compare chain for the (dominant) writes to ordinary
       registers; the chain only runs for the special ones. *)
    let special =
      (1 lsl sp) lor (1 lsl reg_d) lor (1 lsl reg_c) lor (1 lsl scratch)
    in
    (* The scan is driven by the witness: obligation positions are known
       up front, so each round handles one obligation — a tight inner
       loop walks the uncovered gap before it (paying no per-instruction
       "is this covered?" compare), then the covered instruction is
       matched against its claimed kind. A final sentinel round
       ([ox = n]) scans the tail gap. *)
    let pos = ref 0 in
    for j = 0 to nobs do
      let ox =
        if j < nobs then (Array.unsafe_get obs j).Witness.ox else n
      in
      if j < nobs && (ox < !pos || ox >= n) then begin
        (* out of range, out of order, or duplicate: re-scan for the
           precise error ([check_order] always finds one here) *)
        check_order obs n;
        reject (Obligation_out_of_range { ox })
      end;
      for i = !pos to ox - 1 do
        (* uncovered: must be shallowly harmless. [i < ox <= n] keeps the
           unchecked read in range. One match; the register bookkeeping
           is inlined rather than via [risc_dest] so the hot path costs a
           single constructor dispatch. *)
        match (Array.unsafe_get code i).R.i with
        | R.Store _ | R.Store_x _ | R.Fstore _ | R.Fstore_s _ | R.Fstore_x _
        | R.Jmp_ind _ | R.Call_ind _ ->
            reject (Uncovered_unsafe { ox = i })
        | R.Alu (op, rd, rs, rb) ->
            if (1 lsl rd) land special <> 0 then
              if rd = sp then (
                (* only the blessed re-sandbox halves may touch sp *)
                match op with
                | VI.And when rb = mask_d -> ()
                | VI.Or when rs = sp && rb = base_d -> ()
                | _ -> reject (Uncovered_unsafe { ox = i }))
              else if rd = reg_d then sd := dirty
              else if rd = reg_c then sc := dirty
              else lui := no_const
        | R.Alui (_, rd, _, _)
        | R.Alu_record (_, rd, _, _)
        | R.Lui (rd, _)
        | R.Load (_, _, rd, _, _)
        | R.Load_x (_, _, rd, _, _)
        | R.Cvt_i_f (rd, _)
        | R.Fcc_to_reg rd
        | R.Cc_to_reg (_, rd) ->
            if (1 lsl rd) land special <> 0 then
              if rd = sp then reject (Uncovered_unsafe { ox = i })
              else if rd = reg_d then sd := dirty
              else if rd = reg_c then sc := dirty
              else lui := no_const
        | R.Br_cc _ | R.Br_cmp _ | R.Fbr _ | R.J _ | R.Call _ ->
            kb1 := !kb2;
            kb2 := i + inc
        | _ -> () (* [Hcall]/[Guard]/[Trapi] write fixed safe registers;
                     the rest write nothing the checker tracks *)
      done;
      if j < nobs then begin
        (* covered: [ox < n] was checked above, so the unchecked reads
           are in range *)
        let i = ox in
        let kind = (Array.unsafe_get obs j).Witness.kind in
        let ins = (Array.unsafe_get code i).R.i in
        let ok =
          match kind with
          | Witness.Mask_data -> (
              match ins with
              | R.Alu (VI.And, rd, _, rm)
                when rm = mask_d && (rd = reg_d || rd = reg_c) ->
                  (if rd = reg_d then (
                     sd := masked_d;
                     sd_at := i)
                   else (
                     sc := masked_d;
                     sc_at := i));
                  incr n_md;
                  true
              | _ -> false)
          | Witness.Mask_code -> (
              match ins with
              | R.Alu (VI.And, rd, _, rm)
                when rm = mask_c && (rd = reg_d || rd = reg_c) ->
                  (if rd = reg_d then (
                     sd := masked_c;
                     sd_at := i)
                   else (
                     sc := masked_c;
                     sc_at := i));
                  incr n_mc;
                  true
              | _ -> false)
          | Witness.Box_data -> (
              match ins with
              | R.Alu (VI.Or, rd, rs, rb) when rs = rd && rb = base_d ->
                  if rd = reg_d && !sd = masked_d && !kb1 < !sd_at && (!kb2 < !sd_at || !kb2 >= i) then (
                    sd := boxed_d;
                    sd_at := i;
                    true)
                  else if rd = reg_c && !sc = masked_d && !kb1 < !sc_at && (!kb2 < !sc_at || !kb2 >= i) then (
                    sc := boxed_d;
                    sc_at := i;
                    true)
                  else false
              | _ -> false)
          | Witness.Box_code -> (
              match ins with
              | R.Alu (VI.Or, rd, rs, rb) when rs = rd && rb = base_c ->
                  if rd = reg_d && !sd = masked_c && !kb1 < !sd_at && (!kb2 < !sd_at || !kb2 >= i) then (
                    sd := boxed_c;
                    sd_at := i;
                    true)
                  else if rd = reg_c && !sc = masked_c && !kb1 < !sc_at && (!kb2 < !sc_at || !kb2 >= i) then (
                    sc := boxed_c;
                    sc_at := i;
                    true)
                  else false
              | _ -> false)
          | Witness.Store_sandboxed -> (
              match ins with
              | R.Store (_, _, b, d) | R.Fstore (_, b, d) | R.Fstore_s (_, b, d)
                ->
                  ((b = reg_d && !sd = boxed_d && !kb1 < !sd_at && (!kb2 < !sd_at || !kb2 >= i))
                  || (b = reg_c && !sc = boxed_d && !kb1 < !sc_at && (!kb2 < !sc_at || !kb2 >= i)))
                  && d > -max_disp && d < max_disp
              | _ -> false)
          | Witness.Store_indexed -> (
              match ins with
              | R.Store_x (_, _, b1, b2) | R.Fstore_x (_, b1, b2) ->
                  b1 = base_d
                  && ((b2 = reg_d && !sd = masked_d && !kb1 < !sd_at && (!kb2 < !sd_at || !kb2 >= i))
                     || (b2 = reg_c && !sc = masked_d && !kb1 < !sc_at && (!kb2 < !sc_at || !kb2 >= i)))
              | _ -> false)
          | Witness.Store_sp -> (
              match ins with
              | R.Store (_, _, b, d) | R.Fstore (_, b, d) | R.Fstore_s (_, b, d)
                ->
                  b = sp && d > -max_disp && d < max_disp
              | _ -> false)
          | Witness.Store_abs -> (
              match ins with
              | R.Store (_, _, b, d) | R.Fstore (_, b, d) | R.Fstore_s (_, b, d)
                ->
                  b = rzero && L.in_data d
              | _ -> false)
          | Witness.Store_gp -> (
              match ins with
              | R.Store (_, _, b, _) | R.Fstore (_, b, _) | R.Fstore_s (_, b, _)
                ->
                  b = rgp
              | _ -> false)
          | Witness.Lui_const -> (
              match ins with
              | R.Lui (rd, v) when rd = scratch ->
                  lui := v;
                  lui_at := i;
                  true
              | _ -> false)
          | Witness.Store_lui -> (
              match ins with
              | R.Store (_, _, b, d) | R.Fstore (_, b, d) | R.Fstore_s (_, b, d)
                ->
                  b = scratch && !lui <> no_const && !kb1 < !lui_at && (!kb2 < !lui_at || !kb2 >= i)
                  && L.in_data (!lui + d)
              | _ -> false)
          | Witness.Jump_sandboxed -> (
              match ins with
              | R.Jmp_ind r | R.Call_ind (r, _) ->
                  (r = reg_d && !sd = boxed_c && !kb1 < !sd_at && (!kb2 < !sd_at || !kb2 >= i))
                  || (r = reg_c && !sc = boxed_c && !kb1 < !sc_at && (!kb2 < !sc_at || !kb2 >= i))
              | _ -> false)
          | Witness.Sp_adjust -> (
              match ins with
              | R.Alui ((VI.Add | VI.Sub), rd, rs, kk) ->
                  rd = sp && rs = sp && abs kk < max_disp
              | _ -> false)
          | Witness.Sp_resandboxed ->
              risc_dest ins = sp && resandbox_follows i
        in
        if not ok then reject (Obligation_mismatch { ox = i; kind });
        (* the only control transfers an obligation can cover are the
           sandboxed indirect jumps *)
        if kind = Witness.Jump_sandboxed then begin
          kb1 := !kb2;
          kb2 := i + inc
        end
      end;
      pos := ox + 1
    done;
    check_counts p.R.decl ~data_masks:!n_md ~code_masks:!n_mc;
    Ok ()
  with Reject e -> Error e

(* --- x86 --- *)

(* Does [ins] write integer register [r]? Mirrors [X86.attrs] defs. *)
let x86_writes (r : int) (ins : X.instr) : bool =
  match ins with
  | X.Mov (X.R d, _)
  | X.Load (_, _, d, _)
  | X.Lea (d, _)
  | X.Setcc (_, d)
  | X.Fcc_to_reg d
  | X.Cvt_i_f (d, _)
  | X.Imul (d, _)
  | X.Alu (_, X.R d, _)
  | X.Shift (_, X.R d, _)
  | X.Shiftv (_, X.R d, _) ->
      d = r
  | X.Idiv _ -> r = X.eax || r = X.edx
  | X.Cdq -> r = X.edx
  | X.Call _ | X.Call_ind _ -> r = X.ebp
  | X.Hcall _ -> r = X.ecx
  | _ -> false

let x86_code_mask_imm = L.code_mask land lnot 3

let check_x86 (c : Certificate.t) (p : X.program) : (unit, error) result =
  let code = p.X.code in
  let n = Array.length code in
  try
    if c.Certificate.n_code <> n then
      reject (Length_mismatch { expected = n; got = c.Certificate.n_code });
    let obs = c.Certificate.obs in
    let nobs = Array.length obs in
    let max_disp = Policy.guard_zone_of_pad c.Certificate.pad in
    (* Cross-module constants hoisted into locals (see [check_risc]) *)
    let r_eax = X.eax and r_esp = X.esp in
    let dmask = L.data_mask and dbase = L.data_base in
    let cbase = L.code_base and cmask = x86_code_mask_imm in
    let eax = ref dirty in
    let n_md = ref 0 and n_mc = ref 0 in
    let small d = d > -max_disp && d < max_disp in
    let resandbox_follows i =
      (i + 2 < n
      && (match (code.(i + 1).X.i, code.(i + 2).X.i) with
         | X.Alu (X.And, X.R a, X.I m), X.Alu (X.Or, X.R b, X.I bs) ->
             a = r_esp && m = dmask && b = r_esp && bs = dbase
         | _ -> false))
      || i + 1 < n
         && (match code.(i + 1).X.i with
            | X.Guard_data r -> r = r_esp
            | _ -> false)
    in
    (* witness-driven scan, exactly as in [check_risc]: per obligation,
       a tight gap loop then the covered match; a sentinel round scans
       the tail *)
    let pos = ref 0 in
    for j = 0 to nobs do
      let ox =
        if j < nobs then (Array.unsafe_get obs j).Witness.ox else n
      in
      if j < nobs && (ox < !pos || ox >= n) then begin
        check_order obs n;
        reject (Obligation_out_of_range { ox })
      end;
      for i = !pos to ox - 1 do
        (* uncovered: one match with the control-flow reset folded in;
           register bookkeeping inlined rather than via [x86_writes] so
           the hot path costs a single dispatch. [i < ox <= n] keeps the
           unchecked read in range. *)
        match (Array.unsafe_get code i).X.i with
        | X.Mov (X.M _, _)
        | X.Store _ | X.Fstore _
        | X.Alu (_, X.M _, _)
        | X.Shift (_, X.M _, _)
        | X.Shiftv (_, X.M _, _)
        | X.Jmp_ind _ | X.Call_ind _ ->
            reject (Uncovered_unsafe { ox = i })
        | X.Alu (op, X.R r, src) ->
            if r = r_esp then (
              (* only the blessed re-sandbox halves may touch esp *)
              match (op, src) with
              | X.And, X.I m when m = dmask -> ()
              | X.Or, X.I b when b = dbase -> ()
              | _ -> reject (Uncovered_unsafe { ox = i }))
            else if r = r_eax then eax := dirty
        | X.Mov (X.R r, _)
        | X.Load (_, _, r, _)
        | X.Lea (r, _)
        | X.Setcc (_, r)
        | X.Fcc_to_reg r
        | X.Cvt_i_f (r, _)
        | X.Imul (r, _)
        | X.Shift (_, X.R r, _)
        | X.Shiftv (_, X.R r, _) ->
            if r = r_esp then reject (Uncovered_unsafe { ox = i })
            else if r = r_eax then eax := dirty
        | X.Idiv _ -> eax := dirty
        | X.Jcc _ | X.Jmp _ | X.Call _ -> eax := dirty (* control: reset *)
        | _ -> () (* [Cdq]/[Hcall] write fixed safe registers; the rest
                     write nothing the checker tracks *)
      done;
      if j < nobs then begin
        (* covered: [ox < n] was checked above, so the unchecked reads
           are in range *)
        let i = ox in
        let kind = (Array.unsafe_get obs j).Witness.kind in
        let ins = (Array.unsafe_get code i).X.i in
        let ok =
          match kind with
          | Witness.Mask_data -> (
              match ins with
              | X.Alu (X.And, X.R r, X.I m) when r = r_eax && m = dmask ->
                  eax := masked_d;
                  incr n_md;
                  true
              | _ -> false)
          | Witness.Mask_code -> (
              match ins with
              | X.Alu (X.And, X.R r, X.I m) when r = r_eax && m = cmask ->
                  eax := masked_c;
                  incr n_mc;
                  true
              | _ -> false)
          | Witness.Box_data -> (
              match ins with
              | X.Alu (X.Or, X.R r, X.I b)
                when r = r_eax && b = dbase && !eax = masked_d ->
                  eax := boxed_d;
                  true
              | _ -> false)
          | Witness.Box_code -> (
              match ins with
              | X.Alu (X.Or, X.R r, X.I b)
                when r = r_eax && b = cbase && !eax = masked_c ->
                  eax := boxed_c;
                  true
              | _ -> false)
          | Witness.Store_sandboxed -> (
              match ins with
              | X.Mov (X.M m, _) | X.Store (_, m, _) | X.Fstore (_, _, m) -> (
                  match (m.X.base, m.X.index) with
                  | Some r, None ->
                      r = r_eax && !eax = boxed_d && small m.X.disp
                  | _ -> false)
              | _ -> false)
          | Witness.Store_sp -> (
              match ins with
              | X.Mov (X.M m, _)
              | X.Store (_, m, _)
              | X.Fstore (_, _, m)
              | X.Alu (_, X.M m, _)
              | X.Shift (_, X.M m, _)
              | X.Shiftv (_, X.M m, _) -> (
                  match (m.X.base, m.X.index) with
                  | Some r, None -> r = r_esp && small m.X.disp
                  | _ -> false)
              | _ -> false)
          | Witness.Store_abs -> (
              match ins with
              | X.Mov (X.M m, _)
              | X.Store (_, m, _)
              | X.Fstore (_, _, m)
              | X.Alu (_, X.M m, _)
              | X.Shift (_, X.M m, _)
              | X.Shiftv (_, X.M m, _) -> (
                  match (m.X.base, m.X.index) with
                  | None, None -> L.in_data m.X.disp
                  | _ -> false)
              | _ -> false)
          | Witness.Jump_sandboxed -> (
              match ins with
              | X.Jmp_ind (X.R r) | X.Call_ind (X.R r, _) ->
                  r = r_eax && !eax = boxed_c
              | _ -> false)
          | Witness.Sp_adjust -> (
              match ins with
              | X.Alu ((X.Add | X.Sub), X.R r, X.I kk) ->
                  r = r_esp && abs kk < max_disp
              | _ -> false)
          | Witness.Sp_resandboxed ->
              x86_writes X.esp ins
              && (not (X.is_control ins))
              && resandbox_follows i
          | Witness.Store_indexed | Witness.Store_gp | Witness.Lui_const
          | Witness.Store_lui ->
              false (* RISC-only claims can never hold on x86 *)
        in
        if not ok then reject (Obligation_mismatch { ox = i; kind });
        (* the only control transfers an obligation can cover are the
           sandboxed indirect jumps, after which eax state resets *)
        if kind = Witness.Jump_sandboxed then eax := dirty
      end;
      pos := ox + 1
    done;
    check_counts p.X.decl ~data_masks:!n_md ~code_masks:!n_mc;
    Ok ()
  with Reject e -> Error e
