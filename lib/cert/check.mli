(** The witness checker: validates a certificate against translated code
    in one linear, allocation-free pass.

    Soundness invariant: if {!check_risc} (or {!check_x86}) accepts, the
    full verifier ({!Omni_targets.Risc_verify.verify} /
    {!Omni_targets.X86_verify.verify}) accepts the same program. The
    checker is deliberately small and shares no code with the verifier,
    so a bug in the producer cannot silently license unsafe code. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Witness = Omni_sfi.Witness

type error =
  | Not_sandbox
      (** certificates only exist for Sandbox-mode translations *)
  | Arch_mismatch of { expected : Arch.t; got : Arch.t }
  | Module_digest_mismatch
  | Code_fingerprint_mismatch
  | Opts_mismatch
  | Pad_mismatch of { expected : Omni_sfi.Policy.pad; got : Omni_sfi.Policy.pad }
      (** the certificate was minted under a different SFI padding mode *)
  | Layout_mismatch
  | Length_mismatch of { expected : int; got : int }
  | Obligation_out_of_range of { ox : int }
  | Obligation_disorder of { ox : int }
  | Obligation_mismatch of { ox : int; kind : Witness.kind }
      (** the instruction at [ox] does not discharge the claimed kind *)
  | Uncovered_unsafe of { ox : int }
      (** an instruction that demands an obligation has none *)
  | Count_mismatch of { seg : string; declared : int; witnessed : int }
      (** witness masking counts disagree with the translator's declaration *)

val error_to_string : error -> string

val bind :
  Certificate.t ->
  module_digest:Omni_util.Fnv64.t ->
  arch:Arch.t ->
  mode:Machine.mode ->
  opts:Machine.topts ->
  code_fp:Omni_util.Fnv64.t ->
  (unit, error) result
(** Does this certificate speak about this exact translation? Checks
    mode (must be Sandbox), architecture, module digest, code
    fingerprint, translator options + [protect_reads], and sandbox
    layout — everything except the per-instruction obligations. *)

val check_risc : Certificate.t -> Omni_targets.Risc.program -> (unit, error) result
(** Validate the obligations against a RISC-family program (MIPS, SPARC,
    PowerPC) in one linear pass. Does NOT call {!bind}; callers bind
    first. *)

val check_x86 : Certificate.t -> Omni_targets.X86.program -> (unit, error) result
(** Same for x86. *)
