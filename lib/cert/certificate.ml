(* The omni-cert/1 witness format.

   A certificate packages the safety obligations a certifying verification
   produced (see Omni_sfi.Verifier.certify) together with everything that
   binds the witness to one specific translation:

     - the module's content digest (which bytes were translated),
     - the target architecture,
     - the SFI policy bit that matters to the witness (protect_reads; the
       mode itself must be Sandbox for a certificate to exist at all),
     - the translator options (they change the emitted code),
     - the sandbox layout constants the obligations implicitly reference
       (segment bases and masks),
     - the translated code's fingerprint and instruction count.

   Wire layout (all multi-byte integers big-endian; varints are unsigned
   LEB128):

     "OCRT"  version:u8=1  arch:u8  module_digest:i64  code_fp:i64
     flags:u8  data_base:var  data_mask:var  code_base:var  code_mask:var
     n_code:var  n_obs:var  (delta:var kind:u8){n_obs}  self_digest:i64

   Obligation indices are delta-coded against the previous index (starting
   from -1), so a valid stream has every delta >= 1 — strict monotonicity
   is a property of the format, not a convention. The trailing self digest
   is the FNV-64 of everything before it; together with the exhaustive
   field checks this makes [decode] total on arbitrary bytes: every input
   is either structurally valid or named garbage, never an exception. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Witness = Omni_sfi.Witness
module Fnv64 = Omni_util.Fnv64
module L = Omnivm.Layout

let magic = "OCRT"
let version = 1
let format_name = "omni-cert/1"

type t = {
  arch : Arch.t;
  module_digest : Fnv64.t;
  code_fp : Fnv64.t;
  protect_reads : bool;
  pad : Omni_sfi.Policy.pad;
      (* the masking-sequence layout variant the code was produced under;
         a witness checked against a different padding mode would accept
         or reject the wrong displacement bound, so the certificate binds
         it (flags bits 6-7) *)
  opts : Machine.topts;
  data_base : int;
  data_mask : int;
  code_base : int;
  code_mask : int;
  n_code : int;
  obs : Witness.obligation array;
}

let make ~arch ~module_digest ~code_fp ~protect_reads ~pad ~opts ~n_code obs =
  {
    arch;
    module_digest;
    code_fp;
    protect_reads;
    pad;
    opts;
    data_base = L.data_base;
    data_mask = L.data_mask;
    code_base = L.code_base;
    code_mask = L.code_mask;
    n_code;
    obs;
  }

let equal (a : t) (b : t) = Stdlib.compare a b = 0

let arch_code = function
  | Arch.Mips -> 0
  | Arch.Sparc -> 1
  | Arch.Ppc -> 2
  | Arch.X86 -> 3

let arch_of_code = function
  | 0 -> Some Arch.Mips
  | 1 -> Some Arch.Sparc
  | 2 -> Some Arch.Ppc
  | 3 -> Some Arch.X86
  | _ -> None

let flags_of (c : t) =
  (if c.protect_reads then 1 else 0)
  lor (if c.opts.Machine.schedule then 2 else 0)
  lor (if c.opts.Machine.fill_delay_slots then 4 else 0)
  lor (if c.opts.Machine.use_gp then 8 else 0)
  lor (if c.opts.Machine.peephole then 16 else 0)
  lor (if c.opts.Machine.sfi_opt then 32 else 0)
  lor (Omni_sfi.Policy.pad_code c.pad lsl 6)

(* --- encoding --- *)

let w8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w64 b (v : int64) =
  for i = 7 downto 0 do
    w8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let rec wvar b v =
  (* unsigned LEB128; [v] must be >= 0 *)
  if v < 0x80 then w8 b v
  else begin
    w8 b (0x80 lor (v land 0x7f));
    wvar b (v lsr 7)
  end

let encode (c : t) : string =
  let b = Buffer.create (64 + (2 * Array.length c.obs)) in
  Buffer.add_string b magic;
  w8 b version;
  w8 b (arch_code c.arch);
  w64 b c.module_digest;
  w64 b c.code_fp;
  w8 b (flags_of c);
  wvar b c.data_base;
  wvar b c.data_mask;
  wvar b c.code_base;
  wvar b c.code_mask;
  wvar b c.n_code;
  wvar b (Array.length c.obs);
  let prev = ref (-1) in
  Array.iter
    (fun (ob : Witness.obligation) ->
      wvar b (ob.Witness.ox - !prev);
      prev := ob.Witness.ox;
      w8 b (Witness.kind_code ob.Witness.kind))
    c.obs;
  let body = Buffer.contents b in
  w64 b (Fnv64.digest_string body);
  Buffer.contents b

(* --- decoding (total) --- *)

type decode_error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_arch of int
  | Bad_kind of int
  | Bad_order  (** obligation indices not strictly increasing *)
  | Bad_index  (** obligation index outside the code array *)
  | Oversized  (** a varint field exceeds any plausible value *)
  | Trailing_garbage
  | Bad_self_digest

let decode_error_to_string = function
  | Truncated -> "truncated certificate"
  | Bad_magic -> "bad magic (not an omni-cert)"
  | Bad_version v -> Printf.sprintf "unsupported certificate version %d" v
  | Bad_arch c -> Printf.sprintf "unknown architecture code %d" c
  | Bad_kind c -> Printf.sprintf "unknown obligation kind %d" c
  | Bad_order -> "obligation indices not strictly increasing"
  | Bad_index -> "obligation index outside the code array"
  | Oversized -> "oversized field"
  | Trailing_garbage -> "trailing bytes after certificate"
  | Bad_self_digest -> "self digest mismatch (corrupt certificate)"

exception Bad of decode_error

let decode (s : string) : (t, decode_error) result =
  let pos = ref 0 in
  let len = String.length s in
  let r8 () =
    if !pos >= len then raise (Bad Truncated)
    else begin
      let v = Char.code s.[!pos] in
      incr pos;
      v
    end
  in
  let r64 () =
    let v = ref 0L in
    for _ = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r8 ()))
    done;
    !v
  in
  let rvar () =
    let v = ref 0 and shift = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let byte = r8 () in
      (* cap well under OCaml's int width so shifts cannot wrap *)
      if !shift > 49 then raise (Bad Oversized);
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then continue_ := false
    done;
    !v
  in
  try
    if len < 4 || String.sub s 0 4 <> magic then raise (Bad Bad_magic);
    pos := 4;
    let v = r8 () in
    if v <> version then raise (Bad (Bad_version v));
    let ac = r8 () in
    let arch =
      match arch_of_code ac with
      | Some a -> a
      | None -> raise (Bad (Bad_arch ac))
    in
    let module_digest = r64 () in
    let code_fp = r64 () in
    let flags = r8 () in
    let data_base = rvar () in
    let data_mask = rvar () in
    let code_base = rvar () in
    let code_mask = rvar () in
    let n_code = rvar () in
    let n_obs = rvar () in
    if n_obs > n_code then raise (Bad Bad_index);
    (* every obligation needs at least 2 bytes, so this bound rejects
       absurd counts before allocating anything *)
    if n_obs > (len - !pos) / 2 then raise (Bad Truncated);
    let obs =
      Array.make n_obs { Witness.ox = 0; kind = Witness.Mask_data }
    in
    let prev = ref (-1) in
    for i = 0 to n_obs - 1 do
      let delta = rvar () in
      if delta < 1 then raise (Bad Bad_order);
      let ox = !prev + delta in
      if ox >= n_code then raise (Bad Bad_index);
      prev := ox;
      let kc = r8 () in
      match Witness.kind_of_code kc with
      | Some kind -> obs.(i) <- { Witness.ox = ox; kind }
      | None -> raise (Bad (Bad_kind kc))
    done;
    let body_end = !pos in
    let self = r64 () in
    if !pos <> len then raise (Bad Trailing_garbage);
    if not (Fnv64.equal self (Fnv64.digest_string (String.sub s 0 body_end)))
    then raise (Bad Bad_self_digest);
    Ok
      {
        arch;
        module_digest;
        code_fp;
        protect_reads = flags land 1 <> 0;
        pad =
          (match Omni_sfi.Policy.pad_of_code ((flags lsr 6) land 3) with
          | Some p -> p
          | None -> assert false (* 2 bits cover all four codes *));
        opts =
          {
            Machine.schedule = flags land 2 <> 0;
            fill_delay_slots = flags land 4 <> 0;
            use_gp = flags land 8 <> 0;
            peephole = flags land 16 <> 0;
            sfi_opt = flags land 32 <> 0;
          };
        data_base;
        data_mask;
        code_base;
        code_mask;
        n_code;
        obs;
      }
  with Bad e -> Error e

let summary (c : t) =
  Printf.sprintf
    "%s arch=%s module=%s code=%s instrs=%d obligations=%d bytes=%d"
    format_name (Arch.name c.arch)
    (Fnv64.to_hex c.module_digest)
    (Fnv64.to_hex c.code_fp)
    c.n_code (Array.length c.obs)
    (String.length (encode c))
