(* Monotonic clock with an injectable source.

   Every timing the observability layer records flows through one of these,
   so tests can substitute a manual clock and obtain deterministic span
   durations and histogram contents. The CPU clock is [Sys.time] — the same
   clock the serving counters and the benchmark harness's load-time
   measurements have always used. *)

type t =
  | Cpu
  | Manual of float ref

let cpu = Cpu
let manual ?(start = 0.0) () = Manual (ref start)

let now = function
  | Cpu -> Sys.time ()
  | Manual r -> !r

let advance c dt =
  match c with
  | Cpu -> invalid_arg "Clock.advance: the CPU clock cannot be advanced"
  | Manual r ->
      if dt < 0.0 then invalid_arg "Clock.advance: negative step";
      r := !r +. dt

let set c v =
  match c with
  | Cpu -> invalid_arg "Clock.set: the CPU clock cannot be set"
  | Manual r ->
      if v < !r then invalid_arg "Clock.set: clock must be monotonic";
      r := v
