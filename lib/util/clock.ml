(* Monotonic clock with an injectable source.

   Every timing the observability layer records flows through one of these,
   so tests can substitute a manual clock and obtain deterministic span
   durations and histogram contents. The CPU clock is [Sys.time] — the same
   clock the serving counters and the benchmark harness's load-time
   measurements have always used. *)

type t =
  | Cpu
  | Manual of float ref
  | Fn of (unit -> float)

let cpu = Cpu
let manual ?(start = 0.0) () = Manual (ref start)
let fn f = Fn f

let now = function
  | Cpu -> Sys.time ()
  | Manual r -> !r
  | Fn f -> f ()

let advance c dt =
  match c with
  | Cpu | Fn _ -> invalid_arg "Clock.advance: only a manual clock advances"
  | Manual r ->
      if dt < 0.0 then invalid_arg "Clock.advance: negative step";
      r := !r +. dt

let set c v =
  match c with
  | Cpu | Fn _ -> invalid_arg "Clock.set: only a manual clock can be set"
  | Manual r ->
      if v < !r then invalid_arg "Clock.set: clock must be monotonic";
      r := v
