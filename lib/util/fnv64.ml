(* FNV-1a 64-bit: h := (h xor byte) * prime, per byte. *)

type t = int64

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let step h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) prime

let digest_sub get len ?(seed = offset_basis) () =
  let h = ref seed in
  for i = 0 to len - 1 do
    h := step !h (get i)
  done;
  !h

let digest_string ?seed s =
  digest_sub (fun i -> Char.code s.[i]) (String.length s) ?seed ()

let digest_bytes ?seed b =
  digest_sub (fun i -> Char.code (Bytes.get b i)) (Bytes.length b) ?seed ()

(* Fold a full OCaml int in 8 little-endian bytes. *)
let mix_int h v =
  let h = ref h in
  for i = 0 to 7 do
    h := step !h ((v lsr (8 * i)) land 0xff)
  done;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
let equal = Int64.equal
