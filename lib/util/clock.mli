(** Monotonic clock with an injectable source.

    Timings in the observability layer ({!Omni_obs.Trace},
    {!Omni_obs.Metrics}) are read from one of these, so tests can inject a
    {!manual} clock and obtain deterministic durations. *)

type t

val cpu : t
(** CPU seconds from [Sys.time] — the clock the serving counters and the
    benchmark harness use. *)

val manual : ?start:float -> unit -> t
(** A clock that only moves when told to ([start] defaults to 0). *)

val fn : (unit -> float) -> t
(** A clock read from an arbitrary source — how layers with access to
    [Unix.gettimeofday] inject real wall time without this library
    depending on unix (e.g. the execution watchdog's deadline clock). *)

val now : t -> float

val advance : t -> float -> unit
(** Advance a manual clock by a non-negative step.
    @raise Invalid_argument on the CPU clock or a negative step. *)

val set : t -> float -> unit
(** Set a manual clock to an absolute time not before its current reading.
    @raise Invalid_argument on the CPU clock or a backwards jump. *)
