(** FNV-1a 64-bit content digests.

    Used by the serving layer to content-address mobile modules and to
    fingerprint translated programs. Not cryptographic: the store guards
    against (astronomically unlikely) collisions by comparing bytes on a
    digest match. *)

type t = int64

val digest_string : ?seed:t -> string -> t
val digest_bytes : ?seed:t -> Bytes.t -> t

val mix_int : t -> int -> t
(** Fold an integer (e.g. a tag) into an existing digest. *)

val to_hex : t -> string
(** 16 lowercase hex digits. *)

val equal : t -> t -> bool
