(** Cooperative wall-clock watchdog.

    Fuel bounds work; the watchdog bounds time. Each engine polls the
    watchdog every {!poll_every} instructions and, once the deadline has
    passed, raises {!Fault.Vm_fault} [Deadline_exceeded] — so the fault is
    delivered to a module-registered handler (or aborts the run) exactly
    like any other fault, on every engine.

    The clock is injected because this library cannot depend on unix;
    pass [Omni_util.Clock.fn Unix.gettimeofday] for real wall time. *)

type t

val default_poll_every : int
(** 16384 — cheap enough to be invisible (see the bench [isolation]
    section) yet fine-grained enough for sub-millisecond deadlines. *)

val make : ?poll_every:int -> clock:Omni_util.Clock.t -> budget_s:float -> unit -> t
(** A watchdog whose deadline is [budget_s] seconds after [clock]'s
    current reading.
    @raise Invalid_argument if [poll_every <= 0] or [budget_s < 0]. *)

val poll_every : t -> int
val expired : t -> bool

val check : t -> unit
(** @raise Fault.Vm_fault [Deadline_exceeded] once {!expired}. *)
