(* Pre-decoded threaded interpreter: the fast execution path.

   The reference interpreter ([Interp]) re-fetches and re-matches every
   instruction on every dynamic execution. Here the wire code is compiled
   ONCE into an array of OCaml closures (closure threading): operand
   decoding, width dispatch, and static branch-target resolution all
   happen at compile time, so the dispatch loop per instruction is an
   array load and an indirect call.

   A peephole pass over the decoded stream additionally fuses adjacent
   pairs into superinstructions, mirroring the ISA's own
   compare-and-branch design (paper section 3.4):

     - cmp+br    Binop(Slt/Sltu) immediately consumed by a branch on the
                 flag register: the flag value flows through a local
                 instead of a register re-read;
     - li+op     Li immediately consumed by a Binop: the constant is
                 folded into the operand position;
     - load+use  a load whose destination the next ALU op consumes;
     - push/pop  sp-adjust/stack-access pairs (both orders).

   Equivalence contract (enforced by test/test_fastpath.ml): every
   observable of [Interp.run] is preserved BIT-IDENTICALLY — outcome,
   fault kind and machine state at delivery, [icount], fuel accounting,
   and watchdog poll cadence. The protocol that guarantees it:

     - closures own the [icount] increment (one per SOURCE instruction,
       before the instruction's effects, exactly like [Interp.step]);
     - fuel is charged per source instruction: a fused pair reports
       [consumed = 2], and the dispatcher falls back to the unfused
       closure when remaining fuel cannot cover the whole pair;
     - the watchdog is polled once per source instruction: the dispatch
       loop polls before the first half, the fused closure itself polls
       between the halves;
     - a fused closure updates [pc] after its first half, so a fault (or
       watchdog expiry) between the halves delivers with exactly the
       machine state the reference interpreter would have;
     - rare instructions (floating point, Ext/Ins) fall back to
       [Interp.step], which is definitionally equivalent.

   Compiled programs are immutable and carry no run state: one [program]
   can back any number of concurrent runs (the service's store compiles
   once per module digest and shares the result across domains). *)

module W = Omni_util.Word32

type ctx = {
  st : Interp.t;
  host : Interp.host_iface;
  poll : unit -> unit;
  mutable consumed : int;
      (* fuel units the current dispatch has committed to: 1 on entry,
         bumped to 2 by a fused closure once its first half retired *)
}

type op = ctx -> unit

type program = {
  ops : op array;  (* dispatch table; fused closures at pair heads *)
  plain : op array;  (* never-fused closure per instruction *)
  width : int array;  (* fuel consumed by [ops.(i)]: 1 or 2 *)
  n_cmp_br : int;
  n_li_op : int;
  n_load_use : int;
  n_push_pop : int;
}

let length p = Array.length p.ops
let fused p = p.n_cmp_br + p.n_li_op + p.n_load_use + p.n_push_pop

let fused_by_rule p =
  [
    ("cmp_br", p.n_cmp_br);
    ("li_op", p.n_li_op);
    ("load_use", p.n_load_use);
    ("push_pop", p.n_push_pop);
  ]

(* --- compilation of single instructions --- *)

let exec_violation addr =
  Fault.Vm_fault (Fault.Access_violation { addr; access = Fault.Execute })

(* Resolve a static branch label the way [Interp.jump_index] would:
   either an index, or the exact fault a taken branch raises. *)
let static_target n l : (int, exn) result =
  match
    if l >= Layout.code_base && l < Layout.code_base + (4 * n) then
      Exe.index_of_addr l
    else None
  with
  | Some i -> Ok i
  | None -> Error (exec_violation l)

let loader = function
  | Instr.W8, false -> Memory.load8
  | Instr.W8, true -> fun m a -> W.sext8 (Memory.load8 m a)
  | Instr.W16, false -> Memory.load16
  | Instr.W16, true -> fun m a -> W.sext16 (Memory.load16 m a)
  | Instr.W32, _ -> Memory.load32

let storer = function
  | Instr.W8 -> Memory.store8
  | Instr.W16 -> Memory.store16
  | Instr.W32 -> Memory.store32

(* The unfused closure for instruction [i]. Mirrors [Interp.step] case by
   case: icount is incremented first, [pc] is written exactly where the
   reference interpreter writes it, fault order is preserved. *)
let compile_plain n i (ins : int Instr.t) : op =
  let next = i + 1 in
  match ins with
  | Instr.Binop (op, rd, rs1, rs2) ->
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        Interp.set_reg st rd
          (Instr.eval_binop op (Interp.get_reg st rs1) (Interp.get_reg st rs2));
        st.Interp.pc <- next
  | Instr.Binopi (op, rd, rs1, imm) ->
      let w = W.of_int imm in
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        Interp.set_reg st rd (Instr.eval_binop op (Interp.get_reg st rs1) w);
        st.Interp.pc <- next
  | Instr.Li (rd, imm) ->
      let w = W.of_int imm in
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        Interp.set_reg st rd w;
        st.Interp.pc <- next
  | Instr.Load (w, signed, rd, base, off) ->
      let load = loader (w, signed) in
      let woff = W.of_int off in
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        let addr = W.to_unsigned (W.add (Interp.get_reg st base) woff) in
        Interp.set_reg st rd (load st.Interp.mem addr);
        st.Interp.pc <- next
  | Instr.Store (w, rv, base, off) ->
      let store = storer w in
      let woff = W.of_int off in
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        let addr = W.to_unsigned (W.add (Interp.get_reg st base) woff) in
        store st.Interp.mem addr (Interp.get_reg st rv);
        st.Interp.pc <- next
  | Instr.Br (cond, rs1, rs2, l) -> (
      match static_target n l with
      | Ok ti ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            if
              Instr.eval_cond cond (Interp.get_reg st rs1)
                (Interp.get_reg st rs2)
            then st.Interp.pc <- ti
            else st.Interp.pc <- next
      | Error e ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            if
              Instr.eval_cond cond (Interp.get_reg st rs1)
                (Interp.get_reg st rs2)
            then raise e
            else st.Interp.pc <- next)
  | Instr.Bri (cond, rs1, imm, l) -> (
      let w = W.of_int imm in
      match static_target n l with
      | Ok ti ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            if Instr.eval_cond cond (Interp.get_reg st rs1) w then
              st.Interp.pc <- ti
            else st.Interp.pc <- next
      | Error e ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            if Instr.eval_cond cond (Interp.get_reg st rs1) w then raise e
            else st.Interp.pc <- next)
  | Instr.J l -> (
      match static_target n l with
      | Ok ti ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            st.Interp.pc <- ti
      | Error e ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            raise e)
  | Instr.Jal l -> (
      let ra_val = Exe.code_addr next in
      match static_target n l with
      | Ok ti ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            Interp.set_reg st Reg.ra ra_val;
            st.Interp.pc <- ti
      | Error e ->
          fun c ->
            let st = c.st in
            st.Interp.icount <- st.Interp.icount + 1;
            Interp.set_reg st Reg.ra ra_val;
            raise e)
  | Instr.Jr rs ->
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        st.Interp.pc <-
          Interp.jump_index st (W.to_unsigned (Interp.get_reg st rs))
  | Instr.Jalr (rd, rs) ->
      let ra_val = Exe.code_addr next in
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        let target =
          Interp.jump_index st (W.to_unsigned (Interp.get_reg st rs))
        in
        Interp.set_reg st rd ra_val;
        st.Interp.pc <- target
  | Instr.Hcall idx ->
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        st.Interp.pc <- next;
        (match c.host.Interp.on_hcall st idx with
        | Interp.Continue -> ()
        | Interp.Exit code -> st.Interp.exited <- Some code)
  | Instr.Trap t ->
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        raise (Fault.Vm_fault (Fault.Explicit_trap t))
  | Instr.Nop ->
      fun c ->
        let st = c.st in
        st.Interp.icount <- st.Interp.icount + 1;
        st.Interp.pc <- next
  | Instr.Fload _ | Instr.Fstore _ | Instr.Fbinop _ | Instr.Funop _
  | Instr.Fcmp _ | Instr.Fli _ | Instr.Cvt_f_i _ | Instr.Cvt_i_f _
  | Instr.Cvt_d_s _ | Instr.Cvt_s_d _ | Instr.Ext _ | Instr.Ins _ ->
      (* rare on the hot paths: defer to the reference interpreter, which
         is equivalent by definition (it refetches text.(pc), the same
         array the fast path was compiled from) *)
      fun c -> Interp.step c.host c.st

(* --- fusion --- *)

type rule = R_cmp_br | R_li_op | R_load_use | R_push_pop

(* First halves must retire unconditionally to [i+1] and touch neither
   [pc] nor [exited]. *)
let straightline = function
  | Instr.Binop _ | Instr.Binopi _ | Instr.Li _ | Instr.Load _
  | Instr.Store _ ->
      true
  | _ -> false

let reads r (ins : int Instr.t) =
  match ins with
  | Instr.Binop (_, _, rs1, rs2) -> rs1 = r || rs2 = r
  | Instr.Binopi (_, _, rs1, _) -> rs1 = r
  | _ -> false

let sp_adjust = function
  | Instr.Binopi ((Instr.Add | Instr.Sub), rd, rs, _) ->
      rd = Reg.sp && rs = Reg.sp
  | _ -> false

let rule_of (i1 : int Instr.t) (i2 : int Instr.t) : rule option =
  match (i1, i2) with
  | Instr.Binop ((Instr.Slt | Instr.Sltu), rd, _, _), Instr.Bri (_, rs, _, _)
    when rd <> Reg.zero && rs = rd ->
      Some R_cmp_br
  | Instr.Binop ((Instr.Slt | Instr.Sltu), rd, _, _), Instr.Br (_, rs1, rs2, _)
    when rd <> Reg.zero && rs1 = rd && rs2 = Reg.zero ->
      Some R_cmp_br
  | Instr.Li (rd, _), Instr.Binop _ when rd <> Reg.zero && reads rd i2 ->
      Some R_li_op
  | Instr.Load (_, _, rd, _, _), (Instr.Binop _ | Instr.Binopi _)
    when rd <> Reg.zero && reads rd i2 ->
      Some R_load_use
  | i1, (Instr.Store (_, _, b, _) | Instr.Load (_, _, _, b, _))
    when sp_adjust i1 && b = Reg.sp ->
      Some R_push_pop
  | (Instr.Store (_, _, b, _) | Instr.Load (_, _, _, b, _)), i2
    when sp_adjust i2 && b = Reg.sp ->
      Some R_push_pop
  | _ -> None

(* Generic superinstruction: run the two unfused closures back to back,
   polling (and committing the second fuel unit) between them. [p1] ends
   having set [pc <- i+1], so a fault or poll expiry inside the seam or
   the second half delivers with the reference interpreter's state. *)
let fuse_generic (p1 : op) (p2 : op) : op =
 fun c ->
  p1 c;
  c.consumed <- 2;
  c.poll ();
  p2 c

(* Specialized cmp+br: the 0/1 flag flows through a local. The register
   write is kept (later code may read it); the branch re-uses the flag
   without a register read. *)
let fuse_cmp_br i op rd a b (branch : ctx -> int -> unit) : op =
  let mid = i + 1 in
  fun c ->
    let st = c.st in
    st.Interp.icount <- st.Interp.icount + 1;
    let flag =
      Instr.eval_binop op (Interp.get_reg st a) (Interp.get_reg st b)
    in
    Interp.set_reg st rd flag;
    st.Interp.pc <- mid;
    c.consumed <- 2;
    c.poll ();
    st.Interp.icount <- st.Interp.icount + 1;
    branch c flag

(* Specialized li+op: the constant is folded into the operand position
   (no register re-read); the register write is kept. *)
let fuse_li_op i rd v op2 rd2 rs1 rs2 n2 : op =
  let mid = i + 1 in
  let read1 =
    if rs1 = rd then fun _ -> v else fun c -> Interp.get_reg c.st rs1
  in
  let read2 =
    if rs2 = rd then fun _ -> v else fun c -> Interp.get_reg c.st rs2
  in
  fun c ->
    let st = c.st in
    st.Interp.icount <- st.Interp.icount + 1;
    Interp.set_reg st rd v;
    st.Interp.pc <- mid;
    c.consumed <- 2;
    c.poll ();
    st.Interp.icount <- st.Interp.icount + 1;
    Interp.set_reg st rd2 (Instr.eval_binop op2 (read1 c) (read2 c));
    st.Interp.pc <- n2

let compile (text : int Instr.t array) : program =
  let n = Array.length text in
  let plain = Array.init n (fun i -> compile_plain n i text.(i)) in
  let ops = Array.copy plain in
  let width = Array.make n 1 in
  let n_cmp_br = ref 0
  and n_li_op = ref 0
  and n_load_use = ref 0
  and n_push_pop = ref 0 in
  for i = 0 to n - 2 do
    let i1 = text.(i) and i2 = text.(i + 1) in
    if straightline i1 then begin
      match rule_of i1 i2 with
      | None -> ()
      | Some rule ->
          (let fused =
             match (rule, i1, i2) with
             | R_cmp_br, Instr.Binop (op, rd, a, b), Instr.Bri (cond, _, imm, l)
               ->
                 let w = W.of_int imm in
                 let nxt2 = i + 2 in
                 let branch =
                   match static_target n l with
                   | Ok ti ->
                       fun c flag ->
                         if Instr.eval_cond cond flag w then c.st.Interp.pc <- ti
                         else c.st.Interp.pc <- nxt2
                   | Error e ->
                       fun c flag ->
                         if Instr.eval_cond cond flag w then raise e
                         else c.st.Interp.pc <- nxt2
                 in
                 fuse_cmp_br i op rd a b branch
             | R_cmp_br, Instr.Binop (op, rd, a, b), Instr.Br (cond, _, _, l) ->
                 (* second operand is r0 = 0 (guaranteed by [rule_of]) *)
                 let nxt2 = i + 2 in
                 let branch =
                   match static_target n l with
                   | Ok ti ->
                       fun c flag ->
                         if Instr.eval_cond cond flag 0 then c.st.Interp.pc <- ti
                         else c.st.Interp.pc <- nxt2
                   | Error e ->
                       fun c flag ->
                         if Instr.eval_cond cond flag 0 then raise e
                         else c.st.Interp.pc <- nxt2
                 in
                 fuse_cmp_br i op rd a b branch
             | R_li_op, Instr.Li (rd, imm), Instr.Binop (op2, rd2, rs1, rs2) ->
                 fuse_li_op i rd (W.of_int imm) op2 rd2 rs1 rs2 (i + 2)
             | _ -> fuse_generic plain.(i) plain.(i + 1)
           in
           ops.(i) <- fused);
          width.(i) <- 2;
          incr
            (match rule with
            | R_cmp_br -> n_cmp_br
            | R_li_op -> n_li_op
            | R_load_use -> n_load_use
            | R_push_pop -> n_push_pop)
    end
  done;
  {
    ops;
    plain;
    width;
    n_cmp_br = !n_cmp_br;
    n_li_op = !n_li_op;
    n_load_use = !n_load_use;
    n_push_pop = !n_push_pop;
  }

(* --- the dispatch loop --- *)

let run ?(fuel = max_int) ?watchdog (host : Interp.host_iface) (p : program)
    (st : Interp.t) : Interp.outcome =
  (* countdown polling, identical to [Interp.run] *)
  let poll =
    match watchdog with
    | None -> fun () -> ()
    | Some w ->
        let every = Watchdog.poll_every w in
        let left = ref every in
        fun () ->
          decr left;
          if !left <= 0 then begin
            left := every;
            Watchdog.check w
          end
  in
  let c = { st; host; poll; consumed = 1 } in
  let ops = p.ops and plain = p.plain and width = p.width in
  let n = Array.length ops in
  let rec go fuel =
    if fuel <= 0 then Interp.Out_of_fuel
    else
      match st.Interp.exited with
      | Some code -> Interp.Exited code
      | None -> (
          c.consumed <- 1;
          match
            c.poll ();
            let pc = st.Interp.pc in
            if pc < 0 || pc >= n then
              raise (exec_violation (Exe.code_addr pc));
            (* a fused pair only runs when fuel covers both halves; with
               1 fuel left the reference interpreter retires exactly the
               first instruction, so fall back to the unfused closure *)
            (if fuel >= Array.unsafe_get width pc then Array.unsafe_get ops pc
             else Array.unsafe_get plain pc)
              c
          with
          | () -> go (fuel - c.consumed)
          | exception Fault.Vm_fault f -> (
              match Interp.deliver_fault st f with
              | () -> go (fuel - c.consumed)
              | exception Fault.Vm_fault f -> Interp.Faulted f)
          | exception W.Division_by_zero -> (
              match Interp.deliver_fault st Fault.Division_by_zero with
              | () -> go (fuel - c.consumed)
              | exception Fault.Vm_fault f -> Interp.Faulted f))
  in
  go fuel
