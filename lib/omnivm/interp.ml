(* Reference interpreter for linked OmniVM executables.

   This is the semantic baseline every translator must agree with: the
   differential test suite runs each program here and on all four target
   simulators and requires identical observable behaviour.

   The interpreter is given a host-call handler (the runtime environment);
   it knows nothing about what the host exports beyond the calling
   convention. *)

module W = Omni_util.Word32

type t = {
  iregs : int array; (* 16, canonical Word32 values; r0 pinned to 0 *)
  fregs : float array; (* 16 *)
  mem : Memory.t;
  text : int Instr.t array;
  mutable pc : int; (* instruction index into text *)
  mutable icount : int;
  mutable exited : int option;
  mutable handler : int; (* code address of VM-fault handler, 0 = none *)
}

(* The host-call handler may read/write registers and memory, terminate the
   module, or register a fault handler. *)
type hcall_outcome = Continue | Exit of int

type host_iface = { on_hcall : t -> int -> hcall_outcome }

let get_reg t r = if r = Reg.zero then 0 else t.iregs.(r)
let set_reg t r v = if r <> Reg.zero then t.iregs.(r) <- W.of_int v
let get_freg t r = t.fregs.(r)
let set_freg t r v = t.fregs.(r) <- v

let create (exe : Exe.t) mem =
  let t =
    {
      iregs = Array.make 16 0;
      fregs = Array.make 16 0.0;
      mem;
      text = exe.Exe.text;
      pc = 0;
      icount = 0;
      exited = None;
      handler = 0;
    }
  in
  set_reg t Reg.sp Layout.initial_sp;
  set_reg t Reg.gp Layout.data_base;
  (match Exe.index_of_addr exe.Exe.entry with
  | Some i -> t.pc <- i
  | None -> invalid_arg "Interp.create: bad entry point");
  t

let round_single f = Int32.float_of_bits (Int32.bits_of_float f)

let apply_fbinop op prec a b =
  let v =
    match op with
    | Instr.Fadd -> a +. b
    | Instr.Fsub -> a -. b
    | Instr.Fmul -> a *. b
    | Instr.Fdiv -> a /. b
  in
  match prec with Instr.Single -> round_single v | Instr.Double -> v

let apply_funop op prec a =
  let v =
    match op with
    | Instr.Fneg -> -.a
    | Instr.Fabs -> Float.abs a
    | Instr.Fmov -> a
  in
  match prec with Instr.Single -> round_single v | Instr.Double -> v

let apply_fcmp op a b =
  let r =
    match op with
    | Instr.Feq -> a = b
    | Instr.Flt -> a < b
    | Instr.Fle -> a <= b
  in
  if r then 1 else 0

let ext_field v pos len =
  if pos < 0 || len <= 0 || pos + len > 4 then
    raise (Fault.Vm_fault (Illegal_instruction { pc = 0 }));
  let mask = (1 lsl (8 * len)) - 1 in
  (W.to_unsigned v lsr (8 * pos)) land mask

let ins_field dst src pos len =
  if pos < 0 || len <= 0 || pos + len > 4 then
    raise (Fault.Vm_fault (Illegal_instruction { pc = 0 }));
  let mask = (1 lsl (8 * len)) - 1 in
  let cleared = W.to_unsigned dst land lnot (mask lsl (8 * pos)) in
  W.of_int (cleared lor ((W.to_unsigned src land mask) lsl (8 * pos)))

let jump_index t addr =
  match
    if addr >= Layout.code_base
       && addr < Layout.code_base + (4 * Array.length t.text)
    then Exe.index_of_addr addr
    else None
  with
  | Some i -> i
  | None -> raise (Fault.Vm_fault (Access_violation { addr; access = Execute }))

(* Execute one instruction; updates pc. *)
let step host t =
  if t.pc < 0 || t.pc >= Array.length t.text then
    raise
      (Fault.Vm_fault (Access_violation { addr = Exe.code_addr t.pc; access = Execute }));
  let i = Array.unsafe_get t.text t.pc in
  let next = t.pc + 1 in
  t.icount <- t.icount + 1;
  let target_of_label l = jump_index t l in
  (match i with
  | Instr.Binop (op, rd, rs1, rs2) ->
      set_reg t rd (Instr.eval_binop op (get_reg t rs1) (get_reg t rs2));
      t.pc <- next
  | Instr.Binopi (op, rd, rs1, imm) ->
      set_reg t rd (Instr.eval_binop op (get_reg t rs1) (W.of_int imm));
      t.pc <- next
  | Instr.Li (rd, imm) ->
      set_reg t rd (W.of_int imm);
      t.pc <- next
  | Instr.Load (w, signed, rd, base, off) ->
      let addr = W.to_unsigned (W.add (get_reg t base) (W.of_int off)) in
      let v =
        match (w, signed) with
        | Instr.W8, false -> Memory.load8 t.mem addr
        | Instr.W8, true -> W.sext8 (Memory.load8 t.mem addr)
        | Instr.W16, false -> Memory.load16 t.mem addr
        | Instr.W16, true -> W.sext16 (Memory.load16 t.mem addr)
        | Instr.W32, _ -> Memory.load32 t.mem addr
      in
      set_reg t rd v;
      t.pc <- next
  | Instr.Store (w, rv, base, off) ->
      let addr = W.to_unsigned (W.add (get_reg t base) (W.of_int off)) in
      let v = get_reg t rv in
      (match w with
      | Instr.W8 -> Memory.store8 t.mem addr v
      | Instr.W16 -> Memory.store16 t.mem addr v
      | Instr.W32 -> Memory.store32 t.mem addr v);
      t.pc <- next
  | Instr.Fload (prec, fd, base, off) ->
      let addr = W.to_unsigned (W.add (get_reg t base) (W.of_int off)) in
      let v =
        match prec with
        | Instr.Single -> Memory.load_single t.mem addr
        | Instr.Double -> Memory.load_float t.mem addr
      in
      set_freg t fd v;
      t.pc <- next
  | Instr.Fstore (prec, fv, base, off) ->
      let addr = W.to_unsigned (W.add (get_reg t base) (W.of_int off)) in
      (match prec with
      | Instr.Single -> Memory.store_single t.mem addr (get_freg t fv)
      | Instr.Double -> Memory.store_float t.mem addr (get_freg t fv));
      t.pc <- next
  | Instr.Fbinop (op, prec, fd, fs1, fs2) ->
      set_freg t fd (apply_fbinop op prec (get_freg t fs1) (get_freg t fs2));
      t.pc <- next
  | Instr.Funop (op, prec, fd, fs) ->
      set_freg t fd (apply_funop op prec (get_freg t fs));
      t.pc <- next
  | Instr.Fcmp (op, _prec, rd, fs1, fs2) ->
      set_reg t rd (apply_fcmp op (get_freg t fs1) (get_freg t fs2));
      t.pc <- next
  | Instr.Fli (prec, fd, v) ->
      set_freg t fd
        (match prec with Instr.Single -> round_single v | Instr.Double -> v);
      t.pc <- next
  | Instr.Cvt_f_i (prec, fd, rs) ->
      let v = float_of_int (get_reg t rs) in
      set_freg t fd
        (match prec with Instr.Single -> round_single v | Instr.Double -> v);
      t.pc <- next
  | Instr.Cvt_i_f (_prec, rd, fs) ->
      let f = get_freg t fs in
      let v =
        if Float.is_nan f then 0
        else if f >= 2147483648.0 then W.max_int32
        else if f <= -2147483649.0 then W.min_int32
        else W.of_int (int_of_float f)
      in
      set_reg t rd v;
      t.pc <- next
  | Instr.Cvt_d_s (fd, fs) ->
      set_freg t fd (round_single (get_freg t fs));
      t.pc <- next
  | Instr.Cvt_s_d (fd, fs) ->
      set_freg t fd (round_single (get_freg t fs));
      t.pc <- next
  | Instr.Br (c, rs1, rs2, l) ->
      if Instr.eval_cond c (get_reg t rs1) (get_reg t rs2) then
        t.pc <- target_of_label l
      else t.pc <- next
  | Instr.Bri (c, rs1, imm, l) ->
      if Instr.eval_cond c (get_reg t rs1) (W.of_int imm) then
        t.pc <- target_of_label l
      else t.pc <- next
  | Instr.J l -> t.pc <- target_of_label l
  | Instr.Jal l ->
      set_reg t Reg.ra (Exe.code_addr next);
      t.pc <- target_of_label l
  | Instr.Jr rs -> t.pc <- jump_index t (W.to_unsigned (get_reg t rs))
  | Instr.Jalr (rd, rs) ->
      let target = jump_index t (W.to_unsigned (get_reg t rs)) in
      set_reg t rd (Exe.code_addr next);
      t.pc <- target
  | Instr.Ext (rd, rs, pos, len) ->
      set_reg t rd (ext_field (get_reg t rs) pos len);
      t.pc <- next
  | Instr.Ins (rd, rs, pos, len) ->
      set_reg t rd (ins_field (get_reg t rd) (get_reg t rs) pos len);
      t.pc <- next
  | Instr.Hcall n -> (
      t.pc <- next;
      match host.on_hcall t n with
      | Continue -> ()
      | Exit code -> t.exited <- Some code)
  | Instr.Trap n -> raise (Fault.Vm_fault (Explicit_trap n))
  | Instr.Nop -> t.pc <- next)

(* Deliver a VM fault to the module's registered handler, or re-raise if
   none. The handler is cleared on delivery to avoid fault loops; the module
   may re-register it. *)
let deliver_fault t fault =
  if t.handler = 0 then raise (Fault.Vm_fault fault)
  else begin
    let h = t.handler in
    t.handler <- 0;
    set_reg t (Reg.arg 0) (Fault.code fault);
    t.pc <- jump_index t h
  end

type outcome = Exited of int | Faulted of Fault.t | Out_of_fuel

let run ?(fuel = max_int) ?watchdog host t =
  (* Watchdog polling is a countdown, not a clock read per instruction:
     one decrement-and-test on the hot path, the clock touched only every
     [poll_every] instructions. [check] raises [Deadline_exceeded], which
     then flows through [deliver_fault] like any other fault. *)
  let poll =
    match watchdog with
    | None -> fun () -> ()
    | Some w ->
        let every = Watchdog.poll_every w in
        let left = ref every in
        fun () ->
          decr left;
          if !left <= 0 then begin
            left := every;
            Watchdog.check w
          end
  in
  let rec go fuel =
    if fuel <= 0 then Out_of_fuel
    else
      match t.exited with
      | Some code -> Exited code
      | None -> (
          match
            poll ();
            step host t
          with
          | () -> go (fuel - 1)
          | exception Fault.Vm_fault f -> (
              match deliver_fault t f with
              | () -> go (fuel - 1)
              | exception Fault.Vm_fault f -> Faulted f)
          | exception W.Division_by_zero -> (
              match deliver_fault t Fault.Division_by_zero with
              | () -> go (fuel - 1)
              | exception Fault.Vm_fault f -> Faulted f))
  in
  go fuel
