(** The OmniVM virtual exception model.

    Execution engines raise {!Vm_fault}; the engine then either delivers
    the fault to a handler the module registered through the set-handler
    host call (fault code in r1, handler cleared to prevent loops) or
    aborts the module, returning control to the host. *)

type access = Read | Write | Execute

type t =
  | Access_violation of { addr : int; access : access }
  | Misaligned of { addr : int; width : int }
  | Division_by_zero
  | Illegal_instruction of { pc : int }
  | Unauthorized_host_call of { index : int }
  | Stack_overflow
  | Explicit_trap of int
  | Deadline_exceeded
      (** The wall-clock watchdog expired ({!Watchdog}); delivered through
          the same handler mechanism as every other fault. Transient by
          nature — a rerun under a different deadline may well succeed. *)

exception Vm_fault of t

val access_name : access -> string

val code : t -> int
(** The small integer delivered in r1 when a module handler is invoked. *)

val slug : t -> string
(** Stable machine-readable name (e.g. ["access_violation"]), used as the
    fault kind in crash-report JSON. *)

val addr_of : t -> int option
(** The memory address a fault implicates, when it has one — where a
    crash report centres its hexdump window. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
