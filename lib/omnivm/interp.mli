(** Reference interpreter for linked OmniVM executables.

    The semantic baseline every translator must agree with: the
    differential test suite runs each program here and on all four target
    simulators and requires identical observable behaviour. The interpreter
    is given a host-call handler (the runtime environment) and knows
    nothing about what the host exports beyond the calling convention. *)

type t = {
  iregs : int array;  (** 16 canonical Word32 values; r0 pinned to 0 *)
  fregs : float array;  (** 16 *)
  mem : Memory.t;
  text : int Instr.t array;
  mutable pc : int;  (** instruction index *)
  mutable icount : int;  (** dynamic instructions executed *)
  mutable exited : int option;
  mutable handler : int;  (** VM-fault handler code address; 0 = none *)
}

type hcall_outcome = Continue | Exit of int

type host_iface = { on_hcall : t -> int -> hcall_outcome }

val get_reg : t -> Reg.t -> int
val set_reg : t -> Reg.t -> int -> unit
val get_freg : t -> Reg.t -> float
val set_freg : t -> Reg.t -> float -> unit

val create : Exe.t -> Memory.t -> t
(** Fresh machine state at the executable's entry point, with sp and gp
    initialized per the ABI. *)

val step : host_iface -> t -> unit
(** Execute one instruction.
    @raise Fault.Vm_fault on faults (not yet delivered to any handler). *)

val jump_index : t -> int -> int
(** Validate a code address and return its instruction index.
    @raise Fault.Vm_fault (execute access violation) on addresses outside
    the text or misaligned. *)

val deliver_fault : t -> Fault.t -> unit
(** Deliver a fault to the module's registered handler (clearing it and
    passing the fault code in the first argument register), or re-raise
    [Fault.Vm_fault] when no handler is set. Shared with
    {!Fastinterp}, which must fault-deliver bit-identically. *)

type outcome = Exited of int | Faulted of Fault.t | Out_of_fuel

val run : ?fuel:int -> ?watchdog:Watchdog.t -> host_iface -> t -> outcome
(** Run to completion, delivering faults to the module's registered
    handler when one is set. When [watchdog] is given it is polled every
    {!Watchdog.poll_every} instructions; expiry raises
    [Fault.Deadline_exceeded] through the same delivery path. *)
