(* Cooperative wall-clock watchdog.

   Fuel bounds *work* but not *time*: a module spinning on slow host calls
   or simply granted a huge budget can hold an engine far longer than the
   host intends. The watchdog bounds time the same way every other fault is
   bounded — cooperatively. Engines consult [expired] every [poll_every]
   instructions and raise [Fault.Deadline_exceeded] when the deadline has
   passed, so the fault flows through the ordinary handler-delivery
   mechanism and engine parity is preserved.

   The clock is injected (omnivm cannot depend on unix); callers that want
   real wall time pass [Clock.fn Unix.gettimeofday] — see
   [Supervise.wall_clock]. *)

type t = {
  clock : Omni_util.Clock.t;
  deadline : float;
  poll_every : int;
}

let default_poll_every = 16_384

let make ?(poll_every = default_poll_every) ~clock ~budget_s () =
  if poll_every <= 0 then invalid_arg "Watchdog.make: poll_every must be > 0";
  if budget_s < 0.0 then invalid_arg "Watchdog.make: negative budget";
  { clock; deadline = Omni_util.Clock.now clock +. budget_s; poll_every }

let poll_every t = t.poll_every
let expired t = Omni_util.Clock.now t.clock >= t.deadline

let check t =
  if expired t then raise (Fault.Vm_fault Fault.Deadline_exceeded)
