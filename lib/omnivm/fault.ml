(* The OmniVM virtual exception model.

   The paper (sections 1, 3): OmniVM "delivers an access violation exception
   to the module whenever it makes an unauthorized attempt to access a memory
   segment". We model VM-level exceptions as values; execution engines raise
   [Vm_fault] and either deliver the fault to a handler the module registered
   (via the set-handler host call) or abort the module, returning control to
   the host. *)

type access = Read | Write | Execute

type t =
  | Access_violation of { addr : int; access : access }
  | Misaligned of { addr : int; width : int }
  | Division_by_zero
  | Illegal_instruction of { pc : int }
  | Unauthorized_host_call of { index : int }
  | Stack_overflow
  | Explicit_trap of int
  | Deadline_exceeded

exception Vm_fault of t

let access_name = function
  | Read -> "read"
  | Write -> "write"
  | Execute -> "execute"

(* Small integer codes delivered in r1 when a module-registered handler is
   invoked. *)
let code = function
  | Access_violation _ -> 1
  | Misaligned _ -> 2
  | Division_by_zero -> 3
  | Illegal_instruction _ -> 4
  | Unauthorized_host_call _ -> 5
  | Stack_overflow -> 6
  | Explicit_trap _ -> 7
  | Deadline_exceeded -> 8

(* Stable machine-readable name, used in crash-report JSON. *)
let slug = function
  | Access_violation _ -> "access_violation"
  | Misaligned _ -> "misaligned"
  | Division_by_zero -> "division_by_zero"
  | Illegal_instruction _ -> "illegal_instruction"
  | Unauthorized_host_call _ -> "unauthorized_host_call"
  | Stack_overflow -> "stack_overflow"
  | Explicit_trap _ -> "explicit_trap"
  | Deadline_exceeded -> "deadline_exceeded"

(* The memory address a fault implicates, when it has one: where the
   crash-report hexdump window is centred. *)
let addr_of = function
  | Access_violation { addr; _ } | Misaligned { addr; _ } -> Some addr
  | Division_by_zero | Illegal_instruction _ | Unauthorized_host_call _
  | Stack_overflow | Explicit_trap _ | Deadline_exceeded ->
      None

let to_string = function
  | Access_violation { addr; access } ->
      Printf.sprintf "access violation: %s at 0x%08x" (access_name access)
        (addr land 0xFFFFFFFF)
  | Misaligned { addr; width } ->
      Printf.sprintf "misaligned %d-byte access at 0x%08x" width
        (addr land 0xFFFFFFFF)
  | Division_by_zero -> "integer division by zero"
  | Illegal_instruction { pc } ->
      Printf.sprintf "illegal instruction at 0x%08x" (pc land 0xFFFFFFFF)
  | Unauthorized_host_call { index } ->
      Printf.sprintf "unauthorized host call %d" index
  | Stack_overflow -> "stack overflow"
  | Explicit_trap n -> Printf.sprintf "trap %d" n
  | Deadline_exceeded -> "wall-clock deadline exceeded"

let pp fmt f = Format.pp_print_string fmt (to_string f)
