(** Pre-decoded threaded interpreter: the fast execution path.

    The wire code is compiled once into an array of OCaml closures
    (closure threading), with a peephole pass fusing adjacent pairs into
    superinstructions (compare-and-branch, constant-fold-into-operand,
    load-use, push/pop). {!run} is observably BIT-IDENTICAL to
    {!Interp.run} on the same machine state: same outcome, same fault
    kind and machine state at delivery, same [icount], same fuel
    accounting (charged per source instruction), same watchdog poll
    cadence. The differential harness in [test/test_fastpath.ml] pins
    this contract.

    Compiled programs are immutable and carry no run state: one program
    may back any number of concurrent runs of the same module. *)

type program

val compile : int Instr.t array -> program
(** Pre-decode and fuse a linked text segment (typically
    [exe.Exe.text]). Pure; cost is linear in the program. *)

val length : program -> int
(** Number of source instructions covered. *)

val fused : program -> int
(** Number of fused pairs the peephole pass selected. *)

val fused_by_rule : program -> (string * int) list
(** Fusion counts per rule: [cmp_br], [li_op], [load_use], [push_pop]. *)

val run :
  ?fuel:int ->
  ?watchdog:Watchdog.t ->
  Interp.host_iface ->
  program ->
  Interp.t ->
  Interp.outcome
(** Run [st] to completion under the pre-decoded program, which must
    have been compiled from the same text array the state executes
    ([st.Interp.text]). Fault delivery, fuel, and watchdog semantics are
    exactly {!Interp.run}'s. *)
