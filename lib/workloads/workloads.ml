(* The four SPEC92-analogue benchmark programs, written in MiniC.

   Each mirrors the computational character of the SPEC92 program the paper
   measures (see DESIGN.md section 2):

     li       -> a small Lisp interpreter with a mark-sweep GC running list
                 and arithmetic workloads (pointer chasing, branches, calls)
     compress -> LZW compression + decompression over synthetic text
                 (integer ops, hash table loads/stores)
     alvinn   -> multi-layer perceptron forward/backprop training
                 (double-precision floating point)
     eqntott  -> product-term truth-table sort dominated by a comparison
                 function called through qsort (integer compares, indirect
                 calls)

   Inputs are generated in-program from the fixed-seed LCG in the MiniC
   runtime library, so every engine sees identical work. Each program
   prints intermediate values and a final checksum; the differential test
   suite requires byte-identical output from the oracle, the OmniVM
   interpreter, and all four target simulators.

   [size] scales the dynamic instruction count; [`Test] keeps differential
   tests fast, [`Ref] is the benchmarking size. *)

type size = Test | Ref

type t = { name : string; source : string }

(* --- li: lisp interpreter --- *)

let li ~size =
  let fib_n, list_n, iters =
    match size with Test -> (12, 40, 2) | Ref -> (17, 150, 6)
  in
  let source =
    Printf.sprintf
      {|
/* li: small lisp with cons cells, symbols, eval, and mark-sweep gc */

struct obj {
  int tag;            /* 0=num 1=sym 2=cons 3=builtin 4=lambda 5=nil */
  int num;
  struct obj *car;    /* also: lambda params / builtin id */
  struct obj *cdr;    /* also: lambda body */
  struct obj *env;    /* lambda closure env */
  char name[12];
  int mark;
  struct obj *next;   /* allocation chain for gc */
};

struct obj *all_objs = 0;
struct obj *nil;
struct obj *sym_list = 0;   /* interned symbols, chained via cdr */
int live_count = 0;
int alloc_count = 0;
int gc_count = 0;

/* gc roots: a shadow stack */
struct obj *roots[512];
int nroots = 0;

void push_root(struct obj *o) { roots[nroots] = o; nroots++; }
void pop_roots(int n) { nroots -= n; }

void mark(struct obj *o) {
  while (o != 0 && o->mark == 0) {
    o->mark = 1;
    if (o->tag == 2 || o->tag == 4) {
      mark(o->car);
      mark(o->env);
      o = o->cdr;
    } else {
      o = 0;
    }
  }
}

void gc(struct obj *extra1, struct obj *extra2) {
  struct obj *p;
  int i;
  gc_count++;
  for (i = 0; i < nroots; i++) mark(roots[i]);
  mark(sym_list);
  mark(extra1);
  mark(extra2);
  /* sweep: unmarked objects return to a free list via tag 6 */
  p = all_objs;
  live_count = 0;
  while (p != 0) {
    if (p->mark) { p->mark = 0; live_count++; }
    else p->tag = 6;
    p = p->next;
  }
}

struct obj *free_scan = 0;

struct obj *alloc_obj(struct obj *protect1, struct obj *protect2) {
  struct obj *o;
  alloc_count++;
  if ((alloc_count & 1023) == 0) {
    gc(protect1, protect2);
    free_scan = all_objs;
  }
  /* reuse a swept object if one is handy */
  while (free_scan != 0) {
    if (free_scan->tag == 6) {
      o = free_scan;
      free_scan = free_scan->next;
      o->mark = 0;
      o->car = 0; o->cdr = 0; o->env = 0;
      return o;
    }
    free_scan = free_scan->next;
  }
  o = (struct obj *)malloc((int)sizeof(struct obj));
  o->mark = 0;
  o->car = 0; o->cdr = 0; o->env = 0;
  o->next = all_objs;
  all_objs = o;
  return o;
}

struct obj *mknum(int v) {
  struct obj *o;
  o = alloc_obj(0, 0);
  o->tag = 0;
  o->num = v;
  return o;
}

struct obj *cons(struct obj *a, struct obj *d) {
  struct obj *o;
  o = alloc_obj(a, d);
  o->tag = 2;
  o->car = a;
  o->cdr = d;
  return o;
}

struct obj *intern(char *name) {
  struct obj *p;
  p = sym_list;
  while (p != nil && p != 0) {
    if (strcmp(p->car->name, name) == 0) return p->car;
    p = p->cdr;
  }
  p = alloc_obj(0, 0);
  p->tag = 1;
  strcpy(p->name, name);
  sym_list = cons(p, sym_list);
  return p;
}

/* environment: list of (sym . val) conses */
struct obj *env_lookup(struct obj *env, struct obj *sym) {
  while (env != nil) {
    if (env->car->car == sym) return env->car->cdr;
    env = env->cdr;
  }
  return nil;
}

struct obj *env_bind(struct obj *env, struct obj *sym, struct obj *val) {
  return cons(cons(sym, val), env);
}

struct obj *global_env;

struct obj *eval(struct obj *e, struct obj *env);

struct obj *eval_list(struct obj *e, struct obj *env) {
  struct obj *h;
  struct obj *t;
  if (e == nil) return nil;
  push_root(e); push_root(env);
  h = eval(e->car, env);
  push_root(h);
  t = eval_list(e->cdr, env);
  pop_roots(3);
  return cons(h, t);
}

struct obj *sym_quote; struct obj *sym_if; struct obj *sym_define;
struct obj *sym_lambda; struct obj *sym_plus; struct obj *sym_minus;
struct obj *sym_times; struct obj *sym_lt; struct obj *sym_eq;
struct obj *sym_cons; struct obj *sym_car; struct obj *sym_cdr;
struct obj *sym_nullp; struct obj *sym_while; struct obj *sym_set;

struct obj *apply(struct obj *f, struct obj *args) {
  struct obj *env;
  struct obj *p;
  struct obj *body;
  struct obj *r;
  if (f->tag != 4) return nil;
  env = f->env;
  p = f->car;
  push_root(f); push_root(args);
  while (p != nil && args != nil) {
    env = env_bind(env, p->car, args->car);
    p = p->cdr;
    args = args->cdr;
  }
  push_root(env);
  body = f->cdr;
  r = nil;
  while (body != nil) {
    r = eval(body->car, env);
    body = body->cdr;
  }
  pop_roots(3);
  return r;
}

struct obj *eval(struct obj *e, struct obj *env) {
  struct obj *f;
  struct obj *args;
  struct obj *a;
  struct obj *b;
  struct obj *r;
  if (e->tag == 0) return e;
  if (e->tag == 1) return env_lookup(env, e);
  if (e->tag != 2) return e;
  /* special forms */
  if (e->car == sym_quote) return e->cdr->car;
  if (e->car == sym_if) {
    push_root(e); push_root(env);
    a = eval(e->cdr->car, env);
    pop_roots(2);
    if (a != nil && !(a->tag == 0 && a->num == 0))
      return eval(e->cdr->cdr->car, env);
    if (e->cdr->cdr->cdr != nil) return eval(e->cdr->cdr->cdr->car, env);
    return nil;
  }
  if (e->car == sym_define) {
    push_root(e); push_root(env);
    a = eval(e->cdr->cdr->car, env);
    pop_roots(2);
    global_env = env_bind(global_env, e->cdr->car, a);
    return a;
  }
  if (e->car == sym_set) {
    struct obj *cell;
    push_root(e); push_root(env);
    a = eval(e->cdr->cdr->car, env);
    pop_roots(2);
    cell = env;
    while (cell != nil) {
      if (cell->car->car == e->cdr->car) { cell->car->cdr = a; return a; }
      cell = cell->cdr;
    }
    global_env = env_bind(global_env, e->cdr->car, a);
    return a;
  }
  if (e->car == sym_lambda) {
    r = alloc_obj(e, env);
    r->tag = 4;
    r->car = e->cdr->car;   /* params */
    r->cdr = e->cdr->cdr;   /* body */
    r->env = env;
    return r;
  }
  if (e->car == sym_while) {
    push_root(e); push_root(env);
    r = nil;
    while (1) {
      a = eval(e->cdr->car, env);
      if (a == nil || (a->tag == 0 && a->num == 0)) break;
      b = e->cdr->cdr;
      while (b != nil) { r = eval(b->car, env); b = b->cdr; }
    }
    pop_roots(2);
    return r;
  }
  /* builtin operators on evaluated arguments */
  f = e->car;
  if (f == sym_plus || f == sym_minus || f == sym_times || f == sym_lt
      || f == sym_eq) {
    push_root(e); push_root(env);
    args = eval_list(e->cdr, env);
    pop_roots(2);
    a = args->car;
    b = args->cdr->car;
    if (f == sym_plus) return mknum(a->num + b->num);
    if (f == sym_minus) return mknum(a->num - b->num);
    if (f == sym_times) return mknum(a->num * b->num);
    if (f == sym_lt) return mknum(a->num < b->num);
    return mknum(a->num == b->num);
  }
  if (f == sym_cons || f == sym_car || f == sym_cdr || f == sym_nullp) {
    push_root(e); push_root(env);
    args = eval_list(e->cdr, env);
    pop_roots(2);
    if (f == sym_cons) return cons(args->car, args->cdr->car);
    if (f == sym_car) return args->car->car;
    if (f == sym_cdr) return args->car->cdr;
    if (args->car == nil) return mknum(1);
    return mknum(0);
  }
  /* application */
  push_root(e); push_root(env);
  a = eval(e->car, env);
  push_root(a);
  args = eval_list(e->cdr, env);
  pop_roots(3);
  return apply(a, args);
}

/* build expressions programmatically (no reader needed) */
struct obj *L1(struct obj *a) { return cons(a, nil); }
struct obj *L2(struct obj *a, struct obj *b) {
  struct obj *t;
  push_root(a);
  t = L1(b);
  pop_roots(1);
  return cons(a, t);
}
struct obj *L3(struct obj *a, struct obj *b, struct obj *c) {
  struct obj *t;
  push_root(a);
  t = L2(b, c);
  pop_roots(1);
  return cons(a, t);
}
struct obj *L4(struct obj *a, struct obj *b, struct obj *c, struct obj *d) {
  struct obj *t;
  push_root(a);
  t = L3(b, c, d);
  pop_roots(1);
  return cons(a, t);
}

int main(void) {
  struct obj *fib;
  struct obj *n;
  struct obj *x;
  struct obj *expr;
  struct obj *r;
  int i;
  int check;
  nil = (struct obj *)malloc((int)sizeof(struct obj));
  nil->tag = 5;
  nil->car = 0; nil->cdr = 0; nil->env = 0; nil->mark = 0; nil->next = 0;
  sym_list = nil;
  global_env = nil;
  sym_quote = intern("quote"); sym_if = intern("if");
  sym_define = intern("define"); sym_lambda = intern("lambda");
  sym_plus = intern("+"); sym_minus = intern("-"); sym_times = intern("*");
  sym_lt = intern("<"); sym_eq = intern("=");
  sym_cons = intern("cons"); sym_car = intern("car"); sym_cdr = intern("cdr");
  sym_nullp = intern("null?"); sym_while = intern("while");
  sym_set = intern("set!");
  fib = intern("fib");
  n = intern("n");
  x = intern("x");

  /* (define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))) */
  expr =
    L3(sym_define, fib,
       L3(sym_lambda, L1(n),
          L4(sym_if, L3(sym_lt, n, mknum(2)), n,
             L3(sym_plus,
                L2(fib, L3(sym_minus, n, mknum(1))),
                L2(fib, L3(sym_minus, n, mknum(2)))))));
  push_root(expr);
  eval(expr, global_env);
  pop_roots(1);

  check = 0;
  for (i = 0; i < %d; i++) {
    expr = L2(fib, mknum(%d));
    push_root(expr);
    r = eval(expr, global_env);
    pop_roots(1);
    check += r->num;
    print_int(r->num); putchar(10);
  }

  /* list building through interpreted set!/cons, then an interpreted
     while loop that sums and pops the list */
  eval(L3(sym_define, x, L2(sym_quote, nil)), global_env);
  for (i = 0; i < %d; i++) {
    expr = L3(sym_set, x, L3(sym_cons, mknum(i), x));
    push_root(expr);
    eval(expr, global_env);
    pop_roots(1);
  }
  /* sum the list in interpreted code:
     (define s 0) (while (null? x) ...) -- sum via car/cdr */
  eval(L3(sym_define, intern("s"), mknum(0)), global_env);
  expr =
    L4(sym_while,
       L3(sym_eq, L2(sym_nullp, x), mknum(0)),
       L3(sym_set, intern("s"),
          L3(sym_plus, intern("s"), L2(sym_car, x))),
       L3(sym_set, x, L2(sym_cdr, x)));
  push_root(expr);
  eval(expr, global_env);
  pop_roots(1);
  r = env_lookup(global_env, intern("s"));
  print_int(r->num); putchar(10);
  check += r->num + gc_count;
  print_int(check); putchar(10);
  return 0;
}
|}
      iters fib_n list_n
  in
  { name = "li"; source }

(* --- compress: LZW --- *)

let compress ~size =
  let input_len = match size with Test -> 6000 | Ref -> 60000 in
  let source =
    Printf.sprintf
      {|
/* compress: LZW compression + decompression over synthetic text */

int INPUT_LEN = %d;

char *input;
int *codes;          /* compressed output */
int ncodes = 0;

/* open-addressed hash table, SPEC-compress style */
int TAB_SIZE = 16384;        /* power of two */
int *tab_key;                /* (prefix << 8) | byte, or -1 */
int *tab_code;

int MAXCODE = 4096;

char *dict_suffix;
int *dict_prefix;

/* markov-ish text generator: letters with repetition */
void gen_input(void) {
  int i;
  int prev;
  int r;
  prev = 'a';
  for (i = 0; i < INPUT_LEN; i++) {
    r = rand() %% 100;
    if (r < 55) {
      /* repeat previous or near-previous character */
      input[i] = (char)prev;
    } else if (r < 85) {
      prev = 'a' + rand() %% 16;
      input[i] = (char)prev;
    } else if (r < 95) {
      input[i] = ' ';
      prev = 'a' + rand() %% 26;
    } else {
      prev = 'a' + rand() %% 26;
      input[i] = (char)prev;
    }
  }
}

int hash_lookup(int key) {
  int h;
  int probes;
  h = ((key * 2654435761u) >> 16) & (TAB_SIZE - 1);
  probes = 0;
  while (tab_key[h] != -1 && tab_key[h] != key) {
    h = (h + 1) & (TAB_SIZE - 1);
    probes++;
    if (probes > TAB_SIZE) return -1;
  }
  return h;
}

void do_compress(void) {
  int next_code;
  int prefix;
  int i;
  int c;
  int key;
  int h;
  for (i = 0; i < TAB_SIZE; i++) tab_key[i] = -1;
  next_code = 256;
  prefix = (int)input[0];
  for (i = 1; i < INPUT_LEN; i++) {
    c = (int)input[i];
    key = (prefix << 8) | c;
    h = hash_lookup(key);
    if (h >= 0 && tab_key[h] == key) {
      prefix = tab_code[h];
    } else {
      codes[ncodes] = prefix;
      ncodes++;
      if (next_code < MAXCODE && h >= 0) {
        tab_key[h] = key;
        tab_code[h] = next_code;
        dict_prefix[next_code] = prefix;
        dict_suffix[next_code] = (char)c;
        next_code++;
      }
      prefix = c;
    }
  }
  codes[ncodes] = prefix;
  ncodes++;
}

char *decomp;
int decomp_len = 0;

int emit_code(int code) {
  /* expand one code, returns first byte */
  char stack[512];
  int sp;
  int first;
  sp = 0;
  while (code >= 256) {
    stack[sp] = dict_suffix[code];
    sp++;
    code = dict_prefix[code];
  }
  first = code;
  decomp[decomp_len] = (char)code;
  decomp_len++;
  while (sp > 0) {
    sp--;
    decomp[decomp_len] = stack[sp];
    decomp_len++;
  }
  return first;
}

void do_decompress(void) {
  int i;
  for (i = 0; i < ncodes; i++) emit_code(codes[i]);
}

int main(void) {
  int i;
  unsigned check;
  input = malloc(INPUT_LEN + 8);
  codes = (int *)malloc(4 * (INPUT_LEN + 8));
  tab_key = (int *)malloc(4 * TAB_SIZE);
  tab_code = (int *)malloc(4 * TAB_SIZE);
  dict_suffix = malloc(MAXCODE + 8);
  dict_prefix = (int *)malloc(4 * MAXCODE + 32);
  decomp = malloc(INPUT_LEN + 8);
  srand(20260705);
  gen_input();
  do_compress();
  print_int(INPUT_LEN); putchar(10);
  print_int(ncodes); putchar(10);
  do_decompress();
  if (decomp_len != INPUT_LEN) { print_str("length mismatch"); putchar(10); return 1; }
  for (i = 0; i < INPUT_LEN; i++) {
    if (decomp[i] != input[i]) { print_str("data mismatch"); putchar(10); return 1; }
  }
  check = 0u;
  for (i = 0; i < ncodes; i++) check = check * 31u + (unsigned)codes[i];
  print_int((int)(check & 0xFFFFFF)); putchar(10);
  print_str("ok"); putchar(10);
  return 0;
}
|}
      input_len
  in
  { name = "compress"; source }

(* --- alvinn: neural net training --- *)

let alvinn ~size =
  let n_in, n_hid, n_out, epochs, n_pat =
    match size with
    | Test -> (32, 12, 4, 3, 8)
    | Ref -> (96, 24, 8, 12, 16)
  in
  let source =
    Printf.sprintf
      {|
/* alvinn: MLP forward/backward training on synthetic patterns */

int N_IN = %d;
int N_HID = %d;
int N_OUT = %d;
int EPOCHS = %d;
int N_PAT = %d;

double w1[32][128];       /* [hid][in]  (sized at maxima) */
double w2[16][32];        /* [out][hid] */
double hid[32];
double out[16];
double delta_o[16];
double delta_h[32];
double pats[16][128];
double targ[16][16];

double LRATE = 0.15;

double drand(void) {
  return (double)(rand() %% 10000) / 10000.0;
}

void init(void) {
  int i; int j;
  for (i = 0; i < N_HID; i++)
    for (j = 0; j < N_IN; j++)
      w1[i][j] = drand() * 0.4 - 0.2;
  for (i = 0; i < N_OUT; i++)
    for (j = 0; j < N_HID; j++)
      w2[i][j] = drand() * 0.4 - 0.2;
  for (i = 0; i < N_PAT; i++) {
    int k;
    for (j = 0; j < N_IN; j++) pats[i][j] = drand();
    for (j = 0; j < N_OUT; j++) targ[i][j] = 0.1;
    k = i %% N_OUT;
    targ[i][k] = 0.9;
  }
}

double sigmoid(double x) {
  return 1.0 / (1.0 + exp(-x));
}

double train_one(double *pat, double *t) {
  int i; int j;
  double sum;
  double err;
  /* forward */
  for (i = 0; i < N_HID; i++) {
    sum = 0.0;
    for (j = 0; j < N_IN; j++) sum += w1[i][j] * pat[j];
    hid[i] = sigmoid(sum);
  }
  for (i = 0; i < N_OUT; i++) {
    sum = 0.0;
    for (j = 0; j < N_HID; j++) sum += w2[i][j] * hid[j];
    out[i] = sigmoid(sum);
  }
  /* backward */
  err = 0.0;
  for (i = 0; i < N_OUT; i++) {
    double d;
    d = t[i] - out[i];
    err += d * d;
    delta_o[i] = d * out[i] * (1.0 - out[i]);
  }
  for (j = 0; j < N_HID; j++) {
    sum = 0.0;
    for (i = 0; i < N_OUT; i++) sum += delta_o[i] * w2[i][j];
    delta_h[j] = sum * hid[j] * (1.0 - hid[j]);
  }
  for (i = 0; i < N_OUT; i++)
    for (j = 0; j < N_HID; j++)
      w2[i][j] += LRATE * delta_o[i] * hid[j];
  for (i = 0; i < N_HID; i++)
    for (j = 0; j < N_IN; j++)
      w1[i][j] += LRATE * delta_h[i] * pat[j];
  return err;
}

int main(void) {
  int e; int p;
  double err;
  srand(424242);
  init();
  for (e = 0; e < EPOCHS; e++) {
    err = 0.0;
    for (p = 0; p < N_PAT; p++) {
      err += train_one(pats[p], targ[p]);
    }
    print_int((int)(err * 100000.0)); putchar(10);
  }
  print_str("done"); putchar(10);
  return 0;
}
|}
      n_in n_hid n_out epochs n_pat
  in
  { name = "alvinn"; source }

(* --- eqntott: product-term sorting --- *)

let eqntott ~size =
  let n_terms, n_vars, rounds =
    match size with Test -> (400, 16, 2) | Ref -> (2500, 24, 4)
  in
  let source =
    Printf.sprintf
      {|
/* eqntott: generate product terms, sort them with a comparison function
   (the cmppt hot spot), dedup, build a truth-table slice */

int N_TERMS = %d;
int N_VARS = %d;
int ROUNDS = %d;

char *terms;   /* N_TERMS * N_VARS entries: 0, 1, 2=dont-care */
int *order;    /* permutation of term indices, sorted via qsort */

/* the famous hot spot: compare two product terms element-wise */
int cmppt(char *pa, char *pb) {
  int a; int b;
  int i;
  char *ta;
  char *tb;
  a = *(int *)pa;
  b = *(int *)pb;
  ta = terms + a * N_VARS;
  tb = terms + b * N_VARS;
  for (i = 0; i < N_VARS; i++) {
    if (ta[i] < tb[i]) return -1;
    if (ta[i] > tb[i]) return 1;
  }
  return 0;
}

void gen_terms(int round) {
  int i; int j;
  int r;
  for (i = 0; i < N_TERMS; i++) {
    for (j = 0; j < N_VARS; j++) {
      r = rand() %% 10;
      if (r < 4) terms[i * N_VARS + j] = 0;
      else if (r < 8) terms[i * N_VARS + j] = 1;
      else terms[i * N_VARS + j] = 2;
    }
    /* make duplicates likely */
    if ((i & 7) == 3 && i > 8) {
      for (j = 0; j < N_VARS; j++)
        terms[i * N_VARS + j] = terms[(i - 8 + round %% 4) * N_VARS + j];
    }
  }
}

/* evaluate term against an assignment (bitvector) */
int term_matches(int t, unsigned assign) {
  int j;
  char v;
  for (j = 0; j < N_VARS; j++) {
    v = terms[t * N_VARS + j];
    if (v == 2) continue;
    if ((int)((assign >> j) & 1u) != (int)v) return 0;
  }
  return 1;
}

int main(void) {
  int i;
  int r;
  int dups;
  unsigned check;
  int ones;
  terms = malloc(N_TERMS * N_VARS + 8);
  order = (int *)malloc(4 * N_TERMS + 8);
  srand(777);
  check = 0u;
  for (r = 0; r < ROUNDS; r++) {
    gen_terms(r);
    for (i = 0; i < N_TERMS; i++) order[i] = i;
    qsort((char *)order, N_TERMS, 4, &cmppt);
    /* verify sortedness + count duplicates */
    dups = 0;
    for (i = 1; i < N_TERMS; i++) {
      int c;
      c = cmppt((char *)&order[i - 1], (char *)&order[i]);
      if (c > 0) { print_str("sort failed"); putchar(10); return 1; }
      if (c == 0) dups++;
    }
    print_int(dups); putchar(10);
    /* truth-table slice: evaluate first terms on 256 assignments */
    ones = 0;
    for (i = 0; i < 256; i++) {
      int t;
      for (t = 0; t < 32; t++) {
        if (term_matches(order[t], (unsigned)(i * 97 + r))) ones++;
      }
    }
    print_int(ones); putchar(10);
    check = check * 131u + (unsigned)dups * 7u + (unsigned)ones;
  }
  print_int((int)(check & 0xFFFFFF)); putchar(10);
  return 0;
}
|}
      n_terms n_vars rounds
  in
  { name = "eqntott"; source }

let all ~size = [ li ~size; compress ~size; alvinn ~size; eqntott ~size ]

let by_name ~size name =
  List.find_opt (fun w -> String.equal w.name name) (all ~size)

(* --- guest-ISA workloads: StackVM assembly analogues --- *)

(* Ports of the checksum (compress-analogue: LCG data + hash folding) and
   sort (eqntott-analogue: comparison-dominated insertion sort) kernels to
   the StackVM guest ISA, as assembly text for [Omni_guest.Asm]. These are
   plain strings — this library stays independent of the guest front-end;
   the harness and tests assemble and lift them. Like the MiniC workloads,
   inputs come from a fixed-seed LCG computed in-program, and each prints
   intermediate values and a final checksum, so the differential suite can
   require byte-identical output from the guest oracle and every engine. *)
module Guest = struct
  type t = { name : string; asm : string }

  (* LCG-filled scratch memory folded with FNV-1a, [rounds] times over. *)
  let checksum ~size =
    let n, rounds = match size with Test -> (192, 2) | Ref -> (4096, 6) in
    let asm =
      Printf.sprintf
        {|# checksum: LCG fill + FNV-1a fold over scratch memory
.mem %d

.func hashstep 2 0
    # hashstep(acc, v) = (acc ^ v) * 16777619; args are locals 0 and 1
    get 0
    get 1
    xor
    push 16777619
    mul
    ret

.func main 0 4
    # locals: 0=i 1=seed 2=acc 3=rounds
    push 987654321
    set 1
    push 2166136261
    set 2
    push %d
    set 3
round:
    get 3
    brz done
    push 0
    set 0
fill:
    get 0
    push %d
    lt
    brz fold
    get 1  push 1103515245  mul  push 12345  add  set 1
    get 0
    get 1  push 5  shr
    stm
    get 0  push 1  add  set 0
    jmp fill
fold:
    push 0
    set 0
foldloop:
    get 0
    push %d
    lt
    brz roundend
    get 2
    get 0  ldm
    call hashstep
    set 2
    get 0  push 1  add  set 0
    jmp foldloop
roundend:
    get 2  push 16777215  and  sys print_int
    push 10  sys put_char
    get 3  push 1  sub  set 3
    jmp round
done:
    get 2  sys print_int
    push 10  sys put_char
    push 0
    halt
|}
        n rounds n n
    in
    { name = "g_checksum"; asm }

  (* Insertion sort over LCG-filled memory, then a sortedness check and a
     checksum of the sorted array through a called helper. *)
  let sort ~size =
    let n = match size with Test -> 48 | Ref -> 448 in
    let asm =
      Printf.sprintf
        {|# sort: LCG fill + insertion sort + verify + checksum
.mem %d

.func cksum 2 0
    # cksum(acc, v) = acc * 31 + v; args are locals 0 and 1
    get 0
    push 31
    mul
    get 1
    add
    ret

.func main 0 5
    # locals: 0=i 1=j 2=key 3=seed 4=acc
    push 20260808
    set 3
    push 0
    set 0
fill:
    get 0  push %d  lt  brz sort
    get 3  push 1103515245  mul  push 12345  add  set 3
    get 0
    get 3  push 7  shr  push 1023  and
    stm
    get 0  push 1  add  set 0
    jmp fill
sort:
    push 1
    set 0
outer:
    get 0  push %d  lt  brz verify
    get 0  ldm  set 2
    get 0  push 1  sub  set 1
inner:
    get 1  push 0  lt  brnz place
    get 1  ldm  get 2  gt  brz place
    get 1  push 1  add
    get 1  ldm
    stm
    get 1  push 1  sub  set 1
    jmp inner
place:
    get 1  push 1  add
    get 2
    stm
    get 0  push 1  add  set 0
    jmp outer
verify:
    push 0  ldm  set 4
    push 1
    set 0
vloop:
    get 0  push %d  lt  brz report
    get 0  push 1  sub  ldm
    get 0  ldm
    gt
    brnz bad
    get 4
    get 0  ldm
    call cksum
    set 4
    get 0  push 1  add  set 0
    jmp vloop
bad:
    push -1  sys print_int
    push 10  sys put_char
    push 1
    halt
report:
    get 4  push 16777215  and  sys print_int
    push 10  sys put_char
    push 0
    halt
|}
        n n n n
    in
    { name = "g_sort"; asm }

  let all ~size = [ checksum ~size; sort ~size ]

  let by_name ~size name =
    List.find_opt (fun w -> String.equal w.name name) (all ~size)
end
