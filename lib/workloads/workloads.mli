(** The four SPEC92-analogue benchmark programs, written in MiniC.

    Each mirrors the computational character of the SPEC92 program the
    paper measures (DESIGN.md §2):

    - [li]: a small Lisp interpreter with a mark-sweep GC (pointer chasing,
      branches, call-heavy);
    - [compress]: LZW compression + decompression over synthetic text
      (integer ops, hash-table loads/stores);
    - [alvinn]: multi-layer-perceptron training (double-precision FP);
    - [eqntott]: product-term truth-table sorting dominated by a comparison
      routine called through qsort (integer compares, indirect calls).

    Inputs are generated in-program from a fixed-seed LCG, so every
    execution engine sees identical work; each program prints intermediate
    values and a final checksum. *)

type size =
  | Test  (** small: fast enough for the differential test suite *)
  | Ref  (** benchmark size used for EXPERIMENTS.md *)

type t = { name : string; source : string }

val li : size:size -> t
val compress : size:size -> t
val alvinn : size:size -> t
val eqntott : size:size -> t

val all : size:size -> t list
val by_name : size:size -> string -> t option

(** Guest-ISA analogues of the integer workloads, as StackVM assembly text
    (see [Omni_guest.Asm] for the syntax). Plain strings: this library
    does not depend on the guest front-end; callers assemble and lift.
    Same conventions as the MiniC set — fixed-seed LCG inputs computed
    in-program, intermediate prints, and a final checksum, so output must
    be byte-identical across the guest oracle and every engine. *)
module Guest : sig
  type t = { name : string; asm : string }

  val checksum : size:size -> t
  (** [g_checksum]: LCG-filled scratch memory folded with FNV-1a (the
      compress-analogue: integer ops + memory traffic). *)

  val sort : size:size -> t
  (** [g_sort]: insertion sort over LCG data with a sortedness check (the
      eqntott-analogue: comparison-dominated loops). *)

  val all : size:size -> t list
  val by_name : size:size -> string -> t option
end
