(** Deterministic fault injection for the distribution protocol.

    A fault {e plan} says what goes wrong on the wire and where; {!wrap}
    applies it to any {!Transport.conn} — the in-memory pair and real
    sockets misbehave identically. The network analogue of the fail-stop
    discipline SFI applies to memory: the resilience suite uses plans to
    prove every injected fault becomes a typed, observable, recoverable
    event (see [test/test_fault.ml]).

    One {!arm}ed plan can wrap many connections in sequence (a retrying
    client re-dials after a fault): a single-fault plan fires exactly once
    across all of them, a {!seeded} plan keeps rolling its dice; the
    {!injected} count and the [net.fault.injected] counter span the whole
    sequence. Frame and byte positions are counted per connection. *)

(** What goes wrong with the targeted bytes. *)
type kind =
  | Drop  (** the frame vanishes; the stream continues after it *)
  | Corrupt  (** one byte is flipped in place *)
  | Truncate  (** a prefix is delivered, then the wire is cut *)
  | Stall
      (** nothing more arrives and the read raises {!Transport.Timeout} —
          even on the in-memory pair, so timeout handling is testable
          without real sockets or real waiting *)
  | Close  (** the underlying connection is closed outright *)

(** Which direction of the wrapped connection's traffic is faulted. *)
type dir = Send | Recv

(** Where the fault strikes: the [n]-th protocol frame in that direction
    (0-based; [skew] bytes into the frame), or an absolute byte offset of
    the direction's stream. On the send path a frame is one [send] call
    (the codec writes exactly one frame per call); on the receive path
    frame boundaries are recovered by tracking the 18-byte headers. *)
type site = Frame of int | Byte of int

type plan =
  | Fault of { kind : kind; dir : dir; site : site; skew : int }
      (** one fault, at one place, once *)
  | Seeded of { seed : int; rate : float; kinds : kind list }
      (** probabilistic mode: each frame in either direction is faulted
          independently with probability [rate], with kind and offset
          drawn from a {!Omni_util.Lcg} stream seeded by [seed] — fully
          reproducible *)

val fault : ?skew:int -> kind -> dir -> site -> plan
(** [skew] (default 0) offsets a [Frame] site into the frame; ignored
    for [Byte] sites. *)

val seeded : ?kinds:kind list -> seed:int -> rate:float -> unit -> plan
(** [kinds] defaults to all five. @raise Invalid_argument unless
    [0. <= rate <= 1.]. *)

val kind_name : kind -> string

(** An armed plan: the plan plus its cross-connection state (fired flag,
    PRNG position, injection count). *)
type armed

val arm : ?metrics:Omni_obs.Metrics.t -> plan -> armed
(** [metrics], when given, receives counter [net.fault.injected] — pass
    the serving registry so injected faults land next to the [net.*]
    serving counters they explain. *)

val injected : armed -> int
(** How many faults this armed plan has injected so far, across every
    connection it wrapped. *)

val wrap : armed -> Transport.conn -> Transport.conn
(** The same connection, misbehaving per the plan. Bytes that survive
    pass through unmodified and in order; [close] closes the underlying
    connection. After a [Truncate]/[Close] fires the wire is cut: sends
    are swallowed and reads report end of stream. After a [Stall] fires
    every read raises {!Transport.Timeout}. *)
