(** Protocol messages: what travels inside a {!Frame}.

    Four requests and five responses. One request frame yields exactly
    one response frame; {!Error} is the only response a well-behaved
    server sends for input it cannot serve — carrying a machine-readable
    {!err_class} so clients can react without parsing prose.

    The codec is total in both directions: [decode_* (encode_* m) = Ok m]
    for every message, and any byte string — truncated, corrupted,
    trailing garbage — decodes to [Error _], never an exception
    ([test/test_net.ml] checks both properties with qcheck). *)

module Exec = Omni_service.Exec
module Machine = Omni_targets.Machine

(** Why a request was refused. *)
type err_class =
  | E_decode  (** malformed message or module bytes — resending the same
                  bytes cannot help (terminal for clients) *)
  | E_verifier_rejected
      (** the static SFI verifier refused the (fresh or cached)
          translation *)
  | E_unknown_handle  (** a handle this server never issued *)
  | E_limit_exceeded  (** frame-size / segment-fit / admission cap *)
  | E_internal  (** anything else; the daemon survives it *)
  | E_bad_frame
      (** the frame itself was damaged in transit (bad magic/version,
          truncation, checksum mismatch) — the request may never have
          been seen intact, so resending it is safe and useful
          (retryable for clients; see {!Omni_net.Retry}) *)
  | E_module_fault
      (** the module itself crashed ([Vm_fault]) — deterministic for the
          same request, so terminal for clients: retrying re-crashes it.
          The message leads with the fault code (see {!fault_message}) *)
  | E_quarantined
      (** the server's circuit breaker is refusing this module after
          repeated deterministic faults; terminal until the TTL expires
          or an operator clears it *)
  | E_certificate_invalid
      (** the run demanded a safety certificate ([rs_want_cert] against a
          server in require-cert mode, or [omnid --require-cert]) and the
          translation has none, or its witness failed the check —
          deterministic, so terminal for clients *)
  | E_overloaded
      (** the server's work queue is full — transient by definition, so
          retryable-with-backoff for clients ({!Omni_net.Retry} absorbs
          it); the request was refused before any work was done, so
          resending it is safe *)

val err_class_name : err_class -> string
val err_class_code : err_class -> int

val fault_message : Omnivm.Fault.t -> string
(** The structured message of an {!E_module_fault} error:
    ["fault-code=<code> <prose>"]. *)

val fault_code_of_message : string -> int option
(** Extract the machine-readable fault code from an {!E_module_fault}
    message; [None] if the message does not carry one. *)

(** Translation mode requested over the wire. [M_default] derives the
    mode from the [rs_sfi] flag exactly as [Api.run] does — the common
    case, and the one that guarantees remote runs are bit-identical to
    local ones. [M_policy] selects an explicit SFI policy mode for the
    standard module layout; [M_native] requests a native compiler
    baseline (no sandboxing). *)
type mode_spec =
  | M_default
  | M_policy of {
      pmode : Omni_sfi.Policy.mode;
      protect_reads : bool;
      pad : Omni_sfi.Policy.pad;
    }
  | M_native of Machine.tier

(** A [Run] request: which stored module, on which engine, under which
    sandboxing configuration, with how much fuel ([None] = the server's
    generous default, same as [Api.run]). *)
type run_spec = {
  rs_handle : int64;  (** content digest returned by [Submitted] *)
  rs_engine : Exec.engine;
  rs_sfi : bool;
  rs_mode : mode_spec;
  rs_fuel : int option;
  rs_deadline_s : float option;
      (** wall-clock budget for the run, enforced by the server's
          cooperative watchdog ([None] = the server's default, possibly
          none); expiry is a [Deadline_exceeded] module fault *)
  rs_want_cert : bool;
      (** ship the translation's safety certificate (encoded omni-cert/1
          bytes) back with the result, when one exists *)
}

type req =
  | Ping
  | Submit of string  (** wire-format module bytes *)
  | Run of run_spec
  | Stats  (** service counters snapshot *)

type resp =
  | Pong
  | Submitted of int64  (** content handle (FNV-1a/64 digest) *)
  | Ran of Exec.run_result * string option
      (** the full result, faults and detailed statistics included — a
          remote run reports exactly what a local one does — plus the
          encoded safety certificate when the request set [rs_want_cert]
          and the run went through a certified translation *)
  | Stats_json of string
  | Error of err_class * string

(** {1 Frame tags} (the [tag] byte of {!Frame.t}) *)

val tag_ping : int
val tag_submit : int
val tag_run : int
val tag_stats : int
val tag_pong : int
val tag_submitted : int
val tag_ran : int
val tag_stats_json : int
val tag_error : int

(** {1 Codec} *)

val encode_req : req -> Frame.t
val decode_req : Frame.t -> (req, string) result
val encode_resp : resp -> Frame.t
val decode_resp : Frame.t -> (resp, string) result
