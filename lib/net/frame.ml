(* Versioned, length-prefixed, checksummed frames. Decoding is total:
   every hostile input maps to a typed error, never an exception — the
   admission property the server loop rests on. *)

let magic = "OMNI"
let version = 1
let header_size = 4 + 1 + 1 + 4 + 8
let max_payload = 16 * 1024 * 1024

type t = { tag : int; payload : string }

type error =
  | Eof
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Too_large of { length : int; max : int }
  | Corrupt

let error_to_string = function
  | Eof -> "end of stream"
  | Truncated -> "truncated frame (short read)"
  | Bad_magic -> "bad magic (not an OMNI frame)"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Too_large { length; max } ->
      Printf.sprintf "declared payload length %d exceeds cap %d" length max
  | Corrupt -> "frame checksum mismatch"

(* The checksum covers the header's semantic bytes — version, tag,
   declared length — as well as the payload, so a single flipped bit
   anywhere a decoder trusts surfaces as a typed error instead of a
   checksum-valid frame with a nonsense tag. (Magic and version damage
   are caught structurally before the checksum is consulted.) *)
let checksum ~tag ~len payload =
  let meta = Bytes.create 6 in
  Bytes.set_uint8 meta 0 version;
  Bytes.set_uint8 meta 1 tag;
  Bytes.set_int32_be meta 2 (Int32.of_int len);
  Omni_util.Fnv64.digest_string
    ~seed:(Omni_util.Fnv64.digest_bytes meta)
    payload

let encode { tag; payload } =
  if tag < 0 || tag > 0xff then invalid_arg "Frame.encode: tag not one byte";
  let len = String.length payload in
  let b = Bytes.create (header_size + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 version;
  Bytes.set_uint8 b 5 tag;
  Bytes.set_int32_be b 6 (Int32.of_int len);
  Bytes.set_int64_be b 10 (checksum ~tag ~len payload);
  Bytes.blit_string payload 0 b header_size len;
  Bytes.unsafe_to_string b

(* Parse a complete header (first [header_size] bytes of [h]); shared by
   the buffer and stream decoders. Returns the declared payload length. *)
let parse_header ?(max = max_payload) (h : string) : (int * int, error) result
    =
  if not (String.equal (String.sub h 0 4) magic) then Error Bad_magic
  else
    let v = Char.code h.[4] in
    if v <> version then Error (Bad_version v)
    else
      let tag = Char.code h.[5] in
      let len = Int32.to_int (String.get_int32_be h 6) land 0xffffffff in
      if len > max then Error (Too_large { length = len; max })
      else Ok (tag, len)

let decode ?max s ~pos =
  let n = String.length s in
  if pos < 0 || pos > n then invalid_arg "Frame.decode: pos out of range";
  if pos = n then Error Eof
  else if n - pos < header_size then Error Truncated
  else
    match parse_header ?max (String.sub s pos header_size) with
    | Error _ as e -> e
    | Ok (tag, len) ->
        if n - pos - header_size < len then Error Truncated
        else
          let payload = String.sub s (pos + header_size) len in
          if
            not
              (Int64.equal
                 (checksum ~tag ~len payload)
                 (String.get_int64_be s (pos + 10)))
          then Error Corrupt
          else Ok ({ tag; payload }, pos + header_size + len)

let read ?max (recv : bytes -> int -> int -> int) : (t, error) result =
  (* Fill [buf.(pos..len)]; Ok false = end of stream before the first
     byte, Error Truncated = end of stream mid-fill. *)
  let read_exact buf pos len =
    let got = ref 0 in
    let eof = ref false in
    while (not !eof) && !got < len do
      let n = recv buf (pos + !got) (len - !got) in
      if n <= 0 then eof := true else got := !got + n
    done;
    if !got = len then Ok true
    else if !got = 0 then Ok false
    else Error Truncated
  in
  let header = Bytes.create header_size in
  match read_exact header 0 header_size with
  | Error _ as e -> e
  | Ok false -> Error Eof
  | Ok true -> (
      match parse_header ?max (Bytes.to_string header) with
      | Error _ as e -> e
      | Ok (tag, len) -> (
          let body = Bytes.create len in
          match if len = 0 then Ok true else read_exact body 0 len with
          | Error _ as e -> e
          | Ok false -> Error Truncated
          | Ok true ->
              let payload = Bytes.unsafe_to_string body in
              if
                Int64.equal
                  (checksum ~tag ~len payload)
                  (Bytes.get_int64_be header 10)
              then Ok { tag; payload }
              else Error Corrupt))
