(* The serve loop: frames in, frames out, the process never dies.

   Dispatch is three layers of admission, each mapping failure to a
   typed Error response: the frame codec (magic/version/length/checksum),
   the message codec (tags/bounds), and the service itself (module
   decode, segment fit, handle lookup, SFI verification). Only a
   framing-level failure costs the connection — once the byte stream is
   out of sync there is no safe way to find the next frame — and even
   then the client is told why first.

   On top of dispatch sit the admission quotas: module size, fuel
   ceiling, per-connection request and byte caps. A quota refusal is an
   ordinary E_limit_exceeded response — typed, counted
   (net.limit.rejected), terminal for the client's retry policy. *)

module Service = Omni_service.Service
module Store = Omni_service.Store
module Cache = Omni_service.Cache
module Counters = Omni_service.Counters
module Supervise = Omni_service.Supervise
module Metrics = Omni_obs.Metrics
module Trace = Omni_obs.Trace
module M = Message

type config = {
  max_frame : int;
  read_timeout_s : float;
  max_module_bytes : int;
  max_fuel : int;
  max_requests_per_conn : int;
  max_conn_bytes : int;
  max_deadline_s : float;
  require_cert : bool;
  pool_size : int;
  queue_depth : int;
  fair_slice : int;
}

let default_config =
  {
    max_frame = Frame.max_payload;
    read_timeout_s = 30.;
    max_module_bytes = 0;
    max_fuel = 0;
    max_requests_per_conn = 0;
    max_conn_bytes = 0;
    max_deadline_s = 0.;
    require_cert = false;
    pool_size = 1;
    queue_depth = 64;
    fair_slice = 32;
  }

type session = { mutable s_requests : int; mutable s_bytes : int }

let new_session () = { s_requests = 0; s_bytes = 0 }

type t = {
  svc : Service.t;
  cfg : config;
  tracer : Trace.t;
  (* each domain traces into its own clone of [tracer] (shared sink and
     registry, private span stack), so pool workers cannot corrupt one
     another's stacks; lazily initialized per domain *)
  local_tracer : Trace.t Domain.DLS.key;
  (* digest -> handle for every module this server admitted; the wire
     names modules by digest, the store by abstract handle. Guarded by
     [h_mu] (leaf-level; held only across the table operation). *)
  h_mu : Mutex.t;
  handles : (int64, Store.handle) Hashtbl.t;
  (* net.* counters, registered in the service's own registry *)
  connections : Metrics.counter;
  requests : Metrics.counter;
  req_ping : Metrics.counter;
  req_submit : Metrics.counter;
  req_run : Metrics.counter;
  req_stats : Metrics.counter;
  errors : Metrics.counter;
  frame_errors : Metrics.counter;
  limit_rejected : Metrics.counter;
  timeouts : Metrics.counter;
  bytes_in : Metrics.counter;
  bytes_out : Metrics.counter;
  overloaded : Metrics.counter;
}

let create ?(config = default_config) ?tracer svc =
  let reg = Service.metrics svc in
  let tracer =
    match tracer with
    | Some t -> t
    | None -> Trace.make ~metrics:reg Trace.Null
  in
  let c name = Metrics.counter reg name in
  {
    svc;
    cfg = config;
    tracer;
    local_tracer = Domain.DLS.new_key (fun () -> Trace.clone tracer);
    h_mu = Mutex.create ();
    handles = Hashtbl.create 16;
    connections = c "net.connections";
    requests = c "net.requests";
    req_ping = c "net.req.ping";
    req_submit = c "net.req.submit";
    req_run = c "net.req.run";
    req_stats = c "net.req.stats";
    errors = c "net.errors";
    frame_errors = c "net.frame_errors";
    limit_rejected = c "net.limit.rejected";
    timeouts = c "net.timeouts";
    bytes_in = c "net.bytes_in";
    bytes_out = c "net.bytes_out";
    overloaded = c "net.overloaded";
  }

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let service t = t.svc
let config t = t.cfg

let req_name = function
  | M.Ping -> "ping"
  | M.Submit _ -> "submit"
  | M.Run _ -> "run"
  | M.Stats -> "stats"

(* Resolve a wire mode_spec to the optional Machine.mode Service.instantiate
   expects. M_default maps to None so the service derives the mode from the
   sfi flag exactly as Api.run does — the bit-identity guarantee. *)
let resolve_mode = function
  | M.M_default -> None
  | M.M_policy { pmode; protect_reads; pad } ->
      Some
        (Omni_targets.Machine.Mobile
           (Omni_sfi.Policy.make ~mode:pmode ~protect_reads ~pad ()))
  | M.M_native tier -> Some (Omni_targets.Machine.Native tier)

(* The safety certificate the cache holds for this run configuration, if
   any. Only translated runs have one; a [peek], so recency is not
   perturbed. *)
let certificate_for t ~engine ~sfi ~mode h =
  match engine with
  | Omni_service.Exec.Interp -> None
  | Omni_service.Exec.Fast -> None
  | Omni_service.Exec.Target arch ->
      Service.certificate ~sfi ?mode ~arch t.svc h

let dispatch t (req : M.req) : M.resp =
  match req with
  | M.Ping -> M.Pong
  | M.Stats -> M.Stats_json (Counters.to_json (Service.stats t.svc))
  | M.Submit bytes when
      t.cfg.max_module_bytes > 0
      && String.length bytes > t.cfg.max_module_bytes ->
      M.Error
        ( M.E_limit_exceeded,
          Printf.sprintf "module is %d bytes; this server admits at most %d"
            (String.length bytes) t.cfg.max_module_bytes )
  | M.Submit bytes -> (
      match Service.submit t.svc bytes with
      | h ->
          let d = Store.digest h in
          locked t.h_mu (fun () -> Hashtbl.replace t.handles d h);
          M.Submitted d
      | exception Omnivm.Wire.Bad_module msg -> M.Error (M.E_decode, msg)
      | exception Invalid_argument msg -> M.Error (M.E_limit_exceeded, msg)
      | exception Store.Collision _ ->
          M.Error (M.E_internal, "content digest collision"))
  | M.Run rs when
      t.cfg.max_fuel > 0
      && (match rs.M.rs_fuel with Some f -> f > t.cfg.max_fuel | None -> false)
    ->
      M.Error
        ( M.E_limit_exceeded,
          Printf.sprintf "fuel %d exceeds this server's ceiling of %d"
            (Option.get rs.M.rs_fuel) t.cfg.max_fuel )
  | M.Run rs when
      (match rs.M.rs_deadline_s with
      | Some d ->
          (not (Float.is_finite d))
          || d < 0.
          || (t.cfg.max_deadline_s > 0. && d > t.cfg.max_deadline_s)
      | None -> false) ->
      M.Error
        ( M.E_limit_exceeded,
          Printf.sprintf
            "deadline %gs is invalid or exceeds this server's ceiling of %gs"
            (Option.get rs.M.rs_deadline_s) t.cfg.max_deadline_s )
  | M.Run rs -> (
      match locked t.h_mu (fun () -> Hashtbl.find_opt t.handles rs.M.rs_handle)
      with
      | None ->
          M.Error
            ( M.E_unknown_handle,
              Printf.sprintf "no module %s on this server"
                (Omni_util.Fnv64.to_hex rs.M.rs_handle) )
      | Some h -> (
          (* an unfueled request runs under the server's ceiling, if any;
             deadlines resolve the same way *)
          let fuel =
            match (rs.M.rs_fuel, t.cfg.max_fuel) with
            | (Some _ as f), _ -> f
            | None, 0 -> None
            | None, m -> Some m
          in
          let deadline_s =
            match (rs.M.rs_deadline_s, t.cfg.max_deadline_s) with
            | (Some _ as d), _ -> d
            | None, 0. -> None
            | None, m -> Some m
          in
          match
            Service.instantiate ~engine:rs.M.rs_engine ~sfi:rs.M.rs_sfi
              ?mode:(resolve_mode rs.M.rs_mode) ?fuel ?deadline_s t.svc h
          with
          | r -> (
              (* The run's admission path already validated the witness
                 (fresh translations are certified, cache hits are
                 witness-checked), so attaching is a cache peek plus an
                 encode. In require-cert mode a translated run whose
                 configuration yields no certificate (SFI off, Guard
                 mode, native baseline) is refused: this daemon only
                 serves runs whose safety it can hand over. The
                 reference interpreter carries no translation and is
                 exempt. *)
              let cert =
                certificate_for t ~engine:rs.M.rs_engine ~sfi:rs.M.rs_sfi
                  ~mode:(resolve_mode rs.M.rs_mode) h
              in
              match (cert, t.cfg.require_cert, rs.M.rs_engine) with
              | None, true, Omni_service.Exec.Target _ ->
                  M.Error
                    ( M.E_certificate_invalid,
                      "this server requires certified translations; this \
                       run configuration has no safety certificate" )
              | _ ->
                  M.Ran
                    ( r,
                      if rs.M.rs_want_cert || t.cfg.require_cert then
                        Option.map Omni_cert.Certificate.encode cert
                      else None ))
          | exception Cache.Rejected msg ->
              M.Error (M.E_verifier_rejected, msg)
          | exception Store.Unknown_handle ->
              M.Error (M.E_unknown_handle, "handle expired")
          | exception Invalid_argument msg ->
              M.Error (M.E_limit_exceeded, msg)
          | exception Supervise.Quarantine.Quarantined { digest; fault; _ }
            ->
              M.Error
                ( M.E_quarantined,
                  Printf.sprintf
                    "module %s is quarantined after repeated faults \
                     (fault-code=%d %s)"
                    (Omni_util.Fnv64.to_hex digest)
                    (Omnivm.Fault.code fault)
                    (Omnivm.Fault.to_string fault) )
          (* A fault that escapes as an exception (rather than a Faulted
             outcome) is still the module's crash, not the daemon's: give
             it its own class so clients do not retry it as an internal
             hiccup. *)
          | exception Omnivm.Fault.Vm_fault f ->
              M.Error (M.E_module_fault, M.fault_message f)))

let handle_request t (req : M.req) : M.resp =
  Metrics.incr t.requests;
  Metrics.incr
    (match req with
    | M.Ping -> t.req_ping
    | M.Submit _ -> t.req_submit
    | M.Run _ -> t.req_run
    | M.Stats -> t.req_stats);
  let resp =
    Trace.with_current (Domain.DLS.get t.local_tracer) (fun () ->
        Trace.phase "net.request" ~attrs:[ ("msg", req_name req) ] (fun () ->
            try dispatch t req
            with e ->
              M.Error
                ( M.E_internal,
                  "unexpected exception: " ^ Printexc.to_string e )))
  in
  (match resp with M.Error _ -> Metrics.incr t.errors | _ -> ());
  resp

let send_resp t conn resp =
  (* every limit refusal, whatever produced it, is counted here *)
  (match resp with
  | M.Error (M.E_limit_exceeded, _) -> Metrics.incr t.limit_rejected
  | _ -> ());
  let bytes = Frame.encode (M.encode_resp resp) in
  Metrics.incr ~by:(String.length bytes) t.bytes_out;
  Transport.send conn bytes

(* A session-quota refusal: answer, count, drop the connection. The
   client may re-dial for a fresh session. *)
let over_quota t conn msg =
  Metrics.incr t.requests;
  Metrics.incr t.errors;
  send_resp t conn (M.Error (M.E_limit_exceeded, msg));
  `Closed

let step ?session t conn =
  match Frame.read ~max:t.cfg.max_frame (Transport.recv conn) with
  | Error Frame.Eof -> `Closed
  | Error e ->
      (* Framing is lost: answer with a typed error, then drop the
         connection. The daemon itself keeps serving. Every frame-level
         failure — including an oversized declared length, which is
         indistinguishable from a corrupted length field — is
         E_bad_frame: damaged in transit, retryable. Size admission
         proper (max_module_bytes) happens at dispatch, where the bytes
         are intact and the refusal is honest. *)
      Metrics.incr t.frame_errors;
      Metrics.incr t.requests;
      Metrics.incr t.errors;
      send_resp t conn (M.Error (M.E_bad_frame, Frame.error_to_string e));
      `Closed
  | Ok fr -> (
      let frame_bytes = Frame.header_size + String.length fr.Frame.payload in
      Metrics.incr ~by:frame_bytes t.bytes_in;
      let quota =
        match session with
        | None -> Ok ()
        | Some s ->
            s.s_requests <- s.s_requests + 1;
            s.s_bytes <- s.s_bytes + frame_bytes;
            if
              t.cfg.max_requests_per_conn > 0
              && s.s_requests > t.cfg.max_requests_per_conn
            then
              Error
                (Printf.sprintf "connection exceeded its request cap of %d"
                   t.cfg.max_requests_per_conn)
            else if t.cfg.max_conn_bytes > 0 && s.s_bytes > t.cfg.max_conn_bytes
            then
              Error
                (Printf.sprintf "connection exceeded its byte cap of %d"
                   t.cfg.max_conn_bytes)
            else Ok ()
      in
      match quota with
      | Error msg -> over_quota t conn msg
      | Ok () ->
          let resp =
            match M.decode_req fr with
            | Ok req -> handle_request t req
            | Error msg ->
                Metrics.incr t.requests;
                Metrics.incr t.errors;
                M.Error (M.E_decode, "bad request: " ^ msg)
          in
          send_resp t conn resp;
          `Handled)

let serve_conn t conn =
  Metrics.incr t.connections;
  Transport.set_read_timeout conn t.cfg.read_timeout_s;
  let session = new_session () in
  let rec loop () =
    match step ~session t conn with
    | `Handled -> loop ()
    | `Closed -> ()
    | exception Transport.Timeout -> Metrics.incr t.timeouts
    | exception _ -> Metrics.incr t.errors
  in
  Fun.protect ~finally:(fun () -> Transport.close conn) loop

(* --- the domain pool --- *)

(* The accept loop becomes a producer: it offers each accepted
   connection to a bounded queue and sheds with a typed E_overloaded
   refusal when the queue is full — backpressure a client's retry
   policy can absorb, instead of unbounded queueing the host cannot.

   Fairness: a worker serves at most [fair_slice] requests from one
   connection, then, if other connections are waiting, parks it back on
   the queue and takes the next — one chatty tenant cannot monopolize a
   worker while others starve. A parked connection keeps its session,
   so per-connection quotas span parks. *)

type pool = {
  srv : t;
  wq : (Transport.conn * session) Workq.t;
  mutable workers : unit Domain.t list;
}

let pool_create t =
  { srv = t; wq = Workq.create ~depth:(max 1 t.cfg.queue_depth) ();
    workers = [] }

let pool_offer pool conn =
  let t = pool.srv in
  Metrics.incr t.connections;
  Transport.set_read_timeout conn t.cfg.read_timeout_s;
  if Workq.try_push pool.wq (conn, new_session ()) then `Queued
  else begin
    (* refused before any work: safe and explicitly retryable *)
    Metrics.incr t.overloaded;
    Metrics.incr t.errors;
    (try
       send_resp t conn
         (M.Error
            ( M.E_overloaded,
              Printf.sprintf
                "server work queue is full (%d connections waiting); retry \
                 with backoff"
                (Workq.length pool.wq) ))
     with _ -> ());
    (try Transport.close conn with _ -> ());
    `Shed
  end

(* Serve one connection until it closes or its slice runs out with
   others waiting. Parking can fail (the queue filled meanwhile); then
   the worker just keeps serving — a live connection is never dropped
   for fairness. *)
let rec drain pool conn session budget =
  let t = pool.srv in
  match step ~session t conn with
  | `Closed -> Transport.close conn
  | exception Transport.Timeout ->
      Metrics.incr t.timeouts;
      Transport.close conn
  | exception _ ->
      Metrics.incr t.errors;
      Transport.close conn
  | `Handled ->
      if
        budget <= 1
        && Workq.length pool.wq > 0
        && Workq.try_push pool.wq (conn, session)
      then () (* parked; whichever worker pops it resumes the session *)
      else
        drain pool conn session
          (if budget <= 1 then t.cfg.fair_slice else budget - 1)

let worker_loop pool =
  let rec next () =
    match Workq.pop pool.wq with
    | None -> () (* closed: do not start new work *)
    | Some (conn, session) ->
        drain pool conn session pool.srv.cfg.fair_slice;
        next ()
  in
  next ()

let pool_start pool =
  if pool.workers <> [] then invalid_arg "Server.pool_start: already started";
  pool.workers <-
    List.init
      (max 1 pool.srv.cfg.pool_size)
      (fun _ -> Domain.spawn (fun () -> worker_loop pool))

let pool_stop pool =
  Workq.close pool.wq;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  (* dispose of connections the close abandoned *)
  let rec drop () =
    match Workq.try_pop pool.wq with
    | None -> ()
    | Some (conn, _) ->
        (try Transport.close conn with _ -> ());
        drop ()
  in
  drop ()

(* --- sockets --- *)

let listen addr =
  (match addr with
  | Transport.Unix_sock path -> (
      match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ())
  | Transport.Tcp _ -> ());
  let domain =
    match addr with
    | Transport.Unix_sock _ -> Unix.PF_UNIX
    | Transport.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Transport.sockaddr_of_address addr);
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let accept_loop ~stop listen_fd handle =
  while not (stop ()) do
    (* poll so [stop] is consulted even with no traffic *)
    match Unix.select [ listen_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept listen_fd with
        | fd, _ -> handle (Transport.of_fd ~descr:"client" fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let serve ?(stop = fun () -> false) t listen_fd =
  if t.cfg.pool_size <= 1 then
    (* the pre-pool path, unchanged: accept, serve to completion, repeat *)
    accept_loop ~stop listen_fd (serve_conn t)
  else begin
    let pool = pool_create t in
    pool_start pool;
    Fun.protect
      ~finally:(fun () -> pool_stop pool)
      (fun () ->
        accept_loop ~stop listen_fd (fun conn ->
            ignore (pool_offer pool conn)))
  end
