(* The calling side. A call is one frame out, one frame in; resilience
   is layered on top as pure policy: classify what went wrong, and when
   it is transient and the policy allows, abandon the connection,
   re-dial, and send again. Submit and Run are idempotent (deterministic
   execution over a content-addressed store), so a retry after a lost
   response is safe — at worst the server does the same work twice and
   answers the same bytes. *)

module Exec = Omni_service.Exec
module Trace = Omni_obs.Trace
module M = Message

exception Remote_error of M.err_class * string
exception Protocol_error of string
exception Connection_lost of string

(* The connection state, shared by every view of one client so a
   [with_policy] view and the original always talk over the same
   (possibly re-dialed) connection. *)
type core = {
  mutable conn : Transport.conn;
  redial : (unit -> Transport.conn) option;
  env : Retry.env;
}

type t = { core : core; retry : Retry.policy option }

let of_conn ?retry ?(env = Retry.sys_env) conn =
  { core = { conn; redial = None; env }; retry }

let with_policy ?retry t = { core = t.core; retry }

let connect ?retry ?(env = Retry.sys_env) ?(read_timeout = 0.) addr =
  let dial () =
    let conn = Transport.connect addr in
    if read_timeout > 0. then Transport.set_read_timeout conn read_timeout;
    conn
  in
  { core = { conn = dial (); redial = Some dial; env }; retry }

let loopback ?retry ?(env = Retry.sys_env) ?fault server =
  let dial () =
    let client_end, server_end = Transport.pair ~name:"loopback" () in
    let session = Server.new_session () in
    (* When the client waits for a response, run the server for one
       request — a synchronous cycle with no threads, no descriptors. *)
    Transport.on_stall client_end (fun () ->
        ignore (Server.step ~session server server_end));
    match fault with
    | None -> client_end
    | Some armed -> Fault.wrap armed client_end
  in
  { core = { conn = dial (); redial = Some dial; env }; retry }

let close t = Transport.close t.core.conn
let descr t = Transport.descr t.core.conn

let classify = function
  | Connection_lost _ -> Retry.Retryable
  | Remote_error (M.E_bad_frame, _) -> Retry.Retryable
  (* an overloaded refusal happens before any work, so a backed-off
     resend is both safe and the intended recovery *)
  | Remote_error (M.E_overloaded, _) -> Retry.Retryable
  | e -> Retry.classify e

let call_once t req =
  Transport.send t.core.conn (Frame.encode (M.encode_req req));
  match Frame.read (Transport.recv t.core.conn) with
  | Error e ->
      (* The response never arrived intact: the stream ended, stalled, or
         carried a damaged frame. The connection is unusable — but the
         request may simply be re-sent on a fresh one. *)
      raise (Connection_lost (Frame.error_to_string e))
  | Ok fr -> (
      match M.decode_resp fr with
      | Error msg -> raise (Protocol_error msg)
      | Ok (M.Error (cls, msg)) -> raise (Remote_error (cls, msg))
      | Ok resp -> resp)

let call t req =
  match t.retry with
  | None -> call_once t req
  | Some policy ->
      let redial () =
        match t.core.redial with
        | Some d ->
            (try Transport.close t.core.conn with _ -> ());
            t.core.conn <- d ()
        | None -> ()
      in
      Retry.run ~env:t.core.env
        ~on_retry:(fun ~attempt:_ ~delay_s:_ _ ->
          Trace.count "net.retry";
          redial ())
        ~classify policy
        (fun ~attempt ->
          Trace.phase "net.attempt"
            ~attrs:[ ("n", string_of_int attempt) ]
            (fun () -> call_once t req))

let unexpected what = raise (Protocol_error ("unexpected response to " ^ what))

let ping t = match call t M.Ping with M.Pong -> () | _ -> unexpected "ping"

let submit t bytes =
  match call t (M.Submit bytes) with
  | M.Submitted d -> d
  | _ -> unexpected "submit"

let run_cert ?(engine = Exec.Interp) ?(sfi = true) ?(mode = M.M_default)
    ?fuel ?deadline_s ?(want_cert = false) t handle =
  match
    call t
      (M.Run
         {
           M.rs_handle = handle;
           rs_engine = engine;
           rs_sfi = sfi;
           rs_mode = mode;
           rs_fuel = fuel;
           rs_deadline_s = deadline_s;
           rs_want_cert = want_cert;
         })
  with
  | M.Ran (r, cert) -> (r, cert)
  | _ -> unexpected "run"

let run ?engine ?sfi ?mode ?fuel ?deadline_s t handle =
  fst (run_cert ?engine ?sfi ?mode ?fuel ?deadline_s t handle)

let stats_json t =
  match call t M.Stats with
  | M.Stats_json j -> j
  | _ -> unexpected "stats"
