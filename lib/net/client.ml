module Exec = Omni_service.Exec
module M = Message

exception Remote_error of M.err_class * string
exception Protocol_error of string

type t = { conn : Transport.conn }

let of_conn conn = { conn }
let connect addr = of_conn (Transport.connect addr)

let loopback server =
  let client_end, server_end = Transport.pair ~name:"loopback" () in
  (* When the client waits for a response, run the server for one
     request — a synchronous cycle with no threads, no descriptors. *)
  Transport.on_stall client_end (fun () ->
      ignore (Server.step server server_end));
  of_conn client_end

let close t = Transport.close t.conn
let descr t = Transport.descr t.conn

let call t req =
  Transport.send t.conn (Frame.encode (M.encode_req req));
  match Frame.read (Transport.recv t.conn) with
  | Error e -> raise (Protocol_error (Frame.error_to_string e))
  | Ok fr -> (
      match M.decode_resp fr with
      | Error msg -> raise (Protocol_error msg)
      | Ok (M.Error (cls, msg)) -> raise (Remote_error (cls, msg))
      | Ok resp -> resp)

let unexpected what = raise (Protocol_error ("unexpected response to " ^ what))

let ping t = match call t M.Ping with M.Pong -> () | _ -> unexpected "ping"

let submit t bytes =
  match call t (M.Submit bytes) with
  | M.Submitted d -> d
  | _ -> unexpected "submit"

let run ?(engine = Exec.Interp) ?(sfi = true) ?(mode = M.M_default) ?fuel t
    handle =
  match
    call t
      (M.Run
         {
           M.rs_handle = handle;
           rs_engine = engine;
           rs_sfi = sfi;
           rs_mode = mode;
           rs_fuel = fuel;
         })
  with
  | M.Ran r -> r
  | _ -> unexpected "run"

let stats_json t =
  match call t M.Stats with
  | M.Stats_json j -> j
  | _ -> unexpected "stats"
