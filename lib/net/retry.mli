(** Retry policy for clients of the distribution protocol.

    A {!policy} is pure data — attempts, exponential backoff, jitter,
    an overall deadline; {!run} executes it against an operation,
    re-raising on terminal errors and retrying on transient ones. All
    time flows through an injectable {!env} (clock, sleep, PRNG), so the
    whole schedule is testable under a manual clock in microseconds with
    zero real sleeping ([test/test_fault.ml] qchecks the schedule).

    Classification is the caller's ({!val-run}'s [classify]); {!val-classify}
    is the standard transport-level verdict — timeouts, connection
    resets, and refused dials are retryable, everything else terminal.
    {!Client} extends it with protocol knowledge. Submit and Run are safe
    to retry: execution is deterministic and the store content-addressed,
    so a duplicate delivery returns the same handle and the same result. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay_s : float;  (** delay before the first retry *)
  backoff : float;  (** multiplier per further retry *)
  jitter : float;
      (** fraction of the delay randomized: each delay is scaled by a
          factor drawn uniformly from [1 - jitter, 1 + jitter] *)
  deadline_s : float;
      (** overall budget from first attempt; a retry never sleeps past
          it ([infinity] = none) *)
}

val default : policy
(** 4 attempts, 10 ms base, doubling, 10% jitter, 5 s deadline. *)

val delay_for : policy -> rand:(unit -> float) -> int -> float
(** The delay after failed attempt [n] (1-based):
    [base * backoff^(n-1)], jittered, clamped to >= 0. [rand] draws
    uniformly from [0, 1). *)

(** The injectable time/randomness environment. *)
type env = {
  clock : Omni_util.Clock.t;
  sleep : float -> unit;
  rand : unit -> float;  (** uniform in [0, 1) *)
}

val sys_env : env
(** CPU clock, [Unix.sleepf], a fixed-seed {!Omni_util.Lcg} stream. *)

val manual_env : ?start:float -> ?seed:int -> unit -> env
(** A fresh manual clock whose [sleep] advances it — deterministic
    schedules with zero real waiting. *)

type verdict = Retryable | Terminal

val classify : exn -> verdict
(** {!Transport.Timeout} and connection-level [Unix.Unix_error]s
    (refused, reset, aborted, unreachable, missing socket file, broken
    pipe, timed out) are [Retryable]; every other exception is
    [Terminal]. *)

val run :
  ?env:env ->
  ?on_retry:(attempt:int -> delay_s:float -> exn -> unit) ->
  classify:(exn -> verdict) ->
  policy ->
  (attempt:int -> 'a) ->
  'a
(** Run [f ~attempt:1], retrying per the policy. A [Terminal] failure,
    attempt exhaustion, or a delay that would cross the deadline
    re-raises the last exception unchanged. [on_retry] observes each
    scheduled retry before its sleep (attempt numbers the {e failed}
    attempt).
    @raise Invalid_argument if [max_attempts < 1]. *)
