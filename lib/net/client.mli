(** The client side: submit and run mobile modules against a daemon.

    One synchronous request/response call per operation. Three ways to
    get a connection: {!connect} (a live [omnid] over a Unix or TCP
    socket), {!of_conn} (any transport), and {!loopback} (an in-process
    server over the in-memory pair — byte-for-byte the same protocol,
    zero scheduling nondeterminism; what the tests and the remote
    benchmark use). *)

module Exec = Omni_service.Exec

exception Remote_error of Message.err_class * string
(** The server answered with a typed protocol error. *)

exception Protocol_error of string
(** The byte stream is not speaking the protocol: frame decode failure,
    unknown response tag, or a response kind that does not answer the
    request. The connection should be abandoned. *)

type t

val connect : Transport.address -> t
(** @raise Unix.Unix_error when the daemon is not reachable. *)

val of_conn : Transport.conn -> t

val loopback : Server.t -> t
(** A connection to [server] over the in-memory pair transport: each
    client read hands control to the server for one {!Server.step}. *)

val close : t -> unit
val descr : t -> string

val call : t -> Message.req -> Message.resp
(** Send one request, read one response. Raises {!Remote_error} on an
    [Error] response and {!Protocol_error} on wire trouble; the typed
    wrappers below are the usual interface. *)

val ping : t -> unit

val submit : t -> string -> int64
(** Admit wire-format module bytes; returns the content handle
    ({!Omni_util.Fnv64} digest) to pass to {!run}. *)

val run :
  ?engine:Exec.engine ->
  ?sfi:bool ->
  ?mode:Message.mode_spec ->
  ?fuel:int ->
  t ->
  int64 ->
  Exec.run_result
(** Execute a submitted module remotely. Defaults mirror [Api.run]:
    interpreter engine, SFI on, derived mode, server-default fuel. *)

val stats_json : t -> string
(** The daemon's service-counter snapshot as one JSON line. *)
