(** The client side: submit and run mobile modules against a daemon.

    One synchronous request/response call per operation. Three ways to
    get a connection: {!connect} (a live [omnid] over a Unix or TCP
    socket), {!of_conn} (any transport), and {!loopback} (an in-process
    server over the in-memory pair — byte-for-byte the same protocol,
    zero scheduling nondeterminism; what the tests and the remote
    benchmark use).

    Every constructor takes an optional {!Retry.policy}. With one, a
    {!call} that fails transiently — read timeout, lost connection,
    frame damaged in transit ([E_bad_frame]) — abandons the connection,
    re-dials (sockets re-connect the address; loopbacks open a fresh
    pair and session), and re-sends, under the policy's backoff and
    deadline. Submit and Run are safe to retry: execution is
    deterministic and the store content-addressed, so a duplicate
    delivery yields the same handle and the same result. Terminal
    responses ([E_decode], [E_verifier_rejected], [E_limit_exceeded],
    [E_module_fault], [E_quarantined], …) are never retried — in
    particular a crashed module stays crashed on every retry, which is
    exactly what [E_module_fault]'s dedicated class (rather than
    [E_internal]) lets a client conclude. Each scheduled retry bumps [net.retry] on the
    ambient tracer's registry, and each attempt runs under a
    ["net.attempt"] span. *)

module Exec = Omni_service.Exec

exception Remote_error of Message.err_class * string
(** The server answered with a typed protocol error. *)

exception Protocol_error of string
(** The byte stream is speaking the protocol wrongly at the semantic
    level: undecodable response message, or a response kind that does
    not answer the request. Terminal — retrying cannot help. *)

exception Connection_lost of string
(** The response never arrived intact: end of stream, truncation, or a
    frame damaged in transit. The connection is unusable, but the
    request may be re-sent on a fresh one — retryable. *)

type t

val connect :
  ?retry:Retry.policy ->
  ?env:Retry.env ->
  ?read_timeout:float ->
  Transport.address ->
  t
(** [read_timeout] (seconds, default none) bounds each response read so
    a stalled daemon surfaces as {!Transport.Timeout} instead of a hang;
    it is re-applied on every re-dial.
    @raise Unix.Unix_error when the daemon is not reachable (the initial
    dial is not retried — wrap {!connect} itself if that is wanted). *)

val of_conn : ?retry:Retry.policy -> ?env:Retry.env -> Transport.conn -> t
(** No re-dial is possible: with [retry], transient failures are
    re-attempted on the {e same} connection (useful only if it can
    recover — otherwise the retry loop fails fast on the dead wire). *)

val with_policy : ?retry:Retry.policy -> t -> t
(** A view of the same client under a different retry policy (absent
    [retry]: no retries). Connection state — including re-dials — is
    shared with the original, so a view is free to make and discard;
    what [Api.run]'s per-request [retry] knob uses. *)

val loopback :
  ?retry:Retry.policy ->
  ?env:Retry.env ->
  ?fault:Fault.armed ->
  Server.t ->
  t
(** A connection to [server] over the in-memory pair transport: each
    client read hands control to the server for one {!Server.step},
    under a fresh per-dial {!Server.session}. [fault] wraps every dialed
    connection with the given armed plan — the fault-matrix tests drive
    exactly this. *)

val close : t -> unit
val descr : t -> string

val classify : exn -> Retry.verdict
(** The client's retry classification: {!Connection_lost},
    [Remote_error (E_bad_frame, _)], [Remote_error (E_overloaded, _)]
    (the server shed the request before doing any work), and everything
    {!Retry.classify} deems transient (timeouts, connection-level
    [Unix_error]s) are [Retryable]; all other errors — including every
    other {!Remote_error} class — are [Terminal]. *)

val call : t -> Message.req -> Message.resp
(** Send one request, read one response — under the retry policy, if
    the client has one. Raises {!Remote_error} on an [Error] response,
    {!Connection_lost} on wire trouble, {!Protocol_error} on semantic
    protocol violation; the typed wrappers below are the usual
    interface. *)

val ping : t -> unit

val submit : t -> string -> int64
(** Admit wire-format module bytes; returns the content handle
    ({!Omni_util.Fnv64} digest) to pass to {!run}. *)

val run :
  ?engine:Exec.engine ->
  ?sfi:bool ->
  ?mode:Message.mode_spec ->
  ?fuel:int ->
  ?deadline_s:float ->
  t ->
  int64 ->
  Exec.run_result
(** Execute a submitted module remotely. Defaults mirror [Api.run]:
    interpreter engine, SFI on, derived mode, server-default fuel and
    wall-clock deadline. A module that exceeds [deadline_s] faults with
    [Deadline_exceeded], reported in the result's outcome like any other
    fault. *)

val run_cert :
  ?engine:Exec.engine ->
  ?sfi:bool ->
  ?mode:Message.mode_spec ->
  ?fuel:int ->
  ?deadline_s:float ->
  ?want_cert:bool ->
  t ->
  int64 ->
  Exec.run_result * string option
(** Like {!run}, but with [~want_cert:true] also returns the encoded
    [omni-cert/1] safety certificate the server holds for this
    translation ([None] for interpreter runs, uncertified configurations,
    or servers that predate certificates — the response arity is the
    same either way). Decode with [Omni_cert.Certificate.decode]. *)

val stats_json : t -> string
(** The daemon's service-counter snapshot as one JSON line. *)
