(** Byte-stream transports carrying protocol frames.

    One abstraction, two implementations:

    - {!pair}: a fully in-memory, single-threaded duplex pair for
      deterministic tests and for the loopback client — no file
      descriptors, no scheduling, byte-for-byte the same frames as the
      socket path;
    - {!of_fd}: a Unix/TCP socket wrapped with a receive timeout.

    A connection is a [recv]/[send]/[close] triple with [Unix.read]-style
    receive semantics (0 = end of stream), which is exactly what
    {!Frame.read} consumes. *)

type conn

exception Timeout
(** Raised by {!recv} on a socket connection whose per-request read
    timeout (see {!set_read_timeout}) expires. *)

val recv : conn -> bytes -> int -> int -> int
(** [recv c buf pos len] reads at most [len] bytes into [buf] at [pos];
    returns the count, 0 at end of stream. May return short counts. *)

val send : conn -> string -> unit
(** Write the whole string (loops over partial writes). *)

val close : conn -> unit
(** Idempotent. *)

val closed : conn -> bool

val set_read_timeout : conn -> float -> unit
(** Seconds before a blocked {!recv} raises {!Timeout}; [0.] disables.
    A no-op on in-memory connections (their reads never block). *)

val descr : conn -> string
(** Human-readable endpoint name (for logs and error messages). *)

(** {1 In-memory pair} *)

val pair : ?name:string -> unit -> conn * conn
(** Two connected endpoints backed by in-process byte queues: bytes
    [send]-ed on one side become [recv]-able on the other, in order.
    [recv] on an empty queue consults the stall hook (below) once, then
    reports end of stream — nothing ever blocks. [close]-ing either side
    ends the stream for both. *)

val on_stall : conn -> (unit -> unit) -> unit
(** Install a hook run when [recv] on this in-memory endpoint finds its
    queue empty — the loopback client uses it to hand control to the
    server so a synchronous request/response cycle needs no threads.
    @raise Invalid_argument on a socket or custom connection. *)

(** {1 Custom connections} *)

val make :
  ?descr:string ->
  ?close:(unit -> unit) ->
  ?set_timeout:(float -> unit) ->
  recv:(bytes -> int -> int -> int) ->
  send:(string -> unit) ->
  unit ->
  conn
(** A connection whose operations are the given functions — how wrappers
    (notably the {!Fault} injector) interpose on an existing connection.
    [recv] has [Unix.read] semantics and may raise {!Timeout}; [close]
    (default: nothing) runs once on the first {!close}; [set_timeout]
    receives {!set_read_timeout} calls (default: ignored). *)

(** {1 Sockets} *)

(** Where a daemon lives: a Unix-domain socket path, or a TCP
    host/port. *)
type address = Unix_sock of string | Tcp of string * int

val parse_address : string -> (address, string) result
(** ["host:port"] (or [":port"], defaulting the host to 127.0.0.1)
    parses as {!Tcp}; anything else is a Unix-domain socket path. *)

val address_to_string : address -> string
val sockaddr_of_address : address -> Unix.sockaddr

val connect : address -> conn
(** Open a client connection.
    @raise Unix.Unix_error when the daemon is not reachable. *)

val of_fd : ?descr:string -> Unix.file_descr -> conn
(** Wrap a connected socket (or any stream descriptor). *)
