(** Bounded multi-producer / multi-consumer work queue.

    The handoff between a server's accept loop (producer) and its pool
    of worker domains (consumers). The bound is the backpressure
    contract: {!try_push} never blocks and never queues beyond [depth] —
    a full queue is the producer's signal to shed load with a typed
    [E_overloaded] refusal instead of queueing without limit.

    All operations are safe from any number of domains. The internal
    mutex is leaf-level: nothing is called while holding it. *)

type 'a t

val create : depth:int -> unit -> 'a t
(** A queue admitting at most [depth] items ([depth <= 0] means
    unbounded — no backpressure, for completeness only). *)

val depth : 'a t -> int
val length : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Enqueue without blocking; [false] when the queue is full or closed
    (the caller sheds the item). *)

val pop : 'a t -> 'a option
(** Block until an item is available or the queue is closed; [None]
    means closed — a worker's signal to exit. Close abandons queued
    items: a consumer never sees an item pushed before {!close} that it
    had not already popped ({!try_pop} drains them). *)

val try_pop : 'a t -> 'a option
(** Dequeue without blocking; [None] when empty. Works after {!close} —
    how a stopping pool drains and disposes of abandoned items. *)

val close : 'a t -> unit
(** Reject further pushes and wake every blocked {!pop}. Idempotent. *)

val closed : 'a t -> bool
