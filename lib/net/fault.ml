(* Fault injection: a plan of wire misbehaviour applied to any transport.

   The wrapper interposes on send/recv. On the send path one send call is
   one protocol frame (the codec writes exactly one frame per call), so
   frame sites are exact; on the receive path frame boundaries are
   recovered by tracking the 18-byte headers of the passing stream, so a
   plan can target "response frame 1, byte 3" as precisely as the sender
   could. The tracker always follows the ORIGINAL bytes — a corrupted
   length field confuses the peer, not the injector.

   State is split deliberately: what fired and how often lives in the
   armed plan (shared across every connection it wraps, so a single-fault
   plan fires once even when a retrying client re-dials), while wire
   damage (cut, stalled) and stream positions live per connection (a
   fresh dial is an undamaged wire). *)

module Metrics = Omni_obs.Metrics
module Lcg = Omni_util.Lcg

type kind = Drop | Corrupt | Truncate | Stall | Close
type dir = Send | Recv
type site = Frame of int | Byte of int

type plan =
  | Fault of { kind : kind; dir : dir; site : site; skew : int }
  | Seeded of { seed : int; rate : float; kinds : kind list }

let fault ?(skew = 0) kind dir site =
  if skew < 0 then invalid_arg "Fault.fault: negative skew";
  Fault { kind; dir; site; skew }

let all_kinds = [ Drop; Corrupt; Truncate; Stall; Close ]

let seeded ?(kinds = all_kinds) ~seed ~rate () =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault.seeded: rate not in [0,1]";
  if kinds = [] then invalid_arg "Fault.seeded: empty kind list";
  Seeded { seed; rate; kinds }

let kind_name = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Stall -> "stall"
  | Close -> "close"

type armed = {
  plan : plan;
  rng : Lcg.t;
  mutable fired : bool; (* single-fault plans fire once, globally *)
  mutable count : int;
  counter : Metrics.counter option;
}

let arm ?metrics plan =
  let seed = match plan with Seeded s -> s.seed | Fault _ -> 0 in
  {
    plan;
    rng = Lcg.create seed;
    fired = false;
    count = 0;
    counter =
      Option.map (fun m -> Metrics.counter m "net.fault.injected") metrics;
  }

let injected a = a.count

let record a =
  a.count <- a.count + 1;
  match a.counter with Some c -> Metrics.incr c | None -> ()

let pick_kind a kinds =
  let ks = Array.of_list kinds in
  ks.(Lcg.int a.rng (Array.length ks))

let flip c = Char.chr (Char.code c lxor 0xa5)

let wrap a inner =
  (* per-connection wire damage *)
  let cut = ref false in
  let stalled = ref false in
  (* send side: one frame per send call *)
  let sent_frames = ref 0 in
  let sent_bytes = ref 0 in
  (* recv side: frame boundaries recovered from passing headers *)
  let rpos = ref 0 in
  let rframe = ref 0 in
  let rhdr = Bytes.create Frame.header_size in
  let rhdr_got = ref 0 in
  let rbody_left = ref 0 in
  let rtrigger = ref None in
  let dropping = ref false in

  let send_fn s =
    if !cut || !stalled then ()
    else begin
      let len = String.length s in
      let decision =
        match a.plan with
        | Fault f when f.dir = Send && not a.fired -> (
            match f.site with
            | Frame k when k = !sent_frames ->
                Some (f.kind, min f.skew (max 0 (len - 1)))
            | Byte p when p >= !sent_bytes && p < !sent_bytes + len ->
                Some (f.kind, p - !sent_bytes)
            | _ -> None)
        | Seeded sd when Lcg.float a.rng < sd.rate ->
            Some (pick_kind a sd.kinds, if len = 0 then 0 else Lcg.int a.rng len)
        | _ -> None
      in
      sent_frames := !sent_frames + 1;
      sent_bytes := !sent_bytes + len;
      match decision with
      | None -> Transport.send inner s
      | Some (k, off) -> (
          (match a.plan with Fault _ -> a.fired <- true | Seeded _ -> ());
          record a;
          match k with
          | Corrupt ->
              let b = Bytes.of_string s in
              Bytes.set b off (flip (Bytes.get b off));
              Transport.send inner (Bytes.unsafe_to_string b)
          | Drop -> ()
          | Truncate ->
              Transport.send inner (String.sub s 0 off);
              cut := true
          | Stall ->
              (* the frame vanishes and the answering read times out *)
              stalled := true
          | Close ->
              Transport.close inner;
              cut := true)
    end
  in

  let end_frame () =
    incr rframe;
    rhdr_got := 0;
    dropping := false
  in
  (* Rewrite the [n] freshly received bytes at [buf[pos..]] in place,
     compacting survivors to the front; returns the survivor count and
     may set [cut]/[stalled]. *)
  let transform buf pos n =
    let out = ref 0 in
    let i = ref 0 in
    let stop = ref false in
    while (not !stop) && !i < n do
      let abs = !rpos + !i in
      let orig = Bytes.get buf (pos + !i) in
      (* at a frame start, arm this frame's trigger if the plan says so *)
      if !rhdr_got = 0 && !rtrigger = None then begin
        match a.plan with
        | Fault f when f.dir = Recv && not a.fired -> (
            match f.site with
            | Frame k when k = !rframe ->
                rtrigger := Some (abs + f.skew, f.kind)
            | Byte p when p >= abs -> rtrigger := Some (p, f.kind)
            | _ -> ())
        | Seeded sd ->
            if Lcg.float a.rng < sd.rate then
              rtrigger :=
                Some
                  ( abs + Lcg.int a.rng (2 * Frame.header_size),
                    pick_kind a sd.kinds )
        | _ -> ()
      end;
      (match !rtrigger with
      | Some (t, k) when abs = t -> (
          rtrigger := None;
          let live =
            match a.plan with Fault _ -> not a.fired | Seeded _ -> true
          in
          if live then begin
            (match a.plan with Fault _ -> a.fired <- true | Seeded _ -> ());
            record a;
            match k with
            | Corrupt -> Bytes.set buf (pos + !i) (flip orig)
            | Drop -> dropping := true
            | Truncate ->
                cut := true;
                stop := true
            | Stall ->
                stalled := true;
                stop := true
            | Close ->
                Transport.close inner;
                cut := true;
                stop := true
          end)
      | _ -> ());
      if not !stop then begin
        if not !dropping then begin
          Bytes.set buf (pos + !out) (Bytes.get buf (pos + !i));
          incr out
        end;
        (* advance the tracker with the original byte — the true stream
           structure, even when the emitted byte was corrupted *)
        if !rhdr_got < Frame.header_size then begin
          Bytes.set rhdr !rhdr_got orig;
          incr rhdr_got;
          if !rhdr_got = Frame.header_size then begin
            rbody_left :=
              Int32.to_int (Bytes.get_int32_be rhdr 6) land 0xffffffff;
            if !rbody_left = 0 then end_frame ()
          end
        end
        else begin
          decr rbody_left;
          if !rbody_left = 0 then end_frame ()
        end;
        incr i
      end
    done;
    rpos := !rpos + n;
    !out
  in
  let rec recv_fn buf pos len =
    if !stalled then raise Transport.Timeout;
    if !cut then 0
    else
      let n = Transport.recv inner buf pos len in
      if n = 0 then 0
      else
        let out = transform buf pos n in
        if out > 0 then out
        else if !stalled then raise Transport.Timeout
        else if !cut then 0
        else (* every byte was swallowed; pull more *) recv_fn buf pos len
  in
  Transport.make
    ~descr:("fault:" ^ Transport.descr inner)
    ~close:(fun () -> Transport.close inner)
    ~set_timeout:(Transport.set_read_timeout inner)
    ~recv:recv_fn ~send:send_fn ()
