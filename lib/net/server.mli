(** The serving side of the distribution protocol.

    A server wraps an {!Omni_service.Service} — the content-addressed
    store and memoizing translation cache — behind the frame protocol.
    The network boundary is the SFI admission boundary: every incoming
    frame is untrusted, so every failure anywhere in
    decode/load/translate/verify/execute maps to a typed
    {!Message.Error} response and the process keeps serving. The only
    way a connection ends is end-of-stream, a read timeout, a frame so
    malformed that framing sync is lost (bad magic, bad version,
    oversized or corrupt frame), or a blown session quota — and even
    then the {e daemon} survives; only that connection closes, after the
    client is sent the typed error.

    Admission quotas ({!config}) bound what any one client can ask for:
    module size, fuel per run, requests and bytes per connection. Every
    quota refusal is an ordinary [E_limit_exceeded] response — typed,
    terminal for the client's retry policy, and counted under
    [net.limit.rejected].

    Observability: [net.*] counters (connections, requests by kind,
    error responses by class, limit rejections, bytes in/out, frame
    errors, timeouts) are registered in the service's own metrics
    registry, and every request runs under a ["net.request"] span on the
    server's tracer, so remote serving lands in the same registry/tracer
    as the rest of the pipeline. *)

module Service = Omni_service.Service

type config = {
  max_frame : int;  (** payload cap enforced before allocation *)
  read_timeout_s : float;
      (** per-request socket read timeout; 0. disables *)
  max_module_bytes : int;
      (** largest module a Submit may carry; 0 = unlimited *)
  max_fuel : int;
      (** fuel ceiling per Run: explicit requests above it are refused,
          unfueled requests are clamped to it; 0 = unlimited *)
  max_requests_per_conn : int;
      (** requests admitted per connection before it is closed with a
          limit refusal; 0 = unlimited *)
  max_conn_bytes : int;
      (** total frame bytes admitted per connection; 0 = unlimited *)
  max_deadline_s : float;
      (** wall-clock deadline ceiling per Run: explicit requests above it
          (or non-finite/negative) are refused, deadline-less requests
          are clamped to it; 0. = unlimited *)
  require_cert : bool;
      (** refuse translated runs whose configuration yields no safety
          certificate (SFI off, Guard mode, native baselines) with
          [E_certificate_invalid], and attach the certificate to every
          [Ran] response; the reference interpreter is exempt (it runs
          no translated code). What [omnid --require-cert] sets. *)
  pool_size : int;
      (** worker domains draining the accept queue; 1 (the default)
          keeps the sequential accept-serve loop *)
  queue_depth : int;
      (** connections the accept queue holds before {!serve} sheds new
          ones with a typed [E_overloaded] refusal (clamped to >= 1) *)
  fair_slice : int;
      (** requests one worker serves from one connection before parking
          it behind waiting connections — per-tenant fairness *)
}

val default_config : config
(** {!Frame.max_payload}, a 30 s read timeout, every quota unlimited,
    certificates optional, pool of 1 (sequential), queue depth 64,
    fair slice 32. *)

type t

val create : ?config:config -> ?tracer:Omni_obs.Trace.t -> Service.t -> t
(** [tracer] defaults to a [Null]-sink tracer over the service's
    metrics registry — no span storage, but per-phase [phase.*]
    histograms (including [phase.net.request]) still accumulate. *)

val service : t -> Service.t
val config : t -> config

(** Per-connection accounting for the session quotas. *)
type session

val new_session : unit -> session
(** A fresh session — what {!serve_conn} opens per accepted connection,
    and what the loopback client opens per dial. *)

val handle_request : t -> Message.req -> Message.resp
(** Dispatch one already-decoded request. Never raises: exceptions from
    the service layers are mapped to {!Message.Error} classes —
    malformed module bytes to [E_decode], quota and segment-fit
    violations to [E_limit_exceeded], foreign handles to
    [E_unknown_handle], SFI verifier refusals to [E_verifier_rejected],
    quarantined modules to [E_quarantined], module crashes that escape
    as exceptions to [E_module_fault] (message prefixed with the fault
    code — see {!Message.fault_code_of_message}), anything else to
    [E_internal]. *)

val step : ?session:session -> t -> Transport.conn -> [ `Handled | `Closed ]
(** Read one frame, answer it. [`Closed] means the connection is done:
    clean end of stream, a framing-level error, or a blown session quota
    (the typed [Error] response is sent first). Every framing-level
    error — bad magic, bad version, checksum mismatch, truncation, and
    an oversized declared length (indistinguishable from a corrupted
    length field) — answers [E_bad_frame], retryable; module-size
    admission proper is [max_module_bytes], refused at dispatch with
    [E_limit_exceeded]. Without [session] the per-connection quotas are
    not enforced. The in-memory loopback drives this directly. *)

val serve_conn : t -> Transport.conn -> unit
(** [step] until [`Closed] (or a read timeout), then close the
    connection; runs under a fresh {!session}. Never raises. *)

(** {1 The domain pool}

    With [pool_size > 1], {!serve} becomes a producer: accepted
    connections are offered to a bounded {!Workq} drained by a pool of
    worker domains. A full queue sheds the connection with a typed
    [E_overloaded] response (counted under [net.overloaded]) — explicit
    backpressure the client's retry policy absorbs — and a worker parks
    any connection that has held it for [fair_slice] requests while
    others wait, so one chatty tenant cannot starve the rest.

    The pieces are exposed so tests can drive them deterministically
    (offer past the depth without workers, assert the typed refusal). *)

type pool

val pool_create : t -> pool
(** A pool over this server's config ([pool_size], [queue_depth],
    [fair_slice]); no workers run until {!pool_start}. *)

val pool_offer : pool -> Transport.conn -> [ `Queued | `Shed ]
(** Offer an accepted connection. [`Shed] means the queue was full: the
    connection was answered with [E_overloaded] and closed — before any
    request work, so resending is safe. Counts [net.connections] either
    way, [net.overloaded] (and [net.errors]) on shed. *)

val pool_start : pool -> unit
(** Spawn the worker domains ([pool_size], at least 1).
    @raise Invalid_argument if already started. *)

val pool_stop : pool -> unit
(** Close the queue, join the workers (each finishes the connection it
    is serving), and close any connections left queued. *)

(** {1 Listening (sockets)} *)

val listen : Transport.address -> Unix.file_descr
(** Bind and listen. [Unix_sock path] unlinks a stale socket file first;
    [Tcp (host, port)] binds the given interface.
    @raise Unix.Unix_error when the address cannot be bound. *)

val serve : ?stop:(unit -> bool) -> t -> Unix.file_descr -> unit
(** The accept loop. With [pool_size <= 1] (the default): accept,
    {!serve_conn}, repeat — the original sequential behaviour. With a
    larger pool: start it, offer every accepted connection ({!pool_offer}
    semantics, shedding with [E_overloaded] when the queue is full), and
    stop it (joining the workers) when [stop] fires. Polls [stop]
    between accepts (default: never stop). Does not close the listening
    descriptor. *)
