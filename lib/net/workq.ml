(* Bounded MPMC queue: one mutex, one condition, one stdlib Queue.

   The simplicity is deliberate — the items are accepted connections, so
   queue operations are nanoseconds against milliseconds of request
   work; a lock-free ring would buy nothing. The bound makes it a
   backpressure device: try_push refuses instead of growing, and the
   refusal is what the server turns into a typed E_overloaded response.

   Close semantics: close wakes every blocked pop, which then returns
   None even if items remain queued — a stopping pool must not start new
   work. The items it abandons are recovered with try_pop (which ignores
   the closed flag) and disposed of by the closer. *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  d : int; (* <= 0: unbounded *)
  mutable is_closed : bool;
}

let create ~depth () =
  { mu = Mutex.create (); nonempty = Condition.create (); q = Queue.create ();
    d = depth; is_closed = false }

let depth t = t.d

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let length t = locked t.mu (fun () -> Queue.length t.q)
let closed t = locked t.mu (fun () -> t.is_closed)

let try_push t x =
  locked t.mu @@ fun () ->
  if t.is_closed || (t.d > 0 && Queue.length t.q >= t.d) then false
  else begin
    Queue.add x t.q;
    Condition.signal t.nonempty;
    true
  end

let pop t =
  locked t.mu @@ fun () ->
  let rec wait () =
    if t.is_closed then None
    else if Queue.is_empty t.q then begin
      Condition.wait t.nonempty t.mu;
      wait ()
    end
    else Some (Queue.take t.q)
  in
  wait ()

let try_pop t =
  locked t.mu @@ fun () ->
  if Queue.is_empty t.q then None else Some (Queue.take t.q)

let close t =
  locked t.mu @@ fun () ->
  if not t.is_closed then begin
    t.is_closed <- true;
    Condition.broadcast t.nonempty
  end
