(** The wire frame of the distribution protocol.

    Every protocol message travels in one frame:

    {v
    offset  size  field
    0       4     magic "OMNI"
    4       1     protocol version (1)
    5       1     message tag (interpreted by {!Message})
    6       4     payload length, big-endian unsigned
    10      8     FNV-1a/64 checksum, big-endian — over version, tag,
                  length, and payload, so one flipped bit anywhere a
                  decoder trusts is a typed error, never a checksum-valid
                  frame with a nonsense tag
    18      len   payload
    v}

    The receiving host treats every frame as hostile input: decoding
    never raises — a malformed, truncated, oversized, or corrupted frame
    yields a typed {!error} so the server can answer with a protocol
    error instead of dying. The payload length is capped ({!val-max_payload}
    by default) {e before} any allocation, so a hostile length field
    cannot balloon memory. *)

val magic : string
(** ["OMNI"], 4 bytes. *)

val version : int
(** Protocol version carried by every frame (currently 1). *)

val header_size : int
(** 18 bytes. *)

val max_payload : int
(** Default payload cap: 16 MiB. *)

type t = { tag : int; payload : string }
(** [tag] is one byte (0..255); its meaning belongs to {!Message}. *)

type error =
  | Eof  (** clean end of stream at a frame boundary *)
  | Truncated  (** stream or buffer ended mid-frame (a short read) *)
  | Bad_magic  (** the first four bytes are not ["OMNI"] *)
  | Bad_version of int  (** recognized magic, foreign version byte *)
  | Too_large of { length : int; max : int }
      (** declared payload length exceeds the cap — detected before
          allocating *)
  | Corrupt  (** checksum mismatch (tag, length, or payload damage) *)

val error_to_string : error -> string

val encode : t -> string
(** The frame as bytes, header and checksum included.
    @raise Invalid_argument if [tag] is not one byte. *)

val decode : ?max:int -> string -> pos:int -> (t * int, error) result
(** Decode one frame starting at [pos]; on success also returns the
    offset just past the frame. [max] caps the payload length (default
    {!val-max_payload}). Never raises on any input ([pos] must be within
    [0 .. length]). *)

val read : ?max:int -> (bytes -> int -> int -> int) -> (t, error) result
(** Pull one frame from a byte stream. The reader has [Unix.read]
    semantics — [read buf pos len] returns the number of bytes read, 0
    for end of stream — and may return short counts. Exceptions raised
    by the reader itself (e.g. a socket timeout) pass through. *)
