(* Retry policy: pure data executed under an injectable environment.

   The schedule is exact by construction — delay n is
   base * backoff^(n-1), jittered by a factor from [1-j, 1+j] — and a
   retry is only scheduled when it fits the deadline, so the policy can
   never sleep past its budget (a qcheck'd property). *)

module Clock = Omni_util.Clock
module Lcg = Omni_util.Lcg

type policy = {
  max_attempts : int;
  base_delay_s : float;
  backoff : float;
  jitter : float;
  deadline_s : float;
}

let default =
  {
    max_attempts = 4;
    base_delay_s = 0.01;
    backoff = 2.0;
    jitter = 0.1;
    deadline_s = 5.0;
  }

let delay_for p ~rand n =
  let d = p.base_delay_s *. (p.backoff ** float_of_int (n - 1)) in
  let d =
    if p.jitter <= 0.0 then d
    else d *. (1.0 +. (p.jitter *. ((2.0 *. rand ()) -. 1.0)))
  in
  if d > 0.0 then d else 0.0

type env = {
  clock : Clock.t;
  sleep : float -> unit;
  rand : unit -> float;
}

let sys_env =
  let rng = Lcg.create 0x5eed in
  {
    clock = Clock.cpu;
    sleep = (fun s -> if s > 0.0 then Unix.sleepf s);
    rand = (fun () -> Lcg.float rng);
  }

let manual_env ?(start = 0.0) ?(seed = 0x5eed) () =
  let clock = Clock.manual ~start () in
  let rng = Lcg.create seed in
  {
    clock;
    sleep = (fun s -> if s > 0.0 then Clock.advance clock s);
    rand = (fun () -> Lcg.float rng);
  }

type verdict = Retryable | Terminal

let classify = function
  | Transport.Timeout -> Retryable
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED
        | Unix.EPIPE | Unix.ENOENT | Unix.EHOSTUNREACH | Unix.ENETUNREACH
        | Unix.ENETDOWN | Unix.ETIMEDOUT | Unix.EINTR | Unix.EAGAIN ),
        _,
        _ ) ->
      Retryable
  | _ -> Terminal

let run ?(env = sys_env) ?(on_retry = fun ~attempt:_ ~delay_s:_ _ -> ())
    ~classify policy f =
  if policy.max_attempts < 1 then invalid_arg "Retry.run: max_attempts < 1";
  let start = Clock.now env.clock in
  let rec go n =
    match f ~attempt:n with
    | v -> v
    | exception e -> (
        match classify e with
        | Terminal -> raise e
        | Retryable ->
            if n >= policy.max_attempts then raise e
            else
              let d = delay_for policy ~rand:env.rand n in
              let elapsed = Clock.now env.clock -. start in
              (* never sleep past the deadline: better to surface the
                 failure with budget to spare than to blow the budget *)
              if elapsed +. d > policy.deadline_s then raise e
              else begin
                on_retry ~attempt:n ~delay_s:d e;
                env.sleep d;
                go (n + 1)
              end)
  in
  go 1
