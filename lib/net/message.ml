(* Message bodies, serialized into frame payloads.

   Integers travel as big-endian 64-bit values, strings as a u32 length
   prefix plus bytes, options as a presence byte. Decoding reads through
   a bounds-checked cursor and must consume the payload exactly, so a
   truncated or padded body is a decode error — and the only exception
   the cursor can raise is the private [Bad], caught at the [decode_*]
   boundary. *)

module Exec = Omni_service.Exec
module Machine = Omni_targets.Machine
module Fault = Omnivm.Fault
module Policy = Omni_sfi.Policy
module Arch = Omni_targets.Arch

type err_class =
  | E_decode
  | E_verifier_rejected
  | E_unknown_handle
  | E_limit_exceeded
  | E_internal
  | E_bad_frame
  | E_module_fault
  | E_quarantined
  | E_certificate_invalid
  | E_overloaded

let err_class_name = function
  | E_decode -> "decode"
  | E_verifier_rejected -> "verifier-rejected"
  | E_unknown_handle -> "unknown-handle"
  | E_limit_exceeded -> "limit-exceeded"
  | E_internal -> "internal"
  | E_bad_frame -> "bad-frame"
  | E_module_fault -> "module-fault"
  | E_quarantined -> "quarantined"
  | E_certificate_invalid -> "certificate-invalid"
  | E_overloaded -> "overloaded"

let err_class_code = function
  | E_decode -> 0
  | E_verifier_rejected -> 1
  | E_unknown_handle -> 2
  | E_limit_exceeded -> 3
  | E_internal -> 4
  | E_bad_frame -> 5
  | E_module_fault -> 6
  | E_quarantined -> 7
  | E_certificate_invalid -> 8
  | E_overloaded -> 9

let err_class_of_code = function
  | 0 -> Some E_decode
  | 1 -> Some E_verifier_rejected
  | 2 -> Some E_unknown_handle
  | 3 -> Some E_limit_exceeded
  | 4 -> Some E_internal
  | 5 -> Some E_bad_frame
  | 6 -> Some E_module_fault
  | 7 -> Some E_quarantined
  | 8 -> Some E_certificate_invalid
  | 9 -> Some E_overloaded
  | _ -> None

(* The message of an [E_module_fault] error leads with a machine-readable
   fault code, then prose: "fault-code=3 integer division by zero". The
   [Error] arity is unchanged (class + string everywhere); this is the one
   class whose message has structure, and these two functions are its
   codec. *)
let fault_message f =
  Printf.sprintf "fault-code=%d %s" (Fault.code f) (Fault.to_string f)

let fault_code_of_message msg =
  let p = "fault-code=" in
  let pl = String.length p in
  if String.length msg >= pl && String.sub msg 0 pl = p then
    let rest = String.sub msg pl (String.length msg - pl) in
    let digits =
      match String.index_opt rest ' ' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    int_of_string_opt digits
  else None

type mode_spec =
  | M_default
  | M_policy of { pmode : Policy.mode; protect_reads : bool; pad : Policy.pad }
  | M_native of Machine.tier

type run_spec = {
  rs_handle : int64;
  rs_engine : Exec.engine;
  rs_sfi : bool;
  rs_mode : mode_spec;
  rs_fuel : int option;
  rs_deadline_s : float option;
  rs_want_cert : bool;
}

type req = Ping | Submit of string | Run of run_spec | Stats

(* [Ran] carries the optional encoded safety certificate (omni-cert/1
   bytes, opaque at this layer) when the request asked for one and the
   run went through a certified translation. *)
type resp =
  | Pong
  | Submitted of int64
  | Ran of Exec.run_result * string option
  | Stats_json of string
  | Error of err_class * string

(* Request tags occupy the low half of the byte, responses the high. *)
let tag_ping = 0x01
let tag_submit = 0x02
let tag_run = 0x03
let tag_stats = 0x04
let tag_pong = 0x81
let tag_submitted = 0x82
let tag_ran = 0x83
let tag_stats_json = 0x84
let tag_error = 0xee

(* --- writer --- *)

let w8 b v = Buffer.add_uint8 b (v land 0xff)
let w64 b (v : int64) = Buffer.add_int64_be b v
let wint b v = w64 b (Int64.of_int v)
let wbool b v = w8 b (if v then 1 else 0)

let wstr b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

let wopt w b = function
  | None -> w8 b 0
  | Some v ->
      w8 b 1;
      w b v

(* --- bounds-checked cursor --- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let need c n =
  if n < 0 || c.pos + n > String.length c.s then raise (Bad "short payload")

let r8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r64 c =
  need c 8;
  let v = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  v

let rint c =
  let v = r64 c in
  (* every integer we ship fits OCaml's 63-bit int; a value that does
     not is forged *)
  if Int64.compare v (Int64.of_int max_int) > 0
     || Int64.compare v (Int64.of_int min_int) < 0
  then raise (Bad "integer out of range");
  Int64.to_int v

let rbool c =
  match r8 c with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Bad "bad boolean byte")

let rstr c =
  need c 4;
  let n = Int32.to_int (String.get_int32_be c.s c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let ropt r c = match r8 c with 0 -> None | 1 -> Some (r c) | _ -> raise (Bad "bad option byte")

let finish c v =
  if c.pos <> String.length c.s then raise (Bad "trailing bytes") else v

(* --- domain encodings --- *)

let engine_code = function
  | Exec.Interp -> 0
  | Exec.Target Arch.Mips -> 1
  | Exec.Target Arch.Sparc -> 2
  | Exec.Target Arch.Ppc -> 3
  | Exec.Target Arch.X86 -> 4
  | Exec.Fast -> 5

let engine_of_code = function
  | 0 -> Exec.Interp
  | 1 -> Exec.Target Arch.Mips
  | 2 -> Exec.Target Arch.Sparc
  | 3 -> Exec.Target Arch.Ppc
  | 4 -> Exec.Target Arch.X86
  | 5 -> Exec.Fast
  | n -> raise (Bad (Printf.sprintf "bad engine code %d" n))

let wmode b = function
  | M_default -> w8 b 0
  | M_policy { pmode; protect_reads; pad } ->
      w8 b 1;
      w8 b (match pmode with Policy.Off -> 0 | Policy.Sandbox -> 1 | Policy.Guard -> 2);
      wbool b protect_reads;
      w8 b (Policy.pad_code pad)
  | M_native tier ->
      w8 b 2;
      w8 b (match tier with Machine.Gcc -> 0 | Machine.Cc -> 1)

let rmode c =
  match r8 c with
  | 0 -> M_default
  | 1 ->
      let pmode =
        match r8 c with
        | 0 -> Policy.Off
        | 1 -> Policy.Sandbox
        | 2 -> Policy.Guard
        | n -> raise (Bad (Printf.sprintf "bad policy mode %d" n))
      in
      let protect_reads = rbool c in
      let pad =
        match Policy.pad_of_code (r8 c) with
        | Some p -> p
        | None -> raise (Bad "bad pad code")
      in
      M_policy { pmode; protect_reads; pad }
  | 2 ->
      M_native
        (match r8 c with
        | 0 -> Machine.Gcc
        | 1 -> Machine.Cc
        | n -> raise (Bad (Printf.sprintf "bad tier %d" n)))
  | n -> raise (Bad (Printf.sprintf "bad mode tag %d" n))

let waccess b = function
  | Fault.Read -> w8 b 0
  | Fault.Write -> w8 b 1
  | Fault.Execute -> w8 b 2

let raccess c =
  match r8 c with
  | 0 -> Fault.Read
  | 1 -> Fault.Write
  | 2 -> Fault.Execute
  | n -> raise (Bad (Printf.sprintf "bad access code %d" n))

let wfault b = function
  | Fault.Access_violation { addr; access } ->
      w8 b 0;
      wint b addr;
      waccess b access
  | Fault.Misaligned { addr; width } ->
      w8 b 1;
      wint b addr;
      wint b width
  | Fault.Division_by_zero -> w8 b 2
  | Fault.Illegal_instruction { pc } ->
      w8 b 3;
      wint b pc
  | Fault.Unauthorized_host_call { index } ->
      w8 b 4;
      wint b index
  | Fault.Stack_overflow -> w8 b 5
  | Fault.Explicit_trap code ->
      w8 b 6;
      wint b code
  | Fault.Deadline_exceeded -> w8 b 7

let rfault c =
  match r8 c with
  | 0 ->
      let addr = rint c in
      let access = raccess c in
      Fault.Access_violation { addr; access }
  | 1 ->
      let addr = rint c in
      let width = rint c in
      Fault.Misaligned { addr; width }
  | 2 -> Fault.Division_by_zero
  | 3 -> Fault.Illegal_instruction { pc = rint c }
  | 4 -> Fault.Unauthorized_host_call { index = rint c }
  | 5 -> Fault.Stack_overflow
  | 6 -> Fault.Explicit_trap (rint c)
  | 7 -> Fault.Deadline_exceeded
  | n -> raise (Bad (Printf.sprintf "bad fault code %d" n))

let woutcome b = function
  | Machine.Exited code ->
      w8 b 0;
      wint b code
  | Machine.Faulted f ->
      w8 b 1;
      wfault b f
  | Machine.Out_of_fuel -> w8 b 2

let routcome c =
  match r8 c with
  | 0 -> Machine.Exited (rint c)
  | 1 -> Machine.Faulted (rfault c)
  | 2 -> Machine.Out_of_fuel
  | n -> raise (Bad (Printf.sprintf "bad outcome code %d" n))

let wstats b (s : Machine.stats) =
  wint b s.Machine.instructions;
  if Array.length s.Machine.by_origin <> 6 then
    invalid_arg "Message: stats.by_origin must have 6 entries";
  Array.iter (wint b) s.Machine.by_origin;
  wint b s.Machine.cycles;
  wint b s.Machine.loads;
  wint b s.Machine.stores;
  wint b s.Machine.branches;
  wint b s.Machine.taken_branches;
  wint b s.Machine.omni_instructions

let rstats c : Machine.stats =
  let instructions = rint c in
  let by_origin = Array.init 6 (fun _ -> rint c) in
  let cycles = rint c in
  let loads = rint c in
  let stores = rint c in
  let branches = rint c in
  let taken_branches = rint c in
  let omni_instructions = rint c in
  {
    Machine.instructions;
    by_origin;
    cycles;
    loads;
    stores;
    branches;
    taken_branches;
    omni_instructions;
  }

let wcrash b (cs : Exec.crash_site) =
  wint b cs.Exec.cs_pc;
  if Array.length cs.Exec.cs_regs <> 16 then
    invalid_arg "Message: crash_site.cs_regs must have 16 entries";
  Array.iter (wint b) cs.Exec.cs_regs;
  wint b cs.Exec.cs_window_base;
  wstr b cs.Exec.cs_window

let rcrash c : Exec.crash_site =
  let cs_pc = rint c in
  let cs_regs = Array.init 16 (fun _ -> rint c) in
  let cs_window_base = rint c in
  let cs_window = rstr c in
  { Exec.cs_pc; cs_regs; cs_window_base; cs_window }

let wresult b (r : Exec.run_result) =
  wstr b r.Exec.output;
  wint b r.Exec.exit_code;
  woutcome b r.Exec.outcome;
  wint b r.Exec.instructions;
  wint b r.Exec.cycles;
  wopt wstats b r.Exec.stats;
  wopt wcrash b r.Exec.crash

let rresult c : Exec.run_result =
  let output = rstr c in
  let exit_code = rint c in
  let outcome = routcome c in
  let instructions = rint c in
  let cycles = rint c in
  let stats = ropt rstats c in
  let crash = ropt rcrash c in
  { Exec.output; exit_code; outcome; instructions; cycles; stats; crash }

(* --- messages --- *)

let payload f =
  let b = Buffer.create 64 in
  f b;
  Buffer.contents b

let encode_req = function
  | Ping -> { Frame.tag = tag_ping; payload = "" }
  | Submit bytes -> { Frame.tag = tag_submit; payload = bytes }
  | Run rs ->
      {
        Frame.tag = tag_run;
        payload =
          payload (fun b ->
              w64 b rs.rs_handle;
              w8 b (engine_code rs.rs_engine);
              wbool b rs.rs_sfi;
              wmode b rs.rs_mode;
              wopt wint b rs.rs_fuel;
              wopt (fun b v -> w64 b (Int64.bits_of_float v)) b
                rs.rs_deadline_s;
              wbool b rs.rs_want_cert);
      }
  | Stats -> { Frame.tag = tag_stats; payload = "" }

let encode_resp = function
  | Pong -> { Frame.tag = tag_pong; payload = "" }
  | Submitted digest ->
      { Frame.tag = tag_submitted; payload = payload (fun b -> w64 b digest) }
  | Ran (r, cert) ->
      {
        Frame.tag = tag_ran;
        payload =
          payload (fun b ->
              wresult b r;
              wopt wstr b cert);
      }
  | Stats_json json -> { Frame.tag = tag_stats_json; payload = json }
  | Error (cls, msg) ->
      {
        Frame.tag = tag_error;
        payload =
          payload (fun b ->
              w8 b (err_class_code cls);
              wstr b msg);
      }

let decoding f =
  match f () with v -> Ok v | exception Bad msg -> Result.Error msg

let empty_payload (fr : Frame.t) v =
  if String.length fr.Frame.payload = 0 then Ok v
  else Result.Error "unexpected payload"

let decode_req (fr : Frame.t) : (req, string) result =
  let t = fr.Frame.tag in
  if t = tag_ping then empty_payload fr Ping
  else if t = tag_submit then Ok (Submit fr.Frame.payload)
  else if t = tag_stats then empty_payload fr Stats
  else if t = tag_run then
    decoding (fun () ->
        let c = { s = fr.Frame.payload; pos = 0 } in
        let rs_handle = r64 c in
        let rs_engine = engine_of_code (r8 c) in
        let rs_sfi = rbool c in
        let rs_mode = rmode c in
        let rs_fuel = ropt rint c in
        let rs_deadline_s = ropt (fun c -> Int64.float_of_bits (r64 c)) c in
        let rs_want_cert = rbool c in
        finish c
          (Run
             {
               rs_handle;
               rs_engine;
               rs_sfi;
               rs_mode;
               rs_fuel;
               rs_deadline_s;
               rs_want_cert;
             }))
  else Result.Error (Printf.sprintf "unknown request tag 0x%02x" t)

let decode_resp (fr : Frame.t) : (resp, string) result =
  let t = fr.Frame.tag in
  if t = tag_pong then empty_payload fr Pong
  else if t = tag_stats_json then Ok (Stats_json fr.Frame.payload)
  else if t = tag_submitted then
    decoding (fun () ->
        let c = { s = fr.Frame.payload; pos = 0 } in
        let d = r64 c in
        finish c (Submitted d))
  else if t = tag_ran then
    decoding (fun () ->
        let c = { s = fr.Frame.payload; pos = 0 } in
        let r = rresult c in
        let cert = ropt rstr c in
        finish c (Ran (r, cert)))
  else if t = tag_error then
    decoding (fun () ->
        let c = { s = fr.Frame.payload; pos = 0 } in
        let code = r8 c in
        let msg = rstr c in
        match err_class_of_code code with
        | Some cls -> finish c (Error (cls, msg))
        | None -> raise (Bad (Printf.sprintf "bad error class %d" code)))
  else Result.Error (Printf.sprintf "unknown response tag 0x%02x" t)
