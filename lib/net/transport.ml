exception Timeout

(* An in-memory unidirectional byte queue. A Buffer plus a read offset,
   compacted when fully drained; single-threaded by construction. *)
type queue = { buf : Buffer.t; mutable off : int; mutable eof : bool }

let queue () = { buf = Buffer.create 256; off = 0; eof = false }

let queue_avail q = Buffer.length q.buf - q.off

let queue_read q b pos len =
  let n = min len (queue_avail q) in
  if n > 0 then begin
    Buffer.blit q.buf q.off b pos n;
    q.off <- q.off + n;
    if q.off = Buffer.length q.buf then begin
      Buffer.clear q.buf;
      q.off <- 0
    end
  end;
  n

type impl =
  | Mem of {
      inbox : queue;
      outbox : queue;
      mutable stall : (unit -> unit) option;
    }
  | Fd of { fd : Unix.file_descr; mutable timeout : float }
  | Custom of {
      c_recv : bytes -> int -> int -> int;
      c_send : string -> unit;
      c_close : unit -> unit;
      c_timeout : float -> unit;
    }

type conn = { impl : impl; name : string; mutable closed : bool }

let descr c = c.name
let closed c = c.closed

(* --- in-memory pair --- *)

let pair ?(name = "mem") () =
  let a_to_b = queue () and b_to_a = queue () in
  let mk inbox outbox side =
    {
      impl = Mem { inbox; outbox; stall = None };
      name = Printf.sprintf "%s:%s" name side;
      closed = false;
    }
  in
  (mk b_to_a a_to_b "a", mk a_to_b b_to_a "b")

let on_stall c f =
  match c.impl with
  | Mem m -> m.stall <- Some f
  | Fd _ | Custom _ -> invalid_arg "Transport.on_stall: not an in-memory pair"

(* --- custom connections (wrappers, e.g. fault injectors) --- *)

let make ?(descr = "custom") ?(close = Fun.id) ?(set_timeout = fun _ -> ())
    ~recv ~send () =
  {
    impl =
      Custom { c_recv = recv; c_send = send; c_close = close; c_timeout = set_timeout };
    name = descr;
    closed = false;
  }

(* --- common operations --- *)

let close c =
  if not c.closed then begin
    c.closed <- true;
    match c.impl with
    | Mem m ->
        (* end the stream in both directions *)
        m.inbox.eof <- true;
        m.outbox.eof <- true
    | Fd f -> ( try Unix.close f.fd with Unix.Unix_error _ -> ())
    | Custom k -> k.c_close ()
  end

let set_read_timeout c seconds =
  match c.impl with
  | Mem _ -> ()
  | Fd f -> f.timeout <- seconds
  | Custom k -> k.c_timeout seconds

let recv c b pos len =
  if len = 0 then 0
  else
    match c.impl with
    | Mem m ->
        let n = queue_read m.inbox b pos len in
        if n > 0 then n
        else if m.inbox.eof || c.closed then 0
        else (
          (match m.stall with Some f -> f () | None -> ());
          queue_read m.inbox b pos len)
    | Fd f -> (
        if c.closed then 0
        else begin
          if f.timeout > 0. then begin
            match Unix.select [ f.fd ] [] [] f.timeout with
            | [], _, _ -> raise Timeout
            | _ -> ()
          end;
          match Unix.read f.fd b pos len with
          | n -> n
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
              0
        end)
    | Custom k -> if c.closed then 0 else k.c_recv b pos len

let send c s =
  match c.impl with
  | Mem m ->
      if c.closed || m.outbox.eof then ()
      else Buffer.add_string m.outbox.buf s
  | Fd f ->
      if c.closed then ()
      else begin
        let len = String.length s in
        let sent = ref 0 in
        (try
           while !sent < len do
             let n =
               Unix.write_substring f.fd s !sent (len - !sent)
             in
             if n <= 0 then raise Exit else sent := !sent + n
           done
         with
        | Exit -> ()
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            (* peer went away mid-response; the serve loop notices on the
               next read *)
            ())
      end
  | Custom k -> if c.closed then () else k.c_send s

let of_fd ?(descr = "fd") fd =
  { impl = Fd { fd; timeout = 0. }; name = descr; closed = false }

(* --- addresses --- *)

type address = Unix_sock of string | Tcp of string * int

let parse_address s =
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad port %S in address %S" port s))
  | _ -> if s = "" then Error "empty address" else Ok (Unix_sock s)

let address_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr_of_address = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "resolve", host)))
      in
      Unix.ADDR_INET (ip, port)

let connect addr =
  let domain =
    match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of_address addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd ~descr:(address_to_string addr) fd
