(* Module loader: set up the segmented address space for a mobile module and
   instantiate the host environment.

   The loader is the trusted component: it maps the code and data segments,
   copies the module's initialized data image, reserves heap and stack inside
   the data segment, and (optionally) maps a region standing in for the
   host's own memory so tests can demonstrate what SFI protects. *)

open Omnivm
module Trace = Omni_obs.Trace

type image = {
  exe : Exe.t;
  mem : Memory.t;
  host : Host.t;
  host_region : Memory.region option;
}

(* A validated loading plan: segment geometry and host grant computed once
   per executable, so a serving host can stamp out many isolated images of
   the same module without re-checking sizes on every instantiation. *)
type blueprint = {
  bp_exe : Exe.t;
  bp_allow : Hostcall.t list;
  bp_map_host_region : bool;
  bp_heap_start : int;
  bp_heap_limit : int;
}

let blueprint ?(allow = Hostcall.all) ?(map_host_region = false)
    ?(stack_size = Layout.default_stack_size) (exe : Exe.t) : blueprint =
  let globals_end =
    Layout.data_base + Layout.reserved_data + Exe.globals_size exe
  in
  let heap_start = (globals_end + 15) land lnot 15 in
  let heap_limit = Layout.data_base + Layout.data_size - stack_size in
  if heap_start > heap_limit then invalid_arg "Loader.load: data too large";
  { bp_exe = exe; bp_allow = allow; bp_map_host_region = map_host_region;
    bp_heap_start = heap_start; bp_heap_limit = heap_limit }

let instantiate (bp : blueprint) : image =
  Trace.phase "load" @@ fun () ->
  Trace.count "load.instantiations";
  let exe = bp.bp_exe in
  let mem = Memory.create () in
  (* The code segment is mapped for realism (it holds no fetchable bytes in
     this implementation: engines execute structured instruction arrays; the
     region exists so data reads of code addresses behave like hardware:
     readable, not writable). *)
  ignore
    (Memory.map mem ~name:"code" ~base:Layout.code_base ~size:Layout.code_size
       ~perm:Memory.perm_rx);
  ignore
    (Memory.map mem ~name:"data" ~base:Layout.data_base ~size:Layout.data_size
       ~perm:Memory.perm_rw);
  let host_region =
    if bp.bp_map_host_region then
      Some
        (Memory.map mem ~name:"host" ~base:Layout.host_base
           ~size:Layout.host_size ~perm:Memory.perm_rw)
    else None
  in
  Memory.blit_in mem ~addr:(Layout.data_base + Layout.reserved_data)
    exe.Exe.data;
  let host =
    Host.create ~allow:bp.bp_allow ~heap_start:bp.bp_heap_start
      ~heap_limit:bp.bp_heap_limit ()
  in
  { exe; mem; host; host_region }

let load ?allow ?map_host_region ?stack_size (exe : Exe.t) : image =
  instantiate (blueprint ?allow ?map_host_region ?stack_size exe)

(* Load from wire bytes: the real mobile-code path. *)
let load_wire ?allow ?map_host_region ?stack_size bytes =
  let exe = Trace.phase "decode" (fun () -> Wire.decode bytes) in
  load ?allow ?map_host_region ?stack_size exe

(* The host-call interface both interpreter engines run under. *)
let host_iface (img : image) : Interp.host_iface =
  let on_hcall (st : Interp.t) index : Interp.hcall_outcome =
    let req =
      {
        Host.index;
        arg = (fun i -> Interp.get_reg st (Reg.arg i));
        farg = (fun i -> Interp.get_freg st (1 + i));
        set_ret = (fun v -> Interp.set_reg st Reg.ret v);
        mem = img.mem;
      }
    in
    match Host.handle img.host req with
    | Host.Continue -> Interp.Continue
    | Host.Exit code -> Interp.Exit code
    | Host.Set_handler addr ->
        st.Interp.handler <- addr;
        Interp.Continue
  in
  { Interp.on_hcall }

(* Convenience: run a loaded image in the OmniVM reference interpreter. *)
let run_interp ?(fuel = 2_000_000_000) ?watchdog (img : image) =
  let interp = Interp.create img.exe img.mem in
  (Interp.run ~fuel ?watchdog (host_iface img) interp, interp)

(* Run a loaded image under the pre-decoded fast interpreter. [program]
   (when given) must have been compiled from this image's text; serving
   hosts compile once per module digest and share it across runs. *)
let run_fast ?(fuel = 2_000_000_000) ?watchdog ?program (img : image) =
  let program =
    match program with
    | Some p -> p
    | None ->
        Trace.phase "predecode" (fun () ->
            Fastinterp.compile img.exe.Exe.text)
  in
  let st = Interp.create img.exe img.mem in
  (Fastinterp.run ~fuel ?watchdog (host_iface img) program st, st)
