(** Module loader: the trusted component that sets up a mobile module's
    segmented address space and instantiates its host environment. *)

open Omnivm

type image = {
  exe : Exe.t;
  mem : Memory.t;
  host : Host.t;
  host_region : Memory.region option;
      (** mapped when [map_host_region] was requested: stands in for the
          host application's own memory in SFI demonstrations *)
}

val load :
  ?allow:Hostcall.t list ->
  ?map_host_region:bool ->
  ?stack_size:int ->
  Exe.t ->
  image
(** Map code/data segments, copy the initialized data image above the
    reserved runtime area, and reserve heap and stack. [allow] is the host
    grant (default: every service). *)

type blueprint
(** A validated loading plan for one executable: segment geometry and the
    host grant, computed (and size-checked) once. A serving host keeps a
    blueprint per cached module and stamps out fresh isolated images with
    {!instantiate}. *)

val blueprint :
  ?allow:Hostcall.t list ->
  ?map_host_region:bool ->
  ?stack_size:int ->
  Exe.t ->
  blueprint
(** @raise Invalid_argument if the module's data does not fit. *)

val instantiate : blueprint -> image
(** A fresh, fully isolated image: new memory, new host environment.
    [load exe] is [instantiate (blueprint exe)]. *)

val load_wire :
  ?allow:Hostcall.t list ->
  ?map_host_region:bool ->
  ?stack_size:int ->
  string ->
  image
(** The real mobile-code path: decode wire bytes, then {!load}.
    @raise Omnivm.Wire.Bad_module on malformed bytes. *)

val run_interp :
  ?fuel:int -> ?watchdog:Omnivm.Watchdog.t -> image -> Interp.outcome * Interp.t
(** Execute the image under the OmniVM reference interpreter with this
    host's services. [watchdog] bounds wall-clock time cooperatively
    (see {!Omnivm.Watchdog}). *)

val host_iface : image -> Interp.host_iface
(** The host-call interface {!run_interp} and {!run_fast} execute
    under. *)

val run_fast :
  ?fuel:int ->
  ?watchdog:Omnivm.Watchdog.t ->
  ?program:Fastinterp.program ->
  image ->
  Interp.outcome * Interp.t
(** Execute under the pre-decoded fast interpreter ({!Omnivm.Fastinterp}):
    observably identical to {!run_interp}. [program] must have been
    compiled from this image's text; omitted, the text is compiled on the
    spot (traced as the ["predecode"] phase). *)
