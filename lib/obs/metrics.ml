(* Metrics registry: named counters, gauges, and log-bucketed histograms.

   One registry describes one measured subsystem (a service instance, a
   benchmark run, an omnirun invocation). Instruments are registered by
   name on first use and survive {!reset}: resetting zeroes the readings
   but keeps every registration, so a long-lived server can publish
   per-interval snapshots without re-plumbing its probes.

   Every instrument is safe to drive from multiple domains: counters and
   gauges are lock-free ([Atomic]); each histogram serializes its
   observations behind its own mutex (an observation is a three-field
   update that must stay consistent); the registry table itself is locked
   only on registration, snapshot, and reset — the hot paths (incr,
   observe) never touch the registry lock. Lock order: registry mutex
   before histogram mutexes, and a histogram mutex is the innermost lock
   in the whole system — no code holding one calls anything else.

   Histograms are log-bucketed in powers of two: a value v > 0 falls in
   the bucket [2^(e-1), 2^e) containing it, so durations spanning
   nanoseconds to hours need only ~60 buckets and bucket boundaries are
   exact in floating point. *)

type counter = { c_value : int Atomic.t }
type gauge = { g_value : float Atomic.t }

(* Bucket i covers [2^(i - bucket_zero - 1), 2^(i - bucket_zero)); values
   <= 0 land in bucket 0 (an underflow bucket with upper bound 2^-min). *)
let bucket_zero = 40 (* smallest finite bucket upper bound: 2^-40 s *)
let bucket_count = 72 (* largest: 2^31 s *)

type histogram = {
  h_mu : Mutex.t;
  buckets : int array; (* bucket_count cells *)
  mutable h_count : int;
  mutable h_sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { mu : Mutex.t; tbl : (string, instrument) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 32 }

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let register t name mk describe =
  locked t.mu @@ fun () ->
  match Hashtbl.find_opt t.tbl name with
  | Some i -> i
  | None ->
      let i = mk () in
      Hashtbl.replace t.tbl name i;
      ignore describe;
      i

let counter t name =
  match
    register t name (fun () -> Counter { c_value = Atomic.make 0 }) "counter"
  with
  | Counter c -> c
  | _ -> invalid_arg (name ^ " is registered as a non-counter")

let gauge t name =
  match
    register t name (fun () -> Gauge { g_value = Atomic.make 0.0 }) "gauge"
  with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ " is registered as a non-gauge")

let histogram t name =
  match
    register t name
      (fun () ->
        Histogram { h_mu = Mutex.create ();
                    buckets = Array.make bucket_count 0; h_count = 0;
                    h_sum = 0.0 })
      "histogram"
  with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ " is registered as a non-histogram")

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_value by)
let value c = Atomic.get c.c_value
let set g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

(* Index of the bucket whose range [2^(e-1), 2^e) contains v. [frexp]
   gives v = m * 2^e with m in [0.5, 1), i.e. exactly that range. *)
let bucket_index v =
  if v <= 0.0 || v <> v then 0
  else
    let _, e = Float.frexp v in
    max 0 (min (bucket_count - 1) (e + bucket_zero))

(* Upper bound of bucket i (inclusive top bucket soaks up overflow). *)
let bucket_upper i = Float.ldexp 1.0 (i - bucket_zero)

let observe h v =
  let i = bucket_index v in
  locked h.h_mu @@ fun () ->
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

let histogram_count h = locked h.h_mu (fun () -> h.h_count)
let histogram_sum h = locked h.h_mu (fun () -> h.h_sum)

(* --- snapshots --- *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;
      (* (upper bound, count) for non-empty buckets, ascending *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot t : snapshot =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  ( locked t.mu @@ fun () ->
    Hashtbl.iter
      (fun name i ->
        match i with
        | Counter c -> cs := (name, Atomic.get c.c_value) :: !cs
        | Gauge g -> gs := (name, Atomic.get g.g_value) :: !gs
        | Histogram h ->
            (* registry mutex before histogram mutex: the one nested pair *)
            locked h.h_mu @@ fun () ->
            let buckets = ref [] in
            for i = bucket_count - 1 downto 0 do
              if h.buckets.(i) > 0 then
                buckets := (bucket_upper i, h.buckets.(i)) :: !buckets
            done;
            hs :=
              (name, { hs_count = h.h_count; hs_sum = h.h_sum;
                       hs_buckets = !buckets })
              :: !hs)
      t.tbl );
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }

let reset t =
  locked t.mu @@ fun () ->
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> Atomic.set c.c_value 0
      | Gauge g -> Atomic.set g.g_value 0.0
      | Histogram h ->
          locked h.h_mu @@ fun () ->
          Array.fill h.buckets 0 bucket_count 0;
          h.h_count <- 0;
          h.h_sum <- 0.0)
    t.tbl

(* --- rendering --- *)

let render (s : snapshot) =
  let b = Buffer.create 512 in
  List.iter (fun (n, v) -> Printf.bprintf b "%-40s %12d\n" n v) s.counters;
  List.iter (fun (n, v) -> Printf.bprintf b "%-40s %12.3f\n" n v) s.gauges;
  List.iter
    (fun (n, h) ->
      let mean = if h.hs_count = 0 then 0.0 else h.hs_sum /. float h.hs_count in
      Printf.bprintf b "%-40s count %8d  sum %10.3fms  mean %8.3fms\n" n
        h.hs_count (1e3 *. h.hs_sum) (1e3 *. mean))
    s.histograms;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  (* JSON has no infinities; a %g float is both compact and round-trippable
     enough for metrics *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_json (s : snapshot) =
  let b = Buffer.create 1024 in
  let field first = if !first then first := false else Buffer.add_char b ',' in
  Buffer.add_string b "{\"counters\":{";
  let f = ref true in
  List.iter
    (fun (n, v) ->
      field f;
      Printf.bprintf b "\"%s\":%d" (json_escape n) v)
    s.counters;
  Buffer.add_string b "},\"gauges\":{";
  let f = ref true in
  List.iter
    (fun (n, v) ->
      field f;
      Printf.bprintf b "\"%s\":%s" (json_escape n) (json_float v))
    s.gauges;
  Buffer.add_string b "},\"histograms\":{";
  let f = ref true in
  List.iter
    (fun (n, h) ->
      field f;
      Printf.bprintf b "\"%s\":{\"count\":%d,\"sum\":%s,\"buckets\":["
        (json_escape n) h.hs_count (json_float h.hs_sum);
      let g = ref true in
      List.iter
        (fun (ub, c) ->
          field g;
          Printf.bprintf b "[%s,%d]" (json_float ub) c)
        h.hs_buckets;
      Buffer.add_string b "]}")
    s.histograms;
  Buffer.add_string b "}}";
  Buffer.contents b

(* Per-phase time table for histograms named "phase.<name>" — the bench
   harness's breakdown and `omnirun serve --metrics` both use it. *)
let render_phases (s : snapshot) =
  let b = Buffer.create 256 in
  let phases =
    List.filter_map
      (fun (n, h) ->
        if String.length n > 6 && String.sub n 0 6 = "phase." then
          Some (String.sub n 6 (String.length n - 6), h)
        else None)
      s.histograms
  in
  if phases = [] then Buffer.add_string b "(no phase timings recorded)\n"
  else begin
    let total = List.fold_left (fun a (_, h) -> a +. h.hs_sum) 0.0 phases in
    Printf.bprintf b "%-12s %8s %12s %12s %7s\n" "phase" "count" "total (ms)"
      "mean (ms)" "share";
    List.iter
      (fun (n, h) ->
        let mean =
          if h.hs_count = 0 then 0.0 else h.hs_sum /. float h.hs_count
        in
        Printf.bprintf b "%-12s %8d %12.3f %12.4f %6.1f%%\n" n h.hs_count
          (1e3 *. h.hs_sum) (1e3 *. mean)
          (if total > 0.0 then 100.0 *. h.hs_sum /. total else 0.0))
      phases
  end;
  Buffer.contents b
