(* Span-based tracer for the mobile-code pipeline.

   A span covers one phase of one request — compile, decode, load,
   translate, verify, run — with attributes (arch, module name, ...) and a
   duration read from an injectable monotonic clock. Spans form a stack:
   begin/end pairs nest, and a completed span records its parent and
   depth, so a line-oriented consumer can reconstruct the tree.

   The tracer is reached ambiently (one [current] tracer per process, set
   per request by [Api.run] / omnirun) so instrumentation probes deep in
   the translators need no plumbing. The default tracer is [null]: every
   probe first checks [t.on] and falls through in a couple of
   instructions, which is what keeps tracing zero-cost when disabled.

   Completed spans also feed the tracer's optional metrics registry
   (histogram "phase.<name>"), so a run traced with a Null sink still
   yields the per-phase time breakdown. *)

module Clock = Omni_util.Clock

type span = {
  id : int;  (* 1-based, in span-open order *)
  parent : int;  (* id of the enclosing span; 0 for roots *)
  depth : int;  (* 0 for roots *)
  name : string;
  attrs : (string * string) list;
  start_s : float;
  dur_s : float;
}

type collector = { mutable collected_rev : span list }

let collector () = { collected_rev = [] }
let collected c = List.rev c.collected_rev

type sink =
  | Null
  | Collect of collector
  | Emit of (span -> unit)

type open_span = {
  o_id : int;
  o_parent : int;
  o_depth : int;
  o_name : string;
  mutable o_attrs : (string * string) list;
  o_start : float;
}

type t = {
  on : bool;
  clock : Clock.t;
  sink : sink;
  m : Metrics.t option;
  mutable next_id : int;
  mutable stack : open_span list;
}

let null =
  { on = false; clock = Clock.cpu; sink = Null; m = None; next_id = 1;
    stack = [] }

let make ?(clock = Clock.cpu) ?metrics sink =
  { on = true; clock; sink; m = metrics; next_id = 1; stack = [] }

let enabled t = t.on
let metrics t = t.m

let emit t (s : span) =
  (match t.sink with
  | Null -> ()
  | Collect c -> c.collected_rev <- s :: c.collected_rev
  | Emit f -> f s);
  match t.m with
  | None -> ()
  | Some m ->
      Metrics.observe (Metrics.histogram m ("phase." ^ s.name)) s.dur_s

let begin_span t ?(attrs = []) name =
  if t.on then begin
    let parent, depth =
      match t.stack with
      | [] -> (0, 0)
      | o :: _ -> (o.o_id, o.o_depth + 1)
    in
    let o =
      { o_id = t.next_id; o_parent = parent; o_depth = depth; o_name = name;
        o_attrs = attrs; o_start = Clock.now t.clock }
    in
    t.next_id <- t.next_id + 1;
    t.stack <- o :: t.stack
  end

let end_span t =
  if t.on then
    match t.stack with
    | [] -> invalid_arg "Trace.end_span: no open span"
    | o :: rest ->
        t.stack <- rest;
        emit t
          { id = o.o_id; parent = o.o_parent; depth = o.o_depth;
            name = o.o_name; attrs = List.rev o.o_attrs; start_s = o.o_start;
            dur_s = Clock.now t.clock -. o.o_start }

let add_attr t k v =
  if t.on then
    match t.stack with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (k, v) :: o.o_attrs

let with_span t ?attrs name f =
  if not t.on then f ()
  else begin
    begin_span t ?attrs name;
    match f () with
    | r ->
        end_span t;
        r
    | exception e ->
        add_attr t "error" (Printexc.to_string e);
        end_span t;
        raise e
  end

(* --- the ambient tracer ---

   One ambient tracer per *domain*, not per process: a span stack is
   execution-context state, so a pool of server domains sharing a single
   [ref] would interleave each other's spans. Domain-local storage gives
   every domain the null tracer until it installs its own (typically a
   [clone] of the server's — same sink and registry, private stack). *)

let cur = Domain.DLS.new_key (fun () -> null)
let current () = Domain.DLS.get cur
let set_current t = Domain.DLS.set cur t

let with_current t f =
  let old = Domain.DLS.get cur in
  Domain.DLS.set cur t;
  match f () with
  | r ->
      Domain.DLS.set cur old;
      r
  | exception e ->
      Domain.DLS.set cur old;
      raise e

(* A tracer sharing [t]'s clock, sink, and metrics registry, with a
   private span stack and id counter — what each worker domain of a pool
   installs so concurrent requests do not corrupt one another's stacks.
   Span ids restart per clone; consumers correlate within one domain's
   stream (the registry, being shared and thread-safe, still aggregates
   phase timings across all clones). An [Emit] sink shared by clones must
   itself be thread-safe. *)
let clone t =
  if not t.on then null
  else { on = true; clock = t.clock; sink = t.sink; m = t.m; next_id = 1;
         stack = [] }

(* Probes on the ambient tracer. Each starts with a one-branch enabled
   check so a disabled pipeline pays (nearly) nothing. *)

let phase ?attrs name f =
  let t = Domain.DLS.get cur in
  if not t.on then f () else with_span t ?attrs name f

let attr k v =
  let t = Domain.DLS.get cur in
  if t.on then add_attr t k v

let count ?(by = 1) name =
  match (Domain.DLS.get cur).m with
  | None -> ()
  | Some m -> Metrics.incr ~by (Metrics.counter m name)

let observe name v =
  match (Domain.DLS.get cur).m with
  | None -> ()
  | Some m -> Metrics.observe (Metrics.histogram m name) v

(* Time [f] into histogram [name] when the ambient tracer carries a
   registry — per-pass attribution inside the translators, where a full
   span per basic block would be too heavy. *)
let timed name f =
  let t = Domain.DLS.get cur in
  match t.m with
  | None -> f ()
  | Some m ->
      let t0 = Clock.now t.clock in
      let r = f () in
      Metrics.observe (Metrics.histogram m name) (Clock.now t.clock -. t0);
      r

(* --- line-oriented JSON output --- *)

let json_line (s : span) =
  let b = Buffer.create 160 in
  Printf.bprintf b
    "{\"span\":\"%s\",\"id\":%d,\"parent\":%d,\"depth\":%d,\"start_ms\":%.3f,\"dur_ms\":%.3f"
    (Metrics.json_escape s.name) s.id s.parent s.depth (1e3 *. s.start_s)
    (1e3 *. s.dur_s);
  if s.attrs <> [] then begin
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\"%s\":\"%s\"" (Metrics.json_escape k)
          (Metrics.json_escape v))
      s.attrs;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b
