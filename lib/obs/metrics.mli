(** Metrics registry: named counters, gauges, and log-bucketed histograms.

    One registry describes one measured subsystem (a service instance, a
    benchmark run, an omnirun invocation). Instruments are registered by
    name on first use; {!reset} zeroes readings but keeps registrations.
    Reading a name as two different instrument kinds is a programming
    error ([Invalid_argument]).

    Histograms are log-bucketed in powers of two: a value [v > 0] falls in
    the bucket [[2^(e-1), 2^e)] containing it; values [<= 0] (and NaN)
    land in the underflow bucket 0.

    {b Concurrency}: every operation is safe from multiple domains.
    Counters and gauges are lock-free atomics (no increment is ever lost);
    histogram observations serialize behind a per-histogram mutex;
    registration, {!snapshot}, and {!reset} briefly lock the registry.
    A snapshot is internally consistent per instrument, not across
    instruments (it does not stop the world). *)

type t

val create : unit -> t

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter : t -> string -> counter
(** Get or register the named counter. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
val value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample (for phase timings: seconds). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_index : float -> int
(** Bucket a value would land in (exposed for the boundary tests). *)

val bucket_upper : int -> float
(** Exclusive upper bound of bucket [i]; [bucket_upper (bucket_index v)]
    is the smallest power of two strictly greater than [v] (for positive
    in-range [v]). *)

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;
      (** (upper bound, count) for non-empty buckets, ascending *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot
(** An immutable copy of every reading; does not perturb the registry. *)

val reset : t -> unit
(** Zero all readings, keeping every registered instrument alive. *)

val render : snapshot -> string
(** Human-readable multi-line table. *)

val to_json : snapshot -> string
(** One-line JSON object: [{"counters":{...},"gauges":{...},
    "histograms":{"name":{"count":..,"sum":..,"buckets":[[ub,n],..]}}}]. *)

val render_phases : snapshot -> string
(** Per-phase time table over histograms named ["phase.<name>"] (the ones
    {!Trace} feeds): count, total, mean, share of total. *)

val json_escape : string -> string
(** JSON string-body escaping (shared with {!Trace.json_line}). *)
