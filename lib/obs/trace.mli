(** Span-based tracer for the mobile-code pipeline.

    A span covers one phase of one request — compile, decode, load,
    translate, verify, run — with attributes and a duration read from an
    injectable monotonic clock ({!Omni_util.Clock}), so tests are
    deterministic. Spans nest; each completed span records its parent id
    and depth.

    Instrumented layers reach the tracer ambiently through {!current} /
    {!phase}; the default is {!null}, whose probes reduce to a single
    branch — tracing a disabled pipeline costs (nearly) nothing.

    A tracer may carry a {!Metrics} registry: every completed span then
    also lands in histogram ["phase.<name>"], so even a [Null]-sink tracer
    yields a per-phase time breakdown. *)

(** A completed span. *)
type span = {
  id : int;  (** 1-based, in span-open order *)
  parent : int;  (** id of the enclosing span; 0 for roots *)
  depth : int;  (** 0 for roots *)
  name : string;  (** phase label *)
  attrs : (string * string) list;
  start_s : float;
  dur_s : float;
}

(** In-memory accumulation of completed spans (for tests and tools). *)
type collector

val collector : unit -> collector

val collected : collector -> span list
(** Completed spans in completion order (children before parents). *)

(** Where completed spans go. *)
type sink =
  | Null  (** discard (metrics, if any, still collect) *)
  | Collect of collector
  | Emit of (span -> unit)  (** e.g. a JSON-lines writer *)

type t

val null : t
(** The disabled tracer: every operation is a no-op. *)

val make : ?clock:Omni_util.Clock.t -> ?metrics:Metrics.t -> sink -> t
(** A live tracer. [clock] defaults to {!Omni_util.Clock.cpu}; [metrics]
    receives a ["phase.<name>"] histogram sample per completed span. *)

val enabled : t -> bool
val metrics : t -> Metrics.t option

val begin_span : t -> ?attrs:(string * string) list -> string -> unit
val end_span : t -> unit
(** @raise Invalid_argument when no span is open (on a live tracer). *)

val add_attr : t -> string -> string -> unit
(** Attach an attribute to the innermost open span (no-op when none). *)

val with_span :
  t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Exception-safe begin/end; a raising body still closes the span, with
    an ["error"] attribute. *)

val clone : t -> t
(** A tracer sharing [t]'s clock, sink, and metrics registry, with a
    private span stack and id counter. Each worker domain of a server
    pool installs a clone so concurrent requests cannot corrupt one
    another's span stacks; the shared registry still aggregates phase
    timings across all clones. Span ids restart per clone. An [Emit]
    sink shared by clones must itself be thread-safe.
    [clone null] is [null]. *)

(** {1 The ambient tracer}

    One current tracer per {e domain} (domain-local storage); [Api.run]
    and omnirun scope it per request with {!with_current}. A freshly
    spawned domain starts with {!null} until it installs its own —
    typically a {!clone} of its parent's. *)

val current : unit -> t
val set_current : t -> unit

val with_current : t -> (unit -> 'a) -> 'a
(** Run with the given tracer current, restoring the previous one. *)

(** {2 Probes} — all on the ambient tracer, all no-ops when disabled. *)

val phase : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span] on the current tracer. *)

val attr : string -> string -> unit

val count : ?by:int -> string -> unit
(** Bump a counter in the current tracer's registry, if it has one. *)

val observe : string -> float -> unit
(** Record a histogram sample in the current tracer's registry. *)

val timed : string -> (unit -> 'a) -> 'a
(** Time [f] into histogram [name] when the current tracer carries a
    registry — per-pass attribution where a span per basic block would be
    too heavy. *)

val json_line : span -> string
(** One span as a single JSON line (omnirun's [--trace] output). *)
