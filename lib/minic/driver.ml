(* Compiler driver: MiniC source -> relocatable object / linked mobile
   module.

   A full program links: crt0 (entry stub) + the MiniC runtime library
   (Stdlib_mc, itself compiled from MiniC) + the user's translation
   unit(s). *)

module Trace = Omni_obs.Trace

type options = {
  opt_level : Opt.level;
  regfile_size : int; (* OmniVM registers available to the allocator *)
}

let default_options = { opt_level = Opt.O2; regfile_size = 16 }

(* Prototypes of the MiniC runtime library (Stdlib_mc), visible to every
   user translation unit like an implicit #include. *)
let stdlib_protos : Typecheck.proto list =
  let open Ast in
  let p name ret params =
    { Typecheck.proto_name = name; proto_ret = ret; proto_params = params }
  in
  [ p "malloc" (Tptr Tchar) [ Tint ];
    p "free" Tvoid [ Tptr Tchar ];
    p "calloc" (Tptr Tchar) [ Tint; Tint ];
    p "memcpy" (Tptr Tvoid) [ Tptr Tchar; Tptr Tchar; Tint ];
    p "memset" (Tptr Tvoid) [ Tptr Tchar; Tint; Tint ];
    p "memcmp" Tint [ Tptr Tchar; Tptr Tchar; Tint ];
    p "strlen" Tint [ Tptr Tchar ];
    p "strcmp" Tint [ Tptr Tchar; Tptr Tchar ];
    p "strcpy" (Tptr Tchar) [ Tptr Tchar; Tptr Tchar ];
    p "strncmp" Tint [ Tptr Tchar; Tptr Tchar; Tint ];
    p "srand" Tvoid [ Tint ];
    p "rand" Tint [];
    p "abs" Tint [ Tint ];
    p "fabs" Tdouble [ Tdouble ];
    p "exp" Tdouble [ Tdouble ];
    p "sqrt" Tdouble [ Tdouble ];
    p "print_nl" Tvoid [];
    p "qsort" Tvoid
      [ Tptr Tchar; Tint; Tint;
        Tptr (Tfun (Tint, [ Tptr Tchar; Tptr Tchar ])) ] ]

(* Compile one translation unit to a relocatable object. *)
let compile_unit ?(options = default_options) ?(protos = stdlib_protos) ~name
    source : Omni_asm.Obj.t =
  Trace.phase "compile.unit" ~attrs:[ ("unit", name) ] @@ fun () ->
  let ast = Trace.timed "pass.parse" (fun () -> Parser.parse_program source) in
  let tast =
    Trace.timed "pass.typecheck" (fun () ->
        Typecheck.type_program ~protos ast)
  in
  let ir = Trace.timed "pass.lower" (fun () -> Lower.lower_program tast) in
  let ir =
    Trace.timed "pass.opt" (fun () -> Opt.optimize options.opt_level ir)
  in
  let pools = Regalloc.default_pools ~regfile_size:options.regfile_size in
  Trace.timed "pass.codegen" (fun () -> Codegen.gen_program ~pools ~name ir)

(* Typed program for the reference interpreter (differential oracle). *)
let typed_program ?protos source : Tast.tprogram =
  let protos = match protos with Some p -> p | None -> stdlib_protos in
  Typecheck.type_program ~protos (Parser.parse_program source)

(* Typed program with the runtime library merged in, so the oracle can run
   programs that call malloc & friends. *)
let typed_program_with_stdlib source : Tast.tprogram =
  Typecheck.type_program
    (Parser.parse_program (Stdlib_mc.source ^ "\n" ^ source))

(* The entry stub: call main, pass its return value to the exit service. *)
let crt0 () : Omni_asm.Obj.t =
  Omni_asm.Parse.assemble ~name:"crt0"
    {|
        .text
        .globl _start
_start:
        jal main
        hcall 0
|}

let runtime_lib ?options () : Omni_asm.Obj.t =
  compile_unit ?options ~protos:[] ~name:"stdlib_mc" Stdlib_mc.source

(* Compile and link a complete program into a mobile module. *)
let compile_exe ?(options = default_options) ?(with_stdlib = true) ~name
    source : Omnivm.Exe.t =
  Trace.phase "compile" ~attrs:[ ("name", name) ] @@ fun () ->
  let objs =
    [ crt0 () ]
    @ (if with_stdlib then [ runtime_lib ~options () ] else [])
    @ [ compile_unit ~options ~name source ]
  in
  Trace.timed "pass.link" (fun () -> Omni_asm.Link.link ~entry:"_start" objs)

(* Convenience: straight to wire bytes, the shippable mobile-code artifact. *)
let compile_wire ?options ?with_stdlib ~name source : string =
  Omnivm.Wire.encode (compile_exe ?options ?with_stdlib ~name source)

(* The compiler as a front-end the serving layers treat uniformly with
   every other producer of wire modules: exceptions become the shared
   typed error, with the stage and source line preserved. *)
let producer : Omni_producer.Producer.t =
  (module struct
    let name = "minic"
    let describe = "MiniC compiled to OmniVM"

    let compile ~name source =
      let err = Omni_producer.Producer.error ~producer:"minic" in
      try Ok (compile_wire ~name source) with
      | Lexer.Error { line; message } ->
          Error (err ~stage:"lex" ~line message)
      | Parser.Error { line; message } ->
          Error (err ~stage:"parse" ~line message)
      | Typecheck.Error { line; message } ->
          Error (err ~stage:"typecheck" ~line message)
      | Lower.Error msg -> Error (err ~stage:"lower" msg)
      | Codegen.Error msg -> Error (err ~stage:"codegen" msg)
  end)
