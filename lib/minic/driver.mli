(** MiniC compiler driver.

    A complete program links three objects: crt0 (the entry stub that calls
    [main] and passes its result to the exit host call), the MiniC runtime
    library ({!Stdlib_mc}, compiled from MiniC), and the user's translation
    unit. *)

type options = {
  opt_level : Opt.level;
  regfile_size : int;
      (** OmniVM registers available to the register allocator, 8..16
          (the paper's Table 2 experiment) *)
}

val default_options : options
(** [O2], 16 registers. *)

val stdlib_protos : Typecheck.proto list
(** Prototypes of the runtime library, injected into every user unit like
    an implicit [#include]. *)

val compile_unit :
  ?options:options ->
  ?protos:Typecheck.proto list ->
  name:string ->
  string ->
  Omni_asm.Obj.t
(** Compile one translation unit to a relocatable object.
    @raise Lexer.Error | Parser.Error | Typecheck.Error on bad source. *)

val typed_program : ?protos:Typecheck.proto list -> string -> Tast.tprogram
(** Typecheck only (used by the reference-interpreter oracle). *)

val typed_program_with_stdlib : string -> Tast.tprogram
(** Like {!typed_program}, with the runtime library's source merged in so
    the oracle can execute programs that call [malloc] & friends. *)

val crt0 : unit -> Omni_asm.Obj.t

val runtime_lib : ?options:options -> unit -> Omni_asm.Obj.t

val compile_exe :
  ?options:options -> ?with_stdlib:bool -> name:string -> string -> Omnivm.Exe.t
(** Compile and link a complete program into a mobile module. *)

val compile_wire :
  ?options:options -> ?with_stdlib:bool -> name:string -> string -> string
(** Straight to wire bytes: the shippable artifact. *)

val producer : Omni_producer.Producer.t
(** The compiler as a {!Omni_producer.Producer} (name ["minic"]):
    {!compile_wire} with default options, compilation errors mapped to
    the shared typed error instead of this module's exceptions. *)
