(* The producer seam: the contract every front-end implements so the
   serving stack can treat all of them identically (see the .mli). *)

type error = {
  e_producer : string;
  e_stage : string;
  e_line : int option;
  e_msg : string;
}

exception Error of error

let error ~producer ~stage ?line msg =
  { e_producer = producer; e_stage = stage; e_line = line; e_msg = msg }

let error_to_string e =
  match e.e_line with
  | Some l ->
      Printf.sprintf "%s: %s error at line %d: %s" e.e_producer e.e_stage l
        e.e_msg
  | None -> Printf.sprintf "%s: %s error: %s" e.e_producer e.e_stage e.e_msg

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

module type S = sig
  val name : string
  val describe : string
  val compile : name:string -> string -> (string, error) result
end

type t = (module S)

let name (module P : S) = P.name
let describe (module P : S) = P.describe
let compile (module P : S) ~name source = P.compile ~name source

let compile_exn p ~name source =
  match compile p ~name source with
  | Ok wire -> wire
  | Error e -> raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (error_to_string e)
    | _ -> None)
