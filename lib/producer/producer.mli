(** The producer seam: what every front-end owes the serving stack.

    The paper's central claim is language independence — Omniware shipped
    both a gcc and an lcc back end targeting the same OmniVM wire format.
    This interface is that claim made first-class: a producer turns source
    text into wire-format bytes, and everything downstream (the loader,
    the translators, the service store, the daemon) treats all producers
    identically. [Minic.Driver.producer] (the C-subset compiler) and
    [Omni_guest.Lift.producer] (the StackVM bytecode lifter) both
    implement it; further front-ends slot in behind the same seam.

    Compilation failures are values, not exceptions: every producer folds
    its own error surface (lexer, parser, typechecker, validator, lifter)
    into one {!error} record naming the producer, the pipeline stage that
    refused, and — when known — the offending source line. *)

type error = {
  e_producer : string;  (** which front-end refused *)
  e_stage : string;  (** pipeline stage: ["parse"], ["typecheck"], ["validate"], ["lift"], ... *)
  e_line : int option;  (** 1-based source line when the stage knows one *)
  e_msg : string;
}

exception Error of error
(** Raised by {!compile_exn} (and by [Api.run] on a [Text] source). *)

val error : producer:string -> stage:string -> ?line:int -> string -> error

val error_to_string : error -> string
(** ["<producer>: <stage> error[ at line N]: <msg>"]. *)

val pp_error : Format.formatter -> error -> unit

(** The contract a front-end implements. *)
module type S = sig
  val name : string
  (** Short stable identifier (["minic"], ["stackvm"]); recorded by the
      module store at submission and by crash reports for attribution. *)

  val describe : string
  (** One line: what source language this producer accepts. *)

  val compile : name:string -> string -> (string, error) result
  (** [compile ~name source] is the complete shippable mobile module —
      wire-format bytes, entry stub and runtime included — or a typed
      refusal. [name] labels the translation unit in diagnostics. *)
end

type t = (module S)
(** A first-class producer, as the CLI and service layers consume it. *)

val name : t -> string
val describe : t -> string
val compile : t -> name:string -> string -> (string, error) result

val compile_exn : t -> name:string -> string -> string
(** @raise Error on refusal. *)
