(** Omniware: the public API of the mobile-code system.

    The lifecycle of a mobile program:

    + a producer compiles source to a mobile module — portable bytes
      ({!compile}),
    + a host loads the bytes, mapping the module's segmented address space
      and granting it a set of host services ({!load}),
    + the host translates the module for its own processor at load time,
      inlining software-fault-isolation checks unless the module is trusted
      ({!translate}),
    + the translated module runs; the host observes its output, exit
      status, and execution statistics ({!run_translated}).

    {!run_exe} and {!run_wire} bundle the last three steps. A host serving
    many loads of the same modules uses {!Service} (content-addressed
    module store + memoizing translation cache) via {!run_wire_cached}. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Risc = Omni_targets.Risc
module Risc_translate = Omni_targets.Risc_translate
module Risc_sim = Omni_targets.Risc_sim
module X86 = Omni_targets.X86
module X86_translate = Omni_targets.X86_translate
module X86_sim = Omni_targets.X86_sim

module Exec = Omni_service.Exec
(** The execution machinery behind this façade; the types below are
    equations onto its types. *)

module Service = Omni_service.Service
(** The serving front-end (store + translation cache + batch driver). *)

module Supervise = Omni_service.Supervise
(** Execution supervision: crash reports, module quarantine, and
    deterministic replay (see {!request}'s [deadline_s] field). *)

module Trace = Omni_obs.Trace
(** Span-based pipeline tracing (see {!run}'s [trace] field). *)

module Metrics = Omni_obs.Metrics
(** The metrics registry behind tracing and serving counters. *)

module Net = Omni_net
(** The distribution protocol: frame codec, transports, [omnid] server
    loop, and the remote client (see {!run}'s [remote] field). *)

(** An execution engine: the OmniVM reference interpreter, or load-time
    translation to a simulated target processor. *)
type engine = Exec.engine = Interp | Fast | Target of Arch.t

val engine_of_string : string -> (engine, string) result
(** Recognizes ["interp"], ["mips"], ["sparc"], ["ppc"], ["x86"];
    [Error msg] names the valid engines for an unknown string. *)

val engine_name : engine -> string
(** Inverse of {!engine_of_string} on the recognized names. *)

val engines_of_string : string -> (engine list, string) result
(** The canonical multi-engine parser for CLI surfaces: ["all"] is every
    target architecture (the interpreter translates nothing, so it is
    not in ["all"]); any single {!engine_of_string} name is a
    one-element list; [Error msg] names the valid spellings. *)

val mobile_opts : Arch.t -> Machine.topts
(** The per-architecture translator-optimization defaults the paper
    describes: Mips/PPC translators schedule locally, the Sparc translator
    uses a global pointer and fills delay slots without scheduling, the x86
    translator schedules only floating-point code. *)

(** Machine state at the instant a fault aborted a run (the sixteen OmniVM
    integer registers, and a hexdump window around the faulting address
    when it has one). See {!Exec.crash_site}. *)
type crash_site = Exec.crash_site = {
  cs_pc : int;
  cs_regs : int array;
  cs_window_base : int;
  cs_window : string;
}

(** Result of running a module. *)
type run_result = Exec.run_result = {
  output : string;  (** everything the module printed via host calls *)
  exit_code : int;  (** argument of the exit host call; -1 if it faulted *)
  outcome : Machine.outcome;
  instructions : int;  (** dynamic (native) instructions executed *)
  cycles : int;  (** simulated pipeline cycles (= instructions on interp) *)
  stats : Machine.stats option;  (** detailed statistics; None for interp *)
  crash : crash_site option;  (** [Some] iff [outcome] is [Faulted] *)
}

val load :
  ?map_host_region:bool ->
  ?allow:Omnivm.Hostcall.t list ->
  Omnivm.Exe.t ->
  Omni_runtime.Loader.image
(** Map the module's segments and instantiate its host environment.
    [allow] restricts which host services the module may call (default:
    all). [map_host_region] additionally maps a region standing in for
    host-owned memory, used to demonstrate SFI containment. *)

val run_interp :
  ?fuel:int ->
  ?watchdog:Omnivm.Watchdog.t ->
  Omni_runtime.Loader.image ->
  run_result
(** Execute under the OmniVM reference interpreter. *)

(** A translated module, ready to execute on its target simulator. *)
type translated = Exec.translated =
  | T_risc of Risc.program
  | T_x86 of X86.program

val translate :
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  Arch.t ->
  Omnivm.Exe.t ->
  translated
(** Load-time translation. [mode] defaults to sandboxed mobile code;
    [Machine.Native] modes produce the compiler baselines used by the
    benchmark harness. [opts] defaults to {!mobile_opts}. *)

val run_translated :
  ?fuel:int ->
  ?watchdog:Omnivm.Watchdog.t ->
  translated ->
  Omni_runtime.Loader.image ->
  run_result

val verify_translated :
  ?mode:Machine.mode -> translated -> (unit, string) result
(** Run the target's static SFI verifier over translated code — the cheap
    admission check a distrustful host applies before executing sandboxed
    code (fresh or cached). [mode] (when it names a padded policy) widens
    the verifier's displacement bound to the policy's guard zone. *)

module Producer = Omni_producer.Producer

val producers : Producer.t list
(** The registered front-ends: [minic] (the C-subset compiler) and
    [stackvm] (the guest-ISA bytecode lifter, {!Omni_guest.Lift}). Every
    producer yields the same artifact — wire bytes with the standard
    entry convention — so the run/serve/store layers never distinguish
    them. *)

val producer_of_string : string -> (Producer.t, string) result

(** What to run: an in-memory executable, wire-format bytes as they
    arrive from a producer, or source text paired with the front-end
    that understands it. *)
type source =
  | Exe of Omnivm.Exe.t
  | Wire of string
  | Text of { producer : Producer.t; unit_name : string; text : string }
      (** compiled by {!run} exactly once, before any engine or network
          work; a refusal raises [Producer.Error]. On the serving path
          the producer's name is recorded with the stored module and
          flows into crash reports. *)

(** One fully-specified run. Build by overriding {!default_request}:
    [{ default_request with engine = Target Arch.Mips; fuel = Some 10_000 }]. *)
type request = {
  engine : engine;
  sfi : bool;
      (** sandbox mobile code (default true; ignored when [mode] is given) *)
  mode : Machine.mode option;
      (** explicit translation mode; [None] derives one from [sfi] *)
  opts : Machine.topts option;  (** [None] = {!mobile_opts} of the target *)
  fuel : int option;  (** instruction budget; [None] = a large default *)
  deadline_s : float option;
      (** wall-clock budget in seconds; a run exceeding it faults with
          [Deadline_exceeded], reported like any other fault. Travels
          with remote requests; [None] = no deadline (or the server's
          default on the remote path) *)
  map_host_region : bool;
      (** also map host-owned memory (SFI demos; direct path only) *)
  trace : Trace.t option;
      (** tracer installed for the duration of the run; [None] inherits the
          ambient tracer (which defaults to the zero-cost null tracer) *)
  service : Service.t option;
      (** when set, admission goes through the service's content-addressed
          store and translation through its memoizing cache *)
  remote : Net.Client.t option;
      (** when set, the run happens on a remote daemon: the module bytes
          are submitted over the wire and executed there, taking
          precedence over [service]; [map_host_region], [opts], and
          [trace] do not travel ([trace] still scopes the local client
          side) *)
  retry : Net.Retry.policy option;
      (** per-request retry policy for the remote path, overriding the
          client's own for this run (via {!Net.Client.with_policy});
          [None] (the default) keeps the client's policy. Transient
          failures — lost connections, damaged frames, and a server
          shedding load with [E_overloaded] — are retried with backoff;
          deterministic refusals are not *)
  on_unreachable : [ `Fail | `Fallback_local ];
      (** what a remote run does when the daemon cannot be reached —
          read timeout, lost connection, connect failure — after the
          client's retry policy (if any) is exhausted: re-raise
          ([`Fail], the default), or degrade to in-process execution
          ([`Fallback_local]; deterministic execution makes the result
          identical, and counter [net.fallback] records the
          degradation) *)
}

val default_request : request
(** Interpreter engine, SFI on, derived mode/opts, unlimited-ish fuel, no
    host region, ambient tracing, no service, no fallback. *)

val run : request -> source -> run_result
(** The one entry point: load + translate + run as specified by the
    request. Every other run function below is a thin wrapper over this.
    On the remote path, typed protocol errors are re-raised as the same
    exceptions the local paths use (malformed bytes as
    [Omnivm.Wire.Bad_module], verifier refusal as [Cache.Rejected],
    foreign handles as [Store.Unknown_handle], resource caps as
    [Invalid_argument]), so callers handle one error surface.
    @raise Store.Unknown_handle, Cache.Rejected on service-path errors.
    @raise Net.Client.Remote_error, Net.Client.Protocol_error on remote
    failures outside those classes. *)

val run_exe :
  ?engine:engine ->
  ?sfi:bool ->
  ?mode:Machine.mode ->
  ?opts:Machine.topts ->
  ?fuel:int ->
  ?map_host_region:bool ->
  Omnivm.Exe.t ->
  run_result
(** [run_exe ... exe] = [run { default_request with ... } (Exe exe)].
    [sfi] (default true) selects sandboxing for mobile modules; it is
    ignored when [mode] is given. *)

val run_wire : engine:string -> ?sfi:bool -> ?fuel:int -> string -> run_result
(** Like {!run_exe}, starting from wire-format bytes; the engine is named
    by string as on the command line.
    @raise Invalid_argument on an unknown engine name. *)

val run_wire_cached :
  service:Service.t ->
  engine:string ->
  ?sfi:bool ->
  ?fuel:int ->
  string ->
  run_result
(** [run_wire] through [service]: admission goes through its
    content-addressed store and translation through its memoizing cache —
    repeated loads of the same bytes skip decoding and translation
    entirely, paying only the static re-verification of the cached code. *)

val run_wire_remote :
  remote:Net.Client.t ->
  engine:string ->
  ?sfi:bool ->
  ?fuel:int ->
  string ->
  run_result
(** [run_wire] against a live daemon: submit the bytes over the wire and
    run them there. The daemon's store/cache play the role [service]
    plays locally; results are bit-identical to the in-process path. *)

val run_wire_remote_cert :
  remote:Net.Client.t ->
  engine:string ->
  ?sfi:bool ->
  ?fuel:int ->
  string ->
  run_result * string option
(** {!run_wire_remote} that also requests the translation's safety
    certificate (encoded [omni-cert/1] bytes; [None] for interpreter
    runs and uncertified configurations). The certificate decodes with
    [Omni_cert.Certificate.decode] and re-checks locally against a local
    translation of the same bytes — proof-carrying translation end to
    end. No local-fallback handling: certificates only come from a live
    daemon. *)

val compile :
  ?options:Minic.Driver.options ->
  ?with_stdlib:bool ->
  name:string ->
  string ->
  string
(** Compile MiniC source to wire-format bytes: the shippable mobile-code
    artifact (crt0 + the MiniC runtime library + the program, linked). *)

val compile_exe :
  ?options:Minic.Driver.options ->
  ?with_stdlib:bool ->
  name:string ->
  string ->
  Omnivm.Exe.t
(** Like {!compile} but yields the decoded executable directly. *)

val lift_guest :
  ?options:Omni_guest.Lift.options ->
  string ->
  (string, Omni_guest.Error.t) result
(** Lift StackVM guest {e bytecode} bytes (the [GSTK] format) to an
    OmniVM wire module — decode, validate, lift, link. Never raises on
    bad guest input; see {!Omni_guest.Lift.lift_bytes}. *)

val lift_guest_asm :
  ?options:Omni_guest.Lift.options ->
  string ->
  (string, Omni_guest.Error.t) result
(** Like {!lift_guest}, starting from guest {e assembly} text (see
    {!Omni_guest.Asm} for the syntax). *)
