(* Omniware: the public API tying the system together.

   A host application (a) obtains a mobile module's wire bytes (compiled
   from MiniC or assembled by hand), (b) loads it — mapping the segmented
   address space and instantiating the host-call environment, (c) picks an
   execution engine: the OmniVM reference interpreter, or a load-time
   translation to one of the four simulated target machines, with SFI
   applied unless the module is trusted, and (d) runs it, observing output,
   exit status, and execution statistics.

   The execution machinery lives in Omni_service.Exec (so the serving
   stack — content-addressed store + memoizing translation cache — can
   drive it without depending on this façade); the types are re-exported
   here with equations, so Api.run_result and Exec.run_result are the same
   type. *)

module Arch = Omni_targets.Arch
module Machine = Omni_targets.Machine
module Risc = Omni_targets.Risc
module Risc_translate = Omni_targets.Risc_translate
module Risc_sim = Omni_targets.Risc_sim
module X86 = Omni_targets.X86
module X86_translate = Omni_targets.X86_translate
module X86_sim = Omni_targets.X86_sim
module Exec = Omni_service.Exec
module Service = Omni_service.Service
module Supervise = Omni_service.Supervise
module Trace = Omni_obs.Trace
module Metrics = Omni_obs.Metrics
module Net = Omni_net

type engine = Exec.engine =
  | Interp
  | Fast
  | Target of Arch.t

let engine_of_string = Exec.engine_of_string
let engine_name = Exec.engine_name

(* The canonical multi-engine parser — "all" fans out to every target
   architecture (the interpreter translates nothing, so "all" means "all
   translators"); a single name parses as a one-element list. The
   omnirun subcommands used to hand-roll this. *)
let engines_of_string = function
  | "all" -> Ok (List.map (fun a -> Target a) Arch.all)
  | s -> (
      match engine_of_string s with
      | Ok e -> Ok [ e ]
      | Error _ ->
          Error
            (Printf.sprintf "unknown engine %S (valid engines: %s, all)" s
               Exec.valid_engines))
let mobile_opts = Exec.mobile_opts

type crash_site = Exec.crash_site = {
  cs_pc : int;
  cs_regs : int array;
  cs_window_base : int;
  cs_window : string;
}

type run_result = Exec.run_result = {
  output : string;
  exit_code : int;
  outcome : Machine.outcome;
  instructions : int;
  cycles : int;
  stats : Machine.stats option; (* None for the interpreter *)
  crash : crash_site option;
}

(* --- loading and running --- *)

let load = Exec.load
let run_interp = Exec.run_interp

type translated = Exec.translated =
  | T_risc of Risc.program
  | T_x86 of X86.program

let translate = Exec.translate
let run_translated = Exec.run_translated
let verify_translated = Exec.verify

(* --- the unified run entry point --- *)

module Producer = Omni_producer.Producer

(* The registered front-ends. Every producer yields the same artifact —
   wire bytes with the standard entry convention — so everything below
   this point is producer-agnostic. *)
let producers : Producer.t list =
  [ Minic.Driver.producer; Omni_guest.Lift.producer ]

let producer_of_string s =
  match List.find_opt (fun p -> String.equal (Producer.name p) s) producers with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown producer %S (valid producers: %s)" s
           (String.concat ", " (List.map Producer.name producers)))

type source =
  | Exe of Omnivm.Exe.t
  | Wire of string
  | Text of { producer : Producer.t; unit_name : string; text : string }

type request = {
  engine : engine;
  sfi : bool;
  mode : Machine.mode option;
  opts : Machine.topts option;
  fuel : int option;
  deadline_s : float option;
  map_host_region : bool;
  trace : Trace.t option;
  service : Service.t option;
  remote : Net.Client.t option;
  retry : Net.Retry.policy option;
  on_unreachable : [ `Fail | `Fallback_local ];
}

let default_request =
  {
    engine = Interp;
    sfi = true;
    mode = None;
    opts = None;
    fuel = None;
    deadline_s = None;
    map_host_region = false;
    trace = None;
    service = None;
    remote = None;
    retry = None;
    on_unreachable = `Fail;
  }

(* A Machine.mode as it travels in a Run request. Only policies for the
   standard module layout survive the wire (custom bases/masks do not);
   [None] maps to M_default, which the server resolves from the sfi flag
   exactly as the local path does. *)
let mode_spec_of_mode = function
  | None -> Net.Message.M_default
  | Some (Machine.Mobile p) ->
      Net.Message.M_policy
        {
          pmode = p.Omni_sfi.Policy.mode;
          protect_reads = p.Omni_sfi.Policy.protect_reads;
          pad = p.Omni_sfi.Policy.pad;
        }
  | Some (Machine.Native tier) -> Net.Message.M_native tier

let wire_of_source = function
  | Wire b -> b
  | Exe exe -> Omnivm.Wire.encode exe
  | Text { producer; unit_name; text } ->
      Producer.compile_exn producer ~name:unit_name text

let run_remote (client : Net.Client.t) (r : request) (src : source) :
    run_result =
  let bytes = wire_of_source src in
  (* Re-raise remote refusals as the exceptions the local paths use, so
     a request is handled identically whether the service is in-process
     or behind a socket. *)
  (* a per-request policy overrides the client's own for this run *)
  let client =
    match r.retry with
    | None -> client
    | Some p -> Net.Client.with_policy ~retry:p client
  in
  try
    let h = Net.Client.submit client bytes in
    Net.Client.run ~engine:r.engine ~sfi:r.sfi
      ~mode:(mode_spec_of_mode r.mode) ?fuel:r.fuel ?deadline_s:r.deadline_s
      client h
  with
  | Net.Client.Remote_error (Net.Message.E_decode, msg) ->
      raise (Omnivm.Wire.Bad_module msg)
  | Net.Client.Remote_error (Net.Message.E_unknown_handle, _) ->
      raise Omni_service.Store.Unknown_handle
  | Net.Client.Remote_error (Net.Message.E_verifier_rejected, msg) ->
      raise (Omni_service.Cache.Rejected msg)
  | Net.Client.Remote_error (Net.Message.E_limit_exceeded, msg) ->
      invalid_arg msg

let run (r : request) (src : source) : run_result =
  (* A [Text] source compiles exactly once per run, up front — the
     producer's typed [Producer.Error] propagates before any engine or
     network work starts. *)
  let produced =
    match src with
    | Text { producer; _ } -> Some (Producer.name producer)
    | Exe _ | Wire _ -> None
  in
  let src =
    match src with Text _ -> Wire (wire_of_source src) | s -> s
  in
  let local () =
    match r.service with
    | Some service ->
        (* The serving path: admission goes through the service's
           content-addressed store and translation through its memo cache —
           repeated loads of the same bytes skip decoding and translation
           entirely. ([map_host_region] does not apply to served images.) *)
        let bytes = wire_of_source src in
        let h = Service.submit ?producer:produced service bytes in
        Service.instantiate ~engine:r.engine ~sfi:r.sfi ?mode:r.mode
          ?opts:r.opts ?fuel:r.fuel ?deadline_s:r.deadline_s service h
    | None -> (
        let watchdog =
          Option.map
            (fun budget_s -> Supervise.watchdog ~budget_s ())
            r.deadline_s
        in
        let exe, img =
          match src with
          | Text _ -> assert false (* normalized to Wire above *)
          | Exe exe -> (exe, load ~map_host_region:r.map_host_region exe)
          | Wire b ->
              let img =
                Omni_runtime.Loader.load_wire
                  ~map_host_region:r.map_host_region b
              in
              (img.Omni_runtime.Loader.exe, img)
        in
        match r.engine with
        | Interp -> run_interp ?fuel:r.fuel ?watchdog img
        | Fast -> Exec.run_fast ?fuel:r.fuel ?watchdog img
        | Target arch ->
            let mode =
              match r.mode with
              | Some m -> m
              | None ->
                  if r.sfi then Machine.Mobile (Omni_sfi.Policy.make ())
                  else Machine.Mobile Omni_sfi.Policy.off
            in
            let tr = translate ~mode ?opts:r.opts arch exe in
            run_translated ?fuel:r.fuel ?watchdog tr img)
  in
  let go () =
    match r.remote with
    | None -> local ()
    | Some client -> (
        try run_remote client r src with
        | ( Net.Transport.Timeout
          | Net.Client.Connection_lost _
          | Unix.Unix_error _ ) as e -> (
            (* The daemon is unreachable (past any retry policy the
               client carries). Degrade to in-process execution if the
               request allows — same bytes, same result. *)
            match r.on_unreachable with
            | `Fail -> raise e
            | `Fallback_local ->
                Trace.count "net.fallback";
                local ()))
  in
  match r.trace with
  | None -> go () (* inherit whatever tracer is ambient *)
  | Some t -> Trace.with_current t go

(* --- thin compatibility wrappers over [run] --- *)

let run_exe ?(engine = Interp) ?(sfi = true) ?mode ?opts ?fuel
    ?(map_host_region = false) (exe : Omnivm.Exe.t) : run_result =
  run { default_request with engine; sfi; mode; opts; fuel; map_host_region }
    (Exe exe)

let run_wire ~engine ?(sfi = true) ?fuel bytes : run_result =
  match engine_of_string engine with
  | Error msg -> invalid_arg msg
  | Ok e -> run { default_request with engine = e; sfi; fuel } (Wire bytes)

let run_wire_cached ~(service : Service.t) ~engine ?sfi ?fuel bytes :
    run_result =
  match engine_of_string engine with
  | Error msg -> invalid_arg msg
  | Ok e ->
      run
        {
          default_request with
          engine = e;
          sfi = Option.value sfi ~default:true;
          fuel;
          service = Some service;
        }
        (Wire bytes)

let run_wire_remote ~(remote : Net.Client.t) ~engine ?sfi ?fuel bytes :
    run_result =
  match engine_of_string engine with
  | Error msg -> invalid_arg msg
  | Ok e ->
      run
        {
          default_request with
          engine = e;
          sfi = Option.value sfi ~default:true;
          fuel;
          remote = Some remote;
        }
        (Wire bytes)

(* Remote run that also brings home the translation's safety witness —
   proof-carrying translation end to end: the certificate decodes with
   [Omni_cert.Certificate.decode] and re-checks locally against a local
   translation of the same bytes via [Exec.check_cert]. *)
let run_wire_remote_cert ~(remote : Net.Client.t) ~engine ?sfi ?fuel bytes :
    run_result * string option =
  match engine_of_string engine with
  | Error msg -> invalid_arg msg
  | Ok e -> (
      try
        let h = Net.Client.submit remote bytes in
        Net.Client.run_cert ~engine:e ~sfi:(Option.value sfi ~default:true)
          ?fuel ~want_cert:true remote h
      with
      | Net.Client.Remote_error (Net.Message.E_decode, msg) ->
          raise (Omnivm.Wire.Bad_module msg)
      | Net.Client.Remote_error (Net.Message.E_unknown_handle, _) ->
          raise Omni_service.Store.Unknown_handle
      | Net.Client.Remote_error (Net.Message.E_verifier_rejected, msg) ->
          raise (Omni_service.Cache.Rejected msg)
      | Net.Client.Remote_error (Net.Message.E_limit_exceeded, msg) ->
          invalid_arg msg)

(* --- compilation (re-exported for hosts embedding the front-ends) --- *)

let compile = Minic.Driver.compile_wire
let compile_exe = Minic.Driver.compile_exe

(* The guest-ISA front-end: StackVM bytecode (or its assembly text)
   lifted to an OmniVM wire module. *)
let lift_guest = Omni_guest.Lift.lift_bytes

let lift_guest_asm ?options source =
  match Omni_guest.Asm.assemble source with
  | Error e -> Error e
  | Ok p -> Omni_guest.Lift.lift_wire ?options p
